package sweep

import (
	"errors"
	"runtime"

	"repro/internal/defects"
)

func defaultWorkers() int { return runtime.GOMAXPROCS(0) }

// isBlocked reports whether a flow error is attributable to the defect
// surface rather than to the design.
func isBlocked(err error) bool { return errors.Is(err, defects.ErrBlocked) }
