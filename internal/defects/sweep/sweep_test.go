package sweep

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"testing"
	"time"

	_ "repro/internal/sim/quickexact" // register the pruned exact backend
)

// TestSweepDeterministicAcrossWorkers: the same config must produce the
// same table whether evaluated serially or by a parallel pool (run under
// -race this also exercises the pool for data races).
func TestSweepDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("two full-library sweeps; skipped in -short")
	}
	base := Config{Densities: []float64{0.5}, Seeds: 1, Seed: 7, Solver: "quickexact"}

	serialCfg := base
	serialCfg.Workers = 1
	serial, err := Run(context.Background(), serialCfg)
	if err != nil {
		t.Fatal(err)
	}
	parCfg := base
	parCfg.Workers = 8
	par, err := Run(context.Background(), parCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, par) {
		t.Fatal("parallel sweep differs from serial sweep")
	}
	if serial.Gates == 0 || len(serial.Points) != 1 {
		t.Fatalf("degenerate result: %+v", serial)
	}
	pt := serial.Points[0]
	if pt.OK+pt.Blocked+pt.Failed != serial.Gates*base.Seeds {
		t.Fatalf("tally %d+%d+%d does not cover %d gates x %d seeds",
			pt.OK, pt.Blocked, pt.Failed, serial.Gates, base.Seeds)
	}
}

// TestSweepYieldDecays: a pristine sweep yields 1.0 and a heavily
// defective surface must break at least some gates.
func TestSweepYieldDecays(t *testing.T) {
	if testing.Short() {
		t.Skip("full-library sweep; skipped in -short")
	}
	res, err := Run(context.Background(), Config{
		Densities: []float64{0, 10},
		Seeds:     1,
		Seed:      3,
		Solver:    "quickexact",
	})
	if err != nil {
		t.Fatal(err)
	}
	clean, dirty := res.Points[0], res.Points[1]
	if clean.Yield != 1.0 {
		t.Fatalf("pristine yield = %v, want 1.0", clean.Yield)
	}
	if dirty.Yield >= clean.Yield {
		t.Fatalf("yield did not decay: density 10 yield %v", dirty.Yield)
	}
	if dirty.Blocked == 0 {
		t.Fatal("no gate was classified defect_blocked at density 10")
	}
	if dirty.Failed != 0 {
		t.Fatalf("%d failures not attributed to defects (library gates pass pristine)", dirty.Failed)
	}
}

// TestSweepCancellation: cancelling mid-sweep must return the context
// error promptly and leave no leaked worker goroutines behind.
func TestSweepCancellation(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		// A sweep big enough not to finish before the cancel lands.
		_, err := Run(ctx, Config{
			Densities: []float64{0.1, 0.5, 1, 2, 4, 8},
			Seeds:     20,
			Workers:   4,
			Solver:    "quickexact",
		})
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("sweep did not stop after cancellation")
	}
	// Give pool goroutines a beat to exit, then check for leaks.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("leaked goroutines: %d before, %d after", before, runtime.NumGoroutine())
}

// TestScaleMix: the mix normalizes to the requested total density.
func TestScaleMix(t *testing.T) {
	scaled := scaleMix(DefaultMix(), 2.0)
	var total float64
	for _, v := range scaled {
		total += v
	}
	if diff := total - 2.0; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("scaled mix totals %v, want 2.0", total)
	}
	if len(scaleMix(DefaultMix(), 0)) != 0 {
		t.Fatal("zero density produced a non-empty mix")
	}
}
