// Package sweep runs the defect yield experiment: random defect surfaces
// at increasing densities, validated against the full gate library (and
// optionally the whole design flow), yielding a yield-vs-density table.
// It is shared by cmd/defectsweep (which writes BENCH_defects.json) and
// the service's POST /v1/defects/sweep job kind.
package sweep

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/defects"
	"repro/internal/faults"
	"repro/internal/gatelib"
	"repro/internal/lattice"
	"repro/internal/logic/bench"
	"repro/internal/obs"
	"repro/internal/sim"
)

// DefaultMix is the relative abundance of each defect species, loosely
// after the incidence ranking reported by arXiv 2311.12042: stray DBs and
// neutral dimer defects dominate, charged dopants and vacancies are rare.
// The weights are normalized before use, so only ratios matter.
func DefaultMix() defects.Densities {
	return defects.Densities{
		defects.DB:              4,
		defects.Siloxane:        2,
		defects.DihydridePair:   2,
		defects.SingleDihydride: 1,
		defects.EtchedDimer:     0.5,
		defects.Arsenic:         0.25,
		defects.Vacancy:         0.25,
	}
}

// scaleMix normalizes mix to unit total weight and scales it to the given
// total density (defects per 100 nm²).
func scaleMix(mix defects.Densities, density float64) defects.Densities {
	var total float64
	for _, w := range mix {
		total += w
	}
	out := defects.Densities{}
	if total <= 0 || density <= 0 {
		return out
	}
	for t, w := range mix {
		out[t] = density * w / total
	}
	return out
}

// Config tunes a yield sweep.
type Config struct {
	// Densities are the total defect densities to sample, in defects per
	// 100 nm² of surface.
	Densities []float64
	// Seeds is the number of random surfaces per (density, subject)
	// (default 5).
	Seeds int
	// Seed is the base random seed; every (density, subject, trial) derives
	// its own deterministic stream from it.
	Seed int64
	// Workers bounds the evaluation pool (default GOMAXPROCS).
	Workers int
	// Solver names the ground-state solver ("" = automatic dispatch).
	Solver string
	// Params are the physical parameters (zero value = the paper's Fig. 5).
	Params sim.Params
	// Mix is the relative per-type abundance (nil = DefaultMix).
	Mix defects.Densities
	// FlowBenches optionally adds whole-flow yield subjects: each named
	// Table 1 benchmark is run through the complete flow (ortho engine)
	// against each sampled surface.
	FlowBenches []string
	// FlowRegionTiles is the edge length, in tiles, of the square region
	// defects are sampled over for flow subjects (default 8).
	FlowRegionTiles int
	// Tracer receives sweep metrics; nil disables them.
	Tracer *obs.Tracer
}

// GateYield is one gate's outcome tally at one density.
type GateYield struct {
	Gate string `json:"gate"`
	// OK counts surfaces the gate still computed its function on; Blocked
	// counts surfaces that broke it (exclusion-zone hit or electrostatic
	// flip, FailKind "defect_blocked"); Failed counts everything else.
	OK      int     `json:"ok"`
	Blocked int     `json:"defect_blocked"`
	Failed  int     `json:"failed"`
	Yield   float64 `json:"yield"`
}

// FlowYield is one benchmark's whole-flow outcome tally at one density.
type FlowYield struct {
	Bench   string  `json:"bench"`
	OK      int     `json:"ok"`
	Blocked int     `json:"defect_blocked"`
	Failed  int     `json:"failed"`
	Yield   float64 `json:"yield"`
}

// Point is the sweep result at one density.
type Point struct {
	Density float64 `json:"density_per_100nm2"`
	Seeds   int     `json:"seeds"`
	// Yield is the fraction of (gate, surface) validations that passed.
	Yield float64 `json:"yield"`
	// MeanDefects is the mean defect count per sampled gate-tile surface.
	MeanDefects float64     `json:"mean_defects"`
	OK          int         `json:"ok"`
	Blocked     int         `json:"defect_blocked"`
	Failed      int         `json:"failed"`
	Gates       []GateYield `json:"gates"`
	Flows       []FlowYield `json:"flows,omitempty"`
}

// Result is the full yield-vs-density table. Yield is measured against a
// pristine baseline: library variants that do not validate standalone
// even on a defect-free surface (with the chosen solver and parameters)
// are excluded from the sweep and listed in SkippedGates, so a lost yield
// point always means defects, never a baseline artifact.
type Result struct {
	Solver string     `json:"solver"`
	Params sim.Params `json:"params"`
	Seeds  int        `json:"seeds"`
	// Gates counts the baseline-functional variants the yield is computed
	// over; TotalGates is the full library size.
	Gates        int      `json:"gates"`
	TotalGates   int      `json:"total_gates"`
	SkippedGates []string `json:"skipped_gates,omitempty"`
	Points       []Point  `json:"points"`
}

// outcome classifies one evaluation.
type outcome struct {
	ok      bool
	blocked bool
	defects int
}

// item is one unit of sweep work: subject si (gate index, or len(gates)+k
// for flow bench k) at density di, trial t.
type item struct{ di, si, t int }

// panicBox gives every recovered panic value one concrete type so racing
// atomic.Value.CompareAndSwap calls never see mismatched types.
type panicBox struct{ v any }

// runPool evaluates fn(i) for i in [0, n) on a bounded worker pool with
// panic isolation (the opdomain pattern): the first recovered panic is
// kept, the panicking worker keeps draining so the feeder never blocks on
// a channel nobody reads, and the panic is re-raised on the caller's
// goroutine after every worker has exited — where the service queue's
// per-job recovery can convert it into a job error. Cancelling the
// context stops the pool promptly (no leaked workers).
func runPool(ctx context.Context, n, workers int, fn func(i int)) error {
	if workers <= 0 {
		workers = defaultWorkers()
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	next := make(chan int)
	var wg sync.WaitGroup
	var panicked atomic.Value
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicked.CompareAndSwap(nil, panicBox{r})
					for range next {
					}
				}
			}()
			if faults.Should("defectsweep.item.panic") {
				panic("injected fault: defectsweep.item.panic")
			}
			for i := range next {
				if ctx.Err() != nil {
					continue // drain fast after cancellation
				}
				fn(i)
			}
		}()
	}
feed:
	for i := 0; i < n; i++ {
		select {
		case next <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(next)
	wg.Wait()
	if r := panicked.Load(); r != nil {
		panic(r.(panicBox).v)
	}
	return ctx.Err()
}

// Run executes the sweep: a pristine baseline pass over the full library
// first, then the defect evaluations over the baseline-functional gates.
// Results are deterministic for a fixed Config regardless of scheduling.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	if cfg.Seeds <= 0 {
		cfg.Seeds = 5
	}
	if cfg.Params == (sim.Params{}) {
		cfg.Params = sim.ParamsFig5
	}
	if cfg.Mix == nil {
		cfg.Mix = DefaultMix()
	}
	if cfg.FlowRegionTiles <= 0 {
		cfg.FlowRegionTiles = 8
	}
	if _, err := sim.Lookup(cfg.Solver); err != nil {
		return nil, err
	}

	lib := gatelib.NewLibrary()
	allKeys := lib.Variants()
	sort.Strings(allKeys)

	// Baseline: which variants validate standalone on a pristine surface?
	baselineOK := make([]bool, len(allKeys))
	err := runPool(ctx, len(allKeys), cfg.Workers, func(i int) {
		d, f, ok := lib.Design(allKeys[i])
		if !ok {
			return
		}
		v, verr := gatelib.ValidateWith(d, gatelib.TruthOf(f), cfg.Params,
			gatelib.ValidateOptions{Solver: cfg.Solver, Tracer: cfg.Tracer})
		baselineOK[i] = verr == nil && v.OK
	})
	if err != nil {
		return nil, err
	}
	var gateKeys, skipped []string
	for i, key := range allKeys {
		if baselineOK[i] {
			gateKeys = append(gateKeys, key)
		} else {
			skipped = append(skipped, key)
		}
	}

	nSubjects := len(gateKeys) + len(cfg.FlowBenches)
	items := make([]item, 0, len(cfg.Densities)*nSubjects*cfg.Seeds)
	for di := range cfg.Densities {
		for si := 0; si < nSubjects; si++ {
			for t := 0; t < cfg.Seeds; t++ {
				items = append(items, item{di, si, t})
			}
		}
	}
	results := make([]outcome, len(items))
	err = runPool(ctx, len(items), cfg.Workers, func(i int) {
		it := items[i]
		if it.si < len(gateKeys) {
			results[i] = evalGate(cfg, lib, gateKeys[it.si], it)
		} else {
			results[i] = evalFlow(ctx, cfg, cfg.FlowBenches[it.si-len(gateKeys)], it)
		}
	})
	if err != nil {
		return nil, err
	}
	if cfg.Tracer != nil {
		cfg.Tracer.Counter("defectsweep/evaluations").Add(int64(len(allKeys) + len(items)))
	}

	res := &Result{
		Solver: cfg.Solver, Params: cfg.Params, Seeds: cfg.Seeds,
		Gates: len(gateKeys), TotalGates: len(allKeys), SkippedGates: skipped,
	}
	for di, density := range cfg.Densities {
		pt := Point{Density: density, Seeds: cfg.Seeds}
		gys := make([]GateYield, len(gateKeys))
		fys := make([]FlowYield, len(cfg.FlowBenches))
		for gi, key := range gateKeys {
			gys[gi].Gate = key
		}
		for fi, name := range cfg.FlowBenches {
			fys[fi].Bench = name
		}
		defectSum, defectN := 0, 0
		for i, it := range items {
			if it.di != di {
				continue
			}
			o := results[i]
			if it.si < len(gateKeys) {
				tally(&gys[it.si].OK, &gys[it.si].Blocked, &gys[it.si].Failed, o)
				defectSum += o.defects
				defectN++
			} else {
				f := &fys[it.si-len(gateKeys)]
				tally(&f.OK, &f.Blocked, &f.Failed, o)
			}
		}
		for gi := range gys {
			gys[gi].Yield = yieldOf(gys[gi].OK, cfg.Seeds)
			pt.OK += gys[gi].OK
			pt.Blocked += gys[gi].Blocked
			pt.Failed += gys[gi].Failed
		}
		for fi := range fys {
			fys[fi].Yield = yieldOf(fys[fi].OK, cfg.Seeds)
		}
		pt.Yield = yieldOf(pt.OK, len(gateKeys)*cfg.Seeds)
		if defectN > 0 {
			pt.MeanDefects = float64(defectSum) / float64(defectN)
		}
		pt.Gates = gys
		pt.Flows = fys
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

func tally(ok, blocked, failed *int, o outcome) {
	switch {
	case o.ok:
		*ok++
	case o.blocked:
		*blocked++
	default:
		*failed++
	}
}

func yieldOf(ok, total int) float64 {
	if total <= 0 {
		return 0
	}
	return float64(ok) / float64(total)
}

// itemSeed derives the deterministic seed of one evaluation. Trials of
// the same subject at different densities get different surfaces, and the
// streams stay stable when densities or subjects are appended.
func itemSeed(base int64, it item) int64 {
	return base ^ (int64(it.di)+1)*1_000_003 ^ (int64(it.si)+1)*10_007 ^ (int64(it.t)+1)*97
}

// evalGate validates one library gate against one random surface sampled
// over its own tile.
func evalGate(cfg Config, lib *gatelib.Library, key string, it item) outcome {
	d, f, ok := lib.Design(key)
	if !ok {
		return outcome{}
	}
	region := lattice.Box{MinX: 0, MinY: 0, MaxX: gatelib.TileWidth - 1, MaxY: gatelib.TileHeight - 1}
	surf := defects.Generate(itemSeed(cfg.Seed, it), region, scaleMix(cfg.Mix, cfg.Densities[it.di]))
	v, err := gatelib.ValidateWith(d, gatelib.TruthOf(f), cfg.Params,
		gatelib.ValidateOptions{Solver: cfg.Solver, Surface: surf, Tracer: cfg.Tracer})
	if err != nil {
		return outcome{defects: surf.Len()}
	}
	return outcome{ok: v.OK, blocked: v.DefectBlocked, defects: surf.Len()}
}

// evalFlow runs one benchmark through the whole flow (ortho engine, which
// legalizes around afflicted tiles) against one random surface sampled
// over a FlowRegionTiles² tile region.
func evalFlow(ctx context.Context, cfg Config, name string, it item) outcome {
	spec, err := bench.Load(name)
	if err != nil {
		return outcome{}
	}
	n := cfg.FlowRegionTiles
	region := lattice.Box{MinX: 0, MinY: 0, MaxX: n*gatelib.TileWidth - 1, MaxY: n*gatelib.TileHeight - 1}
	surf := defects.Generate(itemSeed(cfg.Seed, it), region, scaleMix(cfg.Mix, cfg.Densities[it.di]))
	_, err = core.RunContext(ctx, spec, core.Options{
		Engine:       core.EngineOrtho,
		GroundSolver: cfg.Solver,
		Surface:      surf,
		Tracer:       cfg.Tracer,
	})
	if err == nil {
		return outcome{ok: true, defects: surf.Len()}
	}
	return outcome{blocked: isBlocked(err), defects: surf.Len()}
}
