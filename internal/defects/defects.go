// Package defects models atomic defects of the H-Si(100)-2×1 surface and
// their interaction with SiDB logic, after the defect-aware physical
// design study of Walter et al. (arXiv 2311.12042). Real fabricated
// surfaces are not pristine: charged defects (stray dangling bonds,
// arsenic dopants, charged missing-dimer vacancies) perturb the
// electrostatic landscape of nearby gates, while neutral structural
// defects (siloxane reconstructions, dihydride pairs, etched dimers)
// simply make their lattice sites unusable for fabrication.
//
// The package is a leaf: it depends only on internal/lattice, so every
// other layer (sim, gatelib, pnr, core, cache, service) can import it.
package defects

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/lattice"
)

// ErrBlocked is the sentinel wrapped by every error caused by surface
// defects making a placement or layout infeasible. Callers classify with
// errors.Is(err, ErrBlocked); the service maps it to error kind
// "defect_blocked".
var ErrBlocked = errors.New("blocked by surface defect")

// Type enumerates the defect species of arXiv 2311.12042.
type Type uint8

const (
	// DB is a stray negatively charged dangling bond left by imperfect
	// hydrogen passivation.
	DB Type = iota
	// Arsenic is a positively charged arsenic dopant near the surface.
	Arsenic
	// Vacancy is a missing-dimer vacancy variant carrying net negative
	// charge.
	Vacancy
	// Siloxane is a neutral siloxane (Si-O-Si) reconstruction of a dimer.
	Siloxane
	// DihydridePair is a neutral dihydride pair (two H per Si atom).
	DihydridePair
	// SingleDihydride is a neutral single dihydride defect.
	SingleDihydride
	// EtchedDimer is a neutral missing (etched) dimer.
	EtchedDimer

	numTypes
)

// Spec describes the physical behaviour of a defect type.
type Spec struct {
	// Name is the canonical lowercase identifier used in JSON and flags.
	Name string
	// Charge is the defect's net charge in units of the elementary charge
	// e. Zero marks a neutral, purely structural defect.
	Charge int
	// ExclusionNM is the hard fabrication/operation exclusion radius: no
	// SiDB can exist within this distance of the defect. Validation
	// fast-rejects any design with a dot inside an exclusion zone before
	// running any simulation.
	ExclusionNM float64
	// InfluenceNM is the electrostatic influence radius used by place &
	// route to decide whether a tile is afflicted. For charged defects it
	// is several nm (the screened Coulomb tail measurably shifts nearby
	// gates); for neutral defects it equals the exclusion radius.
	InfluenceNM float64
}

// specs is indexed by Type. Radii are calibration choices informed by
// arXiv 2311.12042: charged defects perturb gates over several nm, while
// neutral defects only poison their immediate dimer neighbourhood.
var specs = [numTypes]Spec{
	DB:              {Name: "db", Charge: -1, ExclusionNM: 0.9, InfluenceNM: 6.0},
	Arsenic:         {Name: "arsenic", Charge: +1, ExclusionNM: 0.9, InfluenceNM: 6.0},
	Vacancy:         {Name: "vacancy", Charge: -1, ExclusionNM: 1.2, InfluenceNM: 6.0},
	Siloxane:        {Name: "siloxane", Charge: 0, ExclusionNM: 0.8, InfluenceNM: 0.8},
	DihydridePair:   {Name: "dihydride_pair", Charge: 0, ExclusionNM: 0.8, InfluenceNM: 0.8},
	SingleDihydride: {Name: "single_dihydride", Charge: 0, ExclusionNM: 0.4, InfluenceNM: 0.4},
	EtchedDimer:     {Name: "etched_dimer", Charge: 0, ExclusionNM: 1.2, InfluenceNM: 1.2},
}

// Spec returns the type's physical description.
func (t Type) Spec() Spec {
	if t >= numTypes {
		return Spec{Name: fmt.Sprintf("invalid(%d)", uint8(t))}
	}
	return specs[t]
}

// String returns the canonical name.
func (t Type) String() string { return t.Spec().Name }

// Charge returns the net charge in units of e.
func (t Type) Charge() int { return t.Spec().Charge }

// Charged reports whether the defect perturbs the electrostatics.
func (t Type) Charged() bool { return t.Spec().Charge != 0 }

// Types lists every defect type in canonical order.
func Types() []Type {
	out := make([]Type, numTypes)
	for i := range out {
		out[i] = Type(i)
	}
	return out
}

// ParseType resolves a canonical name to a Type.
func ParseType(name string) (Type, error) {
	for i, s := range specs {
		if s.Name == name {
			return Type(i), nil
		}
	}
	return 0, fmt.Errorf("defects: unknown defect type %q", name)
}

// Defect is one surface defect: a lattice site plus a species.
type Defect struct {
	Site lattice.Site
	Type Type
}

// Surface is a set of defects on the H-Si surface, keyed by lattice site
// (at most one defect per site). The zero value and the nil pointer are
// both valid, empty (pristine) surfaces.
type Surface struct {
	m map[lattice.Site]Type
}

// New returns an empty surface.
func New() *Surface { return &Surface{m: map[lattice.Site]Type{}} }

// Add places a defect of type t at the site. Adding a second defect to an
// occupied site replaces the previous one only if the new type orders
// first canonically, keeping Add order-independent.
func (s *Surface) Add(site lattice.Site, t Type) {
	if s.m == nil {
		s.m = map[lattice.Site]Type{}
	}
	if prev, ok := s.m[site]; ok && prev <= t {
		return
	}
	s.m[site] = t
}

// AddCell places a defect at flattened cell coordinates (x, y).
func (s *Surface) AddCell(x, y int, t Type) { s.Add(lattice.FromCell(x, y), t) }

// Len returns the number of defects.
func (s *Surface) Len() int {
	if s == nil {
		return 0
	}
	return len(s.m)
}

// Empty reports whether the surface is pristine.
func (s *Surface) Empty() bool { return s.Len() == 0 }

// List returns the defects in canonical order: sorted by site (N, M, L).
func (s *Surface) List() []Defect {
	if s.Len() == 0 {
		return nil
	}
	out := make([]Defect, 0, len(s.m))
	for site, t := range s.m {
		out = append(out, Defect{Site: site, Type: t})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Site, out[j].Site
		if a.N != b.N {
			return a.N < b.N
		}
		if a.M != b.M {
			return a.M < b.M
		}
		return a.L < b.L
	})
	return out
}

// Charged returns the charged defects in canonical order.
func (s *Surface) Charged() []Defect {
	var out []Defect
	for _, d := range s.List() {
		if d.Type.Charged() {
			out = append(out, d)
		}
	}
	return out
}

// Translate returns a copy of the surface shifted by dx cells
// horizontally and dy sub-rows vertically (the inverse shift maps global
// defects into a tile-local frame). A nil or empty surface returns nil.
func (s *Surface) Translate(dx, dy int) *Surface {
	if s.Len() == 0 {
		return nil
	}
	out := New()
	for site, t := range s.m {
		out.m[site.Translate(dx, dy)] = t
	}
	return out
}

// Blocks reports whether fabricating a dot at the site would fall inside
// some defect's exclusion zone, returning the offending defect.
func (s *Surface) Blocks(site lattice.Site) (Defect, bool) {
	if s.Len() == 0 {
		return Defect{}, false
	}
	for dsite, t := range s.m {
		if lattice.DistanceNM(site, dsite) <= t.Spec().ExclusionNM {
			return Defect{Site: dsite, Type: t}, true
		}
	}
	return Defect{}, false
}

// InfluencesBox reports whether any defect's influence circle intersects
// the cell-coordinate box (inclusive bounds), the geometric test behind
// tile blocking in place & route.
func (s *Surface) InfluencesBox(b lattice.Box) bool {
	if s.Len() == 0 || b.Empty() {
		return false
	}
	// Box corners in nm. Sub-row pitch is PitchY/2; using site positions
	// directly keeps the dimer-gap asymmetry exact.
	x0, y0 := lattice.FromCell(b.MinX, b.MinY).Pos()
	x1, y1 := lattice.FromCell(b.MaxX, b.MaxY).Pos()
	for site, t := range s.m {
		px, py := site.Pos()
		// Distance from the point to the rectangle.
		dx := math.Max(math.Max(x0-px, 0), px-x1)
		dy := math.Max(math.Max(y0-py, 0), py-y1)
		if math.Hypot(dx, dy) <= t.Spec().InfluenceNM {
			return true
		}
	}
	return false
}

// AppendCanonical appends the surface's canonical byte serialization:
// defect count then (n, m, l, type) per defect in canonical order, all
// fields big-endian fixed width. Identical surfaces serialize
// identically regardless of insertion order or process; this is the
// representation hashed into cache keys.
func (s *Surface) AppendCanonical(b []byte) []byte {
	list := s.List()
	b = binary.BigEndian.AppendUint64(b, uint64(len(list)))
	for _, d := range list {
		b = binary.BigEndian.AppendUint64(b, uint64(int64(d.Site.N)))
		b = binary.BigEndian.AppendUint64(b, uint64(int64(d.Site.M)))
		b = binary.BigEndian.AppendUint64(b, uint64(int64(d.Site.L)))
		b = append(b, byte(d.Type))
	}
	return b
}

// jsonDefect is the wire form of one defect, in flattened cell
// coordinates (the coordinate system of the gate library and service).
type jsonDefect struct {
	X    int    `json:"x"`
	Y    int    `json:"y"`
	Type string `json:"type"`
}

// MarshalJSON encodes the surface as a canonically ordered list of
// {x, y, type} objects.
func (s *Surface) MarshalJSON() ([]byte, error) {
	list := s.List()
	out := make([]jsonDefect, len(list))
	for i, d := range list {
		x, y := d.Site.Cell()
		out[i] = jsonDefect{X: x, Y: y, Type: d.Type.String()}
	}
	return json.Marshal(out)
}

// UnmarshalJSON decodes a list of {x, y, type} objects in any order.
func (s *Surface) UnmarshalJSON(data []byte) error {
	var list []jsonDefect
	if err := json.Unmarshal(data, &list); err != nil {
		return err
	}
	*s = Surface{m: map[lattice.Site]Type{}}
	for _, jd := range list {
		t, err := ParseType(jd.Type)
		if err != nil {
			return err
		}
		s.AddCell(jd.X, jd.Y, t)
	}
	return nil
}

// Densities parameterizes random surface generation: expected defects of
// each type per 100 nm² of surface.
type Densities map[Type]float64

// ParseDensities converts a name→density map (e.g. from JSON) into
// Densities, rejecting unknown type names and negative densities.
func ParseDensities(byName map[string]float64) (Densities, error) {
	d := Densities{}
	for name, v := range byName {
		t, err := ParseType(name)
		if err != nil {
			return nil, err
		}
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("defects: invalid density %v for %q", v, name)
		}
		if v > 0 {
			d[t] = v
		}
	}
	return d, nil
}

// Generate builds a random surface over the region (cell coordinates,
// inclusive) with the given per-type densities. Deterministic: the same
// (seed, region, densities) always yields the same surface, regardless
// of map iteration order.
func Generate(seed int64, region lattice.Box, d Densities) *Surface {
	s := New()
	if region.Empty() {
		return s
	}
	// Region area in nm²: count cells, not extents, so single-row regions
	// still have area. Each cell owns PitchX × PitchY/2 of surface.
	cellsX := region.MaxX - region.MinX + 1
	cellsY := region.MaxY - region.MinY + 1
	area := float64(cellsX) * lattice.PitchX * float64(cellsY) * (lattice.PitchY / 2)
	for _, t := range Types() {
		density := d[t]
		if density <= 0 {
			continue
		}
		want := int(math.Round(density * area / 100))
		if want <= 0 {
			continue
		}
		// Independent stream per type so adding a type's density never
		// reshuffles another type's placements.
		rng := rand.New(rand.NewSource(seed ^ (int64(t)+1)*0x1E3779B97F4A7C15))
		placed := 0
		for attempt := 0; placed < want && attempt < want*64; attempt++ {
			x := region.MinX + rng.Intn(cellsX)
			y := region.MinY + rng.Intn(cellsY)
			site := lattice.FromCell(x, y)
			if _, occupied := s.m[site]; occupied {
				continue
			}
			s.m[site] = t
			placed++
		}
	}
	return s
}
