package defects

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/lattice"
)

// TestCanonicalOrderIndependence: two surfaces with the same defects
// inserted in different orders must serialize identically (bytes and
// JSON) — the determinism contract behind fleet-wide cache keys.
func TestCanonicalOrderIndependence(t *testing.T) {
	a := New()
	a.AddCell(10, 4, DB)
	a.AddCell(-3, 7, Arsenic)
	a.AddCell(10, 5, Siloxane)
	b := New()
	b.AddCell(10, 5, Siloxane)
	b.AddCell(10, 4, DB)
	b.AddCell(-3, 7, Arsenic)
	if !bytes.Equal(a.AppendCanonical(nil), b.AppendCanonical(nil)) {
		t.Fatal("insertion order leaked into canonical bytes")
	}
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if !bytes.Equal(ja, jb) {
		t.Fatalf("insertion order leaked into JSON: %s vs %s", ja, jb)
	}
	c := New()
	c.AddCell(10, 4, DB)
	c.AddCell(-3, 7, Arsenic)
	if bytes.Equal(a.AppendCanonical(nil), c.AppendCanonical(nil)) {
		t.Fatal("different surfaces serialized identically")
	}
	// Conflicting adds at one site resolve the same way in either order.
	d1, d2 := New(), New()
	d1.AddCell(0, 0, EtchedDimer)
	d1.AddCell(0, 0, DB)
	d2.AddCell(0, 0, DB)
	d2.AddCell(0, 0, EtchedDimer)
	if !bytes.Equal(d1.AppendCanonical(nil), d2.AppendCanonical(nil)) {
		t.Fatal("conflicting Add order changed the surface")
	}
}

// TestJSONRoundTrip: marshal → unmarshal reproduces the surface.
func TestJSONRoundTrip(t *testing.T) {
	s := New()
	s.AddCell(1, 2, Vacancy)
	s.AddCell(30, 40, DihydridePair)
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Surface
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(s.AppendCanonical(nil), back.AppendCanonical(nil)) {
		t.Fatalf("round trip changed surface: %s", data)
	}
	if err := json.Unmarshal([]byte(`[{"x":0,"y":0,"type":"nope"}]`), &back); err == nil {
		t.Fatal("unknown type accepted")
	}
}

// TestNilSurface: the nil pointer behaves as a pristine surface.
func TestNilSurface(t *testing.T) {
	var s *Surface
	if !s.Empty() || s.Len() != 0 || s.List() != nil || s.Translate(1, 1) != nil {
		t.Fatal("nil surface not pristine")
	}
	if _, blocked := s.Blocks(lattice.FromCell(0, 0)); blocked {
		t.Fatal("nil surface blocks")
	}
	if s.InfluencesBox(lattice.Box{MinX: 0, MinY: 0, MaxX: 5, MaxY: 5}) {
		t.Fatal("nil surface influences")
	}
}

// TestBlocksRadius: exclusion zones block nearby sites only.
func TestBlocksRadius(t *testing.T) {
	s := New()
	s.AddCell(10, 10, DB) // exclusion 0.9 nm ≈ 2 cells in x
	if _, blocked := s.Blocks(lattice.FromCell(10, 10)); !blocked {
		t.Fatal("defect site itself not blocked")
	}
	if _, blocked := s.Blocks(lattice.FromCell(12, 10)); !blocked {
		t.Fatal("site 0.768 nm away not blocked by 0.9 nm exclusion")
	}
	if _, blocked := s.Blocks(lattice.FromCell(20, 10)); blocked {
		t.Fatal("site 3.84 nm away blocked by 0.9 nm exclusion")
	}
}

// TestTranslate shifts defects with the same cell semantics as
// lattice.Site.Translate.
func TestTranslate(t *testing.T) {
	s := New()
	s.AddCell(5, 3, Arsenic)
	got := s.Translate(-5, -3).List()
	if len(got) != 1 || got[0].Site != lattice.FromCell(0, 0) || got[0].Type != Arsenic {
		t.Fatalf("translate wrong: %+v", got)
	}
}

// TestGenerateDeterminism: same seed → identical surface; different seed
// → (almost surely) different; densities scale counts with area.
func TestGenerateDeterminism(t *testing.T) {
	region := lattice.Box{MinX: 0, MinY: 0, MaxX: 119, MaxY: 91} // two tiles
	d := Densities{DB: 0.5, Siloxane: 1.0}
	a := Generate(42, region, d)
	b := Generate(42, region, d)
	if !bytes.Equal(a.AppendCanonical(nil), b.AppendCanonical(nil)) {
		t.Fatal("same seed produced different surfaces")
	}
	if a.Empty() {
		t.Fatal("nonzero densities produced empty surface")
	}
	c := Generate(43, region, d)
	if bytes.Equal(a.AppendCanonical(nil), c.AppendCanonical(nil)) {
		t.Fatal("different seeds produced identical surfaces")
	}
	// Expected counts: area ≈ 120·0.384 × 92·0.384 ≈ 1628 nm².
	// 0.5/100nm² → ~8 DBs, 1.0 → ~16 siloxanes.
	var dbs, sil int
	for _, df := range a.List() {
		switch df.Type {
		case DB:
			dbs++
		case Siloxane:
			sil++
		}
	}
	if dbs < 4 || dbs > 13 || sil < 8 || sil > 25 {
		t.Fatalf("counts off: %d DBs, %d siloxanes", dbs, sil)
	}
}

// TestParseDensities rejects unknown names and negatives.
func TestParseDensities(t *testing.T) {
	d, err := ParseDensities(map[string]float64{"db": 0.1, "arsenic": 0})
	if err != nil || len(d) != 1 || d[DB] != 0.1 {
		t.Fatalf("parse failed: %v %v", d, err)
	}
	if _, err := ParseDensities(map[string]float64{"bogus": 1}); err == nil {
		t.Fatal("unknown type accepted")
	}
	if _, err := ParseDensities(map[string]float64{"db": -1}); err == nil {
		t.Fatal("negative density accepted")
	}
}

// TestTypeTable sanity-checks the spec table.
func TestTypeTable(t *testing.T) {
	charges := map[Type]int{DB: -1, Arsenic: 1, Vacancy: -1,
		Siloxane: 0, DihydridePair: 0, SingleDihydride: 0, EtchedDimer: 0}
	for ty, q := range charges {
		if ty.Charge() != q {
			t.Fatalf("%s charge %d, want %d", ty, ty.Charge(), q)
		}
		if ty.Spec().ExclusionNM <= 0 || ty.Spec().InfluenceNM < ty.Spec().ExclusionNM {
			t.Fatalf("%s radii malformed: %+v", ty, ty.Spec())
		}
		back, err := ParseType(ty.String())
		if err != nil || back != ty {
			t.Fatalf("%s does not round-trip: %v %v", ty, back, err)
		}
	}
}
