package sat

import (
	"math/rand"
	"testing"
)

func TestTrivialSat(t *testing.T) {
	s := New()
	a := s.NewVar()
	b := s.NewVar()
	s.AddClause(a, b)
	s.AddClause(a.Neg(), b)
	if got := s.Solve(); got != Sat {
		t.Fatalf("got %v", got)
	}
	if !s.Value(b) {
		t.Error("b must be true")
	}
}

func TestTrivialUnsat(t *testing.T) {
	s := New()
	a := s.NewVar()
	s.AddClause(a)
	s.AddClause(a.Neg())
	if got := s.Solve(); got != Unsat {
		t.Fatalf("got %v", got)
	}
}

func TestEmptyClauseUnsat(t *testing.T) {
	s := New()
	if s.AddClause() {
		t.Error("empty clause must report failure")
	}
	if s.Solve() != Unsat {
		t.Error("solver must be unsat after empty clause")
	}
}

func TestTautologyIgnored(t *testing.T) {
	s := New()
	a := s.NewVar()
	b := s.NewVar()
	s.AddClause(a, a.Neg(), b)
	s.AddClause(b.Neg())
	if s.Solve() != Sat {
		t.Error("tautologies must not constrain")
	}
}

func TestDuplicateLiterals(t *testing.T) {
	s := New()
	a := s.NewVar()
	s.AddClause(a, a, a)
	if s.Solve() != Sat || !s.Value(a) {
		t.Error("duplicate literal clause must behave as unit")
	}
}

func TestXorChainSat(t *testing.T) {
	// x1 xor x2 xor ... xor xn = 1 as CNF over pairs via fresh vars.
	s := New()
	n := 20
	vars := make([]Lit, n)
	for i := range vars {
		vars[i] = s.NewVar()
	}
	acc := vars[0]
	for i := 1; i < n; i++ {
		out := s.NewVar()
		addXor(s, acc, vars[i], out)
		acc = out
	}
	s.AddClause(acc)
	if s.Solve() != Sat {
		t.Fatal("xor chain must be satisfiable")
	}
	parity := false
	for _, v := range vars {
		if s.Value(v) {
			parity = !parity
		}
	}
	if !parity {
		t.Error("model violates the xor constraint")
	}
}

// addXor encodes out <-> a xor b.
func addXor(s *Solver, a, b, out Lit) {
	s.AddClause(a.Neg(), b.Neg(), out.Neg())
	s.AddClause(a, b, out.Neg())
	s.AddClause(a, b.Neg(), out)
	s.AddClause(a.Neg(), b, out)
}

func TestPigeonholeUnsat(t *testing.T) {
	// n+1 pigeons into n holes is unsatisfiable.
	for n := 2; n <= 5; n++ {
		s := New()
		p := make([][]Lit, n+1)
		for i := range p {
			p[i] = make([]Lit, n)
			for j := range p[i] {
				p[i][j] = s.NewVar()
			}
		}
		for i := 0; i <= n; i++ {
			s.AddClause(p[i]...)
		}
		for j := 0; j < n; j++ {
			for i := 0; i <= n; i++ {
				for k := i + 1; k <= n; k++ {
					s.AddClause(p[i][j].Neg(), p[k][j].Neg())
				}
			}
		}
		if got := s.Solve(); got != Unsat {
			t.Errorf("PHP(%d): got %v", n, got)
		}
	}
}

func TestPigeonholeSat(t *testing.T) {
	// n pigeons into n holes is satisfiable.
	n := 5
	s := New()
	p := make([][]Lit, n)
	for i := range p {
		p[i] = make([]Lit, n)
		for j := range p[i] {
			p[i][j] = s.NewVar()
		}
	}
	for i := 0; i < n; i++ {
		s.AddClause(p[i]...)
	}
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			for k := i + 1; k < n; k++ {
				s.AddClause(p[i][j].Neg(), p[k][j].Neg())
			}
		}
	}
	if got := s.Solve(); got != Sat {
		t.Fatalf("got %v", got)
	}
	// Verify the model is a valid assignment.
	for i := 0; i < n; i++ {
		count := 0
		for j := 0; j < n; j++ {
			if s.Value(p[i][j]) {
				count++
			}
		}
		if count < 1 {
			t.Errorf("pigeon %d unplaced", i)
		}
	}
}

func TestRandom3SATModelsVerify(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 40; trial++ {
		nVars := 30
		nClauses := 100 // well below the ~4.26 phase transition: mostly SAT
		s := New()
		vars := make([]Lit, nVars)
		for i := range vars {
			vars[i] = s.NewVar()
		}
		clauses := make([][]Lit, 0, nClauses)
		for c := 0; c < nClauses; c++ {
			cl := make([]Lit, 3)
			for k := range cl {
				l := vars[rng.Intn(nVars)]
				if rng.Intn(2) == 0 {
					l = l.Neg()
				}
				cl[k] = l
			}
			clauses = append(clauses, cl)
			s.AddClause(cl...)
		}
		if s.Solve() != Sat {
			continue // rare UNSAT instances are fine; skip
		}
		for _, cl := range clauses {
			ok := false
			for _, l := range cl {
				if s.Value(l) {
					ok = true
					break
				}
			}
			if !ok {
				t.Fatalf("trial %d: model violates clause %v", trial, cl)
			}
		}
	}
}

func TestRandomUnsatByForcedContradiction(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 20; trial++ {
		s := New()
		n := 15
		vars := make([]Lit, n)
		for i := range vars {
			vars[i] = s.NewVar()
		}
		// Random implications plus a forced cycle a -> ... -> !a and !a -> a.
		for c := 0; c < 30; c++ {
			a := vars[rng.Intn(n)]
			b := vars[rng.Intn(n)]
			s.AddClause(a.Neg(), b)
		}
		a := vars[0]
		s.AddClause(a)       // a
		s.AddClause(a.Neg()) // !a
		if s.Solve() != Unsat {
			t.Fatalf("trial %d must be unsat", trial)
		}
	}
}

func TestAssumptions(t *testing.T) {
	s := New()
	a, b, c := s.NewVar(), s.NewVar(), s.NewVar()
	s.AddClause(a.Neg(), b)
	s.AddClause(b.Neg(), c)
	if s.Solve(a) != Sat {
		t.Fatal("satisfiable under a")
	}
	if !s.Value(c) {
		t.Error("a -> b -> c must force c")
	}
	// Contradictory assumptions.
	if s.Solve(a, c.Neg()) != Unsat {
		t.Error("a with !c must be unsat")
	}
	// Solver must remain reusable.
	if s.Solve(a.Neg()) != Sat {
		t.Error("still satisfiable under !a")
	}
	if s.Solve() != Sat {
		t.Error("still satisfiable with no assumptions")
	}
}

func TestAssumptionsRepeatedIncremental(t *testing.T) {
	// Incremental use: alternating assumption polarities many times.
	s := New()
	n := 10
	vars := make([]Lit, n)
	for i := range vars {
		vars[i] = s.NewVar()
	}
	for i := 0; i+1 < n; i++ {
		s.AddClause(vars[i].Neg(), vars[i+1]) // chain of implications
	}
	for round := 0; round < 20; round++ {
		if s.Solve(vars[0]) != Sat {
			t.Fatal("chain sat under head")
		}
		if !s.Value(vars[n-1]) {
			t.Fatal("implication chain must propagate")
		}
		if s.Solve(vars[0], vars[n-1].Neg()) != Unsat {
			t.Fatal("contradiction must be detected")
		}
	}
}

func TestGraphColoring(t *testing.T) {
	// A 5-cycle is 3-colorable but not 2-colorable.
	edges := [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}}
	build := func(colors int) *Solver {
		s := New()
		v := make([][]Lit, 5)
		for i := range v {
			v[i] = make([]Lit, colors)
			for c := range v[i] {
				v[i][c] = s.NewVar()
			}
			s.AddClause(v[i]...)
			for c1 := 0; c1 < colors; c1++ {
				for c2 := c1 + 1; c2 < colors; c2++ {
					s.AddClause(v[i][c1].Neg(), v[i][c2].Neg())
				}
			}
		}
		for _, e := range edges {
			for c := 0; c < colors; c++ {
				s.AddClause(v[e[0]][c].Neg(), v[e[1]][c].Neg())
			}
		}
		return s
	}
	if build(2).Solve() != Unsat {
		t.Error("C5 must not be 2-colorable")
	}
	if build(3).Solve() != Sat {
		t.Error("C5 must be 3-colorable")
	}
}

func TestMaxConflictsBudget(t *testing.T) {
	// A hard pigeonhole instance with a tiny budget must return Unknown.
	n := 8
	s := New()
	s.MaxConflicts = 10
	p := make([][]Lit, n+1)
	for i := range p {
		p[i] = make([]Lit, n)
		for j := range p[i] {
			p[i][j] = s.NewVar()
		}
	}
	for i := 0; i <= n; i++ {
		s.AddClause(p[i]...)
	}
	for j := 0; j < n; j++ {
		for i := 0; i <= n; i++ {
			for k := i + 1; k <= n; k++ {
				s.AddClause(p[i][j].Neg(), p[k][j].Neg())
			}
		}
	}
	if got := s.Solve(); got != Unknown {
		t.Errorf("got %v, want Unknown under budget", got)
	}
}

func TestLitAccessors(t *testing.T) {
	l := Lit(5)
	if l.Var() != 5 || !l.Sign() || l.Neg() != Lit(-5) || l.Neg().Var() != 5 || l.Neg().Sign() {
		t.Error("literal accessors broken")
	}
	if l.String() != "x5" || l.Neg().String() != "!x5" {
		t.Error("literal formatting broken")
	}
}

func TestStatusString(t *testing.T) {
	if Sat.String() != "SAT" || Unsat.String() != "UNSAT" || Unknown.String() != "UNKNOWN" {
		t.Error("status names broken")
	}
}

func TestMetricsCounted(t *testing.T) {
	s := New()
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(a, b)
	s.AddClause(a.Neg(), b.Neg())
	s.Solve()
	if m := s.Metrics(); m.Decisions == 0 {
		t.Errorf("expected at least one decision, metrics %+v", m)
	}
}

// TestMetricsRestartsAndLearnedDB drives a hard pigeonhole instance far
// enough that the solver restarts and learns clauses, checking the
// named-field counters the old Stats() triple did not expose.
func TestMetricsRestartsAndLearnedDB(t *testing.T) {
	n := 7
	s := New()
	p := make([][]Lit, n+1)
	for i := range p {
		p[i] = make([]Lit, n)
		for j := range p[i] {
			p[i][j] = s.NewVar()
		}
	}
	for i := 0; i <= n; i++ {
		s.AddClause(p[i]...)
	}
	for j := 0; j < n; j++ {
		for i := 0; i <= n; i++ {
			for k := i + 1; k <= n; k++ {
				s.AddClause(p[i][j].Neg(), p[k][j].Neg())
			}
		}
	}
	if got := s.Solve(); got != Unsat {
		t.Fatalf("pigeonhole(%d) = %v, want Unsat", n, got)
	}
	m := s.Metrics()
	if m.Conflicts == 0 || m.Decisions == 0 || m.Propagations == 0 {
		t.Errorf("effort counters empty: %+v", m)
	}
	if m.Restarts == 0 {
		t.Errorf("expected restarts on pigeonhole(%d): %+v", n, m)
	}
	if m.Learned == 0 {
		t.Errorf("expected learnt clauses: %+v", m)
	}
	if m.LearnedDB != m.Learned-m.LearnedDeleted {
		t.Errorf("learned DB accounting broken: %+v", m)
	}
	// Metrics accumulation helper.
	var total Metrics
	total.Add(m)
	total.Add(m)
	if total.Conflicts != 2*m.Conflicts || total.Restarts != 2*m.Restarts {
		t.Errorf("Metrics.Add broken: %+v", total)
	}
}

func TestLevel0UnitPropagationInAddClause(t *testing.T) {
	s := New()
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(a)
	s.AddClause(a.Neg(), b)
	// b must now be implied at level 0; adding !b yields immediate UNSAT.
	if s.AddClause(b.Neg()) {
		t.Error("adding !b must fail at level 0")
	}
	if s.Solve() != Unsat {
		t.Error("formula must be unsat")
	}
}

func BenchmarkPigeonhole7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		n := 7
		s := New()
		p := make([][]Lit, n+1)
		for i := range p {
			p[i] = make([]Lit, n)
			for j := range p[i] {
				p[i][j] = s.NewVar()
			}
		}
		for i := 0; i <= n; i++ {
			s.AddClause(p[i]...)
		}
		for j := 0; j < n; j++ {
			for i := 0; i <= n; i++ {
				for k := i + 1; k <= n; k++ {
					s.AddClause(p[i][j].Neg(), p[k][j].Neg())
				}
			}
		}
		if s.Solve() != Unsat {
			b.Fatal("PHP must be unsat")
		}
	}
}

func TestAddClauseUnknownLiteralIsError(t *testing.T) {
	s := New()
	a := s.NewVar()
	if s.AddClause(a, Lit(99)) {
		t.Error("clause with an unknown literal must be rejected")
	}
	if s.Err() == nil {
		t.Fatal("unknown literal must record an API error, not panic")
	}
	// The solver is poisoned: further clauses are rejected and Solve
	// answers Unknown, never a bogus Sat/Unsat.
	if s.AddClause(a) {
		t.Error("AddClause after an API error must be rejected")
	}
	if got := s.Solve(); got != Unknown {
		t.Errorf("Solve after API error = %v, want Unknown", got)
	}
}

func TestAddClauseZeroLiteralIsError(t *testing.T) {
	s := New()
	s.NewVar()
	if s.AddClause(Lit(0)) {
		t.Error("clause with literal 0 must be rejected")
	}
	if s.Err() == nil {
		t.Fatal("literal 0 must record an API error")
	}
}

func TestHealthySolverHasNoErr(t *testing.T) {
	s := New()
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(a, b)
	if s.Solve() != Sat {
		t.Fatal("trivial formula must be sat")
	}
	if s.Err() != nil {
		t.Fatalf("healthy solver reports Err %v", s.Err())
	}
}
