// Package sat implements a CDCL (conflict-driven clause learning) SAT
// solver with two-watched-literal propagation, first-UIP learning, VSIDS
// branching, phase saving, and Luby restarts.
//
// The solver substitutes the Z3 SMT backend of the original Bestagon flow
// (see DESIGN.md §4): the exact physical design of flow step (4), the
// SAT-based equivalence check of step (5), and the exact-synthesis NPN
// database of step (2) all reduce to plain Boolean satisfiability.
package sat

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/faults"
)

// Lit is a literal: variable index (1-based) with sign. Positive values are
// positive literals, negative values negated ones. 0 is invalid.
type Lit int

// Neg returns the negated literal.
func (l Lit) Neg() Lit { return -l }

// Var returns the 1-based variable index of the literal.
func (l Lit) Var() int {
	if l < 0 {
		return int(-l)
	}
	return int(l)
}

// Sign reports whether the literal is positive.
func (l Lit) Sign() bool { return l > 0 }

// String formats the literal as "x3" or "!x3".
func (l Lit) String() string {
	if l < 0 {
		return fmt.Sprintf("!x%d", -l)
	}
	return fmt.Sprintf("x%d", l)
}

// Status is the result of a Solve call.
type Status int

// Solver outcomes.
const (
	Unknown Status = iota
	Sat
	Unsat
)

// String names the status.
func (s Status) String() string {
	switch s {
	case Sat:
		return "SAT"
	case Unsat:
		return "UNSAT"
	default:
		return "UNKNOWN"
	}
}

// lbool is a three-valued boolean used for assignments.
type lbool int8

const (
	lUndef lbool = iota
	lTrue
	lFalse
)

// clause is a disjunction of literals; learnt marks conflict clauses.
type clause struct {
	lits     []Lit
	learnt   bool
	deleted  bool
	activity float64
}

// watcher records a clause watching a literal plus the blocking literal
// optimization.
type watcher struct {
	clauseIdx int
	blocker   Lit
}

// Solver is a CDCL SAT solver. The zero value is not usable; construct with
// New.
type Solver struct {
	numVars  int
	clauses  []*clause
	watches  [][]watcher // indexed by watchIdx(lit)
	assign   []lbool     // indexed by variable (1-based; index 0 unused)
	level    []int
	reason   []int // clause index that implied the variable, or -1
	trail    []Lit
	trailLim []int
	qhead    int

	activity  []float64
	varInc    float64
	order     *varHeap
	phase     []bool  // saved phases
	seen      []bool  // scratch for conflict analysis
	model     []lbool // snapshot of the last satisfying assignment
	ok        bool    // false once a top-level conflict is found
	apiErr    error   // first API misuse (see Err); solver is then unusable
	claInc    float64 // clause activity increment
	maxLearnt int
	m         Metrics

	// MaxConflicts bounds the search effort; 0 means unlimited. When the
	// bound is hit, Solve returns Unknown.
	MaxConflicts int64
}

// Metrics counts the solver's search effort with named fields. The solver
// updates the struct in place while solving; snapshot it with
// Solver.Metrics at any time (typically after Solve returns).
type Metrics struct {
	// Conflicts is the number of conflicts encountered.
	Conflicts int64 `json:"conflicts"`
	// Decisions is the number of branching decisions made.
	Decisions int64 `json:"decisions"`
	// Propagations is the number of unit propagations performed.
	Propagations int64 `json:"propagations"`
	// Restarts is the number of Luby restarts taken.
	Restarts int64 `json:"restarts"`
	// Learned is the total number of learnt clauses added.
	Learned int64 `json:"learned"`
	// LearnedDeleted is the number of learnt clauses dropped by database
	// reduction.
	LearnedDeleted int64 `json:"learned_deleted"`
	// LearnedDB is the current learnt-clause database size.
	LearnedDB int64 `json:"learned_db"`
}

// Add accumulates another metrics snapshot into m (used to total effort
// across several solver instances).
func (m *Metrics) Add(o Metrics) {
	m.Conflicts += o.Conflicts
	m.Decisions += o.Decisions
	m.Propagations += o.Propagations
	m.Restarts += o.Restarts
	m.Learned += o.Learned
	m.LearnedDeleted += o.LearnedDeleted
	m.LearnedDB += o.LearnedDB
}

// New returns an empty solver.
func New() *Solver {
	s := &Solver{
		watches:   make([][]watcher, 2),
		varInc:    1.0,
		claInc:    1.0,
		maxLearnt: 3000,
		ok:        true,
	}
	s.order = &varHeap{solver: s}
	// Variable index 0 is unused.
	s.assign = append(s.assign, lUndef)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, -1)
	s.activity = append(s.activity, 0)
	s.phase = append(s.phase, false)
	s.seen = append(s.seen, false)
	return s
}

// watchIdx maps a literal to its watch-list slot.
func watchIdx(l Lit) int {
	if l > 0 {
		return 2 * int(l)
	}
	return 2*int(-l) + 1
}

// NewVar allocates a fresh variable and returns its positive literal.
func (s *Solver) NewVar() Lit {
	s.numVars++
	s.assign = append(s.assign, lUndef)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, -1)
	s.activity = append(s.activity, 0)
	s.phase = append(s.phase, false)
	s.seen = append(s.seen, false)
	s.watches = append(s.watches, nil, nil)
	s.order.push(s.numVars)
	return Lit(s.numVars)
}

// NumVars returns the number of allocated variables.
func (s *Solver) NumVars() int { return s.numVars }

// NumClauses returns the number of problem clauses added.
func (s *Solver) NumClauses() int {
	n := 0
	for _, c := range s.clauses {
		if !c.learnt {
			n++
		}
	}
	return n
}

// Metrics returns a snapshot of the search-effort counters.
func (s *Solver) Metrics() Metrics { return s.m }

// value returns the current assignment of a literal.
func (s *Solver) value(l Lit) lbool {
	v := s.assign[l.Var()]
	if v == lUndef {
		return lUndef
	}
	if l.Sign() == (v == lTrue) {
		return lTrue
	}
	return lFalse
}

// AddClause adds a clause; returns false if the formula became trivially
// unsatisfiable. Literals must reference variables from NewVar: a clause
// with an unknown literal, or one added while a search is in progress, is
// rejected (false) and recorded as a usage error — the solver is then
// stuck at Unknown until the error is inspected via Err. Misuse thus
// surfaces as an error at the API boundary instead of a panic that would
// tear down a shared worker; internal invariant violations still panic.
func (s *Solver) AddClause(lits ...Lit) bool {
	if !s.ok || s.apiErr != nil {
		return false
	}
	if s.decisionLevel() != 0 {
		s.apiErr = fmt.Errorf("sat: AddClause called during search")
		return false
	}
	// Normalize: sort, dedupe, detect tautology, drop false literals.
	ls := append([]Lit(nil), lits...)
	sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
	out := ls[:0]
	var prev Lit
	for _, l := range ls {
		if l.Var() > s.numVars || l == 0 {
			s.apiErr = fmt.Errorf("sat: clause references unknown literal %d", l)
			return false
		}
		if l == prev {
			continue
		}
		if l == prev.Neg() && prev != 0 {
			return true // tautology
		}
		switch s.value(l) {
		case lTrue:
			return true // already satisfied at level 0
		case lFalse:
			continue // drop
		}
		out = append(out, l)
		prev = l
	}
	switch len(out) {
	case 0:
		s.ok = false
		return false
	case 1:
		if !s.enqueue(out[0], -1) {
			s.ok = false
			return false
		}
		if s.propagate() != -1 {
			s.ok = false
			return false
		}
		return true
	}
	s.attach(&clause{lits: append([]Lit(nil), out...)})
	return true
}

// attach registers the clause with the watch lists.
func (s *Solver) attach(c *clause) {
	idx := len(s.clauses)
	s.clauses = append(s.clauses, c)
	w0, w1 := watchIdx(c.lits[0].Neg()), watchIdx(c.lits[1].Neg())
	s.watches[w0] = append(s.watches[w0], watcher{idx, c.lits[1]})
	s.watches[w1] = append(s.watches[w1], watcher{idx, c.lits[0]})
}

// decisionLevel returns the current decision level.
func (s *Solver) decisionLevel() int { return len(s.trailLim) }

// enqueue assigns a literal true with the given reason clause (or -1).
func (s *Solver) enqueue(l Lit, reason int) bool {
	switch s.value(l) {
	case lTrue:
		return true
	case lFalse:
		return false
	}
	v := l.Var()
	if l.Sign() {
		s.assign[v] = lTrue
	} else {
		s.assign[v] = lFalse
	}
	s.level[v] = s.decisionLevel()
	s.reason[v] = reason
	s.phase[v] = l.Sign()
	s.trail = append(s.trail, l)
	return true
}

// propagate performs unit propagation; returns the index of a conflicting
// clause or -1.
func (s *Solver) propagate() int {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead]
		s.qhead++
		s.m.Propagations++
		wi := watchIdx(p)
		ws := s.watches[wi]
		kept := ws[:0]
		for i := 0; i < len(ws); i++ {
			w := ws[i]
			if s.value(w.blocker) == lTrue {
				kept = append(kept, w)
				continue
			}
			c := s.clauses[w.clauseIdx]
			if c.deleted {
				continue // drop watcher of a deleted clause
			}
			// Ensure the false literal is lits[1].
			if c.lits[0] == p.Neg() {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			if s.value(c.lits[0]) == lTrue {
				kept = append(kept, watcher{w.clauseIdx, c.lits[0]})
				continue
			}
			// Look for a new watch.
			found := false
			for k := 2; k < len(c.lits); k++ {
				if s.value(c.lits[k]) != lFalse {
					c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
					nw := watchIdx(c.lits[1].Neg())
					s.watches[nw] = append(s.watches[nw], watcher{w.clauseIdx, c.lits[0]})
					found = true
					break
				}
			}
			if found {
				continue
			}
			// Clause is unit or conflicting.
			kept = append(kept, w)
			if s.value(c.lits[0]) == lFalse {
				// Conflict: restore remaining watchers and report.
				kept = append(kept, ws[i+1:]...)
				s.watches[wi] = kept
				s.qhead = len(s.trail)
				return w.clauseIdx
			}
			s.enqueue(c.lits[0], w.clauseIdx)
		}
		s.watches[wi] = kept
	}
	return -1
}

// bumpClause increases a learnt clause's activity.
func (s *Solver) bumpClause(c *clause) {
	c.activity += s.claInc
	if c.activity > 1e100 {
		for _, cl := range s.clauses {
			if cl.learnt {
				cl.activity *= 1e-100
			}
		}
		s.claInc *= 1e-100
	}
}

// reduceDB deletes the lower-activity half of the learnt clauses, keeping
// binary clauses and clauses currently acting as reasons.
func (s *Solver) reduceDB() {
	locked := make(map[int]bool)
	for _, l := range s.trail {
		if r := s.reason[l.Var()]; r >= 0 {
			locked[r] = true
		}
	}
	var cands []int
	for i, c := range s.clauses {
		if c.learnt && !c.deleted && len(c.lits) > 2 && !locked[i] {
			cands = append(cands, i)
		}
	}
	sort.Slice(cands, func(a, b int) bool {
		return s.clauses[cands[a]].activity < s.clauses[cands[b]].activity
	})
	for _, i := range cands[:len(cands)/2] {
		s.clauses[i].deleted = true
		s.m.LearnedDB--
		s.m.LearnedDeleted++
	}
}

// bumpVar increases a variable's VSIDS activity.
func (s *Solver) bumpVar(v int) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := 1; i <= s.numVars; i++ {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	s.order.update(v)
}

// analyze performs first-UIP conflict analysis, returning the learnt clause
// (asserting literal first) and the backtrack level.
func (s *Solver) analyze(confl int) ([]Lit, int) {
	learnt := []Lit{0} // slot 0 reserved for the asserting literal
	seen := s.seen
	counter := 0
	var p Lit
	idx := len(s.trail) - 1

	c := s.clauses[confl]
	var toClear []int
	for {
		if c.learnt {
			s.bumpClause(c)
		}
		for _, q := range c.lits {
			if q == p {
				continue
			}
			v := q.Var()
			if seen[v] || s.level[v] == 0 {
				continue
			}
			seen[v] = true
			toClear = append(toClear, v)
			s.bumpVar(v)
			if s.level[v] >= s.decisionLevel() {
				counter++
			} else {
				learnt = append(learnt, q)
			}
		}
		// Find next literal on the trail to resolve on.
		for !seen[s.trail[idx].Var()] {
			idx--
		}
		p = s.trail[idx]
		idx--
		seen[p.Var()] = false
		counter--
		if counter == 0 {
			break
		}
		c = s.clauses[s.reason[p.Var()]]
	}
	learnt[0] = p.Neg()
	for _, v := range toClear {
		seen[v] = false
	}

	// Compute backtrack level: second-highest level in the clause.
	btLevel := 0
	if len(learnt) > 1 {
		maxI := 1
		for i := 2; i < len(learnt); i++ {
			if s.level[learnt[i].Var()] > s.level[learnt[maxI].Var()] {
				maxI = i
			}
		}
		learnt[1], learnt[maxI] = learnt[maxI], learnt[1]
		btLevel = s.level[learnt[1].Var()]
	}
	return learnt, btLevel
}

// cancelUntil backtracks to the given decision level.
func (s *Solver) cancelUntil(level int) {
	if s.decisionLevel() <= level {
		return
	}
	bound := s.trailLim[level]
	for i := len(s.trail) - 1; i >= bound; i-- {
		v := s.trail[i].Var()
		s.assign[v] = lUndef
		s.reason[v] = -1
		s.order.pushIfAbsent(v)
	}
	s.trail = s.trail[:bound]
	s.trailLim = s.trailLim[:level]
	s.qhead = len(s.trail)
}

// luby computes the Luby restart sequence (1,1,2,1,1,2,4,...).
func luby(i int64) int64 {
	// Find the finite subsequence that contains index i and its size.
	var size, seq int64 = 1, 0
	for size < i+1 {
		seq++
		size = 2*size + 1
	}
	for size-1 != i {
		size = (size - 1) / 2
		seq--
		i %= size
	}
	return 1 << uint(seq)
}

// ctxCheckMask throttles context polling: cancellation is checked once
// every ctxCheckMask+1 conflicts and once every ctxCheckMask+1 decisions,
// so even propagation-heavy searches notice a cancelled context within
// microseconds of work rather than running to completion.
const ctxCheckMask = 255

// Solve searches for a satisfying assignment of all added clauses, under
// the given assumptions (literals forced true for this call only).
func (s *Solver) Solve(assumptions ...Lit) Status {
	return s.SolveContext(context.Background(), assumptions...)
}

// Err returns the first API usage error recorded by AddClause (an unknown
// literal, or a clause added during search), or nil. Once set, AddClause
// rejects further clauses and Solve returns Unknown — never a bogus
// Sat/Unsat derived from a partially-built formula.
func (s *Solver) Err() error { return s.apiErr }

// SolveContext is Solve under a context: when the context is cancelled or
// its deadline expires the search is interrupted and Unknown is returned.
// A nil context behaves like context.Background.
func (s *Solver) SolveContext(ctx context.Context, assumptions ...Lit) Status {
	if s.apiErr != nil || faults.Should("sat.solve.unknown") {
		return Unknown
	}
	if !s.ok {
		return Unsat
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if ctx.Err() != nil {
		return Unknown
	}
	// Fast path: contexts that can never be cancelled need no polling.
	poll := ctx.Done() != nil
	defer s.cancelUntil(0)

	var restarts int64
	confBudget := int64(100) * luby(restarts)
	confsAtRestart := int64(0)

	for {
		if confl := s.propagate(); confl != -1 {
			// Conflict.
			s.m.Conflicts++
			confsAtRestart++
			if s.decisionLevel() == 0 {
				s.ok = false
				return Unsat
			}
			// Conflict below the assumption levels means assumptions failed.
			learnt, btLevel := s.analyze(confl)
			if btLevel < len(assumptions) {
				btLevel = s.assumptionSafeLevel(learnt, btLevel, len(assumptions))
				if btLevel < 0 {
					return Unsat
				}
			}
			s.cancelUntil(btLevel)
			if len(learnt) == 1 {
				if s.decisionLevel() != 0 {
					// Can't add a unit except at level 0; force restart.
					s.cancelUntil(0)
				}
				if !s.enqueue(learnt[0], -1) {
					s.ok = false
					return Unsat
				}
			} else {
				c := &clause{lits: learnt, learnt: true, activity: s.claInc}
				s.attach(c)
				s.m.Learned++
				s.m.LearnedDB++
				s.enqueue(learnt[0], len(s.clauses)-1)
			}
			s.varInc /= 0.95
			s.claInc /= 0.999
			if s.MaxConflicts > 0 && s.m.Conflicts >= s.MaxConflicts {
				return Unknown
			}
			if poll && s.m.Conflicts&ctxCheckMask == 0 && ctx.Err() != nil {
				return Unknown
			}
			if confsAtRestart >= confBudget {
				restarts++
				s.m.Restarts++
				confBudget = 100 * luby(restarts)
				confsAtRestart = 0
				s.cancelUntil(0)
				if s.m.LearnedDB > int64(s.maxLearnt) {
					s.reduceDB()
					s.maxLearnt += s.maxLearnt / 10
				}
			}
			continue
		}

		// No conflict: apply pending assumptions as decisions.
		if s.decisionLevel() < len(assumptions) {
			a := assumptions[s.decisionLevel()]
			switch s.value(a) {
			case lTrue:
				// Already satisfied: open an empty decision level to keep
				// level bookkeeping aligned with assumption count.
				s.trailLim = append(s.trailLim, len(s.trail))
			case lFalse:
				return Unsat
			default:
				s.trailLim = append(s.trailLim, len(s.trail))
				s.enqueue(a, -1)
			}
			continue
		}

		// Pick the next decision variable.
		v := s.pickBranchVar()
		if v == 0 {
			s.model = append(s.model[:0], s.assign...)
			return Sat
		}
		s.m.Decisions++
		if poll && s.m.Decisions&ctxCheckMask == 0 && ctx.Err() != nil {
			return Unknown
		}
		s.trailLim = append(s.trailLim, len(s.trail))
		l := Lit(v)
		if !s.phase[v] {
			l = l.Neg()
		}
		s.enqueue(l, -1)
	}
}

// assumptionSafeLevel adjusts the backtrack level when learning under
// assumptions; returns -1 if the assumptions themselves are refuted.
func (s *Solver) assumptionSafeLevel(learnt []Lit, btLevel, numAssumptions int) int {
	// If the asserting literal negates an assumption, the instance is UNSAT
	// under these assumptions once we cannot backtrack past them.
	if btLevel < numAssumptions {
		// Permit backtracking into assumption levels: the asserting literal
		// will be enqueued there, possibly contradicting a later assumption,
		// which Solve detects when re-applying it.
		if btLevel < 0 {
			return -1
		}
	}
	return btLevel
}

// pickBranchVar returns the unassigned variable with the highest activity,
// or 0 when all variables are assigned.
func (s *Solver) pickBranchVar() int {
	for s.order.len() > 0 {
		v := s.order.pop()
		if s.assign[v] == lUndef {
			return v
		}
	}
	return 0
}

// Value returns the model value of a literal after Solve returned Sat.
func (s *Solver) Value(l Lit) bool {
	if l.Var() >= len(s.model) {
		return false
	}
	v := s.model[l.Var()]
	if v == lUndef {
		return false
	}
	return l.Sign() == (v == lTrue)
}

// Model returns the model as a slice indexed by variable after Sat.
func (s *Solver) Model() []bool {
	m := make([]bool, s.numVars+1)
	for v := 1; v <= s.numVars && v < len(s.model); v++ {
		m[v] = s.model[v] == lTrue
	}
	return m
}

// varHeap is a max-heap over variable activity with lazy deletion.
type varHeap struct {
	solver *Solver
	heap   []int
	pos    []int // variable -> heap index + 1, 0 when absent
}

func (h *varHeap) len() int { return len(h.heap) }

func (h *varHeap) less(i, j int) bool {
	return h.solver.activity[h.heap[i]] > h.solver.activity[h.heap[j]]
}

func (h *varHeap) swap(i, j int) {
	h.heap[i], h.heap[j] = h.heap[j], h.heap[i]
	h.pos[h.heap[i]] = i + 1
	h.pos[h.heap[j]] = j + 1
}

func (h *varHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *varHeap) down(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(h.heap) && h.less(l, smallest) {
			smallest = l
		}
		if r < len(h.heap) && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.swap(i, smallest)
		i = smallest
	}
}

func (h *varHeap) push(v int) {
	for len(h.pos) <= v {
		h.pos = append(h.pos, 0)
	}
	if h.pos[v] != 0 {
		return
	}
	h.heap = append(h.heap, v)
	h.pos[v] = len(h.heap)
	h.up(len(h.heap) - 1)
}

func (h *varHeap) pushIfAbsent(v int) { h.push(v) }

func (h *varHeap) pop() int {
	v := h.heap[0]
	last := len(h.heap) - 1
	h.swap(0, last)
	h.heap = h.heap[:last]
	h.pos[v] = 0
	if len(h.heap) > 0 {
		h.down(0)
	}
	return v
}

func (h *varHeap) update(v int) {
	if v < len(h.pos) && h.pos[v] != 0 {
		i := h.pos[v] - 1
		h.up(i)
		h.down(h.pos[v] - 1)
	}
}
