// Package designer searches for dot-accurate SiDB gate implementations:
// given a tile template with fixed I/O structures and a target truth table,
// it places additional SiDBs in the logic design canvas and validates
// candidates with ground-state simulation.
//
// The Bestagon paper designed its tiles "with the assistance of a
// reinforcement learning agent [28] which is allowed to place SiDBs within
// the logic design canvas and toggle through input combinations to check
// for logic correctness", followed by manual review. This package
// substitutes the RL agent with a deterministic seeded stochastic search
// (random restarts + local moves) over canvas dot placements — the same
// search space, the same validation loop (see DESIGN.md §4).
package designer

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/lattice"
	"repro/internal/obs"
	"repro/internal/sidb"
	"repro/internal/sim"
)

// Template describes the fixed part of a gate tile under design.
type Template struct {
	// Fixed dots (wire stubs, output perturbers) present for every input.
	Fixed []sidb.Dot
	// InputPerturbers returns the perturber dots encoding the given input
	// pattern (bit i = input i; near placement for 1, far for 0).
	InputPerturbers func(pattern uint32) []lattice.Site
	// NumInputs is the number of logic inputs.
	NumInputs int
	// Outputs are the output BDL pairs (port order).
	Outputs []sidb.BDLPair
	// Target gives the expected output bits for each input pattern.
	Target func(pattern uint32) uint32
	// Params are the simulation parameters for validation.
	Params sim.Params
	// Solver names the sim ground-state solver used for evaluation
	// ("" = automatic dispatch; see sim.SolverNames). UseAnneal overrides
	// it.
	Solver string
	// UseAnneal forces simulated-annealing ground-state search during
	// evaluation even when exhaustive search would be possible; used to
	// keep large full-tile refinements fast (final designs are re-verified
	// exhaustively).
	UseAnneal bool
}

// Candidate is a scored canvas placement.
type Candidate struct {
	Canvas []lattice.Site
	// Correct counts input patterns with valid, correct outputs.
	Correct int
	// Patterns is the total number of input patterns.
	Patterns int
	// MinGap is the smallest output degeneracy gap across patterns (eV);
	// only meaningful when all patterns are correct.
	MinGap float64
}

// Works reports whether the candidate implements the target exactly.
func (c Candidate) Works() bool { return c.Correct == c.Patterns }

// Options tunes the search.
type Options struct {
	Seed       int64
	Restarts   int
	Iterations int // local-move iterations per restart
	MinDots    int // canvas dots to place (lower bound)
	MaxDots    int
	// Initial seeds the first restart with a known starting placement
	// (e.g. a solution from a reduced model being refined).
	Initial []lattice.Site
	// Tracer receives search telemetry (restart/evaluation counts, best
	// candidate quality); nil disables it at no cost.
	Tracer *obs.Tracer
}

// DefaultOptions returns settings that explore a Bestagon canvas in a few
// seconds per gate.
func DefaultOptions() Options {
	return Options{Seed: 1, Restarts: 12, Iterations: 400, MinDots: 0, MaxDots: 4}
}

// Evaluate scores a canvas placement against the template.
func Evaluate(t *Template, canvas []lattice.Site) Candidate {
	patterns := 1 << t.NumInputs
	cand := Candidate{Canvas: canvas, Patterns: patterns, MinGap: 1e9}
	for p := 0; p < patterns; p++ {
		l := &sidb.Layout{}
		for _, d := range t.Fixed {
			l.Dots = append(l.Dots, d)
		}
		for _, s := range t.InputPerturbers(uint32(p)) {
			l.Add(s, sidb.RolePerturber)
		}
		for _, s := range canvas {
			l.Add(s, sidb.RoleNormal)
		}
		idx := l.SiteIndex()
		eng := sim.NewEngine(l, t.Params)
		var gs []bool
		if t.UseAnneal {
			gs, _ = eng.Anneal(sim.DefaultAnnealConfig())
		} else if solver, err := sim.Lookup(t.Solver); err == nil {
			if sol, serr := solver.Solve(eng, sim.SolveOptions{}); serr == nil {
				gs = sol.Charges
			} else {
				gs, _ = eng.Anneal(sim.DefaultAnnealConfig())
			}
		} else {
			gs, _ = eng.GroundState()
		}
		want := t.Target(uint32(p))
		ok := true
		for port, pair := range t.Outputs {
			state, err := pair.State(idx, gs)
			if err != nil || state != (want>>port&1 == 1) {
				ok = false
				break
			}
		}
		if !ok {
			cand.MinGap = 0
			continue
		}
		cand.Correct++
		// Gap assessment on exhaustive-capable instances only.
		free := 0
		for _, d := range l.Dots {
			if d.Role != sidb.RolePerturber {
				free++
			}
		}
		if free <= sim.ExactLimit && !t.UseAnneal {
			var interest []int
			for _, pair := range t.Outputs {
				interest = append(interest, idx[pair.Bit0], idx[pair.Bit1])
			}
			if gap, err := eng.DegeneracyGap(interest); err == nil && gap < cand.MinGap {
				cand.MinGap = gap
			}
		}
	}
	if cand.Correct < patterns {
		cand.MinGap = 0
	}
	return cand
}

// better orders candidates: more correct patterns first, then larger gap.
func better(a, b Candidate) bool {
	if a.Correct != b.Correct {
		return a.Correct > b.Correct
	}
	return a.MinGap > b.MinGap
}

// Search looks for a canvas placement implementing the template's target.
// Candidates are drawn from the given candidate sites; the search is
// deterministic for fixed options.
func Search(t *Template, candidates []lattice.Site, opts Options) (Candidate, error) {
	tr := opts.Tracer
	sp := tr.Start("designer/search")
	defer sp.End()
	if len(candidates) == 0 {
		return Evaluate(t, nil), nil
	}
	evals := int64(0)
	restartsUsed := 0
	best := Candidate{MinGap: -1}
	for restart := 0; restart < opts.Restarts; restart++ {
		restartsUsed = restart + 1
		rng := rand.New(rand.NewSource(opts.Seed + int64(restart)*104729))
		k := opts.MinDots
		if opts.MaxDots > opts.MinDots {
			k += rng.Intn(opts.MaxDots - opts.MinDots + 1)
		}
		var cur []lattice.Site
		if restart == 0 && len(opts.Initial) > 0 {
			cur = append([]lattice.Site(nil), opts.Initial...)
			sortSites(cur)
		} else {
			cur = randomSubset(rng, candidates, k)
		}
		curScore := Evaluate(t, cur)
		evals++
		if best.MinGap < 0 || better(curScore, best) {
			best = curScore
		}
		for it := 0; it < opts.Iterations; it++ {
			next := mutate(rng, cur, candidates, opts)
			nextScore := Evaluate(t, next)
			evals++
			if better(nextScore, curScore) || (!better(curScore, nextScore) && rng.Intn(4) == 0) {
				cur, curScore = next, nextScore
				if better(curScore, best) {
					best = curScore
				}
			}
			if best.Works() && best.MinGap > 0.01 && it > 40 {
				break
			}
		}
		if best.Works() && best.MinGap > 0.01 {
			break
		}
	}
	sp.SetAttr("restarts", restartsUsed)
	sp.SetAttr("evaluations", evals)
	sp.SetAttr("correct", best.Correct)
	sp.SetAttr("patterns", best.Patterns)
	sp.SetAttr("min_gap", best.MinGap)
	tr.Counter("designer/evaluations").Add(evals)
	tr.Counter("designer/restarts").Add(int64(restartsUsed))
	if !best.Works() {
		return best, fmt.Errorf("designer: no working placement found (best %d/%d patterns)", best.Correct, best.Patterns)
	}
	return best, nil
}

// randomSubset picks k distinct sites.
func randomSubset(rng *rand.Rand, cands []lattice.Site, k int) []lattice.Site {
	perm := rng.Perm(len(cands))
	if k > len(cands) {
		k = len(cands)
	}
	out := make([]lattice.Site, k)
	for i := 0; i < k; i++ {
		out[i] = cands[perm[i]]
	}
	sortSites(out)
	return out
}

// mutate applies one local move: add, remove, or replace a dot.
func mutate(rng *rand.Rand, cur []lattice.Site, cands []lattice.Site, opts Options) []lattice.Site {
	out := append([]lattice.Site(nil), cur...)
	in := map[lattice.Site]bool{}
	for _, s := range out {
		in[s] = true
	}
	pick := func() (lattice.Site, bool) {
		for tries := 0; tries < 20; tries++ {
			s := cands[rng.Intn(len(cands))]
			if !in[s] {
				return s, true
			}
		}
		return lattice.Site{}, false
	}
	switch op := rng.Intn(3); {
	case op == 0 && len(out) < opts.MaxDots:
		if s, ok := pick(); ok {
			out = append(out, s)
		}
	case op == 1 && len(out) > opts.MinDots && len(out) > 0:
		i := rng.Intn(len(out))
		out = append(out[:i], out[i+1:]...)
	default:
		if len(out) > 0 {
			if s, ok := pick(); ok {
				out[rng.Intn(len(out))] = s
			}
		}
	}
	sortSites(out)
	return out
}

// sortSites orders sites deterministically.
func sortSites(ss []lattice.Site) {
	sort.Slice(ss, func(i, j int) bool {
		if ss[i].M != ss[j].M {
			return ss[i].M < ss[j].M
		}
		if ss[i].N != ss[j].N {
			return ss[i].N < ss[j].N
		}
		return ss[i].L < ss[j].L
	})
}

// Grid returns candidate sites on a rectangular cell region with the given
// stride, excluding sites too close (< minNM) to any fixed dot.
func Grid(x0, y0, x1, y1, stride int, fixed []sidb.Dot, minNM float64) []lattice.Site {
	var out []lattice.Site
	for y := y0; y <= y1; y += stride {
		for x := x0; x <= x1; x += stride {
			s := lattice.FromCell(x, y)
			ok := true
			for _, d := range fixed {
				if lattice.DistanceNM(s, d.Site) < minNM {
					ok = false
					break
				}
			}
			if ok {
				out = append(out, s)
			}
		}
	}
	return out
}
