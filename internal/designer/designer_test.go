package designer

import (
	"testing"

	"repro/internal/lattice"
	"repro/internal/sidb"
	"repro/internal/sim"
)

// wireTemplate is a minimal 1-input template on the validated ray
// geometry: input pair at (15,0), output pair at (28,20), the search must
// bridge the two (the known-good bridge is the ray anchors (19,7) and
// (24,13)).
func wireTemplate() *Template {
	in := sidb.BDLPair{Bit0: lattice.FromCell(15, 0), Bit1: lattice.FromCell(16, 2)}
	out := sidb.BDLPair{Bit0: lattice.FromCell(28, 20), Bit1: lattice.FromCell(29, 22)}
	fixed := []sidb.Dot{
		{Site: in.Bit0, Role: sidb.RoleInput},
		{Site: in.Bit1, Role: sidb.RoleInput},
		{Site: out.Bit0, Role: sidb.RoleOutput},
		{Site: out.Bit1, Role: sidb.RoleOutput},
		// Downstream emulation behind the output pair.
		{Site: lattice.FromCell(33, 26), Role: sidb.RolePerturber},
	}
	return &Template{
		Fixed: fixed,
		InputPerturbers: func(pat uint32) []lattice.Site {
			// Upstream ray pair emulation (see gatelib.InputEmulation).
			if pat&1 == 1 {
				return []lattice.Site{lattice.FromCell(12, -5), lattice.FromCell(8, -12)}
			}
			return []lattice.Site{lattice.FromCell(11, -7), lattice.FromCell(7, -14)}
		},
		NumInputs: 1,
		Outputs:   []sidb.BDLPair{out},
		Target:    func(pat uint32) uint32 { return pat & 1 },
		Params:    sim.ParamsFig5,
	}
}

func TestEvaluateCountsPatterns(t *testing.T) {
	tpl := wireTemplate()
	cand := Evaluate(tpl, nil)
	if cand.Patterns != 2 {
		t.Fatalf("patterns = %d, want 2", cand.Patterns)
	}
	if cand.Correct < 0 || cand.Correct > 2 {
		t.Fatalf("correct = %d out of range", cand.Correct)
	}
}

func TestEvaluateKnownGoodChain(t *testing.T) {
	// The ray anchors (19,7) and (24,13) bridge input and output.
	canvas := []lattice.Site{
		lattice.FromCell(19, 7), lattice.FromCell(20, 9),
		lattice.FromCell(24, 13), lattice.FromCell(25, 15),
	}
	cand := Evaluate(wireTemplate(), canvas)
	if !cand.Works() {
		t.Fatalf("known-good chain rejected: %d/%d", cand.Correct, cand.Patterns)
	}
	if cand.MinGap <= 0 {
		t.Error("working candidate must have positive gap")
	}
}

func TestSearchFindsWire(t *testing.T) {
	tpl := wireTemplate()
	cands := Grid(15, 4, 28, 18, 1, tpl.Fixed, 0.5)
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	opts := Options{Seed: 3, Restarts: 8, Iterations: 200, MaxDots: 4}
	best, err := Search(tpl, cands, opts)
	if err != nil {
		t.Fatalf("search failed: %v (best %d/%d)", err, best.Correct, best.Patterns)
	}
	// Deterministic: same options give the same result.
	again, err2 := Search(tpl, cands, opts)
	if err2 != nil {
		t.Fatal(err2)
	}
	if len(again.Canvas) != len(best.Canvas) {
		t.Error("search must be deterministic for a fixed seed")
	}
}

func TestGridExcludesNearFixed(t *testing.T) {
	fixed := []sidb.Dot{{Site: lattice.FromCell(10, 10)}}
	cands := Grid(9, 9, 11, 11, 1, fixed, 1.0)
	for _, c := range cands {
		if lattice.DistanceNM(c, fixed[0].Site) < 1.0 {
			t.Errorf("candidate %v too close to fixed dot", c)
		}
	}
}

func TestSearchReportsFailure(t *testing.T) {
	tpl := wireTemplate()
	// Impossible target: constant 1 regardless of input, with an output
	// wired to follow the input -> at least one pattern must fail.
	tpl.Target = func(pat uint32) uint32 { return 1 }
	cands := Grid(12, 6, 20, 16, 2, tpl.Fixed, 0.5)
	opts := Options{Seed: 1, Restarts: 2, Iterations: 40, MaxDots: 2}
	if _, err := Search(tpl, cands, opts); err == nil {
		t.Skip("search surprisingly satisfied constant-1; acceptable but unexpected")
	}
}
