package sidb

import (
	"testing"

	"repro/internal/lattice"
)

func TestLayoutAddAndBoundingBox(t *testing.T) {
	l := &Layout{}
	l.AddCell(0, 0, RoleNormal)
	l.AddCell(10, 20, RolePerturber)
	if l.NumDots() != 2 {
		t.Fatal("dot count wrong")
	}
	b := l.BoundingBox()
	if b.MinX != 0 || b.MaxX != 10 || b.MinY != 0 || b.MaxY != 20 {
		t.Errorf("bounding box wrong: %+v", b)
	}
}

func TestTranslate(t *testing.T) {
	l := &Layout{}
	l.AddCell(1, 2, RoleInput)
	m := l.Translate(10, 20)
	x, y := m.Dots[0].Site.Cell()
	if x != 11 || y != 22 {
		t.Errorf("translate got (%d,%d)", x, y)
	}
	if m.Dots[0].Role != RoleInput {
		t.Error("role lost in translation")
	}
	// Original untouched.
	if x0, _ := l.Dots[0].Site.Cell(); x0 != 1 {
		t.Error("translate mutated original")
	}
}

func TestMergeDropsDuplicates(t *testing.T) {
	a := &Layout{}
	a.AddCell(0, 0, RoleNormal)
	a.AddCell(5, 5, RoleNormal)
	b := &Layout{}
	b.AddCell(5, 5, RoleNormal) // duplicate
	b.AddCell(9, 9, RoleNormal)
	a.Merge(b)
	if a.NumDots() != 3 {
		t.Errorf("merged count = %d, want 3", a.NumDots())
	}
}

func TestValidateSpacing(t *testing.T) {
	l := &Layout{}
	l.AddCell(0, 0, RoleNormal)
	l.AddCell(0, 0, RoleNormal) // duplicate site
	l.AddCell(1, 0, RoleNormal) // 0.384 nm away
	v := l.Validate(0.4)
	if len(v) < 2 {
		t.Errorf("expected duplicate + spacing violations, got %v", v)
	}
	ok := &Layout{}
	ok.AddCell(0, 0, RoleNormal)
	ok.AddCell(10, 0, RoleNormal)
	if v := ok.Validate(0.4); len(v) != 0 {
		t.Errorf("clean layout flagged: %v", v)
	}
}

func TestBDLPairState(t *testing.T) {
	l := &Layout{}
	l.AddCell(0, 0, RoleOutput)
	l.AddCell(1, 2, RoleOutput)
	pair := BDLPair{Bit0: lattice.FromCell(0, 0), Bit1: lattice.FromCell(1, 2)}
	idx := l.SiteIndex()

	if got, err := pair.State(idx, []bool{true, false}); err != nil || got {
		t.Errorf("charge on Bit0 must read 0: %v %v", got, err)
	}
	if got, err := pair.State(idx, []bool{false, true}); err != nil || !got {
		t.Errorf("charge on Bit1 must read 1: %v %v", got, err)
	}
	if _, err := pair.State(idx, []bool{true, true}); err == nil {
		t.Error("two electrons must be an error")
	}
	if _, err := pair.State(idx, []bool{false, false}); err == nil {
		t.Error("zero electrons must be an error")
	}
}

func TestBDLPairStateMissingDots(t *testing.T) {
	pair := BDLPair{Bit0: lattice.FromCell(0, 0), Bit1: lattice.FromCell(1, 2)}
	if _, err := pair.State(map[lattice.Site]int{}, nil); err == nil {
		t.Error("missing dots must error")
	}
}

func TestPairSeparation(t *testing.T) {
	p := BDLPair{Bit0: lattice.FromCell(0, 0), Bit1: lattice.FromCell(1, 2)}
	if d := p.SeparationNM(); d < 0.85 || d > 0.87 {
		t.Errorf("separation = %v, want ~0.859", d)
	}
	q := p.Translate(3, 4)
	if d := q.SeparationNM() - p.SeparationNM(); d > 1e-9 || d < -1e-9 {
		t.Error("translation changed separation")
	}
}

func TestRoleString(t *testing.T) {
	names := map[Role]string{
		RoleNormal: "normal", RolePerturber: "perturber",
		RoleInput: "input", RoleOutput: "output",
	}
	for r, want := range names {
		if r.String() != want {
			t.Errorf("%v.String() = %q", want, r.String())
		}
	}
}
