// Package sidb models dot-accurate silicon dangling bond (SiDB) layouts:
// collections of dangling bonds on the H-Si(100)-2×1 surface together with
// the Binary-dot Logic (BDL) conventions of Huff et al. [18] that the
// Bestagon library builds on.
//
// In BDL, a bit is stored in a pair of SiDBs sharing one excess electron;
// the dot that holds the electron encodes the logic state. Following the
// paper's refinement of Huff et al.'s input method, input perturbers are
// present for both logic states but placed closer (logic 1) or farther
// (logic 0) from the input pair, emulating the repulsion of an upstream
// BDL wire.
package sidb

import (
	"fmt"
	"sort"

	"repro/internal/lattice"
)

// Role classifies a dot's function within a layout.
type Role uint8

// Dot roles.
const (
	RoleNormal    Role = iota // circuit dot (wire/canvas)
	RolePerturber             // fixed peripheral perturber (always DB-)
	RoleInput                 // member of an input BDL pair
	RoleOutput                // member of an output BDL pair
)

// String names the role.
func (r Role) String() string {
	switch r {
	case RoleNormal:
		return "normal"
	case RolePerturber:
		return "perturber"
	case RoleInput:
		return "input"
	case RoleOutput:
		return "output"
	default:
		return fmt.Sprintf("Role(%d)", uint8(r))
	}
}

// Dot is one dangling bond.
type Dot struct {
	Site lattice.Site
	Role Role
}

// Layout is a dot-accurate SiDB layout.
type Layout struct {
	Name string
	Dots []Dot
}

// Add appends a dot.
func (l *Layout) Add(s lattice.Site, r Role) {
	l.Dots = append(l.Dots, Dot{Site: s, Role: r})
}

// AddCell appends a dot given flattened cell coordinates.
func (l *Layout) AddCell(x, y int, r Role) {
	l.Add(lattice.FromCell(x, y), r)
}

// NumDots returns the number of dots.
func (l *Layout) NumDots() int { return len(l.Dots) }

// Sites returns all dot sites.
func (l *Layout) Sites() []lattice.Site {
	out := make([]lattice.Site, len(l.Dots))
	for i, d := range l.Dots {
		out[i] = d.Site
	}
	return out
}

// BoundingBox returns the cell-space bounding box of the layout.
func (l *Layout) BoundingBox() lattice.Box {
	b := lattice.EmptyBox()
	for _, d := range l.Dots {
		b = b.Extend(d.Site)
	}
	return b
}

// Translate returns a copy shifted by (dx, dy) cells.
func (l *Layout) Translate(dx, dy int) *Layout {
	out := &Layout{Name: l.Name, Dots: make([]Dot, len(l.Dots))}
	for i, d := range l.Dots {
		out.Dots[i] = Dot{Site: d.Site.Translate(dx, dy), Role: d.Role}
	}
	return out
}

// Merge appends all dots of other into l, dropping exact duplicates (tiles
// share border dots with their neighbors' wire stubs).
func (l *Layout) Merge(other *Layout) {
	seen := make(map[lattice.Site]bool, len(l.Dots))
	for _, d := range l.Dots {
		seen[d.Site] = true
	}
	for _, d := range other.Dots {
		if !seen[d.Site] {
			l.Dots = append(l.Dots, d)
			seen[d.Site] = true
		}
	}
}

// Validate checks minimum-separation design rules: no two dots may share a
// site, and dots closer than minNM violate fabrication limits (adjacent
// same-dimer dots are allowed at DimerGap for pair definitions when minNM
// permits).
func (l *Layout) Validate(minNM float64) []string {
	var out []string
	seen := map[lattice.Site]int{}
	for i, d := range l.Dots {
		if j, dup := seen[d.Site]; dup {
			out = append(out, fmt.Sprintf("dots %d and %d share site %v", j, i, d.Site))
			continue
		}
		seen[d.Site] = i
	}
	for i := 0; i < len(l.Dots); i++ {
		for j := i + 1; j < len(l.Dots); j++ {
			if d := lattice.DistanceNM(l.Dots[i].Site, l.Dots[j].Site); d > 0 && d < minNM {
				out = append(out, fmt.Sprintf("dots %d and %d only %.3f nm apart (< %.3f)", i, j, d, minNM))
			}
		}
	}
	sort.Strings(out)
	return out
}

// BDLPair is a binary-dot logic pair: Bit0 holds the electron for logic 0,
// Bit1 for logic 1.
type BDLPair struct {
	Bit0, Bit1 lattice.Site
}

// SeparationNM returns the intra-pair distance.
func (p BDLPair) SeparationNM() float64 { return lattice.DistanceNM(p.Bit0, p.Bit1) }

// Translate shifts the pair by (dx, dy) cells.
func (p BDLPair) Translate(dx, dy int) BDLPair {
	return BDLPair{Bit0: p.Bit0.Translate(dx, dy), Bit1: p.Bit1.Translate(dx, dy)}
}

// State reads the pair's logic state from a charge configuration: charged
// holds, per layout dot index, whether the dot is DB-. The index map gives
// each site's position in the layout.
func (p BDLPair) State(index map[lattice.Site]int, charged []bool) (bool, error) {
	i0, ok0 := index[p.Bit0]
	i1, ok1 := index[p.Bit1]
	if !ok0 || !ok1 {
		return false, fmt.Errorf("sidb: BDL pair dots not in layout")
	}
	c0, c1 := charged[i0], charged[i1]
	if c0 == c1 {
		return false, fmt.Errorf("sidb: BDL pair holds %d electrons; state undefined", b2i(c0)+b2i(c1))
	}
	return c1, nil
}

// b2i converts a bool to 0/1.
func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// SiteIndex builds a site -> dot index map for the layout.
func (l *Layout) SiteIndex() map[lattice.Site]int {
	m := make(map[lattice.Site]int, len(l.Dots))
	for i, d := range l.Dots {
		m[d.Site] = i
	}
	return m
}
