package sqd

import (
	"strings"
	"testing"

	"repro/internal/lattice"
	"repro/internal/sidb"
)

func sample() *sidb.Layout {
	l := &sidb.Layout{Name: "sample"}
	l.AddCell(0, 0, sidb.RoleNormal)
	l.AddCell(5, 7, sidb.RoleInput)
	l.AddCell(-3, 12, sidb.RolePerturber)
	return l
}

func TestWriteProducesXML(t *testing.T) {
	s, err := WriteString(sample())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"<?xml", "<siqad>", "<dbdot>", "latcoord", "physloc"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	orig := sample()
	s, err := WriteString(orig)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseString(s)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumDots() != orig.NumDots() {
		t.Fatalf("dot count changed: %d -> %d", orig.NumDots(), back.NumDots())
	}
	for i, d := range orig.Dots {
		if back.Dots[i].Site != d.Site {
			t.Errorf("dot %d site changed: %v -> %v", i, d.Site, back.Dots[i].Site)
		}
		wantPerturber := d.Role == sidb.RolePerturber
		gotPerturber := back.Dots[i].Role == sidb.RolePerturber
		if wantPerturber != gotPerturber {
			t.Errorf("dot %d perturber flag changed", i)
		}
	}
}

func TestPhyslocAngstroms(t *testing.T) {
	l := &sidb.Layout{}
	l.Add(lattice.Site{N: 1, M: 0, L: 0}, sidb.RoleNormal) // x = 0.384 nm = 3.84 Å
	s, err := WriteString(l)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s, `x="3.84"`) {
		t.Errorf("physloc should be in angstroms:\n%s", s)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := ParseString("this is not xml"); err == nil {
		t.Error("garbage must fail to parse")
	}
}

func TestFormatCoord(t *testing.T) {
	if got := FormatCoord(lattice.Site{N: 1, M: 2, L: 1}); got != "(1, 2, 1)" {
		t.Errorf("FormatCoord = %q", got)
	}
}
