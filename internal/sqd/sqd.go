// Package sqd reads and writes SiQAD design files (.sqd) — flow step (8):
// "generate a design file from the SiDB layout for physical simulation
// and/or fabrication". The format is the XML document used by the SiQAD
// CAD tool [30]; layouts exported here can be opened and simulated in
// SiQAD directly.
package sqd

import (
	"encoding/xml"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/lattice"
	"repro/internal/sidb"
)

// document mirrors the .sqd XML structure (subset sufficient for DB
// layouts).
type document struct {
	XMLName xml.Name  `xml:"siqad"`
	Program program   `xml:"program"`
	GUI     gui       `xml:"gui"`
	Design  designGrp `xml:"design"`
}

type program struct {
	FilePurpose string `xml:"file_purpose"`
	Version     string `xml:"version"`
	Date        string `xml:"date"`
}

type gui struct {
	Zoom   float64 `xml:"zoom"`
	DispnX float64 `xml:"displayed_region>x1"`
	DispnY float64 `xml:"displayed_region>y1"`
	DispmX float64 `xml:"displayed_region>x2"`
	DispmY float64 `xml:"displayed_region>y2"`
}

type designGrp struct {
	Layers []layer         `xml:"layer_prop"`
	Groups []layerContents `xml:"layer"`
}

type layer struct {
	Name    string `xml:"name"`
	Type    string `xml:"type"`
	Role    string `xml:"role,attr,omitempty"`
	Visible bool   `xml:"visible"`
	Active  bool   `xml:"active"`
}

type layerContents struct {
	XMLName xml.Name `xml:"layer"`
	Type    string   `xml:"type,attr"`
	DBDots  []dbdot  `xml:"dbdot"`
}

type dbdot struct {
	LayerID  int     `xml:"layer_id"`
	LatCoord latXML  `xml:"latcoord"`
	Physloc  physXML `xml:"physloc"`
	Color    string  `xml:"color,omitempty"`
}

type latXML struct {
	N int `xml:"n,attr"`
	M int `xml:"m,attr"`
	L int `xml:"l,attr"`
}

type physXML struct {
	X float64 `xml:"x,attr"`
	Y float64 `xml:"y,attr"`
}

// Write serializes the layout as a .sqd document.
func Write(w io.Writer, l *sidb.Layout) error {
	doc := document{
		Program: program{
			FilePurpose: "save",
			Version:     "bestagon-repro",
			Date:        "generated",
		},
		GUI: gui{Zoom: 0.1},
		Design: designGrp{
			Layers: []layer{
				{Name: "Lattice", Type: "Lattice", Visible: true},
				{Name: "Misc", Type: "Misc", Visible: true},
				{Name: "Surface", Type: "DB", Visible: true, Active: true},
			},
		},
	}
	contents := layerContents{Type: "DB"}
	for _, d := range l.Dots {
		x, y := d.Site.Pos()
		dot := dbdot{
			LayerID:  2,
			LatCoord: latXML{N: d.Site.N, M: d.Site.M, L: d.Site.L},
			// SiQAD physloc is in angstroms.
			Physloc: physXML{X: x * 10, Y: y * 10},
		}
		if d.Role == sidb.RolePerturber {
			dot.Color = "#ffc8c8c8"
		}
		contents.DBDots = append(contents.DBDots, dot)
	}
	doc.Design.Groups = []layerContents{contents}

	if _, err := io.WriteString(w, xml.Header); err != nil {
		return err
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("sqd: encode: %w", err)
	}
	_, err := io.WriteString(w, "\n")
	return err
}

// WriteString renders the layout to a string.
func WriteString(l *sidb.Layout) (string, error) {
	var sb strings.Builder
	if err := Write(&sb, l); err != nil {
		return "", err
	}
	return sb.String(), nil
}

// Read parses a .sqd document into a layout. Only DB dots are read; roles
// are inferred from the color annotation written by Write (perturbers are
// gray).
func Read(r io.Reader) (*sidb.Layout, error) {
	var doc document
	dec := xml.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("sqd: decode: %w", err)
	}
	l := &sidb.Layout{}
	for _, grp := range doc.Design.Groups {
		for _, d := range grp.DBDots {
			role := sidb.RoleNormal
			if d.Color == "#ffc8c8c8" {
				role = sidb.RolePerturber
			}
			l.Add(lattice.Site{N: d.LatCoord.N, M: d.LatCoord.M, L: d.LatCoord.L}, role)
		}
	}
	return l, nil
}

// ParseString parses a .sqd document from a string.
func ParseString(s string) (*sidb.Layout, error) {
	return Read(strings.NewReader(s))
}

// FormatCoord renders a site in SiQAD's textual (n, m, l) convention; used
// in reports.
func FormatCoord(s lattice.Site) string {
	return "(" + strconv.Itoa(s.N) + ", " + strconv.Itoa(s.M) + ", " + strconv.Itoa(s.L) + ")"
}
