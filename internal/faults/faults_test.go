package faults

import (
	"errors"
	"testing"
)

func TestDisarmedIsInert(t *testing.T) {
	Disarm()
	if Enabled() {
		t.Fatal("registry enabled after Disarm")
	}
	if Should("anything") {
		t.Fatal("disarmed Should fired")
	}
	if err := Fail("anything"); err != nil {
		t.Fatalf("disarmed Fail returned %v", err)
	}
	if Counts() != nil {
		t.Fatal("disarmed Counts not nil")
	}
}

func TestSpecParsing(t *testing.T) {
	defer Disarm()
	for _, bad := range []string{
		"nope", "x=", "=p:0.5", "x=p:1.5", "x=p:-1", "x=n:0", "x=every:0", "x=q:3", ";;",
	} {
		if err := Arm(bad, 1); err == nil {
			t.Errorf("Arm(%q) accepted", bad)
		}
	}
	if err := Arm("a=p:0.5; b=n:3, c=every:2;d=always", 1); err != nil {
		t.Fatalf("Arm: %v", err)
	}
	if !Enabled() {
		t.Fatal("not enabled after Arm")
	}
}

func TestNthCallTrigger(t *testing.T) {
	defer Disarm()
	if err := Arm("x=n:3", 1); err != nil {
		t.Fatal(err)
	}
	got := []bool{Should("x"), Should("x"), Should("x"), Should("x")}
	want := []bool{false, false, true, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("call %d: fired=%v, want %v", i+1, got[i], want[i])
		}
	}
	if Counts()["x"] != 1 {
		t.Fatalf("fired count = %d, want 1", Counts()["x"])
	}
}

func TestEveryAndAlwaysTriggers(t *testing.T) {
	defer Disarm()
	if err := Arm("e=every:2;a=always", 1); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 6; i++ {
		if got, want := Should("e"), i%2 == 0; got != want {
			t.Fatalf("every:2 call %d fired=%v", i, got)
		}
		if !Should("a") {
			t.Fatalf("always did not fire on call %d", i)
		}
	}
}

// TestProbabilityDeterminism pins the contract chaos tests rely on: the
// same (spec, seed) pair replays the same fault schedule.
func TestProbabilityDeterminism(t *testing.T) {
	defer Disarm()
	run := func(seed int64) []bool {
		if err := Arm("p=p:0.3", seed); err != nil {
			t.Fatal(err)
		}
		out := make([]bool, 64)
		for i := range out {
			out[i] = Should("p")
		}
		return out
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedule diverged at call %d with equal seeds", i)
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical 64-call schedules")
	}
}

func TestFailErrorIdentity(t *testing.T) {
	defer Disarm()
	if err := Arm("x=always", 1); err != nil {
		t.Fatal(err)
	}
	err := Fail("x")
	if err == nil {
		t.Fatal("Fail did not fire under always")
	}
	if !errors.Is(err, Injected) {
		t.Fatalf("injected error %v is not faults.Injected", err)
	}
	var fe *Error
	if !errors.As(err, &fe) || fe.Point != "x" {
		t.Fatalf("injected error %v does not carry the point name", err)
	}
}

func TestUnknownPointNeverFires(t *testing.T) {
	defer Disarm()
	if err := Arm("x=always", 1); err != nil {
		t.Fatal(err)
	}
	if Should("y") {
		t.Fatal("unarmed point fired")
	}
}
