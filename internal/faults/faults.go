// Package faults is a deterministic, seedable fault-injection registry
// for testing the failure paths of the design service. Production code
// declares named fault points at the places failures can occur — disk
// cache I/O, solver dispatch, SAT solving, queue workers — and asks the
// registry whether the point fires on this call:
//
//	if err := faults.Fail("cache.disk.read"); err != nil {
//	    return nil, false, err
//	}
//	if faults.Should("service.job.panic") {
//	    panic("injected worker panic")
//	}
//
// The registry is disarmed by default and the disarmed fast path is one
// atomic load with no locking and no allocation, so fault points are free
// in production binaries. Arming happens explicitly (the bestagond
// -faults flag or the BESTAGOND_FAULTS environment variable) with a spec
// string of the form
//
//	point=trigger[;point=trigger...]
//
// where trigger is one of
//
//	p:0.2     fire with probability 0.2 per call
//	n:5       fire on exactly the 5th call of this point
//	every:3   fire on every 3rd call
//	always    fire on every call
//
// Probability triggers draw from a single rand.Rand seeded via Arm, so a
// fixed (spec, seed) pair replays the exact same fault schedule — chaos
// test failures reproduce deterministically.
package faults

import (
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// armed is the global fast-path switch: while false, Should and Fail
// return immediately after one atomic load.
var armed atomic.Bool

var (
	mu     sync.Mutex
	points map[string]*point
	rng    *rand.Rand
)

// point is one armed fault point and its trigger.
type point struct {
	prob   float64 // fire with this probability (0 = disabled)
	nth    int64   // fire on exactly this call number (0 = disabled)
	every  int64   // fire on every k-th call (0 = disabled)
	always bool
	calls  int64
	fired  int64
}

// Injected classifies every error produced by Fail; use
// errors.Is(err, faults.Injected) to recognize injected failures (the
// retry layer treats them as transient).
var Injected = errors.New("injected fault")

// Error is the concrete injected-failure error, carrying the point name.
type Error struct{ Point string }

// Error formats the injected failure.
func (e *Error) Error() string { return "faults: injected failure at " + e.Point }

// Is makes errors.Is(err, faults.Injected) true for injected errors.
func (e *Error) Is(target error) bool { return target == Injected }

// Arm parses a fault spec (see the package comment for the grammar) and
// arms the registry with a deterministic random source. An empty spec
// disarms. Arm replaces any previous arming wholesale.
func Arm(spec string, seed int64) error {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		Disarm()
		return nil
	}
	parsed := map[string]*point{}
	for _, entry := range strings.FieldsFunc(spec, func(r rune) bool { return r == ';' || r == ',' }) {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, trigger, ok := strings.Cut(entry, "=")
		name = strings.TrimSpace(name)
		if !ok || name == "" {
			return fmt.Errorf("faults: bad spec entry %q (want point=trigger)", entry)
		}
		pt, err := parseTrigger(strings.TrimSpace(trigger))
		if err != nil {
			return fmt.Errorf("faults: point %s: %w", name, err)
		}
		parsed[name] = pt
	}
	if len(parsed) == 0 {
		return fmt.Errorf("faults: spec %q contains no points", spec)
	}
	mu.Lock()
	points = parsed
	rng = rand.New(rand.NewSource(seed))
	mu.Unlock()
	armed.Store(true)
	return nil
}

// parseTrigger parses one trigger expression.
func parseTrigger(s string) (*point, error) {
	switch {
	case s == "always":
		return &point{always: true}, nil
	case strings.HasPrefix(s, "p:"):
		p, err := strconv.ParseFloat(s[2:], 64)
		if err != nil || p < 0 || p > 1 {
			return nil, fmt.Errorf("bad probability %q (want p:0.0..1.0)", s)
		}
		return &point{prob: p}, nil
	case strings.HasPrefix(s, "n:"):
		n, err := strconv.ParseInt(s[2:], 10, 64)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad call number %q (want n:1..)", s)
		}
		return &point{nth: n}, nil
	case strings.HasPrefix(s, "every:"):
		k, err := strconv.ParseInt(s[len("every:"):], 10, 64)
		if err != nil || k < 1 {
			return nil, fmt.Errorf("bad period %q (want every:1..)", s)
		}
		return &point{every: k}, nil
	default:
		return nil, fmt.Errorf("unknown trigger %q (want p:X, n:K, every:K, or always)", s)
	}
}

// Disarm removes every fault point and restores the zero-cost fast path.
func Disarm() {
	armed.Store(false)
	mu.Lock()
	points = nil
	rng = nil
	mu.Unlock()
}

// Enabled reports whether any fault points are armed.
func Enabled() bool { return armed.Load() }

// Should reports whether the named fault point fires on this call. It
// always returns false while the registry is disarmed or when the point
// was not named in the spec.
func Should(name string) bool {
	if !armed.Load() {
		return false
	}
	mu.Lock()
	defer mu.Unlock()
	pt, ok := points[name]
	if !ok {
		return false
	}
	pt.calls++
	fire := false
	switch {
	case pt.always:
		fire = true
	case pt.prob > 0:
		fire = rng.Float64() < pt.prob
	case pt.nth > 0:
		fire = pt.calls == pt.nth
	case pt.every > 0:
		fire = pt.calls%pt.every == 0
	}
	if fire {
		pt.fired++
	}
	return fire
}

// Fail returns an injected *Error when the named point fires, nil
// otherwise. It is the error-shaped twin of Should for call sites that
// propagate failures rather than panic.
func Fail(name string) error {
	if Should(name) {
		return &Error{Point: name}
	}
	return nil
}

// Counts snapshots the fired count of every armed point (for tests and
// diagnostics). It returns nil while disarmed.
func Counts() map[string]int64 {
	if !armed.Load() {
		return nil
	}
	mu.Lock()
	defer mu.Unlock()
	out := make(map[string]int64, len(points))
	for name, pt := range points {
		out[name] = pt.fired
	}
	return out
}
