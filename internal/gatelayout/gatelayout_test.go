package gatelayout

import (
	"strings"
	"testing"

	"repro/internal/clocking"
	"repro/internal/gates"
	"repro/internal/hexgrid"
)

// buildWireLayout is a 1x3 layout: PI -> wire -> PO, straight down-right.
func buildWireLayout(t *testing.T) *Layout {
	t.Helper()
	l := New("w", 2, 3, clocking.RowBased{})
	nw, ne := hexgrid.NorthWest, hexgrid.NorthEast
	se := hexgrid.SouthEast
	sw := hexgrid.SouthWest
	_ = ne
	_ = sw
	mustSet := func(at hexgrid.Offset, tile Tile) {
		if err := l.Set(at, tile); err != nil {
			t.Fatal(err)
		}
	}
	// PI at (0,0) emits SE -> (0,1) [odd row]; wire there emits SE -> (1,2).
	mustSet(hexgrid.Offset{X: 0, Y: 0}, Tile{Func: gates.PI, Outs: []hexgrid.Direction{se}, Name: "a"})
	mustSet(hexgrid.Offset{X: 0, Y: 1}, Tile{Func: gates.Wire, Ins: []hexgrid.Direction{nw}, Outs: []hexgrid.Direction{se}})
	mustSet(hexgrid.Offset{X: 1, Y: 2}, Tile{Func: gates.PO, Ins: []hexgrid.Direction{nw}, Name: "f"})
	return l
}

func TestWireLayoutCleanAndIdentity(t *testing.T) {
	l := buildWireLayout(t)
	if v := l.Check(nil); len(v) != 0 {
		t.Fatalf("violations: %v", v)
	}
	if l.Simulate(0) != 0 || l.Simulate(1) != 1 {
		t.Error("wire layout must be the identity")
	}
}

func TestCheckCatchesDanglingInput(t *testing.T) {
	l := buildWireLayout(t)
	l.Clear(hexgrid.Offset{X: 0, Y: 0}) // remove the PI driving the wire
	v := l.Check(nil)
	if len(v) == 0 {
		t.Fatal("dangling input not caught")
	}
}

func TestCheckCatchesClockingViolation(t *testing.T) {
	// A connection going upward violates the row-based scheme; build a tile
	// whose input comes from below by misdeclaring ports.
	l := New("bad", 2, 2, clocking.RowBased{})
	se := hexgrid.SouthEast
	nw := hexgrid.NorthWest
	if err := l.Set(hexgrid.Offset{X: 0, Y: 0}, Tile{Func: gates.PI, Outs: []hexgrid.Direction{se}, Name: "a"}); err != nil {
		t.Fatal(err)
	}
	// PO on the same row as its driver: input from NW points at (0,-1)
	// (outside) -> dangling; instead declare input from West (illegal side).
	if err := l.Set(hexgrid.Offset{X: 1, Y: 0}, Tile{Func: gates.PO, Ins: []hexgrid.Direction{hexgrid.West}, Name: "f"}); err != nil {
		t.Fatal(err)
	}
	v := l.Check(nil)
	if len(v) == 0 {
		t.Fatal("illegal input side not caught")
	}
	_ = nw
}

func TestCheckWireGeometry(t *testing.T) {
	l := New("geo", 2, 3, clocking.RowBased{})
	nw := hexgrid.NorthWest
	sw := hexgrid.SouthWest
	se := hexgrid.SouthEast
	if err := l.Set(hexgrid.Offset{X: 0, Y: 0}, Tile{Func: gates.PI, Outs: []hexgrid.Direction{se}, Name: "a"}); err != nil {
		t.Fatal(err)
	}
	// A Wire declared with diagonal geometry (NW in -> SW out) is invalid;
	// it should be a DiagWire.
	if err := l.Set(hexgrid.Offset{X: 0, Y: 1}, Tile{Func: gates.Wire, Ins: []hexgrid.Direction{nw}, Outs: []hexgrid.Direction{sw}}); err != nil {
		t.Fatal(err)
	}
	if err := l.Set(hexgrid.Offset{X: 0, Y: 2}, Tile{Func: gates.PO, Ins: []hexgrid.Direction{hexgrid.NorthEast}, Name: "f"}); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, v := range l.Check(nil) {
		if strings.Contains(v.Message, "not straight") {
			found = true
		}
	}
	if !found {
		t.Error("wire geometry violation not reported")
	}
}

func TestSetRejectsOutOfBoundsAndBadPorts(t *testing.T) {
	l := New("x", 1, 1, clocking.RowBased{})
	if err := l.Set(hexgrid.Offset{X: 5, Y: 5}, Tile{Func: gates.PI, Outs: []hexgrid.Direction{hexgrid.SouthEast}}); err == nil {
		t.Error("out-of-bounds Set must fail")
	}
	if err := l.Set(hexgrid.Offset{X: 0, Y: 0}, Tile{Func: gates.And, Ins: []hexgrid.Direction{hexgrid.NorthWest}, Outs: []hexgrid.Direction{hexgrid.SouthEast}}); err == nil {
		t.Error("AND with one input must fail")
	}
}

func TestExtractNetworkOnWire(t *testing.T) {
	l := buildWireLayout(t)
	x, err := l.ExtractNetwork()
	if err != nil {
		t.Fatal(err)
	}
	if x.NumPIs() != 1 || x.NumPOs() != 1 {
		t.Fatal("interface wrong")
	}
	if x.Simulate(0) != 0 || x.Simulate(1) != 1 {
		t.Error("extracted network not identity")
	}
}

func TestRenderAndString(t *testing.T) {
	l := buildWireLayout(t)
	r := l.Render()
	if !strings.Contains(r, "[in]") || !strings.Contains(r, "[out]") || !strings.Contains(r, "wire") {
		t.Errorf("render incomplete:\n%s", r)
	}
	if !strings.Contains(l.String(), "2x3") {
		t.Errorf("String() = %q", l.String())
	}
}

func TestGateCountsAndPins(t *testing.T) {
	l := buildWireLayout(t)
	h := l.GateCounts()
	if h[gates.PI] != 1 || h[gates.PO] != 1 || h[gates.Wire] != 1 {
		t.Errorf("histogram wrong: %v", h)
	}
	if len(l.PIs()) != 1 || len(l.POs()) != 1 {
		t.Error("pin enumeration wrong")
	}
	if l.NumTiles() != 3 || l.Area() != 6 {
		t.Error("tile counts wrong")
	}
}

func TestSuperTileCheckAcceptsIntraZoneConnections(t *testing.T) {
	// Under the expanded 3-row super-tile plan, connections within the
	// same zone (rows 0->1) are legal even though plain row clocking
	// requires zone+1.
	l := buildWireLayout(t)
	st := clocking.PlanSuperTiles(clocking.MinMetalPitchNM)
	if v := l.Check(&st); len(v) != 0 {
		t.Errorf("super-tile check rejected intra-zone flow: %v", v)
	}
}

func TestStats(t *testing.T) {
	l := buildWireLayout(t)
	s := l.Stats()
	if s.Occupied != 3 || s.Pins != 2 || s.RoutingTiles != 1 || s.Gates != 0 {
		t.Errorf("stats wrong: %+v", s)
	}
	if s.Utilization <= 0 || s.Utilization > 1 {
		t.Errorf("utilization out of range: %v", s.Utilization)
	}
}
