// Package gatelayout implements clocked gate-level layouts on hexagonal
// floor plans — the central physical-design data structure of the Bestagon
// flow (§3, §4).
//
// A layout is a w×h arrangement of pointy-top hexagonal tiles in odd-r
// offset coordinates. Every tile hosts one Bestagon tile function (a gate,
// a wire, a crossing, a fan-out, or an I/O pin) with explicit input and
// output ports on its hexagon sides. Under the row-based clocking scheme
// signals enter from the north (NW/NE) and leave to the south (SW/SE), so
// every source-to-sink path crosses each row exactly once — which is what
// gives the paper's layouts their 1/1 throughput.
package gatelayout

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/clocking"
	"repro/internal/gates"
	"repro/internal/hexgrid"
	"repro/internal/logic/network"
)

// Tile is one occupied hexagon of the layout.
type Tile struct {
	Func gates.Func
	// Ins lists the sides signals enter from, in port order (port 0 first).
	// Two-input tiles order ports NW then NE.
	Ins []hexgrid.Direction
	// Outs lists the sides signals leave to, in port order.
	Outs []hexgrid.Direction
	// Name annotates PI/PO tiles with their signal name.
	Name string
}

// Layout is a clocked gate-level layout on a hexagonal grid.
type Layout struct {
	Name   string
	Bounds hexgrid.Bounds
	Scheme clocking.Scheme
	tiles  map[hexgrid.Offset]Tile
}

// New returns an empty layout with the given dimensions and clocking scheme.
func New(name string, w, h int, scheme clocking.Scheme) *Layout {
	return &Layout{
		Name:   name,
		Bounds: hexgrid.NewBounds(w, h),
		Scheme: scheme,
		tiles:  make(map[hexgrid.Offset]Tile),
	}
}

// Set places a tile at the coordinate, replacing any previous contents.
func (l *Layout) Set(at hexgrid.Offset, t Tile) error {
	if !l.Bounds.Contains(at) {
		return fmt.Errorf("gatelayout: %v outside bounds %dx%d", at, l.Bounds.Width(), l.Bounds.Height())
	}
	if len(t.Ins) != t.Func.NumIns() {
		return fmt.Errorf("gatelayout: %v at %v needs %d inputs, got %d", t.Func, at, t.Func.NumIns(), len(t.Ins))
	}
	if len(t.Outs) != t.Func.NumOuts() {
		return fmt.Errorf("gatelayout: %v at %v needs %d outputs, got %d", t.Func, at, t.Func.NumOuts(), len(t.Outs))
	}
	l.tiles[at] = t
	return nil
}

// At returns the tile at the coordinate and whether one exists.
func (l *Layout) At(at hexgrid.Offset) (Tile, bool) {
	t, ok := l.tiles[at]
	return t, ok
}

// Clear removes the tile at the coordinate.
func (l *Layout) Clear(at hexgrid.Offset) { delete(l.tiles, at) }

// Tiles returns all occupied coordinates in row-major order.
func (l *Layout) Tiles() []hexgrid.Offset {
	out := make([]hexgrid.Offset, 0, len(l.tiles))
	for at := range l.tiles {
		out = append(out, at)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Y != out[j].Y {
			return out[i].Y < out[j].Y
		}
		return out[i].X < out[j].X
	})
	return out
}

// NumTiles returns the number of occupied tiles.
func (l *Layout) NumTiles() int { return len(l.tiles) }

// Width returns the layout width in tiles.
func (l *Layout) Width() int { return l.Bounds.Width() }

// Height returns the layout height in tiles.
func (l *Layout) Height() int { return l.Bounds.Height() }

// Area returns w*h in tiles, as reported in Table 1.
func (l *Layout) Area() int { return l.Bounds.Area() }

// GateCounts returns a histogram of tile functions.
func (l *Layout) GateCounts() map[gates.Func]int {
	h := map[gates.Func]int{}
	for _, t := range l.tiles {
		h[t.Func]++
	}
	return h
}

// PIs returns the PI tile coordinates sorted by x (all PIs sit in row 0
// under the row-based flow).
func (l *Layout) PIs() []hexgrid.Offset {
	var out []hexgrid.Offset
	for at, t := range l.tiles {
		if t.Func == gates.PI {
			out = append(out, at)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Y != out[j].Y {
			return out[i].Y < out[j].Y
		}
		return out[i].X < out[j].X
	})
	return out
}

// POs returns the PO tile coordinates sorted by x.
func (l *Layout) POs() []hexgrid.Offset {
	var out []hexgrid.Offset
	for at, t := range l.tiles {
		if t.Func == gates.PO {
			out = append(out, at)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Y != out[j].Y {
			return out[i].Y < out[j].Y
		}
		return out[i].X < out[j].X
	})
	return out
}

// Violation is one design-rule check finding.
type Violation struct {
	At      hexgrid.Offset
	Message string
}

// String formats the violation.
func (v Violation) String() string { return fmt.Sprintf("%v: %s", v.At, v.Message) }

// Check runs the design-rule checks of §4.1 on the layout:
//
//  1. port structure: every tile's ports match its function arity, inputs
//     only on incoming (NW/NE) sides, outputs only on outgoing (SW/SE)
//     sides, wire geometry (straight vs. diagonal) consistent;
//  2. connectivity: every input port faces a neighbor output port and vice
//     versa;
//  3. clocking: every connection goes from zone z to zone (z+1) mod 4 (or
//     stays within a zone when a super-tile plan is given).
func (l *Layout) Check(st *clocking.SuperTile) []Violation {
	var out []Violation
	add := func(at hexgrid.Offset, format string, args ...interface{}) {
		out = append(out, Violation{At: at, Message: fmt.Sprintf(format, args...)})
	}
	zone := func(at hexgrid.Offset) int {
		if st != nil {
			return st.ExpandedZone(at)
		}
		return l.Scheme.Zone(at)
	}
	for at, t := range l.tiles {
		for _, d := range t.Ins {
			if !d.Incoming() {
				add(at, "input port on non-incoming side %v", d)
			}
		}
		for _, d := range t.Outs {
			if !d.Outgoing() {
				add(at, "output port on non-outgoing side %v", d)
			}
		}
		// Wire geometry: a straight wire goes NW->SE or NE->SW; a diagonal
		// wire goes NW->SW or NE->SE.
		if t.Func == gates.Wire && len(t.Ins) == 1 && len(t.Outs) == 1 {
			straight := (t.Ins[0] == hexgrid.NorthWest && t.Outs[0] == hexgrid.SouthEast) ||
				(t.Ins[0] == hexgrid.NorthEast && t.Outs[0] == hexgrid.SouthWest)
			if !straight {
				add(at, "wire tile is not straight (%v->%v); use a diagonal wire", t.Ins[0], t.Outs[0])
			}
		}
		if t.Func == gates.DiagWire && len(t.Ins) == 1 && len(t.Outs) == 1 {
			diag := (t.Ins[0] == hexgrid.NorthWest && t.Outs[0] == hexgrid.SouthWest) ||
				(t.Ins[0] == hexgrid.NorthEast && t.Outs[0] == hexgrid.SouthEast)
			if !diag {
				add(at, "diagonal wire tile is straight (%v->%v); use a wire", t.Ins[0], t.Outs[0])
			}
		}
		if t.Func == gates.Crossing {
			if !(len(t.Ins) == 2 && t.Ins[0] == hexgrid.NorthWest && t.Ins[1] == hexgrid.NorthEast &&
				t.Outs[0] == hexgrid.SouthWest && t.Outs[1] == hexgrid.SouthEast) {
				add(at, "crossing must connect NW/NE to SW/SE in order")
			}
		}
		// Connectivity and clocking per input port.
		for _, d := range t.Ins {
			nb := at.Neighbor(d)
			nt, ok := l.tiles[nb]
			if !ok {
				add(at, "input port %v faces empty tile %v", d, nb)
				continue
			}
			if !hasDir(nt.Outs, d.Opposite()) {
				add(at, "input port %v not driven by %v (no matching output)", d, nb)
			}
			zFrom, zTo := zone(nb), zone(at)
			if st != nil {
				// Within a super-tile the zone may be equal; across
				// super-tiles it must advance by one phase.
				if zFrom != zTo && (zFrom+1)%clocking.NumPhases != zTo {
					add(at, "clocking violation: %v zone %d -> %v zone %d", nb, zFrom, at, zTo)
				}
			} else if (zFrom+1)%clocking.NumPhases != zTo {
				add(at, "clocking violation: %v zone %d -> %v zone %d", nb, zFrom, at, zTo)
			}
		}
		for _, d := range t.Outs {
			nb := at.Neighbor(d)
			nt, ok := l.tiles[nb]
			if !ok {
				add(at, "output port %v feeds empty tile %v", d, nb)
				continue
			}
			if !hasDir(nt.Ins, d.Opposite()) {
				add(at, "output port %v not consumed by %v", d, nb)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].At.Y != out[j].At.Y {
			return out[i].At.Y < out[j].At.Y
		}
		if out[i].At.X != out[j].At.X {
			return out[i].At.X < out[j].At.X
		}
		return out[i].Message < out[j].Message
	})
	return out
}

// hasDir reports whether the direction list contains d.
func hasDir(ds []hexgrid.Direction, d hexgrid.Direction) bool {
	for _, x := range ds {
		if x == d {
			return true
		}
	}
	return false
}

// portRef identifies a tile output port.
type portRef struct {
	at   hexgrid.Offset
	port int
}

// Simulate evaluates the layout for one input assignment (bit i = PI i in
// PIs() order) and returns the PO values (bit i = PO i in POs() order).
// The layout must be check-clean and acyclic (row-based flow guarantees
// this); unknown values propagate as false.
func (l *Layout) Simulate(input uint32) uint32 {
	vals := map[portRef]bool{}
	pis := l.PIs()
	for i, at := range pis {
		vals[portRef{at, 0}] = input>>i&1 == 1
	}
	// Evaluate row by row (row-based flow: all inputs come from row y-1 or
	// same-row evaluation is impossible since ports are N->S only).
	coords := l.Tiles()
	for _, at := range coords {
		t := l.tiles[at]
		if t.Func == gates.PI || t.Func == gates.None {
			continue
		}
		in := make([]bool, len(t.Ins))
		for i, d := range t.Ins {
			nb := at.Neighbor(d)
			nt, ok := l.tiles[nb]
			if !ok {
				continue
			}
			// Find the neighbor's port index feeding this side.
			for p, od := range nt.Outs {
				if od == d.Opposite() {
					in[i] = vals[portRef{nb, p}]
					break
				}
			}
		}
		outs := t.Func.Eval(in)
		for p, v := range outs {
			vals[portRef{at, p}] = v
		}
		if t.Func == gates.PO {
			vals[portRef{at, 0}] = in[0]
		}
	}
	var out uint32
	for i, at := range l.POs() {
		if vals[portRef{at, 0}] {
			out |= 1 << i
		}
	}
	return out
}

// ExtractNetwork converts the layout back into an XAG for SAT-based
// equivalence checking against the specification (flow step 5). PI/PO
// ordering follows PIs()/POs().
func (l *Layout) ExtractNetwork() (*network.XAG, error) {
	x := network.New()
	x.Name = l.Name + "_extracted"
	sigs := map[portRef]network.Signal{}
	for _, at := range l.PIs() {
		t := l.tiles[at]
		sigs[portRef{at, 0}] = x.NewPI(t.Name)
	}
	var poRefs []struct {
		at   hexgrid.Offset
		name string
		sig  network.Signal
	}
	for _, at := range l.Tiles() {
		t := l.tiles[at]
		if t.Func == gates.PI || t.Func == gates.None {
			continue
		}
		in := make([]network.Signal, len(t.Ins))
		for i, d := range t.Ins {
			nb := at.Neighbor(d)
			nt, ok := l.tiles[nb]
			if !ok {
				return nil, fmt.Errorf("gatelayout: %v input %v dangling", at, d)
			}
			found := false
			for p, od := range nt.Outs {
				if od == d.Opposite() {
					s, have := sigs[portRef{nb, p}]
					if !have {
						return nil, fmt.Errorf("gatelayout: %v not evaluated before %v", nb, at)
					}
					in[i] = s
					found = true
					break
				}
			}
			if !found {
				return nil, fmt.Errorf("gatelayout: %v input %v unconnected", at, d)
			}
		}
		switch t.Func {
		case gates.Wire, gates.DiagWire:
			sigs[portRef{at, 0}] = in[0]
		case gates.Inv:
			sigs[portRef{at, 0}] = in[0].Not()
		case gates.Fanout:
			sigs[portRef{at, 0}] = in[0]
			sigs[portRef{at, 1}] = in[0]
		case gates.Crossing:
			sigs[portRef{at, 0}] = in[1]
			sigs[portRef{at, 1}] = in[0]
		case gates.And:
			sigs[portRef{at, 0}] = x.And(in[0], in[1])
		case gates.Or:
			sigs[portRef{at, 0}] = x.Or(in[0], in[1])
		case gates.Nand:
			sigs[portRef{at, 0}] = x.Nand(in[0], in[1])
		case gates.Nor:
			sigs[portRef{at, 0}] = x.Nor(in[0], in[1])
		case gates.Xor:
			sigs[portRef{at, 0}] = x.Xor(in[0], in[1])
		case gates.Xnor:
			sigs[portRef{at, 0}] = x.Xnor(in[0], in[1])
		case gates.HalfAdder:
			sigs[portRef{at, 0}] = x.Xor(in[0], in[1])
			sigs[portRef{at, 1}] = x.And(in[0], in[1])
		case gates.PO:
			poRefs = append(poRefs, struct {
				at   hexgrid.Offset
				name string
				sig  network.Signal
			}{at, t.Name, in[0]})
		}
	}
	// POs in POs() order.
	sort.Slice(poRefs, func(i, j int) bool {
		if poRefs[i].at.Y != poRefs[j].at.Y {
			return poRefs[i].at.Y < poRefs[j].at.Y
		}
		return poRefs[i].at.X < poRefs[j].at.X
	})
	for _, po := range poRefs {
		x.NewPO(po.sig, po.name)
	}
	return x, nil
}

// Render draws the layout as ASCII art, one row of hexagons per text row,
// odd rows indented to suggest the offset. Tile glyphs use short function
// names.
func (l *Layout) Render() string {
	var sb strings.Builder
	glyph := map[gates.Func]string{
		gates.None: "  .   ", gates.Wire: " wire ", gates.DiagWire: " diag ",
		gates.Inv: " inv  ", gates.Fanout: " fan  ", gates.Crossing: "  x   ",
		gates.And: " AND  ", gates.Or: "  OR  ", gates.Nand: " NAND ",
		gates.Nor: " NOR  ", gates.Xor: " XOR  ", gates.Xnor: " XNOR ",
		gates.HalfAdder: "  HA  ", gates.PI: " [in] ", gates.PO: " [out]",
	}
	for y := l.Bounds.MinY; y < l.Bounds.MaxY; y++ {
		if y%2 == 1 {
			sb.WriteString("   ")
		}
		for x := l.Bounds.MinX; x < l.Bounds.MaxX; x++ {
			t, ok := l.tiles[hexgrid.Offset{X: x, Y: y}]
			if !ok {
				sb.WriteString(glyph[gates.None])
				continue
			}
			sb.WriteString(glyph[t.Func])
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// String summarizes the layout.
func (l *Layout) String() string {
	return fmt.Sprintf("%s: %dx%d = %d tiles, %d occupied (%s clocking)",
		l.Name, l.Width(), l.Height(), l.Area(), l.NumTiles(), l.Scheme.Name())
}

// Stats summarizes a layout for reports: tile-type counts, wiring overhead,
// and grid utilization.
type Stats struct {
	Width, Height, Area int
	Occupied            int
	Gates               int // logic gates (incl. inverters, half adders)
	RoutingTiles        int // wires, diagonals, fan-outs, crossings
	Crossings           int
	Pins                int // PI + PO tiles
	Utilization         float64
}

// Stats computes summary statistics of the layout.
func (l *Layout) Stats() Stats {
	s := Stats{Width: l.Width(), Height: l.Height(), Area: l.Area()}
	for _, t := range l.tiles {
		s.Occupied++
		switch {
		case t.Func.IsGate():
			s.Gates++
		case t.Func.IsRouting():
			s.RoutingTiles++
			if t.Func == gates.Crossing {
				s.Crossings++
			}
		case t.Func == gates.PI || t.Func == gates.PO:
			s.Pins++
		}
	}
	if s.Area > 0 {
		s.Utilization = float64(s.Occupied) / float64(s.Area)
	}
	return s
}
