package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"testing"
)

// scrapeMetrics fetches /metrics and returns the exposition body.
func scrapeMetrics(t *testing.T, baseURL string) (*http.Response, string) {
	t.Helper()
	r, b := getURL(t, baseURL+"/metrics")
	if r.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d %s", r.StatusCode, b)
	}
	return r, string(b)
}

// bucketSeries extracts the cumulative bucket values of one histogram
// series, in exposition order, keyed by its family_bucket{labels-minus-le
// prefix (e.g. `http_request_duration_seconds_bucket{path="/v1/simulate",`).
func bucketSeries(t *testing.T, body, prefix string) []float64 {
	t.Helper()
	var vals []float64
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, prefix) {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		vals = append(vals, v)
	}
	return vals
}

// sampleValue returns the value of the exactly-matching series name.
func sampleValue(t *testing.T, body, series string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, series+" ") {
			v, err := strconv.ParseFloat(line[len(series)+1:], 64)
			if err != nil {
				t.Fatalf("parse %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("series %q not found in exposition:\n%s", series, body)
	return 0
}

// TestMetricsExposition is the acceptance check of the Prometheus
// endpoint: correct content type, HELP/TYPE metadata, cumulative
// _bucket{le=...} series with +Inf == _count for the request-duration,
// queue-wait, and simulation-stage histograms.
func TestMetricsExposition(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	// One cold and one warm simulate: populates the request-duration,
	// queue-wait, job-duration, flow-stage, and solver histograms.
	for i := 0; i < 2; i++ {
		resp, body := postJSON(t, ts.URL+"/v1/simulate", fourDots())
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("simulate %d: %d %s", i, resp.StatusCode, body)
		}
	}

	resp, body := scrapeMetrics(t, ts.URL)
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("content type %q lacks exposition version", ct)
	}
	for _, want := range []string{
		"# TYPE http_requests_total counter",
		"# TYPE http_request_duration_seconds histogram",
		"# TYPE queue_wait_seconds histogram",
		"# TYPE flow_stage_seconds histogram",
		"# TYPE sim_solve_seconds histogram",
		"# HELP queue_wait_seconds ",
		`flow_stage_seconds_bucket{stage="simulate",`,
		`sim_solve_seconds_bucket{solver=`,
		`job_duration_seconds_bucket{kind="simulate",`,
		"cache_mem_hits",
		"cache_mem_hit_rate",
		"queue_depth_now",
		"http_in_flight_requests",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	for _, h := range []struct{ prefix, count string }{
		{`http_request_duration_seconds_bucket{path="/v1/simulate",`,
			`http_request_duration_seconds_count{path="/v1/simulate"}`},
		{`queue_wait_seconds_bucket{le=`, `queue_wait_seconds_count`},
		{`flow_stage_seconds_bucket{stage="simulate",`,
			`flow_stage_seconds_count{stage="simulate"}`},
	} {
		vals := bucketSeries(t, body, h.prefix)
		if len(vals) == 0 {
			t.Fatalf("no bucket series with prefix %q", h.prefix)
		}
		for i := 1; i < len(vals); i++ {
			if vals[i] < vals[i-1] {
				t.Errorf("%s: buckets not cumulative: %v", h.prefix, vals)
				break
			}
		}
		if inf, count := vals[len(vals)-1], sampleValue(t, body, h.count); inf != count {
			t.Errorf("%s: +Inf bucket %v != count %v", h.prefix, inf, count)
		}
	}
	if n := sampleValue(t, body, `flow_stage_seconds_count{stage="simulate"}`); n < 2 {
		t.Errorf("simulate stage count = %v, want >= 2", n)
	}
}

// TestBodyLimit413 verifies oversized request bodies are rejected with a
// 413 JSON error instead of an opaque decode failure.
func TestBodyLimit413(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, MaxBodyBytes: 256})
	big := map[string]any{"source": strings.Repeat("x", 4096)}
	resp, body := postJSON(t, ts.URL+"/v1/flow", big)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("expected 413, got %d: %s", resp.StatusCode, body)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatalf("413 body is not JSON: %v: %s", err, body)
	}
	if !strings.Contains(e.Error, "256") {
		t.Errorf("413 error %q does not name the limit", e.Error)
	}
}

// TestJobTraceAndRequestID exercises the end-to-end trace path: a client
// request ID propagates through the middleware context into the job's
// flow span attributes, and GET /v1/jobs/{id}/trace serves the timeline.
func TestJobTraceAndRequestID(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	const rid = "trace-test.42"
	payload, _ := json.Marshal(map[string]any{"bench": "xor2", "nocache": true})
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/flow", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-Id", rid)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("flow: %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Request-Id"); got != rid {
		t.Fatalf("response X-Request-Id = %q, want %q", got, rid)
	}
	jobID := resp.Header.Get("X-Job-Id")
	if jobID == "" {
		t.Fatal("no X-Job-Id on flow response")
	}

	r, b := getURL(t, fmt.Sprintf("%s/v1/jobs/%s/trace", ts.URL, jobID))
	if r.StatusCode != http.StatusOK {
		t.Fatalf("trace: %d %s", r.StatusCode, b)
	}
	var tr struct {
		Trace struct {
			Stages []struct {
				Name  string         `json:"name"`
				Attrs map[string]any `json:"attrs"`
			} `json:"stages"`
		} `json:"trace"`
	}
	if err := json.Unmarshal(b, &tr); err != nil {
		t.Fatalf("trace decode: %v: %s", err, b)
	}
	if len(tr.Trace.Stages) == 0 {
		t.Fatalf("empty trace: %s", b)
	}
	flow := tr.Trace.Stages[0]
	if flow.Name != "flow" {
		t.Fatalf("root stage %q, want flow", flow.Name)
	}
	if got := flow.Attrs["request_id"]; got != rid {
		t.Errorf("flow span request_id = %v, want %q", got, rid)
	}

	// A job that exists but recorded no tracer yields 404.
	r, _ = getURL(t, ts.URL+"/v1/jobs/j99999999/trace")
	if r.StatusCode != http.StatusNotFound {
		t.Fatalf("missing job trace: expected 404, got %d", r.StatusCode)
	}
}

// TestHealthzDraining verifies /healthz flips to 503 with draining:true
// once shutdown begins, so load balancers stop routing here.
func TestHealthzDraining(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	r, b := getURL(t, ts.URL+"/healthz")
	if r.StatusCode != http.StatusOK || !strings.Contains(string(b), `"draining":false`) {
		t.Fatalf("healthy healthz: %d %s", r.StatusCode, b)
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	r, b = getURL(t, ts.URL+"/healthz")
	if r.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz: %d, want 503", r.StatusCode)
	}
	for _, want := range []string{`"ok":false`, `"draining":true`} {
		if !strings.Contains(string(b), want) {
			t.Errorf("draining healthz missing %s: %s", want, b)
		}
	}
}

// TestHealthzLatencySnapshot checks the lifetime and rolling-window
// latency fields appear once requests have flowed.
func TestHealthzLatencySnapshot(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	for i := 0; i < 3; i++ {
		getURL(t, ts.URL+"/v1/gates")
	}
	_, b := getURL(t, ts.URL+"/healthz")
	var h struct {
		Latency struct {
			Count int64   `json:"count"`
			P50   float64 `json:"p50_ms"`
			P99   float64 `json:"p99_ms"`
		} `json:"latency"`
		Window struct {
			Size int `json:"size"`
		} `json:"window"`
	}
	if err := json.Unmarshal(b, &h); err != nil {
		t.Fatalf("healthz decode: %v: %s", err, b)
	}
	if h.Latency.Count < 3 {
		t.Errorf("latency count %d, want >= 3", h.Latency.Count)
	}
	if h.Window.Size < 3 {
		t.Errorf("window size %d, want >= 3", h.Window.Size)
	}
	if h.Latency.P99 < h.Latency.P50 {
		t.Errorf("p99 %v < p50 %v", h.Latency.P99, h.Latency.P50)
	}
}
