package service

import (
	"net/http"
	"net/http/httptest"
	"testing"
)

func TestRouteLabel(t *testing.T) {
	cases := []struct{ path, want string }{
		{"/v1/flow", "/v1/flow"},
		{"/v1/simulate", "/v1/simulate"},
		{"/v1/gates", "/v1/gates"},
		{"/v1/gates/validate", "/v1/gates/validate"},
		{"/healthz", "/healthz"},
		{"/metrics", "/metrics"},
		{"/v1/jobs/j00000001", "/v1/jobs/{id}"},
		{"/v1/jobs/j00000001/trace", "/v1/jobs/{id}/trace"},
		{"/", "other"},
		{"/v1/unknown", "other"},
		{"/v1/flow/extra", "other"},
	}
	for _, c := range cases {
		if got := routeLabel(c.path); got != c.want {
			t.Errorf("routeLabel(%q) = %q, want %q", c.path, got, c.want)
		}
	}
}

func TestClientRequestID(t *testing.T) {
	mk := func(id string) *http.Request {
		r := httptest.NewRequest(http.MethodGet, "/healthz", nil)
		if id != "" {
			r.Header.Set(requestIDHeader, id)
		}
		return r
	}
	for _, ok := range []string{"abc", "a-b_c.9", "ABC123"} {
		if got := clientRequestID(mk(ok)); got != ok {
			t.Errorf("clientRequestID(%q) = %q, want accepted", ok, got)
		}
	}
	long := make([]byte, 65)
	for i := range long {
		long[i] = 'a'
	}
	for _, bad := range []string{"", "has space", "semi;colon", "unié", string(long)} {
		if got := clientRequestID(mk(bad)); got != "" {
			t.Errorf("clientRequestID(%q) = %q, want rejected", bad, got)
		}
	}
}

func TestNewRequestIDUnique(t *testing.T) {
	a, b := newRequestID(), newRequestID()
	if len(a) != 16 || len(b) != 16 {
		t.Fatalf("unexpected lengths: %q %q", a, b)
	}
	if a == b {
		t.Fatalf("two IDs collided: %q", a)
	}
}

func TestStatusWriter(t *testing.T) {
	rec := httptest.NewRecorder()
	sw := &statusWriter{ResponseWriter: rec}
	if _, err := sw.Write([]byte("hi")); err != nil {
		t.Fatal(err)
	}
	if sw.status != http.StatusOK || sw.bytes != 2 {
		t.Fatalf("implicit 200 not recorded: status=%d bytes=%d", sw.status, sw.bytes)
	}

	rec = httptest.NewRecorder()
	sw = &statusWriter{ResponseWriter: rec}
	sw.WriteHeader(http.StatusTeapot)
	sw.WriteHeader(http.StatusOK) // second call must not overwrite
	sw.Write([]byte("tea"))
	if sw.status != http.StatusTeapot || sw.bytes != 3 {
		t.Fatalf("explicit status not kept: status=%d bytes=%d", sw.status, sw.bytes)
	}
}
