package service

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"
)

// flightSummary mirrors the /debug/flightrecorder response shape the
// smoke scripts rely on.
type flightSummary struct {
	Retained map[string]int `json:"retained"`
	Traces   []struct {
		ID    string `json:"id"`
		Class string `json:"class"`
		State string `json:"state"`
	} `json:"traces"`
}

// fetchFlight polls /debug/flightrecorder until cond holds; the finish
// hook that records a trace runs just after the job's done channel
// closes, so the trace can land a beat after the HTTP response.
func fetchFlight(t *testing.T, baseURL string, cond func(flightSummary) bool) flightSummary {
	t.Helper()
	var sum flightSummary
	deadline := time.Now().Add(2 * time.Second)
	for {
		resp, body := getURL(t, baseURL+"/debug/flightrecorder")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("flightrecorder: %d %s", resp.StatusCode, body)
		}
		if err := json.Unmarshal(body, &sum); err != nil {
			t.Fatalf("flightrecorder decode: %v\n%s", err, body)
		}
		if cond(sum) {
			return sum
		}
		if time.Now().After(deadline) {
			t.Fatalf("flightrecorder condition not met in time: %+v", sum)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestFlightRecorderRetainsAndServesTraces(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	resp, body := postJSON(t, ts.URL+"/v1/simulate", fourDots())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("simulate: %d %s", resp.StatusCode, body)
	}
	jobID := resp.Header.Get("X-Job-Id")
	if jobID == "" {
		t.Fatal("simulate response missing X-Job-Id")
	}

	sum := fetchFlight(t, ts.URL, func(s flightSummary) bool { return len(s.Traces) > 0 })
	total := 0
	for _, n := range sum.Retained {
		total += n
	}
	if total != len(sum.Traces) {
		t.Fatalf("retained sum %d != trace count %d", total, len(sum.Traces))
	}

	// The retained trace is retrievable with its full report.
	resp, body = getURL(t, ts.URL+"/v1/traces/"+jobID)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace fetch: %d %s", resp.StatusCode, body)
	}
	var tr struct {
		ID    string          `json:"id"`
		Trace json.RawMessage `json:"trace"`
	}
	if err := json.Unmarshal(body, &tr); err != nil {
		t.Fatalf("trace decode: %v\n%s", err, body)
	}
	if tr.ID != jobID {
		t.Fatalf("trace id = %q, want %q", tr.ID, jobID)
	}
	if len(tr.Trace) == 0 || string(tr.Trace) == "null" {
		t.Fatal("trace payload empty")
	}

	resp, _ = getURL(t, ts.URL+"/v1/traces/nope-123")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown trace: %d, want 404", resp.StatusCode)
	}
}

func TestFlightRecorderKeepsErrorTrace(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	// A 1ms deadline with the cache bypassed forces a canceled job: 20
	// dots under blind exgs enumeration is 2^20 states, far beyond a
	// millisecond, and an explicitly selected solver never degrades.
	var dots []map[string]any
	for i := 0; i < 4; i++ {
		for j := 0; j < 5; j++ {
			dots = append(dots, map[string]any{"x": 3 * i, "y": 4 * j})
		}
	}
	// Depending on the degrade margin the job either times out (504) or
	// falls back to the annealer and returns 200 with X-Degraded — both
	// outcomes are error-class for the flight recorder.
	req := map[string]any{"solver": "exgs", "dots": dots, "timeout_ms": 1, "nocache": true}
	resp, body := postJSON(t, ts.URL+"/v1/simulate", req)
	if resp.StatusCode == http.StatusOK && resp.Header.Get("X-Degraded") != "true" {
		t.Fatalf("2^20-state exgs simulate finished cleanly inside 1ms: %s", body)
	}
	jobID := resp.Header.Get("X-Job-Id")
	if jobID == "" {
		t.Fatalf("error response missing X-Job-Id (%d %s)", resp.StatusCode, body)
	}

	sum := fetchFlight(t, ts.URL, func(s flightSummary) bool {
		for _, tr := range s.Traces {
			if tr.ID == jobID {
				return true
			}
		}
		return false
	})
	for _, tr := range sum.Traces {
		if tr.ID == jobID && tr.Class != "error" {
			t.Fatalf("failed job retained with class %q, want error", tr.Class)
		}
	}
	if resp, _ := getURL(t, ts.URL+"/v1/traces/"+jobID); resp.StatusCode != http.StatusOK {
		t.Fatalf("error trace fetch: %d, want 200", resp.StatusCode)
	}
}

func TestHealthzReportsSLO(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	// One fast, successful read against the healthz route itself seeds
	// the "read" objective.
	getURL(t, ts.URL+"/healthz")
	resp, body := getURL(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d %s", resp.StatusCode, body)
	}
	var hz struct {
		SLO map[string]struct {
			Budget  float64 `json:"error_budget"`
			Windows []struct {
				Window   string  `json:"window"`
				BurnRate float64 `json:"burn_rate"`
			} `json:"windows"`
		} `json:"slo"`
	}
	if err := json.Unmarshal(body, &hz); err != nil {
		t.Fatalf("healthz decode: %v\n%s", err, body)
	}
	for _, name := range []string{"flow", "simulate", "validate", "read"} {
		st, ok := hz.SLO[name]
		if !ok {
			t.Fatalf("healthz slo missing objective %q\n%s", name, body)
		}
		if st.Budget <= 0 {
			t.Fatalf("objective %q has budget %v", name, st.Budget)
		}
		if len(st.Windows) == 0 {
			t.Fatalf("objective %q has no burn windows", name)
		}
	}
	// The successful healthz reads must not burn the read budget.
	for _, wb := range hz.SLO["read"].Windows {
		if wb.BurnRate != 0 {
			t.Fatalf("read burn rate = %v after OK reads, want 0", wb.BurnRate)
		}
	}
}

func TestMetricsExposeSLOAndFlightSeries(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	if resp, body := postJSON(t, ts.URL+"/v1/simulate", fourDots()); resp.StatusCode != http.StatusOK {
		t.Fatalf("simulate: %d %s", resp.StatusCode, body)
	}
	fetchFlight(t, ts.URL, func(s flightSummary) bool { return len(s.Traces) > 0 })

	_, metrics := scrapeMetrics(t, ts.URL)
	for _, want := range []string{
		"slo_burn_rate{",
		"slo_budget_remaining{",
		"flight_admitted_total{",
		"flight_retained{",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
