package service

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/journal"
	"repro/internal/obs"
	"repro/internal/obs/obslog"
)

// Recovery modes for jobs the journal shows queued or running at crash.
const (
	// RecoverFail (the default) surfaces interrupted jobs as state
	// "failed" with error_kind "interrupted": honest, cheap, and safe for
	// clients that resubmit on failure themselves.
	RecoverFail = "fail"
	// RecoverResubmit re-enqueues interrupted jobs from their journaled
	// request bytes, under their pre-crash ids.
	RecoverResubmit = "resubmit"
)

// IdempotencyKeyHeader lets a client tag a submission so a retry of the
// same POST — after a timeout, a crash, or a lost response — reattaches
// to the original job instead of starting a duplicate solve.
const IdempotencyKeyHeader = "Idempotency-Key"

// idempotentReplayHeader marks a response served by replaying an earlier
// submission with the same Idempotency-Key.
const idempotentReplayHeader = "X-Idempotent-Replay"

// idempotencyKey returns the caller's Idempotency-Key when it is safe to
// use (same bounded length and conservative charset as request ids), "".
func idempotencyKey(r *http.Request) string {
	key := r.Header.Get(IdempotencyKeyHeader)
	if key == "" || len(key) > 64 {
		return ""
	}
	for _, c := range key {
		ok := c == '-' || c == '_' || c == '.' ||
			(c >= '0' && c <= '9') || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if !ok {
			return ""
		}
	}
	return key
}

// maxIdemEntries bounds the idempotency-key table; the oldest mappings
// fall off first (a client retrying that far behind re-solves, it does
// not get a wrong answer — the cache still dedups the work).
const maxIdemEntries = 4096

// idemTable maps idempotency keys to job ids, FIFO-bounded.
type idemTable struct {
	mu    sync.Mutex
	byKey map[string]string
	order []string
}

func (t *idemTable) claim(key, jobID string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.byKey == nil {
		t.byKey = make(map[string]string)
	}
	if _, ok := t.byKey[key]; !ok {
		t.order = append(t.order, key)
	}
	t.byKey[key] = jobID
	for len(t.order) > maxIdemEntries {
		delete(t.byKey, t.order[0])
		t.order = t.order[1:]
	}
}

func (t *idemTable) lookup(key string) (string, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	id, ok := t.byKey[key]
	return id, ok
}

func (t *idemTable) drop(key string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.byKey, key)
	for i, k := range t.order {
		if k == key {
			t.order = append(t.order[:i], t.order[i+1:]...)
			break
		}
	}
}

// idempotentReplay serves the request from an earlier submission with the
// same Idempotency-Key, when one is still known. Replays reattach only to
// jobs that succeeded or are still in flight; a canceled/failed outcome
// drops the mapping so the retry genuinely retries. Returns true when the
// response was written.
func (s *Server) idempotentReplay(w http.ResponseWriter, r *http.Request, key string, async bool) bool {
	if key == "" {
		return false
	}
	jobID, ok := s.idem.lookup(key)
	if !ok {
		return false
	}
	j, ok := s.queue.Get(jobID)
	if !ok {
		s.idem.drop(key) // job pruned from history: mapping is stale
		return false
	}
	switch j.State() {
	case JobCanceled, JobFailed:
		// Replaying a terminal failure forever would make the retry
		// pointless; the retry gets a fresh attempt (under the same key).
		s.idem.drop(key)
		return false
	}
	s.tr.Counter("idempotency/replayed_total").Inc()
	w.Header().Set(idempotentReplayHeader, "true")
	if async {
		w.Header().Set("Location", "/v1/jobs/"+j.ID)
		writeJSON(w, http.StatusAccepted, j.Snapshot())
		return true
	}
	s.await(w, r, j)
	return true
}

// ---- journal wiring ----

// initJournal opens the write-ahead journal, replays it into recovery
// actions, and hooks the queue lifecycle so every subsequent submission,
// start, and terminal transition is journaled. Called from New after the
// queue exists but before the server accepts requests.
func (s *Server) initJournal(cfg Config) error {
	jr, err := journal.Open(cfg.JournalDir, journal.Options{
		Tracer: s.tr,
		Logger: s.log,
	})
	if err != nil {
		return err
	}
	s.jrnl = jr
	s.queue.OnSubmit(func(j *Job) {
		ev := journal.Event{
			Type:      journal.EventSubmitted,
			JobID:     j.ID,
			Kind:      j.Kind,
			RequestID: j.RequestID(),
		}
		if m := j.Meta(); m != nil {
			ev.Path, ev.Body, ev.Key = m.Path, m.Body, m.Key
			ev.IdemKey, ev.TimeoutMS = m.IdemKey, m.TimeoutMS
		}
		s.journalAppend(ev)
	})
	s.queue.OnStart(func(j *Job) {
		s.journalAppend(journal.Event{Type: journal.EventStarted, JobID: j.ID})
	})
	return nil
}

// journalFinish records a job's terminal transition; wired into the
// queue's OnFinish hook alongside the flight recorder.
func (s *Server) journalFinish(j *Job) {
	if s.jrnl == nil {
		return
	}
	st := j.Snapshot()
	ev := journal.Event{JobID: j.ID, ErrorKind: st.ErrorKind}
	if st.State == JobCanceled {
		ev.Type = journal.EventCanceled
	} else {
		ev.Type = journal.EventFinished
	}
	s.journalAppend(ev)
}

// journalAppend appends one event, treating failure as degraded
// durability rather than unavailability: the job still runs, the loss is
// that a crash before its terminal event would replay it as interrupted.
func (s *Server) journalAppend(ev journal.Event) {
	if err := s.jrnl.Append(ev); err != nil {
		s.tr.Counter("journal/append_errors_total").Inc()
		s.log.Warn("journal_append_failed",
			obslog.F("job_id", ev.JobID),
			obslog.F("type", ev.Type),
			obslog.F("error", err.Error()))
	}
}

// recoverJournal replays the journal's job table into queue state: jobs
// that finished before the crash become terminal stubs (their id answers
// honestly, without a result body), and jobs the crash stranded are
// either resubmitted from their journaled request bytes (RecoverResubmit)
// or surfaced as failed/interrupted. Outcomes are counted in
// journal_recovered_total{outcome}.
func (s *Server) recoverJournal(mode string) {
	recs := s.jrnl.Recovered()
	// Advance the id sequence past every recovered id first, so fresh
	// submissions never collide with resubmitted pre-crash ids.
	for i := range recs {
		s.queue.EnsureNextID(recs[i].Submitted.JobID)
	}
	for i := range recs {
		rec := &recs[i]
		outcome := s.recoverJob(rec, mode)
		s.tr.Counter(obs.Labeled("journal/recovered_total", "outcome", outcome)).Inc()
		s.log.Info("journal_job_recovered",
			obslog.F("job_id", rec.Submitted.JobID),
			obslog.F("kind", rec.Submitted.Kind),
			obslog.F("state", rec.State),
			obslog.F("outcome", outcome))
	}
}

// recoverJob applies one replayed job record and names the outcome.
func (s *Server) recoverJob(rec *journal.JobRecord, mode string) string {
	sub := &rec.Submitted
	if rec.Terminal() {
		state := JobDone
		errMsg := ""
		switch rec.State {
		case journal.StateFailed:
			state, errMsg = JobFailed, "failed before daemon restart"
		case journal.StateCanceled:
			state, errMsg = JobCanceled, "canceled before daemon restart"
		}
		s.queue.Restore(sub.JobID, sub.Kind, sub.RequestID, state, rec.ErrorKind, errMsg, sub.Time, false)
		return "completed"
	}
	if mode == RecoverResubmit && s.resubmitRecovered(rec) {
		return "resubmitted"
	}
	s.queue.Restore(sub.JobID, sub.Kind, sub.RequestID, JobFailed, ErrKindInterrupted,
		"interrupted by daemon restart", sub.Time, true)
	return "interrupted"
}

// resubmitRecovered re-enqueues one stranded job from its journaled
// request bytes, under its pre-crash id. Returns false (caller falls back
// to interrupted) when the body cannot be re-prepared — an endpoint with
// no recovery support, a library that changed across the restart — or the
// queue refuses it.
func (s *Server) resubmitRecovered(rec *journal.JobRecord) bool {
	sub := &rec.Submitted
	if sub.Path == "" || len(sub.Body) == 0 {
		return false
	}
	op, err := s.prepareFromPath(sub.Path, sub.Body)
	if err != nil {
		s.log.Warn("journal_resubmit_unpreparable",
			obslog.F("job_id", sub.JobID),
			obslog.F("path", sub.Path),
			obslog.F("error", err.Error()))
		return false
	}
	timeout := time.Duration(sub.TimeoutMS) * time.Millisecond
	if s.cfg.JobTimeout > 0 && (timeout <= 0 || timeout > s.cfg.JobTimeout) {
		timeout = s.cfg.JobTimeout
	}
	jtr := s.newJobTracer()
	j, err := s.queue.SubmitWith(SubmitOptions{
		Kind:      op.kind,
		RequestID: sub.RequestID,
		Tracer:    jtr,
		Timeout:   timeout,
		ID:        sub.JobID,
		Meta: &JobMeta{
			Path: sub.Path, Body: sub.Body, Key: string(op.key),
			IdemKey: sub.IdemKey, TimeoutMS: sub.TimeoutMS,
		},
	}, s.jobFn(op, sub.RequestID, obs.Hop{}, jtr))
	if err != nil {
		s.log.Warn("journal_resubmit_rejected",
			obslog.F("job_id", sub.JobID),
			obslog.F("error", err.Error()))
		return false
	}
	if sub.IdemKey != "" {
		// The retrying client reattaches to the resubmitted run.
		s.idem.claim(sub.IdemKey, j.ID)
	}
	return true
}

// prepareFromPath re-prepares a journaled request body under its original
// endpoint. Only the single-op compute endpoints are resubmittable; batch
// and sweep jobs recover as interrupted.
func (s *Server) prepareFromPath(path string, body []byte) (*preparedOp, error) {
	switch path {
	case "/v1/flow":
		var req flowRequest
		if err := json.Unmarshal(body, &req); err != nil {
			return nil, err
		}
		return s.prepareFlow(&req)
	case "/v1/simulate":
		var req simulateRequest
		if err := json.Unmarshal(body, &req); err != nil {
			return nil, err
		}
		return s.prepareSimulate(&req)
	case "/v1/gates/validate":
		var req validateRequest
		if err := json.Unmarshal(body, &req); err != nil {
			return nil, err
		}
		return s.prepareValidate(&req)
	default:
		return nil, fmt.Errorf("service: no recovery for %s", path)
	}
}

// drainRetryAfterSeconds estimates when a draining replica's replacement
// should be up: the remainder of the drain grace period, clamped to at
// least a second. With no grace configured the estimate is the minimum —
// the operator chose an immediate drain.
func (s *Server) drainRetryAfterSeconds() int {
	grace := s.cfg.DrainGrace
	if grace <= 0 {
		return 1
	}
	remaining := grace
	if t := s.queue.DrainStarted(); !t.IsZero() {
		remaining = grace - time.Since(t)
	}
	secs := int(math.Ceil(remaining.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return secs
}

// retryAfterDrain stamps the drain Retry-After header (split out so the
// 503 write stays in submit beside its siblings).
func (s *Server) retryAfterDrain(w http.ResponseWriter) {
	w.Header().Set("Retry-After", strconv.Itoa(s.drainRetryAfterSeconds()))
}
