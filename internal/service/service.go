package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/cache"
	"repro/internal/cluster"
	"repro/internal/cluster/overview"
	"repro/internal/core"
	"repro/internal/gatelib"
	"repro/internal/journal"
	"repro/internal/lattice"
	"repro/internal/logic/bench"
	"repro/internal/logic/network"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/obs/obslog"
	"repro/internal/obs/slo"
	"repro/internal/sidb"
	"repro/internal/sim"
)

// Config tunes the design service.
type Config struct {
	// Workers is the job worker pool size (default 2).
	Workers int
	// QueueDepth bounds queued-but-not-running jobs (default 4*Workers).
	QueueDepth int
	// JobTimeout is the default per-job deadline; requests can shorten it
	// via timeout_ms but never extend it. Zero means no deadline.
	JobTimeout time.Duration
	// CacheBytes bounds the in-memory result cache (default 64 MiB).
	CacheBytes int64
	// CacheDir, when set, enables the persistent flow-artifact layer.
	CacheDir string
	// Solver is the default ground-state solver name ("" = automatic
	// dispatch; see sim.SolverNames).
	Solver string
	// MaxBodyBytes bounds request bodies (default 1 MiB); oversized
	// requests are rejected with 413 and a JSON error.
	MaxBodyBytes int64
	// Tracer receives server-wide metrics (queue depth, cache hit rates,
	// request counters, latency histograms). Per-job flow spans use their
	// own tracers whose stage durations are aggregated back onto this one
	// via an obs.StageObserver, so the shared tracer only ever sees
	// concurrency-safe metric types.
	Tracer *obs.Tracer
	// Logger receives structured JSON request/job logs (nil disables).
	Logger *obslog.Logger
	// MaxRetries bounds retries of transient disk-cache I/O failures
	// (default 2; negative disables). Repeated failures trip a circuit
	// breaker that degrades the service to memory-only caching.
	MaxRetries int
	// DegradeMargin is the budget the solver degradation ladder reserves
	// for its cheaper fallback engines under a job deadline (default
	// sim.DefaultDegradeMargin; see sim.Degrading).
	DegradeMargin time.Duration
	// SLOWindows are the burn-rate evaluation windows (default 5m and 1h).
	// Chaos tests shrink them so budget burn and recovery are observable
	// within a smoke run.
	SLOWindows []time.Duration
	// Cluster, when set, makes this replica part of a fleet: peer health
	// probes, consistent-hash ownership routing, a peer cache tier, and
	// fleet-wide single-flight deduplication (see internal/cluster).
	Cluster *cluster.Config
	// JournalDir, when set, enables the write-ahead job journal: every
	// submission is fsynced to disk before its id is returned, and on
	// restart the journal is replayed so pre-crash job ids answer honestly
	// instead of 404ing (see internal/journal and RecoverMode).
	JournalDir string
	// RecoverMode decides what happens to jobs the journal shows queued or
	// running at crash: RecoverFail (default) surfaces them as failed with
	// error_kind "interrupted"; RecoverResubmit re-enqueues them from
	// their journaled request bytes under their pre-crash ids.
	RecoverMode string
	// DrainGrace is the shutdown grace period the daemon gives Drain; the
	// 503s a draining replica answers with advertise the remainder of it
	// as Retry-After.
	DrainGrace time.Duration
}

// defaultObjectives declares the service's latency/error objectives per
// cost class. Budgets are error budgets: the tolerated fraction of bad
// (5xx or over-latency-threshold) requests.
func defaultObjectives() []slo.Objective {
	return []slo.Objective{
		{Name: "flow", Latency: 30 * time.Second, Budget: 0.01},
		{Name: "simulate", Latency: 5 * time.Second, Budget: 0.01},
		{Name: "validate", Latency: 5 * time.Second, Budget: 0.01},
		{Name: "read", Latency: 250 * time.Millisecond, Budget: 0.01},
	}
}

// Server is the bestagond HTTP service: a JSON API over the design flow,
// simulation, and gate validation, backed by a bounded job queue and a
// content-addressed result cache.
type Server struct {
	cfg       Config
	tr        *obs.Tracer
	log       *obslog.Logger
	queue     *Queue
	lru       *cache.LRU
	flow      *cache.FlowCache
	lib       *gatelib.Library
	mux       *http.ServeMux
	handler   http.Handler
	started   time.Time
	window    *obs.RollingWindow
	stageSink *obs.StageObserver
	flight    *flight.Recorder
	slo       *slo.Engine
	inFlight  atomic.Int64

	// Fleet state: nil node means single-replica operation. peer is the
	// resilient-wrapped peer cache tier handed to the cache wrappers;
	// single coalesces identical in-flight executions; admission applies
	// cost-class load shedding.
	node      *cluster.Node
	peer      cache.Layer
	single    cluster.Group
	admission *admission
	// overview aggregates the fleet's /internal/stats snapshots in the
	// background; nil outside a fleet (GET /v1/cluster/overview then
	// serves a one-replica view computed on demand).
	overview *overview.Aggregator

	// jrnl is the write-ahead job journal (nil when JournalDir is unset);
	// idem maps Idempotency-Key values to job ids so client retries
	// reattach instead of re-solving.
	jrnl *journal.Journal
	idem idemTable
}

// New builds a server (it does not listen; see Handler).
func New(cfg Config) (*Server, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 4 * cfg.Workers
	}
	if cfg.Tracer == nil {
		// The server always carries a tracer so /metrics has content even
		// when the daemon was started without observability flags.
		cfg.Tracer = obs.New()
	}
	if cfg.Solver != "" {
		if _, err := sim.Lookup(cfg.Solver); err != nil {
			return nil, fmt.Errorf("service: %w", err)
		}
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 1 << 20
	}
	switch cfg.RecoverMode {
	case "", RecoverFail:
		cfg.RecoverMode = RecoverFail
	case RecoverResubmit:
	default:
		return nil, fmt.Errorf("service: unknown recover mode %q (want %s or %s)",
			cfg.RecoverMode, RecoverFail, RecoverResubmit)
	}
	s := &Server{
		cfg:     cfg,
		tr:      cfg.Tracer,
		log:     cfg.Logger,
		lru:     cache.NewLRU(cfg.CacheBytes),
		lib:     gatelib.NewLibrary(),
		started: time.Now(),
		window:  obs.NewRollingWindow(512),
	}
	s.stageSink = &obs.StageObserver{
		Tracer: s.tr,
		Family: "flow_stage_seconds",
		// Solver-depth telemetry: numeric span attributes recorded by the
		// SAT size search and the annealer are folded into server-wide
		// histograms labeled by stage, so /metrics exposes search-effort
		// distributions (how hard solves are, not just how long).
		Attrs: []obs.AttrHistogram{
			{Key: "conflicts", Family: "sat_conflicts_per_solve",
				Bounds: []float64{0, 10, 100, 1e3, 1e4, 1e5, 1e6}},
			{Key: "decisions", Family: "sat_decisions_per_solve",
				Bounds: []float64{0, 10, 100, 1e3, 1e4, 1e5, 1e6}},
			{Key: "propagations", Family: "sat_propagations_per_solve",
				Bounds: []float64{0, 100, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8}},
			{Key: "restarts", Family: "sat_restarts_per_solve",
				Bounds: []float64{0, 1, 2, 5, 10, 20, 50, 100}},
			{Key: "acceptance_rate", Family: "anneal_acceptance_rate",
				Bounds: []float64{0.01, 0.02, 0.05, 0.1, 0.15, 0.2, 0.3, 0.5, 0.75, 1}},
		},
	}
	s.slo = slo.New(defaultObjectives(), cfg.SLOWindows...)
	s.flight = flight.NewRecorder(flight.Options{Tracer: s.tr})
	s.lru.Instrument(s.tr, "cache/mem")
	s.flow = &cache.FlowCache{Mem: s.lru}
	if cfg.CacheDir != "" {
		d, err := cache.NewDisk(cfg.CacheDir)
		if err != nil {
			return nil, err
		}
		d.Instrument(s.tr, s.log)
		// The resilient wrapper retries transient I/O and trips a breaker
		// to memory-only caching when the disk keeps failing, so cache
		// storage trouble degrades throughput instead of availability.
		s.flow.Disk = cache.NewResilientDisk(d, cache.ResilientOptions{
			MaxRetries: cfg.MaxRetries,
			Tracer:     s.tr,
			Logger:     s.log,
		})
	}
	if cfg.Cluster != nil {
		cc := *cfg.Cluster
		if cc.Tracer == nil {
			cc.Tracer = s.tr
		}
		if cc.Logger == nil {
			cc.Logger = s.log
		}
		node, err := cluster.NewNode(cc)
		if err != nil {
			return nil, err
		}
		s.node = node
		// Peer I/O rides behind the same resilient breaker as the disk:
		// no in-layer retries (the probe loop removes dead peers from the
		// ring within about a second anyway), and repeated failures trip
		// the breaker so a sick fleet degrades to independent replicas.
		s.peer = cache.NewResilient(cluster.NewPeerLayer(node), cache.ResilientOptions{
			Name:       "peer",
			MaxRetries: -1,
			Tracer:     s.tr,
			Logger:     s.log,
		})
		s.flow.Peer = s.peer
		node.Start()
	}
	s.admission = newAdmission(s.tr)
	s.queue = NewQueue(cfg.Workers, cfg.QueueDepth, cfg.JobTimeout, s.tr, s.log)
	s.queue.OnFinish(func(j *Job) {
		s.recordFlight(j)
		s.admission.observe(j.RunSeconds())
		s.journalFinish(j)
	})
	if cfg.JournalDir != "" {
		// Opened after the queue so the lifecycle hooks have a queue to
		// hang off, and recovery (which may resubmit) has workers to run
		// on — but before the mux exists, so no request can race replay.
		if err := s.initJournal(cfg); err != nil {
			return nil, err
		}
		s.recoverJournal(cfg.RecoverMode)
	}
	if s.node != nil {
		// Built after the queue: the aggregator seeds itself with a local
		// stats snapshot, which reads queue state.
		s.overview = overview.New(overview.Config{
			SelfStats: s.statsSnapshot,
			Members:   s.node.Status,
			Client:    s.node.Client(),
			Secret:    s.node.Secret(),
			Interval:  cfg.Cluster.ProbeInterval,
			Tracer:    s.tr,
			Logger:    s.log,
		})
		s.overview.Start()
	}

	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/flow", s.handleFlow)
	s.mux.HandleFunc("POST /v1/simulate", s.handleSimulate)
	s.mux.HandleFunc("POST /v1/gates/validate", s.handleValidate)
	s.mux.HandleFunc("POST /v1/batch", s.handleBatch)
	s.mux.HandleFunc("POST /v1/defects/sweep", s.handleDefectSweep)
	s.mux.HandleFunc("GET /internal/cache/{key}", s.handleInternalCacheGet)
	s.mux.HandleFunc("PUT /internal/cache/{key}", s.handleInternalCachePut)
	s.mux.HandleFunc("GET /internal/stats", s.handleInternalStats)
	s.mux.HandleFunc("GET /internal/trace/{id}", s.handleInternalTrace)
	s.mux.HandleFunc("GET /v1/cluster/overview", s.handleClusterOverview)
	s.mux.HandleFunc("GET /v1/gates", s.handleGates)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	s.mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleJobTrace)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobDelete)
	s.mux.HandleFunc("GET /v1/traces/{id}", s.handleTraceGet)
	s.mux.HandleFunc("GET /debug/flightrecorder", s.handleFlightRecorder)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.handler = s.instrument(s.mux)
	return s, nil
}

// Handler returns the HTTP handler (routes wrapped in the observability
// middleware: request IDs, latency histograms, structured logs).
func (s *Server) Handler() http.Handler { return s.handler }

// Queue exposes the job queue (for tests and the daemon's drain path).
func (s *Server) Queue() *Queue { return s.queue }

// CacheStats snapshots the in-memory result cache.
func (s *Server) CacheStats() cache.Stats { return s.lru.Stats() }

// Drain stops accepting jobs and waits for in-flight work (see
// Queue.Drain). In a fleet it also stops the peer probe loop.
func (s *Server) Drain(ctx context.Context) error {
	if s.overview != nil {
		s.overview.Stop()
	}
	if s.node != nil {
		s.node.Stop()
	}
	err := s.queue.Drain(ctx)
	if s.jrnl != nil {
		// After Drain every job has journaled its terminal event; closing
		// here fsyncs the tail so a clean shutdown replays to nothing.
		s.jrnl.Close()
	}
	return err
}

// ---- request/response plumbing ----

// jobResult is what every job kind stores on completion: the canonical
// response body plus where it came from. Serving the stored bytes verbatim
// is what makes warm responses byte-identical to cold ones.
type jobResult struct {
	body   []byte
	source string // cache.SourceMem, cache.SourceDisk, "miss", "bypass"
	// degraded mirrors the artifact's degraded marker so the queue can
	// tag the job with ErrorKind "degraded" (the body carries the full
	// detail; this drives the X-Degraded header and job snapshots).
	degraded bool
}

// DegradedResult implements the queue's DegradedResult interface.
func (r *jobResult) DegradedResult() bool { return r.degraded }

func (r *jobResult) cacheHeader() string {
	switch r.source {
	case cache.SourceMem, cache.SourceDisk, cache.SourcePeer, "hit", sourceCoalesced:
		// A peer hit or a coalesced ride-along did no local solving; from
		// the client's perspective both are fleet cache hits.
		return "hit"
	default:
		return "miss"
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		http.Error(w, `{"error":"encoding failure"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(append(b, '\n'))
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// writeErrKind is writeErr plus the machine-readable error_kind field
// ("not_found", "panic", "timeout", "canceled", "degraded", "error") so
// clients can branch on failure class without parsing prose.
func writeErrKind(w http.ResponseWriter, code int, kind, format string, args ...any) {
	writeJSON(w, code, map[string]string{
		"error":      fmt.Sprintf(format, args...),
		"error_kind": kind,
	})
}

// readBody reads the bounded raw request body. It returns ok=false after
// writing the error response itself: 413 with a JSON error when the body
// exceeds the configured bound. The raw bytes are kept because cluster
// routing forwards them verbatim to the owner replica.
func (s *Server) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	b, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeErr(w, http.StatusRequestEntityTooLarge,
				"request body exceeds %d bytes", mbe.Limit)
			return nil, false
		}
		writeErr(w, http.StatusBadRequest, "bad request: %v", err)
		return nil, false
	}
	return b, true
}

// unmarshalBody decodes body into v, writing the 400 itself on failure.
func unmarshalBody(w http.ResponseWriter, body []byte, v any) bool {
	if err := json.Unmarshal(body, v); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request: %v", err)
		return false
	}
	return true
}

// decodeJSON reads and decodes a bounded request body into v (see
// readBody; kept for handlers that never forward).
func (s *Server) decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	body, ok := s.readBody(w, r)
	if !ok {
		return false
	}
	return unmarshalBody(w, body, v)
}

// preparedOp is a parsed, validated compute request: its canonical cache
// key (empty when the request is not content-addressable — nocache or a
// custom library) drives cluster routing and single-flight coalescing,
// and exec performs the work under the given context and per-job tracer.
// prepare* functions do all request-shape validation up front, so exec
// can only fail for compute reasons.
type preparedOp struct {
	kind      string // "flow", "simulate", "validate"
	key       cache.Key
	timeoutMS int64
	exec      func(ctx context.Context, jtr *obs.Tracer) (*jobResult, error)
}

// coldSolve counts a genuinely local computation (no cache tier and no
// coalescing served it) — the number the fleet bench sums across replicas
// to prove single-flight works.
func (s *Server) coldSolve(kind string) {
	s.tr.Counter(obs.Labeled("jobs/cold_solves_total", "kind", kind)).Inc()
}

// jobFn adapts a preparedOp into the queue's JobFunc, threading the
// request ID and hop marker and routing the execution through the
// single-flight group. When the request arrived forwarded from a peer,
// the job trace opens with a zero-length "hop" marker span naming the
// forwarding replica, the hop index, and the entry-side span this
// execution nests under — the stitching anchors for /v1/traces/{id}.
func (s *Server) jobFn(op *preparedOp, rid string, hop obs.Hop, jtr *obs.Tracer) JobFunc {
	return func(ctx context.Context) (any, error) {
		ctx = obs.ContextWithRequestID(ctx, rid)
		ctx = obs.ContextWithHop(ctx, hop)
		if hop.Forwarded {
			sp := jtr.Start("hop")
			sp.SetAttr("forwarded", true)
			sp.SetAttr("peer", hop.Peer)
			sp.SetAttr("hop", hop.Index)
			if hop.ParentSpan != "" {
				sp.SetAttr("parent_span", hop.ParentSpan)
			}
			sp.End()
		}
		jr, err := s.runCoalesced(ctx, op, jtr)
		if err != nil {
			// Return an untyped nil: a typed-nil *jobResult inside the any
			// would pass the job-result type assertions downstream.
			return nil, err
		}
		return jr, nil
	}
}

// newJobTracer builds the per-job tracer: it records the job's stage
// spans for GET /v1/jobs/{id}/trace, and its span sink aggregates every
// stage duration into the server-wide flow_stage_seconds histograms so
// /metrics exposes per-stage latency distributions (rewrite, P&R, SAT
// size search, simulation, ...) across all jobs.
func (s *Server) newJobTracer() *obs.Tracer {
	jtr := obs.New()
	jtr.SetSink(s.stageSink)
	return jtr
}

// submit enqueues fn, applying queue backpressure to the response. The
// request id, per-job tracer, and journal payload ride along so they are
// attached before a worker can pick the job up (see Queue.SubmitWith). A
// successful submission with an Idempotency-Key claims the key, so a
// client retry reattaches to this job.
func (s *Server) submit(w http.ResponseWriter, kind, rid string, jtr *obs.Tracer, meta *JobMeta, fn JobFunc) (*Job, bool) {
	var timeoutMS int64
	if meta != nil {
		timeoutMS = meta.TimeoutMS
	}
	timeout := time.Duration(timeoutMS) * time.Millisecond
	if s.cfg.JobTimeout > 0 && (timeout <= 0 || timeout > s.cfg.JobTimeout) {
		timeout = s.cfg.JobTimeout
	}
	j, err := s.queue.SubmitWith(SubmitOptions{
		Kind: kind, RequestID: rid, Tracer: jtr, Timeout: timeout, Meta: meta,
	}, fn)
	switch err {
	case nil:
		if meta != nil && meta.IdemKey != "" {
			s.idem.claim(meta.IdemKey, j.ID)
		}
		return j, true
	case ErrQueueFull:
		// Same honest estimate as admission control: backlog times the
		// smoothed job duration across the pool, not a blind constant.
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		writeErrKind(w, http.StatusTooManyRequests, ErrKindShed,
			"job queue is full (depth %d)", s.cfg.QueueDepth)
	case ErrDraining:
		// The replica is going away; the remainder of the drain grace is
		// the honest estimate of when its replacement answers.
		s.retryAfterDrain(w)
		writeErr(w, http.StatusServiceUnavailable, "server is draining")
	default:
		writeErr(w, http.StatusInternalServerError, "%v", err)
	}
	return nil, false
}

// await blocks until the job finishes or the client goes away (which
// cancels the job), then writes the job's canonical response.
func (s *Server) await(w http.ResponseWriter, r *http.Request, j *Job) {
	select {
	case <-j.Done():
	case <-r.Context().Done():
		j.Cancel()
		<-j.Done()
	}
	res, errMsg := j.Result()
	kind := j.ErrorKind()
	switch j.State() {
	case JobDone:
		jr, ok := res.(*jobResult)
		if !ok {
			// A recovered terminal stub has no result body (only the journal
			// survived the crash, not the bytes); 410 tells the caller the
			// job finished but the answer must be re-requested.
			w.Header().Set("X-Job-Id", j.ID)
			writeErrKind(w, http.StatusGone, ErrKindInterrupted,
				"job %s completed before a daemon restart; its result was not retained", j.ID)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Job-Id", j.ID)
		w.Header().Set("X-Cache", jr.cacheHeader())
		if jr.degraded {
			// Deadline pressure forced a cheaper engine; the body carries
			// degraded:true and the header lets clients spot it without
			// parsing. Still a 200: the result is usable.
			w.Header().Set("X-Degraded", "true")
		}
		w.WriteHeader(http.StatusOK)
		w.Write(jr.body)
	case JobCanceled:
		w.Header().Set("X-Job-Id", j.ID)
		writeErrKind(w, http.StatusGatewayTimeout, kind, "job %s canceled: %s", j.ID, errMsg)
	default:
		code := http.StatusUnprocessableEntity
		if kind == ErrKindPanic {
			// A panic is the server's bug, not the request's fault.
			code = http.StatusInternalServerError
		}
		w.Header().Set("X-Job-Id", j.ID)
		writeErrKind(w, code, kind, "job %s failed: %s", j.ID, errMsg)
	}
}

// ---- /v1/flow ----

type flowRequest struct {
	// Bench names a built-in Table 1 benchmark; Source provides an inline
	// netlist instead (Format "bench" or "verilog").
	Bench  string `json:"bench,omitempty"`
	Source string `json:"source,omitempty"`
	Format string `json:"format,omitempty"`
	Name   string `json:"name,omitempty"`
	// Engine is "auto" (default), "exact", or "ortho".
	Engine string `json:"engine,omitempty"`
	// CellSim enables whole-layout ground-state simulation; Solver picks
	// the backend for it.
	CellSim bool   `json:"cellsim,omitempty"`
	Solver  string `json:"solver,omitempty"`
	// MaxArea / ConflictBudget tune the exact engine.
	MaxArea        int   `json:"max_area,omitempty"`
	ConflictBudget int64 `json:"conflict_budget,omitempty"`
	// SQD / Report request the SiQAD file and the stage report.
	SQD    bool `json:"sqd,omitempty"`
	Report bool `json:"report,omitempty"`
	// Defects describes surface defects to design around (nil = pristine).
	Defects *defectsSpec `json:"defects,omitempty"`
	// TimeoutMS shortens the job deadline; NoCache bypasses the result
	// cache; Async returns 202 with a job ID instead of waiting.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	NoCache   bool  `json:"nocache,omitempty"`
	Async     bool  `json:"async,omitempty"`
}

func (s *Server) parseSpec(req *flowRequest) (*network.XAG, error) {
	switch {
	case req.Bench != "" && req.Source != "":
		return nil, fmt.Errorf("bench and source are mutually exclusive")
	case req.Bench != "":
		return bench.Load(req.Bench)
	case req.Source == "":
		return nil, fmt.Errorf("one of bench or source is required")
	case req.Format == "verilog":
		return bench.ParseVerilog(req.Source)
	case req.Format == "" || req.Format == "bench":
		name := req.Name
		if name == "" {
			name = "inline"
		}
		return bench.ParseBench(name, req.Source)
	default:
		return nil, fmt.Errorf("unknown format %q (want bench or verilog)", req.Format)
	}
}

func parseEngine(name string) (core.Engine, error) {
	switch name {
	case "", "auto":
		return core.EngineAuto, nil
	case "exact":
		return core.EngineExact, nil
	case "ortho":
		return core.EngineOrtho, nil
	default:
		return 0, fmt.Errorf("unknown engine %q (want auto, exact, or ortho)", name)
	}
}

// prepareFlow validates a flow request and packages it as a preparedOp.
func (s *Server) prepareFlow(req *flowRequest) (*preparedOp, error) {
	spec, err := s.parseSpec(req)
	if err != nil {
		return nil, err
	}
	engine, err := parseEngine(req.Engine)
	if err != nil {
		return nil, err
	}
	solver := req.Solver
	if solver == "" {
		solver = s.cfg.Solver
	}
	if req.CellSim {
		if _, err := sim.Lookup(solver); err != nil {
			return nil, err
		}
	}
	surf, err := req.Defects.surface()
	if err != nil {
		return nil, err
	}
	baseOpts := core.Options{
		Engine:        engine,
		CellSim:       req.CellSim,
		GroundSolver:  solver,
		DegradeMargin: s.cfg.DegradeMargin,
		Surface:       surf,
	}
	baseOpts.Exact.MaxArea = req.MaxArea
	baseOpts.Exact.ConflictBudget = req.ConflictBudget

	var key cache.Key
	if !req.NoCache {
		key = cache.FlowKey(spec, baseOpts, req.SQD, req.Report)
	}
	sqd, report, nocache := req.SQD, req.Report, req.NoCache
	op := &preparedOp{kind: "flow", key: key, timeoutMS: req.TimeoutMS}
	op.exec = func(ctx context.Context, jtr *obs.Tracer) (*jobResult, error) {
		opts := baseOpts
		opts.Tracer = jtr
		var art *cache.FlowArtifact
		source := cache.SourceBypass
		var err error
		if nocache {
			art, err = cache.RunFlow(ctx, spec, opts, sqd, report)
		} else {
			art, source, err = s.flow.Run(ctx, spec, opts, sqd, report)
		}
		if err != nil {
			return nil, err
		}
		switch source {
		case cache.SourceMiss, cache.SourceBypass:
			s.coldSolve("flow")
		case cache.SourcePeer:
			// Surface the cross-replica fetch in the job trace so the
			// flight recorder shows where the artifact came from.
			sp := jtr.Start("peer_fetch")
			sp.SetAttr("source", "peer")
			sp.End()
		}
		body, err := json.Marshal(art)
		if err != nil {
			return nil, err
		}
		return &jobResult{body: append(body, '\n'), source: source, degraded: art.Degraded}, nil
	}
	return op, nil
}

func (s *Server) handleFlow(w http.ResponseWriter, r *http.Request) {
	s.tr.Counter("http/flow").Inc()
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	var req flowRequest
	if !unmarshalBody(w, body, &req) {
		return
	}
	op, err := s.prepareFlow(&req)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	// An Idempotency-Key that matches an earlier submission reattaches to
	// that job; otherwise a miss forwards WITH the key, so the mapping
	// lands on the key's owner replica, where every retry converges.
	ik := idempotencyKey(r)
	if s.idempotentReplay(w, r, ik, req.Async) {
		return
	}
	// Async jobs are polled on the replica that accepted them, so they
	// must run (and be admitted) locally rather than forwarded.
	if !req.Async && s.routeCluster(w, r, op, body) {
		return
	}
	if !s.admit(w, "flow") {
		return
	}
	rid := obs.RequestIDFromContext(r.Context())
	jtr := s.newJobTracer()
	j, ok := s.submit(w, "flow", rid, jtr,
		&JobMeta{Path: "/v1/flow", Body: body, Key: string(op.key), IdemKey: ik, TimeoutMS: op.timeoutMS},
		s.jobFn(op, rid, obs.HopFromContext(r.Context()), jtr))
	if !ok {
		return
	}
	if req.Async {
		w.Header().Set("Location", "/v1/jobs/"+j.ID)
		writeJSON(w, http.StatusAccepted, j.Snapshot())
		return
	}
	s.await(w, r, j)
}

// ---- /v1/simulate ----

type dotRequest struct {
	X    int    `json:"x"`
	Y    int    `json:"y"`
	Role string `json:"role,omitempty"`
}

type simulateRequest struct {
	// Gate names a library tile by variant key (see GET /v1/gates); Dots
	// gives an explicit layout instead.
	Gate string       `json:"gate,omitempty"`
	Dots []dotRequest `json:"dots,omitempty"`
	// Params are the physical parameters (default: the paper's Fig. 5).
	Params *struct {
		MuMinus  float64 `json:"mu_minus"`
		EpsR     float64 `json:"eps_r"`
		LambdaTF float64 `json:"lambda_tf"`
	} `json:"params,omitempty"`
	Solver string `json:"solver,omitempty"`
	// Defects adds charged surface defects as fixed perturbers (nil =
	// pristine surface).
	Defects   *defectsSpec `json:"defects,omitempty"`
	TimeoutMS int64        `json:"timeout_ms,omitempty"`
	Async     bool         `json:"async,omitempty"`
}

type simulateResponse struct {
	Solver   string  `json:"solver"`
	Exact    bool    `json:"exact"`
	Dots     int     `json:"dots"`
	FreeDots int     `json:"free_dots"`
	EnergyEV float64 `json:"energy_ev"`
	// Defects counts the charged surface defects simulated as fixed
	// perturbers (omitted when pristine).
	Defects int `json:"defects,omitempty"`
	// Degraded reports that the deadline forced a cheaper engine than
	// requested; the result is best-effort, not provably minimal.
	Degraded bool `json:"degraded,omitempty"`
	// Charges[i] is 1 when dot i (request order) is DB- in the ground
	// state. Defect pseudo-dots are not reported.
	Charges []int `json:"charges"`
}

func parseRole(role string) (sidb.Role, error) {
	switch role {
	case "", "normal":
		return sidb.RoleNormal, nil
	case "perturber":
		return sidb.RolePerturber, nil
	case "input":
		return sidb.RoleInput, nil
	case "output":
		return sidb.RoleOutput, nil
	default:
		return 0, fmt.Errorf("unknown dot role %q", role)
	}
}

func (s *Server) simLayout(req *simulateRequest) (*sidb.Layout, error) {
	switch {
	case req.Gate != "" && len(req.Dots) > 0:
		return nil, fmt.Errorf("gate and dots are mutually exclusive")
	case req.Gate != "":
		d, _, ok := s.lib.Design(req.Gate)
		if !ok {
			return nil, fmt.Errorf("unknown gate %q (see GET /v1/gates)", req.Gate)
		}
		return d.Layout(0, 0), nil
	case len(req.Dots) == 0:
		return nil, fmt.Errorf("one of gate or dots is required")
	default:
		l := &sidb.Layout{Name: "request"}
		for _, d := range req.Dots {
			role, err := parseRole(d.Role)
			if err != nil {
				return nil, err
			}
			l.Add(lattice.FromCell(d.X, d.Y), role)
		}
		return l, nil
	}
}

// prepareSimulate validates a simulate request and packages it as a
// preparedOp, computing the canonical sim key up front for routing.
func (s *Server) prepareSimulate(req *simulateRequest) (*preparedOp, error) {
	layout, err := s.simLayout(req)
	if err != nil {
		return nil, err
	}
	params := sim.ParamsFig5
	if req.Params != nil {
		params = sim.Params{MuMinus: req.Params.MuMinus, EpsR: req.Params.EpsR, LambdaTF: req.Params.LambdaTF}
	}
	solverName := req.Solver
	if solverName == "" {
		solverName = s.cfg.Solver
	}
	inner, err := sim.Lookup(solverName)
	if err != nil {
		return nil, err
	}
	surf, err := req.Defects.surface()
	if err != nil {
		return nil, err
	}
	// Cache outside the ladder: warm hits skip the degradation logic
	// entirely, and the cache layer refuses to store degraded solutions,
	// so cached entries are always full-quality.
	degrading := &sim.Degrading{Inner: inner, Margin: s.cfg.DegradeMargin, Tracer: s.tr}
	keyEng := sim.NewEngineOn(layout, params, surf)
	key, _ := cache.SimKey(keyEng, degrading.Name())

	op := &preparedOp{kind: "simulate", key: key, timeoutMS: req.TimeoutMS}
	op.exec = func(ctx context.Context, jtr *obs.Tracer) (*jobResult, error) {
		cached := &cache.CachedSolver{
			Inner:  degrading,
			Cache:  s.lru,
			Tracer: s.tr,
			Peer:   s.tracedPeer(jtr),
		}
		sp := jtr.Start("simulate")
		defer sp.End()
		if rid := obs.RequestIDFromContext(ctx); rid != "" {
			sp.SetAttr("request_id", rid)
		}
		eng := sim.NewEngineOn(layout, params, surf)
		sp.SetAttr("dots", eng.NumDots())
		if n := eng.NumDots() - eng.NumLayoutDots(); n > 0 {
			sp.SetAttr("defect_dots", n)
		}
		sol, hit, err := cached.SolveTrack(eng, sim.SolveOptions{Ctx: ctx, Tracer: jtr})
		if err != nil {
			return nil, err
		}
		sp.SetAttr("solver", sol.Solver)
		sp.SetAttr("cache_hit", hit)
		if !hit {
			s.coldSolve("simulate")
		}
		// Report layout dots only: defect pseudo-dots sit past index
		// NumLayoutDots-1 and are an implementation detail of the engine.
		nl := eng.NumLayoutDots()
		resp := simulateResponse{
			Solver:   sol.Solver,
			Exact:    sol.Exact,
			Dots:     nl,
			FreeDots: len(eng.FreeIndices()),
			EnergyEV: sol.EnergyEV,
			Defects:  eng.NumDots() - nl,
			Degraded: sol.Degraded,
			Charges:  make([]int, nl),
		}
		for i, c := range sol.Charges[:nl] {
			if c {
				resp.Charges[i] = 1
			}
		}
		body, err := json.Marshal(resp)
		if err != nil {
			return nil, err
		}
		source := "miss"
		if hit {
			source = "hit"
		}
		return &jobResult{body: append(body, '\n'), source: source, degraded: sol.Degraded}, nil
	}
	return op, nil
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	s.tr.Counter("http/simulate").Inc()
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	var req simulateRequest
	if !unmarshalBody(w, body, &req) {
		return
	}
	op, err := s.prepareSimulate(&req)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	ik := idempotencyKey(r)
	if s.idempotentReplay(w, r, ik, req.Async) {
		return
	}
	if !req.Async && s.routeCluster(w, r, op, body) {
		return
	}
	if !s.admit(w, "simulate") {
		return
	}
	rid := obs.RequestIDFromContext(r.Context())
	jtr := s.newJobTracer()
	j, ok := s.submit(w, "simulate", rid, jtr,
		&JobMeta{Path: "/v1/simulate", Body: body, Key: string(op.key), IdemKey: ik, TimeoutMS: op.timeoutMS},
		s.jobFn(op, rid, obs.HopFromContext(r.Context()), jtr))
	if !ok {
		return
	}
	if req.Async {
		w.Header().Set("Location", "/v1/jobs/"+j.ID)
		writeJSON(w, http.StatusAccepted, j.Snapshot())
		return
	}
	s.await(w, r, j)
}

// ---- /v1/gates and /v1/gates/validate ----

type validateRequest struct {
	Gate   string `json:"gate"`
	Solver string `json:"solver,omitempty"`
	Params *struct {
		MuMinus  float64 `json:"mu_minus"`
		EpsR     float64 `json:"eps_r"`
		LambdaTF float64 `json:"lambda_tf"`
	} `json:"params,omitempty"`
	// Defects places surface defects in tile-local coordinates (the
	// gate's own frame, matching GET /v1/gates geometry).
	Defects   *defectsSpec `json:"defects,omitempty"`
	TimeoutMS int64        `json:"timeout_ms,omitempty"`
}

type validateResponse struct {
	Gate     string  `json:"gate"`
	OK       bool    `json:"ok"`
	Outputs  []int   `json:"outputs"`
	MinGapEV float64 `json:"min_gap_ev"`
	Method   string  `json:"method"`
	// FailKind distinguishes why a gate failed: "defect_blocked" when the
	// gate is correct on a pristine surface but broken by the requested
	// defects, "logic" otherwise. Empty on success.
	FailKind string `json:"fail_kind,omitempty"`
	// DefectBlocked mirrors FailKind == "defect_blocked".
	DefectBlocked bool `json:"defect_blocked,omitempty"`
}

// prepareValidate validates a gate-validation request and packages it as
// a preparedOp.
func (s *Server) prepareValidate(req *validateRequest) (*preparedOp, error) {
	d, f, ok := s.lib.Design(req.Gate)
	if !ok {
		return nil, fmt.Errorf("unknown gate %q (see GET /v1/gates)", req.Gate)
	}
	params := sim.ParamsFig5
	if req.Params != nil {
		params = sim.Params{MuMinus: req.Params.MuMinus, EpsR: req.Params.EpsR, LambdaTF: req.Params.LambdaTF}
	}
	solverName := req.Solver
	if solverName == "" {
		solverName = s.cfg.Solver
	}
	if _, err := sim.Lookup(solverName); err != nil {
		return nil, err
	}
	surf, err := req.Defects.surface()
	if err != nil {
		return nil, err
	}
	truth := gatelib.TruthOf(f)
	key := cache.ValidationKey(d, truth, params, solverName, surf)
	gate := req.Gate

	op := &preparedOp{kind: "validate", key: key, timeoutMS: req.TimeoutMS}
	op.exec = func(ctx context.Context, jtr *obs.Tracer) (*jobResult, error) {
		sp := jtr.Start("validate")
		defer sp.End()
		if rid := obs.RequestIDFromContext(ctx); rid != "" {
			sp.SetAttr("request_id", rid)
		}
		sp.SetAttr("gate", gate)
		v, hit, err := cache.CachedValidate(ctx, s.lru, s.tracedPeer(jtr), d, truth, params,
			gatelib.ValidateOptions{Solver: solverName, Surface: surf})
		if err != nil {
			return nil, err
		}
		sp.SetAttr("cache_hit", hit)
		if !hit {
			s.coldSolve("validate")
		}
		if v.DefectBlocked {
			sp.SetAttr("fail_kind", v.FailKind)
		}
		body, err := json.Marshal(validateResponse{
			Gate: gate, OK: v.OK, Outputs: v.Outputs,
			MinGapEV: v.MinGapEV, Method: v.Method,
			FailKind: v.FailKind, DefectBlocked: v.DefectBlocked,
		})
		if err != nil {
			return nil, err
		}
		source := "miss"
		if hit {
			source = "hit"
		}
		return &jobResult{body: append(body, '\n'), source: source}, nil
	}
	return op, nil
}

func (s *Server) handleValidate(w http.ResponseWriter, r *http.Request) {
	s.tr.Counter("http/validate").Inc()
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	var req validateRequest
	if !unmarshalBody(w, body, &req) {
		return
	}
	op, err := s.prepareValidate(&req)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	ik := idempotencyKey(r)
	if s.idempotentReplay(w, r, ik, false) {
		return
	}
	if s.routeCluster(w, r, op, body) {
		return
	}
	if !s.admit(w, "validate") {
		return
	}
	rid := obs.RequestIDFromContext(r.Context())
	jtr := s.newJobTracer()
	j, ok := s.submit(w, "validate", rid, jtr,
		&JobMeta{Path: "/v1/gates/validate", Body: body, Key: string(op.key), IdemKey: ik, TimeoutMS: op.timeoutMS},
		s.jobFn(op, rid, obs.HopFromContext(r.Context()), jtr))
	if !ok {
		return
	}
	s.await(w, r, j)
}

func (s *Server) handleGates(w http.ResponseWriter, r *http.Request) {
	keys := s.lib.Variants()
	sort.Strings(keys)
	writeJSON(w, http.StatusOK, map[string]any{"gates": keys})
}

// ---- jobs, health, metrics ----

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.queue.Get(r.PathValue("id"))
	if !ok {
		writeErrKind(w, http.StatusNotFound, ErrKindNotFound, "no such job")
		return
	}
	st := j.Snapshot()
	out := map[string]any{"job": st}
	if res, _ := j.Result(); res != nil {
		if jr, ok := res.(*jobResult); ok {
			out["cache"] = jr.cacheHeader()
			out["result"] = json.RawMessage(jr.body)
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleJobDelete(w http.ResponseWriter, r *http.Request) {
	j, ok := s.queue.Get(r.PathValue("id"))
	if !ok {
		writeErrKind(w, http.StatusNotFound, ErrKindNotFound, "no such job")
		return
	}
	j.Cancel()
	writeJSON(w, http.StatusAccepted, j.Snapshot())
}

// handleJobTrace serves the per-job stage timeline: the RunReport of the
// job's tracer (span tree with durations and attributes, including the
// request_id of the request that submitted it, plus any solver metrics
// the stages recorded). A running job reports its elapsed stages so far.
// Job ids are per-replica, so in a fleet a miss is not final: the
// X-Job-Id a client got back for a forwarded request names a job on the
// OWNER replica, and the entry replica resolves it by federating the
// lookup across live peers.
func (s *Server) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := s.queue.Get(id)
	if !ok {
		if st, found := s.federateTrace(r, id, flight.Trace{}, false); found {
			writeJSON(w, http.StatusOK, st)
			return
		}
		writeErrKind(w, http.StatusNotFound, ErrKindNotFound, "no such job")
		return
	}
	jtr := j.Tracer()
	if jtr == nil {
		writeErrKind(w, http.StatusNotFound, ErrKindNotFound, "no trace recorded for job %s", j.ID)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"job":   j.Snapshot(),
		"trace": jtr.Report(j.ID),
	})
}

// recordFlight is the queue's OnFinish hook: every terminal job is offered
// to the flight recorder, which keeps all error/degraded/slow traces and a
// sample of fast successes (see internal/obs/flight).
func (s *Server) recordFlight(j *Job) {
	st := j.Snapshot()
	t := flight.Trace{
		ID:        j.ID,
		Kind:      j.Kind,
		State:     string(st.State),
		ErrorKind: st.ErrorKind,
		Degraded:  st.ErrorKind == ErrKindDegraded,
		RequestID: j.RequestID(),
		StartedAt: j.CreatedAt(),
		Seconds:   j.RunSeconds(),
	}
	if jtr := j.Tracer(); jtr != nil {
		t.Report = jtr.Report(j.ID)
	}
	s.flight.Record(t)
}

// handleFlightRecorder serves the flight-recorder summary: retention
// counts per class, sampling policy, and the headers of every retained
// trace (newest first). Full traces are at /v1/traces/{id}.
func (s *Server) handleFlightRecorder(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.flight.Summary())
}

// handleTraceGet serves a retained trace by job id OR request id. It
// prefers the flight recorder (which outlives the job history), then the
// recorder's request-id index, then live jobs. In a fleet, when the id is
// unknown locally — or the local record is only the entry replica's
// forward stub ("fwd-" prefix) — the lookup federates across live peers
// and returns one stitched multi-hop trace under the original request id.
func (s *Server) handleTraceGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	t, ok := s.localTrace(id)
	if ok && !strings.HasPrefix(t.ID, "fwd-") {
		writeJSON(w, http.StatusOK, t)
		return
	}
	if st, found := s.federateTrace(r, id, t, ok); found {
		writeJSON(w, http.StatusOK, st)
		return
	}
	if ok {
		// Forward stub with no reachable remote half: still the honest
		// entry-side record (owner died, or its rings evicted the trace).
		writeJSON(w, http.StatusOK, t)
		return
	}
	writeErrKind(w, http.StatusNotFound, ErrKindNotFound, "no retained trace for %s", id)
}

// localTrace resolves id against every local trace store, in durability
// order: flight recorder by trace id, flight recorder by request id, live
// jobs by job id, live jobs by request id.
func (s *Server) localTrace(id string) (flight.Trace, bool) {
	if t, ok := s.flight.Get(id); ok {
		return t, true
	}
	if t, ok := s.flight.GetByRequestID(id); ok {
		return t, true
	}
	if j, ok := s.queue.Get(id); ok {
		return liveTrace(j), true
	}
	if j, ok := s.queue.GetByRequestID(id); ok {
		return liveTrace(j), true
	}
	return flight.Trace{}, false
}

// liveTrace renders a job still in the queue's history in the flight
// recorder's Trace shape, so local and federated lookups speak one type.
func liveTrace(j *Job) flight.Trace {
	st := j.Snapshot()
	t := flight.Trace{
		ID:        j.ID,
		Kind:      j.Kind,
		State:     string(st.State),
		ErrorKind: st.ErrorKind,
		RequestID: j.RequestID(),
		StartedAt: j.CreatedAt(),
		Seconds:   j.RunSeconds(),
	}
	if jtr := j.Tracer(); jtr != nil {
		t.Report = jtr.Report(j.ID)
	}
	return t
}

// handleInternalTrace is the fleet's trace-lookup endpoint: a peer asks
// this replica for its local view of a trace id or request id. It is
// strictly local — it never federates, which (besides the forwarded-
// request guard in federateTrace) makes lookup loops structurally
// impossible.
func (s *Server) handleInternalTrace(w http.ResponseWriter, r *http.Request) {
	if !s.authorizeInternal(r) {
		writeErr(w, http.StatusForbidden, "cluster secret required")
		return
	}
	id := r.PathValue("id")
	if t, ok := s.localTrace(id); ok {
		writeJSON(w, http.StatusOK, t)
		return
	}
	writeErrKind(w, http.StatusNotFound, ErrKindNotFound, "no retained trace for %s", id)
}

// stitchTimeout bounds one whole federated trace lookup.
const stitchTimeout = 2 * time.Second

// stitchedTrace is the merged multi-hop view of one distributed request:
// each hop's own retained trace, plus one synthetic RunReport nesting
// every hop's stages for tools that expect a single span tree.
type stitchedTrace struct {
	RequestID string         `json:"request_id"`
	Stitched  bool           `json:"stitched"`
	Hops      []stitchedHop  `json:"hops"`
	Trace     *obs.RunReport `json:"trace,omitempty"`
}

type stitchedHop struct {
	Peer  string       `json:"peer"`
	Trace flight.Trace `json:"trace"`
}

// federateTrace queries every live peer for its half of a distributed
// trace and stitches the answers together with this replica's local view
// (when it has one). It declines outside a fleet and on requests that
// themselves arrived forwarded (loop guard); it reports found=false when
// no peer held anything, so callers fall back to local-only output.
func (s *Server) federateTrace(r *http.Request, id string, local flight.Trace, haveLocal bool) (*stitchedTrace, bool) {
	if s.node == nil || r.Header.Get(cluster.ForwardedHeader) != "" {
		return nil, false
	}
	// Prefer the request id as the cross-fleet key: job ids are
	// per-replica, request ids name the whole distributed execution.
	key := id
	if haveLocal && local.RequestID != "" {
		key = local.RequestID
	}
	ctx, cancel := context.WithTimeout(r.Context(), stitchTimeout)
	defer cancel()
	st := &stitchedTrace{RequestID: key, Stitched: true}
	if haveLocal {
		st.Hops = append(st.Hops, stitchedHop{Peer: s.node.Self(), Trace: local})
	}
	remote := 0
	for _, m := range s.node.Status().Members {
		if m.Self || !m.Alive {
			continue
		}
		t, err := s.fetchPeerTrace(ctx, m.Addr, key)
		if err != nil {
			continue // miss or dead peer: stitch what the fleet still has
		}
		st.Hops = append(st.Hops, stitchedHop{Peer: m.Addr, Trace: *t})
		remote++
	}
	if remote == 0 {
		return nil, false
	}
	st.Trace = mergeHops(key, st.Hops)
	return st, true
}

// fetchPeerTrace asks one peer for its local view of a trace key, using
// the same secret authorization as the peer-cache protocol and marking
// the request forwarded so the peer can never federate further.
func (s *Server) fetchPeerTrace(ctx context.Context, addr, key string) (*flight.Trace, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		"http://"+addr+"/internal/trace/"+key, nil)
	if err != nil {
		return nil, err
	}
	if sec := s.node.Secret(); sec != "" {
		req.Header.Set(cluster.SecretHeader, sec)
	}
	req.Header.Set(cluster.ForwardedHeader, s.node.Self())
	if rid := obs.RequestIDFromContext(ctx); rid != "" {
		req.Header.Set(cluster.RequestIDHeader, rid)
	}
	resp, err := s.node.Client().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, fmt.Errorf("peer trace %s: status %d", addr, resp.StatusCode)
	}
	var t flight.Trace
	if err := json.NewDecoder(io.LimitReader(resp.Body, 4<<20)).Decode(&t); err != nil {
		return nil, err
	}
	return &t, nil
}

// mergeHops folds per-hop traces into one synthetic RunReport: one
// "hop:<peer>" stage per hop, its children the hop's own stage tree. The
// report spans the earliest hop start to the slowest hop duration.
func mergeHops(key string, hops []stitchedHop) *obs.RunReport {
	rep := &obs.RunReport{Name: "stitched-" + key}
	for _, h := range hops {
		seg := &obs.StageReport{
			Name:    "hop:" + h.Peer,
			Seconds: h.Trace.Seconds,
			Attrs: map[string]any{
				"peer":   h.Peer,
				"job_id": h.Trace.ID,
				"state":  h.Trace.State,
			},
		}
		if h.Trace.ErrorKind != "" {
			seg.Attrs["error_kind"] = h.Trace.ErrorKind
		}
		if h.Trace.Report != nil {
			seg.Children = h.Trace.Report.Stages
		}
		if !h.Trace.StartedAt.IsZero() &&
			(rep.StartedAt.IsZero() || h.Trace.StartedAt.Before(rep.StartedAt)) {
			rep.StartedAt = h.Trace.StartedAt
		}
		if h.Trace.Seconds > rep.WallSeconds {
			rep.WallSeconds = h.Trace.Seconds
		}
		rep.Stages = append(rep.Stages, seg)
	}
	return rep
}

// handleHealthz reports liveness plus an operational snapshot: queue and
// worker state, lifetime request latency percentiles derived from the
// Prometheus histograms, a rolling-window latency/error view of the most
// recent requests, and the draining state. While draining it answers 503
// so load balancers stop routing to an instance that is shutting down.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	draining := s.queue.Draining()
	code := http.StatusOK
	if draining {
		code = http.StatusServiceUnavailable
	}

	// Merge the per-route request-duration histograms (identical bounds)
	// into lifetime percentiles.
	var bounds []float64
	var counts []int64
	var reqTotal, errs5xx int64
	if rep := s.tr.Report("healthz"); rep != nil {
		for name, m := range rep.Metrics {
			switch {
			case m.Type == "histogram" && strings.HasPrefix(name, "http/request_duration_seconds{"):
				if bounds == nil {
					bounds = m.Bounds
					counts = append([]int64(nil), m.Buckets...)
				} else if len(m.Buckets) == len(counts) {
					for i, c := range m.Buckets {
						counts[i] += c
					}
				}
			case m.Type == "counter" && strings.HasPrefix(name, "http/requests_total{"):
				reqTotal += int64(m.Value)
				if strings.Contains(name, `code="5`) {
					errs5xx += int64(m.Value)
				}
			}
		}
	}
	var obsCount int64
	for _, c := range counts {
		obsCount += c
	}
	win := s.window.Snapshot()
	u := s.utilization()
	out := map[string]any{
		"ok":             !draining,
		"draining":       draining,
		"uptime_seconds": time.Since(s.started).Seconds(),
		"workers":        s.cfg.Workers,
		"queue_depth":    s.queue.Depth(),
		"jobs_running":   s.queue.Running(),
		"requests": map[string]any{
			"total":      reqTotal,
			"errors_5xx": errs5xx,
			"in_flight":  s.inFlight.Load(),
		},
		// Saturation is what admission control keys on and what the fleet
		// bench and load balancers read: how full the queue+workers are
		// and which cost classes are currently being shed.
		"saturation": map[string]any{
			"queue_depth":    s.queue.Depth(),
			"queue_capacity": s.cfg.QueueDepth,
			"jobs_running":   s.queue.Running(),
			"workers":        s.cfg.Workers,
			"in_flight":      s.inFlight.Load(),
			"utilization":    u,
			"shedding":       sheddingClasses(u),
		},
		"latency": map[string]any{
			"count":  obsCount,
			"p50_ms": 1e3 * obs.QuantileFromBuckets(bounds, counts, 0.50),
			"p90_ms": 1e3 * obs.QuantileFromBuckets(bounds, counts, 0.90),
			"p99_ms": 1e3 * obs.QuantileFromBuckets(bounds, counts, 0.99),
		},
		"window": map[string]any{
			"size":       win.Size,
			"errors":     win.Errors,
			"error_rate": win.ErrorRate,
			"p50_ms":     1e3 * win.P50,
			"p90_ms":     1e3 * win.P90,
			"p99_ms":     1e3 * win.P99,
		},
		"slo": s.slo.Snapshot(),
	}
	if s.node != nil {
		out["cluster"] = s.node.Status()
	}
	writeJSON(w, code, out)
}

// ---- fleet observability plane ----

// statsSnapshot renders this replica's compact operational snapshot for
// the overview plane: everything /healthz and /metrics already expose,
// but in one cheap authenticated round trip for peers.
func (s *Server) statsSnapshot() overview.Stats {
	u := s.utilization()
	st := overview.Stats{
		Addr:          "self",
		UptimeSeconds: time.Since(s.started).Seconds(),
		Draining:      s.queue.Draining(),
		Saturation: overview.Saturation{
			QueueDepth:    s.queue.Depth(),
			QueueCapacity: s.cfg.QueueDepth,
			JobsRunning:   s.queue.Running(),
			Workers:       s.cfg.Workers,
			InFlight:      s.inFlight.Load(),
			Utilization:   u,
			Shedding:      sheddingClasses(u),
		},
		Cache:       map[string]overview.CacheTier{},
		SLO:         s.slo.Snapshot(),
		RingMembers: 1,
	}
	if s.node != nil {
		st.Addr = s.node.Self()
		st.RingMembers = s.node.Status().RingMembers
	}
	st.Cache["mem"] = overview.CacheTier{HitRate: s.lru.Stats().HitRate()}
	if r, ok := s.flow.Disk.(*cache.Resilient); ok {
		st.Cache["disk"] = overview.CacheTier{BreakerState: r.State().String()}
	}
	if r, ok := s.peer.(*cache.Resilient); ok {
		st.Cache["peer"] = overview.CacheTier{BreakerState: r.State().String()}
	}
	return st
}

// handleInternalStats serves the compact stats snapshot to fleet peers
// (the overview aggregator's poll target), guarded like /internal/cache.
func (s *Server) handleInternalStats(w http.ResponseWriter, r *http.Request) {
	if !s.authorizeInternal(r) {
		writeErr(w, http.StatusForbidden, "cluster secret required")
		return
	}
	writeJSON(w, http.StatusOK, s.statsSnapshot())
}

// handleClusterOverview serves the merged fleet view: per-replica
// saturation, cache tier health, SLO burn, ring membership, dead peers,
// and fleet-wide burn rates — the same payload from any replica. Outside
// a fleet it degrades to a one-replica view computed on demand.
func (s *Server) handleClusterOverview(w http.ResponseWriter, r *http.Request) {
	if s.overview != nil {
		writeJSON(w, http.StatusOK, s.overview.Snapshot())
		return
	}
	writeJSON(w, http.StatusOK, overview.Single(s.statsSnapshot()))
}

// metricHelp maps sanitized Prometheus family names to their HELP text.
var metricHelp = map[string]string{
	"http_requests_total":                "HTTP requests by method, normalized route, and status code.",
	"http_request_duration_seconds":      "HTTP request latency in seconds by normalized route.",
	"http_in_flight_requests":            "Requests currently being served.",
	"queue_submitted":                    "Jobs accepted into the queue.",
	"queue_completed":                    "Jobs that finished successfully.",
	"queue_failed":                       "Jobs that finished with an error.",
	"queue_canceled":                     "Jobs canceled or timed out.",
	"queue_rejected":                     "Jobs rejected with 429 because the queue was full.",
	"queue_depth":                        "Queued-but-not-running jobs (sampled at enqueue/dequeue).",
	"queue_depth_now":                    "Queued-but-not-running jobs at scrape time.",
	"queue_running":                      "Jobs currently executing on the worker pool.",
	"queue_wait_seconds":                 "Time jobs spent queued before a worker picked them up.",
	"job_duration_seconds":               "Job execution time by kind (flow, simulate, validate).",
	"flow_stage_seconds":                 "Per-stage latency aggregated across jobs (rewrite, pnr, verify, cellsim, simulate, ...).",
	"sim_solve_seconds":                  "Ground-state solve latency by solver backend (cache misses only).",
	"cache_mem_hits":                     "In-memory result cache hits.",
	"cache_mem_misses":                   "In-memory result cache misses.",
	"cache_mem_evictions":                "In-memory result cache evictions.",
	"cache_mem_bytes":                    "Bytes held by the in-memory result cache.",
	"cache_mem_entries":                  "Entries held by the in-memory result cache.",
	"cache_mem_hit_rate":                 "Lifetime hit rate of the in-memory result cache.",
	"jobs_panicked_total":                "Jobs whose function panicked; the worker recovered and recorded the job as failed.",
	"sim_degraded_total":                 "Ground-state solves degraded to a cheaper engine by deadline pressure, by from/to.",
	"flow_degraded_total":                "Flow runs whose physical design degraded to the ortho router under deadline pressure.",
	"cache_disk_breaker_state":           "Disk-cache circuit breaker state: 0 closed, 1 half-open, 2 open (memory-only).",
	"cache_disk_breaker_trips_total":     "Times the disk-cache breaker tripped open.",
	"cache_disk_retries_total":           "Disk-cache operations retried after a transient failure.",
	"cache_disk_io_errors_total":         "Disk-cache I/O failures (each attempt, before retry).",
	"cache_disk_short_circuits_total":    "Disk-cache operations skipped because the breaker was open.",
	"faults_armed":                       "1 when the fault-injection registry is armed (chaos testing), else absent.",
	"slo_burn_rate":                      "Error-budget burn rate per objective and window (1 = burning exactly the budget).",
	"slo_budget_remaining":               "Lifetime error-budget fraction remaining per objective (negative = overspent).",
	"flight_admitted_total":              "Traces admitted to the flight recorder, by retention class.",
	"flight_dropped_total":               "Fast-OK traces not sampled by the flight recorder.",
	"flight_evicted_total":               "Traces evicted from a full flight-recorder ring, by class.",
	"flight_retained":                    "Traces currently retained by the flight recorder, by class.",
	"sat_conflicts_per_solve":            "SAT solver conflicts per solve call, by stage.",
	"sat_decisions_per_solve":            "SAT solver decisions per solve call, by stage.",
	"sat_propagations_per_solve":         "SAT solver unit propagations per solve call, by stage.",
	"sat_restarts_per_solve":             "SAT solver restarts per solve call, by stage.",
	"anneal_acceptance_rate":             "Annealer move acceptance rate per run, by stage (from span attrs).",
	"sim_anneal_acceptance_rate":         "Annealer move acceptance rate per run (span-free metrics path).",
	"pnr_exact_size_solve_seconds":       "Exact P&R per-aspect-ratio SAT solve time, by SAT/UNSAT status.",
	"sim_quickexact_prune_rate":          "QuickExact fraction of search nodes pruned (bound + stability).",
	"sim_quickexact_presolve_fixed_frac": "QuickExact fraction of free dots fixed by presolve.",
	"cluster_peer_up":                    "Probed liveness per peer: 1 alive, 0 dead.",
	"cluster_ring_members":               "Live members in the consistent-hash ring (including self).",
	"cluster_probe_failures_total":       "Failed peer health probes.",
	"cluster_peer_requests_total":        "Peer-cache protocol operations by op (get/put) and outcome (hit/miss/ok/error).",
	"cluster_forwarded_total":            "Requests forwarded to their key's owner replica, by outcome.",
	"cluster_singleflight_merged_total":  "Executions that coalesced onto another identical in-flight execution.",
	"cluster_singleflight_rerun_total":   "Coalesced executions retried under the joiner's own deadline after the starter's shorter deadline expired.",
	"admission_shed_total":               "Requests shed by cost-class admission control, by class.",
	"admission_utilization":              "Queue+worker utilization sampled at admission decisions (1 = saturated).",
	"jobs_cold_solves_total":             "Jobs that performed real local computation (no cache tier or coalescing served them), by kind.",
	"batch_items_total":                  "Batch sub-requests by outcome (ok/error).",
	"batch_deduped_total":                "Batch sub-requests answered by another identical item in the same batch.",
	"cache_peer_breaker_state":           "Peer-cache circuit breaker state: 0 closed, 1 half-open, 2 open (fleet cache bypassed).",
	"cache_peer_breaker_trips_total":     "Times the peer-cache breaker tripped open.",
	"cache_peer_retries_total":           "Peer-cache operations retried after a transient failure.",
	"cache_peer_io_errors_total":         "Peer-cache operation failures (each attempt, before retry).",
	"cache_peer_short_circuits_total":    "Peer-cache operations skipped because the breaker was open.",
	"cluster_overview_replicas_alive":    "Fleet members currently probed alive (overview aggregator view).",
	"cluster_overview_replicas_dead":     "Fleet members currently probed dead (overview aggregator view).",
	"cluster_overview_degraded":          "1 when any replica is dead, draining, shedding, or has an open cache breaker.",
	"cluster_overview_burn_rate":         "Fleet-wide SLO burn rate per objective and window (raw counts summed across replicas).",
	"cluster_overview_utilization":       "Queue+worker utilization per replica, from the overview poll.",
	"journal_appends_total":              "Job lifecycle events durably appended to the write-ahead journal.",
	"journal_append_errors_total":        "Journal appends that failed (durability degraded; the job still ran).",
	"journal_rotations_total":            "Journal segment rotations (each compacts completed jobs away).",
	"journal_torn_tails_truncated_total": "Torn journal tails (half-written final records) truncated on open.",
	"journal_replay_skipped_total":       "Journal records skipped during replay (undecodable or fault-injected).",
	"journal_segments":                   "Journal segments currently on disk.",
	"journal_recovered_total":            "Jobs recovered from the journal at startup, by outcome (completed/resubmitted/interrupted).",
	"cache_disk_corrupt_total":           "Disk-cache entries that failed checksum verification and were quarantined as *.corrupt.",
	"idempotency_replayed_total":         "Requests answered by replaying an earlier submission with the same Idempotency-Key.",
}

// handleMetrics renders every tracer metric in the Prometheus text
// exposition format: counters and gauges as single series, histograms
// with full cumulative _bucket/_sum/_count series (the previous ad-hoc
// renderer silently dropped all bucket data). Point-in-time cache and
// queue gauges are refreshed just before rendering.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := s.lru.Stats()
	s.tr.Gauge("cache/mem/hit_rate").Set(st.HitRate())
	s.tr.Gauge("queue/depth_now").Set(float64(s.queue.Depth()))
	s.slo.Export(s.tr)
	w.Header().Set("Content-Type", obs.ExpositionContentType)
	s.tr.WriteExposition(w, metricHelp)
}
