package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/gatelib"
	"repro/internal/lattice"
	"repro/internal/logic/bench"
	"repro/internal/logic/network"
	"repro/internal/obs"
	"repro/internal/sidb"
	"repro/internal/sim"
)

// Config tunes the design service.
type Config struct {
	// Workers is the job worker pool size (default 2).
	Workers int
	// QueueDepth bounds queued-but-not-running jobs (default 4*Workers).
	QueueDepth int
	// JobTimeout is the default per-job deadline; requests can shorten it
	// via timeout_ms but never extend it. Zero means no deadline.
	JobTimeout time.Duration
	// CacheBytes bounds the in-memory result cache (default 64 MiB).
	CacheBytes int64
	// CacheDir, when set, enables the persistent flow-artifact layer.
	CacheDir string
	// Solver is the default ground-state solver name ("" = automatic
	// dispatch; see sim.SolverNames).
	Solver string
	// Tracer receives server-wide metrics (queue depth, cache hit rates,
	// request counters). Per-job flow reports use their own tracers, so
	// the shared tracer only ever sees concurrency-safe metric types.
	Tracer *obs.Tracer
}

// Server is the bestagond HTTP service: a JSON API over the design flow,
// simulation, and gate validation, backed by a bounded job queue and a
// content-addressed result cache.
type Server struct {
	cfg     Config
	tr      *obs.Tracer
	queue   *Queue
	lru     *cache.LRU
	flow    *cache.FlowCache
	lib     *gatelib.Library
	mux     *http.ServeMux
	started time.Time
}

// New builds a server (it does not listen; see Handler).
func New(cfg Config) (*Server, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 4 * cfg.Workers
	}
	if cfg.Tracer == nil {
		// The server always carries a tracer so /metrics has content even
		// when the daemon was started without observability flags.
		cfg.Tracer = obs.New()
	}
	if cfg.Solver != "" {
		if _, err := sim.Lookup(cfg.Solver); err != nil {
			return nil, fmt.Errorf("service: %w", err)
		}
	}
	s := &Server{
		cfg:     cfg,
		tr:      cfg.Tracer,
		lru:     cache.NewLRU(cfg.CacheBytes),
		lib:     gatelib.NewLibrary(),
		started: time.Now(),
	}
	s.lru.Instrument(s.tr, "cache/mem")
	s.flow = &cache.FlowCache{Mem: s.lru}
	if cfg.CacheDir != "" {
		d, err := cache.NewDisk(cfg.CacheDir)
		if err != nil {
			return nil, err
		}
		s.flow.Disk = d
	}
	s.queue = NewQueue(cfg.Workers, cfg.QueueDepth, cfg.JobTimeout, s.tr)

	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/flow", s.handleFlow)
	s.mux.HandleFunc("POST /v1/simulate", s.handleSimulate)
	s.mux.HandleFunc("POST /v1/gates/validate", s.handleValidate)
	s.mux.HandleFunc("GET /v1/gates", s.handleGates)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobDelete)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s, nil
}

// Handler returns the HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Queue exposes the job queue (for tests and the daemon's drain path).
func (s *Server) Queue() *Queue { return s.queue }

// CacheStats snapshots the in-memory result cache.
func (s *Server) CacheStats() cache.Stats { return s.lru.Stats() }

// Drain stops accepting jobs and waits for in-flight work (see
// Queue.Drain).
func (s *Server) Drain(ctx context.Context) error { return s.queue.Drain(ctx) }

// ---- request/response plumbing ----

// jobResult is what every job kind stores on completion: the canonical
// response body plus where it came from. Serving the stored bytes verbatim
// is what makes warm responses byte-identical to cold ones.
type jobResult struct {
	body   []byte
	source string // cache.SourceMem, cache.SourceDisk, "miss", "bypass"
}

func (r *jobResult) cacheHeader() string {
	switch r.source {
	case cache.SourceMem, cache.SourceDisk, "hit":
		return "hit"
	default:
		return "miss"
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		http.Error(w, `{"error":"encoding failure"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(append(b, '\n'))
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// submit enqueues fn, applying queue backpressure to the response.
func (s *Server) submit(w http.ResponseWriter, kind string, timeoutMS int64, fn JobFunc) (*Job, bool) {
	timeout := time.Duration(timeoutMS) * time.Millisecond
	if s.cfg.JobTimeout > 0 && (timeout <= 0 || timeout > s.cfg.JobTimeout) {
		timeout = s.cfg.JobTimeout
	}
	j, err := s.queue.Submit(kind, timeout, fn)
	switch err {
	case nil:
		return j, true
	case ErrQueueFull:
		w.Header().Set("Retry-After", "1")
		writeErr(w, http.StatusTooManyRequests, "job queue is full (depth %d)", s.cfg.QueueDepth)
	case ErrDraining:
		writeErr(w, http.StatusServiceUnavailable, "server is draining")
	default:
		writeErr(w, http.StatusInternalServerError, "%v", err)
	}
	return nil, false
}

// await blocks until the job finishes or the client goes away (which
// cancels the job), then writes the job's canonical response.
func (s *Server) await(w http.ResponseWriter, r *http.Request, j *Job) {
	select {
	case <-j.Done():
	case <-r.Context().Done():
		j.Cancel()
		<-j.Done()
	}
	res, errMsg := j.Result()
	switch j.State() {
	case JobDone:
		jr := res.(*jobResult)
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Job-Id", j.ID)
		w.Header().Set("X-Cache", jr.cacheHeader())
		w.WriteHeader(http.StatusOK)
		w.Write(jr.body)
	case JobCanceled:
		w.Header().Set("X-Job-Id", j.ID)
		writeErr(w, http.StatusGatewayTimeout, "job %s canceled: %s", j.ID, errMsg)
	default:
		w.Header().Set("X-Job-Id", j.ID)
		writeErr(w, http.StatusUnprocessableEntity, "job %s failed: %s", j.ID, errMsg)
	}
}

// ---- /v1/flow ----

type flowRequest struct {
	// Bench names a built-in Table 1 benchmark; Source provides an inline
	// netlist instead (Format "bench" or "verilog").
	Bench  string `json:"bench,omitempty"`
	Source string `json:"source,omitempty"`
	Format string `json:"format,omitempty"`
	Name   string `json:"name,omitempty"`
	// Engine is "auto" (default), "exact", or "ortho".
	Engine string `json:"engine,omitempty"`
	// CellSim enables whole-layout ground-state simulation; Solver picks
	// the backend for it.
	CellSim bool   `json:"cellsim,omitempty"`
	Solver  string `json:"solver,omitempty"`
	// MaxArea / ConflictBudget tune the exact engine.
	MaxArea        int   `json:"max_area,omitempty"`
	ConflictBudget int64 `json:"conflict_budget,omitempty"`
	// SQD / Report request the SiQAD file and the stage report.
	SQD    bool `json:"sqd,omitempty"`
	Report bool `json:"report,omitempty"`
	// TimeoutMS shortens the job deadline; NoCache bypasses the result
	// cache; Async returns 202 with a job ID instead of waiting.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	NoCache   bool  `json:"nocache,omitempty"`
	Async     bool  `json:"async,omitempty"`
}

func (s *Server) parseSpec(req *flowRequest) (*network.XAG, error) {
	switch {
	case req.Bench != "" && req.Source != "":
		return nil, fmt.Errorf("bench and source are mutually exclusive")
	case req.Bench != "":
		return bench.Load(req.Bench)
	case req.Source == "":
		return nil, fmt.Errorf("one of bench or source is required")
	case req.Format == "verilog":
		return bench.ParseVerilog(req.Source)
	case req.Format == "" || req.Format == "bench":
		name := req.Name
		if name == "" {
			name = "inline"
		}
		return bench.ParseBench(name, req.Source)
	default:
		return nil, fmt.Errorf("unknown format %q (want bench or verilog)", req.Format)
	}
}

func parseEngine(name string) (core.Engine, error) {
	switch name {
	case "", "auto":
		return core.EngineAuto, nil
	case "exact":
		return core.EngineExact, nil
	case "ortho":
		return core.EngineOrtho, nil
	default:
		return 0, fmt.Errorf("unknown engine %q (want auto, exact, or ortho)", name)
	}
}

func (s *Server) handleFlow(w http.ResponseWriter, r *http.Request) {
	s.tr.Counter("http/flow").Inc()
	var req flowRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	spec, err := s.parseSpec(&req)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	engine, err := parseEngine(req.Engine)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	solver := req.Solver
	if solver == "" {
		solver = s.cfg.Solver
	}
	if req.CellSim {
		if _, err := sim.Lookup(solver); err != nil {
			writeErr(w, http.StatusBadRequest, "%v", err)
			return
		}
	}
	opts := core.Options{
		Engine:       engine,
		CellSim:      req.CellSim,
		GroundSolver: solver,
	}
	opts.Exact.MaxArea = req.MaxArea
	opts.Exact.ConflictBudget = req.ConflictBudget

	fn := func(ctx context.Context) (any, error) {
		var art *cache.FlowArtifact
		source := cache.SourceBypass
		var err error
		if req.NoCache {
			art, err = cache.RunFlow(ctx, spec, opts, req.SQD, req.Report)
		} else {
			art, source, err = s.flow.Run(ctx, spec, opts, req.SQD, req.Report)
		}
		if err != nil {
			return nil, err
		}
		body, err := json.Marshal(art)
		if err != nil {
			return nil, err
		}
		return &jobResult{body: append(body, '\n'), source: source}, nil
	}
	j, ok := s.submit(w, "flow", req.TimeoutMS, fn)
	if !ok {
		return
	}
	if req.Async {
		w.Header().Set("Location", "/v1/jobs/"+j.ID)
		writeJSON(w, http.StatusAccepted, j.Snapshot())
		return
	}
	s.await(w, r, j)
}

// ---- /v1/simulate ----

type dotRequest struct {
	X    int    `json:"x"`
	Y    int    `json:"y"`
	Role string `json:"role,omitempty"`
}

type simulateRequest struct {
	// Gate names a library tile by variant key (see GET /v1/gates); Dots
	// gives an explicit layout instead.
	Gate string       `json:"gate,omitempty"`
	Dots []dotRequest `json:"dots,omitempty"`
	// Params are the physical parameters (default: the paper's Fig. 5).
	Params *struct {
		MuMinus  float64 `json:"mu_minus"`
		EpsR     float64 `json:"eps_r"`
		LambdaTF float64 `json:"lambda_tf"`
	} `json:"params,omitempty"`
	Solver    string `json:"solver,omitempty"`
	TimeoutMS int64  `json:"timeout_ms,omitempty"`
	Async     bool   `json:"async,omitempty"`
}

type simulateResponse struct {
	Solver   string  `json:"solver"`
	Exact    bool    `json:"exact"`
	Dots     int     `json:"dots"`
	FreeDots int     `json:"free_dots"`
	EnergyEV float64 `json:"energy_ev"`
	// Charges[i] is 1 when dot i (request order) is DB- in the ground
	// state.
	Charges []int `json:"charges"`
}

func parseRole(role string) (sidb.Role, error) {
	switch role {
	case "", "normal":
		return sidb.RoleNormal, nil
	case "perturber":
		return sidb.RolePerturber, nil
	case "input":
		return sidb.RoleInput, nil
	case "output":
		return sidb.RoleOutput, nil
	default:
		return 0, fmt.Errorf("unknown dot role %q", role)
	}
}

func (s *Server) simLayout(req *simulateRequest) (*sidb.Layout, error) {
	switch {
	case req.Gate != "" && len(req.Dots) > 0:
		return nil, fmt.Errorf("gate and dots are mutually exclusive")
	case req.Gate != "":
		d, _, ok := s.lib.Design(req.Gate)
		if !ok {
			return nil, fmt.Errorf("unknown gate %q (see GET /v1/gates)", req.Gate)
		}
		return d.Layout(0, 0), nil
	case len(req.Dots) == 0:
		return nil, fmt.Errorf("one of gate or dots is required")
	default:
		l := &sidb.Layout{Name: "request"}
		for _, d := range req.Dots {
			role, err := parseRole(d.Role)
			if err != nil {
				return nil, err
			}
			l.Add(lattice.FromCell(d.X, d.Y), role)
		}
		return l, nil
	}
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	s.tr.Counter("http/simulate").Inc()
	var req simulateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	layout, err := s.simLayout(&req)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	params := sim.ParamsFig5
	if req.Params != nil {
		params = sim.Params{MuMinus: req.Params.MuMinus, EpsR: req.Params.EpsR, LambdaTF: req.Params.LambdaTF}
	}
	solverName := req.Solver
	if solverName == "" {
		solverName = s.cfg.Solver
	}
	inner, err := sim.Lookup(solverName)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	cached := &cache.CachedSolver{Inner: inner, Cache: s.lru}

	fn := func(ctx context.Context) (any, error) {
		eng := sim.NewEngine(layout, params)
		sol, hit, err := cached.SolveTrack(eng, sim.SolveOptions{Ctx: ctx})
		if err != nil {
			return nil, err
		}
		resp := simulateResponse{
			Solver:   sol.Solver,
			Exact:    sol.Exact,
			Dots:     eng.NumDots(),
			FreeDots: len(eng.FreeIndices()),
			EnergyEV: sol.EnergyEV,
			Charges:  make([]int, len(sol.Charges)),
		}
		for i, c := range sol.Charges {
			if c {
				resp.Charges[i] = 1
			}
		}
		body, err := json.Marshal(resp)
		if err != nil {
			return nil, err
		}
		source := "miss"
		if hit {
			source = "hit"
		}
		return &jobResult{body: append(body, '\n'), source: source}, nil
	}
	j, ok := s.submit(w, "simulate", req.TimeoutMS, fn)
	if !ok {
		return
	}
	if req.Async {
		w.Header().Set("Location", "/v1/jobs/"+j.ID)
		writeJSON(w, http.StatusAccepted, j.Snapshot())
		return
	}
	s.await(w, r, j)
}

// ---- /v1/gates and /v1/gates/validate ----

type validateRequest struct {
	Gate   string `json:"gate"`
	Solver string `json:"solver,omitempty"`
	Params *struct {
		MuMinus  float64 `json:"mu_minus"`
		EpsR     float64 `json:"eps_r"`
		LambdaTF float64 `json:"lambda_tf"`
	} `json:"params,omitempty"`
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

type validateResponse struct {
	Gate     string  `json:"gate"`
	OK       bool    `json:"ok"`
	Outputs  []int   `json:"outputs"`
	MinGapEV float64 `json:"min_gap_ev"`
	Method   string  `json:"method"`
}

func (s *Server) handleValidate(w http.ResponseWriter, r *http.Request) {
	s.tr.Counter("http/validate").Inc()
	var req validateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	d, f, ok := s.lib.Design(req.Gate)
	if !ok {
		writeErr(w, http.StatusBadRequest, "unknown gate %q (see GET /v1/gates)", req.Gate)
		return
	}
	params := sim.ParamsFig5
	if req.Params != nil {
		params = sim.Params{MuMinus: req.Params.MuMinus, EpsR: req.Params.EpsR, LambdaTF: req.Params.LambdaTF}
	}
	solverName := req.Solver
	if solverName == "" {
		solverName = s.cfg.Solver
	}
	if _, err := sim.Lookup(solverName); err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	fn := func(ctx context.Context) (any, error) {
		v, hit, err := cache.CachedValidate(s.lru, d, gatelib.TruthOf(f), params,
			gatelib.ValidateOptions{Solver: solverName})
		if err != nil {
			return nil, err
		}
		body, err := json.Marshal(validateResponse{
			Gate: req.Gate, OK: v.OK, Outputs: v.Outputs,
			MinGapEV: v.MinGapEV, Method: v.Method,
		})
		if err != nil {
			return nil, err
		}
		source := "miss"
		if hit {
			source = "hit"
		}
		return &jobResult{body: append(body, '\n'), source: source}, nil
	}
	j, ok := s.submit(w, "validate", req.TimeoutMS, fn)
	if !ok {
		return
	}
	s.await(w, r, j)
}

func (s *Server) handleGates(w http.ResponseWriter, r *http.Request) {
	keys := s.lib.Variants()
	sort.Strings(keys)
	writeJSON(w, http.StatusOK, map[string]any{"gates": keys})
}

// ---- jobs, health, metrics ----

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.queue.Get(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "no such job")
		return
	}
	st := j.Snapshot()
	out := map[string]any{"job": st}
	if res, _ := j.Result(); res != nil {
		if jr, ok := res.(*jobResult); ok {
			out["cache"] = jr.cacheHeader()
			out["result"] = json.RawMessage(jr.body)
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleJobDelete(w http.ResponseWriter, r *http.Request) {
	j, ok := s.queue.Get(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "no such job")
		return
	}
	j.Cancel()
	writeJSON(w, http.StatusAccepted, j.Snapshot())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":             true,
		"uptime_seconds": time.Since(s.started).Seconds(),
		"workers":        s.cfg.Workers,
		"queue_depth":    s.queue.Depth(),
	})
}

// handleMetrics renders every tracer metric plus the cache stats as plain
// "name value" lines (slashes normalized to underscores).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	var lines []string
	add := func(name string, value float64) {
		lines = append(lines, fmt.Sprintf("%s %g", strings.ReplaceAll(name, "/", "_"), value))
	}
	if rep := s.tr.Report("server"); rep != nil {
		for name, m := range rep.Metrics {
			switch m.Type {
			case "counter", "gauge":
				add(name, m.Value)
			case "histogram":
				add(name+"/count", float64(m.Count))
				add(name+"/sum", m.Sum)
			}
		}
	}
	st := s.lru.Stats()
	add("cache/mem/stats/hits", float64(st.Hits))
	add("cache/mem/stats/misses", float64(st.Misses))
	add("cache/mem/stats/evictions", float64(st.Evictions))
	add("cache/mem/stats/entries", float64(st.Entries))
	add("cache/mem/stats/bytes", float64(st.Bytes))
	add("cache/mem/stats/hit_rate", st.HitRate())
	add("queue/depth_now", float64(s.queue.Depth()))
	sort.Strings(lines)
	fmt.Fprintln(w, strings.Join(lines, "\n"))
}
