package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/gatelib"
	"repro/internal/lattice"
	"repro/internal/logic/bench"
	"repro/internal/logic/network"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/obs/obslog"
	"repro/internal/obs/slo"
	"repro/internal/sidb"
	"repro/internal/sim"
)

// Config tunes the design service.
type Config struct {
	// Workers is the job worker pool size (default 2).
	Workers int
	// QueueDepth bounds queued-but-not-running jobs (default 4*Workers).
	QueueDepth int
	// JobTimeout is the default per-job deadline; requests can shorten it
	// via timeout_ms but never extend it. Zero means no deadline.
	JobTimeout time.Duration
	// CacheBytes bounds the in-memory result cache (default 64 MiB).
	CacheBytes int64
	// CacheDir, when set, enables the persistent flow-artifact layer.
	CacheDir string
	// Solver is the default ground-state solver name ("" = automatic
	// dispatch; see sim.SolverNames).
	Solver string
	// MaxBodyBytes bounds request bodies (default 1 MiB); oversized
	// requests are rejected with 413 and a JSON error.
	MaxBodyBytes int64
	// Tracer receives server-wide metrics (queue depth, cache hit rates,
	// request counters, latency histograms). Per-job flow spans use their
	// own tracers whose stage durations are aggregated back onto this one
	// via an obs.StageObserver, so the shared tracer only ever sees
	// concurrency-safe metric types.
	Tracer *obs.Tracer
	// Logger receives structured JSON request/job logs (nil disables).
	Logger *obslog.Logger
	// MaxRetries bounds retries of transient disk-cache I/O failures
	// (default 2; negative disables). Repeated failures trip a circuit
	// breaker that degrades the service to memory-only caching.
	MaxRetries int
	// DegradeMargin is the budget the solver degradation ladder reserves
	// for its cheaper fallback engines under a job deadline (default
	// sim.DefaultDegradeMargin; see sim.Degrading).
	DegradeMargin time.Duration
	// SLOWindows are the burn-rate evaluation windows (default 5m and 1h).
	// Chaos tests shrink them so budget burn and recovery are observable
	// within a smoke run.
	SLOWindows []time.Duration
}

// defaultObjectives declares the service's latency/error objectives per
// cost class. Budgets are error budgets: the tolerated fraction of bad
// (5xx or over-latency-threshold) requests.
func defaultObjectives() []slo.Objective {
	return []slo.Objective{
		{Name: "flow", Latency: 30 * time.Second, Budget: 0.01},
		{Name: "simulate", Latency: 5 * time.Second, Budget: 0.01},
		{Name: "validate", Latency: 5 * time.Second, Budget: 0.01},
		{Name: "read", Latency: 250 * time.Millisecond, Budget: 0.01},
	}
}

// Server is the bestagond HTTP service: a JSON API over the design flow,
// simulation, and gate validation, backed by a bounded job queue and a
// content-addressed result cache.
type Server struct {
	cfg       Config
	tr        *obs.Tracer
	log       *obslog.Logger
	queue     *Queue
	lru       *cache.LRU
	flow      *cache.FlowCache
	lib       *gatelib.Library
	mux       *http.ServeMux
	handler   http.Handler
	started   time.Time
	window    *obs.RollingWindow
	stageSink *obs.StageObserver
	flight    *flight.Recorder
	slo       *slo.Engine
	inFlight  atomic.Int64
}

// New builds a server (it does not listen; see Handler).
func New(cfg Config) (*Server, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 4 * cfg.Workers
	}
	if cfg.Tracer == nil {
		// The server always carries a tracer so /metrics has content even
		// when the daemon was started without observability flags.
		cfg.Tracer = obs.New()
	}
	if cfg.Solver != "" {
		if _, err := sim.Lookup(cfg.Solver); err != nil {
			return nil, fmt.Errorf("service: %w", err)
		}
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 1 << 20
	}
	s := &Server{
		cfg:     cfg,
		tr:      cfg.Tracer,
		log:     cfg.Logger,
		lru:     cache.NewLRU(cfg.CacheBytes),
		lib:     gatelib.NewLibrary(),
		started: time.Now(),
		window:  obs.NewRollingWindow(512),
	}
	s.stageSink = &obs.StageObserver{
		Tracer: s.tr,
		Family: "flow_stage_seconds",
		// Solver-depth telemetry: numeric span attributes recorded by the
		// SAT size search and the annealer are folded into server-wide
		// histograms labeled by stage, so /metrics exposes search-effort
		// distributions (how hard solves are, not just how long).
		Attrs: []obs.AttrHistogram{
			{Key: "conflicts", Family: "sat_conflicts_per_solve",
				Bounds: []float64{0, 10, 100, 1e3, 1e4, 1e5, 1e6}},
			{Key: "decisions", Family: "sat_decisions_per_solve",
				Bounds: []float64{0, 10, 100, 1e3, 1e4, 1e5, 1e6}},
			{Key: "propagations", Family: "sat_propagations_per_solve",
				Bounds: []float64{0, 100, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8}},
			{Key: "restarts", Family: "sat_restarts_per_solve",
				Bounds: []float64{0, 1, 2, 5, 10, 20, 50, 100}},
			{Key: "acceptance_rate", Family: "anneal_acceptance_rate",
				Bounds: []float64{0.01, 0.02, 0.05, 0.1, 0.15, 0.2, 0.3, 0.5, 0.75, 1}},
		},
	}
	s.slo = slo.New(defaultObjectives(), cfg.SLOWindows...)
	s.flight = flight.NewRecorder(flight.Options{Tracer: s.tr})
	s.lru.Instrument(s.tr, "cache/mem")
	s.flow = &cache.FlowCache{Mem: s.lru}
	if cfg.CacheDir != "" {
		d, err := cache.NewDisk(cfg.CacheDir)
		if err != nil {
			return nil, err
		}
		// The resilient wrapper retries transient I/O and trips a breaker
		// to memory-only caching when the disk keeps failing, so cache
		// storage trouble degrades throughput instead of availability.
		s.flow.Disk = cache.NewResilientDisk(d, cache.ResilientOptions{
			MaxRetries: cfg.MaxRetries,
			Tracer:     s.tr,
			Logger:     s.log,
		})
	}
	s.queue = NewQueue(cfg.Workers, cfg.QueueDepth, cfg.JobTimeout, s.tr, s.log)
	s.queue.OnFinish(s.recordFlight)

	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/flow", s.handleFlow)
	s.mux.HandleFunc("POST /v1/simulate", s.handleSimulate)
	s.mux.HandleFunc("POST /v1/gates/validate", s.handleValidate)
	s.mux.HandleFunc("GET /v1/gates", s.handleGates)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	s.mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleJobTrace)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobDelete)
	s.mux.HandleFunc("GET /v1/traces/{id}", s.handleTraceGet)
	s.mux.HandleFunc("GET /debug/flightrecorder", s.handleFlightRecorder)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.handler = s.instrument(s.mux)
	return s, nil
}

// Handler returns the HTTP handler (routes wrapped in the observability
// middleware: request IDs, latency histograms, structured logs).
func (s *Server) Handler() http.Handler { return s.handler }

// Queue exposes the job queue (for tests and the daemon's drain path).
func (s *Server) Queue() *Queue { return s.queue }

// CacheStats snapshots the in-memory result cache.
func (s *Server) CacheStats() cache.Stats { return s.lru.Stats() }

// Drain stops accepting jobs and waits for in-flight work (see
// Queue.Drain).
func (s *Server) Drain(ctx context.Context) error { return s.queue.Drain(ctx) }

// ---- request/response plumbing ----

// jobResult is what every job kind stores on completion: the canonical
// response body plus where it came from. Serving the stored bytes verbatim
// is what makes warm responses byte-identical to cold ones.
type jobResult struct {
	body   []byte
	source string // cache.SourceMem, cache.SourceDisk, "miss", "bypass"
	// degraded mirrors the artifact's degraded marker so the queue can
	// tag the job with ErrorKind "degraded" (the body carries the full
	// detail; this drives the X-Degraded header and job snapshots).
	degraded bool
}

// DegradedResult implements the queue's DegradedResult interface.
func (r *jobResult) DegradedResult() bool { return r.degraded }

func (r *jobResult) cacheHeader() string {
	switch r.source {
	case cache.SourceMem, cache.SourceDisk, "hit":
		return "hit"
	default:
		return "miss"
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		http.Error(w, `{"error":"encoding failure"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(append(b, '\n'))
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// writeErrKind is writeErr plus the machine-readable error_kind field
// ("not_found", "panic", "timeout", "canceled", "degraded", "error") so
// clients can branch on failure class without parsing prose.
func writeErrKind(w http.ResponseWriter, code int, kind, format string, args ...any) {
	writeJSON(w, code, map[string]string{
		"error":      fmt.Sprintf(format, args...),
		"error_kind": kind,
	})
}

// decodeJSON decodes a bounded request body into v. It returns false
// after writing the error response itself: 413 with a JSON error when the
// body exceeds the configured bound (instead of the opaque read failure
// an unbounded decode would surface), 400 for malformed JSON.
func (s *Server) decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeErr(w, http.StatusRequestEntityTooLarge,
				"request body exceeds %d bytes", mbe.Limit)
			return false
		}
		writeErr(w, http.StatusBadRequest, "bad request: %v", err)
		return false
	}
	return true
}

// newJobTracer builds the per-job tracer: it records the job's stage
// spans for GET /v1/jobs/{id}/trace, and its span sink aggregates every
// stage duration into the server-wide flow_stage_seconds histograms so
// /metrics exposes per-stage latency distributions (rewrite, P&R, SAT
// size search, simulation, ...) across all jobs.
func (s *Server) newJobTracer() *obs.Tracer {
	jtr := obs.New()
	jtr.SetSink(s.stageSink)
	return jtr
}

// submit enqueues fn, applying queue backpressure to the response. The
// request id and per-job tracer ride along so they are attached before a
// worker can pick the job up (see Queue.SubmitTraced).
func (s *Server) submit(w http.ResponseWriter, kind, rid string, jtr *obs.Tracer, timeoutMS int64, fn JobFunc) (*Job, bool) {
	timeout := time.Duration(timeoutMS) * time.Millisecond
	if s.cfg.JobTimeout > 0 && (timeout <= 0 || timeout > s.cfg.JobTimeout) {
		timeout = s.cfg.JobTimeout
	}
	j, err := s.queue.SubmitTraced(kind, rid, jtr, timeout, fn)
	switch err {
	case nil:
		return j, true
	case ErrQueueFull:
		w.Header().Set("Retry-After", "1")
		writeErr(w, http.StatusTooManyRequests, "job queue is full (depth %d)", s.cfg.QueueDepth)
	case ErrDraining:
		writeErr(w, http.StatusServiceUnavailable, "server is draining")
	default:
		writeErr(w, http.StatusInternalServerError, "%v", err)
	}
	return nil, false
}

// await blocks until the job finishes or the client goes away (which
// cancels the job), then writes the job's canonical response.
func (s *Server) await(w http.ResponseWriter, r *http.Request, j *Job) {
	select {
	case <-j.Done():
	case <-r.Context().Done():
		j.Cancel()
		<-j.Done()
	}
	res, errMsg := j.Result()
	kind := j.ErrorKind()
	switch j.State() {
	case JobDone:
		jr := res.(*jobResult)
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Job-Id", j.ID)
		w.Header().Set("X-Cache", jr.cacheHeader())
		if jr.degraded {
			// Deadline pressure forced a cheaper engine; the body carries
			// degraded:true and the header lets clients spot it without
			// parsing. Still a 200: the result is usable.
			w.Header().Set("X-Degraded", "true")
		}
		w.WriteHeader(http.StatusOK)
		w.Write(jr.body)
	case JobCanceled:
		w.Header().Set("X-Job-Id", j.ID)
		writeErrKind(w, http.StatusGatewayTimeout, kind, "job %s canceled: %s", j.ID, errMsg)
	default:
		code := http.StatusUnprocessableEntity
		if kind == ErrKindPanic {
			// A panic is the server's bug, not the request's fault.
			code = http.StatusInternalServerError
		}
		w.Header().Set("X-Job-Id", j.ID)
		writeErrKind(w, code, kind, "job %s failed: %s", j.ID, errMsg)
	}
}

// ---- /v1/flow ----

type flowRequest struct {
	// Bench names a built-in Table 1 benchmark; Source provides an inline
	// netlist instead (Format "bench" or "verilog").
	Bench  string `json:"bench,omitempty"`
	Source string `json:"source,omitempty"`
	Format string `json:"format,omitempty"`
	Name   string `json:"name,omitempty"`
	// Engine is "auto" (default), "exact", or "ortho".
	Engine string `json:"engine,omitempty"`
	// CellSim enables whole-layout ground-state simulation; Solver picks
	// the backend for it.
	CellSim bool   `json:"cellsim,omitempty"`
	Solver  string `json:"solver,omitempty"`
	// MaxArea / ConflictBudget tune the exact engine.
	MaxArea        int   `json:"max_area,omitempty"`
	ConflictBudget int64 `json:"conflict_budget,omitempty"`
	// SQD / Report request the SiQAD file and the stage report.
	SQD    bool `json:"sqd,omitempty"`
	Report bool `json:"report,omitempty"`
	// TimeoutMS shortens the job deadline; NoCache bypasses the result
	// cache; Async returns 202 with a job ID instead of waiting.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	NoCache   bool  `json:"nocache,omitempty"`
	Async     bool  `json:"async,omitempty"`
}

func (s *Server) parseSpec(req *flowRequest) (*network.XAG, error) {
	switch {
	case req.Bench != "" && req.Source != "":
		return nil, fmt.Errorf("bench and source are mutually exclusive")
	case req.Bench != "":
		return bench.Load(req.Bench)
	case req.Source == "":
		return nil, fmt.Errorf("one of bench or source is required")
	case req.Format == "verilog":
		return bench.ParseVerilog(req.Source)
	case req.Format == "" || req.Format == "bench":
		name := req.Name
		if name == "" {
			name = "inline"
		}
		return bench.ParseBench(name, req.Source)
	default:
		return nil, fmt.Errorf("unknown format %q (want bench or verilog)", req.Format)
	}
}

func parseEngine(name string) (core.Engine, error) {
	switch name {
	case "", "auto":
		return core.EngineAuto, nil
	case "exact":
		return core.EngineExact, nil
	case "ortho":
		return core.EngineOrtho, nil
	default:
		return 0, fmt.Errorf("unknown engine %q (want auto, exact, or ortho)", name)
	}
}

func (s *Server) handleFlow(w http.ResponseWriter, r *http.Request) {
	s.tr.Counter("http/flow").Inc()
	var req flowRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	spec, err := s.parseSpec(&req)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	engine, err := parseEngine(req.Engine)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	solver := req.Solver
	if solver == "" {
		solver = s.cfg.Solver
	}
	if req.CellSim {
		if _, err := sim.Lookup(solver); err != nil {
			writeErr(w, http.StatusBadRequest, "%v", err)
			return
		}
	}
	rid := obs.RequestIDFromContext(r.Context())
	jtr := s.newJobTracer()
	opts := core.Options{
		Engine:        engine,
		CellSim:       req.CellSim,
		GroundSolver:  solver,
		Tracer:        jtr,
		DegradeMargin: s.cfg.DegradeMargin,
	}
	opts.Exact.MaxArea = req.MaxArea
	opts.Exact.ConflictBudget = req.ConflictBudget

	fn := func(ctx context.Context) (any, error) {
		ctx = obs.ContextWithRequestID(ctx, rid)
		var art *cache.FlowArtifact
		source := cache.SourceBypass
		var err error
		if req.NoCache {
			art, err = cache.RunFlow(ctx, spec, opts, req.SQD, req.Report)
		} else {
			art, source, err = s.flow.Run(ctx, spec, opts, req.SQD, req.Report)
		}
		if err != nil {
			return nil, err
		}
		body, err := json.Marshal(art)
		if err != nil {
			return nil, err
		}
		return &jobResult{body: append(body, '\n'), source: source, degraded: art.Degraded}, nil
	}
	j, ok := s.submit(w, "flow", rid, jtr, req.TimeoutMS, fn)
	if !ok {
		return
	}
	if req.Async {
		w.Header().Set("Location", "/v1/jobs/"+j.ID)
		writeJSON(w, http.StatusAccepted, j.Snapshot())
		return
	}
	s.await(w, r, j)
}

// ---- /v1/simulate ----

type dotRequest struct {
	X    int    `json:"x"`
	Y    int    `json:"y"`
	Role string `json:"role,omitempty"`
}

type simulateRequest struct {
	// Gate names a library tile by variant key (see GET /v1/gates); Dots
	// gives an explicit layout instead.
	Gate string       `json:"gate,omitempty"`
	Dots []dotRequest `json:"dots,omitempty"`
	// Params are the physical parameters (default: the paper's Fig. 5).
	Params *struct {
		MuMinus  float64 `json:"mu_minus"`
		EpsR     float64 `json:"eps_r"`
		LambdaTF float64 `json:"lambda_tf"`
	} `json:"params,omitempty"`
	Solver    string `json:"solver,omitempty"`
	TimeoutMS int64  `json:"timeout_ms,omitempty"`
	Async     bool   `json:"async,omitempty"`
}

type simulateResponse struct {
	Solver   string  `json:"solver"`
	Exact    bool    `json:"exact"`
	Dots     int     `json:"dots"`
	FreeDots int     `json:"free_dots"`
	EnergyEV float64 `json:"energy_ev"`
	// Degraded reports that the deadline forced a cheaper engine than
	// requested; the result is best-effort, not provably minimal.
	Degraded bool `json:"degraded,omitempty"`
	// Charges[i] is 1 when dot i (request order) is DB- in the ground
	// state.
	Charges []int `json:"charges"`
}

func parseRole(role string) (sidb.Role, error) {
	switch role {
	case "", "normal":
		return sidb.RoleNormal, nil
	case "perturber":
		return sidb.RolePerturber, nil
	case "input":
		return sidb.RoleInput, nil
	case "output":
		return sidb.RoleOutput, nil
	default:
		return 0, fmt.Errorf("unknown dot role %q", role)
	}
}

func (s *Server) simLayout(req *simulateRequest) (*sidb.Layout, error) {
	switch {
	case req.Gate != "" && len(req.Dots) > 0:
		return nil, fmt.Errorf("gate and dots are mutually exclusive")
	case req.Gate != "":
		d, _, ok := s.lib.Design(req.Gate)
		if !ok {
			return nil, fmt.Errorf("unknown gate %q (see GET /v1/gates)", req.Gate)
		}
		return d.Layout(0, 0), nil
	case len(req.Dots) == 0:
		return nil, fmt.Errorf("one of gate or dots is required")
	default:
		l := &sidb.Layout{Name: "request"}
		for _, d := range req.Dots {
			role, err := parseRole(d.Role)
			if err != nil {
				return nil, err
			}
			l.Add(lattice.FromCell(d.X, d.Y), role)
		}
		return l, nil
	}
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	s.tr.Counter("http/simulate").Inc()
	var req simulateRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	layout, err := s.simLayout(&req)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	params := sim.ParamsFig5
	if req.Params != nil {
		params = sim.Params{MuMinus: req.Params.MuMinus, EpsR: req.Params.EpsR, LambdaTF: req.Params.LambdaTF}
	}
	solverName := req.Solver
	if solverName == "" {
		solverName = s.cfg.Solver
	}
	inner, err := sim.Lookup(solverName)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Cache outside the ladder: warm hits skip the degradation logic
	// entirely, and the cache layer refuses to store degraded solutions,
	// so cached entries are always full-quality.
	degrading := &sim.Degrading{Inner: inner, Margin: s.cfg.DegradeMargin, Tracer: s.tr}
	cached := &cache.CachedSolver{Inner: degrading, Cache: s.lru, Tracer: s.tr}

	rid := obs.RequestIDFromContext(r.Context())
	jtr := s.newJobTracer()
	fn := func(ctx context.Context) (any, error) {
		ctx = obs.ContextWithRequestID(ctx, rid)
		sp := jtr.Start("simulate")
		defer sp.End()
		if rid != "" {
			sp.SetAttr("request_id", rid)
		}
		eng := sim.NewEngine(layout, params)
		sp.SetAttr("dots", eng.NumDots())
		sol, hit, err := cached.SolveTrack(eng, sim.SolveOptions{Ctx: ctx, Tracer: jtr})
		if err != nil {
			return nil, err
		}
		sp.SetAttr("solver", sol.Solver)
		sp.SetAttr("cache_hit", hit)
		resp := simulateResponse{
			Solver:   sol.Solver,
			Exact:    sol.Exact,
			Dots:     eng.NumDots(),
			FreeDots: len(eng.FreeIndices()),
			EnergyEV: sol.EnergyEV,
			Degraded: sol.Degraded,
			Charges:  make([]int, len(sol.Charges)),
		}
		for i, c := range sol.Charges {
			if c {
				resp.Charges[i] = 1
			}
		}
		body, err := json.Marshal(resp)
		if err != nil {
			return nil, err
		}
		source := "miss"
		if hit {
			source = "hit"
		}
		return &jobResult{body: append(body, '\n'), source: source, degraded: sol.Degraded}, nil
	}
	j, ok := s.submit(w, "simulate", rid, jtr, req.TimeoutMS, fn)
	if !ok {
		return
	}
	if req.Async {
		w.Header().Set("Location", "/v1/jobs/"+j.ID)
		writeJSON(w, http.StatusAccepted, j.Snapshot())
		return
	}
	s.await(w, r, j)
}

// ---- /v1/gates and /v1/gates/validate ----

type validateRequest struct {
	Gate   string `json:"gate"`
	Solver string `json:"solver,omitempty"`
	Params *struct {
		MuMinus  float64 `json:"mu_minus"`
		EpsR     float64 `json:"eps_r"`
		LambdaTF float64 `json:"lambda_tf"`
	} `json:"params,omitempty"`
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

type validateResponse struct {
	Gate     string  `json:"gate"`
	OK       bool    `json:"ok"`
	Outputs  []int   `json:"outputs"`
	MinGapEV float64 `json:"min_gap_ev"`
	Method   string  `json:"method"`
}

func (s *Server) handleValidate(w http.ResponseWriter, r *http.Request) {
	s.tr.Counter("http/validate").Inc()
	var req validateRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	d, f, ok := s.lib.Design(req.Gate)
	if !ok {
		writeErr(w, http.StatusBadRequest, "unknown gate %q (see GET /v1/gates)", req.Gate)
		return
	}
	params := sim.ParamsFig5
	if req.Params != nil {
		params = sim.Params{MuMinus: req.Params.MuMinus, EpsR: req.Params.EpsR, LambdaTF: req.Params.LambdaTF}
	}
	solverName := req.Solver
	if solverName == "" {
		solverName = s.cfg.Solver
	}
	if _, err := sim.Lookup(solverName); err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	rid := obs.RequestIDFromContext(r.Context())
	jtr := s.newJobTracer()
	fn := func(ctx context.Context) (any, error) {
		sp := jtr.Start("validate")
		defer sp.End()
		if rid != "" {
			sp.SetAttr("request_id", rid)
		}
		sp.SetAttr("gate", req.Gate)
		v, hit, err := cache.CachedValidate(s.lru, d, gatelib.TruthOf(f), params,
			gatelib.ValidateOptions{Solver: solverName})
		if err != nil {
			return nil, err
		}
		sp.SetAttr("cache_hit", hit)
		body, err := json.Marshal(validateResponse{
			Gate: req.Gate, OK: v.OK, Outputs: v.Outputs,
			MinGapEV: v.MinGapEV, Method: v.Method,
		})
		if err != nil {
			return nil, err
		}
		source := "miss"
		if hit {
			source = "hit"
		}
		return &jobResult{body: append(body, '\n'), source: source}, nil
	}
	j, ok := s.submit(w, "validate", rid, jtr, req.TimeoutMS, fn)
	if !ok {
		return
	}
	s.await(w, r, j)
}

func (s *Server) handleGates(w http.ResponseWriter, r *http.Request) {
	keys := s.lib.Variants()
	sort.Strings(keys)
	writeJSON(w, http.StatusOK, map[string]any{"gates": keys})
}

// ---- jobs, health, metrics ----

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.queue.Get(r.PathValue("id"))
	if !ok {
		writeErrKind(w, http.StatusNotFound, ErrKindNotFound, "no such job")
		return
	}
	st := j.Snapshot()
	out := map[string]any{"job": st}
	if res, _ := j.Result(); res != nil {
		if jr, ok := res.(*jobResult); ok {
			out["cache"] = jr.cacheHeader()
			out["result"] = json.RawMessage(jr.body)
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleJobDelete(w http.ResponseWriter, r *http.Request) {
	j, ok := s.queue.Get(r.PathValue("id"))
	if !ok {
		writeErrKind(w, http.StatusNotFound, ErrKindNotFound, "no such job")
		return
	}
	j.Cancel()
	writeJSON(w, http.StatusAccepted, j.Snapshot())
}

// handleJobTrace serves the per-job stage timeline: the RunReport of the
// job's tracer (span tree with durations and attributes, including the
// request_id of the request that submitted it, plus any solver metrics
// the stages recorded). A running job reports its elapsed stages so far.
func (s *Server) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	j, ok := s.queue.Get(r.PathValue("id"))
	if !ok {
		writeErrKind(w, http.StatusNotFound, ErrKindNotFound, "no such job")
		return
	}
	jtr := j.Tracer()
	if jtr == nil {
		writeErrKind(w, http.StatusNotFound, ErrKindNotFound, "no trace recorded for job %s", j.ID)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"job":   j.Snapshot(),
		"trace": jtr.Report(j.ID),
	})
}

// recordFlight is the queue's OnFinish hook: every terminal job is offered
// to the flight recorder, which keeps all error/degraded/slow traces and a
// sample of fast successes (see internal/obs/flight).
func (s *Server) recordFlight(j *Job) {
	st := j.Snapshot()
	t := flight.Trace{
		ID:        j.ID,
		Kind:      j.Kind,
		State:     string(st.State),
		ErrorKind: st.ErrorKind,
		Degraded:  st.ErrorKind == ErrKindDegraded,
		RequestID: j.RequestID(),
		StartedAt: j.CreatedAt(),
		Seconds:   j.RunSeconds(),
	}
	if jtr := j.Tracer(); jtr != nil {
		t.Report = jtr.Report(j.ID)
	}
	s.flight.Record(t)
}

// handleFlightRecorder serves the flight-recorder summary: retention
// counts per class, sampling policy, and the headers of every retained
// trace (newest first). Full traces are at /v1/traces/{id}.
func (s *Server) handleFlightRecorder(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.flight.Summary())
}

// handleTraceGet serves a retained trace by job id. It prefers the flight
// recorder (which outlives the job history) and falls back to the live
// job's tracer for jobs not yet or never admitted.
func (s *Server) handleTraceGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if t, ok := s.flight.Get(id); ok {
		writeJSON(w, http.StatusOK, t)
		return
	}
	if j, ok := s.queue.Get(id); ok {
		if jtr := j.Tracer(); jtr != nil {
			writeJSON(w, http.StatusOK, map[string]any{
				"job":   j.Snapshot(),
				"trace": jtr.Report(j.ID),
			})
			return
		}
	}
	writeErrKind(w, http.StatusNotFound, ErrKindNotFound, "no retained trace for %s", id)
}

// handleHealthz reports liveness plus an operational snapshot: queue and
// worker state, lifetime request latency percentiles derived from the
// Prometheus histograms, a rolling-window latency/error view of the most
// recent requests, and the draining state. While draining it answers 503
// so load balancers stop routing to an instance that is shutting down.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	draining := s.queue.Draining()
	code := http.StatusOK
	if draining {
		code = http.StatusServiceUnavailable
	}

	// Merge the per-route request-duration histograms (identical bounds)
	// into lifetime percentiles.
	var bounds []float64
	var counts []int64
	var reqTotal, errs5xx int64
	if rep := s.tr.Report("healthz"); rep != nil {
		for name, m := range rep.Metrics {
			switch {
			case m.Type == "histogram" && strings.HasPrefix(name, "http/request_duration_seconds{"):
				if bounds == nil {
					bounds = m.Bounds
					counts = append([]int64(nil), m.Buckets...)
				} else if len(m.Buckets) == len(counts) {
					for i, c := range m.Buckets {
						counts[i] += c
					}
				}
			case m.Type == "counter" && strings.HasPrefix(name, "http/requests_total{"):
				reqTotal += int64(m.Value)
				if strings.Contains(name, `code="5`) {
					errs5xx += int64(m.Value)
				}
			}
		}
	}
	var obsCount int64
	for _, c := range counts {
		obsCount += c
	}
	win := s.window.Snapshot()
	writeJSON(w, code, map[string]any{
		"ok":             !draining,
		"draining":       draining,
		"uptime_seconds": time.Since(s.started).Seconds(),
		"workers":        s.cfg.Workers,
		"queue_depth":    s.queue.Depth(),
		"jobs_running":   s.queue.Running(),
		"requests": map[string]any{
			"total":      reqTotal,
			"errors_5xx": errs5xx,
			"in_flight":  s.inFlight.Load(),
		},
		"latency": map[string]any{
			"count":  obsCount,
			"p50_ms": 1e3 * obs.QuantileFromBuckets(bounds, counts, 0.50),
			"p90_ms": 1e3 * obs.QuantileFromBuckets(bounds, counts, 0.90),
			"p99_ms": 1e3 * obs.QuantileFromBuckets(bounds, counts, 0.99),
		},
		"window": map[string]any{
			"size":       win.Size,
			"errors":     win.Errors,
			"error_rate": win.ErrorRate,
			"p50_ms":     1e3 * win.P50,
			"p90_ms":     1e3 * win.P90,
			"p99_ms":     1e3 * win.P99,
		},
		"slo": s.slo.Snapshot(),
	})
}

// metricHelp maps sanitized Prometheus family names to their HELP text.
var metricHelp = map[string]string{
	"http_requests_total":                "HTTP requests by method, normalized route, and status code.",
	"http_request_duration_seconds":      "HTTP request latency in seconds by normalized route.",
	"http_in_flight_requests":            "Requests currently being served.",
	"queue_submitted":                    "Jobs accepted into the queue.",
	"queue_completed":                    "Jobs that finished successfully.",
	"queue_failed":                       "Jobs that finished with an error.",
	"queue_canceled":                     "Jobs canceled or timed out.",
	"queue_rejected":                     "Jobs rejected with 429 because the queue was full.",
	"queue_depth":                        "Queued-but-not-running jobs (sampled at enqueue/dequeue).",
	"queue_depth_now":                    "Queued-but-not-running jobs at scrape time.",
	"queue_running":                      "Jobs currently executing on the worker pool.",
	"queue_wait_seconds":                 "Time jobs spent queued before a worker picked them up.",
	"job_duration_seconds":               "Job execution time by kind (flow, simulate, validate).",
	"flow_stage_seconds":                 "Per-stage latency aggregated across jobs (rewrite, pnr, verify, cellsim, simulate, ...).",
	"sim_solve_seconds":                  "Ground-state solve latency by solver backend (cache misses only).",
	"cache_mem_hits":                     "In-memory result cache hits.",
	"cache_mem_misses":                   "In-memory result cache misses.",
	"cache_mem_evictions":                "In-memory result cache evictions.",
	"cache_mem_bytes":                    "Bytes held by the in-memory result cache.",
	"cache_mem_entries":                  "Entries held by the in-memory result cache.",
	"cache_mem_hit_rate":                 "Lifetime hit rate of the in-memory result cache.",
	"jobs_panicked_total":                "Jobs whose function panicked; the worker recovered and recorded the job as failed.",
	"sim_degraded_total":                 "Ground-state solves degraded to a cheaper engine by deadline pressure, by from/to.",
	"flow_degraded_total":                "Flow runs whose physical design degraded to the ortho router under deadline pressure.",
	"cache_disk_breaker_state":           "Disk-cache circuit breaker state: 0 closed, 1 half-open, 2 open (memory-only).",
	"cache_disk_breaker_trips_total":     "Times the disk-cache breaker tripped open.",
	"cache_disk_retries_total":           "Disk-cache operations retried after a transient failure.",
	"cache_disk_io_errors_total":         "Disk-cache I/O failures (each attempt, before retry).",
	"cache_disk_short_circuits_total":    "Disk-cache operations skipped because the breaker was open.",
	"faults_armed":                       "1 when the fault-injection registry is armed (chaos testing), else absent.",
	"slo_burn_rate":                      "Error-budget burn rate per objective and window (1 = burning exactly the budget).",
	"slo_budget_remaining":               "Lifetime error-budget fraction remaining per objective (negative = overspent).",
	"flight_admitted_total":              "Traces admitted to the flight recorder, by retention class.",
	"flight_dropped_total":               "Fast-OK traces not sampled by the flight recorder.",
	"flight_evicted_total":               "Traces evicted from a full flight-recorder ring, by class.",
	"flight_retained":                    "Traces currently retained by the flight recorder, by class.",
	"sat_conflicts_per_solve":            "SAT solver conflicts per solve call, by stage.",
	"sat_decisions_per_solve":            "SAT solver decisions per solve call, by stage.",
	"sat_propagations_per_solve":         "SAT solver unit propagations per solve call, by stage.",
	"sat_restarts_per_solve":             "SAT solver restarts per solve call, by stage.",
	"anneal_acceptance_rate":             "Annealer move acceptance rate per run, by stage (from span attrs).",
	"sim_anneal_acceptance_rate":         "Annealer move acceptance rate per run (span-free metrics path).",
	"pnr_exact_size_solve_seconds":       "Exact P&R per-aspect-ratio SAT solve time, by SAT/UNSAT status.",
	"sim_quickexact_prune_rate":          "QuickExact fraction of search nodes pruned (bound + stability).",
	"sim_quickexact_presolve_fixed_frac": "QuickExact fraction of free dots fixed by presolve.",
}

// handleMetrics renders every tracer metric in the Prometheus text
// exposition format: counters and gauges as single series, histograms
// with full cumulative _bucket/_sum/_count series (the previous ad-hoc
// renderer silently dropped all bucket data). Point-in-time cache and
// queue gauges are refreshed just before rendering.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := s.lru.Stats()
	s.tr.Gauge("cache/mem/hit_rate").Set(st.HitRate())
	s.tr.Gauge("queue/depth_now").Set(float64(s.queue.Depth()))
	s.slo.Export(s.tr)
	w.Header().Set("Content-Type", obs.ExpositionContentType)
	s.tr.WriteExposition(w, metricHelp)
}
