package service

import (
	"crypto/rand"
	"encoding/hex"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/obs/obslog"
)

// requestIDHeader carries the request ID on both requests (client-chosen,
// validated) and responses (always set).
const requestIDHeader = "X-Request-Id"

// statusWriter records the response status and body size for metrics and
// request logs.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += int64(n)
	return n, err
}

// routeLabel normalizes a request path onto the fixed route set so metric
// label cardinality stays bounded no matter what clients send.
func routeLabel(path string) string {
	switch path {
	case "/v1/flow", "/v1/simulate", "/v1/gates/validate", "/v1/gates", "/v1/batch",
		"/v1/defects/sweep", "/v1/cluster/overview", "/internal/stats",
		"/healthz", "/metrics", "/debug/flightrecorder":
		return path
	}
	if strings.HasPrefix(path, "/internal/cache/") {
		return "/internal/cache/{key}"
	}
	if strings.HasPrefix(path, "/internal/trace/") {
		return "/internal/trace/{id}"
	}
	if strings.HasPrefix(path, "/v1/jobs/") {
		if strings.HasSuffix(path, "/trace") {
			return "/v1/jobs/{id}/trace"
		}
		return "/v1/jobs/{id}"
	}
	if strings.HasPrefix(path, "/v1/traces/") {
		return "/v1/traces/{id}"
	}
	return "other"
}

// costClass maps a normalized route onto its SLO objective: the compute
// endpoints each carry their own latency budget, everything else is a
// cheap read.
func costClass(route string) string {
	switch route {
	case "/v1/flow", "/v1/batch", "/v1/defects/sweep":
		// A batch is billed at its most expensive possible class, and a
		// sweep holds a worker at least as long as a flow.
		return "flow"
	case "/v1/simulate":
		return "simulate"
	case "/v1/gates/validate":
		return "validate"
	default:
		return "read"
	}
}

// newRequestID returns a fresh 16-hex-char request ID.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// clientRequestID returns a caller-supplied request ID when it is safe to
// propagate (bounded length, conservative charset), or "".
func clientRequestID(r *http.Request) string {
	id := r.Header.Get(requestIDHeader)
	if id == "" || len(id) > 64 {
		return ""
	}
	for _, c := range id {
		ok := c == '-' || c == '_' || c == '.' ||
			(c >= '0' && c <= '9') || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if !ok {
			return ""
		}
	}
	return id
}

// instrument is the observability middleware: it assigns (or validates
// and propagates) the request ID, tracks in-flight saturation, measures
// per-route latency into Prometheus-exposed histograms, feeds the
// rolling health window, and emits one structured JSON log line per
// request.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rid := clientRequestID(r)
		if rid == "" {
			rid = newRequestID()
		}
		w.Header().Set(requestIDHeader, rid)
		ctx := obs.ContextWithRequestID(r.Context(), rid)
		// A forwarded intra-fleet request carries the forwarding replica's
		// hop headers; parsing them into the context here means every span,
		// log line, and flight-recorder entry downstream can mark itself as
		// the remote half of a distributed execution.
		if fwd := r.Header.Get(cluster.ForwardedHeader); fwd != "" {
			hopIdx := 1
			if n, err := strconv.Atoi(r.Header.Get(cluster.HopHeader)); err == nil && n > 0 {
				hopIdx = n
			}
			ctx = obs.ContextWithHop(ctx, obs.Hop{
				Peer:       fwd,
				Index:      hopIdx,
				ParentSpan: r.Header.Get(cluster.ParentSpanHeader),
				Forwarded:  true,
			})
		}
		r = r.WithContext(ctx)

		s.tr.Gauge("http/in_flight_requests").Set(float64(s.inFlight.Add(1)))
		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r)
		s.tr.Gauge("http/in_flight_requests").Set(float64(s.inFlight.Add(-1)))

		dur := time.Since(start)
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		route := routeLabel(r.URL.Path)
		s.tr.Counter(obs.Labeled("http/requests_total",
			"method", r.Method, "path", route, "code", strconv.Itoa(status))).Inc()
		s.tr.Histogram(obs.Labeled("http/request_duration_seconds", "path", route),
			obs.DefBuckets...).Observe(dur.Seconds())
		s.window.Observe(dur.Seconds(), status >= 500)
		s.slo.Observe(costClass(route), dur.Seconds(), status >= 500)

		if s.log.Enabled(obslog.LevelInfo) {
			fields := []obslog.Field{
				obslog.F("request_id", rid),
				obslog.F("method", r.Method),
				obslog.F("path", r.URL.Path),
				obslog.F("route", route),
				obslog.F("status", status),
				obslog.F("bytes", sw.bytes),
				obslog.F("duration_ms", float64(dur.Microseconds())/1000),
			}
			if cache := sw.Header().Get("X-Cache"); cache != "" {
				fields = append(fields, obslog.F("cache", cache))
			}
			if job := sw.Header().Get("X-Job-Id"); job != "" {
				fields = append(fields, obslog.F("job_id", job))
			}
			s.log.Info("http_request", fields...)
		}
	})
}
