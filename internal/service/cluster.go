package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/cache"
	"repro/internal/cluster"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/obs/obslog"
)

// clusterPeerHeader tells the client which replica actually served a
// forwarded request.
const clusterPeerHeader = "X-Cluster-Peer"

// routeCluster forwards a compute request to the replica that owns its
// cache key, so identical requests landing anywhere in the fleet converge
// on one replica — where the local single-flight group collapses them
// onto one solve and the local cache serves everyone afterwards.
//
// Forwarding is skipped (returns false; caller handles locally) when: the
// fleet is disabled, the op has no cache key (nocache/bypass), the
// request was already forwarded once (loop prevention), this replica owns
// the key, or the entry is already warm in the local memory cache (warm
// hits are cheaper served here than over the wire). A transport failure
// also falls back to local handling — the fleet degrades to independent
// replicas, never to unavailability.
//
// The forward is bounded by the same deadline the owner would apply to
// the job (timeout_ms clamped to JobTimeout) plus slack for queueing and
// transfer: an owner that accepts the connection but never answers (a
// stopped process holds its listener open, invisible to probes until the
// next round) must time out into the local fallback, not hang the client
// — local execution is deadline-bounded, so forwarding must be too.
func (s *Server) routeCluster(w http.ResponseWriter, r *http.Request, op *preparedOp, body []byte) bool {
	if s.node == nil || op.key == "" {
		return false
	}
	if r.Header.Get(cluster.ForwardedHeader) != "" {
		return false
	}
	owner, self := s.node.Owner(string(op.key))
	if self || owner == "" {
		return false
	}
	if s.lru.Contains(op.key) {
		return false
	}
	ctx := r.Context()
	if d := s.forwardTimeout(op.timeoutMS); d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		"http://"+owner+r.URL.Path, bytes.NewReader(body))
	if err != nil {
		return false
	}
	rid := obs.RequestIDFromContext(r.Context())
	fwdSpan := "forward-" + cluster.NewHopID()
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(cluster.ForwardedHeader, s.node.Self())
	req.Header.Set(cluster.ParentSpanHeader, fwdSpan)
	req.Header.Set(cluster.HopHeader, "1")
	if rid != "" {
		req.Header.Set(cluster.RequestIDHeader, rid)
	}
	if ik := idempotencyKey(r); ik != "" {
		// The key travels with the forward so the mapping lands on the
		// key's owner replica — where every retry of this request, from
		// any entry replica, converges.
		req.Header.Set(IdempotencyKeyHeader, ik)
	}
	start := time.Now()
	resp, err := s.node.Client().Do(req)
	if err != nil {
		outcome := "error"
		if errors.Is(err, context.DeadlineExceeded) {
			outcome = "timeout"
		}
		s.tr.Counter(obs.Labeled("cluster/forwarded_total", "outcome", outcome)).Inc()
		// No entry-side flight record here: the local fallback job runs next
		// and records under the same request id with the real outcome.
		return false
	}
	defer resp.Body.Close()
	for _, h := range []string{"Content-Type", "X-Cache", "X-Degraded", "X-Job-Id", "Retry-After", idempotentReplayHeader} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.Header().Set(clusterPeerHeader, owner)
	w.WriteHeader(resp.StatusCode)
	errKind := ""
	if resp.StatusCode >= 400 {
		// Buffer the (bounded) error body so the owner's error_kind can be
		// recorded on this side too, then relay the bytes unchanged.
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		w.Write(b)
		errKind = errorKindFromBody(b, resp.StatusCode)
	} else {
		io.Copy(w, resp.Body)
	}
	s.tr.Counter(obs.Labeled("cluster/forwarded_total", "outcome", "ok")).Inc()
	s.recordForward(op, owner, rid, fwdSpan, errKind, resp, start)
	return true
}

// errorKindFromBody extracts the error_kind from an owner's JSON error
// payload, falling back to a status-derived kind so the entry replica
// still classifies opaque failures.
func errorKindFromBody(b []byte, status int) string {
	var e struct {
		ErrorKind string `json:"error_kind"`
	}
	if err := json.Unmarshal(b, &e); err == nil && e.ErrorKind != "" {
		return e.ErrorKind
	}
	if status == http.StatusGatewayTimeout {
		return ErrKindTimeout
	}
	return ErrKindError
}

// recordForward retains the entry replica's view of a forwarded request in
// the local flight recorder: a one-stage synthetic trace ("fwd-"+rid, so
// it can never collide with local j%08d job ids) whose stage attributes
// name the owner, the hop index, and the parent span the owner's trace
// nests under. A forwarded panic or timeout therefore lands in the ENTRY
// replica's error ring too — the replica the client actually talked to —
// and GET /v1/traces/{rid} here finds the stub and federates for the
// owner's half.
func (s *Server) recordForward(op *preparedOp, owner, rid, fwdSpan, errKind string, resp *http.Response, start time.Time) {
	if s.flight == nil || rid == "" {
		return
	}
	elapsed := time.Since(start).Seconds()
	state := "done"
	if errKind != "" {
		state = "failed"
	}
	degraded := resp.Header.Get("X-Degraded") == "true"
	s.flight.Record(flight.Trace{
		ID:        "fwd-" + rid,
		Kind:      op.kind,
		State:     state,
		ErrorKind: errKind,
		Degraded:  degraded,
		RequestID: rid,
		StartedAt: start,
		Seconds:   elapsed,
		Report: &obs.RunReport{
			Name:        "fwd-" + rid,
			StartedAt:   start,
			WallSeconds: elapsed,
			Stages: []*obs.StageReport{{
				Name:    "forward",
				Seconds: elapsed,
				Attrs: map[string]any{
					"peer":       owner,
					"hop":        1,
					"span_id":    fwdSpan,
					"forwarded":  true,
					"status":     resp.StatusCode,
					"request_id": rid,
				},
			}},
		},
	})
}

// forwardSlack is the headroom a forwarded request gets beyond the job
// deadline the owner will apply, covering the owner's queue wait and the
// response transfer. A var so tests can shrink it.
var forwardSlack = 2 * time.Second

// forwardTimeout returns the deadline budget for one forwarded request:
// the effective job timeout the owner replica would apply (the request's
// timeout_ms clamped to JobTimeout, exactly like submit) plus
// forwardSlack. Zero means no bound is configured anywhere — the
// operator ran the daemon without deadlines, and forwarding inherits
// that choice.
func (s *Server) forwardTimeout(timeoutMS int64) time.Duration {
	t := time.Duration(timeoutMS) * time.Millisecond
	if s.cfg.JobTimeout > 0 && (t <= 0 || t > s.cfg.JobTimeout) {
		t = s.cfg.JobTimeout
	}
	if t <= 0 {
		return 0
	}
	return t + forwardSlack
}

// safeExec runs op.exec with panic isolation, converting a panic into
// the queue's PanicError so it surfaces as error_kind "panic" instead of
// killing the process. Two execution paths run outside safeRun's
// worker-scoped recover and depend on this guard: single-flight runs
// (group-owned goroutines) and batch fan-out (raw goroutines inside one
// queue job) — including keyless items, which skip the group entirely.
func (s *Server) safeExec(ctx context.Context, op *preparedOp, jtr *obs.Tracer) (jr *jobResult, err error) {
	defer func() {
		if r := recover(); r != nil {
			pe := newPanicError(r)
			jr, err = nil, pe
			s.tr.Counter("jobs/panicked_total").Inc()
			s.log.Error("job_panic",
				obslog.F("kind", op.kind),
				obslog.F("request_id", obs.RequestIDFromContext(ctx)),
				obslog.F("panic", fmt.Sprint(r)),
				obslog.F("stack", string(pe.Stack)))
		}
	}()
	// Stands in for any latent bug an exec path can tickle; chaos tests
	// arm it to prove the recovery above (safeRun's point only covers the
	// worker goroutine itself).
	if faults.Should("service.exec.panic") {
		panic("injected fault: service.exec.panic")
	}
	return op.exec(ctx, jtr)
}

// runCoalesced executes op.exec through the fleet single-flight group
// when the op has a cache key: concurrent identical executions — from
// direct requests, forwarded requests, and batch items alike — collapse
// onto one run whose result every participant shares byte for byte. A
// caller whose context ends leaves without failing the others; the run
// itself is abandoned only when its last participant is gone.
func (s *Server) runCoalesced(ctx context.Context, op *preparedOp, jtr *obs.Tracer) (*jobResult, error) {
	if op.key == "" {
		// Keyless ops (nocache, custom library) skip coalescing but still
		// need the panic guard: batch fan-out reaches here on goroutines
		// with no other recover between the panic and the runtime.
		return s.safeExec(ctx, op, jtr)
	}
	fn := func(runCtx context.Context) (any, error) {
		jr, err := s.safeExec(runCtx, op, jtr)
		if err != nil {
			// Untyped nil: a typed-nil *jobResult inside the any would pass
			// the type assertion below.
			return nil, err
		}
		return jr, nil
	}
	v, shared, err := s.single.Do(ctx, string(op.key), fn)
	if err != nil && shared && ctx.Err() == nil && errors.Is(err, context.DeadlineExceeded) {
		// The run this caller joined inherited its starter's deadline,
		// which may have been shorter than ours: the starter timing out
		// must not fail a joiner that still has budget. Retry once under
		// our own deadline (the fresh run may itself be joined by others).
		s.tr.Counter("cluster/singleflight_rerun_total").Inc()
		v, shared, err = s.single.Do(ctx, string(op.key), fn)
	}
	if err != nil {
		return nil, err
	}
	jr := v.(*jobResult)
	if shared {
		s.tr.Counter("cluster/singleflight_merged_total").Inc()
		// Same bytes, distinct result struct: the source marker tells the
		// caller (and the X-Cache header) this answer rode along on another
		// request's solve.
		cp := *jr
		cp.source = sourceCoalesced
		return &cp, nil
	}
	return jr, nil
}

// sourceCoalesced marks a jobResult that shared another request's
// execution; cacheHeader reports it as a hit (no local work was done).
const sourceCoalesced = "coalesced"

// tracedPeer wraps the peer cache tier so each cross-replica fetch shows
// up as a span ("peer_fetch") on the per-job tracer — and therefore in
// job traces and the flight recorder. Returns nil outside a fleet.
func (s *Server) tracedPeer(jtr *obs.Tracer) cache.Layer {
	if s.peer == nil {
		return nil
	}
	return &tracedLayer{inner: s.peer, jtr: jtr}
}

type tracedLayer struct {
	inner cache.Layer
	jtr   *obs.Tracer
}

func (t *tracedLayer) Get(ctx context.Context, key cache.Key) ([]byte, bool, error) {
	sp := t.jtr.Start("peer_fetch")
	defer sp.End()
	b, ok, err := t.inner.Get(ctx, key)
	sp.SetAttr("hit", ok)
	if err != nil {
		sp.SetAttr("error", err.Error())
	}
	return b, ok, err
}

func (t *tracedLayer) Put(ctx context.Context, key cache.Key, val []byte) error {
	return t.inner.Put(ctx, key, val)
}

// ---- /internal/cache/{key}: the peer-cache protocol endpoint ----

// validCacheKey checks the canonical key shape (tag:hex64) so the
// internal endpoint never touches the cache with attacker-shaped keys.
func validCacheKey(k string) bool {
	tag, hex, ok := strings.Cut(k, ":")
	if !ok || len(hex) != 64 {
		return false
	}
	switch tag {
	case "sim", "flow", "gate", "xag":
	default:
		return false
	}
	for i := 0; i < len(hex); i++ {
		c := hex[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// authorizeInternal guards the peer-cache endpoint: shared secret when
// the fleet has one, loopback-only otherwise.
func (s *Server) authorizeInternal(r *http.Request) bool {
	secret := ""
	if s.node != nil {
		secret = s.node.Secret()
	}
	return cluster.AuthorizeInternal(r, secret)
}

// handleInternalCacheGet serves raw cache entries to peers. It reads
// through Peek (no LRU promotion, no hit/miss counters) so cross-replica
// traffic doesn't distort local cache telemetry, falling back to the disk
// layer for flow artifacts that aged out of memory.
func (s *Server) handleInternalCacheGet(w http.ResponseWriter, r *http.Request) {
	if !s.authorizeInternal(r) {
		writeErr(w, http.StatusForbidden, "cluster secret required")
		return
	}
	key := r.PathValue("key")
	if !validCacheKey(key) {
		writeErr(w, http.StatusBadRequest, "malformed cache key")
		return
	}
	k := cache.Key(key)
	b, ok := s.lru.Peek(k)
	if !ok && s.flow.Disk != nil && strings.HasPrefix(key, "flow:") {
		if db, dok, err := s.flow.Disk.Get(r.Context(), k); err == nil && dok {
			b, ok = db, true
		}
	}
	if !ok {
		writeErrKind(w, http.StatusNotFound, ErrKindNotFound, "no cache entry")
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	w.Write(b)
}

// maxInternalEntryBytes bounds one pushed cache entry.
const maxInternalEntryBytes = 8 << 20

// handleInternalCachePut accepts a pushed cache entry from a peer. Peers
// only push non-degraded results (the cache wrappers refuse to store
// degraded ones at the source), so nothing accepted here can serve a
// reduced-quality answer.
func (s *Server) handleInternalCachePut(w http.ResponseWriter, r *http.Request) {
	if !s.authorizeInternal(r) {
		writeErr(w, http.StatusForbidden, "cluster secret required")
		return
	}
	key := r.PathValue("key")
	if !validCacheKey(key) {
		writeErr(w, http.StatusBadRequest, "malformed cache key")
		return
	}
	b, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxInternalEntryBytes))
	if err != nil {
		// Only an actual size overrun is a 413; a peer disconnecting or a
		// transport read error is a plain bad request (mirroring readBody),
		// so logs and peer metrics don't misreport entry sizes.
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeErr(w, http.StatusRequestEntityTooLarge,
				"cache entry exceeds %d bytes", mbe.Limit)
			return
		}
		writeErr(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	k := cache.Key(key)
	s.lru.Put(k, b)
	if s.flow.Disk != nil && strings.HasPrefix(key, "flow:") {
		_ = s.flow.Disk.Put(r.Context(), k, b)
	}
	w.WriteHeader(http.StatusNoContent)
}
