package service

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"strings"

	"repro/internal/cache"
	"repro/internal/cluster"
	"repro/internal/obs"
)

// clusterPeerHeader tells the client which replica actually served a
// forwarded request.
const clusterPeerHeader = "X-Cluster-Peer"

// routeCluster forwards a compute request to the replica that owns its
// cache key, so identical requests landing anywhere in the fleet converge
// on one replica — where the local single-flight group collapses them
// onto one solve and the local cache serves everyone afterwards.
//
// Forwarding is skipped (returns false; caller handles locally) when: the
// fleet is disabled, the op has no cache key (nocache/bypass), the
// request was already forwarded once (loop prevention), this replica owns
// the key, or the entry is already warm in the local memory cache (warm
// hits are cheaper served here than over the wire). A transport failure
// also falls back to local handling — the fleet degrades to independent
// replicas, never to unavailability.
func (s *Server) routeCluster(w http.ResponseWriter, r *http.Request, key cache.Key, body []byte) bool {
	if s.node == nil || key == "" {
		return false
	}
	if r.Header.Get(cluster.ForwardedHeader) != "" {
		return false
	}
	owner, self := s.node.Owner(string(key))
	if self || owner == "" {
		return false
	}
	if s.lru.Contains(key) {
		return false
	}
	req, err := http.NewRequestWithContext(r.Context(), http.MethodPost,
		"http://"+owner+r.URL.Path, bytes.NewReader(body))
	if err != nil {
		return false
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(cluster.ForwardedHeader, s.node.Self())
	if rid := obs.RequestIDFromContext(r.Context()); rid != "" {
		req.Header.Set(requestIDHeader, rid)
	}
	resp, err := s.node.Client().Do(req)
	if err != nil {
		s.tr.Counter(obs.Labeled("cluster/forwarded_total", "outcome", "error")).Inc()
		return false
	}
	defer resp.Body.Close()
	for _, h := range []string{"Content-Type", "X-Cache", "X-Degraded", "X-Job-Id", "Retry-After"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.Header().Set(clusterPeerHeader, owner)
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
	s.tr.Counter(obs.Labeled("cluster/forwarded_total", "outcome", "ok")).Inc()
	return true
}

// runCoalesced executes op.exec through the fleet single-flight group
// when the op has a cache key: concurrent identical executions — from
// direct requests, forwarded requests, and batch items alike — collapse
// onto one run whose result every participant shares byte for byte. A
// caller whose context ends leaves without failing the others; the run
// itself is abandoned only when its last participant is gone.
func (s *Server) runCoalesced(ctx context.Context, op *preparedOp, jtr *obs.Tracer) (*jobResult, error) {
	if op.key == "" {
		return op.exec(ctx, jtr)
	}
	v, shared, err := s.single.Do(ctx, string(op.key), func(runCtx context.Context) (val any, err error) {
		// The run executes on a group-owned goroutine outside the worker
		// pool's panic isolation; convert panics to the queue's PanicError
		// so they surface as error_kind "panic" instead of killing the
		// process.
		defer func() {
			if r := recover(); r != nil {
				val, err = nil, newPanicError(r)
			}
		}()
		return op.exec(runCtx, jtr)
	})
	if err != nil {
		return nil, err
	}
	jr := v.(*jobResult)
	if shared {
		s.tr.Counter("cluster/singleflight_merged_total").Inc()
		// Same bytes, distinct result struct: the source marker tells the
		// caller (and the X-Cache header) this answer rode along on another
		// request's solve.
		cp := *jr
		cp.source = sourceCoalesced
		return &cp, nil
	}
	return jr, nil
}

// sourceCoalesced marks a jobResult that shared another request's
// execution; cacheHeader reports it as a hit (no local work was done).
const sourceCoalesced = "coalesced"

// tracedPeer wraps the peer cache tier so each cross-replica fetch shows
// up as a span ("peer_fetch") on the per-job tracer — and therefore in
// job traces and the flight recorder. Returns nil outside a fleet.
func (s *Server) tracedPeer(jtr *obs.Tracer) cache.Layer {
	if s.peer == nil {
		return nil
	}
	return &tracedLayer{inner: s.peer, jtr: jtr}
}

type tracedLayer struct {
	inner cache.Layer
	jtr   *obs.Tracer
}

func (t *tracedLayer) Get(key cache.Key) ([]byte, bool, error) {
	sp := t.jtr.Start("peer_fetch")
	defer sp.End()
	b, ok, err := t.inner.Get(key)
	sp.SetAttr("hit", ok)
	if err != nil {
		sp.SetAttr("error", err.Error())
	}
	return b, ok, err
}

func (t *tracedLayer) Put(key cache.Key, val []byte) error {
	return t.inner.Put(key, val)
}

// ---- /internal/cache/{key}: the peer-cache protocol endpoint ----

// validCacheKey checks the canonical key shape (tag:hex64) so the
// internal endpoint never touches the cache with attacker-shaped keys.
func validCacheKey(k string) bool {
	tag, hex, ok := strings.Cut(k, ":")
	if !ok || len(hex) != 64 {
		return false
	}
	switch tag {
	case "sim", "flow", "gate", "xag":
	default:
		return false
	}
	for i := 0; i < len(hex); i++ {
		c := hex[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// authorizeInternal guards the peer-cache endpoint: shared secret when
// the fleet has one, loopback-only otherwise.
func (s *Server) authorizeInternal(r *http.Request) bool {
	secret := ""
	if s.node != nil {
		secret = s.node.Secret()
	}
	return cluster.AuthorizeInternal(r, secret)
}

// handleInternalCacheGet serves raw cache entries to peers. It reads
// through Peek (no LRU promotion, no hit/miss counters) so cross-replica
// traffic doesn't distort local cache telemetry, falling back to the disk
// layer for flow artifacts that aged out of memory.
func (s *Server) handleInternalCacheGet(w http.ResponseWriter, r *http.Request) {
	if !s.authorizeInternal(r) {
		writeErr(w, http.StatusForbidden, "cluster secret required")
		return
	}
	key := r.PathValue("key")
	if !validCacheKey(key) {
		writeErr(w, http.StatusBadRequest, "malformed cache key")
		return
	}
	k := cache.Key(key)
	b, ok := s.lru.Peek(k)
	if !ok && s.flow.Disk != nil && strings.HasPrefix(key, "flow:") {
		if db, dok, err := s.flow.Disk.Get(k); err == nil && dok {
			b, ok = db, true
		}
	}
	if !ok {
		writeErrKind(w, http.StatusNotFound, ErrKindNotFound, "no cache entry")
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	w.Write(b)
}

// maxInternalEntryBytes bounds one pushed cache entry.
const maxInternalEntryBytes = 8 << 20

// handleInternalCachePut accepts a pushed cache entry from a peer. Peers
// only push non-degraded results (the cache wrappers refuse to store
// degraded ones at the source), so nothing accepted here can serve a
// reduced-quality answer.
func (s *Server) handleInternalCachePut(w http.ResponseWriter, r *http.Request) {
	if !s.authorizeInternal(r) {
		writeErr(w, http.StatusForbidden, "cluster secret required")
		return
	}
	key := r.PathValue("key")
	if !validCacheKey(key) {
		writeErr(w, http.StatusBadRequest, "malformed cache key")
		return
	}
	b, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxInternalEntryBytes))
	if err != nil {
		writeErr(w, http.StatusRequestEntityTooLarge, "cache entry too large")
		return
	}
	k := cache.Key(key)
	s.lru.Put(k, b)
	if s.flow.Disk != nil && strings.HasPrefix(key, "flow:") {
		_ = s.flow.Disk.Put(k, b)
	}
	w.WriteHeader(http.StatusNoContent)
}
