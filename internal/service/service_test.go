package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	_ "repro/internal/sim/quickexact" // register the pruned exact backend
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// fourDots is a tiny exact-solvable simulate request payload.
func fourDots() map[string]any {
	return map[string]any{
		"solver": "exgs",
		"dots": []map[string]any{
			{"x": 0, "y": 0},
			{"x": 3, "y": 0, "role": "perturber"},
			{"x": 0, "y": 4},
			{"x": 3, "y": 4, "role": "perturber"},
		},
	}
}

func TestSimulateWarmCacheByteIdentical(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	resp1, body1 := postJSON(t, ts.URL+"/v1/simulate", fourDots())
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("cold simulate: %d %s", resp1.StatusCode, body1)
	}
	if got := resp1.Header.Get("X-Cache"); got != "miss" {
		t.Fatalf("cold X-Cache = %q", got)
	}
	resp2, body2 := postJSON(t, ts.URL+"/v1/simulate", fourDots())
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("warm simulate: %d %s", resp2.StatusCode, body2)
	}
	if got := resp2.Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("warm X-Cache = %q", got)
	}
	if !bytes.Equal(body1, body2) {
		t.Fatalf("warm body differs:\n%s\n%s", body1, body2)
	}
	var sr simulateResponse
	if err := json.Unmarshal(body1, &sr); err != nil {
		t.Fatal(err)
	}
	if !sr.Exact || sr.Dots != 4 || sr.FreeDots != 2 || len(sr.Charges) != 4 {
		t.Fatalf("bad simulate response: %+v", sr)
	}
}

func TestFlowWarmCacheByteIdentical(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	req := map[string]any{"bench": "xor2", "engine": "ortho", "sqd": true}
	resp1, body1 := postJSON(t, ts.URL+"/v1/flow", req)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("cold flow: %d %s", resp1.StatusCode, body1)
	}
	if got := resp1.Header.Get("X-Cache"); got != "miss" {
		t.Fatalf("cold X-Cache = %q", got)
	}
	resp2, body2 := postJSON(t, ts.URL+"/v1/flow", req)
	if got := resp2.Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("warm X-Cache = %q", got)
	}
	if !bytes.Equal(body1, body2) {
		t.Fatal("warm flow body differs from cold")
	}
	var art struct {
		Name  string `json:"name"`
		SiDBs int    `json:"sidbs"`
		SQD   string `json:"sqd"`
	}
	if err := json.Unmarshal(body1, &art); err != nil {
		t.Fatal(err)
	}
	if art.Name != "xor2" || art.SiDBs == 0 || !strings.Contains(art.SQD, "siqad") {
		t.Fatalf("bad flow artifact: name=%q sidbs=%d", art.Name, art.SiDBs)
	}
}

func TestFlowDiskCacheSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	_, ts := newTestServer(t, Config{Workers: 1, CacheDir: dir})
	req := map[string]any{"bench": "xor2", "engine": "ortho"}
	resp1, body1 := postJSON(t, ts.URL+"/v1/flow", req)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("cold flow: %d %s", resp1.StatusCode, body1)
	}
	// A fresh server over the same cache dir must hit the disk layer.
	_, ts2 := newTestServer(t, Config{Workers: 1, CacheDir: dir})
	resp2, body2 := postJSON(t, ts2.URL+"/v1/flow", req)
	if got := resp2.Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("restarted server X-Cache = %q", got)
	}
	if !bytes.Equal(body1, body2) {
		t.Fatal("disk-replayed body differs")
	}
}

// TestFlowCancellation is the flow-wide cancellation acceptance test: the
// exact engine on majority_5_r1 runs for several seconds cold (measured
// ~5s), so a 200ms job deadline can only be met by the SAT search aborting
// mid-run. The request must come back canceled well under the cold
// runtime.
func TestFlowCancellation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	start := time.Now()
	resp, body := postJSON(t, ts.URL+"/v1/flow", map[string]any{
		"bench":      "majority_5_r1",
		"engine":     "exact",
		"timeout_ms": 200,
	})
	elapsed := time.Since(start)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("expected 504, got %d: %s", resp.StatusCode, body)
	}
	if elapsed > 3*time.Second {
		t.Fatalf("cancellation took %v; the solver did not stop", elapsed)
	}
	if !strings.Contains(string(body), "canceled") {
		t.Fatalf("body does not report cancellation: %s", body)
	}
}

// TestSimulateDegradesUnderDeadline requests an exhaustive enumeration
// that would otherwise effectively never finish (2^38 configurations)
// under a deadline too small for it. Instead of burning the budget and
// answering 504, the degradation ladder must hand the remaining time to
// the annealer and answer 200 with degraded:true (and never cache it).
func TestSimulateDegradesUnderDeadline(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	var dots []map[string]any
	for i := 0; i < 38; i++ {
		dots = append(dots, map[string]any{"x": (i % 8) * 3, "y": (i / 8) * 4})
	}
	start := time.Now()
	resp, body := postJSON(t, ts.URL+"/v1/simulate", map[string]any{
		"solver":     "exgs",
		"dots":       dots,
		"timeout_ms": 150,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("expected 200 degraded, got %d: %s", resp.StatusCode, body)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("degraded response took %v; the deadline was not honored", elapsed)
	}
	if resp.Header.Get("X-Degraded") != "true" {
		t.Fatalf("missing X-Degraded header; headers: %v", resp.Header)
	}
	var out struct {
		Solver   string `json:"solver"`
		Degraded bool   `json:"degraded"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if !out.Degraded || out.Solver != "anneal" {
		t.Fatalf("expected degraded anneal result, got %s", body)
	}

	// A degraded result must not poison the cache: the same request with a
	// generous deadline must get the full-quality (exact-capable) path, not
	// a warm copy of the degraded answer. 2^38 is still infeasible, so just
	// assert the retry was a cache miss.
	resp2, _ := postJSON(t, ts.URL+"/v1/simulate", map[string]any{
		"solver":     "exgs",
		"dots":       dots,
		"timeout_ms": 100,
	})
	if got := resp2.Header.Get("X-Cache"); got != "miss" {
		t.Fatalf("degraded result was cached: X-Cache = %q", got)
	}
}

func TestAsyncFlowJobLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, body := postJSON(t, ts.URL+"/v1/flow", map[string]any{
		"bench": "xor2", "engine": "ortho", "async": true,
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async submit: %d %s", resp.StatusCode, body)
	}
	var st Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.ID == "" {
		t.Fatalf("no job id in %s", body)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		r, b := getURL(t, ts.URL+"/v1/jobs/"+st.ID)
		if r.StatusCode != http.StatusOK {
			t.Fatalf("job get: %d %s", r.StatusCode, b)
		}
		var out struct {
			Job    Status          `json:"job"`
			Result json.RawMessage `json:"result"`
		}
		if err := json.Unmarshal(b, &out); err != nil {
			t.Fatal(err)
		}
		if out.Job.State == JobDone {
			if len(out.Result) == 0 {
				t.Fatal("done job has no result")
			}
			break
		}
		if out.Job.State == JobFailed || out.Job.State == JobCanceled {
			t.Fatalf("job ended %s: %s", out.Job.State, out.Job.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", out.Job.State)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestJobDeleteCancels(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	var dots []map[string]any
	for i := 0; i < 38; i++ {
		dots = append(dots, map[string]any{"x": (i % 8) * 3, "y": (i / 8) * 4})
	}
	resp, body := postJSON(t, ts.URL+"/v1/simulate", map[string]any{
		"solver": "exgs", "dots": dots, "async": true,
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async submit: %d %s", resp.StatusCode, body)
	}
	var st Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		r, b := getURL(t, ts.URL+"/v1/jobs/"+st.ID)
		r.Body.Close()
		var out struct {
			Job Status `json:"job"`
		}
		if err := json.Unmarshal(b, &out); err != nil {
			t.Fatal(err)
		}
		if out.Job.State == JobCanceled {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job not canceled: %s", out.Job.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestBackpressure429(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	// Saturate the single worker and the one queue slot with parked jobs.
	release := make(chan struct{})
	defer close(release)
	j1, err := s.Queue().Submit("park", 0, blockingJob(release))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j1, JobRunning)
	if _, err := s.Queue().Submit("park", 0, blockingJob(release)); err != nil {
		t.Fatal(err)
	}
	waitDepth(t, s, 1)
	resp, body := postJSON(t, ts.URL+"/v1/simulate", fourDots())
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("expected 429, got %d: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
}

func waitDepth(t *testing.T, s *Server, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if s.Queue().Depth() == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("queue depth never reached %d", want)
}

func TestGatesValidateAndMetadata(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	r, b := getURL(t, ts.URL+"/v1/gates")
	if r.StatusCode != http.StatusOK {
		t.Fatalf("gates: %d %s", r.StatusCode, b)
	}
	var gl struct {
		Gates []string `json:"gates"`
	}
	if err := json.Unmarshal(b, &gl); err != nil {
		t.Fatal(err)
	}
	if len(gl.Gates) == 0 {
		t.Fatal("no gates listed")
	}
	var wire string
	for _, g := range gl.Gates {
		if strings.HasPrefix(g, "wire:") {
			wire = g
			break
		}
	}
	if wire == "" {
		t.Fatalf("no wire variant in %v", gl.Gates)
	}
	resp1, body1 := postJSON(t, ts.URL+"/v1/gates/validate", map[string]any{"gate": wire})
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("validate: %d %s", resp1.StatusCode, body1)
	}
	var v validateResponse
	if err := json.Unmarshal(body1, &v); err != nil {
		t.Fatal(err)
	}
	if !v.OK {
		t.Fatalf("library wire failed validation: %s", body1)
	}
	resp2, body2 := postJSON(t, ts.URL+"/v1/gates/validate", map[string]any{"gate": wire})
	if got := resp2.Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("warm validate X-Cache = %q", got)
	}
	if !bytes.Equal(body1, body2) {
		t.Fatal("warm validate body differs")
	}

	r, b = getURL(t, ts.URL+"/healthz")
	if r.StatusCode != http.StatusOK || !strings.Contains(string(b), `"ok":true`) {
		t.Fatalf("healthz: %d %s", r.StatusCode, b)
	}
	r, b = getURL(t, ts.URL+"/metrics")
	if r.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d", r.StatusCode)
	}
	for _, want := range []string{"cache_mem_hits", "queue_submitted"} {
		if !strings.Contains(string(b), want) {
			t.Fatalf("metrics missing %q:\n%s", want, b)
		}
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	cases := []struct {
		path string
		body map[string]any
	}{
		{"/v1/flow", map[string]any{}},
		{"/v1/flow", map[string]any{"bench": "nope"}},
		{"/v1/flow", map[string]any{"bench": "xor2", "engine": "warp"}},
		{"/v1/simulate", map[string]any{}},
		{"/v1/simulate", map[string]any{"gate": "nope"}},
		{"/v1/simulate", map[string]any{"dots": []map[string]any{{"x": 0, "y": 0, "role": "weird"}}}},
		{"/v1/gates/validate", map[string]any{"gate": "nope"}},
	}
	for _, c := range cases {
		resp, body := postJSON(t, ts.URL+c.path, c.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s %v: expected 400, got %d: %s", c.path, c.body, resp.StatusCode, body)
		}
	}
	r, _ := getURL(t, ts.URL+"/v1/jobs/j99999999")
	if r.StatusCode != http.StatusNotFound {
		t.Fatalf("missing job: expected 404, got %d", r.StatusCode)
	}
}

// TestConcurrentRequests hammers the service from many goroutines; under
// -race it is the end-to-end data-race test over the queue, worker pool,
// and sharded cache.
func TestConcurrentRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4, QueueDepth: 64})
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				switch i % 3 {
				case 0:
					req := fourDots()
					// Vary the layout so some requests miss and some hit.
					req["dots"] = append(req["dots"].([]map[string]any),
						map[string]any{"x": 6 + g%2, "y": 0})
					resp, body := postJSON(t, ts.URL+"/v1/simulate", req)
					if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusTooManyRequests {
						errs <- fmt.Errorf("simulate: %d %s", resp.StatusCode, body)
					}
				case 1:
					r, _ := getURL(t, ts.URL+"/metrics")
					if r.StatusCode != http.StatusOK {
						errs <- fmt.Errorf("metrics: %d", r.StatusCode)
					}
				case 2:
					r, _ := getURL(t, ts.URL+"/healthz")
					if r.StatusCode != http.StatusOK {
						errs <- fmt.Errorf("healthz: %d", r.StatusCode)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func getURL(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}
