package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"repro/internal/journal"
)

// postJSONHeaders is postJSON with extra request headers (the idempotency
// tests need Idempotency-Key on the wire).
func postJSONHeaders(t *testing.T, url string, body any, hdrs map[string]string) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdrs {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// seedJournal writes a pre-crash journal: one flow job submitted and
// started, never finished — exactly what a SIGKILL mid-solve leaves.
func seedJournal(t *testing.T, dir, jobID string, body []byte) {
	t.Helper()
	j, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	events := []journal.Event{
		{Type: journal.EventSubmitted, JobID: jobID, Kind: "flow", Path: "/v1/flow", Body: body, RequestID: "req-precrash"},
		{Type: journal.EventStarted, JobID: jobID},
	}
	for _, ev := range events {
		if err := j.Append(ev); err != nil {
			t.Fatal(err)
		}
	}
	// No Close: a crash doesn't close files. The tail is record-aligned, so
	// replay sees both events.
}

func jobStatus(t *testing.T, url, id string) (Status, json.RawMessage) {
	t.Helper()
	resp, err := http.Get(url + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/jobs/%s: %d %s", id, resp.StatusCode, b)
	}
	var out struct {
		Job    Status          `json:"job"`
		Result json.RawMessage `json:"result"`
	}
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatalf("decode job status: %v (%s)", err, b)
	}
	return out.Job, out.Result
}

// TestRecoverInterrupted: default recovery surfaces a crash-stranded job
// as failed/interrupted — the id answers honestly, never 404.
func TestRecoverInterrupted(t *testing.T) {
	dir := t.TempDir()
	body, _ := json.Marshal(map[string]any{"bench": "xor2", "engine": "ortho"})
	seedJournal(t, dir, "j00000001", body)

	_, ts := newTestServer(t, Config{Workers: 1, JournalDir: dir})
	st, _ := jobStatus(t, ts.URL, "j00000001")
	if st.State != JobFailed || st.ErrorKind != ErrKindInterrupted {
		t.Fatalf("recovered job = state %q error_kind %q, want failed/interrupted", st.State, st.ErrorKind)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !bytes.Contains(mb, []byte(`journal_recovered_total{outcome="interrupted"} 1`)) {
		t.Fatalf("journal_recovered_total{outcome=\"interrupted\"} not exported:\n%s", mb)
	}
}

// TestRecoverResubmit: opt-in recovery re-enqueues the journaled request
// bytes under the pre-crash id and the job runs to completion.
func TestRecoverResubmit(t *testing.T) {
	dir := t.TempDir()
	body, _ := json.Marshal(map[string]any{"bench": "xor2", "engine": "ortho"})
	seedJournal(t, dir, "j00000001", body)

	_, ts := newTestServer(t, Config{Workers: 1, JournalDir: dir, RecoverMode: RecoverResubmit})
	deadline := time.Now().Add(30 * time.Second)
	for {
		st, res := jobStatus(t, ts.URL, "j00000001")
		if st.State == JobDone {
			if len(res) == 0 {
				t.Fatal("resubmitted job finished without a result body")
			}
			break
		}
		if st.State == JobFailed || st.State == JobCanceled {
			t.Fatalf("resubmitted job ended %q (%s)", st.State, st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("resubmitted job still %q after 30s", st.State)
		}
		time.Sleep(50 * time.Millisecond)
	}
	// A fresh submission must not collide with the recovered id.
	resp, b := postJSON(t, ts.URL+"/v1/simulate", fourDots())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-recovery simulate: %d %s", resp.StatusCode, b)
	}
	if id := resp.Header.Get("X-Job-Id"); id == "j00000001" {
		t.Fatal("fresh job reused the recovered id")
	}
}

// TestRecoverCompletedStub: a job that finished before the crash answers
// with its terminal state (no 404), though its result bytes are gone.
func TestRecoverCompletedStub(t *testing.T) {
	dir := t.TempDir()
	j, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range []journal.Event{
		{Type: journal.EventSubmitted, JobID: "j00000001", Kind: "simulate", Path: "/v1/simulate"},
		{Type: journal.EventStarted, JobID: "j00000001"},
		{Type: journal.EventFinished, JobID: "j00000001"},
	} {
		if err := j.Append(ev); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	_, ts := newTestServer(t, Config{Workers: 1, JournalDir: dir})
	st, _ := jobStatus(t, ts.URL, "j00000001")
	if st.State != JobDone {
		t.Fatalf("completed-at-crash job = state %q, want done", st.State)
	}
}

// TestJournalLifecycleAcrossDrain: a clean run journals submitted,
// started, and finished; a re-open recovers only terminal records.
func TestJournalLifecycleAcrossDrain(t *testing.T) {
	dir := t.TempDir()
	s, ts := newTestServer(t, Config{Workers: 1, JournalDir: dir})
	resp, b := postJSON(t, ts.URL+"/v1/simulate", fourDots())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("simulate: %d %s", resp.StatusCode, b)
	}
	id := resp.Header.Get("X-Job-Id")
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}

	j2, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	recs := j2.Recovered()
	found := false
	for _, r := range recs {
		if r.Submitted.JobID != id {
			continue
		}
		found = true
		if !r.Terminal() || r.State != journal.StateDone {
			t.Fatalf("job %s replays as %q, want done", id, r.State)
		}
	}
	if !found {
		t.Fatalf("job %s not in replayed table (%d records)", id, len(recs))
	}
}

// TestIdempotencyKeyReattach: the same Idempotency-Key returns the same
// job id and the same bytes, marked as a replay.
func TestIdempotencyKeyReattach(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	hdrs := map[string]string{"Idempotency-Key": "retry-abc-123"}
	resp1, body1 := postJSONHeaders(t, ts.URL+"/v1/simulate", fourDots(), hdrs)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first submit: %d %s", resp1.StatusCode, body1)
	}
	if resp1.Header.Get("X-Idempotent-Replay") != "" {
		t.Fatal("first submission marked as replay")
	}
	resp2, body2 := postJSONHeaders(t, ts.URL+"/v1/simulate", fourDots(), hdrs)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("replay submit: %d %s", resp2.StatusCode, body2)
	}
	if resp2.Header.Get("X-Idempotent-Replay") != "true" {
		t.Fatal("second submission not marked as replay")
	}
	id1, id2 := resp1.Header.Get("X-Job-Id"), resp2.Header.Get("X-Job-Id")
	if id1 == "" || id1 != id2 {
		t.Fatalf("job ids differ across idempotent retry: %q vs %q", id1, id2)
	}
	if !bytes.Equal(body1, body2) {
		t.Fatalf("replayed body differs:\n%s\n%s", body1, body2)
	}
	// A different key is a fresh job.
	resp3, _ := postJSONHeaders(t, ts.URL+"/v1/simulate", fourDots(), map[string]string{"Idempotency-Key": "other-key"})
	if resp3.Header.Get("X-Job-Id") == id1 {
		t.Fatal("distinct idempotency keys shared a job id")
	}
}

// TestIdempotencyKeyAsync: an async retry reattaches with a 202 pointing
// at the original job.
func TestIdempotencyKeyAsync(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	req := map[string]any{"bench": "xor2", "engine": "ortho", "async": true}
	hdrs := map[string]string{"Idempotency-Key": "async-key-1"}
	resp1, b1 := postJSONHeaders(t, ts.URL+"/v1/flow", req, hdrs)
	if resp1.StatusCode != http.StatusAccepted {
		t.Fatalf("async submit: %d %s", resp1.StatusCode, b1)
	}
	var st1 Status
	if err := json.Unmarshal(b1, &st1); err != nil {
		t.Fatal(err)
	}
	resp2, b2 := postJSONHeaders(t, ts.URL+"/v1/flow", req, hdrs)
	if resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("async replay: %d %s", resp2.StatusCode, b2)
	}
	if resp2.Header.Get("X-Idempotent-Replay") != "true" {
		t.Fatal("async replay not marked")
	}
	var st2 Status
	if err := json.Unmarshal(b2, &st2); err != nil {
		t.Fatal(err)
	}
	if st1.ID != st2.ID {
		t.Fatalf("async retry got a different job: %q vs %q", st1.ID, st2.ID)
	}
	if loc := resp2.Header.Get("Location"); loc != "/v1/jobs/"+st1.ID {
		t.Fatalf("replay Location = %q", loc)
	}
}

// TestDrainRetryAfter: 503s from a draining replica advertise when to
// come back, derived from the configured drain grace.
func TestDrainRetryAfter(t *testing.T) {
	grace := 30 * time.Second
	s, ts := newTestServer(t, Config{Workers: 1, DrainGrace: grace})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	resp, body := postJSON(t, ts.URL+"/v1/simulate", fourDots())
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining submit: %d %s", resp.StatusCode, body)
	}
	ra := resp.Header.Get("Retry-After")
	if ra == "" {
		t.Fatal("draining 503 has no Retry-After")
	}
	secs, err := strconv.Atoi(ra)
	if err != nil || secs < 1 || secs > int(grace.Seconds()) {
		t.Fatalf("Retry-After = %q, want integer in [1,%d]", ra, int(grace.Seconds()))
	}
}

// TestRecoveredStubAwaitGone exercises await's guard: syncing on a
// recovered done-stub (no result bytes) answers 410, not a panic.
func TestRecoveredStubAwaitGone(t *testing.T) {
	dir := t.TempDir()
	j, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	key := fmt.Sprintf("idem-%s", t.Name())
	for _, ev := range []journal.Event{
		{Type: journal.EventSubmitted, JobID: "j00000001", Kind: "simulate", Path: "/v1/simulate", IdemKey: key},
		{Type: journal.EventFinished, JobID: "j00000001"},
	} {
		if err := j.Append(ev); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	s, _ := newTestServer(t, Config{Workers: 1, JournalDir: dir})
	jb, ok := s.queue.Get("j00000001")
	if !ok {
		t.Fatal("stub not restored")
	}
	rec := httptest.NewRecorder()
	req, _ := http.NewRequest(http.MethodGet, "/", nil)
	s.await(rec, req, jb)
	if rec.Code != http.StatusGone {
		t.Fatalf("await on result-less stub = %d, want 410", rec.Code)
	}
}
