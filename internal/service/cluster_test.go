package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/faults"
	"repro/internal/obs"
)

// TestConcurrentIdenticalRequestsCoalesce is the single-flight
// acceptance test: N concurrent identical cold requests produce exactly
// one solver invocation and byte-identical responses.
func TestConcurrentIdenticalRequestsCoalesce(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 4})

	const n = 8
	var wg sync.WaitGroup
	bodies := make([][]byte, n)
	caches := make([]string, n)
	codes := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, body := postJSON(t, ts.URL+"/v1/simulate", fourDots())
			codes[i], bodies[i], caches[i] = resp.StatusCode, body, resp.Header.Get("X-Cache")
		}(i)
	}
	wg.Wait()

	misses := 0
	for i := 0; i < n; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, codes[i], bodies[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("request %d body differs:\n%s\n%s", i, bodies[i], bodies[0])
		}
		if caches[i] == "miss" {
			misses++
		}
	}
	if misses != 1 {
		t.Fatalf("%d X-Cache misses across %d identical concurrent requests; want exactly 1", misses, n)
	}
	if got := s.tr.Counter(obs.Labeled("jobs/cold_solves_total", "kind", "simulate")).Value(); got != 1 {
		t.Fatalf("cold solves = %d; want exactly 1 solver invocation", got)
	}
}

func TestBatchDedupAndFanout(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	sim, err := json.Marshal(fourDots())
	if err != nil {
		t.Fatal(err)
	}
	other := fourDots()
	other["dots"] = append(other["dots"].([]map[string]any), map[string]any{"x": 6, "y": 0, "role": "perturber"})
	sim2, err := json.Marshal(other)
	if err != nil {
		t.Fatal(err)
	}

	req := map[string]any{"items": []map[string]any{
		{"op": "simulate", "request": json.RawMessage(sim)},
		{"op": "simulate", "request": json.RawMessage(sim)},
		{"op": "simulate", "request": json.RawMessage(sim2)},
		{"op": "simulate", "request": json.RawMessage(sim)},
		{"op": "bogus"},
	}}
	resp, body := postJSON(t, ts.URL+"/v1/batch", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: %d %s", resp.StatusCode, body)
	}
	var br batchResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Items) != 5 {
		t.Fatalf("%d item results; want 5", len(br.Items))
	}
	if br.Unique != 2 || br.Deduplicated != 2 {
		t.Fatalf("unique=%d deduplicated=%d; want 2 and 2", br.Unique, br.Deduplicated)
	}
	if br.Items[0].Status != "ok" || br.Items[0].Cache == "dedup" {
		t.Fatalf("leader item: %+v", br.Items[0])
	}
	for _, i := range []int{1, 3} {
		it := br.Items[i]
		if it.Status != "ok" || it.Cache != "dedup" {
			t.Fatalf("follower item %d: %+v", i, it)
		}
		if !bytes.Equal(it.Result, br.Items[0].Result) {
			t.Fatalf("follower %d result differs from its leader", i)
		}
	}
	if br.Items[2].Status != "ok" || br.Items[2].Cache == "dedup" {
		t.Fatalf("distinct item: %+v", br.Items[2])
	}
	if bytes.Equal(br.Items[2].Result, br.Items[0].Result) {
		t.Fatal("distinct payloads produced identical results")
	}
	if br.Items[4].Status != "error" || !strings.Contains(br.Items[4].Error, "unknown op") {
		t.Fatalf("bad item: %+v", br.Items[4])
	}
	// Three simulate items with one key plus one with another: the solver
	// must have run once per unique key.
	if got := s.tr.Counter(obs.Labeled("jobs/cold_solves_total", "kind", "simulate")).Value(); got != 2 {
		t.Fatalf("cold solves = %d; want 2 (one per unique key)", got)
	}
	if got := s.tr.Counter("batch/deduped_total").Value(); got != 2 {
		t.Fatalf("batch_deduped_total = %d; want 2", got)
	}
}

func TestBatchRejectsAsyncItems(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	flowReq, _ := json.Marshal(map[string]any{"bench": "xor2", "engine": "ortho", "async": true})
	resp, body := postJSON(t, ts.URL+"/v1/batch", map[string]any{
		"items": []map[string]any{{"op": "flow", "request": json.RawMessage(flowReq)}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: %d %s", resp.StatusCode, body)
	}
	var br batchResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	if br.Items[0].Status != "error" || !strings.Contains(br.Items[0].Error, "async") {
		t.Fatalf("async item: %+v", br.Items[0])
	}
}

func TestBatchBounds(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, _ := postJSON(t, ts.URL+"/v1/batch", map[string]any{"items": []map[string]any{}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch: %d", resp.StatusCode)
	}
	items := make([]map[string]any, maxBatchItems+1)
	for i := range items {
		items[i] = map[string]any{"op": "simulate", "request": json.RawMessage(`{}`)}
	}
	resp, _ = postJSON(t, ts.URL+"/v1/batch", map[string]any{"items": items})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized batch: %d", resp.StatusCode)
	}
}

// TestAdmissionShedsByCostClass saturates the queue and checks the shed
// order: flow first, then simulate/validate, while reads always pass.
func TestAdmissionShedsByCostClass(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})

	// Fill the worker and the queue slot with blocking jobs: utilization
	// (1 running + 1 queued) / (1 worker + 1 slot) = 1.0.
	release := make(chan struct{})
	block := func(context.Context) (any, error) {
		<-release
		return nil, nil
	}
	if _, err := s.queue.Submit("test", 0, block); err != nil {
		t.Fatal(err)
	}
	// The queue slot frees only once a worker picks the job up; wait for
	// that before filling the slot itself.
	waitForCond(t, func() bool { return s.queue.Running() == 1 })
	if _, err := s.queue.Submit("test", 0, block); err != nil {
		t.Fatal(err)
	}
	defer close(release)
	waitForCond(t, func() bool { return s.queue.Running() == 1 && s.queue.Depth() == 1 })

	var gl struct {
		Gates []string `json:"gates"`
	}
	resp0, glBody := getRaw(t, ts.URL+"/v1/gates")
	if resp0.StatusCode != http.StatusOK || json.Unmarshal(glBody, &gl) != nil || len(gl.Gates) == 0 {
		t.Fatalf("gate list: %d %s", resp0.StatusCode, glBody)
	}

	for _, c := range []struct {
		path string
		body map[string]any
	}{
		{"/v1/flow", map[string]any{"bench": "xor2", "engine": "ortho"}},
		{"/v1/simulate", fourDots()},
		{"/v1/gates/validate", map[string]any{"gate": gl.Gates[0]}},
	} {
		resp, body := postJSON(t, ts.URL+c.path, c.body)
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("%s at full utilization: %d %s; want 429", c.path, resp.StatusCode, body)
		}
		var e struct {
			Kind string `json:"error_kind"`
		}
		if err := json.Unmarshal(body, &e); err != nil || e.Kind != ErrKindShed {
			t.Fatalf("%s: error_kind %q body %s", c.path, e.Kind, body)
		}
		if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
			t.Fatalf("%s: Retry-After %q; want a positive estimate", c.path, ra)
		}
	}

	// Reads are never shed.
	resp, err := http.Get(ts.URL + "/v1/gates")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("read at full utilization: %d; reads must never shed", resp.StatusCode)
	}

	// /healthz reports the saturation and the classes being shed.
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hz struct {
		Saturation struct {
			QueueDepth  int      `json:"queue_depth"`
			JobsRunning int      `json:"jobs_running"`
			Utilization float64  `json:"utilization"`
			Shedding    []string `json:"shedding"`
		} `json:"saturation"`
	}
	err = json.NewDecoder(resp.Body).Decode(&hz)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if hz.Saturation.QueueDepth != 1 || hz.Saturation.JobsRunning != 1 {
		t.Fatalf("healthz saturation: %+v", hz.Saturation)
	}
	if hz.Saturation.Utilization < 1 {
		t.Fatalf("healthz utilization %v; want 1", hz.Saturation.Utilization)
	}
	if len(hz.Saturation.Shedding) == 0 || hz.Saturation.Shedding[0] != "flow" {
		t.Fatalf("healthz shedding %v; want flow first", hz.Saturation.Shedding)
	}
	if got := s.tr.Counter(obs.Labeled("admission/shed_total", "class", "flow")).Value(); got != 1 {
		t.Fatalf("admission_shed_total{flow} = %d; want 1", got)
	}
}

func TestSheddingClassOrder(t *testing.T) {
	cases := []struct {
		u    float64
		want []string
	}{
		{0.5, nil},
		{0.8, []string{"flow"}},
		{0.95, []string{"flow", "simulate", "validate"}},
	}
	for _, c := range cases {
		got := sheddingClasses(c.u)
		if fmt.Sprint(got) != fmt.Sprint(c.want) {
			t.Errorf("sheddingClasses(%v) = %v, want %v", c.u, got, c.want)
		}
	}
}

const testCacheKey = "sim:00000000000000000000000000000000000000000000000000000000000000aa"

// TestInternalCacheRoundtrip exercises the peer-cache protocol endpoint
// without a secret (loopback trust).
func TestInternalCacheRoundtrip(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	put := func(key string, body []byte) int {
		req, err := http.NewRequest(http.MethodPut, ts.URL+"/internal/cache/"+key, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	if code := put(testCacheKey, []byte("payload")); code != http.StatusNoContent {
		t.Fatalf("put: %d", code)
	}
	resp, body := getRaw(t, ts.URL+"/internal/cache/"+testCacheKey)
	if resp.StatusCode != http.StatusOK || string(body) != "payload" {
		t.Fatalf("get: %d %q", resp.StatusCode, body)
	}
	resp, _ = getRaw(t, ts.URL+"/internal/cache/"+strings.Replace(testCacheKey, "aa", "bb", 1))
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("absent key: %d; want 404", resp.StatusCode)
	}
	for _, bad := range []string{"sim:short", "evil:" + strings.Repeat("a", 64), "sim:" + strings.Repeat("G", 64)} {
		resp, _ = getRaw(t, ts.URL+"/internal/cache/"+bad)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("malformed key %q: %d; want 400", bad, resp.StatusCode)
		}
	}
}

// TestInternalCacheSecret: with a fleet secret configured, loopback alone
// is no longer enough.
func TestInternalCacheSecret(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, Cluster: &cluster.Config{
		Self:   "127.0.0.1:1",
		Secret: "s3cret",
	}})
	t.Cleanup(s.node.Stop)

	req, err := http.NewRequest(http.MethodGet, ts.URL+"/internal/cache/"+testCacheKey, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("no secret: %d; want 403", resp.StatusCode)
	}
	req.Header.Set(cluster.SecretHeader, "s3cret")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("with secret: %d; want 404 (authorized, empty cache)", resp.StatusCode)
	}
}

// TestClusterForwarding boots two real peered replicas and checks that a
// request landing on the non-owner is forwarded to the owner, solved
// once, and served warm from the owner on repeat.
func TestClusterForwarding(t *testing.T) {
	servers, urls, addrs := startPeeredServers(t, 2)

	// Find which replica owns the test payload's cache key.
	b, err := json.Marshal(fourDots())
	if err != nil {
		t.Fatal(err)
	}
	var simReq simulateRequest
	if err := json.Unmarshal(b, &simReq); err != nil {
		t.Fatal(err)
	}
	op, err := servers[0].prepareSimulate(&simReq)
	if err != nil {
		t.Fatal(err)
	}
	ownerAddr, _ := servers[0].node.Owner(string(op.key))
	owner, nonOwner := 0, 1
	if ownerAddr == addrs[1] {
		owner, nonOwner = 1, 0
	}

	resp, body := postJSON(t, urls[nonOwner]+"/v1/simulate", fourDots())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("forwarded cold: %d %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get(clusterPeerHeader); got != addrs[owner] {
		t.Fatalf("X-Cluster-Peer = %q; want owner %q", got, addrs[owner])
	}
	if got := resp.Header.Get("X-Cache"); got != "miss" {
		t.Fatalf("forwarded cold X-Cache = %q; want miss", got)
	}

	// Repeat against the non-owner: forwarded again, served from the
	// owner's cache, byte-identical.
	resp2, body2 := postJSON(t, urls[nonOwner]+"/v1/simulate", fourDots())
	if resp2.Header.Get(clusterPeerHeader) != addrs[owner] || resp2.Header.Get("X-Cache") != "hit" {
		t.Fatalf("forwarded warm: peer=%q cache=%q", resp2.Header.Get(clusterPeerHeader), resp2.Header.Get("X-Cache"))
	}
	if !bytes.Equal(body, body2) {
		t.Fatal("forwarded warm body differs from cold")
	}

	// The owner solved once; the non-owner never solved at all.
	if got := servers[owner].tr.Counter(obs.Labeled("jobs/cold_solves_total", "kind", "simulate")).Value(); got != 1 {
		t.Fatalf("owner cold solves = %d; want 1", got)
	}
	if got := servers[nonOwner].tr.Counter(obs.Labeled("jobs/cold_solves_total", "kind", "simulate")).Value(); got != 0 {
		t.Fatalf("non-owner cold solves = %d; want 0", got)
	}
	if got := servers[nonOwner].tr.Counter(obs.Labeled("cluster/forwarded_total", "outcome", "ok")).Value(); got != 2 {
		t.Fatalf("forwarded ok = %d; want 2", got)
	}
}

// TestClusterForwardingFallsBackWhenOwnerDies: with the owner gone, the
// non-owner must solve locally instead of failing the request.
func TestClusterForwardingLocalFallback(t *testing.T) {
	servers, urls, addrs := startPeeredServers(t, 2)

	b, err := json.Marshal(fourDots())
	if err != nil {
		t.Fatal(err)
	}
	var simReq simulateRequest
	if err := json.Unmarshal(b, &simReq); err != nil {
		t.Fatal(err)
	}
	op, err := servers[0].prepareSimulate(&simReq)
	if err != nil {
		t.Fatal(err)
	}
	ownerAddr, _ := servers[0].node.Owner(string(op.key))
	owner, nonOwner := 0, 1
	if ownerAddr == addrs[1] {
		owner, nonOwner = 1, 0
	}

	// Kill the owner's listener; probes have not yet noticed, so the
	// non-owner still tries to forward — and must fall back locally.
	servers[owner].node.Stop()
	closeListener(t, urls[owner])

	resp, body := postJSON(t, urls[nonOwner]+"/v1/simulate", fourDots())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fallback: %d %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get(clusterPeerHeader); got != "" {
		t.Fatalf("fallback carried X-Cluster-Peer %q; want local handling", got)
	}
	if got := servers[nonOwner].tr.Counter(obs.Labeled("cluster/forwarded_total", "outcome", "error")).Value(); got == 0 {
		t.Fatal("forward error counter not incremented")
	}
}

// TestBatchKeylessPanicIsolated: a keyless (nocache) batch item executes
// on a raw fan-out goroutine outside the worker pool's recover; a panic
// there must become that item's error, not kill the process.
func TestBatchKeylessPanicIsolated(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	if err := faults.Arm("service.exec.panic=always", 1); err != nil {
		t.Fatal(err)
	}
	defer faults.Disarm()

	flowReq, _ := json.Marshal(map[string]any{"bench": "xor2", "engine": "ortho", "nocache": true})
	resp, body := postJSON(t, ts.URL+"/v1/batch", map[string]any{
		"items": []map[string]any{{"op": "flow", "request": json.RawMessage(flowReq)}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: %d %s", resp.StatusCode, body)
	}
	var br batchResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	if br.Items[0].Status != "error" || br.Items[0].ErrorKind != ErrKindPanic {
		t.Fatalf("keyless panicking item: %+v", br.Items[0])
	}
	if got := s.tr.Counter("jobs/panicked_total").Value(); got == 0 {
		t.Fatal("exec panic not counted in jobs_panicked_total")
	}

	// The daemon survived: a healthy request still completes.
	faults.Disarm()
	resp, body = postJSON(t, ts.URL+"/v1/simulate", fourDots())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("follow-up request after panic: %d %s", resp.StatusCode, body)
	}
}

// TestClusterForwardTimesOutToLocalFallback: an owner that accepts the
// connection but never answers (a stopped process holds its listener
// open; probes only notice later) must not hang the client — the
// forward deadline expires and the request is solved locally.
func TestClusterForwardTimesOutToLocalFallback(t *testing.T) {
	hangL, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hang := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done()
	})}
	go hang.Serve(hangL)
	defer hang.Close()
	hangAddr := hangL.Addr().String()

	selfL, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	selfAddr := selfL.Addr().String()
	s, err := New(Config{Workers: 2, JobTimeout: 2 * time.Second, Cluster: &cluster.Config{
		Self:  selfAddr,
		Peers: []string{hangAddr},
		// One probe round runs at startup (one strike; two mark a peer
		// dead), then nothing for the rest of the test: the hung peer
		// stays in the ring, as it would in the window before detection.
		ProbeInterval: time.Hour,
		ProbeTimeout:  10 * time.Millisecond,
		// The local fallback's cache lookup consults the hung owner too;
		// keep that bounded so it doesn't eat the local job budget.
		PeerTimeout: 10 * time.Millisecond,
	}})
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: s.Handler()}
	go hs.Serve(selfL)
	t.Cleanup(func() {
		s.node.Stop()
		hs.Close()
	})

	oldSlack := forwardSlack
	forwardSlack = 100 * time.Millisecond
	t.Cleanup(func() { forwardSlack = oldSlack })

	// Find a payload the hung peer owns, so the request forwards. The
	// request's own timeout_ms (clamped to JobTimeout) drives the forward
	// deadline, so the hang resolves in ~400ms.
	payload := fourDots()
	payload["timeout_ms"] = 300
	for i := 0; ; i++ {
		if i > 200 {
			t.Fatal("no candidate payload owned by the hung peer")
		}
		b, err := json.Marshal(payload)
		if err != nil {
			t.Fatal(err)
		}
		var simReq simulateRequest
		if err := json.Unmarshal(b, &simReq); err != nil {
			t.Fatal(err)
		}
		op, err := s.prepareSimulate(&simReq)
		if err != nil {
			t.Fatal(err)
		}
		if owner, self := s.node.Owner(string(op.key)); !self && owner == hangAddr {
			break
		}
		payload = fourDots()
		payload["timeout_ms"] = 300
		payload["dots"] = append(payload["dots"].([]map[string]any),
			map[string]any{"x": 8 + i, "y": 4, "role": "perturber"})
	}

	start := time.Now()
	resp, body := postJSON(t, "http://"+selfAddr+"/v1/simulate", payload)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fallback after forward timeout: %d %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get(clusterPeerHeader); got != "" {
		t.Fatalf("X-Cluster-Peer %q on a timed-out forward; want local handling", got)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("request took %v; the forward deadline did not bound the hang", elapsed)
	}
	if got := s.tr.Counter(obs.Labeled("cluster/forwarded_total", "outcome", "timeout")).Value(); got != 1 {
		t.Fatalf("forwarded timeout count = %d; want 1", got)
	}
	if got := s.tr.Counter(obs.Labeled("jobs/cold_solves_total", "kind", "simulate")).Value(); got != 1 {
		t.Fatalf("local cold solves = %d; want 1 (fallback solved here)", got)
	}
}

// TestRunCoalescedRerunsAfterLeaderDeadline: a joiner with a longer
// budget than the starter must not inherit the starter's
// DeadlineExceeded — it retries once under its own deadline.
func TestRunCoalescedRerunsAfterLeaderDeadline(t *testing.T) {
	s, err := New(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	var calls atomic.Int32
	started := make(chan struct{})
	op := &preparedOp{kind: "simulate", key: "sim:deadline-test"}
	op.exec = func(ctx context.Context, jtr *obs.Tracer) (*jobResult, error) {
		if calls.Add(1) == 1 {
			close(started)
			<-ctx.Done() // burn the starter's whole (short) budget
			return nil, ctx.Err()
		}
		return &jobResult{body: []byte("ok"), source: "miss"}, nil
	}

	leaderErr := make(chan error, 1)
	ctxA, cancelA := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancelA()
	go func() {
		_, err := s.runCoalesced(ctxA, op, obs.New())
		leaderErr <- err
	}()
	<-started

	ctxB, cancelB := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancelB()
	jr, err := s.runCoalesced(ctxB, op, obs.New())
	if err != nil {
		t.Fatalf("joiner with live budget failed: %v", err)
	}
	if string(jr.body) != "ok" {
		t.Fatalf("joiner result %q; want the rerun's result", jr.body)
	}
	if err := <-leaderErr; !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("starter error = %v; want DeadlineExceeded", err)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("exec calls = %d; want 2 (expired run + rerun)", got)
	}
	if got := s.tr.Counter("cluster/singleflight_rerun_total").Value(); got != 1 {
		t.Fatalf("singleflight rerun count = %d; want 1", got)
	}
}

type errorReader struct{}

func (errorReader) Read([]byte) (int, error) { return 0, errors.New("peer connection reset") }

// TestInternalCachePutErrorClassification: only a genuine size overrun
// is a 413; a mid-body read failure is a 400.
func TestInternalCachePutErrorClassification(t *testing.T) {
	s, _ := newTestServer(t, Config{Workers: 1})

	big := bytes.Repeat([]byte("x"), maxInternalEntryBytes+1)
	req := httptest.NewRequest(http.MethodPut, "/internal/cache/"+testCacheKey, bytes.NewReader(big))
	req.RemoteAddr = "127.0.0.1:9999"
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized entry: %d; want 413", rec.Code)
	}

	req = httptest.NewRequest(http.MethodPut, "/internal/cache/"+testCacheKey, errorReader{})
	req.RemoteAddr = "127.0.0.1:9999"
	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("read failure: %d; want 400, not a bogus 413", rec.Code)
	}
}

var testListeners sync.Map // url -> *http.Server

// startPeeredServers boots n real peered replicas on loopback listeners
// (httptest cannot be used: each replica must know its own routable
// address before the handler exists).
func startPeeredServers(t *testing.T, n int) (servers []*Server, urls, addrs []string) {
	t.Helper()
	listeners := make([]net.Listener, n)
	addrs = make([]string, n)
	for i := range listeners {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = l
		addrs[i] = l.Addr().String()
	}
	for i := range listeners {
		var peers []string
		for j, a := range addrs {
			if j != i {
				peers = append(peers, a)
			}
		}
		s, err := New(Config{Workers: 2, Cluster: &cluster.Config{
			Self:          addrs[i],
			Peers:         peers,
			Secret:        "test-fleet",
			ProbeInterval: 50 * time.Millisecond,
		}})
		if err != nil {
			t.Fatal(err)
		}
		hs := &http.Server{Handler: s.Handler()}
		go hs.Serve(listeners[i])
		url := "http://" + addrs[i]
		testListeners.Store(url, hs)
		t.Cleanup(func() {
			s.node.Stop()
			hs.Close()
		})
		servers = append(servers, s)
		urls = append(urls, url)
	}
	return servers, urls, addrs
}

func closeListener(t *testing.T, url string) {
	t.Helper()
	hs, ok := testListeners.Load(url)
	if !ok {
		t.Fatalf("no server for %s", url)
	}
	hs.(*http.Server).Close()
}

func getRaw(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body := new(bytes.Buffer)
	body.ReadFrom(resp.Body)
	resp.Body.Close()
	return resp, body.Bytes()
}

func waitForCond(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(2 * time.Millisecond)
	}
}
