package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"

	"repro/internal/defects"
	"repro/internal/obs"
)

// maxBatchItems bounds one batch so a single request cannot monopolize
// the worker pool indefinitely.
const maxBatchItems = 64

// batchConcurrency bounds how many unique sub-requests one batch job
// executes at once. The batch occupies a single worker slot; this is its
// internal fan-out width.
const batchConcurrency = 4

type batchItem struct {
	// Op selects the sub-request type: "flow", "simulate", or "validate".
	Op string `json:"op"`
	// Request is the corresponding single-endpoint request body.
	Request json.RawMessage `json:"request"`
}

type batchRequest struct {
	Items []batchItem `json:"items"`
	// TimeoutMS is the shared deadline for the whole batch (bounded by
	// the server's job timeout, like any job).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

type batchItemResult struct {
	Index     int    `json:"index"`
	Status    string `json:"status"` // "ok" | "error"
	Error     string `json:"error,omitempty"`
	ErrorKind string `json:"error_kind,omitempty"`
	// Cache is the sub-result's source: mem, disk, peer, hit, miss,
	// bypass, coalesced, or dedup (answered by an identical item in this
	// same batch).
	Cache    string          `json:"cache,omitempty"`
	Degraded bool            `json:"degraded,omitempty"`
	Result   json.RawMessage `json:"result,omitempty"`
}

type batchResponse struct {
	Items []batchItemResult `json:"items"`
	// Unique is how many distinct cache keys the batch contained;
	// Deduplicated is how many items shared another item's execution.
	Unique       int `json:"unique"`
	Deduplicated int `json:"deduplicated"`
}

// prepareBatchItem parses one sub-request through the same prepare path
// as its single-request endpoint.
func (s *Server) prepareBatchItem(it batchItem) (*preparedOp, error) {
	switch it.Op {
	case "flow":
		var req flowRequest
		if err := json.Unmarshal(it.Request, &req); err != nil {
			return nil, fmt.Errorf("bad flow request: %w", err)
		}
		if req.Async {
			return nil, errors.New("async is not supported inside a batch")
		}
		return s.prepareFlow(&req)
	case "simulate":
		var req simulateRequest
		if err := json.Unmarshal(it.Request, &req); err != nil {
			return nil, fmt.Errorf("bad simulate request: %w", err)
		}
		if req.Async {
			return nil, errors.New("async is not supported inside a batch")
		}
		return s.prepareSimulate(&req)
	case "validate":
		var req validateRequest
		if err := json.Unmarshal(it.Request, &req); err != nil {
			return nil, fmt.Errorf("bad validate request: %w", err)
		}
		return s.prepareValidate(&req)
	default:
		return nil, fmt.Errorf("unknown op %q (want flow, simulate, or validate)", it.Op)
	}
}

// batchClass is the admission class of the whole batch: its most
// expensive member class (flow > simulate > validate).
func batchClass(ops []*preparedOp) string {
	class := "validate"
	for _, op := range ops {
		if op == nil {
			continue
		}
		switch op.kind {
		case "flow":
			return "flow"
		case "simulate":
			class = "simulate"
		}
	}
	return class
}

// handleBatch canonicalizes, deduplicates, and fans out sub-requests
// inside one job with a shared deadline. Duplicate items (same canonical
// cache key) execute once and share the result; unique items run
// concurrently (bounded), each through the fleet single-flight group, so
// a batch coalesces with identical work from other requests and other
// replicas too.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	s.tr.Counter("http/batch").Inc()
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	var req batchRequest
	if !unmarshalBody(w, body, &req) {
		return
	}
	if len(req.Items) == 0 {
		writeErr(w, http.StatusBadRequest, "batch has no items")
		return
	}
	if len(req.Items) > maxBatchItems {
		writeErr(w, http.StatusBadRequest, "batch exceeds %d items", maxBatchItems)
		return
	}

	// Parse and canonicalize every item up front; shape errors are
	// per-item results, not batch failures.
	n := len(req.Items)
	ops := make([]*preparedOp, n)
	results := make([]batchItemResult, n)
	for i, it := range req.Items {
		results[i] = batchItemResult{Index: i}
		op, err := s.prepareBatchItem(it)
		if err != nil {
			results[i].Status = "error"
			results[i].Error = err.Error()
			results[i].ErrorKind = ErrKindError
			continue
		}
		ops[i] = op
	}

	// Deduplicate on canonical keys: the first item with a given key is
	// its group's leader; followers share the leader's result. Keyless
	// items (nocache, custom library) always run themselves.
	leaders := make([]int, 0, n)
	followerOf := make(map[int]int, n)
	leaderByKey := make(map[string]int, n)
	for i, op := range ops {
		if op == nil {
			continue
		}
		if op.key != "" {
			if l, ok := leaderByKey[string(op.key)]; ok {
				followerOf[i] = l
				continue
			}
			leaderByKey[string(op.key)] = i
		}
		leaders = append(leaders, i)
	}

	if !s.admit(w, batchClass(ops)) {
		return
	}
	rid := obs.RequestIDFromContext(r.Context())
	hop := obs.HopFromContext(r.Context())
	jtr := s.newJobTracer()

	fn := func(ctx context.Context) (any, error) {
		ctx = obs.ContextWithRequestID(ctx, rid)
		// Re-attach the hop marker: the queue hands jobs a fresh context, so
		// the fan-out's peer-cache operations would otherwise lose the
		// forwarding replica's identity.
		ctx = obs.ContextWithHop(ctx, hop)
		sp := jtr.Start("batch")
		sp.SetAttr("items", n)
		sp.SetAttr("unique", len(leaders))
		if hop.Forwarded {
			sp.SetAttr("forwarded", true)
			sp.SetAttr("peer", hop.Peer)
			sp.SetAttr("hop", hop.Index)
			if hop.ParentSpan != "" {
				sp.SetAttr("parent_span", hop.ParentSpan)
			}
		}
		defer sp.End()

		type outcome struct {
			jr  *jobResult
			err error
		}
		outcomes := make([]outcome, n)
		sem := make(chan struct{}, batchConcurrency)
		var wg sync.WaitGroup
		for _, i := range leaders {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				jr, err := s.runCoalesced(ctx, ops[i], jtr)
				outcomes[i] = outcome{jr, err}
			}(i)
		}
		wg.Wait()

		degraded := false
		okItems, errItems, deduped := 0, 0, 0
		for i := range results {
			if results[i].Status == "error" {
				errItems++
				continue
			}
			src := ""
			o := outcomes[i]
			if l, ok := followerOf[i]; ok {
				o = outcomes[l]
				src = "dedup"
				deduped++
			}
			if o.err != nil {
				results[i].Status = "error"
				results[i].Error = o.err.Error()
				results[i].ErrorKind = batchErrorKind(o.err)
				errItems++
				continue
			}
			if src == "" {
				src = o.jr.source
			}
			results[i].Status = "ok"
			results[i].Cache = src
			results[i].Degraded = o.jr.degraded
			results[i].Result = json.RawMessage(o.jr.body)
			if o.jr.degraded {
				degraded = true
			}
			okItems++
		}
		s.tr.Counter(obs.Labeled("batch/items_total", "outcome", "ok")).Add(int64(okItems))
		s.tr.Counter(obs.Labeled("batch/items_total", "outcome", "error")).Add(int64(errItems))
		s.tr.Counter("batch/deduped_total").Add(int64(deduped))

		body, err := json.Marshal(batchResponse{
			Items:        results,
			Unique:       len(leaders),
			Deduplicated: deduped,
		})
		if err != nil {
			return nil, err
		}
		source := "miss"
		if okItems > 0 && errItems == 0 && allHits(results) {
			source = "hit"
		}
		return &jobResult{body: append(body, '\n'), source: source, degraded: degraded}, nil
	}

	j, ok := s.submit(w, "batch", rid, jtr,
		&JobMeta{Path: "/v1/batch", Body: body, TimeoutMS: req.TimeoutMS}, fn)
	if !ok {
		return
	}
	s.await(w, r, j)
}

// allHits reports whether every successful item was served from a cache
// tier (the batch's X-Cache header).
func allHits(results []batchItemResult) bool {
	for _, r := range results {
		if r.Status != "ok" {
			continue
		}
		switch r.Cache {
		case "mem", "disk", "peer", "hit", "coalesced", "dedup":
		default:
			return false
		}
	}
	return true
}

// batchErrorKind classifies a sub-request error with the jobs API's
// taxonomy.
func batchErrorKind(err error) string {
	var pe *PanicError
	switch {
	case errors.As(err, &pe):
		return ErrKindPanic
	case errors.Is(err, context.DeadlineExceeded):
		return ErrKindTimeout
	case errors.Is(err, context.Canceled):
		return ErrKindCanceled
	case errors.Is(err, defects.ErrBlocked):
		return ErrKindDefectBlocked
	default:
		return ErrKindError
	}
}
