package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"testing"

	"repro/internal/faults"
	"repro/internal/obs/flight"
)

// peerOwnedSim returns a simulate payload whose cache key is owned by a
// PEER replica from servers[entry]'s perspective (so a request landing on
// entry is forwarded), plus the owner's index. seed varies the payload so
// different tests use different cache keys.
func peerOwnedSim(t *testing.T, servers []*Server, addrs []string, entry, seed int) (map[string]any, int) {
	t.Helper()
	for i := 0; i < 128; i++ {
		p := map[string]any{
			"solver": "exgs",
			"dots": []map[string]any{
				{"x": 0, "y": 0},
				{"x": 3, "y": 0, "role": "perturber"},
				{"x": 0, "y": 4 + 2*(seed+i)},
				{"x": 3, "y": 4 + 2*(seed+i), "role": "perturber"},
			},
		}
		b, err := json.Marshal(p)
		if err != nil {
			t.Fatal(err)
		}
		var req simulateRequest
		if err := json.Unmarshal(b, &req); err != nil {
			t.Fatal(err)
		}
		op, err := servers[entry].prepareSimulate(&req)
		if err != nil {
			t.Fatal(err)
		}
		ownerAddr, self := servers[entry].node.Owner(string(op.key))
		if self {
			continue
		}
		for j, a := range addrs {
			if a == ownerAddr {
				return p, j
			}
		}
	}
	t.Fatal("no peer-owned payload found in 128 variants")
	return nil, 0
}

// postWithRID posts payload with an explicit client request id.
func postWithRID(t *testing.T, url, rid string, payload any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(payload)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(requestIDHeader, rid)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// TestFleetTracePropagationAndStitching is the fleet-observability
// acceptance test: a request forwarded from the entry replica to the
// key's owner keeps its client-chosen request id end to end, the owner's
// job trace opens with a hop marker naming the entry replica, and the
// entry replica serves one stitched trace containing both hops under the
// original request id.
func TestFleetTracePropagationAndStitching(t *testing.T) {
	servers, urls, addrs := startPeeredServers(t, 2)
	const entry = 0
	payload, ownerIdx := peerOwnedSim(t, servers, addrs, entry, 0)
	const rid = "fedtest-stitch-0001"

	resp, body := postWithRID(t, urls[entry]+"/v1/simulate", rid, payload)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("forwarded simulate: %d %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get(requestIDHeader); got != rid {
		t.Fatalf("response request id = %q; want the client-chosen %q", got, rid)
	}
	if got := resp.Header.Get(clusterPeerHeader); got != addrs[ownerIdx] {
		t.Fatalf("X-Cluster-Peer = %q; want owner %q", got, addrs[ownerIdx])
	}

	// The owner retained the job trace under the ENTRY's request id, and
	// the trace opens with the hop marker naming the forwarding replica.
	waitForCond(t, func() bool {
		_, ok := servers[ownerIdx].flight.GetByRequestID(rid)
		return ok
	})
	ot, _ := servers[ownerIdx].flight.GetByRequestID(rid)
	if ot.Report == nil {
		t.Fatal("owner trace has no report")
	}
	hop := ot.Report.Stage("hop")
	if hop == nil {
		t.Fatalf("owner trace has no hop marker span:\n%s", ot.Report.RenderTree())
	}
	if hop.Attrs["forwarded"] != true {
		t.Fatalf("hop marker attrs = %v; want forwarded=true", hop.Attrs)
	}
	if hop.Attrs["peer"] != addrs[entry] {
		t.Fatalf("hop marker peer = %v; want entry %q", hop.Attrs["peer"], addrs[entry])
	}

	// The entry replica retained its forward stub under the same id.
	waitForCond(t, func() bool {
		_, ok := servers[entry].flight.Get("fwd-" + rid)
		return ok
	})

	// One stitched trace from the entry replica, under the original
	// request id, containing both hops.
	tresp, tbody := getRaw(t, urls[entry]+"/v1/traces/"+rid)
	if tresp.StatusCode != http.StatusOK {
		t.Fatalf("stitched trace: %d %s", tresp.StatusCode, tbody)
	}
	var st struct {
		RequestID string `json:"request_id"`
		Stitched  bool   `json:"stitched"`
		Hops      []struct {
			Peer  string `json:"peer"`
			Trace struct {
				ID        string `json:"id"`
				RequestID string `json:"request_id"`
			} `json:"trace"`
		} `json:"hops"`
		Trace struct {
			Stages []struct {
				Name string `json:"name"`
			} `json:"stages"`
		} `json:"trace"`
	}
	if err := json.Unmarshal(tbody, &st); err != nil {
		t.Fatalf("stitched trace decode: %v\n%s", err, tbody)
	}
	if !st.Stitched || st.RequestID != rid {
		t.Fatalf("stitched=%v request_id=%q; want true/%q", st.Stitched, st.RequestID, rid)
	}
	if len(st.Hops) != 2 {
		t.Fatalf("stitched hops = %d; want 2\n%s", len(st.Hops), tbody)
	}
	seen := map[string]string{}
	for _, h := range st.Hops {
		seen[h.Peer] = h.Trace.ID
		if h.Trace.RequestID != rid {
			t.Fatalf("hop %s request id = %q; want %q", h.Peer, h.Trace.RequestID, rid)
		}
	}
	if seen[addrs[entry]] != "fwd-"+rid {
		t.Fatalf("entry hop trace id = %q; want %q", seen[addrs[entry]], "fwd-"+rid)
	}
	if _, ok := seen[addrs[ownerIdx]]; !ok {
		t.Fatalf("stitched trace missing owner hop %q: %v", addrs[ownerIdx], seen)
	}
	if len(st.Trace.Stages) != 2 {
		t.Fatalf("merged report stages = %d; want one per hop", len(st.Trace.Stages))
	}
}

// TestFleetForwardedPanicRetainedAtEntry: when the owner's execution
// panics, the failure must land in the ENTRY replica's flight-recorder
// error ring too — the entry replica is the one the client talked to, so
// "why did my request fail" must be answerable there.
func TestFleetForwardedPanicRetainedAtEntry(t *testing.T) {
	servers, urls, addrs := startPeeredServers(t, 2)
	const entry = 0
	payload, _ := peerOwnedSim(t, servers, addrs, entry, 1000)
	const rid = "fedtest-panic-0001"

	if err := faults.Arm("service.exec.panic=always", 1); err != nil {
		t.Fatal(err)
	}
	defer faults.Disarm()

	resp, body := postWithRID(t, urls[entry]+"/v1/simulate", rid, payload)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("forwarded panic: %d %s; want 500", resp.StatusCode, body)
	}
	faults.Disarm()

	waitForCond(t, func() bool {
		_, ok := servers[entry].flight.Get("fwd-" + rid)
		return ok
	})
	et, _ := servers[entry].flight.Get("fwd-" + rid)
	if et.Class != flight.ClassError {
		t.Fatalf("entry forward stub class = %q; want error", et.Class)
	}
	if et.ErrorKind != ErrKindPanic {
		t.Fatalf("entry forward stub error kind = %q; want %q", et.ErrorKind, ErrKindPanic)
	}
	if et.RequestID != rid {
		t.Fatalf("entry forward stub request id = %q; want %q", et.RequestID, rid)
	}
}

// TestClusterOverviewSingleAndFleet: /v1/cluster/overview reports every
// live replica's saturation, cache tiers, SLO state, and ring membership
// from ANY replica; a single-replica daemon serves a one-member view.
func TestClusterOverview(t *testing.T) {
	servers, urls, _ := startPeeredServers(t, 2)
	_ = servers

	type ov struct {
		Self       string `json:"self"`
		AliveCount int    `json:"alive_count"`
		DeadCount  int    `json:"dead_count"`
		Replicas   []struct {
			Addr  string `json:"addr"`
			Alive bool   `json:"alive"`
			Stats *struct {
				Saturation struct {
					Workers       int `json:"workers"`
					QueueCapacity int `json:"queue_capacity"`
				} `json:"saturation"`
				Cache       map[string]map[string]any `json:"cache"`
				RingMembers int                       `json:"ring_members"`
			} `json:"stats"`
		} `json:"replicas"`
	}

	// Both members with stats, from either replica: the aggregator polls
	// in the background, so allow it a few rounds.
	for _, u := range urls {
		var o ov
		waitForCond(t, func() bool {
			resp, body := getRaw(t, u+"/v1/cluster/overview")
			if resp.StatusCode != http.StatusOK {
				return false
			}
			if err := json.Unmarshal(body, &o); err != nil {
				return false
			}
			if o.AliveCount != 2 || len(o.Replicas) != 2 {
				return false
			}
			for _, rep := range o.Replicas {
				if !rep.Alive || rep.Stats == nil {
					return false
				}
			}
			return true
		})
		for _, rep := range o.Replicas {
			if rep.Stats.Saturation.Workers <= 0 || rep.Stats.Saturation.QueueCapacity <= 0 {
				t.Fatalf("replica %s: empty saturation block: %+v", rep.Addr, rep.Stats.Saturation)
			}
			if _, ok := rep.Stats.Cache["mem"]; !ok {
				t.Fatalf("replica %s: no mem cache tier", rep.Addr)
			}
			if rep.Stats.RingMembers != 2 {
				t.Fatalf("replica %s: ring members = %d; want 2", rep.Addr, rep.Stats.RingMembers)
			}
		}
	}

	// Single-replica daemons serve a one-member overview on demand.
	_, ts := newTestServer(t, Config{Workers: 2})
	resp, body := getRaw(t, ts.URL+"/v1/cluster/overview")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("single overview: %d %s", resp.StatusCode, body)
	}
	var o ov
	if err := json.Unmarshal(body, &o); err != nil {
		t.Fatal(err)
	}
	if o.AliveCount != 1 || len(o.Replicas) != 1 || o.Replicas[0].Stats == nil {
		t.Fatalf("single overview: %s", body)
	}
}
