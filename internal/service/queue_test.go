package service

import (
	"context"
	"errors"
	"testing"
	"time"
)

// blockingJob returns a JobFunc that parks until released (or its context
// is canceled).
func blockingJob(release <-chan struct{}) JobFunc {
	return func(ctx context.Context) (any, error) {
		select {
		case <-release:
			return "done", nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

func TestQueueBackpressure(t *testing.T) {
	q := NewQueue(1, 1, 0, nil, nil)
	release := make(chan struct{})
	j1, err := q.Submit("t", 0, blockingJob(release))
	if err != nil {
		t.Fatal(err)
	}
	// Give the single worker time to pick up j1 so j2 occupies the buffer.
	waitState(t, j1, JobRunning)
	j2, err := q.Submit("t", 0, blockingJob(release))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Submit("t", 0, blockingJob(release)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("expected ErrQueueFull, got %v", err)
	}
	close(release)
	<-j1.Done()
	<-j2.Done()
	if j1.State() != JobDone || j2.State() != JobDone {
		t.Fatalf("states: %s %s", j1.State(), j2.State())
	}
}

func TestQueueCancelQueuedJob(t *testing.T) {
	q := NewQueue(1, 2, 0, nil, nil)
	release := make(chan struct{})
	defer close(release)
	j1, err := q.Submit("t", 0, blockingJob(release))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j1, JobRunning)
	j2, err := q.Submit("t", 0, blockingJob(release))
	if err != nil {
		t.Fatal(err)
	}
	j2.Cancel()
	<-j2.Done()
	if j2.State() != JobCanceled {
		t.Fatalf("queued job after Cancel: %s", j2.State())
	}
}

func TestQueueJobTimeout(t *testing.T) {
	q := NewQueue(1, 2, 0, nil, nil)
	j, err := q.Submit("t", 20*time.Millisecond, blockingJob(make(chan struct{})))
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-j.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("job did not time out")
	}
	if j.State() != JobCanceled {
		t.Fatalf("timed-out job state: %s", j.State())
	}
}

func TestQueueDrain(t *testing.T) {
	q := NewQueue(2, 4, 0, nil, nil)
	release := make(chan struct{})
	var jobs []*Job
	for i := 0; i < 3; i++ {
		j, err := q.Submit("t", 0, blockingJob(release))
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	go func() {
		time.Sleep(50 * time.Millisecond)
		close(release)
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := q.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	for _, j := range jobs {
		if j.State() != JobDone {
			t.Fatalf("in-flight job not drained: %s", j.State())
		}
	}
	if _, err := q.Submit("t", 0, blockingJob(nil)); !errors.Is(err, ErrDraining) {
		t.Fatalf("expected ErrDraining, got %v", err)
	}
}

func TestQueueDrainForceCancels(t *testing.T) {
	q := NewQueue(1, 1, 0, nil, nil)
	j, err := q.Submit("t", 0, blockingJob(make(chan struct{}))) // never released
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, JobRunning)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := q.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expected deadline error, got %v", err)
	}
	if j.State() != JobCanceled {
		t.Fatalf("force-canceled job state: %s", j.State())
	}
}

func waitState(t *testing.T, j *Job, want JobState) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if j.State() == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("job never reached %s (now %s)", want, j.State())
}
