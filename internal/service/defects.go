package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"

	"repro/internal/cache"
	"repro/internal/defects"
	"repro/internal/defects/sweep"
	"repro/internal/lattice"
	"repro/internal/obs"
	"repro/internal/sim"
)

// defectsSpec is the optional "defects" field shared by /v1/flow,
// /v1/simulate, and /v1/gates/validate. It names a surface either
// explicitly (List, cell coordinates) or generatively (Seed + Densities
// over a Width×Height cell region). The materialized surface — not the
// spec — participates in cache keys, so an explicit list and a generated
// spec that produce the same defects share cache entries, while any
// defect-bearing request can never collide with its pristine twin.
type defectsSpec struct {
	// List places defects explicitly: [{"x","y","type"}, ...].
	List *defects.Surface `json:"list,omitempty"`
	// Seed + Densities generate a random surface over a Width×Height cell
	// region anchored at the origin. Densities maps type names to expected
	// defects per 100 nm².
	Seed      int64              `json:"seed,omitempty"`
	Densities map[string]float64 `json:"densities,omitempty"`
	Width     int                `json:"width,omitempty"`
	Height    int                `json:"height,omitempty"`
}

// surface materializes the spec. A nil spec is the pristine surface.
func (ds *defectsSpec) surface() (*defects.Surface, error) {
	if ds == nil {
		return nil, nil
	}
	if !ds.List.Empty() && len(ds.Densities) > 0 {
		return nil, fmt.Errorf("defects: list and densities are mutually exclusive")
	}
	if !ds.List.Empty() {
		return ds.List, nil
	}
	if len(ds.Densities) == 0 {
		return nil, nil
	}
	if ds.Width <= 0 || ds.Height <= 0 {
		return nil, fmt.Errorf("defects: densities require a positive width and height (cells)")
	}
	d, err := defects.ParseDensities(ds.Densities)
	if err != nil {
		return nil, err
	}
	region := lattice.Box{MinX: 0, MinY: 0, MaxX: ds.Width - 1, MaxY: ds.Height - 1}
	return defects.Generate(ds.Seed, region, d), nil
}

// ---- POST /v1/defects/sweep ----

// Bounds keeping one sweep job from monopolizing the service: a sweep
// evaluates len(densities) × |library| × seeds gates.
const (
	maxSweepDensities = 8
	maxSweepSeeds     = 8
)

type sweepRequest struct {
	// Densities are total defect densities per 100 nm² (at most 8).
	Densities []float64 `json:"densities"`
	// Seeds is the number of random surfaces per (density, gate)
	// (default 2, at most 8).
	Seeds int `json:"seeds,omitempty"`
	// Seed is the base random seed.
	Seed int64 `json:"seed,omitempty"`
	// Workers bounds the in-job evaluation pool (default 2).
	Workers   int    `json:"workers,omitempty"`
	Solver    string `json:"solver,omitempty"`
	TimeoutMS int64  `json:"timeout_ms,omitempty"`
	Async     bool   `json:"async,omitempty"`
}

// prepareSweep validates a defect-sweep request and packages it as a
// preparedOp. Sweeps are uncached (every run re-evaluates; the canonical
// experiment artifact is cmd/defectsweep's BENCH_defects.json).
func (s *Server) prepareSweep(req *sweepRequest) (*preparedOp, error) {
	if len(req.Densities) == 0 {
		return nil, fmt.Errorf("densities is required")
	}
	if len(req.Densities) > maxSweepDensities {
		return nil, fmt.Errorf("at most %d densities per sweep", maxSweepDensities)
	}
	for _, d := range req.Densities {
		if d < 0 {
			return nil, fmt.Errorf("negative density %v", d)
		}
	}
	seeds := req.Seeds
	if seeds <= 0 {
		seeds = 2
	}
	if seeds > maxSweepSeeds {
		return nil, fmt.Errorf("at most %d seeds per sweep", maxSweepSeeds)
	}
	workers := req.Workers
	if workers <= 0 {
		workers = 2
	}
	if workers > 4 {
		workers = 4
	}
	cfg := sweep.Config{
		Densities: req.Densities,
		Seeds:     seeds,
		Seed:      req.Seed,
		Workers:   workers,
		Solver:    req.Solver,
	}
	if _, err := sim.Lookup(cfg.Solver); err != nil {
		return nil, err
	}
	op := &preparedOp{kind: "sweep", timeoutMS: req.TimeoutMS}
	op.exec = func(ctx context.Context, jtr *obs.Tracer) (*jobResult, error) {
		sp := jtr.Start("defect_sweep")
		defer sp.End()
		sp.SetAttr("densities", len(cfg.Densities))
		sp.SetAttr("seeds", cfg.Seeds)
		res, err := sweep.Run(ctx, cfg)
		if err != nil {
			return nil, err
		}
		s.coldSolve("sweep")
		body, err := json.Marshal(res)
		if err != nil {
			return nil, err
		}
		return &jobResult{body: append(body, '\n'), source: cache.SourceBypass}, nil
	}
	return op, nil
}

// handleDefectSweep runs a yield sweep as a (cancellable) job. Sweeps are
// billed as flow-class work by admission control: they hold a worker for
// longer than any other job kind.
func (s *Server) handleDefectSweep(w http.ResponseWriter, r *http.Request) {
	s.tr.Counter("http/defect_sweep").Inc()
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	var req sweepRequest
	if !unmarshalBody(w, body, &req) {
		return
	}
	op, err := s.prepareSweep(&req)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	if !s.admit(w, "flow") {
		return
	}
	rid := obs.RequestIDFromContext(r.Context())
	jtr := s.newJobTracer()
	j, ok := s.submit(w, "sweep", rid, jtr,
		&JobMeta{Path: "/v1/defects/sweep", Body: body, TimeoutMS: op.timeoutMS},
		s.jobFn(op, rid, obs.HopFromContext(r.Context()), jtr))
	if !ok {
		return
	}
	if req.Async {
		w.Header().Set("Location", "/v1/jobs/"+j.ID)
		writeJSON(w, http.StatusAccepted, j.Snapshot())
		return
	}
	s.await(w, r, j)
}
