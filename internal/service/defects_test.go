package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"
	"time"
)

// defectList is a small explicit defect surface in request form.
func defectList(dots ...map[string]any) map[string]any {
	return map[string]any{"list": dots}
}

// TestSimulateDefectsDistinctCache: a defect-bearing simulate must miss
// the cache its pristine twin warmed, produce a different result, and be
// byte-identical on its own warm hit.
func TestSimulateDefectsDistinctCache(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	pristine := fourDots()
	resp, body := postJSON(t, ts.URL+"/v1/simulate", pristine)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pristine simulate: %d %s", resp.StatusCode, body)
	}

	withDefects := fourDots()
	withDefects["defects"] = defectList(map[string]any{"x": 10, "y": 2, "type": "db"})
	resp1, body1 := postJSON(t, ts.URL+"/v1/simulate", withDefects)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("defect simulate: %d %s", resp1.StatusCode, body1)
	}
	if got := resp1.Header.Get("X-Cache"); got != "miss" {
		t.Fatalf("defect request hit the pristine cache: X-Cache = %q", got)
	}
	var sr simulateResponse
	if err := json.Unmarshal(body1, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Dots != 4 || len(sr.Charges) != 4 {
		t.Fatalf("response leaks defect pseudo-dots: dots=%d charges=%d", sr.Dots, len(sr.Charges))
	}
	if sr.Defects != 1 {
		t.Fatalf("defects = %d, want 1", sr.Defects)
	}

	resp2, body2 := postJSON(t, ts.URL+"/v1/simulate", withDefects)
	if got := resp2.Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("warm defect X-Cache = %q", got)
	}
	if !bytes.Equal(body1, body2) {
		t.Fatalf("warm defect body differs:\n%s\n%s", body1, body2)
	}
}

// TestValidateDefectBlocked: a defect inside a gate's exclusion zone must
// fail validation with the distinct defect_blocked taxonomy, while the
// pristine validation of the same gate stays OK (and cached separately).
func TestValidateDefectBlocked(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, Solver: "quickexact"})

	resp, body := postJSON(t, ts.URL+"/v1/gates/validate", map[string]any{"gate": "wire:iNW:oSE"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pristine validate: %d %s", resp.StatusCode, body)
	}
	var vr validateResponse
	if err := json.Unmarshal(body, &vr); err != nil {
		t.Fatal(err)
	}
	if !vr.OK || vr.FailKind != "" || vr.DefectBlocked {
		t.Fatalf("pristine wire: %+v", vr)
	}

	// The wire design's first pair anchors at cell (15, 0); a DB defect on
	// top of it is inside the exclusion zone.
	req := map[string]any{
		"gate":    "wire:iNW:oSE",
		"defects": defectList(map[string]any{"x": 15, "y": 0, "type": "db"}),
	}
	resp, body = postJSON(t, ts.URL+"/v1/gates/validate", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("defect validate: %d %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Cache"); got != "miss" {
		t.Fatalf("defect validate hit the pristine cache: X-Cache = %q", got)
	}
	if err := json.Unmarshal(body, &vr); err != nil {
		t.Fatal(err)
	}
	if vr.OK {
		t.Fatalf("gate validated OK with a defect on a dot: %s", body)
	}
	if vr.FailKind != "defect_blocked" || !vr.DefectBlocked {
		t.Fatalf("fail_kind = %q defect_blocked=%v, want defect_blocked/true", vr.FailKind, vr.DefectBlocked)
	}
}

// TestFlowDefectsDistinctCache: the same netlist with and without defects
// must occupy distinct flow-cache entries.
func TestFlowDefectsDistinctCache(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	pristine := map[string]any{"bench": "xor2", "engine": "ortho"}
	resp, body := postJSON(t, ts.URL+"/v1/flow", pristine)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pristine flow: %d %s", resp.StatusCode, body)
	}
	// Warm the pristine entry, then issue the defect twin: it must miss.
	resp, _ = postJSON(t, ts.URL+"/v1/flow", pristine)
	if got := resp.Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("warm pristine flow X-Cache = %q", got)
	}

	withDefects := map[string]any{
		"bench": "xor2", "engine": "ortho",
		"defects": map[string]any{
			"seed":      42,
			"densities": map[string]any{"siloxane": 0.2},
			"width":     300, "height": 200,
		},
	}
	resp, body = postJSON(t, ts.URL+"/v1/flow", withDefects)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("defect flow: %d %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Cache"); got != "miss" {
		t.Fatalf("defect flow hit the pristine cache: X-Cache = %q", got)
	}
	resp, body2 := postJSON(t, ts.URL+"/v1/flow", withDefects)
	if got := resp.Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("warm defect flow X-Cache = %q", got)
	}
	if !bytes.Equal(body, body2) {
		t.Fatal("warm defect flow body differs from cold")
	}
}

// TestDefectSweepEndpoint: a small synchronous sweep returns a yield
// table; an async sweep cancelled mid-run reports error_kind "canceled"
// and the queue drains (no jobs left running).
func TestDefectSweepEndpoint(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2, Solver: "quickexact"})

	resp, body := postJSON(t, ts.URL+"/v1/defects/sweep", map[string]any{
		"densities": []float64{0.2}, "seeds": 1, "workers": 2,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep: %d %s", resp.StatusCode, body)
	}
	var res struct {
		Gates  int `json:"gates"`
		Points []struct {
			Yield float64 `json:"yield"`
			OK    int     `json:"ok"`
		} `json:"points"`
	}
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if res.Gates == 0 || len(res.Points) != 1 {
		t.Fatalf("degenerate sweep result: %s", body)
	}

	// Async sweep big enough to still be running when the cancel lands.
	resp, body = postJSON(t, ts.URL+"/v1/defects/sweep", map[string]any{
		"densities": []float64{0.5, 1, 2, 4}, "seeds": 8, "async": true,
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async sweep: %d %s", resp.StatusCode, body)
	}
	var snap struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &snap); err != nil || snap.ID == "" {
		t.Fatalf("no job id in %s", body)
	}
	time.Sleep(100 * time.Millisecond)
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+snap.ID, nil)
	if _, err := http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(15 * time.Second)
	for {
		j, ok := s.queue.Get(snap.ID)
		if !ok {
			t.Fatal("job vanished")
		}
		st := j.Snapshot()
		if st.State == JobCanceled || st.State == JobDone || st.State == JobFailed {
			if st.State != JobCanceled || st.ErrorKind != ErrKindCanceled {
				t.Fatalf("cancelled sweep: state=%v error_kind=%q", st.State, st.ErrorKind)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("sweep did not cancel in time")
		}
		time.Sleep(50 * time.Millisecond)
	}
	// The worker pool must drain: no job may stay running.
	deadline = time.Now().Add(10 * time.Second)
	for s.queue.Running() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("queue still running %d jobs after cancel", s.queue.Running())
		}
		time.Sleep(50 * time.Millisecond)
	}
}
