// Package service exposes the Bestagon design flow as a long-running HTTP
// JSON service: a bounded job queue with a worker pool executes flow runs,
// ground-state simulations, and gate validations under per-job deadlines,
// with content-addressed result caching (internal/cache) in front of every
// compute path and cooperative cancellation (context) threaded through
// every solver loop underneath.
package service

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/defects"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/obs/obslog"
)

// JobState is the lifecycle state of a queued job.
type JobState string

// Job lifecycle states.
const (
	JobQueued   JobState = "queued"
	JobRunning  JobState = "running"
	JobDone     JobState = "done"
	JobFailed   JobState = "failed"
	JobCanceled JobState = "canceled"
)

// Queue submission errors.
var (
	// ErrQueueFull is returned when the bounded queue has no free slot;
	// the HTTP layer maps it to 429 with a Retry-After header.
	ErrQueueFull = errors.New("service: job queue is full")
	// ErrDraining is returned once Drain has begun; the HTTP layer maps it
	// to 503.
	ErrDraining = errors.New("service: queue is draining")
)

// JobFunc is the work a job performs. It must honor ctx: cancellation or
// deadline expiry is expected to abort the computation promptly (every
// solver underneath the service is context-aware).
type JobFunc func(ctx context.Context) (any, error)

// PanicError is the error a job fails with when its JobFunc panicked. The
// worker recovers the panic (keeping the pool alive), captures the stack,
// and records the job as failed with ErrorKind "panic".
type PanicError struct {
	// Value is what was passed to panic().
	Value any
	// Stack is the panicking goroutine's stack at recovery.
	Stack []byte
}

// Error renders the panic value (the stack is kept out of the error string
// — it goes to the structured log, not to API clients).
func (p *PanicError) Error() string { return fmt.Sprintf("job panicked: %v", p.Value) }

// newPanicError captures a recovered panic with its stack, for code paths
// (like single-flight executions) that run outside safeRun's isolation.
func newPanicError(v any) *PanicError {
	return &PanicError{Value: v, Stack: debug.Stack()}
}

// DegradedResult is implemented by job results that carry a degradation
// marker (deadline pressure forced a cheaper engine); the queue surfaces
// it as ErrorKind "degraded" on otherwise-successful jobs.
type DegradedResult interface{ DegradedResult() bool }

// Error kinds, the machine-readable failure taxonomy of the jobs API.
const (
	ErrKindPanic    = "panic"
	ErrKindTimeout  = "timeout"
	ErrKindCanceled = "canceled"
	ErrKindDegraded = "degraded"
	ErrKindError    = "error"
	ErrKindNotFound = "not_found"
	// ErrKindDefectBlocked marks jobs that failed because surface defects
	// made the layout infeasible (errors wrapping defects.ErrBlocked) —
	// the design is sound, the surface is not.
	ErrKindDefectBlocked = "defect_blocked"
	// ErrKindInterrupted marks jobs that were queued or running when the
	// daemon died and were not resubmitted on restart: the work was lost to
	// the crash, not to anything wrong with the request.
	ErrKindInterrupted = "interrupted"
)

// JobMeta is the submission payload the write-ahead journal records with a
// job: everything a restarted daemon needs to re-create the work (or to
// answer honestly that it cannot).
type JobMeta struct {
	// Path is the endpoint the request arrived on ("/v1/flow", ...), the
	// dispatch key recovery re-prepares the body under.
	Path string
	// Body is the canonical request body, verbatim.
	Body []byte
	// Key is the op's content-addressed cache key ("" when uncacheable).
	Key string
	// IdemKey is the client's Idempotency-Key header value, if any.
	IdemKey string
	// TimeoutMS is the request's own deadline field (pre-clamping).
	TimeoutMS int64
}

// Job is one unit of queued work.
type Job struct {
	ID   string
	Kind string

	fn      JobFunc
	timeout time.Duration
	// requestID is the id of the HTTP request that submitted the job and
	// queue is the owning queue; both are set before enqueue and never
	// mutated, so they are read without the lock.
	requestID string
	queue     *Queue
	tracer    *obs.Tracer
	// meta is the journaled submission payload (nil for unjournaled
	// submissions); set before enqueue and never mutated.
	meta *JobMeta

	mu       sync.Mutex
	state    JobState
	err      string
	errKind  string
	result   any
	created  time.Time
	started  time.Time
	finished time.Time
	cancel   context.CancelFunc

	// done is closed exactly once when the job reaches a terminal state.
	done chan struct{}
}

// Tracer returns the per-job tracer attached at submission (nil when the
// job kind records no trace).
func (j *Job) Tracer() *obs.Tracer { return j.tracer }

// RequestID returns the id of the HTTP request that submitted the job
// ("" for untraced submissions), the join key between the request log,
// the job-lifecycle log lines, and the flight-recorder trace.
func (j *Job) RequestID() string { return j.requestID }

// Meta returns the journaled submission payload (nil for unjournaled
// submissions).
func (j *Job) Meta() *JobMeta { return j.meta }

// CreatedAt returns the submission time.
func (j *Job) CreatedAt() time.Time {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.created
}

// RunSeconds returns the execution wall time in seconds: 0 until the job
// starts, elapsed-so-far while running, total once terminal.
func (j *Job) RunSeconds() float64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.started.IsZero() {
		return 0
	}
	end := j.finished
	if end.IsZero() {
		end = time.Now()
	}
	return end.Sub(j.started).Seconds()
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// State returns the current lifecycle state.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Result returns the job outcome once done; before a terminal state it
// returns (nil, "").
func (j *Job) Result() (any, string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result, j.err
}

// ErrorKind returns the machine-readable failure class ("panic",
// "timeout", "canceled", "degraded", "error"), or "" for a clean success
// or a job not yet terminal.
func (j *Job) ErrorKind() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.errKind
}

// Cancel requests cancellation: a queued job completes immediately as
// canceled; a running job has its context canceled and finishes when the
// computation unwinds.
func (j *Job) Cancel() {
	j.mu.Lock()
	switch j.state {
	case JobQueued:
		j.state = JobCanceled
		j.err = context.Canceled.Error()
		j.errKind = ErrKindCanceled
		j.finished = time.Now()
		close(j.done)
		j.mu.Unlock()
		if j.queue != nil {
			j.queue.finishJob(j)
		}
		return
	case JobRunning:
		cancel := j.cancel
		j.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		return
	}
	j.mu.Unlock()
}

// Status is a serializable job snapshot.
type Status struct {
	ID         string   `json:"id"`
	Kind       string   `json:"kind"`
	RequestID  string   `json:"request_id,omitempty"`
	State      JobState `json:"state"`
	Error      string   `json:"error,omitempty"`
	ErrorKind  string   `json:"error_kind,omitempty"`
	CreatedAt  string   `json:"created_at"`
	StartedAt  string   `json:"started_at,omitempty"`
	FinishedAt string   `json:"finished_at,omitempty"`
	// RunMS is the execution time (running: so far; terminal: total).
	RunMS int64 `json:"run_ms,omitempty"`
}

// Snapshot renders the job for /v1/jobs responses.
func (j *Job) Snapshot() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{
		ID:        j.ID,
		Kind:      j.Kind,
		RequestID: j.requestID,
		State:     j.state,
		Error:     j.err,
		ErrorKind: j.errKind,
		CreatedAt: j.created.UTC().Format(time.RFC3339Nano),
	}
	if !j.started.IsZero() {
		st.StartedAt = j.started.UTC().Format(time.RFC3339Nano)
		end := j.finished
		if end.IsZero() {
			end = time.Now()
		}
		st.RunMS = end.Sub(j.started).Milliseconds()
	}
	if !j.finished.IsZero() {
		st.FinishedAt = j.finished.UTC().Format(time.RFC3339Nano)
	}
	return st
}

// maxRetainedJobs bounds the finished-job history kept for /v1/jobs
// lookups; the oldest finished jobs are pruned beyond it.
const maxRetainedJobs = 1024

// Queue is a bounded job queue executed by a fixed worker pool. Submit
// never blocks: when the buffer is full it fails fast with ErrQueueFull so
// the HTTP layer can apply backpressure instead of stacking goroutines.
type Queue struct {
	ch      chan *Job
	timeout time.Duration

	mu     sync.Mutex
	byID   map[string]*Job
	order  []string // submission order, for pruning
	nextID int
	closed bool
	// drainStarted is when Drain began ("zero" before), the basis for the
	// Retry-After a draining replica advertises.
	drainStarted time.Time

	wg       sync.WaitGroup
	runningN atomic.Int64

	tr                                               *obs.Tracer
	log                                              *obslog.Logger
	submitted, completed, failed, canceled, rejected *obs.Counter
	panicked                                         *obs.Counter
	depth, running                                   *obs.Gauge
	waitHist                                         *obs.Histogram

	// onFinish is invoked once per job as it reaches a terminal state
	// (after its done channel closes), from the finishing goroutine. The
	// service hooks the flight recorder here. Set before the first
	// Submit; it is not synchronized for later swaps.
	onFinish func(*Job)
	// onSubmit is invoked under q.mu, after the job id is assigned but
	// BEFORE the job becomes visible to any worker — the write-ahead
	// ordering the journal depends on: the submission is durable before
	// the work can start. Set before the first Submit.
	onSubmit func(*Job)
	// onStart is invoked as a worker picks the job up (after its state is
	// running), from the worker goroutine. Set before the first Submit.
	onStart func(*Job)
}

// OnFinish registers the terminal-state hook (see the field doc).
func (q *Queue) OnFinish(fn func(*Job)) { q.onFinish = fn }

// OnSubmit registers the pre-visibility submission hook (see the field
// doc). The hook runs under the queue lock; it must not call back into
// the queue.
func (q *Queue) OnSubmit(fn func(*Job)) { q.onSubmit = fn }

// OnStart registers the job-start hook (see the field doc).
func (q *Queue) OnStart(fn func(*Job)) { q.onStart = fn }

// NewQueue starts a queue with the given worker count, buffer depth, and
// default per-job timeout (0 = no deadline). The tracer (nil-safe)
// receives queue metrics under "queue/"; the logger (nil-safe) receives
// panic stacks and failure records.
func NewQueue(workers, depth int, timeout time.Duration, tr *obs.Tracer, log *obslog.Logger) *Queue {
	if workers <= 0 {
		workers = 1
	}
	if depth <= 0 {
		depth = 16
	}
	q := &Queue{
		ch:        make(chan *Job, depth),
		timeout:   timeout,
		byID:      make(map[string]*Job),
		tr:        tr,
		log:       log,
		waitHist:  tr.Histogram("queue/wait_seconds", obs.DefBuckets...),
		panicked:  tr.Counter("jobs/panicked_total"),
		submitted: tr.Counter("queue/submitted"),
		completed: tr.Counter("queue/completed"),
		failed:    tr.Counter("queue/failed"),
		canceled:  tr.Counter("queue/canceled"),
		rejected:  tr.Counter("queue/rejected"),
		depth:     tr.Gauge("queue/depth"),
		running:   tr.Gauge("queue/running"),
	}
	q.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go q.worker()
	}
	return q
}

// Submit enqueues work. timeout overrides the queue default when positive.
func (q *Queue) Submit(kind string, timeout time.Duration, fn JobFunc) (*Job, error) {
	return q.SubmitTraced(kind, "", nil, timeout, fn)
}

// SubmitTraced enqueues work with its request-log join key and per-job
// tracer fixed at submission, before any worker can observe the job —
// attaching them afterwards would race a fast job's finish hook.
func (q *Queue) SubmitTraced(kind, requestID string, tr *obs.Tracer, timeout time.Duration, fn JobFunc) (*Job, error) {
	return q.SubmitWith(SubmitOptions{
		Kind: kind, RequestID: requestID, Tracer: tr, Timeout: timeout,
	}, fn)
}

// SubmitOptions parameterizes SubmitWith.
type SubmitOptions struct {
	Kind      string
	RequestID string
	Tracer    *obs.Tracer
	// Timeout overrides the queue default when positive.
	Timeout time.Duration
	// Meta is the journaled submission payload (nil = unjournaled).
	Meta *JobMeta
	// ID reuses an explicit job id instead of assigning the next one —
	// crash recovery resubmits journaled jobs under their pre-crash ids so
	// clients polling across the restart keep a valid handle. The caller
	// must have advanced the id sequence past it (see EnsureNextID).
	ID string
}

// SubmitWith enqueues work. The capacity check, id assignment, onSubmit
// hook, and channel insert all happen under one critical section, so the
// submission hook (the journal append) is guaranteed to complete before
// any worker can observe the job, and a journaled job can never be
// rejected after the fact.
func (q *Queue) SubmitWith(opts SubmitOptions, fn JobFunc) (*Job, error) {
	timeout := opts.Timeout
	if timeout <= 0 {
		timeout = q.timeout
	}
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return nil, ErrDraining
	}
	if len(q.ch) == cap(q.ch) {
		q.mu.Unlock()
		q.rejected.Inc()
		return nil, ErrQueueFull
	}
	id := opts.ID
	if id == "" {
		q.nextID++
		id = fmt.Sprintf("j%08d", q.nextID)
	}
	j := &Job{
		ID:        id,
		Kind:      opts.Kind,
		fn:        fn,
		timeout:   timeout,
		requestID: opts.RequestID,
		queue:     q,
		tracer:    opts.Tracer,
		meta:      opts.Meta,
		state:     JobQueued,
		created:   time.Now(),
		done:      make(chan struct{}),
	}
	if q.onSubmit != nil {
		q.onSubmit(j)
	}
	// Cannot block: capacity was checked under this same lock and only
	// submitters (serialized by it) fill the channel.
	q.ch <- j
	q.byID[j.ID] = j
	q.order = append(q.order, j.ID)
	q.pruneLocked()
	q.mu.Unlock()
	q.submitted.Inc()
	q.depth.Set(float64(len(q.ch)))
	q.log.Debug("job_enqueued",
		obslog.F("job_id", j.ID),
		obslog.F("kind", j.Kind),
		obslog.F("request_id", j.requestID))
	return j, nil
}

// EnsureNextID advances the job-id sequence past id (a "j%08d" string),
// so ids assigned after crash recovery never collide with pre-crash ids
// resubmitted verbatim. Unparseable ids are ignored.
func (q *Queue) EnsureNextID(id string) {
	var n int
	if _, err := fmt.Sscanf(id, "j%08d", &n); err != nil || n <= 0 {
		return
	}
	q.mu.Lock()
	if n > q.nextID {
		q.nextID = n
	}
	q.mu.Unlock()
}

// Restore inserts a pre-built terminal job into the lookup table without
// ever enqueueing it — crash recovery's way of making a pre-crash job id
// answer honestly on /v1/jobs/{id} instead of 404ing. It returns nil when
// the id already exists. fireFinish routes the job through the normal
// terminal hook (journal + flight recorder); recovery sets it only for
// newly-interrupted jobs, whose terminal state the journal has not yet
// witnessed.
func (q *Queue) Restore(id, kind, requestID string, state JobState, errKind, errMsg string, created time.Time, fireFinish bool) *Job {
	if created.IsZero() {
		created = time.Now()
	}
	j := &Job{
		ID:        id,
		Kind:      kind,
		requestID: requestID,
		queue:     q,
		state:     state,
		err:       errMsg,
		errKind:   errKind,
		created:   created,
		finished:  time.Now(),
		done:      make(chan struct{}),
	}
	close(j.done)
	q.mu.Lock()
	if _, ok := q.byID[id]; ok {
		q.mu.Unlock()
		return nil
	}
	q.byID[id] = j
	q.order = append(q.order, id)
	q.pruneLocked()
	q.mu.Unlock()
	if state == JobFailed {
		q.failed.Inc()
	}
	if fireFinish {
		q.finishJob(j)
	}
	return j
}

// finishJob emits the terminal lifecycle log line and fires the OnFinish
// hook. Called exactly once per job, after its done channel closes.
func (q *Queue) finishJob(j *Job) {
	st := j.Snapshot()
	q.log.Info("job_finish",
		obslog.F("job_id", st.ID),
		obslog.F("kind", st.Kind),
		obslog.F("request_id", st.RequestID),
		obslog.F("state", string(st.State)),
		obslog.F("error_kind", st.ErrorKind),
		obslog.F("run_ms", st.RunMS))
	if q.onFinish != nil {
		q.onFinish(j)
	}
}

// pruneLocked drops the oldest finished jobs beyond the retention cap.
// Caller holds q.mu.
func (q *Queue) pruneLocked() {
	for len(q.order) > maxRetainedJobs {
		pruned := false
		for i, id := range q.order {
			j := q.byID[id]
			j.mu.Lock()
			terminal := j.state == JobDone || j.state == JobFailed || j.state == JobCanceled
			j.mu.Unlock()
			if terminal {
				delete(q.byID, id)
				q.order = append(q.order[:i], q.order[i+1:]...)
				pruned = true
				break
			}
		}
		if !pruned {
			return // everything live; keep over cap rather than lose state
		}
	}
}

// Get looks a job up by ID.
func (q *Queue) Get(id string) (*Job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.byID[id]
	return j, ok
}

// GetByRequestID returns the most recently submitted job whose submitting
// request carried the given request id. Job ids are per-replica; the
// request id is the fleet-wide key trace federation looks up by.
func (q *Queue) GetByRequestID(rid string) (*Job, bool) {
	if rid == "" {
		return nil, false
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	for i := len(q.order) - 1; i >= 0; i-- {
		if j := q.byID[q.order[i]]; j != nil && j.requestID == rid {
			return j, true
		}
	}
	return nil, false
}

// Depth returns the number of queued (not yet running) jobs.
func (q *Queue) Depth() int { return len(q.ch) }

// Running returns the number of jobs currently executing.
func (q *Queue) Running() int { return int(q.runningN.Load()) }

// Draining reports whether Drain has begun (new submissions are being
// rejected with ErrDraining).
func (q *Queue) Draining() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.closed
}

// DrainStarted returns when Drain began (zero before it has).
func (q *Queue) DrainStarted() time.Time {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.drainStarted
}

func (q *Queue) worker() {
	defer q.wg.Done()
	for j := range q.ch {
		q.depth.Set(float64(len(q.ch)))
		q.run(j)
	}
}

func (q *Queue) run(j *Job) {
	j.mu.Lock()
	if j.state != JobQueued { // canceled while waiting
		j.mu.Unlock()
		return
	}
	ctx := context.Background()
	var cancel context.CancelFunc
	if j.timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, j.timeout)
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}
	j.state = JobRunning
	j.started = time.Now()
	j.cancel = cancel
	started, created := j.started, j.created
	j.mu.Unlock()
	wait := started.Sub(created)
	q.waitHist.Observe(wait.Seconds())
	q.running.Set(float64(q.runningN.Add(1)))
	if q.onStart != nil {
		q.onStart(j)
	}
	q.log.Debug("job_start",
		obslog.F("job_id", j.ID),
		obslog.F("kind", j.Kind),
		obslog.F("request_id", j.requestID),
		obslog.F("wait_ms", wait.Milliseconds()))

	res, err := q.safeRun(j, ctx)
	cancel()
	q.running.Set(float64(q.runningN.Add(-1)))
	q.tr.Histogram(obs.Labeled("job/duration_seconds", "kind", j.Kind), obs.DefBuckets...).
		Observe(time.Since(started).Seconds())

	j.mu.Lock()
	j.finished = time.Now()
	j.result = res
	var pe *PanicError
	switch {
	case err == nil:
		j.state = JobDone
		if d, ok := res.(DegradedResult); ok && d.DegradedResult() {
			j.errKind = ErrKindDegraded
		}
		q.completed.Inc()
	case errors.As(err, &pe):
		j.state = JobFailed
		j.err = err.Error()
		j.errKind = ErrKindPanic
		q.failed.Inc()
	case errors.Is(err, context.DeadlineExceeded):
		j.state = JobCanceled
		j.err = err.Error()
		j.errKind = ErrKindTimeout
		q.canceled.Inc()
	case errors.Is(err, context.Canceled):
		j.state = JobCanceled
		j.err = err.Error()
		j.errKind = ErrKindCanceled
		q.canceled.Inc()
	case errors.Is(err, defects.ErrBlocked):
		j.state = JobFailed
		j.err = err.Error()
		j.errKind = ErrKindDefectBlocked
		q.failed.Inc()
	default:
		j.state = JobFailed
		j.err = err.Error()
		j.errKind = ErrKindError
		q.failed.Inc()
	}
	close(j.done)
	j.mu.Unlock()
	q.finishJob(j)
}

// safeRun executes the job function with panic isolation: a panicking job
// is converted into a *PanicError (stack captured for the structured log)
// instead of tearing down the worker — one poisoned request must not take
// the pool, and with it the whole daemon, down.
func (q *Queue) safeRun(j *Job, ctx context.Context) (res any, err error) {
	defer func() {
		if r := recover(); r != nil {
			pe := &PanicError{Value: r, Stack: debug.Stack()}
			res, err = nil, pe
			q.panicked.Inc()
			q.log.Error("job_panic",
				obslog.F("job_id", j.ID),
				obslog.F("kind", j.Kind),
				obslog.F("request_id", j.requestID),
				obslog.F("panic", fmt.Sprint(r)),
				obslog.F("stack", string(pe.Stack)))
		}
	}()
	// The fault point stands in for any latent bug a request can tickle;
	// chaos tests arm it to prove the recovery path above.
	if faults.Should("service.job.panic") {
		panic("injected fault: service.job.panic")
	}
	return j.fn(ctx)
}

// Drain stops accepting work and waits for in-flight jobs. If ctx expires
// first, running jobs are canceled and Drain waits for them to unwind (the
// solvers abort at their next cancellation check).
func (q *Queue) Drain(ctx context.Context) error {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return nil
	}
	q.closed = true
	q.drainStarted = time.Now()
	close(q.ch)
	q.mu.Unlock()

	done := make(chan struct{})
	go func() {
		q.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
	}
	// Grace expired: force-cancel everything still live.
	q.mu.Lock()
	for _, j := range q.byID {
		j.Cancel()
	}
	q.mu.Unlock()
	<-done
	return ctx.Err()
}
