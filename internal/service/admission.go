package service

import (
	"math"
	"net/http"
	"strconv"
	"sync"

	"repro/internal/obs"
)

// ErrKindShed is the error kind of requests rejected by admission control
// (and by queue-full backpressure): the request was fine, the server is
// saturated — retry after the advertised interval.
const ErrKindShed = "shed"

// Admission thresholds by cost class: the utilization (queued + running
// over total capacity) above which the class is shed. Expensive classes
// shed first, so under pressure cheap reads and medium solves keep
// flowing while whole-flow runs — the jobs that would hold a worker for
// tens of seconds — wait out the storm. Reads are never shed.
const (
	shedFlowAt = 0.75
	shedSimAt  = 0.90
)

// admission tracks queue utilization and a smoothed job-duration estimate
// so 429 responses carry an honest Retry-After instead of a constant.
type admission struct {
	mu sync.Mutex
	// ewmaJobSeconds is an exponentially-weighted average of recent job
	// run times, the basis of the Retry-After estimate. Starts at a
	// conservative 1s until real jobs feed it.
	ewmaJobSeconds float64

	util *obs.Gauge
	tr   *obs.Tracer
}

func newAdmission(tr *obs.Tracer) *admission {
	return &admission{
		ewmaJobSeconds: 1,
		util:           tr.Gauge("admission/utilization"),
		tr:             tr,
	}
}

// observe feeds one finished job's run time into the duration estimate.
func (a *admission) observe(runSeconds float64) {
	if runSeconds <= 0 {
		return
	}
	a.mu.Lock()
	const alpha = 0.2
	a.ewmaJobSeconds = (1-alpha)*a.ewmaJobSeconds + alpha*runSeconds
	a.mu.Unlock()
}

// utilization returns (queued + running) / (queue capacity + workers) —
// 1.0 means every worker busy and every queue slot full.
func (s *Server) utilization() float64 {
	cap := s.cfg.QueueDepth + s.cfg.Workers
	if cap <= 0 {
		return 0
	}
	return float64(s.queue.Depth()+s.queue.Running()) / float64(cap)
}

// sheddingClasses lists the cost classes currently being shed at
// utilization u, most expensive first.
func sheddingClasses(u float64) []string {
	var out []string
	if u >= shedFlowAt {
		out = append(out, "flow")
	}
	if u >= shedSimAt {
		out = append(out, "simulate", "validate")
	}
	return out
}

// shedThreshold returns the utilization above which class is shed
// (math.Inf(1) for classes never shed).
func shedThreshold(class string) float64 {
	switch class {
	case "flow":
		return shedFlowAt
	case "simulate", "validate":
		return shedSimAt
	default:
		return math.Inf(1)
	}
}

// retryAfterSeconds estimates how long until the backlog clears: the
// number of jobs ahead times the smoothed job duration, divided across
// the worker pool, clamped to [1, 60].
func (s *Server) retryAfterSeconds() int {
	s.admission.mu.Lock()
	ewma := s.admission.ewmaJobSeconds
	s.admission.mu.Unlock()
	backlog := s.queue.Depth() + s.queue.Running()
	workers := s.cfg.Workers
	if workers <= 0 {
		workers = 1
	}
	secs := int(math.Ceil(float64(backlog) * ewma / float64(workers)))
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return secs
}

// admit applies cost-class admission control: when current utilization is
// at or above the class's shed threshold, the request is rejected with
// 429, error kind "shed", and an honest Retry-After. Returns false when
// the request was shed (response already written).
func (s *Server) admit(w http.ResponseWriter, class string) bool {
	u := s.utilization()
	s.admission.util.Set(u)
	if u < shedThreshold(class) {
		return true
	}
	s.tr.Counter(obs.Labeled("admission/shed_total", "class", class)).Inc()
	w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
	writeErrKind(w, http.StatusTooManyRequests, ErrKindShed,
		"shedding %s requests at %.0f%% utilization", class, 100*u)
	return false
}
