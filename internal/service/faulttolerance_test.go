package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/obs"
)

// TestJobPanicIsolated proves one panicking job neither kills its worker
// nor leaks into later jobs: the panic becomes a failed job with
// ErrorKind "panic" and a counted jobs_panicked_total, and the same
// worker then completes a healthy job.
func TestJobPanicIsolated(t *testing.T) {
	tr := obs.New()
	q := NewQueue(1, 2, 0, tr, nil)
	defer q.Drain(context.Background())

	j, err := q.Submit("boom", 0, func(ctx context.Context) (any, error) {
		panic("kaboom")
	})
	if err != nil {
		t.Fatal(err)
	}
	<-j.Done()
	if j.State() != JobFailed {
		t.Fatalf("state = %v, want failed", j.State())
	}
	if j.ErrorKind() != ErrKindPanic {
		t.Fatalf("error kind = %q, want %q", j.ErrorKind(), ErrKindPanic)
	}
	if _, msg := j.Result(); msg == "" {
		t.Fatal("panic left no error message")
	}
	if got := tr.Counter("jobs/panicked_total").Value(); got != 1 {
		t.Fatalf("jobs_panicked_total = %d, want 1", got)
	}

	// The single worker survived and still serves jobs.
	j2, err := q.Submit("ok", 0, func(ctx context.Context) (any, error) {
		return "fine", nil
	})
	if err != nil {
		t.Fatal(err)
	}
	<-j2.Done()
	if j2.State() != JobDone {
		t.Fatalf("follow-up job state = %v, want done", j2.State())
	}
}

// TestPanicErrorClassification checks the queue's errors.As detection: a
// JobFunc returning a wrapped *PanicError is classified as a panic too.
func TestPanicErrorClassification(t *testing.T) {
	q := NewQueue(1, 1, 0, nil, nil)
	defer q.Drain(context.Background())
	j, err := q.Submit("wrapped", 0, func(ctx context.Context) (any, error) {
		return nil, fmt.Errorf("inner stage: %w", &PanicError{Value: "x"})
	})
	if err != nil {
		t.Fatal(err)
	}
	<-j.Done()
	if j.ErrorKind() != ErrKindPanic {
		t.Fatalf("error kind = %q, want %q", j.ErrorKind(), ErrKindPanic)
	}
}

// TestErrorKindTaxonomy drives one job per failure class and checks the
// recorded kinds.
func TestErrorKindTaxonomy(t *testing.T) {
	q := NewQueue(2, 8, 0, nil, nil)
	defer q.Drain(context.Background())

	cases := []struct {
		name string
		fn   JobFunc
		kind string
	}{
		{"timeout", func(ctx context.Context) (any, error) { return nil, context.DeadlineExceeded }, ErrKindTimeout},
		{"canceled", func(ctx context.Context) (any, error) { return nil, context.Canceled }, ErrKindCanceled},
		{"generic", func(ctx context.Context) (any, error) { return nil, errors.New("nope") }, ErrKindError},
		{"clean", func(ctx context.Context) (any, error) { return &jobResult{}, nil }, ""},
		{"degraded", func(ctx context.Context) (any, error) { return &jobResult{degraded: true}, nil }, ErrKindDegraded},
	}
	for _, tc := range cases {
		j, err := q.Submit(tc.name, 0, tc.fn)
		if err != nil {
			t.Fatal(err)
		}
		<-j.Done()
		if got := j.ErrorKind(); got != tc.kind {
			t.Errorf("%s: error kind = %q, want %q", tc.name, got, tc.kind)
		}
	}
}

// TestDrainRacesPanickingJobs floods a small pool with a mix of panicking,
// degrading, slow, and healthy jobs and drains mid-flight. Run under
// -race, this is the regression net for the recover/terminal-state/drain
// interleavings: every job must reach a terminal state and Drain must
// return.
func TestDrainRacesPanickingJobs(t *testing.T) {
	if err := faults.Arm("service.job.panic=every:3", 42); err != nil {
		t.Fatal(err)
	}
	defer faults.Disarm()

	tr := obs.New()
	q := NewQueue(4, 64, 0, tr, nil)

	var jobs []*Job
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 40; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fn := func(ctx context.Context) (any, error) {
				switch i % 4 {
				case 0:
					return &jobResult{degraded: true}, nil
				case 1:
					select {
					case <-time.After(time.Duration(i%7) * time.Millisecond):
					case <-ctx.Done():
						return nil, ctx.Err()
					}
					return &jobResult{}, nil
				case 2:
					panic(fmt.Sprintf("direct panic %d", i))
				default:
					return &jobResult{}, nil
				}
			}
			j, err := q.Submit("mix", 50*time.Millisecond, fn)
			if err != nil {
				return // queue full or draining: fine under this race
			}
			mu.Lock()
			jobs = append(jobs, j)
			mu.Unlock()
		}(i)
	}
	wg.Wait()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := q.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	mu.Lock()
	defer mu.Unlock()
	for _, j := range jobs {
		select {
		case <-j.Done():
		default:
			t.Fatalf("job %s not terminal after drain (state %v)", j.ID, j.State())
		}
		if j.State() == JobFailed && j.ErrorKind() == "" {
			t.Fatalf("failed job %s has no error kind", j.ID)
		}
	}
	if tr.Counter("jobs/panicked_total").Value() == 0 {
		t.Fatal("fault injection never fired; the chaos mix is not exercising the recover path")
	}
}
