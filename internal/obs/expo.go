package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// This file renders tracer metrics in the Prometheus text exposition
// format (version 0.0.4). Metric names may carry Prometheus-style labels
// inline — `family{key="value",...}` as produced by Labeled — and every
// name sharing a family is emitted as one metric family with a single
// `# TYPE` header. Histograms are rendered with cumulative
// `family_bucket{le="..."}` series (including the trailing `le="+Inf"`
// bucket equal to the observation count) plus `family_sum` and
// `family_count`, which the previous ad-hoc "name value" renderer
// silently dropped.

// ExpositionContentType is the Content-Type a /metrics handler should
// send with WriteExposition output.
const ExpositionContentType = "text/plain; version=0.0.4; charset=utf-8"

// DefBuckets are default latency histogram bounds in seconds, spanning
// sub-millisecond cache hits to minute-scale exact solves.
var DefBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// Labeled composes a metric name with Prometheus-style labels:
//
//	Labeled("http_requests_total", "method", "POST", "code", "200")
//	→ `http_requests_total{method="POST",code="200"}`
//
// Label values are escaped per the exposition format. Each distinct label
// combination names a distinct metric on the tracer; the exposition
// writer groups them back into one family. Labeled panics on an odd
// number of key/value arguments (a programming error).
func Labeled(family string, kv ...string) string {
	if len(kv)%2 != 0 {
		panic("obs: Labeled requires key/value pairs")
	}
	if len(kv) == 0 {
		return family
	}
	var b strings.Builder
	b.WriteString(family)
	b.WriteByte('{')
	for i := 0; i < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(kv[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabelValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// splitName separates a metric name into its sanitized family and the raw
// label block ("" when unlabeled).
func splitName(name string) (family, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		family, labels = name[:i], name[i:]
		if !strings.HasSuffix(labels, "}") { // malformed; fold into family
			return sanitizeFamily(name), ""
		}
		return sanitizeFamily(family), labels
	}
	return sanitizeFamily(name), ""
}

// sanitizeFamily maps an internal metric name onto the Prometheus name
// charset [a-zA-Z0-9_:]: slashes (the tracer's namespace separator) and
// any other invalid rune become underscores, and a leading digit is
// prefixed.
func sanitizeFamily(name string) string {
	var b strings.Builder
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if r >= '0' && r <= '9' && i == 0 {
			b.WriteByte('_')
			b.WriteRune(r)
			continue
		}
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promSample is one labeled series within a family.
type promSample struct {
	labels string
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// promFamily groups every label combination of one metric family.
type promFamily struct {
	typ     string // "counter", "gauge", "histogram"
	samples []promSample
}

// WriteExposition renders every metric registered on the tracer in the
// Prometheus text exposition format. help maps sanitized family names to
// `# HELP` text (families without an entry get no HELP line). Output is
// deterministic: families sort by name, series by label block. Nil
// tracers write nothing.
func (t *Tracer) WriteExposition(w io.Writer, help map[string]string) error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	counters := make(map[string]*Counter, len(t.counters))
	for n, c := range t.counters {
		counters[n] = c
	}
	gauges := make(map[string]*Gauge, len(t.gauges))
	for n, g := range t.gauges {
		gauges[n] = g
	}
	histograms := make(map[string]*Histogram, len(t.histograms))
	for n, h := range t.histograms {
		histograms[n] = h
	}
	t.mu.Unlock()

	families := map[string]*promFamily{}
	collect := func(name, typ string, s promSample) {
		family, labels := splitName(name)
		f, ok := families[family]
		if !ok {
			f = &promFamily{typ: typ}
			families[family] = f
		}
		if f.typ != typ {
			// A family must hold one metric type; a collision is a naming
			// bug — keep the first type and drop the stray sample rather
			// than emit an invalid exposition.
			return
		}
		s.labels = labels
		f.samples = append(f.samples, s)
	}
	for n, c := range counters {
		collect(n, "counter", promSample{c: c})
	}
	for n, g := range gauges {
		collect(n, "gauge", promSample{g: g})
	}
	for n, h := range histograms {
		collect(n, "histogram", promSample{h: h})
	}

	names := make([]string, 0, len(families))
	for n := range families {
		names = append(names, n)
	}
	sort.Strings(names)

	var b strings.Builder
	for _, fam := range names {
		f := families[fam]
		sort.Slice(f.samples, func(i, j int) bool { return f.samples[i].labels < f.samples[j].labels })
		if h, ok := help[fam]; ok && h != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", fam, escapeHelp(h))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", fam, f.typ)
		for _, s := range f.samples {
			switch f.typ {
			case "counter":
				fmt.Fprintf(&b, "%s%s %s\n", fam, s.labels, formatValue(float64(s.c.Value())))
			case "gauge":
				fmt.Fprintf(&b, "%s%s %s\n", fam, s.labels, formatValue(s.g.Value()))
			case "histogram":
				writeHistogram(&b, fam, s.labels, s.h)
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeHistogram renders one histogram series: cumulative buckets, the
// +Inf bucket, then _sum and _count.
func writeHistogram(b *strings.Builder, fam, labels string, h *Histogram) {
	bounds, counts := h.Buckets()
	var cum int64
	for i, bound := range bounds {
		cum += counts[i]
		fmt.Fprintf(b, "%s_bucket%s %d\n", fam, mergeLE(labels, formatValue(bound)), cum)
	}
	if len(counts) > 0 {
		cum += counts[len(counts)-1]
	}
	fmt.Fprintf(b, "%s_bucket%s %d\n", fam, mergeLE(labels, "+Inf"), cum)
	fmt.Fprintf(b, "%s_sum%s %s\n", fam, labels, formatValue(h.Sum()))
	fmt.Fprintf(b, "%s_count%s %d\n", fam, labels, h.Count())
}

// mergeLE appends the le label to an existing label block (or starts one).
func mergeLE(labels, le string) string {
	if labels == "" {
		return `{le="` + le + `"}`
	}
	return labels[:len(labels)-1] + `,le="` + le + `"}`
}

func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(h string) string {
	h = strings.ReplaceAll(h, `\`, `\\`)
	return strings.ReplaceAll(h, "\n", `\n`)
}

// StageObserver is a span Sink that aggregates span durations into
// labeled histograms on a (typically process-lifetime) tracer: every
// ended span observes its duration into Family{stage="<span name>"}.
// Attaching one to short-lived per-job tracers turns each job's stage
// timeline into service-wide per-stage latency histograms — queue a
// StageObserver pointed at the server tracer and /metrics exposes
// request-attributable SAT, P&R, and simulation latency distributions.
type StageObserver struct {
	// Tracer receives the aggregated histograms; it should be a
	// longer-lived tracer than the ones being observed so the aggregates
	// survive the individual jobs.
	Tracer *Tracer
	// Family is the histogram family name, e.g. "flow_stage_seconds".
	Family string
	// Bounds are the bucket bounds (nil = DefBuckets).
	Bounds []float64
	// Attrs additionally folds numeric span attributes into their own
	// labeled histograms, turning per-job solver-depth annotations (SAT
	// conflict counts, annealer acceptance rates, ...) into service-wide
	// distributions without a second reporting path.
	Attrs []AttrHistogram
}

// AttrHistogram tells a StageObserver to observe a numeric span
// attribute into Family{stage="<span name>"} on the target tracer.
// Spans without the attribute (or with a non-numeric value) are skipped.
type AttrHistogram struct {
	// Key is the span attribute to observe (e.g. "conflicts").
	Key string
	// Family is the histogram family (e.g. "sat_conflicts_per_solve").
	Family string
	// Bounds are the bucket bounds (nil = DefBuckets).
	Bounds []float64
}

// SpanEnd implements Sink.
func (o *StageObserver) SpanEnd(s *Span) {
	if o == nil || o.Tracer == nil || s == nil {
		return
	}
	bounds := o.Bounds
	if bounds == nil {
		bounds = DefBuckets
	}
	o.Tracer.Histogram(Labeled(o.Family, "stage", s.Name()), bounds...).
		Observe(s.Duration().Seconds())
	for _, ah := range o.Attrs {
		v, ok := attrFloat(s.Attr(ah.Key))
		if !ok {
			continue
		}
		b := ah.Bounds
		if b == nil {
			b = DefBuckets
		}
		o.Tracer.Histogram(Labeled(ah.Family, "stage", s.Name()), b...).Observe(v)
	}
}

// attrFloat coerces the numeric attribute types spans actually carry.
func attrFloat(v any) (float64, bool) {
	switch x := v.(type) {
	case float64:
		return x, true
	case float32:
		return float64(x), true
	case int:
		return float64(x), true
	case int32:
		return float64(x), true
	case int64:
		return float64(x), true
	case uint:
		return float64(x), true
	case uint32:
		return float64(x), true
	case uint64:
		return float64(x), true
	default:
		return 0, false
	}
}
