package obs

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"
)

// RunReport is the machine-readable aggregate of one flow run: the span
// tree with per-stage durations plus a snapshot of every registered metric.
type RunReport struct {
	// Name labels the run (typically the benchmark or design name).
	Name string `json:"name"`
	// StartedAt is the tracer creation time.
	StartedAt time.Time `json:"started_at"`
	// WallSeconds is the wall-clock time from tracer creation to report.
	WallSeconds float64 `json:"wall_seconds"`
	// Stages is the root span forest in start order.
	Stages []*StageReport `json:"stages,omitempty"`
	// Metrics maps metric name to its final value.
	Metrics map[string]MetricReport `json:"metrics,omitempty"`
}

// StageReport is one span rendered for the report.
type StageReport struct {
	Name     string         `json:"name"`
	Seconds  float64        `json:"seconds"`
	Attrs    map[string]any `json:"attrs,omitempty"`
	Children []*StageReport `json:"children,omitempty"`
}

// MetricReport is a snapshot of a counter, gauge, or histogram.
type MetricReport struct {
	// Type is "counter", "gauge", or "histogram".
	Type string `json:"type"`
	// Value holds the counter or gauge value.
	Value float64 `json:"value,omitempty"`
	// Count and Sum summarize histogram observations.
	Count int64   `json:"count,omitempty"`
	Sum   float64 `json:"sum,omitempty"`
	// Bounds are histogram bucket upper bounds; Buckets the per-bucket
	// counts, with one extra trailing overflow bucket.
	Bounds  []float64 `json:"bounds,omitempty"`
	Buckets []int64   `json:"buckets,omitempty"`
}

// Report snapshots the tracer into a RunReport. Still-open spans report
// their elapsed time so far. Nil tracers return nil.
func (t *Tracer) Report(name string) *RunReport {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	r := &RunReport{
		Name:        name,
		StartedAt:   t.started,
		WallSeconds: time.Since(t.started).Seconds(),
		Metrics:     map[string]MetricReport{},
	}
	for _, sp := range t.roots {
		r.Stages = append(r.Stages, stageReport(sp))
	}
	for n, c := range t.counters {
		r.Metrics[n] = MetricReport{Type: "counter", Value: float64(c.Value())}
	}
	for n, g := range t.gauges {
		r.Metrics[n] = MetricReport{Type: "gauge", Value: g.Value()}
	}
	for n, h := range t.histograms {
		bounds, counts := h.Buckets()
		r.Metrics[n] = MetricReport{
			Type: "histogram", Count: h.Count(), Sum: h.Sum(),
			Bounds: bounds, Buckets: counts,
		}
	}
	return r
}

// stageReport converts a span subtree (caller holds the tracer lock).
func stageReport(sp *Span) *StageReport {
	st := &StageReport{Name: sp.name, Seconds: sp.durationLocked().Seconds()}
	if len(sp.attrs) > 0 {
		st.Attrs = make(map[string]any, len(sp.attrs))
		for _, a := range sp.attrs {
			st.Attrs[a.Key] = a.Value
		}
	}
	for _, c := range sp.children {
		st.Children = append(st.Children, stageReport(c))
	}
	return st
}

// JSON renders the report as indented JSON.
func (r *RunReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// ParseReport decodes a JSON run report.
func ParseReport(data []byte) (*RunReport, error) {
	var r RunReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, err
	}
	return &r, nil
}

// Stage finds the first stage with the given name anywhere in the tree
// (pre-order), or nil.
func (r *RunReport) Stage(name string) *StageReport {
	if r == nil {
		return nil
	}
	var find func(ss []*StageReport) *StageReport
	find = func(ss []*StageReport) *StageReport {
		for _, s := range ss {
			if s.Name == name {
				return s
			}
			if hit := find(s.Children); hit != nil {
				return hit
			}
		}
		return nil
	}
	return find(r.Stages)
}

// Counter returns the value of a counter metric (0 when absent).
func (r *RunReport) Counter(name string) int64 {
	if r == nil {
		return 0
	}
	return int64(r.Metrics[name].Value)
}

// RenderTree renders the span forest as an indented per-stage timing tree
// with attributes, suitable for human consumption on stderr.
func (r *RunReport) RenderTree() string {
	var b strings.Builder
	var walk func(s *StageReport, depth int)
	walk = func(s *StageReport, depth int) {
		name := strings.Repeat("  ", depth) + s.Name
		fmt.Fprintf(&b, "%-34s %10.3f ms", name, s.Seconds*1e3)
		if len(s.Attrs) > 0 {
			keys := make([]string, 0, len(s.Attrs))
			for k := range s.Attrs {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				fmt.Fprintf(&b, "  %s=%v", k, s.Attrs[k])
			}
		}
		b.WriteByte('\n')
		for _, c := range s.Children {
			walk(c, depth+1)
		}
	}
	for _, s := range r.Stages {
		walk(s, 0)
	}
	return b.String()
}
