package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing int64. A nil *Counter is a valid
// no-op; non-nil counters are safe for concurrent use.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 that records the last value set. A nil *Gauge is a
// valid no-op; non-nil gauges are safe for concurrent use.
type Gauge struct {
	bits atomic.Uint64
}

// Set records the value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the last value set (zero if never set).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram accumulates observations into fixed buckets. An observation v
// lands in the first bucket whose upper bound satisfies v <= bound; values
// above every bound land in the implicit +Inf overflow bucket. A nil
// *Histogram is a valid no-op; non-nil histograms are safe for concurrent
// use.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // sorted upper bounds
	counts []int64   // len(bounds)+1; last is the overflow bucket
	sum    float64
	count  int64
}

// NewHistogram builds a histogram with the given bucket upper bounds (they
// are sorted and deduplicated).
func NewHistogram(bounds ...float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	out := bs[:0]
	for i, b := range bs {
		if i == 0 || b != out[len(out)-1] {
			out = append(out, b)
		}
	}
	return &Histogram{bounds: out, counts: make([]int64, len(out)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i]++
	h.sum += v
	h.count++
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Buckets returns the bucket bounds and per-bucket counts (the final count
// is the +Inf overflow bucket).
func (h *Histogram) Buckets() (bounds []float64, counts []int64) {
	if h == nil {
		return nil, nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]float64(nil), h.bounds...), append([]int64(nil), h.counts...)
}

// Counter returns the named counter, creating it on first use. Nil tracers
// return a nil (no-op) counter.
func (t *Tracer) Counter(name string) *Counter {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	c, ok := t.counters[name]
	if !ok {
		c = &Counter{}
		t.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Nil tracers
// return a nil (no-op) gauge.
func (t *Tracer) Gauge(name string) *Gauge {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	g, ok := t.gauges[name]
	if !ok {
		g = &Gauge{}
		t.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// bounds on first use. The bounds contract is first-caller-wins: the first
// caller for a name fixes the buckets, and later callers may pass no
// bounds at all to retrieve the existing histogram. Passing different
// bounds for an existing name panics — silently ignoring the mismatch
// (the old behavior) corrupts every aggregate computed from the buckets,
// because the caller believes observations land in buckets that do not
// exist. Nil tracers return a nil (no-op) histogram.
func (t *Tracer) Histogram(name string, bounds ...float64) *Histogram {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	h, ok := t.histograms[name]
	if !ok {
		h = NewHistogram(bounds...)
		t.histograms[name] = h
		return h
	}
	if len(bounds) > 0 && !h.sameBounds(bounds) {
		// Copy before formatting so the variadic slice does not escape on
		// the non-panicking path (the nil-tracer fast path must stay
		// allocation-free).
		given := append([]float64(nil), bounds...)
		panic(fmt.Sprintf("obs: histogram %q redeclared with bounds %v (first caller fixed %v)",
			name, given, h.bounds))
	}
	return h
}

// sameBounds reports whether the given raw bounds normalize (sort +
// dedup, as NewHistogram does) to this histogram's bounds. The bounds
// slice is immutable after construction, so no lock is needed.
func (h *Histogram) sameBounds(bounds []float64) bool {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	n := 0
	for i, b := range bs {
		if i == 0 || b != bs[n-1] {
			bs[n] = b
			n++
		}
	}
	bs = bs[:n]
	if len(bs) != len(h.bounds) {
		return false
	}
	for i, b := range bs {
		if b != h.bounds[i] {
			return false
		}
	}
	return true
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) of the observed
// distribution from the bucket counts, interpolating linearly within the
// containing bucket (the Prometheus histogram_quantile estimate). Values
// in the overflow bucket clamp to the highest bound. Returns 0 when the
// histogram is empty or nil.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	bounds, counts := h.Buckets()
	return QuantileFromBuckets(bounds, counts, q)
}

// QuantileFromBuckets is Histogram.Quantile over raw bucket data (bounds
// plus per-bucket counts with one trailing overflow bucket), usable on
// merged or reported histograms.
func QuantileFromBuckets(bounds []float64, counts []int64, q float64) float64 {
	var total int64
	for _, c := range counts {
		total += c
	}
	if total == 0 || len(bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum int64
	for i, c := range counts {
		if i >= len(bounds) {
			break // overflow bucket: clamp below
		}
		prev := cum
		cum += c
		if float64(cum) >= rank {
			lower := 0.0
			if i > 0 {
				lower = bounds[i-1]
			}
			upper := bounds[i]
			if c == 0 {
				return upper
			}
			frac := (rank - float64(prev)) / float64(c)
			return lower + (upper-lower)*frac
		}
	}
	return bounds[len(bounds)-1]
}
