package obs

import "context"

type ctxKey int

const requestIDKey ctxKey = iota

// ContextWithRequestID tags a context with an HTTP request ID so that
// flow spans started underneath (core.RunContext and friends) can record
// which request caused them. An empty id returns ctx unchanged.
func ContextWithRequestID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, requestIDKey, id)
}

// RequestIDFromContext returns the request ID tagged onto the context, or
// "" when absent.
func RequestIDFromContext(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	id, _ := ctx.Value(requestIDKey).(string)
	return id
}

// Hop describes how a request arrived at this replica when it was
// forwarded over an intra-fleet hop: which peer forwarded it, how many
// hops deep the request is, and the span on the forwarding replica that
// is this execution's logical parent. The zero value means "entry
// replica, not forwarded".
type Hop struct {
	// Peer is the advertised address of the replica that forwarded the
	// request here.
	Peer string
	// Index is the 1-based hop count (1 = first forward off the entry
	// replica).
	Index int
	// ParentSpan names the span on the forwarding replica under which the
	// remote execution logically nests.
	ParentSpan string
	// Forwarded is true when the request crossed at least one fleet hop.
	Forwarded bool
}

const hopKey ctxKey = iota + 1

// ContextWithHop tags a context with the intra-fleet hop that delivered
// the request. A zero (non-forwarded) hop returns ctx unchanged.
func ContextWithHop(ctx context.Context, h Hop) context.Context {
	if !h.Forwarded {
		return ctx
	}
	return context.WithValue(ctx, hopKey, h)
}

// HopFromContext returns the hop tagged onto the context; the zero Hop
// means the request entered the fleet on this replica.
func HopFromContext(ctx context.Context) Hop {
	if ctx == nil {
		return Hop{}
	}
	h, _ := ctx.Value(hopKey).(Hop)
	return h
}
