package obs

import "context"

type ctxKey int

const requestIDKey ctxKey = iota

// ContextWithRequestID tags a context with an HTTP request ID so that
// flow spans started underneath (core.RunContext and friends) can record
// which request caused them. An empty id returns ctx unchanged.
func ContextWithRequestID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, requestIDKey, id)
}

// RequestIDFromContext returns the request ID tagged onto the context, or
// "" when absent.
func RequestIDFromContext(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	id, _ := ctx.Value(requestIDKey).(string)
	return id
}
