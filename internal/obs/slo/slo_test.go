package slo

import (
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// fakeClock installs a settable clock on the engine and returns the
// setter; tests advance time explicitly instead of sleeping.
func fakeClock(e *Engine) func(time.Time) {
	var mu sync.Mutex
	now := time.Unix(1700000000, 0)
	e.Now = func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	return func(t time.Time) {
		mu.Lock()
		now = t
		mu.Unlock()
	}
}

func TestBurnRateUnderErrors(t *testing.T) {
	e := New([]Objective{{Name: "flow", Latency: time.Second, Budget: 0.01}}, 5*time.Minute)
	setNow := fakeClock(e)
	base := time.Unix(1700000000, 0)
	setNow(base)

	// 20% errors against a 1% budget -> burn rate 20.
	for i := 0; i < 100; i++ {
		e.Observe("flow", 0.01, i%5 == 0)
	}
	s := e.Snapshot()["flow"]
	if s.Total != 100 || s.Bad != 20 {
		t.Fatalf("lifetime total/bad = %d/%d, want 100/20", s.Total, s.Bad)
	}
	if len(s.Windows) != 1 {
		t.Fatalf("got %d windows, want 1", len(s.Windows))
	}
	wb := s.Windows[0]
	if wb.Window != "5m" {
		t.Fatalf("window label = %q, want 5m", wb.Window)
	}
	if wb.BurnRate != 20 {
		t.Fatalf("burn rate = %v, want 20", wb.BurnRate)
	}
	// Lifetime budget: 20 bad vs allowance of 1 -> 19 budgets overspent.
	if s.BudgetRemaining != -19 {
		t.Fatalf("budget remaining = %v, want -19", s.BudgetRemaining)
	}
}

func TestBurnDecaysPastWindow(t *testing.T) {
	e := New([]Objective{{Name: "flow", Budget: 0.01}}, 5*time.Minute)
	setNow := fakeClock(e)
	base := time.Unix(1700000000, 0)
	setNow(base)
	for i := 0; i < 50; i++ {
		e.Observe("flow", 0.01, true)
	}
	if burn := e.Snapshot()["flow"].Windows[0].BurnRate; burn != 100 {
		t.Fatalf("burn during incident = %v, want 100", burn)
	}
	// Advance the clock past the window: the stale buckets must be
	// skipped at query time without any further Observe calls.
	setNow(base.Add(6 * time.Minute))
	wb := e.Snapshot()["flow"].Windows[0]
	if wb.Total != 0 || wb.BurnRate != 0 {
		t.Fatalf("after idle window: total=%d burn=%v, want 0/0", wb.Total, wb.BurnRate)
	}
	// Lifetime accounting survives the decay.
	if s := e.Snapshot()["flow"]; s.Bad != 50 {
		t.Fatalf("lifetime bad = %d, want 50", s.Bad)
	}
}

func TestLatencyThresholdCountsAsBad(t *testing.T) {
	e := New([]Objective{{Name: "read", Latency: 250 * time.Millisecond, Budget: 0.1}}, time.Minute)
	setNow := fakeClock(e)
	setNow(time.Unix(1700000000, 0))
	e.Observe("read", 0.2, false) // under threshold: good
	e.Observe("read", 0.3, false) // over threshold: bad despite no error
	e.Observe("read", 0.01, true) // error: bad despite fast
	s := e.Snapshot()["read"]
	if s.Bad != 2 {
		t.Fatalf("bad = %d, want 2 (one slow + one error)", s.Bad)
	}
	if s.LatencyMS != 250 {
		t.Fatalf("latency_ms = %v, want 250", s.LatencyMS)
	}
}

func TestUnknownObjectiveIgnored(t *testing.T) {
	e := New([]Objective{{Name: "flow"}})
	e.Observe("nope", 1, true)
	if s := e.Snapshot()["flow"]; s.Total != 0 {
		t.Fatalf("unknown-name observation leaked into flow: %+v", s)
	}
	if _, ok := e.Snapshot()["nope"]; ok {
		t.Fatal("unknown objective appeared in snapshot")
	}
}

func TestDefaultsAndNilEngine(t *testing.T) {
	e := New([]Objective{{Name: "x", Budget: -1}})
	setNow := fakeClock(e)
	setNow(time.Unix(1700000000, 0))
	e.Observe("x", 0.01, true)
	s := e.Snapshot()["x"]
	if s.Budget != 0.01 {
		t.Fatalf("defaulted budget = %v, want 0.01", s.Budget)
	}
	if len(s.Windows) != 2 || s.Windows[0].Window != "5m" || s.Windows[1].Window != "1h" {
		t.Fatalf("default windows = %+v, want 5m and 1h", s.Windows)
	}

	var nilE *Engine
	nilE.Observe("x", 1, true)
	if snap := nilE.Snapshot(); snap != nil {
		t.Fatal("nil engine Snapshot should be nil")
	}
	nilE.Export(obs.New()) // must not panic
}

func TestWindowLabel(t *testing.T) {
	for _, c := range []struct {
		d    time.Duration
		want string
	}{
		{time.Hour, "1h"}, {5 * time.Minute, "5m"}, {3 * time.Second, "3s"},
		{90 * time.Second, "90s"}, {1500 * time.Millisecond, "1.5s"},
	} {
		if got := WindowLabel(c.d); got != c.want {
			t.Errorf("WindowLabel(%v) = %q, want %q", c.d, got, c.want)
		}
	}
}

func TestExportGauges(t *testing.T) {
	e := New([]Objective{{Name: "flow", Budget: 0.01}}, 5*time.Minute)
	setNow := fakeClock(e)
	setNow(time.Unix(1700000000, 0))
	for i := 0; i < 10; i++ {
		e.Observe("flow", 0.01, true)
	}
	tr := obs.New()
	e.Export(tr)
	var buf strings.Builder
	if err := tr.WriteExposition(&buf, nil); err != nil {
		t.Fatalf("WriteExposition: %v", err)
	}
	body := buf.String()
	for _, want := range []string{
		`slo_burn_rate{slo="flow",window="5m"} 100`,
		`slo_budget_remaining{slo="flow"} -99`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q\n%s", want, body)
		}
	}
}

// TestEngineConcurrent drives observers and snapshotters in parallel;
// run under -race it proves the locking.
func TestEngineConcurrent(t *testing.T) {
	e := New([]Objective{{Name: "flow", Budget: 0.01}, {Name: "read", Budget: 0.01}})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := "flow"
			if g%2 == 0 {
				name = "read"
			}
			for i := 0; i < 500; i++ {
				e.Observe(name, 0.01, i%10 == 0)
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				_ = e.Snapshot()
				e.Export(obs.New())
			}
		}()
	}
	wg.Wait()
	s := e.Snapshot()
	if got := s["flow"].Total + s["read"].Total; got != 4000 {
		t.Fatalf("total observations = %d, want 4000", got)
	}
}
