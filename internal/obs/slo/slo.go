// Package slo implements declared service-level objectives with
// multi-window error-budget burn rates. An Objective names a request
// class (a route or cost class), a latency threshold, and an error
// budget; every request observation is "good" or "bad" (an error, or
// slower than the threshold). The engine keeps a time-bucketed ring per
// configured window (by default 5m and 1h) and reports, per objective:
//
//	burn rate  = bad fraction in the window / error budget
//	             (1.0 = consuming the budget exactly as fast as allowed;
//	              20  = a 20% failure rate against a 1% budget)
//	budget remaining = 1 - lifetime bad / (budget * lifetime total)
//
// The multi-window form is the standard burn-rate alerting setup: the
// short window catches a fast burn (an incident) quickly, the long
// window catches a slow leak without paging on blips.
package slo

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/obs"
)

// Objective declares one SLO.
type Objective struct {
	// Name identifies the objective (a route or cost class: "flow", ...).
	Name string
	// Latency is the threshold above which a successful request still
	// counts against the budget (0 disables the latency term).
	Latency time.Duration
	// Budget is the allowed bad fraction, e.g. 0.01 for a 99% objective
	// (values <= 0 default to 0.01).
	Budget float64
}

// bucketsPerWindow trades burn-rate granularity against memory: a 5m
// window advances in 10s steps, a 1h window in 2m steps.
const bucketsPerWindow = 30

// bucket is one time slice of a window's event counts.
type bucket struct {
	start      int64 // unix nanos of the bucket's aligned start; 0 = empty
	total, bad int64
}

// window is a ring of time buckets spanning one burn-rate window.
type window struct {
	dur       time.Duration
	bucketDur time.Duration
	buckets   [bucketsPerWindow]bucket
}

func newWindow(d time.Duration) *window {
	bd := d / bucketsPerWindow
	if bd <= 0 {
		bd = time.Millisecond
	}
	return &window{dur: d, bucketDur: bd}
}

// observe counts one event into the bucket covering now, resetting the
// slot if it holds a stale cycle.
func (w *window) observe(now time.Time, bad bool) {
	start := now.UnixNano() - now.UnixNano()%int64(w.bucketDur)
	idx := (start / int64(w.bucketDur)) % bucketsPerWindow
	b := &w.buckets[idx]
	if b.start != start {
		*b = bucket{start: start}
	}
	b.total++
	if bad {
		b.bad++
	}
}

// sum totals the live (non-stale) buckets as of now.
func (w *window) sum(now time.Time) (total, bad int64) {
	oldest := now.Add(-w.dur).UnixNano()
	for i := range w.buckets {
		b := &w.buckets[i]
		if b.start == 0 || b.start < oldest || b.start > now.UnixNano() {
			continue
		}
		total += b.total
		bad += b.bad
	}
	return total, bad
}

// state is one objective's live accounting.
type state struct {
	obj        Objective
	wins       []*window
	total, bad int64 // lifetime
}

// Engine evaluates a set of objectives over a set of burn-rate windows.
// Safe for concurrent use. A nil *Engine is a valid no-op.
type Engine struct {
	// Now is the clock (defaults to time.Now); replace it before first
	// use to drive tests deterministically.
	Now func() time.Time

	mu         sync.Mutex
	windows    []time.Duration
	objectives map[string]*state
	order      []string
}

// New builds an engine for the given objectives and burn-rate windows
// (no windows = the default 5m and 1h pair).
func New(objectives []Objective, windows ...time.Duration) *Engine {
	if len(windows) == 0 {
		windows = []time.Duration{5 * time.Minute, time.Hour}
	}
	e := &Engine{
		Now:        time.Now,
		windows:    windows,
		objectives: map[string]*state{},
	}
	for _, o := range objectives {
		if o.Budget <= 0 {
			o.Budget = 0.01
		}
		st := &state{obj: o}
		for _, d := range windows {
			st.wins = append(st.wins, newWindow(d))
		}
		e.objectives[o.Name] = st
		e.order = append(e.order, o.Name)
	}
	return e
}

// Observe records one request outcome against the named objective.
// Unknown names are ignored (the caller maps routes onto objectives).
func (e *Engine) Observe(name string, seconds float64, isError bool) {
	if e == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	st, ok := e.objectives[name]
	if !ok {
		return
	}
	bad := isError || (st.obj.Latency > 0 && seconds > st.obj.Latency.Seconds())
	st.total++
	if bad {
		st.bad++
	}
	now := e.Now()
	for _, w := range st.wins {
		w.observe(now, bad)
	}
}

// WindowBurn is one objective's burn state over one window.
type WindowBurn struct {
	Window      string  `json:"window"`
	Total       int64   `json:"total"`
	Bad         int64   `json:"bad"`
	BadFraction float64 `json:"bad_fraction"`
	BurnRate    float64 `json:"burn_rate"`
}

// Status is one objective's full snapshot.
type Status struct {
	Name            string       `json:"name"`
	LatencyMS       float64      `json:"latency_ms,omitempty"`
	Budget          float64      `json:"error_budget"`
	Total           int64        `json:"total"`
	Bad             int64        `json:"bad"`
	BudgetRemaining float64      `json:"budget_remaining"`
	Windows         []WindowBurn `json:"windows"`
}

// Snapshot returns every objective's status keyed by name.
func (e *Engine) Snapshot() map[string]Status {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	now := e.Now()
	out := make(map[string]Status, len(e.objectives))
	for _, name := range e.order {
		st := e.objectives[name]
		s := Status{
			Name:            name,
			LatencyMS:       1e3 * st.obj.Latency.Seconds(),
			Budget:          st.obj.Budget,
			Total:           st.total,
			Bad:             st.bad,
			BudgetRemaining: budgetRemaining(st),
		}
		for _, w := range st.wins {
			total, bad := w.sum(now)
			wb := WindowBurn{Window: WindowLabel(w.dur), Total: total, Bad: bad}
			if total > 0 {
				wb.BadFraction = float64(bad) / float64(total)
				wb.BurnRate = wb.BadFraction / st.obj.Budget
			}
			s.Windows = append(s.Windows, wb)
		}
		out[name] = s
	}
	return out
}

// budgetRemaining is the unconsumed lifetime budget fraction; it goes
// negative once the objective is overspent (deliberately not clamped —
// "-3.2 budgets burned" is the useful fact).
func budgetRemaining(st *state) float64 {
	if st.total == 0 {
		return 1
	}
	return 1 - float64(st.bad)/(st.obj.Budget*float64(st.total))
}

// Export refreshes slo_burn_rate{slo,window} and
// slo_budget_remaining{slo} gauges on the tracer (nil-safe), typically
// right before a /metrics render.
func (e *Engine) Export(tr *obs.Tracer) {
	if e == nil || tr == nil {
		return
	}
	for name, s := range e.Snapshot() {
		for _, wb := range s.Windows {
			tr.Gauge(obs.Labeled("slo/burn_rate", "slo", name, "window", wb.Window)).Set(wb.BurnRate)
		}
		tr.Gauge(obs.Labeled("slo/budget_remaining", "slo", name)).Set(s.BudgetRemaining)
	}
}

// WindowLabel renders a window duration as a compact label value:
// 5m0s -> "5m", 1h0m0s -> "1h", 3s -> "3s".
func WindowLabel(d time.Duration) string {
	switch {
	case d >= time.Hour && d%time.Hour == 0:
		return fmt.Sprintf("%dh", d/time.Hour)
	case d >= time.Minute && d%time.Minute == 0:
		return fmt.Sprintf("%dm", d/time.Minute)
	case d >= time.Second && d%time.Second == 0:
		return fmt.Sprintf("%ds", d/time.Second)
	default:
		return d.String()
	}
}
