// Package obs provides flow-wide telemetry for the Bestagon design flow:
// hierarchical wall-clock spans, typed counters/gauges/histograms, and a
// machine-readable RunReport aggregating an entire run.
//
// The package is zero-dependency (standard library only) and designed so
// that an absent tracer is free: every method is safe to call on a nil
// *Tracer, nil *Span, nil *Counter, nil *Gauge, and nil *Histogram, and the
// nil fast path performs no allocations and no locking. Library users that
// do not opt into telemetry therefore pay nothing.
//
// Spans nest implicitly: Tracer.Start pushes onto an active-span stack and
// Span.End pops, so deeply layered components (core -> pnr -> sat) need
// only a *Tracer, not their parent span. The implicit nesting models the
// flow's sequential structure; counters, gauges and histograms are
// additionally safe for concurrent use from multiple goroutines.
package obs

import (
	"sync"
	"time"
)

// Tracer collects spans and metrics for one flow run. The zero value is not
// usable; construct with New. A nil *Tracer is a valid no-op tracer.
type Tracer struct {
	mu      sync.Mutex
	started time.Time
	roots   []*Span
	stack   []*Span
	sink    Sink

	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// New returns an empty tracer; its start time anchors the run report.
func New() *Tracer {
	return &Tracer{
		started:    time.Now(),
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
	}
}

// Sink receives completed spans as they end; SpanEnd must not retain or
// mutate the span. A sink enables streaming trace output without waiting
// for the final report.
type Sink interface {
	SpanEnd(s *Span)
}

// SetSink installs the span sink (nil to remove).
func (t *Tracer) SetSink(s Sink) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.sink = s
	t.mu.Unlock()
}

// Span is one timed region of the flow. A nil *Span is a valid no-op.
type Span struct {
	t        *Tracer
	parent   *Span
	name     string
	start    time.Time
	dur      time.Duration
	ended    bool
	children []*Span
	attrs    []Attr
}

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string `json:"key"`
	Value any    `json:"value"`
}

// Start opens a span nested under the currently active span (or as a new
// root). The returned span must be closed with End.
func (t *Tracer) Start(name string) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	sp := &Span{t: t, name: name, start: time.Now()}
	if n := len(t.stack); n > 0 {
		sp.parent = t.stack[n-1]
		sp.parent.children = append(sp.parent.children, sp)
	} else {
		t.roots = append(t.roots, sp)
	}
	t.stack = append(t.stack, sp)
	return sp
}

// End closes the span, fixing its duration. Ending an already-ended span is
// a no-op. Any still-open descendants are implicitly deactivated.
func (s *Span) End() {
	if s == nil {
		return
	}
	t := s.t
	t.mu.Lock()
	if s.ended {
		t.mu.Unlock()
		return
	}
	s.ended = true
	s.dur = time.Since(s.start)
	for i := len(t.stack) - 1; i >= 0; i-- {
		if t.stack[i] == s {
			t.stack = t.stack[:i]
			break
		}
	}
	sink := t.sink
	t.mu.Unlock()
	if sink != nil {
		sink.SpanEnd(s)
	}
}

// SetAttr annotates the span, replacing any previous value for the key.
// Values must be JSON-serializable for the run report.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			s.attrs[i].Value = value
			return
		}
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// Name returns the span name.
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Duration returns the span's wall-clock duration; for a still-open span it
// returns the time elapsed so far.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	return s.durationLocked()
}

func (s *Span) durationLocked() time.Duration {
	if s.ended {
		return s.dur
	}
	return time.Since(s.start)
}

// Attr returns the value of an annotation, or nil when absent.
func (s *Span) Attr(key string) any {
	if s == nil {
		return nil
	}
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	for _, a := range s.attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return nil
}
