package obs

import (
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestLabeled(t *testing.T) {
	got := Labeled("http_requests_total", "method", "POST", "code", "200")
	want := `http_requests_total{method="POST",code="200"}`
	if got != want {
		t.Fatalf("Labeled = %q, want %q", got, want)
	}
	if got := Labeled("plain"); got != "plain" {
		t.Fatalf("Labeled no-kv = %q", got)
	}
	got = Labeled("m", "k", `a"b\c`)
	want = `m{k="a\"b\\c"}`
	if got != want {
		t.Fatalf("Labeled escaping = %q, want %q", got, want)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("odd kv count did not panic")
		}
	}()
	Labeled("m", "k")
}

// TestExpositionGolden pins the full exposition output for a small, fixed
// metric set: HELP/TYPE headers, sorted families, label merging, and the
// complete histogram rendering with cumulative buckets, +Inf, _sum, and
// _count.
func TestExpositionGolden(t *testing.T) {
	tr := New()
	tr.Counter("queue/submitted").Add(3)
	tr.Counter(Labeled("http/requests_total", "method", "POST", "code", "200")).Add(2)
	tr.Counter(Labeled("http/requests_total", "method", "GET", "code", "200")).Add(5)
	tr.Gauge("queue/depth").Set(1.5)
	h := tr.Histogram("req/seconds", 0.1, 1)
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(0.7)
	h.Observe(42)

	var b strings.Builder
	if err := tr.WriteExposition(&b, map[string]string{
		"queue_submitted": "Jobs accepted into the queue.",
	}); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		`# TYPE http_requests_total counter`,
		`http_requests_total{method="GET",code="200"} 5`,
		`http_requests_total{method="POST",code="200"} 2`,
		`# TYPE queue_depth gauge`,
		`queue_depth 1.5`,
		`# HELP queue_submitted Jobs accepted into the queue.`,
		`# TYPE queue_submitted counter`,
		`queue_submitted 3`,
		`# TYPE req_seconds histogram`,
		`req_seconds_bucket{le="0.1"} 1`,
		`req_seconds_bucket{le="1"} 3`,
		`req_seconds_bucket{le="+Inf"} 4`,
		`req_seconds_sum 43.25`,
		`req_seconds_count 4`,
	}, "\n") + "\n"
	if got := b.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestExpositionBucketsCumulative is the regression test for the lossy
// /metrics bug: the old renderer exported only count/sum, dropping every
// bucket. The exposition must contain one _bucket line per bound plus
// +Inf, with non-decreasing cumulative values ending at the count.
func TestExpositionBucketsCumulative(t *testing.T) {
	tr := New()
	h := tr.Histogram(Labeled("lat_seconds", "path", "/v1/flow"), 0.01, 0.1, 1, 10)
	for _, v := range []float64{0.005, 0.005, 0.05, 0.5, 5, 50} {
		h.Observe(v)
	}
	var b strings.Builder
	if err := tr.WriteExposition(&b, nil); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	var cum []int64
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "lat_seconds_bucket{") {
			continue
		}
		if !strings.Contains(line, `path="/v1/flow"`) {
			t.Fatalf("bucket line lost its labels: %s", line)
		}
		v, err := strconv.ParseInt(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
		if err != nil {
			t.Fatalf("bad bucket line %q: %v", line, err)
		}
		cum = append(cum, v)
	}
	if len(cum) != 5 { // 4 bounds + +Inf
		t.Fatalf("expected 5 bucket series, got %d in:\n%s", len(cum), out)
	}
	for i := 1; i < len(cum); i++ {
		if cum[i] < cum[i-1] {
			t.Fatalf("buckets not cumulative: %v", cum)
		}
	}
	if want := []int64{2, 3, 4, 5, 6}; cum[len(cum)-1] != 6 || cum[0] != want[0] {
		t.Fatalf("cumulative buckets = %v, want %v", cum, want)
	}
	if !strings.Contains(out, `lat_seconds_bucket{path="/v1/flow",le="+Inf"} 6`) {
		t.Fatalf("+Inf bucket must equal the observation count:\n%s", out)
	}
	if !strings.Contains(out, `lat_seconds_count{path="/v1/flow"} 6`) {
		t.Fatalf("missing _count:\n%s", out)
	}
}

func TestHistogramBoundMismatchPanics(t *testing.T) {
	tr := New()
	tr.Histogram("h", 1, 2, 3)
	tr.Histogram("h")          // retrieval without bounds is fine
	tr.Histogram("h", 3, 2, 1) // same set, different order: normalizes equal
	tr.Histogram("h", 1, 1, 2, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched bounds did not panic")
		}
	}()
	tr.Histogram("h", 1, 2, 4)
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(10, 20, 30)
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %v", got)
	}
	// 100 observations uniform in (0,10], 100 in (10,20].
	for i := 0; i < 100; i++ {
		h.Observe(5)
		h.Observe(15)
	}
	if got := h.Quantile(0.5); got != 10 {
		t.Fatalf("p50 = %v, want 10", got)
	}
	// p75: rank 150 of 200 lands mid-bucket (10,20] → 15 by interpolation.
	if got := h.Quantile(0.75); got != 15 {
		t.Fatalf("p75 = %v, want 15", got)
	}
	h.Observe(1e9) // overflow clamps to the top bound
	if got := h.Quantile(1); got != 30 {
		t.Fatalf("p100 with overflow = %v, want 30", got)
	}
}

func TestRollingWindow(t *testing.T) {
	var nilW *RollingWindow
	nilW.Observe(1, false) // nil-safe
	if s := nilW.Snapshot(); s.Size != 0 {
		t.Fatalf("nil window snapshot = %+v", s)
	}
	w := NewRollingWindow(4)
	w.Observe(1, false)
	w.Observe(2, true)
	w.Observe(3, false)
	s := w.Snapshot()
	if s.Size != 3 || s.Errors != 1 || s.P50 != 2 {
		t.Fatalf("snapshot = %+v", s)
	}
	// Wrap: the two oldest (1s and 2s, the error) fall out.
	w.Observe(4, false)
	w.Observe(5, false)
	w.Observe(6, false)
	s = w.Snapshot()
	if s.Size != 4 || s.Errors != 0 {
		t.Fatalf("wrapped snapshot = %+v", s)
	}
	if s.P99 != 6 || s.P50 != 4 {
		t.Fatalf("wrapped percentiles = %+v", s)
	}
}

// TestConcurrentObserveAndExposition drives Histogram.Observe from many
// goroutines while the exposition writer renders concurrently; under
// -race this is the data-race test for the /metrics hot path.
func TestConcurrentObserveAndExposition(t *testing.T) {
	tr := New()
	const goroutines, perG = 8, 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			h := tr.Histogram("concurrent_seconds", DefBuckets...)
			for i := 0; i < perG; i++ {
				h.Observe(float64(i%100) / 100)
				if i%50 == 0 {
					var b strings.Builder
					if err := tr.WriteExposition(&b, nil); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if got := tr.Histogram("concurrent_seconds").Count(); got != goroutines*perG {
		t.Fatalf("count = %d, want %d", got, goroutines*perG)
	}
	var b strings.Builder
	if err := tr.WriteExposition(&b, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `concurrent_seconds_count 4000`) {
		t.Fatalf("final exposition missing total count:\n%s", b.String())
	}
}
