package obs

import "testing"

// TestParseReportSolverDepthRoundTrip builds a report carrying the
// solver-depth attrs the exact P&R and simulation engines emit
// (conflicts, propagations, acceptance rates, per-size solve times),
// serializes it, and checks everything survives the JSON round trip.
// JSON numbers decode as float64, so consumers must coerce — the test
// pins that contract.
func TestParseReportSolverDepthRoundTrip(t *testing.T) {
	tr := New()
	root := tr.Start("pnr/exact")
	size := tr.Start("pnr/exact/size")
	size.SetAttr("w", 3)
	size.SetAttr("h", 9)
	size.SetAttr("status", "sat")
	size.SetAttr("conflicts", int64(1234))
	size.SetAttr("propagations", int64(567890))
	size.SetAttr("restarts", 7)
	size.SetAttr("solve_seconds", 0.125)
	size.End()
	anneal := tr.Start("sim/anneal")
	anneal.SetAttr("acceptance_rate", 0.4375)
	anneal.End()
	root.End()
	tr.Counter("sat/conflicts").Add(1234)
	tr.Counter("pnr/exact/sizes_pruned").Add(2)

	data, err := tr.Report("roundtrip").JSON()
	if err != nil {
		t.Fatalf("JSON: %v", err)
	}
	r, err := ParseReport(data)
	if err != nil {
		t.Fatalf("ParseReport: %v", err)
	}
	if r.Name != "roundtrip" {
		t.Fatalf("Name = %q, want roundtrip", r.Name)
	}

	sz := r.Stage("pnr/exact/size")
	if sz == nil {
		t.Fatal("pnr/exact/size stage missing after round trip")
	}
	// Every numeric attr comes back as float64 regardless of how it was
	// set (int, int64, float64).
	for key, want := range map[string]float64{
		"w": 3, "h": 9, "conflicts": 1234, "propagations": 567890,
		"restarts": 7, "solve_seconds": 0.125,
	} {
		got, ok := sz.Attrs[key].(float64)
		if !ok || got != want {
			t.Errorf("attr %q = %v (%T), want float64 %v", key, sz.Attrs[key], sz.Attrs[key], want)
		}
	}
	if got, ok := sz.Attrs["status"].(string); !ok || got != "sat" {
		t.Errorf("attr status = %v, want \"sat\"", sz.Attrs["status"])
	}

	an := r.Stage("sim/anneal")
	if an == nil {
		t.Fatal("sim/anneal stage missing after round trip")
	}
	if got := an.Attrs["acceptance_rate"].(float64); got != 0.4375 {
		t.Errorf("acceptance_rate = %v, want 0.4375", got)
	}

	if got := r.Counter("sat/conflicts"); got != 1234 {
		t.Errorf("Counter(sat/conflicts) = %d, want 1234", got)
	}
	if got := r.Counter("pnr/exact/sizes_pruned"); got != 2 {
		t.Errorf("Counter(pnr/exact/sizes_pruned) = %d, want 2", got)
	}
	if got := r.Counter("no/such/counter"); got != 0 {
		t.Errorf("absent counter = %d, want 0", got)
	}
}
