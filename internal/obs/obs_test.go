package obs

import (
	"encoding/json"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanNesting(t *testing.T) {
	tr := New()
	root := tr.Start("flow")
	a := tr.Start("a")
	aa := tr.Start("a/a")
	aa.End()
	a.End()
	b := tr.Start("b")
	b.End()
	root.End()

	rep := tr.Report("test")
	if len(rep.Stages) != 1 || rep.Stages[0].Name != "flow" {
		t.Fatalf("want one root 'flow', got %+v", rep.Stages)
	}
	flow := rep.Stages[0]
	if len(flow.Children) != 2 || flow.Children[0].Name != "a" || flow.Children[1].Name != "b" {
		t.Fatalf("children wrong: %+v", flow.Children)
	}
	if len(flow.Children[0].Children) != 1 || flow.Children[0].Children[0].Name != "a/a" {
		t.Fatalf("grandchild wrong: %+v", flow.Children[0].Children)
	}
	if rep.Stage("a/a") == nil || rep.Stage("missing") != nil {
		t.Error("Stage finder broken")
	}
}

func TestSpanDurationMonotonicity(t *testing.T) {
	tr := New()
	parent := tr.Start("parent")
	child := tr.Start("child")
	time.Sleep(2 * time.Millisecond)
	child.End()
	time.Sleep(time.Millisecond)
	parent.End()

	cd, pd := child.Duration(), parent.Duration()
	if cd <= 0 || pd <= 0 {
		t.Fatalf("durations must be positive: child=%v parent=%v", cd, pd)
	}
	if cd > pd {
		t.Errorf("child duration %v exceeds parent %v", cd, pd)
	}
	// Duration is fixed after End.
	time.Sleep(time.Millisecond)
	if child.Duration() != cd {
		t.Error("ended span duration not stable")
	}
	// Double End is a no-op.
	child.End()
	if child.Duration() != cd {
		t.Error("double End changed duration")
	}
}

func TestSpanAttrs(t *testing.T) {
	tr := New()
	sp := tr.Start("s")
	sp.SetAttr("w", 3)
	sp.SetAttr("w", 4) // replace
	sp.SetAttr("status", "SAT")
	sp.End()
	if got := sp.Attr("w"); got != 4 {
		t.Errorf("attr w = %v, want 4", got)
	}
	if got := sp.Attr("status"); got != "SAT" {
		t.Errorf("attr status = %v", got)
	}
	if sp.Attr("missing") != nil {
		t.Error("missing attr must be nil")
	}
}

func TestOutOfOrderEnd(t *testing.T) {
	tr := New()
	a := tr.Start("a")
	b := tr.Start("b")
	a.End() // ends before its child; must not corrupt the stack
	b.End()
	c := tr.Start("c")
	c.End()
	rep := tr.Report("test")
	if rep.Stage("c") == nil {
		t.Error("span after out-of-order End lost")
	}
}

func TestHistogramBucketEdges(t *testing.T) {
	h := NewHistogram(1, 10, 100)
	// Edge semantics: v <= bound lands in that bucket.
	for _, v := range []float64{0, 1} { // bucket 0 (<=1)
		h.Observe(v)
	}
	for _, v := range []float64{1.0001, 5, 10} { // bucket 1 (<=10)
		h.Observe(v)
	}
	h.Observe(100)  // bucket 2 (<=100)
	h.Observe(1000) // overflow
	bounds, counts := h.Buckets()
	if !reflect.DeepEqual(bounds, []float64{1, 10, 100}) {
		t.Fatalf("bounds = %v", bounds)
	}
	if !reflect.DeepEqual(counts, []int64{2, 3, 1, 1}) {
		t.Errorf("counts = %v, want [2 3 1 1]", counts)
	}
	if h.Count() != 7 {
		t.Errorf("count = %d, want 7", h.Count())
	}
	if h.Sum() != 0+1+1.0001+5+10+100+1000 {
		t.Errorf("sum = %v", h.Sum())
	}
}

func TestHistogramBoundsSortedDeduped(t *testing.T) {
	h := NewHistogram(10, 1, 10, 5)
	bounds, counts := h.Buckets()
	if !reflect.DeepEqual(bounds, []float64{1, 5, 10}) {
		t.Fatalf("bounds = %v", bounds)
	}
	if len(counts) != 4 {
		t.Fatalf("counts len = %d", len(counts))
	}
}

func TestCounterGauge(t *testing.T) {
	tr := New()
	tr.Counter("c").Inc()
	tr.Counter("c").Add(4)
	if tr.Counter("c").Value() != 5 {
		t.Errorf("counter = %d", tr.Counter("c").Value())
	}
	tr.Gauge("g").Set(2.5)
	if tr.Gauge("g").Value() != 2.5 {
		t.Errorf("gauge = %v", tr.Gauge("g").Value())
	}
	rep := tr.Report("test")
	if rep.Counter("c") != 5 {
		t.Errorf("report counter = %d", rep.Counter("c"))
	}
	if rep.Metrics["g"].Value != 2.5 || rep.Metrics["g"].Type != "gauge" {
		t.Errorf("report gauge = %+v", rep.Metrics["g"])
	}
}

// TestNilTracerIsFree asserts the no-op fast path allocates nothing: the
// documented contract that library users without a tracer pay zero cost.
func TestNilTracerIsFree(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		sp := tr.Start("pnr/exact")
		sp.SetAttr("w", 3)
		sp.SetAttr("status", "SAT")
		child := tr.Start("child")
		child.End()
		sp.End()
		tr.Counter("sat/conflicts").Add(17)
		tr.Counter("sat/conflicts").Inc()
		tr.Gauge("flow/area_nm2").Set(1.5)
		tr.Histogram("h", 1, 2, 3).Observe(2)
		_ = sp.Duration()
		_ = sp.Name()
		_ = tr.Report("x")
	})
	if allocs != 0 {
		t.Errorf("nil tracer path allocates %v times per op, want 0", allocs)
	}
}

func TestRunReportJSONRoundTrip(t *testing.T) {
	tr := New()
	root := tr.Start("flow")
	sp := tr.Start("pnr/exact")
	sp.SetAttr("w", 3)
	sp.SetAttr("engine", "exact")
	sp.End()
	root.End()
	tr.Counter("sat/conflicts").Add(42)
	tr.Gauge("flow/area_nm2").Set(764.5)
	h := tr.Histogram("pnr/exact/conflicts_per_size", 10, 100)
	h.Observe(5)
	h.Observe(1e6)

	rep := tr.Report("c17")
	data, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseReport(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != rep.Name || back.WallSeconds != rep.WallSeconds {
		t.Errorf("header mismatch: %+v vs %+v", back, rep)
	}
	if back.Counter("sat/conflicts") != 42 {
		t.Errorf("counter lost: %v", back.Counter("sat/conflicts"))
	}
	if back.Metrics["flow/area_nm2"].Value != 764.5 {
		t.Error("gauge lost")
	}
	hm := back.Metrics["pnr/exact/conflicts_per_size"]
	if hm.Count != 2 || !reflect.DeepEqual(hm.Buckets, []int64{1, 0, 1}) {
		t.Errorf("histogram lost: %+v", hm)
	}
	st := back.Stage("pnr/exact")
	if st == nil {
		t.Fatal("stage lost")
	}
	// JSON numbers decode as float64.
	if st.Attrs["w"] != float64(3) || st.Attrs["engine"] != "exact" {
		t.Errorf("attrs lost: %+v", st.Attrs)
	}
	// Round-trip again: the decoded form must re-encode identically.
	data2, err := back.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var a, b any
	if err := json.Unmarshal(data, &a); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data2, &b); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("JSON round-trip not stable")
	}
}

func TestRenderTree(t *testing.T) {
	tr := New()
	root := tr.Start("flow")
	sp := tr.Start("verify")
	sp.SetAttr("conflicts", 7)
	sp.End()
	root.End()
	out := tr.Report("x").RenderTree()
	for _, want := range []string{"flow", "  verify", "conflicts=7", "ms"} {
		if !strings.Contains(out, want) {
			t.Errorf("tree output missing %q:\n%s", want, out)
		}
	}
}

type recordSink struct {
	mu    sync.Mutex
	names []string
}

func (r *recordSink) SpanEnd(s *Span) {
	r.mu.Lock()
	r.names = append(r.names, s.Name())
	r.mu.Unlock()
}

func TestSinkReceivesSpans(t *testing.T) {
	tr := New()
	sink := &recordSink{}
	tr.SetSink(sink)
	a := tr.Start("a")
	b := tr.Start("b")
	b.End()
	a.End()
	if !reflect.DeepEqual(sink.names, []string{"b", "a"}) {
		t.Errorf("sink got %v", sink.names)
	}
}

func TestConcurrentMetrics(t *testing.T) {
	tr := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				tr.Counter("n").Inc()
				tr.Histogram("h", 1, 10).Observe(float64(i % 20))
				sp := tr.Start("worker")
				sp.End()
			}
		}()
	}
	wg.Wait()
	if got := tr.Counter("n").Value(); got != 8000 {
		t.Errorf("counter = %d, want 8000", got)
	}
	if got := tr.Histogram("h").Count(); got != 8000 {
		t.Errorf("histogram count = %d, want 8000", got)
	}
}
