package obslog

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func fixedClock() time.Time {
	return time.Date(2024, 3, 1, 12, 0, 0, 123456789, time.UTC)
}

func TestJSONLine(t *testing.T) {
	var buf bytes.Buffer
	l := New(&buf, LevelDebug)
	l.now = fixedClock
	l.Info("request", F("method", "POST"), F("status", 200), F("duration_ms", 1.5))
	want := `{"ts":"2024-03-01T12:00:00.123456789Z","level":"info","msg":"request","method":"POST","status":200,"duration_ms":1.5}` + "\n"
	if got := buf.String(); got != want {
		t.Fatalf("line = %q, want %q", got, want)
	}
	var m map[string]any
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatalf("line is not valid JSON: %v", err)
	}
}

func TestLevelFiltering(t *testing.T) {
	var buf bytes.Buffer
	l := New(&buf, LevelWarn)
	l.Debug("nope")
	l.Info("nope")
	l.Warn("yes")
	l.Error("also")
	lines := strings.Count(buf.String(), "\n")
	if lines != 2 {
		t.Fatalf("expected 2 lines, got %d:\n%s", lines, buf.String())
	}
	if l.Enabled(LevelInfo) || !l.Enabled(LevelError) {
		t.Fatal("Enabled disagrees with filtering")
	}
}

func TestWithFieldsAndErr(t *testing.T) {
	var buf bytes.Buffer
	l := New(&buf, LevelInfo).With(F("request_id", "abc123"))
	l.Error("job failed", Err(errors.New("boom")), F("job_id", "j00000001"))
	var m map[string]any
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatal(err)
	}
	for k, want := range map[string]string{
		"request_id": "abc123", "error": "boom", "job_id": "j00000001", "level": "error",
	} {
		if m[k] != want {
			t.Fatalf("field %s = %v, want %v", k, m[k], want)
		}
	}
}

func TestNilLoggerIsSafe(t *testing.T) {
	var l *Logger
	l.Info("ignored", F("k", "v"))
	l.With(F("a", 1)).Error("still ignored")
	if l.Enabled(LevelError) {
		t.Fatal("nil logger must report disabled")
	}
}

func TestUnmarshalableValueDegrades(t *testing.T) {
	var buf bytes.Buffer
	l := New(&buf, LevelInfo)
	l.Info("chan", F("v", make(chan int)))
	var m map[string]any
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatalf("line must stay valid JSON: %v\n%s", err, buf.String())
	}
	if _, ok := m["v"].(string); !ok {
		t.Fatalf("unmarshalable value should degrade to a string, got %T", m["v"])
	}
}

func TestParseLevel(t *testing.T) {
	for s, want := range map[string]Level{
		"debug": LevelDebug, "Info": LevelInfo, "WARN": LevelWarn,
		"warning": LevelWarn, " error ": LevelError,
	} {
		got, err := ParseLevel(s)
		if err != nil || got != want {
			t.Fatalf("ParseLevel(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Fatal("expected error for unknown level")
	}
}

// TestConcurrentLogging exercises a shared logger tree from many
// goroutines; under -race it is the logger's data-race test, and the
// line count verifies no interleaved/torn writes.
func TestConcurrentLogging(t *testing.T) {
	var buf bytes.Buffer
	l := New(&buf, LevelInfo)
	const goroutines, perG = 8, 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			child := l.With(F("worker", g))
			for i := 0; i < perG; i++ {
				child.Info("tick", F("i", i))
			}
		}(g)
	}
	wg.Wait()
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != goroutines*perG {
		t.Fatalf("expected %d lines, got %d", goroutines*perG, len(lines))
	}
	for _, line := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("torn line %q: %v", line, err)
		}
	}
}
