// Package obslog is a minimal structured JSON logger for the bestagond
// service: one JSON object per line with a timestamp, level, message, and
// arbitrary key/value fields, suitable for machine ingestion (jq, Loki,
// CloudWatch). It follows the rest of internal/obs in being stdlib-only
// and nil-safe: every method on a nil *Logger is a free no-op, so request
// logging can be disabled by simply not configuring a logger.
package obslog

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// Level orders log severities.
type Level int8

// Severity levels, least to most severe.
const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

// String returns the lowercase level name.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	default:
		return fmt.Sprintf("level(%d)", int8(l))
	}
}

// ParseLevel maps a level name ("debug", "info", "warn", "error",
// case-insensitive) to its Level.
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return LevelDebug, nil
	case "info":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	default:
		return LevelInfo, fmt.Errorf("obslog: unknown level %q (want debug, info, warn, or error)", s)
	}
}

// Field is one key/value pair on a log line.
type Field struct {
	Key   string
	Value any
}

// F builds a Field.
func F(key string, value any) Field { return Field{Key: key, Value: value} }

// Err builds the conventional "error" field (a nil error logs as null).
func Err(err error) Field {
	if err == nil {
		return Field{Key: "error", Value: nil}
	}
	return Field{Key: "error", Value: err.Error()}
}

// Logger writes JSON log lines at or above its level. Construct with New;
// a nil *Logger drops everything. Loggers derived with With share the
// parent's writer and serialize writes through a common mutex, so one
// logger tree is safe for concurrent use from any number of goroutines.
type Logger struct {
	mu    *sync.Mutex
	w     io.Writer
	level Level
	base  []Field
	now   func() time.Time
}

// New builds a logger writing to w, dropping entries below level.
func New(w io.Writer, level Level) *Logger {
	return &Logger{mu: &sync.Mutex{}, w: w, level: level, now: time.Now}
}

// With returns a child logger whose lines always carry the given fields
// (request IDs, job IDs, component names). The child shares the parent's
// writer, level, and write lock.
func (l *Logger) With(fields ...Field) *Logger {
	if l == nil || len(fields) == 0 {
		return l
	}
	base := make([]Field, 0, len(l.base)+len(fields))
	base = append(base, l.base...)
	base = append(base, fields...)
	return &Logger{mu: l.mu, w: l.w, level: l.level, base: base, now: l.now}
}

// Enabled reports whether a line at the level would be written.
func (l *Logger) Enabled(level Level) bool {
	return l != nil && level >= l.level
}

// Log writes one line at the level. Below-threshold lines cost one
// comparison and no allocation.
func (l *Logger) Log(level Level, msg string, fields ...Field) {
	if !l.Enabled(level) {
		return
	}
	var b bytes.Buffer
	b.WriteString(`{"ts":"`)
	b.WriteString(l.now().UTC().Format(time.RFC3339Nano))
	b.WriteString(`","level":"`)
	b.WriteString(level.String())
	b.WriteString(`","msg":`)
	writeJSONValue(&b, msg)
	for _, f := range l.base {
		writeField(&b, f)
	}
	for _, f := range fields {
		writeField(&b, f)
	}
	b.WriteString("}\n")
	l.mu.Lock()
	l.w.Write(b.Bytes())
	l.mu.Unlock()
}

// Debug logs at LevelDebug.
func (l *Logger) Debug(msg string, fields ...Field) { l.Log(LevelDebug, msg, fields...) }

// Info logs at LevelInfo.
func (l *Logger) Info(msg string, fields ...Field) { l.Log(LevelInfo, msg, fields...) }

// Warn logs at LevelWarn.
func (l *Logger) Warn(msg string, fields ...Field) { l.Log(LevelWarn, msg, fields...) }

// Error logs at LevelError.
func (l *Logger) Error(msg string, fields ...Field) { l.Log(LevelError, msg, fields...) }

func writeField(b *bytes.Buffer, f Field) {
	b.WriteByte(',')
	writeJSONValue(b, f.Key)
	b.WriteByte(':')
	writeJSONValue(b, f.Value)
}

// writeJSONValue marshals v, degrading unmarshalable values to their
// fmt.Sprintf rendering instead of dropping the whole line.
func writeJSONValue(b *bytes.Buffer, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		data, _ = json.Marshal(fmt.Sprintf("%v", v))
	}
	b.Write(data)
}
