package obs

import (
	"sync"
	"testing"
)

func TestRollingWindowQuantile(t *testing.T) {
	w := NewRollingWindow(256)
	for i := 1; i <= 100; i++ {
		w.Observe(float64(i), false)
	}
	if got := w.Len(); got != 100 {
		t.Fatalf("Len = %d, want 100", got)
	}
	// Nearest rank over 1..100: ceil(q*100).
	for _, c := range []struct{ q, want float64 }{
		{0.50, 50}, {0.90, 90}, {0.99, 99}, {1.0, 100}, {0.001, 1},
	} {
		if got := w.Quantile(c.q); got != c.want {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestRollingWindowQuantileEviction(t *testing.T) {
	w := NewRollingWindow(4)
	for i := 1; i <= 100; i++ {
		w.Observe(float64(i), false)
	}
	// Only 97..100 remain; the median of the survivors must ignore the 96
	// evicted observations entirely.
	if got := w.Quantile(0.5); got != 98 {
		t.Fatalf("Quantile(0.5) after eviction = %v, want 98", got)
	}
	if got := w.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4", got)
	}
}

func TestRollingWindowQuantileNilAndEmpty(t *testing.T) {
	var nilW *RollingWindow
	if got := nilW.Quantile(0.9); got != 0 {
		t.Fatalf("nil Quantile = %v, want 0", got)
	}
	if got := nilW.Len(); got != 0 {
		t.Fatalf("nil Len = %v, want 0", got)
	}
	if got := NewRollingWindow(8).Quantile(0.9); got != 0 {
		t.Fatalf("empty Quantile = %v, want 0", got)
	}
}

// TestRollingWindowConcurrent drives writers and quantile readers in
// parallel; run under -race it proves the locking.
func TestRollingWindowConcurrent(t *testing.T) {
	w := NewRollingWindow(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				w.Observe(float64(g*1000+i), i%7 == 0)
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				_ = w.Quantile(0.9)
				_ = w.Snapshot()
				_ = w.Len()
			}
		}()
	}
	wg.Wait()
	if got := w.Len(); got != 64 {
		t.Fatalf("Len after concurrent fill = %d, want 64", got)
	}
}
