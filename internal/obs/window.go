package obs

import (
	"math"
	"sort"
	"sync"
)

// RollingWindow keeps the last N latency observations with an error flag
// each, for rolling-window health snapshots (cumulative histograms answer
// "since process start"; the window answers "right now"). A nil
// *RollingWindow is a valid no-op; non-nil windows are safe for
// concurrent use.
type RollingWindow struct {
	mu   sync.Mutex
	buf  []windowSample
	next int
	size int
}

type windowSample struct {
	seconds float64
	err     bool
}

// NewRollingWindow builds a window over the last n observations (n <= 0
// defaults to 256).
func NewRollingWindow(n int) *RollingWindow {
	if n <= 0 {
		n = 256
	}
	return &RollingWindow{buf: make([]windowSample, n)}
}

// Observe records one request outcome, evicting the oldest once full.
func (w *RollingWindow) Observe(seconds float64, isError bool) {
	if w == nil {
		return
	}
	w.mu.Lock()
	w.buf[w.next] = windowSample{seconds: seconds, err: isError}
	w.next = (w.next + 1) % len(w.buf)
	if w.size < len(w.buf) {
		w.size++
	}
	w.mu.Unlock()
}

// WindowSnapshot summarizes the current window contents.
type WindowSnapshot struct {
	// Size is the number of observations currently held.
	Size int `json:"size"`
	// Errors counts observations flagged as errors.
	Errors int `json:"errors"`
	// ErrorRate is Errors/Size (0 when empty).
	ErrorRate float64 `json:"error_rate"`
	// P50/P90/P99 are latency percentiles in seconds (0 when empty).
	P50 float64 `json:"p50_seconds"`
	P90 float64 `json:"p90_seconds"`
	P99 float64 `json:"p99_seconds"`
}

// Snapshot computes the rolling percentiles and error rate.
func (w *RollingWindow) Snapshot() WindowSnapshot {
	if w == nil {
		return WindowSnapshot{}
	}
	w.mu.Lock()
	lat := make([]float64, 0, w.size)
	errs := 0
	for i := 0; i < w.size; i++ {
		s := w.buf[i]
		lat = append(lat, s.seconds)
		if s.err {
			errs++
		}
	}
	w.mu.Unlock()
	snap := WindowSnapshot{Size: len(lat), Errors: errs}
	if len(lat) == 0 {
		return snap
	}
	snap.ErrorRate = float64(errs) / float64(len(lat))
	sort.Float64s(lat)
	snap.P50 = percentile(lat, 0.50)
	snap.P90 = percentile(lat, 0.90)
	snap.P99 = percentile(lat, 0.99)
	return snap
}

// Quantile returns the nearest-rank latency quantile (0 < q <= 1) over
// the window's current contents, 0 when empty. Unlike Snapshot it sorts
// once for a single quantile, so callers that only need one threshold
// (e.g. the flight recorder's slow-trace cutoff) avoid the full summary.
func (w *RollingWindow) Quantile(q float64) float64 {
	if w == nil {
		return 0
	}
	w.mu.Lock()
	lat := make([]float64, 0, w.size)
	for i := 0; i < w.size; i++ {
		lat = append(lat, w.buf[i].seconds)
	}
	w.mu.Unlock()
	if len(lat) == 0 {
		return 0
	}
	sort.Float64s(lat)
	return percentile(lat, q)
}

// Len returns the number of observations currently held.
func (w *RollingWindow) Len() int {
	if w == nil {
		return 0
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.size
}

// percentile is the nearest-rank percentile of a sorted slice.
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(q*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}
