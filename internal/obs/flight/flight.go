// Package flight implements a flight recorder for job traces: a bounded
// in-memory store of recent obs.RunReports with tail-based retention.
// Head-based sampling (decide at admission with a coin flip) loses
// exactly the traces an operator wants when answering "why was 14:03
// slow?" — the rare failures and the latency tail. The recorder instead
// classifies every finished trace by outcome:
//
//   - error: failed, canceled, or degraded work — always admitted;
//   - slow: successful but at or above the SlowQuantile of recent OK
//     latencies — always admitted;
//   - sampled: fast and successful — admitted once every SampleEvery
//     traces (deterministic, not random, so tests and replays agree).
//
// Each class has its own ring, so a flood of fast-OK traffic can never
// evict a retained panic trace; a ring only evicts its own oldest entry.
package flight

import (
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
)

// Class is a retention class of the recorder.
type Class string

// Retention classes, from most to least precious.
const (
	ClassError   Class = "error"
	ClassSlow    Class = "slow"
	ClassSampled Class = "sampled"
)

// Trace is one retained job trace: outcome metadata (the retention key
// and the log-join key) plus the job's full RunReport.
type Trace struct {
	ID        string         `json:"id"`
	Kind      string         `json:"kind"`
	State     string         `json:"state"`
	ErrorKind string         `json:"error_kind,omitempty"`
	Degraded  bool           `json:"degraded,omitempty"`
	RequestID string         `json:"request_id,omitempty"`
	Class     Class          `json:"class"`
	StartedAt time.Time      `json:"started_at"`
	Seconds   float64        `json:"seconds"`
	Report    *obs.RunReport `json:"trace,omitempty"`
}

// Options tunes a Recorder. The zero value is usable: every field
// defaults to the documented value.
type Options struct {
	// ErrorCapacity / SlowCapacity / SampleCapacity bound the per-class
	// rings (defaults 256 / 128 / 64).
	ErrorCapacity  int
	SlowCapacity   int
	SampleCapacity int
	// SampleEvery admits every Nth fast-OK trace (default 16; 1 keeps all).
	SampleEvery int
	// SlowQuantile is the recent-OK-latency quantile at or above which a
	// successful trace is always retained (default 0.90).
	SlowQuantile float64
	// Warmup is the number of OK traces admitted unconditionally before
	// the slow threshold has enough samples to mean anything (default 16).
	Warmup int
	// WindowSize is the number of recent OK latencies the slow threshold
	// is computed over (default 256).
	WindowSize int
	// Tracer receives flight_admitted_total / flight_dropped_total /
	// flight_evicted_total counters and flight_retained gauges (nil-safe).
	Tracer *obs.Tracer
}

func (o Options) withDefaults() Options {
	if o.ErrorCapacity <= 0 {
		o.ErrorCapacity = 256
	}
	if o.SlowCapacity <= 0 {
		o.SlowCapacity = 128
	}
	if o.SampleCapacity <= 0 {
		o.SampleCapacity = 64
	}
	if o.SampleEvery <= 0 {
		o.SampleEvery = 16
	}
	if o.SlowQuantile <= 0 || o.SlowQuantile >= 1 {
		o.SlowQuantile = 0.90
	}
	if o.Warmup <= 0 {
		o.Warmup = 16
	}
	if o.WindowSize <= 0 {
		o.WindowSize = 256
	}
	return o
}

// ring is a fixed-capacity FIFO of traces; pushing over capacity evicts
// the oldest entry and returns it.
type ring struct {
	buf  []*Trace
	next int
	size int
}

func (r *ring) push(t *Trace) (evicted *Trace) {
	if r.size == len(r.buf) {
		evicted = r.buf[r.next]
	} else {
		r.size++
	}
	r.buf[r.next] = t
	r.next = (r.next + 1) % len(r.buf)
	return evicted
}

// Recorder is the flight recorder. Safe for concurrent use.
type Recorder struct {
	opts Options

	mu       sync.Mutex
	rings    map[Class]*ring
	byID     map[string]*Trace
	byReq    map[string]*Trace // latest retained trace per request id
	okWindow *obs.RollingWindow // recent OK latencies (slow threshold source)
	okSeen   int64
	fastSeen int64
	admitted map[Class]int64
	dropped  int64
	evicted  int64
}

// NewRecorder builds a recorder with the given options.
func NewRecorder(opts Options) *Recorder {
	o := opts.withDefaults()
	return &Recorder{
		opts: o,
		rings: map[Class]*ring{
			ClassError:   {buf: make([]*Trace, o.ErrorCapacity)},
			ClassSlow:    {buf: make([]*Trace, o.SlowCapacity)},
			ClassSampled: {buf: make([]*Trace, o.SampleCapacity)},
		},
		byID:     map[string]*Trace{},
		byReq:    map[string]*Trace{},
		okWindow: obs.NewRollingWindow(o.WindowSize),
		admitted: map[Class]int64{},
	}
}

// Record classifies and (maybe) retains a finished trace. It returns the
// assigned retention class, or "" when the trace was not sampled. A nil
// Recorder is a valid no-op.
func (r *Recorder) Record(t Trace) Class {
	if r == nil {
		return ""
	}
	tr := r.opts.Tracer
	r.mu.Lock()
	class := r.classifyLocked(&t)
	if class == "" {
		r.dropped++
		r.mu.Unlock()
		tr.Counter("flight/dropped_total").Inc()
		return ""
	}
	t.Class = class
	stored := t
	if old := r.byID[stored.ID]; old != nil {
		// Re-recording an id (should not happen with queue-issued ids)
		// replaces the payload in place; the ring keeps the old slot.
		oldReq := old.RequestID
		*old = stored
		if oldReq != "" && oldReq != stored.RequestID && r.byReq[oldReq] == old {
			delete(r.byReq, oldReq)
		}
		if stored.RequestID != "" {
			r.byReq[stored.RequestID] = old
		}
		r.mu.Unlock()
		return class
	}
	r.byID[stored.ID] = &stored
	if stored.RequestID != "" {
		// A forwarded request records twice on the entry replica (the local
		// forward stub and, on fallback, the local job); latest wins, which
		// is also the most complete view.
		r.byReq[stored.RequestID] = &stored
	}
	evictedOne := false
	if ev := r.rings[class].push(&stored); ev != nil {
		delete(r.byID, ev.ID)
		if ev.RequestID != "" && r.byReq[ev.RequestID] == ev {
			delete(r.byReq, ev.RequestID)
		}
		r.evicted++
		evictedOne = true
	}
	r.admitted[class]++
	retained := r.rings[class].size
	r.mu.Unlock()

	if evictedOne {
		tr.Counter(obs.Labeled("flight/evicted_total", "class", string(class))).Inc()
	}
	tr.Counter(obs.Labeled("flight/admitted_total", "class", string(class))).Inc()
	tr.Gauge(obs.Labeled("flight/retained", "class", string(class))).Set(float64(retained))
	return class
}

// classifyLocked assigns the retention class ("" = drop) and feeds the
// OK-latency window. Caller holds r.mu.
func (r *Recorder) classifyLocked(t *Trace) Class {
	if t.ErrorKind != "" || t.Degraded || t.State == "failed" || t.State == "canceled" {
		return ClassError
	}
	// Threshold from the window as it was BEFORE this trace, so a trace
	// never competes against itself.
	threshold := r.okWindow.Quantile(r.opts.SlowQuantile)
	warm := r.okSeen >= int64(r.opts.Warmup)
	r.okWindow.Observe(t.Seconds, false)
	r.okSeen++
	if warm && threshold > 0 && t.Seconds >= threshold {
		return ClassSlow
	}
	if !warm {
		return ClassSampled // everything is interesting until we can rank
	}
	r.fastSeen++
	if r.fastSeen%int64(r.opts.SampleEvery) == 0 {
		return ClassSampled
	}
	return ""
}

// Get returns a copy of the retained trace with the given id.
func (r *Recorder) Get(id string) (Trace, bool) {
	if r == nil {
		return Trace{}, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.byID[id]
	if !ok {
		return Trace{}, false
	}
	return *t, true
}

// GetByRequestID returns a copy of the most recently retained trace whose
// originating request carried the given request id. This is the fleet's
// stitching key: job ids are per-replica, request ids are not.
func (r *Recorder) GetByRequestID(rid string) (Trace, bool) {
	if r == nil || rid == "" {
		return Trace{}, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.byReq[rid]
	if !ok {
		return Trace{}, false
	}
	return *t, true
}

// TraceInfo is the Report-free header of a retained trace, for listings.
type TraceInfo struct {
	ID        string    `json:"id"`
	Kind      string    `json:"kind"`
	Class     Class     `json:"class"`
	State     string    `json:"state"`
	ErrorKind string    `json:"error_kind,omitempty"`
	Degraded  bool      `json:"degraded,omitempty"`
	RequestID string    `json:"request_id,omitempty"`
	StartedAt time.Time `json:"started_at"`
	Seconds   float64   `json:"seconds"`
}

// Summary is the recorder's operational snapshot, served by
// GET /debug/flightrecorder.
type Summary struct {
	Retained             map[Class]int   `json:"retained"`
	Capacity             map[Class]int   `json:"capacity"`
	Admitted             map[Class]int64 `json:"admitted"`
	Dropped              int64           `json:"dropped"`
	Evicted              int64           `json:"evicted"`
	SampleEvery          int             `json:"sample_every"`
	SlowQuantile         float64         `json:"slow_quantile"`
	SlowThresholdSeconds float64         `json:"slow_threshold_seconds"`
	// Traces lists every retained trace header, newest first.
	Traces []TraceInfo `json:"traces"`
}

// Summary snapshots retention state and the retained trace headers.
func (r *Recorder) Summary() Summary {
	if r == nil {
		return Summary{}
	}
	r.mu.Lock()
	s := Summary{
		Retained:             map[Class]int{},
		Capacity:             map[Class]int{},
		Admitted:             map[Class]int64{},
		Dropped:              r.dropped,
		Evicted:              r.evicted,
		SampleEvery:          r.opts.SampleEvery,
		SlowQuantile:         r.opts.SlowQuantile,
		SlowThresholdSeconds: r.okWindow.Quantile(r.opts.SlowQuantile),
	}
	for c, rg := range r.rings {
		s.Retained[c] = rg.size
		s.Capacity[c] = len(rg.buf)
	}
	for c, n := range r.admitted {
		s.Admitted[c] = n
	}
	for _, t := range r.byID {
		s.Traces = append(s.Traces, TraceInfo{
			ID: t.ID, Kind: t.Kind, Class: t.Class, State: t.State,
			ErrorKind: t.ErrorKind, Degraded: t.Degraded,
			RequestID: t.RequestID, StartedAt: t.StartedAt, Seconds: t.Seconds,
		})
	}
	r.mu.Unlock()
	sort.Slice(s.Traces, func(i, j int) bool {
		if !s.Traces[i].StartedAt.Equal(s.Traces[j].StartedAt) {
			return s.Traces[i].StartedAt.After(s.Traces[j].StartedAt)
		}
		return s.Traces[i].ID > s.Traces[j].ID
	})
	return s
}
