package flight

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

func okTrace(id string, secs float64) Trace {
	return Trace{ID: id, Kind: "flow", State: "done", Seconds: secs,
		StartedAt: time.Unix(1700000000, 0).Add(time.Duration(len(id)) * time.Millisecond)}
}

func errTrace(id string) Trace {
	return Trace{ID: id, Kind: "flow", State: "failed", ErrorKind: "timeout", Seconds: 0.01}
}

// TestErrorsAlwaysKept floods the recorder with fast-OK traffic and
// checks that every error trace stays retrievable: error traces live in
// their own ring and sampled traffic can never evict them.
func TestErrorsAlwaysKept(t *testing.T) {
	r := NewRecorder(Options{Tracer: obs.New()})
	errIDs := make([]string, 0, 50)
	for i := 0; i < 50; i++ {
		id := fmt.Sprintf("err-%d", i)
		errIDs = append(errIDs, id)
		if got := r.Record(errTrace(id)); got != ClassError {
			t.Fatalf("Record(%s) class = %q, want error", id, got)
		}
	}
	for i := 0; i < 5000; i++ {
		r.Record(okTrace(fmt.Sprintf("ok-%d", i), 0.001))
	}
	for _, id := range errIDs {
		tr, ok := r.Get(id)
		if !ok {
			t.Fatalf("error trace %s evicted by fast-OK flood", id)
		}
		if tr.Class != ClassError || tr.ErrorKind != "timeout" {
			t.Fatalf("Get(%s) = %+v, want error class with timeout kind", id, tr)
		}
	}
}

func TestDegradedIsErrorClass(t *testing.T) {
	r := NewRecorder(Options{})
	tr := Trace{ID: "deg-1", Kind: "flow", State: "done", Degraded: true, Seconds: 0.5}
	if got := r.Record(tr); got != ClassError {
		t.Fatalf("degraded trace class = %q, want error", got)
	}
}

// TestSamplingCadence verifies the deterministic fast-OK cadence: after
// warmup, exactly every SampleEvery-th fast trace is admitted.
func TestSamplingCadence(t *testing.T) {
	r := NewRecorder(Options{Warmup: 4, SampleEvery: 8, WindowSize: 1024})
	// Warmup traces are all admitted as sampled.
	for i := 0; i < 4; i++ {
		if got := r.Record(okTrace(fmt.Sprintf("warm-%d", i), 0.001)); got != ClassSampled {
			t.Fatalf("warmup trace %d class = %q, want sampled", i, got)
		}
	}
	kept := 0
	for i := 0; i < 80; i++ {
		// Strictly decreasing latencies: each trace is faster than every
		// prior one, so it is always below the recent-OK p90 (the slow
		// comparison is >=, so a constant latency would read as slow once
		// it dominates the window).
		lat := 0.001 / float64(i+2)
		if got := r.Record(okTrace(fmt.Sprintf("fast-%d", i), lat)); got == ClassSampled {
			kept++
		} else if got == ClassSlow {
			t.Fatalf("fast trace %d classified slow", i)
		}
	}
	if kept != 10 {
		t.Fatalf("kept %d of 80 fast traces with SampleEvery=8, want 10", kept)
	}
}

// TestSlowAlwaysKept checks that a trace at or above the recent-OK p90
// is retained regardless of the sampling cadence.
func TestSlowAlwaysKept(t *testing.T) {
	r := NewRecorder(Options{Warmup: 4, SampleEvery: 1000000, WindowSize: 1024})
	for i := 0; i < 20; i++ {
		r.Record(okTrace(fmt.Sprintf("base-%d", i), 0.001))
	}
	if got := r.Record(okTrace("slowpoke", 5.0)); got != ClassSlow {
		t.Fatalf("slow outlier class = %q, want slow", got)
	}
	if _, ok := r.Get("slowpoke"); !ok {
		t.Fatal("slow trace not retrievable")
	}
}

// TestEvictionUpdatesByID fills a tiny error ring past capacity and
// checks evicted ids 404 while the newest stay retrievable.
func TestEvictionUpdatesByID(t *testing.T) {
	r := NewRecorder(Options{ErrorCapacity: 4})
	for i := 0; i < 10; i++ {
		r.Record(errTrace(fmt.Sprintf("e-%d", i)))
	}
	for i := 0; i < 6; i++ {
		if _, ok := r.Get(fmt.Sprintf("e-%d", i)); ok {
			t.Fatalf("e-%d should have been evicted", i)
		}
	}
	for i := 6; i < 10; i++ {
		if _, ok := r.Get(fmt.Sprintf("e-%d", i)); !ok {
			t.Fatalf("e-%d should be retained", i)
		}
	}
	s := r.Summary()
	if s.Evicted != 6 {
		t.Fatalf("Summary.Evicted = %d, want 6", s.Evicted)
	}
	if s.Retained[ClassError] != 4 {
		t.Fatalf("Summary.Retained[error] = %d, want 4", s.Retained[ClassError])
	}
}

func TestGetReturnsCopy(t *testing.T) {
	r := NewRecorder(Options{})
	r.Record(errTrace("orig"))
	got, ok := r.Get("orig")
	if !ok {
		t.Fatal("trace not found")
	}
	got.ErrorKind = "mutated"
	again, _ := r.Get("orig")
	if again.ErrorKind != "timeout" {
		t.Fatalf("Get returned a shared pointer: ErrorKind = %q", again.ErrorKind)
	}
}

func TestSummaryNewestFirst(t *testing.T) {
	r := NewRecorder(Options{})
	base := time.Unix(1700000000, 0)
	for i := 0; i < 5; i++ {
		tr := errTrace(fmt.Sprintf("s-%d", i))
		tr.StartedAt = base.Add(time.Duration(i) * time.Second)
		r.Record(tr)
	}
	s := r.Summary()
	if len(s.Traces) != 5 {
		t.Fatalf("Summary has %d traces, want 5", len(s.Traces))
	}
	for i := 1; i < len(s.Traces); i++ {
		if s.Traces[i].StartedAt.After(s.Traces[i-1].StartedAt) {
			t.Fatalf("Summary.Traces not newest-first at index %d", i)
		}
	}
	if s.Traces[0].ID != "s-4" {
		t.Fatalf("newest trace = %s, want s-4", s.Traces[0].ID)
	}
}

func TestNilRecorderNoOps(t *testing.T) {
	var r *Recorder
	if got := r.Record(errTrace("x")); got != "" {
		t.Fatalf("nil Record = %q, want empty class", got)
	}
	if _, ok := r.Get("x"); ok {
		t.Fatal("nil Get returned ok")
	}
	if s := r.Summary(); len(s.Traces) != 0 {
		t.Fatal("nil Summary returned traces")
	}
}

// TestRecorderConcurrent hammers Record/Get/Summary from many
// goroutines; run under -race it proves the locking.
func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder(Options{Tracer: obs.New(), ErrorCapacity: 32, SampleCapacity: 16, SlowCapacity: 16})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				id := fmt.Sprintf("c-%d-%d", g, i)
				switch i % 3 {
				case 0:
					r.Record(errTrace(id))
				case 1:
					r.Record(okTrace(id, 0.001))
				default:
					r.Record(okTrace(id, float64(i)))
				}
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				_, _ = r.Get(fmt.Sprintf("c-%d-%d", g, i))
				_ = r.Summary()
			}
		}(g)
	}
	wg.Wait()
	s := r.Summary()
	if s.Retained[ClassError] != 32 {
		t.Fatalf("error ring retained %d, want full 32", s.Retained[ClassError])
	}
	if len(s.Traces) != s.Retained[ClassError]+s.Retained[ClassSlow]+s.Retained[ClassSampled] {
		t.Fatalf("Summary trace count %d != sum of retained %v", len(s.Traces), s.Retained)
	}
}
