package clocking

import (
	"math"
	"testing"

	"repro/internal/hexgrid"
)

func TestRowBasedZones(t *testing.T) {
	s := RowBased{}
	for y := 0; y < 12; y++ {
		want := y % 4
		for x := 0; x < 5; x++ {
			if got := s.Zone(hexgrid.Offset{X: x, Y: y}); got != want {
				t.Errorf("zone(%d,%d) = %d, want %d", x, y, got, want)
			}
		}
	}
}

func TestSchemesFourPhases(t *testing.T) {
	for _, s := range All() {
		seen := map[int]bool{}
		for y := 0; y < 8; y++ {
			for x := 0; x < 8; x++ {
				z := s.Zone(hexgrid.Offset{X: x, Y: y})
				if z < 0 || z >= NumPhases {
					t.Fatalf("%s: zone %d out of range", s.Name(), z)
				}
				seen[z] = true
			}
		}
		if len(seen) != NumPhases {
			t.Errorf("%s: only %d phases used", s.Name(), len(seen))
		}
	}
}

func TestNegativeCoordinates(t *testing.T) {
	for _, s := range All() {
		z := s.Zone(hexgrid.Offset{X: -3, Y: -7})
		if z < 0 || z >= NumPhases {
			t.Errorf("%s: negative coords give zone %d", s.Name(), z)
		}
	}
}

func TestByName(t *testing.T) {
	for _, s := range All() {
		got, err := ByName(s.Name())
		if err != nil || got.Name() != s.Name() {
			t.Errorf("ByName(%q) failed: %v", s.Name(), err)
		}
	}
	if _, err := ByName("bogus"); err == nil {
		t.Error("unknown scheme must error")
	}
}

func TestFeedforwardFlags(t *testing.T) {
	if !(RowBased{}).Feedforward() || !(Columnar{}).Feedforward() || !(TwoDDWave{}).Feedforward() {
		t.Error("linear schemes are feed-forward")
	}
	if (USE{}).Feedforward() {
		t.Error("USE contains loops; not feed-forward")
	}
}

func TestUSEPattern(t *testing.T) {
	// USE repeats with period 4 in both axes.
	s := USE{}
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			a := s.Zone(hexgrid.Offset{X: x, Y: y})
			b := s.Zone(hexgrid.Offset{X: x + 4, Y: y + 4})
			if a != b {
				t.Fatalf("USE not periodic at (%d,%d)", x, y)
			}
		}
	}
}

func TestPlanSuperTiles(t *testing.T) {
	st := PlanSuperTiles(MinMetalPitchNM)
	// Tile height is 46*0.384/2*2 = 17.664 nm; 3 rows = 52.99 nm >= 40.
	if st.RowsPerSuperTile != 3 {
		t.Errorf("rows per super-tile = %d, want 3 at 40 nm pitch", st.RowsPerSuperTile)
	}
	if st.PitchNM < MinMetalPitchNM {
		t.Errorf("super-tile pitch %.2f below minimum", st.PitchNM)
	}
	if math.Abs(st.PitchNM-3*TileHeightNM) > 1e-9 {
		t.Errorf("pitch %.3f != 3 rows", st.PitchNM)
	}
}

func TestPlanSuperTilesLargeTile(t *testing.T) {
	// If tiles were already big enough, one row per super-tile suffices.
	st := PlanSuperTiles(TileHeightNM)
	if st.RowsPerSuperTile != 1 {
		t.Errorf("rows = %d, want 1", st.RowsPerSuperTile)
	}
}

func TestExpandedZone(t *testing.T) {
	st := PlanSuperTiles(MinMetalPitchNM) // 3 rows per super-tile
	// Rows 0..2 share zone 0, rows 3..5 zone 1, ...
	for y := 0; y < 12; y++ {
		want := (y / 3) % 4
		if got := st.ExpandedZone(hexgrid.Offset{X: 1, Y: y}); got != want {
			t.Errorf("expanded zone row %d = %d, want %d", y, got, want)
		}
	}
}

func TestValidate(t *testing.T) {
	s := RowBased{}
	good := [][2]hexgrid.Offset{
		{{X: 0, Y: 0}, {X: 0, Y: 1}},
		{{X: 1, Y: 3}, {X: 1, Y: 4}},
	}
	if bad := Validate(s, good); len(bad) != 0 {
		t.Errorf("valid connections flagged: %v", bad)
	}
	mixed := [][2]hexgrid.Offset{
		{{X: 0, Y: 0}, {X: 0, Y: 1}},
		{{X: 0, Y: 1}, {X: 0, Y: 0}}, // backwards
		{{X: 0, Y: 0}, {X: 1, Y: 0}}, // sideways
	}
	if bad := Validate(s, mixed); len(bad) != 2 {
		t.Errorf("expected 2 violations, got %v", bad)
	}
}
