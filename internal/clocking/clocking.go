// Package clocking implements FCN clocking schemes for hexagonal (and
// Cartesian) floor plans, plus the super-tile grouping the Bestagon paper
// introduces to respect clocking-electrode fabrication limits (§3, Fig. 4).
//
// Clocking stabilizes signals and directs information flow: tiles in clock
// zone z accept inputs from zone (z+3) mod 4 and pass outputs to zone
// (z+1) mod 4 under the standard four-phase regime (Fig. 2). The paper's
// layouts use the Columnar scheme rotated by 90°, i.e. a row-based
// configuration where tile (x, y) is driven by clock zone y mod 4.
package clocking

import (
	"fmt"

	"repro/internal/hexgrid"
	"repro/internal/lattice"
)

// NumPhases is the number of clock phases used throughout (four-phase
// clocking, the prevalent FCN strategy adopted by the paper).
const NumPhases = 4

// Scheme assigns a clock zone to every tile coordinate.
type Scheme interface {
	// Zone returns the clock zone (0..NumPhases-1) of the tile.
	Zone(t hexgrid.Offset) int
	// Name identifies the scheme.
	Name() string
	// Feedforward reports whether information flow under this scheme is
	// acyclic along increasing zones (required for super-tile merging).
	Feedforward() bool
}

// RowBased is the paper's scheme of choice: Columnar [26] rotated by 90°,
// zone(x, y) = y mod 4. Signals flow strictly top to bottom.
type RowBased struct{}

// Zone implements Scheme.
func (RowBased) Zone(t hexgrid.Offset) int { return mod(t.Y, NumPhases) }

// Name implements Scheme.
func (RowBased) Name() string { return "row" }

// Feedforward implements Scheme.
func (RowBased) Feedforward() bool { return true }

// Columnar is the classic columnar scheme [26]: zone(x, y) = x mod 4,
// signals flow left to right.
type Columnar struct{}

// Zone implements Scheme.
func (Columnar) Zone(t hexgrid.Offset) int { return mod(t.X, NumPhases) }

// Name implements Scheme.
func (Columnar) Name() string { return "columnar" }

// Feedforward implements Scheme.
func (Columnar) Feedforward() bool { return true }

// TwoDDWave is the 2DDWave scheme [44]: zone(x, y) = (x + y) mod 4,
// diagonal wavefronts from the north-west corner.
type TwoDDWave struct{}

// Zone implements Scheme.
func (TwoDDWave) Zone(t hexgrid.Offset) int { return mod(t.X+t.Y, NumPhases) }

// Name implements Scheme.
func (TwoDDWave) Name() string { return "2ddwave" }

// Feedforward implements Scheme.
func (TwoDDWave) Feedforward() bool { return true }

// USE is the Universal, Scalable, Efficient scheme [9]. It contains local
// loops, so it is not usable with super-tiles (the paper defers USE support
// to future work); it is provided for comparison studies.
type USE struct{}

// useTable is the 4×4 USE clocking tile pattern.
var useTable = [4][4]int{
	{0, 1, 2, 3},
	{3, 2, 1, 0},
	{2, 3, 0, 1},
	{1, 0, 3, 2},
}

// Zone implements Scheme.
func (USE) Zone(t hexgrid.Offset) int { return useTable[mod(t.Y, 4)][mod(t.X, 4)] }

// Name implements Scheme.
func (USE) Name() string { return "use" }

// Feedforward implements Scheme.
func (USE) Feedforward() bool { return false }

// mod is the non-negative modulo.
func mod(a, m int) int {
	r := a % m
	if r < 0 {
		r += m
	}
	return r
}

// ByName returns the scheme with the given name.
func ByName(name string) (Scheme, error) {
	switch name {
	case "row":
		return RowBased{}, nil
	case "columnar":
		return Columnar{}, nil
	case "2ddwave":
		return TwoDDWave{}, nil
	case "use":
		return USE{}, nil
	default:
		return nil, fmt.Errorf("clocking: unknown scheme %q", name)
	}
}

// All returns every implemented scheme.
func All() []Scheme {
	return []Scheme{RowBased{}, Columnar{}, TwoDDWave{}, USE{}}
}

// Physical fabrication constants for clocking electrodes (§4.1).
const (
	// MinMetalPitchNM is the minimum metal pitch of a state-of-the-art 7 nm
	// lithography process [54]: clock electrodes cannot be placed closer.
	MinMetalPitchNM = 40.0
	// TileWidthNM is the physical width of one Bestagon tile
	// (60 cells × 0.384 nm).
	TileWidthNM = 60 * lattice.PitchX
	// TileHeightNM is the physical height of one Bestagon tile
	// (46 sub-rows × 0.384 nm).
	TileHeightNM = 46 * (lattice.PitchY / 2)
)

// SuperTile describes the grouping of standard tiles into regions large
// enough to be addressed by one clocking electrode (Fig. 4). Under a
// row-based linear scheme the electrode pitch constrains the number of tile
// rows per super-tile; all tiles in a super-tile share a clock zone and
// switch simultaneously.
type SuperTile struct {
	// RowsPerSuperTile is the number of standard-tile rows grouped per
	// electrode.
	RowsPerSuperTile int
	// PitchNM is the resulting electrode pitch.
	PitchNM float64
}

// PlanSuperTiles computes the minimal super-tile height (in tile rows) that
// satisfies the minimum metal pitch for the row-based scheme.
func PlanSuperTiles(minPitchNM float64) SuperTile {
	rows := 1
	for float64(rows)*TileHeightNM < minPitchNM {
		rows++
	}
	return SuperTile{RowsPerSuperTile: rows, PitchNM: float64(rows) * TileHeightNM}
}

// ExpandedZone returns the clock zone of a tile after super-tile merging:
// tile rows are grouped RowsPerSuperTile at a time, and the groups cycle
// through the four phases. This is flow step (6), "merge adjacent tiles
// into super-tiles by expanding the clock zone dimensions".
func (st SuperTile) ExpandedZone(t hexgrid.Offset) int {
	return mod(t.Y/st.RowsPerSuperTile, NumPhases)
}

// Validate checks that a set of directed tile-to-tile connections respects
// the clocking scheme: every connection must go from zone z to zone
// (z+1) mod 4. It returns the offending connection indices.
func Validate(s Scheme, conns [][2]hexgrid.Offset) []int {
	var bad []int
	for i, c := range conns {
		from, to := s.Zone(c[0]), s.Zone(c[1])
		if mod(from+1, NumPhases) != to {
			bad = append(bad, i)
		}
	}
	return bad
}
