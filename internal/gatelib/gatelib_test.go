package gatelib

import (
	"strings"
	"testing"

	"repro/internal/clocking"
	"repro/internal/gatelayout"
	"repro/internal/gates"
	"repro/internal/hexgrid"
	"repro/internal/lattice"
	"repro/internal/logic/bench"
	"repro/internal/logic/mapping"
	"repro/internal/pnr"
	"repro/internal/sim"
)

func TestLibraryCompleteness(t *testing.T) {
	lib := NewLibrary()
	nw, ne := hexgrid.NorthWest, hexgrid.NorthEast
	sw, se := hexgrid.SouthWest, hexgrid.SouthEast
	variants := []struct {
		f    gates.Func
		ins  []hexgrid.Direction
		outs []hexgrid.Direction
	}{
		{gates.Wire, []hexgrid.Direction{nw}, []hexgrid.Direction{se}},
		{gates.Wire, []hexgrid.Direction{ne}, []hexgrid.Direction{sw}},
		{gates.DiagWire, []hexgrid.Direction{nw}, []hexgrid.Direction{sw}},
		{gates.DiagWire, []hexgrid.Direction{ne}, []hexgrid.Direction{se}},
		{gates.Inv, []hexgrid.Direction{nw}, []hexgrid.Direction{se}},
		{gates.Inv, []hexgrid.Direction{ne}, []hexgrid.Direction{sw}},
		{gates.Fanout, []hexgrid.Direction{nw}, []hexgrid.Direction{sw, se}},
		{gates.Fanout, []hexgrid.Direction{ne}, []hexgrid.Direction{sw, se}},
		{gates.Crossing, []hexgrid.Direction{nw, ne}, []hexgrid.Direction{sw, se}},
		{gates.HalfAdder, []hexgrid.Direction{nw, ne}, []hexgrid.Direction{sw, se}},
		{gates.PI, nil, []hexgrid.Direction{se}},
		{gates.PI, nil, []hexgrid.Direction{sw}},
		{gates.PO, []hexgrid.Direction{nw}, nil},
		{gates.PO, []hexgrid.Direction{ne}, nil},
	}
	for _, g := range gates.TwoInputGates() {
		variants = append(variants,
			struct {
				f    gates.Func
				ins  []hexgrid.Direction
				outs []hexgrid.Direction
			}{g, []hexgrid.Direction{nw, ne}, []hexgrid.Direction{se}},
			struct {
				f    gates.Func
				ins  []hexgrid.Direction
				outs []hexgrid.Direction
			}{g, []hexgrid.Direction{nw, ne}, []hexgrid.Direction{sw}})
	}
	for _, v := range variants {
		if _, err := lib.Get(v.f, v.ins, v.outs); err != nil {
			t.Errorf("missing library variant: %v", err)
		}
	}
}

func TestDesignsFitTile(t *testing.T) {
	lib := NewLibrary()
	for _, key := range lib.Variants() {
		d := lib.designs[key]
		l := d.Layout(0, 0)
		box := l.BoundingBox()
		if box.MinX < 0 || box.MaxX >= TileWidth || box.MinY < 0 || box.MaxY >= TileHeight {
			t.Errorf("%s: dots outside tile bounds: %+v", key, box)
		}
	}
}

func TestDesignsRespectSpacing(t *testing.T) {
	lib := NewLibrary()
	for _, key := range lib.Variants() {
		d := lib.designs[key]
		l := d.Layout(0, 0)
		// Minimum fabrication spacing: no two dots closer than one lattice
		// site (0.384 nm); same-site duplicates are design errors.
		if v := l.Validate(0.38); len(v) != 0 {
			t.Errorf("%s: %d spacing violations, first: %s", key, len(v), v[0])
		}
	}
}

func TestMirrorInvolution(t *testing.T) {
	d := wireDesign()
	m := d.Mirror("m").Mirror("mm")
	if len(m.Pairs) != len(d.Pairs) {
		t.Fatal("mirror changed pair count")
	}
	for i := range d.Pairs {
		if m.Pairs[i] != d.Pairs[i] {
			t.Errorf("pair %d: %v != %v after double mirror", i, m.Pairs[i], d.Pairs[i])
		}
	}
}

func TestTileOrigin(t *testing.T) {
	cases := []struct {
		at     hexgrid.Offset
		ox, oy int
	}{
		{hexgrid.Offset{X: 0, Y: 0}, 0, 0},
		{hexgrid.Offset{X: 1, Y: 0}, 60, 0},
		{hexgrid.Offset{X: 0, Y: 1}, 30, 46},
		{hexgrid.Offset{X: 2, Y: 3}, 150, 138},
		{hexgrid.Offset{X: 0, Y: 2}, 0, 92},
	}
	for _, c := range cases {
		ox, oy := TileOrigin(c.at)
		if ox != c.ox || oy != c.oy {
			t.Errorf("TileOrigin(%v) = (%d,%d), want (%d,%d)", c.at, ox, oy, c.ox, c.oy)
		}
	}
}

func TestPortContinuity(t *testing.T) {
	// A wire tile's border step must land exactly on the SE neighbor's NW
	// port pair: last anchor (41,39) + (4,7) = (45,46) = neighbor (15,0)
	// at origin offset (30,46).
	d := wireDesign()
	last := d.Outs[0]
	if last.X+4 != PortEast || last.Y+7 != TileHeight {
		t.Errorf("wire exit (%d,%d) does not continue into the next tile", last.X, last.Y)
	}
	first := d.Ins[0]
	if first.X != PortWest || first.Y != 0 {
		t.Errorf("wire entry at (%d,%d), want (%d,0)", first.X, first.Y, PortWest)
	}
}

func TestAreaNM2MatchesTable1(t *testing.T) {
	cases := []struct {
		w, h int
		want float64
	}{
		{2, 3, 2403.98}, {3, 4, 4830.22}, {4, 7, 11312.68}, {5, 15, 30377.56},
	}
	for _, c := range cases {
		got := AreaNM2(c.w, c.h)
		if diff := got - c.want; diff > 2.5 || diff < -2.5 {
			t.Errorf("AreaNM2(%d,%d) = %.2f, want %.2f", c.w, c.h, got, c.want)
		}
	}
}

func TestApplyProducesCellLayout(t *testing.T) {
	x, err := bench.Load("xor2")
	if err != nil {
		t.Fatal(err)
	}
	m, err := mapping.Map(x)
	if err != nil {
		t.Fatal(err)
	}
	g, err := pnr.Expand(m)
	if err != nil {
		t.Fatal(err)
	}
	l, err := pnr.Ortho(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	lib := NewLibrary()
	cell, err := Apply(lib, l, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cell.NumDots() < 20 {
		t.Errorf("xor2 cell layout suspiciously small: %d dots", cell.NumDots())
	}
	// No overlapping dots after merging adjacent tiles.
	if v := cell.Validate(0.38); len(v) != 0 {
		t.Errorf("%d cell-level violations, first: %s", len(v), v[0])
	}
	// The layout must fit inside the tile grid's physical area.
	box := cell.BoundingBox()
	if box.MaxX >= l.Width()*TileWidth+TileWidth/2 || box.MaxY >= l.Height()*TileHeight {
		t.Errorf("cell layout exceeds grid: %+v for %dx%d tiles", box, l.Width(), l.Height())
	}
}

func TestApplyAllBenchmarksStructure(t *testing.T) {
	lib := NewLibrary()
	for _, name := range []string{"xnor2", "par_gen", "c17"} {
		x, err := bench.Load(name)
		if err != nil {
			t.Fatal(err)
		}
		m, err := mapping.Map(x)
		if err != nil {
			t.Fatal(err)
		}
		g, err := pnr.Expand(m)
		if err != nil {
			t.Fatal(err)
		}
		l, err := pnr.Ortho(g, nil)
		if err != nil {
			t.Fatal(err)
		}
		cell, err := Apply(lib, l, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if v := cell.Validate(0.38); len(v) != 0 {
			t.Errorf("%s: %d violations, first: %s", name, len(v), v[0])
		}
	}
}

func TestVariantKeys(t *testing.T) {
	v := Variant{
		Func:    gates.And,
		InDirs:  []hexgrid.Direction{hexgrid.NorthWest, hexgrid.NorthEast},
		OutDirs: []hexgrid.Direction{hexgrid.SouthEast},
	}
	if !strings.Contains(v.key(), "and") || !strings.Contains(v.key(), "iNW") {
		t.Errorf("variant key malformed: %s", v.key())
	}
}

func TestSuperTileCompatibility(t *testing.T) {
	// The tile height times the super-tile row count must exceed the
	// minimum metal pitch using the gatelib constants too.
	st := clocking.PlanSuperTiles(clocking.MinMetalPitchNM)
	tileH := float64(TileHeight) * lattice.PitchY / 2
	if float64(st.RowsPerSuperTile)*tileH < clocking.MinMetalPitchNM {
		t.Error("super-tile plan does not satisfy the metal pitch with gatelib dimensions")
	}
}

func TestWireAndIOOperational(t *testing.T) {
	// The canvas-free designs must validate operationally (gate cores are
	// covered by TestLibraryValidation once their search results land).
	for _, tc := range []struct {
		d *Design
	}{{wireDesign()}, {piDesign()}, {poDesign()}} {
		v := Validate(tc.d, func(i uint32) uint32 { return i }, sim.ParamsFig5)
		if !v.OK {
			t.Errorf("%s: %v", tc.d.Name, v)
		}
	}
}

var _ = gatelayout.New // keep import if unused in some builds
