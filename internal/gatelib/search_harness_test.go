package gatelib

import (
	"fmt"
	"os"
	"testing"

	"repro/internal/designer"
	"repro/internal/lattice"
	"repro/internal/sidb"
	"repro/internal/sim"
)

func buildTemplate(nIn int, outSW, outSE bool, truth func(uint32) uint32) *designer.Template {
	return SearchTemplate(nIn, outSW, outSE, truth, sim.ParamsFig5)
}

// TestSearchOne searches a single target selected by GATE_SEARCH env var.
func TestSearchOne(t *testing.T) {
	target := os.Getenv("GATE_SEARCH")
	if target == "" {
		t.Skip("set GATE_SEARCH")
	}
	var tpl *designer.Template
	opts := designer.DefaultOptions()
	switch target {
	case "AND":
		tpl = buildTemplate(2, false, true, func(i uint32) uint32 { return i & (i >> 1) & 1 })
	case "OR":
		tpl = buildTemplate(2, false, true, func(i uint32) uint32 {
			if i != 0 {
				return 1
			}
			return 0
		})
	case "NAND":
		tpl = buildTemplate(2, false, true, func(i uint32) uint32 { return (i & (i >> 1) & 1) ^ 1 })
	case "NOR":
		tpl = buildTemplate(2, false, true, func(i uint32) uint32 {
			if i == 0 {
				return 1
			}
			return 0
		})
	case "XOR5":
		tpl = buildTemplate(2, false, true, func(i uint32) uint32 { return (i ^ i>>1) & 1 })
		opts.Seed = 5
		opts.Restarts = 30
		opts.Iterations = 400
		opts.MaxDots = 6
		opts.MinDots = 2
	case "XOR":
		tpl = buildTemplate(2, false, true, func(i uint32) uint32 { return (i ^ i>>1) & 1 })
		opts.Restarts = 16
		opts.Iterations = 300
		opts.MaxDots = 4
	case "XNOR":
		tpl = buildTemplate(2, false, true, func(i uint32) uint32 { return ((i ^ i>>1) & 1) ^ 1 })
		opts.Restarts = 16
		opts.Iterations = 300
		opts.MaxDots = 4
	case "XNOR2":
		tpl = buildTemplate(2, false, true, func(i uint32) uint32 { return ((i ^ i>>1) & 1) ^ 1 })
		opts.Seed = 7
		opts.Restarts = 30
		opts.Iterations = 400
		opts.MaxDots = 6
		opts.MinDots = 2
	case "FANOUT2":
		tpl = buildTemplate(1, true, true, func(i uint32) uint32 { return i * 3 })
		opts.Seed = 7
		opts.Restarts = 30
		opts.Iterations = 400
		opts.MaxDots = 6
		opts.MinDots = 1
	case "OR28":
		tpl = buildTemplate(2, false, true, func(i uint32) uint32 {
			if i != 0 {
				return 1
			}
			return 0
		})
		tpl.Params = sim.ParamsFig1c
		opts.Restarts = 16
		opts.Iterations = 300
		opts.MaxDots = 5
	case "INV":
		tpl = buildTemplate(1, false, true, func(i uint32) uint32 { return i ^ 1 })
		opts.Restarts = 20
		opts.Iterations = 500
		opts.MaxDots = 5
	case "INVD":
		// Diagonal inverter: NW input, SW output.
		tpl = buildTemplate(1, true, false, func(i uint32) uint32 { return i ^ 1 })
		opts.Restarts = 24
		opts.Iterations = 500
		opts.MaxDots = 5
	case "WIRED":
		// Diagonal buffer core: NW input, SW output (replaces the vertical
		// diag wire if the pure chain cannot be made operational).
		tpl = buildTemplate(1, true, false, func(i uint32) uint32 { return i & 1 })
		opts.Restarts = 24
		opts.Iterations = 500
		opts.MaxDots = 5
	case "FANOUT":
		tpl = buildTemplate(1, true, true, func(i uint32) uint32 { return i * 3 })
		opts.Restarts = 16
		opts.Iterations = 300
		opts.MaxDots = 4
	case "CROSS":
		tpl = buildTemplate(2, true, true, func(i uint32) uint32 { return (i>>1)&1 | (i&1)<<1 })
		opts.Restarts = 10
		opts.Iterations = 150
		opts.MaxDots = 3
	case "HA":
		tpl = buildTemplate(2, true, true, func(i uint32) uint32 {
			x := (i ^ i>>1) & 1
			a := i & (i >> 1) & 1
			return x | a<<1 // sum on SW (port0), carry on SE (port1)
		})
		opts.Restarts = 10
		opts.Iterations = 150
		opts.MaxDots = 3
	case "DIAG":
		// Diagonal (NW -> SW) wire: fixed first and last pairs on the west
		// side; the search places the connecting dots freely.
		var fixed []sidb.Dot
		first := Pair{15, 0, 1}
		last := Pair{15, 39, -1}
		for _, pr := range []struct {
			p Pair
			r sidb.Role
		}{{first, sidb.RoleInput}, {last, sidb.RoleOutput}} {
			b0, b1 := pr.p.Dots()
			fixed = append(fixed, sidb.Dot{Site: b0, Role: pr.r}, sidb.Dot{Site: b1, Role: pr.r})
		}
		fixed = append(fixed,
			sidb.Dot{Site: c(15, 46), Role: sidb.RolePerturber},
			sidb.Dot{Site: c(11, 53), Role: sidb.RolePerturber})
		tpl = &designer.Template{
			Fixed: fixed,
			InputPerturbers: func(pat uint32) []lattice.Site {
				return InputEmulation(first, pat&1 == 1)
			},
			NumInputs: 1,
			Outputs:   []sidb.BDLPair{last.BDL()},
			Target:    func(i uint32) uint32 { return i & 1 },
			Params:    sim.ParamsFig5,
		}
		opts.Restarts = 24
		opts.Iterations = 400
		opts.MinDots = 4
		opts.MaxDots = 8
		cands := designer.Grid(8, 5, 26, 36, 2, tpl.Fixed, 0.6)
		best, err := designer.Search(tpl, cands, opts)
		fmt.Printf("RESULT %s err=%v correct=%d/%d gap=%.4f canvas=%v\n",
			target, err, best.Correct, best.Patterns, best.MinGap, best.Canvas)
		return
	case "FULL_AND", "FULL_OR", "FULL_NAND", "FULL_NOR", "FULL_XOR", "FULL_XNOR":
		truths := map[string]func(uint32) uint32{
			"FULL_AND": func(i uint32) uint32 { return i & (i >> 1) & 1 },
			"FULL_OR": func(i uint32) uint32 {
				if i != 0 {
					return 1
				}
				return 0
			},
			"FULL_NAND": func(i uint32) uint32 { return (i & (i >> 1) & 1) ^ 1 },
			"FULL_NOR": func(i uint32) uint32 {
				if i == 0 {
					return 1
				}
				return 0
			},
			"FULL_XOR":  func(i uint32) uint32 { return (i ^ i>>1) & 1 },
			"FULL_XNOR": func(i uint32) uint32 { return ((i ^ i>>1) & 1) ^ 1 },
		}
		seeds := map[string][]lattice.Site{
			"FULL_AND": canvasAND, "FULL_OR": canvasOR, "FULL_NAND": canvasNAND,
			"FULL_NOR": canvasNOR, "FULL_XOR": canvasXOR, "FULL_XNOR": canvasXNOR,
		}
		tpl = FullTemplate(truths[target], sim.ParamsFig5)
		opts.Restarts = 10
		opts.Iterations = 250
		opts.MinDots = 2
		opts.MaxDots = 5
		opts.Initial = seeds[target]
		if os.Getenv("GATE_EXACT") != "" {
			// Exhaustive evaluation (slow): seeded local refinement only.
			tpl.UseAnneal = false
			opts.Restarts = 2
			opts.Iterations = 70
			opts.MaxDots = 4
		}
	default:
		t.Fatalf("unknown target %q", target)
	}
	cands := designer.Grid(18, 12, 42, 30, 2, tpl.Fixed, 0.6)
	best, err := designer.Search(tpl, cands, opts)
	fmt.Printf("RESULT %s err=%v correct=%d/%d gap=%.4f canvas=%v\n",
		target, err, best.Correct, best.Patterns, best.MinGap, best.Canvas)
}
