package gatelib

import (
	"repro/internal/designer"
	"repro/internal/lattice"
	"repro/internal/sidb"
	"repro/internal/sim"
)

// FullTemplate builds a design-search template over the FULL tile of a
// 2-in-1-out gate (all stub pairs present, I/O emulation identical to
// Validate); used to refine short-model cores in their final context.
func FullTemplate(truth func(uint32) uint32, params sim.Params) *designer.Template {
	base := twoInDesign("full", nil)
	var fixed []sidb.Dot
	l := base.Layout(0, 0)
	fixed = append(fixed, l.Dots...)
	fixed = append(fixed, sidb.Dot{Site: OutputPerturber(base.Outs[0]), Role: sidb.RolePerturber})
	ins := base.Ins
	return &designer.Template{
		Fixed: fixed,
		InputPerturbers: func(pat uint32) []lattice.Site {
			var ps []lattice.Site
			for i, p := range ins {
				ps = append(ps, InputEmulation(p, pat>>i&1 == 1)...)
			}
			return ps
		},
		NumInputs: 2,
		Outputs:   []sidb.BDLPair{base.Outs[0].BDL()},
		Target:    truth,
		Params:    params,
		UseAnneal: true,
	}
}

// SearchTemplate builds the short-model design-search template used to
// derive gate cores: truncated input stubs (the last two pairs before the
// canvas), output stubs (the first two pairs after it), I/O perturber
// emulation, and the target truth table. This is the search space the
// paper's RL agent explored; internal/designer searches it stochastically.
func SearchTemplate(nIn int, outSW, outSE bool, truth func(uint32) uint32, params sim.Params) *designer.Template {
	var fixed []sidb.Dot
	addPair := func(p Pair, role sidb.Role) {
		b0, b1 := p.Dots()
		fixed = append(fixed, sidb.Dot{Site: b0, Role: role}, sidb.Dot{Site: b1, Role: role})
	}
	var ins []Pair
	nw := []Pair{{19, 7, 1}, {24, 13, 1}}
	addPair(nw[0], sidb.RoleInput)
	addPair(nw[1], sidb.RoleNormal)
	ins = append(ins, nw[0])
	if nIn == 2 {
		ne := []Pair{{41, 7, -1}, {36, 13, -1}}
		addPair(ne[0], sidb.RoleInput)
		addPair(ne[1], sidb.RoleNormal)
		ins = append(ins, ne[0])
	}
	var outs []sidb.BDLPair
	if outSW {
		sw := []Pair{{28, 26, -1}, {24, 33, -1}}
		addPair(sw[0], sidb.RoleNormal)
		addPair(sw[1], sidb.RoleOutput)
		fixed = append(fixed, sidb.Dot{Site: OutputPerturber(sw[1]), Role: sidb.RolePerturber})
		outs = append(outs, sw[1].BDL())
	}
	if outSE {
		se := []Pair{{32, 26, 1}, {36, 33, 1}}
		addPair(se[0], sidb.RoleNormal)
		addPair(se[1], sidb.RoleOutput)
		fixed = append(fixed, sidb.Dot{Site: OutputPerturber(se[1]), Role: sidb.RolePerturber})
		outs = append(outs, se[1].BDL())
	}
	return &designer.Template{
		Fixed: fixed,
		InputPerturbers: func(pat uint32) []lattice.Site {
			var ps []lattice.Site
			for i, p := range ins {
				ps = append(ps, InputEmulation(p, pat>>i&1 == 1)...)
			}
			return ps
		},
		NumInputs: nIn,
		Outputs:   outs,
		Target:    truth,
		Params:    params,
	}
}
