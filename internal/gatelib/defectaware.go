package gatelib

import (
	"repro/internal/defects"
	"repro/internal/hexgrid"
	"repro/internal/lattice"
)

// Defect-aware tile geometry: the bridge between a global defect surface
// (cell coordinates over the whole die) and the hexagonal tile grid the
// place & route engines reason about. A tile is afflicted when some
// defect's influence circle intersects the tile's cell box — charged
// defects reach several nm past their own site (their screened Coulomb
// tail measurably shifts gates), neutral defects only poison their
// immediate neighbourhood.

// TileBox returns the cell-coordinate bounding box of the tile at offset
// coordinate at.
func TileBox(at hexgrid.Offset) lattice.Box {
	ox, oy := TileOrigin(at)
	return lattice.Box{MinX: ox, MinY: oy, MaxX: ox + TileWidth - 1, MaxY: oy + TileHeight - 1}
}

// TileAfflicted reports whether the tile at the offset coordinate is
// afflicted by the surface: some defect's influence circle intersects the
// tile's cell box. Afflicted tiles are blocked during place & route.
func TileAfflicted(surf *defects.Surface, at hexgrid.Offset) bool {
	if surf.Empty() {
		return false
	}
	return surf.InfluencesBox(TileBox(at))
}

// TileBlocker returns the tile-blocking predicate for the surface, or nil
// for a pristine surface (no blocking — engines treat a nil blocker as
// the fast path).
func TileBlocker(surf *defects.Surface) func(hexgrid.Offset) bool {
	if surf.Empty() {
		return nil
	}
	return func(at hexgrid.Offset) bool { return TileAfflicted(surf, at) }
}

// TileSurface translates the global surface into the tile-local frame of
// the tile at the offset coordinate, for defect-aware validation of that
// tile's gate (gate designs use tile-local cell coordinates). Defects far
// outside the tile are kept — translation is exact and cheap, and the
// electrostatic engine already discounts distant charges.
func TileSurface(surf *defects.Surface, at hexgrid.Offset) *defects.Surface {
	if surf.Empty() {
		return nil
	}
	ox, oy := TileOrigin(at)
	return surf.Translate(-ox, -oy)
}
