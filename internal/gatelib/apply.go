package gatelib

import (
	"fmt"

	"repro/internal/gatelayout"
	"repro/internal/gates"
	"repro/internal/hexgrid"
	"repro/internal/lattice"
	"repro/internal/obs"
	"repro/internal/sidb"
)

// Apply maps every tile of a gate-level layout to its dot-accurate design,
// yielding the final SiDB layout — flow step (7): "apply the Bestagon
// library to map each gate to a dot-accurate representation". A nil tracer
// disables telemetry at no cost.
//
// Tiles are placed on the hexagonal grid in odd-r offset coordinates: tile
// (x, y) is instantiated at cell origin (60x + 30·(y mod 2), 46y).
func Apply(lib *Library, l *gatelayout.Layout, tr *obs.Tracer) (*sidb.Layout, error) {
	sp := tr.Start("gatelib/apply")
	defer sp.End()
	out := &sidb.Layout{Name: l.Name}
	tiles := 0
	for _, at := range l.Tiles() {
		tile, _ := l.At(at)
		if tile.Func == gates.None {
			continue
		}
		d, err := lib.Get(tile.Func, tile.Ins, tile.Outs)
		if err != nil {
			return nil, fmt.Errorf("gatelib: tile %v: %w", at, err)
		}
		ox, oy := TileOrigin(at)
		before := out.NumDots()
		out.Merge(d.Layout(ox, oy))
		tiles++
		tr.Histogram("gatelib/dots_per_tile",
			10, 20, 30, 40, 60, 80).Observe(float64(out.NumDots() - before))
	}
	tr.Counter("gatelib/tiles_applied").Add(int64(tiles))
	sp.SetAttr("tiles", tiles)
	sp.SetAttr("sidbs", out.NumDots())
	return out, nil
}

// TileOrigin returns the cell origin of the tile at offset coordinate at.
func TileOrigin(at hexgrid.Offset) (ox, oy int) {
	ox = at.X*TileWidth + (mod2(at.Y))*TileWidth/2
	oy = at.Y * TileHeight
	return ox, oy
}

// mod2 is the non-negative y parity.
func mod2(y int) int {
	if y%2 != 0 {
		return 1
	}
	return 0
}

// CountSiDBs returns the number of dots the layout would contain after
// applying the library, without building the merged layout.
func CountSiDBs(lib *Library, l *gatelayout.Layout) (int, error) {
	s, err := Apply(lib, l, nil)
	if err != nil {
		return 0, err
	}
	return s.NumDots(), nil
}

// AreaNM2 returns the physical layout area following the paper's Table 1
// model: the bounding box spans the full w×h tile grid, measured as
// ((60·w − 1) · 0.384 nm) × ((46·h − 1) · 0.384 nm).
func AreaNM2(w, h int) float64 {
	wNM := float64(TileWidth*w-1) * lattice.PitchX
	hNM := float64(TileHeight*h-1) * (lattice.PitchY / 2)
	return wNM * hNM
}
