package gatelib

import (
	"testing"

	"repro/internal/gates"
	"repro/internal/hexgrid"
	"repro/internal/sidb"
	"repro/internal/sim"
	"repro/internal/sqd"
)

// TestSQDRoundTripPreservesGroundState exports a validated gate to SiQAD
// format, re-imports it, and confirms the simulated ground state is
// unchanged — the full step-(8) pipeline.
func TestSQDRoundTripPreservesGroundState(t *testing.T) {
	lib := NewLibrary()
	d, err := lib.Get(gates.Wire,
		[]hexgrid.Direction{hexgrid.NorthWest},
		[]hexgrid.Direction{hexgrid.SouthEast})
	if err != nil {
		t.Fatal(err)
	}
	l := d.Layout(0, 0)
	for _, s := range InputEmulation(d.Ins[0], true) {
		l.Add(s, sidb.RolePerturber)
	}
	l.Add(OutputPerturber(d.Outs[0]), sidb.RolePerturber)

	doc, err := sqd.WriteString(l)
	if err != nil {
		t.Fatal(err)
	}
	back, err := sqd.ParseString(doc)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumDots() != l.NumDots() {
		t.Fatalf("dot count changed: %d -> %d", l.NumDots(), back.NumDots())
	}

	e1 := sim.NewEngine(l, sim.ParamsFig5)
	e2 := sim.NewEngine(back, sim.ParamsFig5)
	g1, en1 := e1.Exhaustive()
	g2, en2 := e2.Exhaustive()
	if en1 != en2 {
		t.Fatalf("ground-state energy changed: %v -> %v", en1, en2)
	}
	for i := range g1 {
		if g1[i] != g2[i] {
			t.Fatal("ground-state configuration changed after SQD round trip")
		}
	}
}

// TestAdjacentTilesShareNoDots stitches two wire tiles vertically (a ray
// continuing across the border) and checks spacing plus dot counts.
func TestAdjacentTilesShareNoDots(t *testing.T) {
	lib := NewLibrary()
	d, err := lib.Get(gates.Wire,
		[]hexgrid.Direction{hexgrid.NorthWest},
		[]hexgrid.Direction{hexgrid.SouthEast})
	if err != nil {
		t.Fatal(err)
	}
	merged := &sidb.Layout{Name: "two_tiles"}
	ox0, oy0 := TileOrigin(hexgrid.Offset{X: 0, Y: 0})
	ox1, oy1 := TileOrigin(hexgrid.Offset{X: 0, Y: 1}) // SE neighbor of (0,0)
	merged.Merge(d.Layout(ox0, oy0))
	merged.Merge(d.Layout(ox1, oy1))
	if merged.NumDots() != 2*d.NumDots() {
		t.Fatalf("tile stitching changed dot count: %d vs %d", merged.NumDots(), 2*d.NumDots())
	}
	if v := merged.Validate(0.38); len(v) != 0 {
		t.Fatalf("stitched tiles violate spacing: %v", v[0])
	}
}

// TestClockedHandoffPropagates simulates inter-tile signal transfer the
// way the clocking scheme operates it (Fig. 2): the upstream tile computes
// in its phase, then its charges are held (frozen) while the downstream
// tile relaxes. The downstream tile must reproduce the upstream logic
// value. (Unclocked whole-circuit ground-state simulation is explicitly
// future work in the paper's §6.)
func TestClockedHandoffPropagates(t *testing.T) {
	lib := NewLibrary()
	d, err := lib.Get(gates.Wire,
		[]hexgrid.Direction{hexgrid.NorthWest},
		[]hexgrid.Direction{hexgrid.SouthEast})
	if err != nil {
		t.Fatal(err)
	}
	for _, bit := range []bool{false, true} {
		// Phase 1: upstream tile relaxes with its input driven.
		up := d.Layout(0, 0)
		for _, s := range InputEmulation(d.Ins[0], bit) {
			up.Add(s, sidb.RolePerturber)
		}
		up.Add(OutputPerturber(d.Outs[0]), sidb.RolePerturber)
		upEng := sim.NewEngine(up, sim.ParamsFig5)
		upGS, _ := upEng.Exhaustive()

		// Phase 2: upstream charges held; downstream tile relaxes. The
		// held charges become fixed dots; the upstream's validation-only
		// output perturber is dropped (the downstream tile replaces it).
		down := d.Layout(30, 46)
		for i, dot := range up.Dots {
			if dot.Role == sidb.RolePerturber && i >= up.NumDots()-1 {
				continue // drop the phase-1 output perturber
			}
			if upGS[i] {
				down.Add(dot.Site, sidb.RolePerturber)
			}
		}
		out2 := d.Outs[0].Translate(30, 46)
		down.Add(OutputPerturber(out2), sidb.RolePerturber)

		downEng := sim.NewEngine(down, sim.ParamsFig5)
		downGS, _ := downEng.Exhaustive()
		idx := down.SiteIndex()
		state, err := out2.BDL().State(idx, downGS)
		if err != nil {
			t.Fatalf("bit=%v: output pair undefined: %v", bit, err)
		}
		if state != bit {
			t.Errorf("bit=%v: clocked handoff delivered %v", bit, state)
		}
	}
}
