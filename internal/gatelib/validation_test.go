package gatelib

import (
	"sort"
	"testing"

	"repro/internal/sim"
)

// validatedVariants lists the tile designs whose dot-accurate
// implementations are ground-state-validated at the Fig. 5 parameters
// (EXPERIMENTS.md tracks the remaining best-effort designs).
var validatedVariants = []string{
	"wire:iNW:oSE", "wire:iNE:oSW",
	"diag:iNW:oSW", "diag:iNE:oSE",
	"pi:oSE", "pi:oSW",
	"po:iNW", "po:iNE",
	"inv:iNW:oSE", "inv:iNE:oSW",
	"or:iNW:iNE:oSE", "or:iNW:iNE:oSW",
	"xor:iNW:iNE:oSE", "xor:iNW:iNE:oSW",
}

func TestLibraryValidation(t *testing.T) {
	results := ValidateLibrary(sim.ParamsFig5)
	for _, key := range validatedVariants {
		v, ok := results[key]
		if !ok {
			t.Errorf("%s: design missing from library", key)
			continue
		}
		if !v.OK {
			t.Errorf("%s: validation failed: %v", key, v)
		}
	}
	// Report the full status (informational).
	var names []string
	for n := range results {
		names = append(names, n)
	}
	sort.Strings(names)
	okCount := 0
	for _, n := range names {
		if results[n].OK {
			okCount++
		}
		t.Logf("%-30s %v", n, results[n])
	}
	t.Logf("validated: %d/%d designs", okCount, len(names))
}
