package gatelib

import (
	"testing"

	"repro/internal/sidb"
	"repro/internal/sim"
)

// chainOutputs validates a BDL chain standalone: input emulation at the
// head, output perturber at the tail, ground state per logic value; it
// returns whether both logic values propagate to the last pair.
func chainOK(t *testing.T, steps [][2]int) bool {
	t.Helper()
	ps := chainSteps(15, 0, steps)
	d := &Design{Name: "chain", Pairs: ps}
	d.Ins = []Pair{ps[0]}
	d.Outs = []Pair{ps[len(ps)-1]}
	v := Validate(d, func(i uint32) uint32 { return i }, sim.ParamsFig5)
	return v.OK
}

// TestValidatedPitchFamily pins the wire design rule discovered by the
// geometry search: uniform chains with inter-pair pitches from the
// validated family propagate both logic states.
func TestValidatedPitchFamily(t *testing.T) {
	for _, p := range [][2]int{{4, 6}, {4, 7}, {5, 6}} {
		if !chainOK(t, repeatStep(p[0], p[1], 6)) {
			t.Errorf("uniform pitch %v failed to propagate", p)
		}
	}
}

// TestStandardRayPropagates pins the tile-crossing ray used by every stub.
func TestStandardRayPropagates(t *testing.T) {
	ray := [][2]int{{4, 7}, {5, 6}, {4, 7}, {4, 6}, {4, 7}, {5, 6}}
	if !chainOK(t, ray) {
		t.Fatal("standard ray does not propagate")
	}
	// Two-tile continuation across the border step (4,7).
	long := append(append([][2]int{}, ray...), [2]int{4, 7}, [2]int{4, 7}, [2]int{5, 6})
	if !chainOK(t, long) {
		t.Fatal("ray does not continue across the tile border")
	}
}

// TestShortPitchCreatesWalls pins the failure mode that motivated the
// pitch family rule: pitches shorter than (4,6) are cheap domain-wall
// sites and must not be used in chains.
func TestShortPitchCreatesWalls(t *testing.T) {
	bad := [][2]int{{4, 6}, {4, 6}, {2, 6}, {4, 4}, {4, 6}, {4, 6}, {4, 6}}
	if chainOK(t, bad) {
		t.Error("short-pitch shims unexpectedly propagate; design rule may be stale")
	}
}

// TestIsolatedPairHoldsOneElectronInChain confirms the emergent BDL
// behavior: within a chain each pair holds exactly one electron even
// though an isolated 0.86 nm pair would doubly charge.
func TestIsolatedPairHoldsOneElectronInChain(t *testing.T) {
	ps := chainSteps(15, 0, repeatStep(4, 6, 5))
	d := &Design{Name: "chain", Pairs: ps}
	d.Ins = []Pair{ps[0]}
	d.Outs = []Pair{ps[len(ps)-1]}
	l := d.Layout(0, 0)
	for _, s := range InputEmulation(d.Ins[0], true) {
		l.Add(s, sidb.RolePerturber)
	}
	l.Add(OutputPerturber(d.Outs[0]), sidb.RolePerturber)
	eng := sim.NewEngine(l, sim.ParamsFig5)
	gs, _ := eng.Exhaustive()
	for k := 0; k < len(ps); k++ {
		b0, b1 := gs[2*k], gs[2*k+1]
		if b0 == b1 {
			t.Fatalf("pair %d holds %v electrons", k, b0)
		}
	}
	if !eng.PopulationStable(gs) {
		t.Error("chain ground state not population stable")
	}
}
