// Package gatelib implements the Bestagon standard-tile gate library:
// dot-accurate SiDB implementations of every tile function on uniform
// hexagonal tiles of 60×46 lattice cells (§4.1 of the paper), plus the
// application of the library to gate-level layouts (flow step 7).
//
// Tile geometry follows the paper's template (Fig. 4): input BDL wire
// stubs enter at the centers of the NW and NE borders, output stubs leave
// toward SW and SE, and a logic design canvas sits at the center. Stub
// lengths keep the canvases of adjacent tiles ≥ 10 nm apart. The concrete
// dot placements were derived with the package's simulation-driven design
// search (see internal/designer) and are validated against the SimAnneal
// ground-state model with the paper's Fig. 5 parameters.
package gatelib

import (
	"repro/internal/hexgrid"
	"repro/internal/lattice"
	"repro/internal/sidb"
)

// Tile dimensions in lattice cells, fixed by the Table 1 area model:
// 60 cells wide, 46 sub-rows high.
const (
	TileWidth  = 60
	TileHeight = 46
)

// Port x-positions (cells): west ports (NW/SW) and east ports (NE/SE).
const (
	PortWest = 15
	PortEast = 45
)

// Pair is a BDL pair given by its anchor cell and orientation: the Bit0
// (logic-0) dot sits at the anchor, the Bit1 (logic-1) dot two sub-rows
// down and DX cells over (DX is +1 for right-leaning pairs, -1 for
// left-leaning ones). The resulting intra-pair distance of 0.86 nm was
// selected by the wire-geometry search: it propagates both logic states
// cleanly at the Fig. 5 parameters.
type Pair struct {
	X, Y int // anchor cell (Bit0 dot)
	DX   int // +1 or -1: forward-dot direction
}

// PairDY is the vertical intra-pair offset in sub-rows.
const PairDY = 2

// Dots returns the two dot sites of the pair.
func (p Pair) Dots() (bit0, bit1 lattice.Site) {
	return lattice.FromCell(p.X, p.Y), lattice.FromCell(p.X+p.DX, p.Y+PairDY)
}

// BDL converts the pair into its sidb representation.
func (p Pair) BDL() sidb.BDLPair {
	b0, b1 := p.Dots()
	return sidb.BDLPair{Bit0: b0, Bit1: b1}
}

// Mirror reflects the pair across the tile's vertical center line.
func (p Pair) Mirror() Pair {
	return Pair{X: TileWidth - p.X, Y: p.Y, DX: -p.DX}
}

// Translate shifts the pair by (dx, dy) cells.
func (p Pair) Translate(dx, dy int) Pair {
	return Pair{X: p.X + dx, Y: p.Y + dy, DX: p.DX}
}

// chainSteps builds a run of pairs starting at anchor (x, y) and advancing
// by the given steps. Pair orientation follows the sign of each step's
// horizontal component (a zero dx keeps the previous orientation).
func chainSteps(x, y int, steps [][2]int) []Pair {
	out := []Pair{}
	dx := 1
	cx, cy := x, y
	for i := 0; ; i++ {
		if i < len(steps) && steps[i][0] < 0 {
			dx = -1
		} else if i < len(steps) && steps[i][0] > 0 {
			dx = 1
		}
		out = append(out, Pair{X: cx, Y: cy, DX: dx})
		if i == len(steps) {
			break
		}
		cx += steps[i][0]
		cy += steps[i][1]
	}
	return out
}

// repeatStep returns n copies of one step.
func repeatStep(dx, dy, n int) [][2]int {
	out := make([][2]int, n)
	for i := range out {
		out[i] = [2]int{dx, dy}
	}
	return out
}

// Validated inter-pair pitches (from the wire-geometry search at Fig. 5
// parameters): (±4,6) is the floor of the family; (±4,7) and (±5,6) are
// the standard ray steps. Pitches shorter than (4,6) are cheap
// domain-wall sites and must not appear in chains (see
// designrules_test.go).

// Design is a dot-accurate tile implementation.
type Design struct {
	Name string
	// Pairs are the BDL pairs of the tile (stubs, core, canvas).
	Pairs []Pair
	// Extra are additional single canvas dots (from the design search).
	Extra []lattice.Site
	// Perturbers are fixed peripheral perturbers that are part of the tile
	// itself (not the I/O emulation ones).
	Perturbers []lattice.Site
	// Ins are the input pairs in port order (NW first).
	Ins []Pair
	// Outs are the output pairs in port order (SW first for 2-output).
	Outs []Pair
	// InDirs/OutDirs give the hexagon sides of the ports in port order.
	InDirs  []hexgrid.Direction
	OutDirs []hexgrid.Direction
	// OutEmu optionally overrides the standalone-validation output
	// perturber sites (one per output pair); used by designs whose
	// downstream pair is not on the standard ray (e.g. vertical wires).
	OutEmu []lattice.Site
}

// Layout instantiates the design as an SiDB layout at cell offset (ox, oy).
func (d *Design) Layout(ox, oy int) *sidb.Layout {
	l := &sidb.Layout{Name: d.Name}
	inSet := map[Pair]bool{}
	for _, p := range d.Ins {
		inSet[p] = true
	}
	outSet := map[Pair]bool{}
	for _, p := range d.Outs {
		outSet[p] = true
	}
	for _, p := range d.Pairs {
		role := sidb.RoleNormal
		if inSet[p] {
			role = sidb.RoleInput
		} else if outSet[p] {
			role = sidb.RoleOutput
		}
		b0, b1 := p.Translate(ox, oy).Dots()
		l.Add(b0, role)
		l.Add(b1, role)
	}
	for _, s := range d.Extra {
		l.Add(s.Translate(ox, oy), sidb.RoleNormal)
	}
	for _, s := range d.Perturbers {
		l.Add(s.Translate(ox, oy), sidb.RolePerturber)
	}
	return l
}

// Mirror reflects the whole design across the vertical center line,
// swapping east and west ports.
func (d *Design) Mirror(name string) *Design {
	m := &Design{Name: name}
	for _, p := range d.Pairs {
		m.Pairs = append(m.Pairs, p.Mirror())
	}
	for _, s := range d.Extra {
		x, y := s.Cell()
		m.Extra = append(m.Extra, lattice.FromCell(TileWidth-x, y))
	}
	for _, s := range d.Perturbers {
		x, y := s.Cell()
		m.Perturbers = append(m.Perturbers, lattice.FromCell(TileWidth-x, y))
	}
	for _, p := range d.Ins {
		m.Ins = append(m.Ins, p.Mirror())
	}
	for _, p := range d.Outs {
		m.Outs = append(m.Outs, p.Mirror())
	}
	mirrorDir := func(dir hexgrid.Direction) hexgrid.Direction {
		switch dir {
		case hexgrid.NorthWest:
			return hexgrid.NorthEast
		case hexgrid.NorthEast:
			return hexgrid.NorthWest
		case hexgrid.SouthWest:
			return hexgrid.SouthEast
		case hexgrid.SouthEast:
			return hexgrid.SouthWest
		default:
			return dir
		}
	}
	for _, dir := range d.InDirs {
		m.InDirs = append(m.InDirs, mirrorDir(dir))
	}
	for _, dir := range d.OutDirs {
		m.OutDirs = append(m.OutDirs, mirrorDir(dir))
	}
	for _, s := range d.OutEmu {
		x, y := s.Cell()
		m.OutEmu = append(m.OutEmu, lattice.FromCell(TileWidth-x, y))
	}
	// Normalize port order: gate-level layouts list two-port sides as
	// [NW, NE] and [SW, SE]; mirroring reverses them, so swap back (the
	// mirrored functions are commutative, and fan-out copies are equal).
	if len(m.InDirs) == 2 && m.InDirs[0] == hexgrid.NorthEast {
		m.InDirs[0], m.InDirs[1] = m.InDirs[1], m.InDirs[0]
		m.Ins[0], m.Ins[1] = m.Ins[1], m.Ins[0]
	}
	if len(m.OutDirs) == 2 && m.OutDirs[0] == hexgrid.SouthEast {
		m.OutDirs[0], m.OutDirs[1] = m.OutDirs[1], m.OutDirs[0]
		m.Outs[0], m.Outs[1] = m.Outs[1], m.Outs[0]
		if len(m.OutEmu) == 2 {
			m.OutEmu[0], m.OutEmu[1] = m.OutEmu[1], m.OutEmu[0]
		}
	}
	return m
}

// NumDots returns the number of dots of the design.
func (d *Design) NumDots() int {
	return 2*len(d.Pairs) + len(d.Extra) + len(d.Perturbers)
}
