package gatelib

import (
	"math"
	"testing"

	"repro/internal/sidb"
	"repro/internal/sim"
	"repro/internal/sim/quickexact"
)

// freeDots counts the non-perturber dots of a layout.
func freeDots(l *sidb.Layout) int {
	n := 0
	for _, d := range l.Dots {
		if d.Role != sidb.RolePerturber {
			n++
		}
	}
	return n
}

// TestEnginesAgreeOnLibraryTiles is the golden cross-check of the three
// ground-state engines: for every tile design of the Bestagon library, the
// pruned exact search must reproduce the blind-enumeration energy exactly
// (where enumeration is feasible), and annealing must never find anything
// below the proven minimum.
func TestEnginesAgreeOnLibraryTiles(t *testing.T) {
	lib := NewLibrary()
	for key, d := range lib.designs {
		l := d.Layout(0, 0)
		eng := sim.NewEngine(l, sim.ParamsFig5)
		free := freeDots(l)

		gs, qe, st, err := quickexact.GroundState(eng, quickexact.Options{})
		if err != nil {
			t.Errorf("%s: quickexact failed: %v", key, err)
			continue
		}
		if !eng.PopulationStable(gs) {
			t.Errorf("%s: quickexact ground state not population stable", key)
		}
		if free <= sim.ExactLimit {
			_, ex, err := eng.ExhaustiveChecked()
			if err != nil {
				t.Errorf("%s: exhaustive failed on %d free dots: %v", key, free, err)
				continue
			}
			if math.Abs(qe-ex) > 1e-9 {
				t.Errorf("%s: quickexact %v != exhaustive %v (stats %+v)", key, qe, ex, st)
			}
		}
		_, an := eng.Anneal(sim.DefaultAnnealConfig())
		if an < qe-1e-9 {
			t.Errorf("%s: anneal %v beats quickexact %v — exact search missed the minimum", key, an, qe)
		}
	}
}

// TestValidateSolversAgree cross-checks full tile validation (with I/O
// emulation perturbers, all input patterns) between the enumerating and the
// pruned exact solver: identical outputs and verdicts everywhere ExGS is
// feasible.
func TestValidateSolversAgree(t *testing.T) {
	if testing.Short() {
		t.Skip("full-library solver cross-validation is slow")
	}
	lib := NewLibrary()
	for _, key := range validatedVariants {
		d, ok := lib.designs[key]
		if !ok {
			t.Errorf("%s: design missing from library", key)
			continue
		}
		if freeDots(d.Layout(0, 0)) > sim.ExactLimit {
			continue
		}
		truth := TruthOf(lib.funcs[key])
		ex, err := ValidateWith(d, truth, sim.ParamsFig5, ValidateOptions{Solver: "exgs"})
		if err != nil {
			t.Fatalf("%s: %v", key, err)
		}
		qe, err := ValidateWith(d, truth, sim.ParamsFig5, ValidateOptions{Solver: "quickexact"})
		if err != nil {
			t.Fatalf("%s: %v", key, err)
		}
		if ex.OK != qe.OK {
			t.Errorf("%s: verdicts disagree: exgs ok=%v, quickexact ok=%v", key, ex.OK, qe.OK)
		}
		for p := range ex.Outputs {
			if ex.Outputs[p] != qe.Outputs[p] {
				t.Errorf("%s: pattern %d: exgs output %d != quickexact output %d",
					key, p, ex.Outputs[p], qe.Outputs[p])
			}
		}
		if ex.Method != "exgs" || qe.Method != "quickexact" {
			t.Errorf("%s: methods %q/%q, want exgs/quickexact", key, ex.Method, qe.Method)
		}
	}
}

// TestUnknownSolverRejected ensures explicit solver selection fails loudly.
func TestUnknownSolverRejected(t *testing.T) {
	lib := NewLibrary()
	var d *Design
	for _, dd := range lib.designs {
		d = dd
		break
	}
	_, err := ValidateWith(d, func(uint32) uint32 { return 0 }, sim.ParamsFig5,
		ValidateOptions{Solver: "no-such-solver"})
	if err == nil {
		t.Fatal("unknown solver name must be rejected")
	}
}
