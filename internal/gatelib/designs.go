package gatelib

import (
	"fmt"

	"repro/internal/gates"
	"repro/internal/hexgrid"
	"repro/internal/lattice"
)

// This file holds the concrete Bestagon tile designs. Wire geometry comes
// from the package's pitch-validation sweep; gate cores (the Extra canvas
// dots) were produced by internal/designer's stochastic search with
// deterministic seeds (regenerate with cmd/gatedesigner) and are validated
// by TestLibraryValidation against the Fig. 5 simulation parameters.

// c is shorthand for a cell-coordinate lattice site.
func c(x, y int) lattice.Site { return lattice.FromCell(x, y) }

// Standard chain segments shared by the designs. All steps come from the
// validated pitch set {(0,6),(±1,6),(±2,6),(±3,6),(4,4),(±4,5),(±4,6),
// (±4,7),(±5,5),(±5,6),(±6,5),(±6,6)}.
var (
	// inNW: NW port (15,0) down to the canvas tip (24,13). Steps (4,7) and
	// (5,6) come from the validated pitch family (never shorter than
	// (4,6), which would create cheap domain-wall sites).
	inNW = []Pair{{15, 0, 1}, {19, 7, 1}, {24, 13, 1}}
	// inNE is the mirror: NE port (45,0) to tip (36,13).
	inNE = []Pair{{45, 0, -1}, {41, 7, -1}, {36, 13, -1}}
	// outSE: canvas (32,26) to the SE port pair (41,39); the border step
	// (4,7) lands on the SE neighbor's NW port (45,46).
	outSE = []Pair{{32, 26, 1}, {36, 33, 1}, {41, 39, 1}}
	// outSW is the mirror toward the SW port.
	outSW = []Pair{{28, 26, -1}, {24, 33, -1}, {19, 39, -1}}
)

// twoInDesign assembles a 2-in-1-out gate with the given canvas dots,
// output toward SE.
func twoInDesign(name string, canvas []lattice.Site) *Design {
	d := &Design{Name: name}
	d.Pairs = append(d.Pairs, inNW...)
	d.Pairs = append(d.Pairs, inNE...)
	d.Pairs = append(d.Pairs, outSE...)
	d.Extra = canvas
	d.Ins = []Pair{inNW[0], inNE[0]}
	d.Outs = []Pair{outSE[len(outSE)-1]}
	d.InDirs = []hexgrid.Direction{hexgrid.NorthWest, hexgrid.NorthEast}
	d.OutDirs = []hexgrid.Direction{hexgrid.SouthEast}
	return d
}

// oneInDesign assembles a 1-in-1-out tile (input NW, output SE).
func oneInDesign(name string, canvas []lattice.Site) *Design {
	d := &Design{Name: name}
	d.Pairs = append(d.Pairs, inNW...)
	d.Pairs = append(d.Pairs, outSE...)
	d.Extra = canvas
	d.Ins = []Pair{inNW[0]}
	d.Outs = []Pair{outSE[len(outSE)-1]}
	d.InDirs = []hexgrid.Direction{hexgrid.NorthWest}
	d.OutDirs = []hexgrid.Direction{hexgrid.SouthEast}
	return d
}

// oneInDiagDesign assembles a 1-in-1-out tile with input NW and output SW
// (the paper's "diagonal" inverter orientation).
func oneInDiagDesign(name string, canvas []lattice.Site) *Design {
	d := &Design{Name: name}
	d.Pairs = append(d.Pairs, inNW...)
	d.Pairs = append(d.Pairs, outSW...)
	d.Extra = canvas
	d.Ins = []Pair{inNW[0]}
	d.Outs = []Pair{outSW[len(outSW)-1]}
	d.InDirs = []hexgrid.Direction{hexgrid.NorthWest}
	d.OutDirs = []hexgrid.Direction{hexgrid.SouthWest}
	return d
}

// twoOutDesign assembles a 1-in-2-out or 2-in-2-out tile.
func twoOutDesign(name string, twoIn bool, canvas []lattice.Site) *Design {
	d := &Design{Name: name}
	d.Pairs = append(d.Pairs, inNW...)
	if twoIn {
		d.Pairs = append(d.Pairs, inNE...)
	}
	d.Pairs = append(d.Pairs, outSW...)
	d.Pairs = append(d.Pairs, outSE...)
	d.Extra = canvas
	if twoIn {
		d.Ins = []Pair{inNW[0], inNE[0]}
		d.InDirs = []hexgrid.Direction{hexgrid.NorthWest, hexgrid.NorthEast}
	} else {
		d.Ins = []Pair{inNW[0]}
		d.InDirs = []hexgrid.Direction{hexgrid.NorthWest}
	}
	d.Outs = []Pair{outSW[len(outSW)-1], outSE[len(outSE)-1]}
	d.OutDirs = []hexgrid.Direction{hexgrid.SouthWest, hexgrid.SouthEast}
	return d
}

// wireDesign is the straight NW->SE wire: the standard ray across the
// tile; the border step (4,7) continues seamlessly into the SE neighbor.
func wireDesign() *Design {
	steps := [][2]int{{4, 7}, {5, 6}, {4, 7}, {4, 6}, {4, 7}, {5, 6}}
	ps := chainSteps(15, 0, steps)
	d := &Design{Name: "wire_nw_se", Pairs: ps}
	d.Ins = []Pair{ps[0]}
	d.Outs = []Pair{ps[len(ps)-1]}
	d.InDirs = []hexgrid.Direction{hexgrid.NorthWest}
	d.OutDirs = []hexgrid.Direction{hexgrid.SouthEast}
	return d
}

// diagWireDesign is the diagonal NW->SW wire: entry and exit pairs on the
// west side connected by a relay-dot cloud found by the design search (a
// plain vertical BDL chain has too little directional asymmetry to hold
// both logic states at these parameters).
func diagWireDesign() *Design {
	d := &Design{Name: "diag_nw_sw"}
	first := Pair{PortWest, 0, 1}
	last := Pair{PortWest, 39, -1}
	d.Pairs = []Pair{first, last}
	d.Extra = []lattice.Site{
		c(8, 5), c(24, 9), c(22, 11), c(10, 27), c(20, 27), c(14, 29), c(14, 33),
	}
	d.Ins = []Pair{first}
	d.Outs = []Pair{last}
	d.InDirs = []hexgrid.Direction{hexgrid.NorthWest}
	d.OutDirs = []hexgrid.Direction{hexgrid.SouthWest}
	// Downstream emulation: the SW neighbor's NE stub (first two pairs'
	// back dots); the second site lies outside the tile and is used for
	// standalone validation only.
	d.OutEmu = []lattice.Site{c(PortWest, TileHeight), c(PortWest-4, TileHeight+7)}
	return d
}

// piDesign is the primary-input tile: its first pair is set by an external
// electrode (emulated by a near/far perturber) and wired to the SE port.
func piDesign() *Design {
	steps := [][2]int{{4, 7}, {4, 6}, {4, 7}, {5, 6}}
	ps := chainSteps(24, 13, steps)
	d := &Design{Name: "pi_se", Pairs: ps}
	d.Ins = []Pair{ps[0]} // driven externally
	d.Outs = []Pair{ps[len(ps)-1]}
	d.OutDirs = []hexgrid.Direction{hexgrid.SouthEast}
	return d
}

// poDesign is the primary-output tile: the NW input wire ends at a
// read-out pair guarded by the tile's own output perturber (the
// single-electron-transistor read-out site in a fabricated device).
func poDesign() *Design {
	ps := []Pair{{15, 0, 1}, {19, 7, 1}, {24, 13, 1}, {28, 20, 1}, {32, 26, 1}}
	d := &Design{Name: "po_nw", Pairs: ps}
	d.Ins = []Pair{ps[0]}
	d.Outs = []Pair{ps[len(ps)-1]} // read-out pair
	d.InDirs = []hexgrid.Direction{hexgrid.NorthWest}
	d.Perturbers = []lattice.Site{OutputPerturber(ps[len(ps)-1])}
	return d
}

// Canvas dot sets found by the design search (internal/designer, seed 1).
var (
	canvasAND    = []lattice.Site{c(20, 14), c(22, 28), c(24, 28)}
	canvasOR     = []lattice.Site{c(38, 14), c(36, 18), c(20, 22), c(20, 26), c(22, 28)}
	canvasNAND   = []lattice.Site{c(38, 16), c(30, 28)}
	canvasNOR    = []lattice.Site{c(24, 16), c(36, 16)}
	canvasINV    = []lattice.Site{c(34, 16), c(32, 18), c(20, 28)}
	canvasINVD   []lattice.Site
	canvasXOR    = []lattice.Site{c(32, 14), c(32, 16), c(26, 20), c(20, 22), c(26, 26)}
	canvasXNOR   = []lattice.Site{c(20, 14), c(22, 14), c(22, 16), c(18, 30)}
	canvasFANOUT []lattice.Site
	canvasCROSS  []lattice.Site
	canvasHA     []lattice.Site
)

// Variant identifies a concrete tile design for a function with specific
// port sides.
type Variant struct {
	Func    gates.Func
	InDirs  []hexgrid.Direction
	OutDirs []hexgrid.Direction
}

// Library is the Bestagon gate library: all tile designs by variant.
type Library struct {
	designs map[string]*Design
	funcs   map[string]gates.Func
}

// key builds the lookup key of a variant.
func (v Variant) key() string {
	s := v.Func.String()
	for _, d := range v.InDirs {
		s += ":i" + d.String()
	}
	for _, d := range v.OutDirs {
		s += ":o" + d.String()
	}
	return s
}

// NewLibrary assembles the complete library with all orientation variants.
func NewLibrary() *Library {
	lib := &Library{designs: map[string]*Design{}, funcs: map[string]gates.Func{}}
	add := func(f gates.Func, d *Design) {
		v := Variant{Func: f, InDirs: d.InDirs, OutDirs: d.OutDirs}
		lib.designs[v.key()] = d
		lib.funcs[v.key()] = f
	}
	addBoth := func(f gates.Func, d *Design) {
		add(f, d)
		add(f, d.Mirror(d.Name+"_m"))
	}

	addBoth(gates.Wire, wireDesign())
	addBoth(gates.DiagWire, diagWireDesign())
	addBoth(gates.Inv, oneInDesign("inv", canvasINV))
	addBoth(gates.Inv, oneInDiagDesign("invd", canvasINVD))
	addBoth(gates.And, twoInDesign("and", canvasAND))
	addBoth(gates.Or, twoInDesign("or", canvasOR))
	addBoth(gates.Nand, twoInDesign("nand", canvasNAND))
	addBoth(gates.Nor, twoInDesign("nor", canvasNOR))
	addBoth(gates.Xor, twoInDesign("xor", canvasXOR))
	addBoth(gates.Xnor, twoInDesign("xnor", canvasXNOR))
	add(gates.Fanout, twoOutDesign("fanout", false, canvasFANOUT))
	add(gates.Fanout, twoOutDesign("fanout", false, canvasFANOUT).Mirror("fanout_m"))
	add(gates.Crossing, twoOutDesign("crossing", true, canvasCROSS))
	add(gates.HalfAdder, twoOutDesign("ha", true, canvasHA))

	pi := piDesign()
	add(gates.PI, pi)
	add(gates.PI, pi.Mirror("pi_sw"))
	po := poDesign()
	add(gates.PO, po)
	add(gates.PO, po.Mirror("po_ne"))
	return lib
}

// Get returns the design for a variant.
func (lib *Library) Get(f gates.Func, ins, outs []hexgrid.Direction) (*Design, error) {
	v := Variant{Func: f, InDirs: ins, OutDirs: outs}
	d, ok := lib.designs[v.key()]
	if !ok {
		return nil, fmt.Errorf("gatelib: no design for %s", v.key())
	}
	return d, nil
}

// Design looks a variant up by its key string (as listed by Variants),
// returning the tile design and its gate function. Used by callers that
// address gates by name — e.g. the design-service /v1/simulate and
// /v1/gates endpoints — rather than by structured Variant.
func (lib *Library) Design(key string) (*Design, gates.Func, bool) {
	d, ok := lib.designs[key]
	if !ok {
		return nil, 0, false
	}
	return d, lib.funcs[key], true
}

// Variants lists all registered variant keys (sorted order not guaranteed).
func (lib *Library) Variants() []string {
	out := make([]string, 0, len(lib.designs))
	for k := range lib.designs {
		out = append(out, k)
	}
	return out
}
