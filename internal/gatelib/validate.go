package gatelib

import (
	"fmt"

	"repro/internal/gates"

	"repro/internal/defects"
	"repro/internal/lattice"
	"repro/internal/obs"
	"repro/internal/sidb"
	"repro/internal/sim"
)

// I/O emulation, following the paper's input method: the input perturber
// exists for both logic states, close for 1 and far for 0, emulating the
// upstream BDL wire's last pair. The near site is exactly where the
// upstream pair's forward dot sits (its electron at logic 1), the far site
// where its back dot sits (logic 0); the output perturber emulates the
// downstream pair.
const (
	// NearPerturb/FarPerturb are legacy diagonal distances kept for the
	// design-space exploration tools.
	NearPerturb = 2
	FarPerturb  = 8
	// OutPerturb is the diagonal distance of the standard output perturber
	// behind an output pair's forward dot.
	OutPerturb = 4
)

// InputEmulation returns the perturber sites emulating the given logic
// value on an input pair: the upstream stub approaches along the standard
// ray step (±4,7), so its last two pairs anchor at (x∓4, y-7) and
// (x∓8, y-14). For logic 1 their electrons sit at the forward dots, for
// logic 0 at the back dots; the emulation pins charges at exactly those
// sites. The pair's orientation selects the side.
func InputEmulation(p Pair, bit bool) []lattice.Site {
	dx := 1
	if p.DX < 0 {
		dx = -1
	}
	up := func(k int) (int, int) { return p.X - dx*4*k, p.Y - 7*k }
	var out []lattice.Site
	for k := 1; k <= 2; k++ {
		ax, ay := up(k)
		if bit {
			out = append(out, lattice.FromCell(ax+dx, ay+PairDY))
		} else {
			out = append(out, lattice.FromCell(ax, ay))
		}
	}
	return out
}

// InputPerturber returns the primary (nearest) emulation site; legacy
// helper for exploration tools.
func InputPerturber(p Pair, bit bool) lattice.Site {
	return InputEmulation(p, bit)[0]
}

// OutputPerturber returns the read-out perturber site behind an output
// pair.
func OutputPerturber(p Pair) lattice.Site {
	return lattice.FromCell(p.X+p.DX*(1+OutPerturb), p.Y+PairDY+OutPerturb)
}

// Failure kinds of a defect-aware validation (Validation.FailKind).
const (
	// FailDefectBlocked marks a gate that fails solely because of surface
	// defects: a dot inside an exclusion zone, or an electrostatic
	// perturbation that flips the gate while the pristine gate works.
	FailDefectBlocked = "defect_blocked"
	// FailLogic marks a gate that computes the wrong function even on a
	// pristine surface.
	FailLogic = "logic"
)

// Validation is the result of a standalone tile simulation (Fig. 5 style).
type Validation struct {
	OK bool
	// Outputs[pattern] is the read output bit vector (-1 when the ground
	// state leaves an output pair undefined).
	Outputs []int
	// MinGapEV is the smallest energy gap between the ground state and the
	// best differing-output configuration (exhaustive cases only; 0
	// otherwise).
	MinGapEV float64
	// Method names the ground-state solver that produced the outputs
	// ("exgs", "quickexact", "anneal", ...).
	Method string
	// FailKind classifies a failure ("" when OK): FailDefectBlocked or
	// FailLogic.
	FailKind string `json:",omitempty"`
	// DefectBlocked reports the gate failed solely because of surface
	// defects (FailKind == FailDefectBlocked).
	DefectBlocked bool `json:",omitempty"`
}

// ValidateOptions tunes Validate.
type ValidateOptions struct {
	// Solver names the sim ground-state solver ("" = automatic dispatch;
	// see sim.SolverNames).
	Solver string
	// Tracer receives concurrency-safe solver metrics; nil disables them.
	Tracer *obs.Tracer
	// Surface holds the surface defects in tile-local cell coordinates
	// (translate a global surface by the negated tile origin first; see
	// TileSurface). Nil validates on a pristine surface. Any design or
	// emulation dot inside a defect's exclusion zone fast-rejects the gate
	// as FailDefectBlocked before any simulation; charged defects outside
	// exclusion zones enter the electrostatics as fixed perturbers.
	Surface *defects.Surface
}

// Validate simulates the design standalone for every input pattern and
// compares the outputs with the truth function (bit i of the argument is
// input i; bit j of the result is output j). The ground-state solver is
// chosen automatically; use ValidateWith to select one explicitly.
func Validate(d *Design, truth func(uint32) uint32, params sim.Params) Validation {
	v, _ := ValidateWith(d, truth, params, ValidateOptions{})
	return v
}

// ValidateWith is Validate with an explicit solver choice. It fails only
// on an unknown solver name; a solver that cannot handle an instance
// (e.g. ExGS beyond its enumeration limit) degrades to annealing for that
// pattern.
func ValidateWith(d *Design, truth func(uint32) uint32, params sim.Params, opts ValidateOptions) (Validation, error) {
	solver, err := sim.Lookup(opts.Solver)
	if err != nil {
		return Validation{}, err
	}
	nIn := len(d.Ins)
	patterns := 1 << nIn
	v := Validation{OK: true, Outputs: make([]int, patterns), MinGapEV: 1e9}
	// Exclusion-zone fast-reject: a defect too close to any design dot
	// makes the gate unfabricable — no simulation needed.
	if !opts.Surface.Empty() {
		for _, dot := range d.Layout(0, 0).Dots {
			if _, blocked := opts.Surface.Blocks(dot.Site); blocked {
				return blockedValidation(patterns), nil
			}
		}
	}
	for p := 0; p < patterns; p++ {
		l := d.Layout(0, 0)
		for i, in := range d.Ins {
			for _, site := range InputEmulation(in, p>>i&1 == 1) {
				l.Add(site, sidb.RolePerturber)
			}
		}
		have := l.SiteIndex()
		for j, out := range d.Outs {
			site := OutputPerturber(out)
			if j < len(d.OutEmu) {
				site = d.OutEmu[j]
			}
			// Designs with built-in read-out perturbers (PO tiles) already
			// contain the emulation dot.
			if _, dup := have[site]; dup {
				continue
			}
			l.Add(site, sidb.RolePerturber)
		}
		// Extra downstream-emulation sites beyond one per output.
		if len(d.OutEmu) > len(d.Outs) {
			for _, site := range d.OutEmu[len(d.Outs):] {
				l.Add(site, sidb.RolePerturber)
			}
		}
		free := 0
		for _, dot := range l.Dots {
			if dot.Role != sidb.RolePerturber {
				free++
			}
		}
		// The per-pattern emulation perturbers must be fabricable too.
		if !opts.Surface.Empty() {
			blocked := false
			for _, dot := range l.Dots {
				if _, b := opts.Surface.Blocks(dot.Site); b {
					blocked = true
					break
				}
			}
			if blocked {
				return blockedValidation(patterns), nil
			}
		}
		eng := sim.NewEngineOn(l, params, opts.Surface)
		var gs []bool
		if sol, serr := solver.Solve(eng, sim.SolveOptions{Tracer: opts.Tracer}); serr == nil {
			gs = sol.Charges
			v.Method = sol.Solver
		} else {
			gs, _ = eng.Anneal(sim.DefaultAnnealConfig())
			v.Method = "anneal"
		}
		idx := l.SiteIndex()
		got := 0
		valid := true
		for j, out := range d.Outs {
			state, err := out.BDL().State(idx, gs)
			if err != nil {
				valid = false
				break
			}
			if state {
				got |= 1 << j
			}
		}
		if !valid {
			v.Outputs[p] = -1
			v.OK = false
			continue
		}
		v.Outputs[p] = got
		if uint32(got) != truth(uint32(p)) {
			v.OK = false
		}
		if free <= sim.ExactLimit {
			var interest []int
			for _, out := range d.Outs {
				b := out.BDL()
				interest = append(interest, idx[b.Bit0], idx[b.Bit1])
			}
			if gap, err := eng.DegeneracyGap(interest); err == nil && gap < v.MinGapEV {
				v.MinGapEV = gap
			}
		}
	}
	if v.MinGapEV == 1e9 {
		v.MinGapEV = 0
	}
	if !v.OK {
		v.FailKind = FailLogic
		// Attribute the failure: if the same gate works on a pristine
		// surface, the defects broke it. The pristine re-validation runs
		// only on the failure path, so working gates pay nothing.
		if !opts.Surface.Empty() {
			pristine := opts
			pristine.Surface = nil
			if pv, perr := ValidateWith(d, truth, params, pristine); perr == nil && pv.OK {
				v.FailKind = FailDefectBlocked
				v.DefectBlocked = true
			}
		}
	}
	return v, nil
}

// blockedValidation is the result of an exclusion-zone fast-reject: no
// simulation ran, every output is undefined.
func blockedValidation(patterns int) Validation {
	v := Validation{FailKind: FailDefectBlocked, DefectBlocked: true,
		Outputs: make([]int, patterns)}
	for i := range v.Outputs {
		v.Outputs[i] = -1
	}
	return v
}

// String summarizes the validation.
func (v Validation) String() string {
	return fmt.Sprintf("ok=%v outputs=%v gap=%.4feV method=%s", v.OK, v.Outputs, v.MinGapEV, v.Method)
}

// ValidateLibrary validates every design of the default library against
// its tile function's truth table and returns the results keyed by variant
// key.
func ValidateLibrary(params sim.Params) map[string]Validation {
	lib := NewLibrary()
	out := map[string]Validation{}
	for key, d := range lib.designs {
		f := lib.funcs[key]
		truth := TruthOf(f)
		out[key] = Validate(d, truth, params)
	}
	return out
}

// TruthOf returns the truth function of a tile function, treating PI and
// PO tiles as identity buffers of their externally driven pair.
func TruthOf(f gates.Func) func(uint32) uint32 {
	if f == gates.PI || f == gates.PO {
		return func(in uint32) uint32 { return in & 1 }
	}
	return func(in uint32) uint32 {
		bits := make([]bool, f.NumIns())
		for i := range bits {
			bits[i] = in>>i&1 == 1
		}
		var res uint32
		for j, v := range f.Eval(bits) {
			if v {
				res |= 1 << j
			}
		}
		return res
	}
}
