package cache

import (
	"testing"

	"repro/internal/core"
	"repro/internal/defects"
	"repro/internal/gatelib"
	"repro/internal/logic/bench"
	"repro/internal/sim"
)

// testSurface builds a small mixed surface; when permuted, the same
// defects are inserted in reverse order (Surface must canonicalize).
func testSurface(permuted bool) *defects.Surface {
	type dd struct {
		x, y int
		t    defects.Type
	}
	dots := []dd{
		{5, 9, defects.DB},
		{12, 3, defects.Siloxane},
		{30, 11, defects.Arsenic},
		{2, 40, defects.EtchedDimer},
	}
	s := defects.New()
	if permuted {
		for i := len(dots) - 1; i >= 0; i-- {
			s.AddCell(dots[i].x, dots[i].y, dots[i].t)
		}
	} else {
		for _, d := range dots {
			s.AddCell(d.x, d.y, d.t)
		}
	}
	return s
}

// TestDefectKeysDivergeFromPristine: a defect-bearing request must never
// share a cache key with its pristine twin, for all three key kinds —
// including a neutral-only surface, which changes no electrostatics but
// still constrains fabrication.
func TestDefectKeysDivergeFromPristine(t *testing.T) {
	surf := testSurface(false)
	neutral := defects.New()
	neutral.AddCell(12, 3, defects.Siloxane)

	la, _, _ := twoLayouts()
	kPristine, _ := SimKey(sim.NewEngine(la, sim.ParamsFig5), "exgs")
	kDefect, _ := SimKey(sim.NewEngineOn(la, sim.ParamsFig5, surf), "exgs")
	kNeutral, _ := SimKey(sim.NewEngineOn(la, sim.ParamsFig5, neutral), "exgs")
	if kPristine == kDefect || kPristine == kNeutral || kDefect == kNeutral {
		t.Fatalf("sim keys collided: pristine=%s defect=%s neutral=%s", kPristine, kDefect, kNeutral)
	}
	// NewEngineOn with a nil surface is the pristine engine, same key.
	kNil, _ := SimKey(sim.NewEngineOn(la, sim.ParamsFig5, nil), "exgs")
	if kNil != kPristine {
		t.Fatalf("nil-surface engine hashed differently: %s vs %s", kNil, kPristine)
	}

	spec, err := bench.ParseBench("golden", xorSrc)
	if err != nil {
		t.Fatal(err)
	}
	fPristine := FlowKey(spec, core.Options{}, false, false)
	fDefect := FlowKey(spec, core.Options{Surface: surf}, false, false)
	fNeutral := FlowKey(spec, core.Options{Surface: neutral}, false, false)
	if fPristine == fDefect || fPristine == fNeutral || fDefect == fNeutral {
		t.Fatal("flow keys collided")
	}

	lib := gatelib.NewLibrary()
	d, f, ok := lib.Design("wire:iNW:oSE")
	if !ok {
		t.Fatal("wire variant missing")
	}
	truth := gatelib.TruthOf(f)
	vPristine := ValidationKey(d, truth, sim.ParamsFig5, "exgs", nil)
	vDefect := ValidationKey(d, truth, sim.ParamsFig5, "exgs", surf)
	vNeutral := ValidationKey(d, truth, sim.ParamsFig5, "exgs", neutral)
	if vPristine == vDefect || vPristine == vNeutral || vDefect == vNeutral {
		t.Fatal("validation keys collided")
	}
}

// TestDefectKeyOrderIndependence: the same defects added in a different
// order must hash identically everywhere a surface enters a key.
func TestDefectKeyOrderIndependence(t *testing.T) {
	a, b := testSurface(false), testSurface(true)

	la, _, _ := twoLayouts()
	ka, _ := SimKey(sim.NewEngineOn(la, sim.ParamsFig5, a), "exgs")
	kb, _ := SimKey(sim.NewEngineOn(la, sim.ParamsFig5, b), "exgs")
	if ka != kb {
		t.Fatalf("permuted surfaces hashed differently:\n  %s\n  %s", ka, kb)
	}

	spec, err := bench.ParseBench("golden", xorSrc)
	if err != nil {
		t.Fatal(err)
	}
	if FlowKey(spec, core.Options{Surface: a}, false, false) !=
		FlowKey(spec, core.Options{Surface: b}, false, false) {
		t.Fatal("permuted surfaces produced different flow keys")
	}

	lib := gatelib.NewLibrary()
	d, f, _ := lib.Design("wire:iNW:oSE")
	truth := gatelib.TruthOf(f)
	if ValidationKey(d, truth, sim.ParamsFig5, "exgs", a) !=
		ValidationKey(d, truth, sim.ParamsFig5, "exgs", b) {
		t.Fatal("permuted surfaces produced different validation keys")
	}
}

// TestDefectKeyGolden pins defect-bearing keys against constants computed
// in another process: cross-process determinism of the canonical surface
// serialization. If this fails after an intentional encoding change,
// every cached defect-bearing artifact is invalidated — update the
// constants deliberately. The pristine flow golden additionally proves
// that adding defect support did not disturb pre-defect keys (an empty
// surface contributes zero bytes to the digest).
func TestDefectKeyGolden(t *testing.T) {
	spec, err := bench.ParseBench("golden", xorSrc)
	if err != nil {
		t.Fatal(err)
	}
	surf := testSurface(false)

	const wantPristine = Key("flow:603c1db6240d9208ba89c857a7d540708da1363cea6a46c56d0ee9a2f182e206")
	const wantDefect = Key("flow:e9723304bc81a600849679cc9a143c6144c549888a175c289188ce9c1e69ce20")
	if got := FlowKey(spec, core.Options{}, false, false); got != wantPristine {
		t.Fatalf("pristine flow golden changed:\n  got  %s\n  want %s", got, wantPristine)
	}
	if got := FlowKey(spec, core.Options{Surface: surf}, false, false); got != wantDefect {
		t.Fatalf("defect flow golden changed:\n  got  %s\n  want %s", got, wantDefect)
	}

	lib := gatelib.NewLibrary()
	d, f, _ := lib.Design("wire:iNW:oSE")
	truth := gatelib.TruthOf(f)
	const wantValidate = Key("gate:da052dcb8b8ca831222b4a230e36aed3f546482f7b06bedeadd4a6c4379cfd4d")
	if got := ValidationKey(d, truth, sim.ParamsFig5, "exgs", surf); got != wantValidate {
		t.Fatalf("defect validation golden changed:\n  got  %s\n  want %s", got, wantValidate)
	}
}
