package cache

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
)

// CachedSolver memoizes a ground-state solver through a content-addressed
// LRU. The cache key covers the physical problem (sites, pinned dots,
// parameters) and the backend name; charge vectors are stored in canonical
// site order and remapped on the way out, so layouts built with different
// dot insertion orders share entries and still receive correctly-indexed
// results. Only successful solves are cached — errors (including context
// cancellation) always reach the caller and leave no entry behind.
type CachedSolver struct {
	Inner sim.GroundStateSolver
	Cache *LRU
	// Tracer, when set, records cache-miss solve durations into the
	// sim_solve_seconds{solver="..."} histogram — the service points this
	// at its process-lifetime tracer so /metrics exposes the latency
	// distribution of actual ground-state computation, separated from the
	// (near-free) cache-hit path.
	Tracer *obs.Tracer
	// Peer is nil outside a fleet; when set, a local miss consults the
	// key's owner replica before solving, and non-degraded cold results
	// are pushed to the owner.
	Peer Layer
}

var _ sim.GroundStateSolver = (*CachedSolver)(nil)

// Name returns the inner backend's name.
func (c *CachedSolver) Name() string { return c.Inner.Name() }

// IsExact reports whether the inner backend proves minimality.
func (c *CachedSolver) IsExact() bool { return c.Inner.IsExact() }

// Solve returns the memoized ground state, or delegates to the inner
// backend and stores the result.
func (c *CachedSolver) Solve(e *sim.Engine, opts sim.SolveOptions) (sim.Solution, error) {
	sol, _, err := c.SolveTrack(e, opts)
	return sol, err
}

// SolveTrack is Solve plus a hit indicator (true when the result was
// served from the cache), used by the service layer's X-Cache header.
func (c *CachedSolver) SolveTrack(e *sim.Engine, opts sim.SolveOptions) (sim.Solution, bool, error) {
	key, order := SimKey(e, c.Inner.Name())
	if b, ok := c.Cache.Get(key); ok {
		if sol, err := decodeSolution(b, order); err == nil {
			return sol, true, nil
		}
		// A decode failure means a corrupted or incompatible entry; fall
		// through and recompute (the Put below overwrites it).
	}
	ctx := opts.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	if c.Peer != nil {
		// Peer errors fall through to a local solve, same as a miss.
		if b, ok, err := c.Peer.Get(ctx, key); err == nil && ok {
			if sol, err := decodeSolution(b, order); err == nil {
				c.Cache.Put(key, b)
				return sol, true, nil
			}
		}
	}
	start := time.Now()
	sol, err := c.Inner.Solve(e, opts)
	if err != nil {
		return sol, false, err
	}
	c.Tracer.Histogram(obs.Labeled("sim/solve_seconds", "solver", sol.Solver), obs.DefBuckets...).
		Observe(time.Since(start).Seconds())
	if !sol.Degraded {
		// A degraded solution reflects this call's deadline pressure, not
		// the problem content; caching it would hand reduced-quality answers
		// to well-budgeted future callers under the same key.
		enc := encodeSolution(sol, order)
		c.Cache.Put(key, enc)
		if c.Peer != nil {
			_ = c.Peer.Put(ctx, key, enc)
		}
	}
	return sol, false, nil
}

// encodeSolution serializes a solution with its charge vector permuted
// into canonical site order (canonical bit k = Charges[order[k]]).
func encodeSolution(sol sim.Solution, order []int) []byte {
	n := len(sol.Charges)
	b := make([]byte, 0, 8+1+2+len(sol.Solver)+4+(n+7)/8)
	var f [8]byte
	binary.BigEndian.PutUint64(f[:], math.Float64bits(sol.EnergyEV))
	b = append(b, f[:]...)
	if sol.Exact {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = append(b, byte(len(sol.Solver)>>8), byte(len(sol.Solver)))
	b = append(b, sol.Solver...)
	var nb [4]byte
	binary.BigEndian.PutUint32(nb[:], uint32(n))
	b = append(b, nb[:]...)
	bits := make([]byte, (n+7)/8)
	for k := 0; k < n; k++ {
		if sol.Charges[order[k]] {
			bits[k/8] |= 1 << (k % 8)
		}
	}
	return append(b, bits...)
}

// decodeSolution is the inverse of encodeSolution: canonical bit k is
// written back to Charges[order[k]].
func decodeSolution(b []byte, order []int) (sim.Solution, error) {
	var sol sim.Solution
	if len(b) < 8+1+2 {
		return sol, fmt.Errorf("cache: short solution entry")
	}
	sol.EnergyEV = math.Float64frombits(binary.BigEndian.Uint64(b[:8]))
	sol.Exact = b[8] == 1
	b = b[9:]
	sl := int(b[0])<<8 | int(b[1])
	b = b[2:]
	if len(b) < sl+4 {
		return sol, fmt.Errorf("cache: short solution entry")
	}
	sol.Solver = string(b[:sl])
	b = b[sl:]
	n := int(binary.BigEndian.Uint32(b[:4]))
	b = b[4:]
	if n != len(order) || len(b) < (n+7)/8 {
		return sol, fmt.Errorf("cache: solution entry size mismatch")
	}
	sol.Charges = make([]bool, n)
	for k := 0; k < n; k++ {
		sol.Charges[order[k]] = b[k/8]&(1<<(k%8)) != 0
	}
	return sol, nil
}
