package cache

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/defects"
	"repro/internal/gatelib"
	"repro/internal/logic/network"
	"repro/internal/sim"
)

// hasher accumulates a canonical binary encoding into SHA-256. All
// multi-byte values are written big-endian and variable-length fields are
// length-prefixed, so distinct input sequences can never collide by
// concatenation ambiguity.
type hasher struct {
	h   hash.Hash
	buf [8]byte
}

func newHasher() *hasher { return &hasher{h: sha256.New()} }

func (h *hasher) u64(v uint64) {
	binary.BigEndian.PutUint64(h.buf[:], v)
	h.h.Write(h.buf[:])
}

func (h *hasher) i64(v int64)   { h.u64(uint64(v)) }
func (h *hasher) f64(v float64) { h.u64(math.Float64bits(v)) }
func (h *hasher) boolByte(b bool) {
	if b {
		h.h.Write([]byte{1})
	} else {
		h.h.Write([]byte{0})
	}
}

func (h *hasher) str(s string) {
	h.u64(uint64(len(s)))
	h.h.Write([]byte(s))
}

// key finalizes the digest under a domain tag. The tag separates key
// spaces ("sim", "flow", "gate") so equal digests in different domains
// can never alias.
func (h *hasher) key(tag string) Key {
	return Key(tag + ":" + hex.EncodeToString(h.h.Sum(nil)))
}

// SimKey returns the content address of a ground-state simulation problem
// and the canonical dot order used to build it: order[k] is the engine dot
// index occupying canonical position k. Dots are sorted by lattice site
// (then by pinned flag), so two engines over the same physical layout hash
// identically regardless of the order dots were inserted. Charge vectors
// must be permuted through the same order when stored or restored (see
// packCharges/unpackCharges).
func SimKey(e *sim.Engine, solverName string) (Key, []int) {
	n := e.NumDots()
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		sa, sb := e.Sites[order[a]], e.Sites[order[b]]
		if sa.N != sb.N {
			return sa.N < sb.N
		}
		if sa.M != sb.M {
			return sa.M < sb.M
		}
		if sa.L != sb.L {
			return sa.L < sb.L
		}
		return !e.IsFixed(order[a]) && e.IsFixed(order[b])
	})
	h := newHasher()
	h.f64(e.Params.MuMinus)
	h.f64(e.Params.EpsR)
	h.f64(e.Params.LambdaTF)
	h.u64(uint64(n))
	for _, i := range order {
		s := e.Sites[i]
		h.i64(int64(s.N))
		h.i64(int64(s.M))
		h.i64(int64(s.L))
		h.boolByte(e.IsFixed(i))
	}
	h.str(solverName)
	hashSurface(h, e.Surface())
	return h.key("sim"), order
}

// hashSurface appends the defect surface's canonical serialization to the
// digest — only when non-empty, so every pristine key (and its golden
// vector) is byte-identical to the pre-defect encoding while a
// defect-bearing key can never collide with a pristine one: the pristine
// stream is a strict prefix and SHA-256 distinguishes lengths. The
// length prefix keeps distinct surfaces unambiguous.
func hashSurface(h *hasher, surf *defects.Surface) {
	if surf.Empty() {
		return
	}
	b := surf.AppendCanonical(nil)
	h.u64(uint64(len(b)))
	h.h.Write(b)
}

// hashXAGInto writes the logic content of an XAG — structure, node kinds,
// fan-in polarity, and PI/PO wiring — into the hasher. Node identifiers
// are remapped to topological positions and names are excluded, so the
// hash depends only on the Boolean function structure: the same netlist
// parsed twice (even from differently-named sources) hashes identically.
func hashXAGInto(h *hasher, x *network.XAG) {
	topo := x.TopoOrder()
	pos := make([]int, x.NumNodes())
	for p, n := range topo {
		pos[n] = p
	}
	remap := func(s network.Signal) uint64 {
		v := uint64(pos[s.Node()]) << 1
		if s.Neg() {
			v |= 1
		}
		return v
	}
	h.u64(uint64(x.NumNodes()))
	h.u64(uint64(x.NumPIs()))
	h.u64(uint64(x.NumPOs()))
	for i := 0; i < x.NumPIs(); i++ {
		h.u64(uint64(pos[x.PI(i).Node()]))
	}
	for _, n := range topo {
		kind := x.Kind(n)
		h.u64(uint64(kind))
		if kind == network.KindAnd || kind == network.KindXor {
			a, b := x.FanIns(n)
			h.u64(remap(a))
			h.u64(remap(b))
		}
	}
	for i := 0; i < x.NumPOs(); i++ {
		h.u64(remap(x.PO(i)))
	}
}

// HashXAG returns the content address of a logic network. Names (network,
// PI, PO) do not participate: only the Boolean structure does.
func HashXAG(x *network.XAG) Key {
	h := newHasher()
	hashXAGInto(h, x)
	return h.key("xag")
}

// FlowKey returns the content address of a whole flow run: the
// specification network plus every option that can change the produced
// artifacts, including whether the SiQAD file and the run report were
// requested. Callers must not use flow caching with a custom gate library
// or rewrite database (their content is not addressable); see
// FlowCache.Run, which bypasses the cache in that case.
func FlowKey(spec *network.XAG, opts core.Options, withSQD, withReport bool) Key {
	h := newHasher()
	hashXAGInto(h, spec)
	h.u64(uint64(opts.Engine))
	h.boolByte(opts.SkipRewrite)
	h.i64(int64(opts.Rewrite.CutSize))
	h.i64(int64(opts.Rewrite.CutsPerNode))
	h.i64(int64(opts.Rewrite.MaxIterations))
	h.i64(int64(opts.Exact.MaxArea))
	h.i64(int64(opts.Exact.MaxWidth))
	h.i64(int64(opts.Exact.MaxHeight))
	h.i64(opts.Exact.ConflictBudget)
	h.boolByte(opts.SkipCellLevel)
	h.boolByte(opts.CellSim)
	h.str(opts.GroundSolver)
	h.boolByte(withSQD)
	h.boolByte(withReport)
	hashSurface(h, opts.Surface)
	return h.key("flow")
}

// ValidationKey returns the content address of a standalone gate
// validation: the tile geometry, the expected truth table (evaluated over
// all input patterns, so the function is captured by value, not by name),
// the physical parameters, the solver choice, and the (tile-local) defect
// surface when present.
func ValidationKey(d *gatelib.Design, truth func(uint32) uint32, params sim.Params, solver string, surf *defects.Surface) Key {
	h := newHasher()
	hashPair := func(p gatelib.Pair) {
		h.i64(int64(p.X))
		h.i64(int64(p.Y))
		h.i64(int64(p.DX))
	}
	h.u64(uint64(len(d.Pairs)))
	for _, p := range d.Pairs {
		hashPair(p)
	}
	h.u64(uint64(len(d.Extra)))
	for _, s := range d.Extra {
		h.i64(int64(s.N))
		h.i64(int64(s.M))
		h.i64(int64(s.L))
	}
	h.u64(uint64(len(d.Perturbers)))
	for _, s := range d.Perturbers {
		h.i64(int64(s.N))
		h.i64(int64(s.M))
		h.i64(int64(s.L))
	}
	h.u64(uint64(len(d.Ins)))
	for _, p := range d.Ins {
		hashPair(p)
	}
	h.u64(uint64(len(d.Outs)))
	for _, p := range d.Outs {
		hashPair(p)
	}
	h.u64(uint64(len(d.OutEmu)))
	for _, s := range d.OutEmu {
		h.i64(int64(s.N))
		h.i64(int64(s.M))
		h.i64(int64(s.L))
	}
	patterns := 1 << len(d.Ins)
	for p := 0; p < patterns; p++ {
		h.u64(uint64(truth(uint32(p))))
	}
	h.f64(params.MuMinus)
	h.f64(params.EpsR)
	h.f64(params.LambdaTF)
	h.str(solver)
	hashSurface(h, surf)
	return h.key("gate")
}
