package cache

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
)

func mustPut(t *testing.T, d *Disk, key Key, val []byte) {
	t.Helper()
	if err := d.Put(context.Background(), key, val); err != nil {
		t.Fatalf("Put: %v", err)
	}
}

// entryFile locates the single .bin entry under the cache root.
func entryFile(t *testing.T, dir string) string {
	t.Helper()
	var found string
	err := filepath.WalkDir(dir, func(p string, de os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !de.IsDir() && strings.HasSuffix(p, ".bin") {
			found = p
		}
		return nil
	})
	if err != nil || found == "" {
		t.Fatalf("no .bin entry under %s (err=%v)", dir, err)
	}
	return found
}

func TestDiskRoundTrip(t *testing.T) {
	d, err := NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := Key("flow:deadbeefdeadbeefdeadbeefdeadbeefdeadbeefdeadbeefdeadbeefdeadbeef")
	val := []byte(`{"artifact":"sqd"}`)
	mustPut(t, d, key, val)
	got, ok, err := d.Get(context.Background(), key)
	if err != nil || !ok {
		t.Fatalf("Get = ok=%v err=%v, want hit", ok, err)
	}
	if !bytes.Equal(got, val) {
		t.Fatalf("Get = %q, want %q", got, val)
	}
}

// TestDiskTruncatedEntryIsCleanMiss is the regression test for the
// fsync-before-rename fix: an entry torn by a crash (simulated by
// truncating the file) must read as a clean miss — no error, no garbage
// payload — and be quarantined aside as *.corrupt.
func TestDiskTruncatedEntryIsCleanMiss(t *testing.T) {
	root := t.TempDir()
	d, err := NewDisk(root)
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.New()
	d.Instrument(tr, nil)
	key := Key("flow:abadcafeabadcafeabadcafeabadcafeabadcafeabadcafeabadcafeabadcafe")
	mustPut(t, d, key, bytes.Repeat([]byte("bestagon "), 64))

	p := entryFile(t, root)
	fi, err := os.Stat(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(p, fi.Size()/2); err != nil {
		t.Fatal(err)
	}

	got, ok, err := d.Get(context.Background(), key)
	if err != nil {
		t.Fatalf("truncated entry returned error %v, want clean miss", err)
	}
	if ok || got != nil {
		t.Fatalf("truncated entry returned hit (%d bytes), want clean miss", len(got))
	}
	if _, err := os.Stat(p + ".corrupt"); err != nil {
		t.Fatalf("quarantine file missing: %v", err)
	}
	if _, err := os.Stat(p); !os.IsNotExist(err) {
		t.Fatalf("damaged entry still present after quarantine (err=%v)", err)
	}
	if v := tr.Counter("cache/disk/corrupt_total").Value(); v != 1 {
		t.Fatalf("cache/disk/corrupt_total = %d, want 1", v)
	}

	// The slot must be writable again: a fresh Put re-fills it.
	mustPut(t, d, key, []byte("fresh"))
	got, ok, err = d.Get(context.Background(), key)
	if err != nil || !ok || string(got) != "fresh" {
		t.Fatalf("re-filled slot Get = %q ok=%v err=%v", got, ok, err)
	}
}

// TestDiskBitRotQuarantined flips one payload byte in place; the checksum
// must catch it and the entry must read as a miss, never as the altered
// payload.
func TestDiskBitRotQuarantined(t *testing.T) {
	root := t.TempDir()
	d, err := NewDisk(root)
	if err != nil {
		t.Fatal(err)
	}
	key := Key("flow:0123456701234567012345670123456701234567012345670123456701234567")
	mustPut(t, d, key, []byte("pristine payload bytes"))

	p := entryFile(t, root)
	b, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-1] ^= 0x01
	if err := os.WriteFile(p, b, 0o644); err != nil {
		t.Fatal(err)
	}

	got, ok, err := d.Get(context.Background(), key)
	if err != nil || ok {
		t.Fatalf("bit-rotted entry Get = %q ok=%v err=%v, want clean miss", got, ok, err)
	}
	if _, err := os.Stat(p + ".corrupt"); err != nil {
		t.Fatalf("quarantine file missing: %v", err)
	}
}

// TestDiskMissingIsCleanMiss: an absent entry is a miss, not an error.
func TestDiskMissingIsCleanMiss(t *testing.T) {
	d, err := NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	got, ok, err := d.Get(context.Background(), Key("flow:ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff"))
	if err != nil || ok || got != nil {
		t.Fatalf("missing entry Get = %q ok=%v err=%v, want clean miss", got, ok, err)
	}
}
