package cache

import (
	"context"
	"encoding/json"
	"fmt"

	"repro/internal/core"
	"repro/internal/logic/network"
	"repro/internal/obs"
)

// FlowArtifact is the serializable outcome of a flow run — the subset of
// core.Result a service client can use, including the optional SiQAD
// design file and run report. It is what the flow cache stores, so a warm
// request replays the cold run's artifacts byte for byte.
type FlowArtifact struct {
	Name       string              `json:"name"`
	EngineUsed string              `json:"engine_used"`
	Width      int                 `json:"width"`
	Height     int                 `json:"height"`
	Gates      int                 `json:"gates"`
	SiDBs      int                 `json:"sidbs"`
	AreaNM2    float64             `json:"area_nm2"`
	CellSim    *core.CellSimResult `json:"cellsim,omitempty"`
	SQD        string              `json:"sqd,omitempty"`
	Report     json.RawMessage     `json:"report,omitempty"`
	// Degraded reports that deadline pressure forced a cheaper engine
	// somewhere in the run (exact→ortho P&R, exact→anneal simulation).
	// Degraded artifacts are never cached: a retry with more budget gets
	// the full-quality result.
	Degraded bool `json:"degraded,omitempty"`
}

// FlowCache memoizes whole flow runs: an in-memory LRU in front of an
// optional disk layer. Disk entries survive daemon restarts, so a warm
// fleet can be primed from a shared artifact directory.
type FlowCache struct {
	Mem *LRU
	// Disk is nil when the persistent layer is disabled; the service
	// installs a ResilientDisk here so transient I/O errors are retried
	// and repeated failures degrade to memory-only caching.
	Disk DiskLayer
	// Peer is nil outside a fleet; when set, a local miss consults the
	// key's owner replica before solving, and cold results are pushed to
	// the owner. The service wraps it in the same Resilient breaker as
	// the disk, so a flapping peer degrades to local-only caching.
	Peer Layer
}

// Source values reported by Run.
const (
	SourceMem    = "mem"
	SourceDisk   = "disk"
	SourcePeer   = "peer"
	SourceMiss   = "miss"
	SourceBypass = "bypass"
)

// Run executes (or replays) a flow. The source return tells where the
// artifact came from: SourceMem, SourceDisk, SourceMiss (cold run, now
// cached), or SourceBypass (cold run, not cacheable). Caching is bypassed
// when the options carry non-addressable content — a custom gate library
// or rewrite database — and failures are never cached, so a transient
// cancellation does not poison later requests.
//
// When withReport is set and no tracer is supplied in opts, Run attaches
// its own per-run tracer so the stored artifact carries the cold run's
// stage report; warm requests replay that report unchanged.
func (fc *FlowCache) Run(ctx context.Context, spec *network.XAG, opts core.Options, withSQD, withReport bool) (*FlowArtifact, string, error) {
	bypass := opts.Library != nil || opts.Rewrite.DB != nil
	var key Key
	if !bypass {
		key = FlowKey(spec, opts, withSQD, withReport)
		if b, ok := fc.Mem.Get(key); ok {
			if art, err := decodeArtifact(b); err == nil {
				return art, SourceMem, nil
			}
		}
		if fc.Disk != nil {
			// Disk errors are non-fatal: the resilient layer has already
			// retried, so a failure here falls through to a cold run.
			if b, ok, err := fc.Disk.Get(ctx, key); err == nil && ok {
				if art, err := decodeArtifact(b); err == nil {
					fc.Mem.Put(key, b)
					return art, SourceDisk, nil
				}
			}
		}
		if fc.Peer != nil {
			// Peer errors fall through to a cold run, same as disk errors.
			if b, ok, err := fc.Peer.Get(ctx, key); err == nil && ok {
				if art, err := decodeArtifact(b); err == nil {
					fc.Mem.Put(key, b)
					if fc.Disk != nil {
						_ = fc.Disk.Put(ctx, key, b)
					}
					return art, SourcePeer, nil
				}
			}
		}
	}

	art, err := RunFlow(ctx, spec, opts, withSQD, withReport)
	if err != nil {
		return nil, SourceMiss, err
	}
	if bypass {
		return art, SourceBypass, nil
	}
	if art.Degraded {
		// A degraded artifact reflects this request's deadline, not the
		// problem content; caching it would serve reduced-quality results
		// to well-budgeted future requests.
		return art, SourceBypass, nil
	}
	b, err := json.Marshal(art)
	if err != nil {
		return art, SourceMiss, nil
	}
	fc.Mem.Put(key, b)
	if fc.Disk != nil {
		// Persistent layer failures degrade to memory-only caching.
		_ = fc.Disk.Put(ctx, key, b)
	}
	if fc.Peer != nil {
		// Push the cold result to the key's owner so the whole fleet warms
		// from one solve. Degraded artifacts never reach this point.
		_ = fc.Peer.Put(ctx, key, b)
	}
	return art, SourceMiss, nil
}

// RunFlow executes a cold flow run and packages the requested artifacts.
// When withReport is set and no tracer is supplied in opts, a per-run
// tracer is attached so the artifact carries the run's stage report.
func RunFlow(ctx context.Context, spec *network.XAG, opts core.Options, withSQD, withReport bool) (*FlowArtifact, error) {
	if withReport && opts.Tracer == nil {
		opts.Tracer = obs.New()
	}
	res, err := core.RunContext(ctx, spec, opts)
	if err != nil {
		return nil, err
	}
	art := &FlowArtifact{
		Name:       spec.Name,
		EngineUsed: res.EngineUsed,
		Width:      res.Layout.Width(),
		Height:     res.Layout.Height(),
		Gates:      res.Rewritten.NumGates(),
		SiDBs:      res.SiDBs,
		AreaNM2:    res.AreaNM2,
		CellSim:    res.CellSim,
		Degraded:   res.Degraded,
	}
	if withSQD {
		s, err := res.ExportSQD()
		if err != nil {
			return nil, err
		}
		art.SQD = s
	}
	if withReport {
		if rep, err := opts.Tracer.Report(spec.Name).JSON(); err == nil {
			art.Report = rep
		}
	}
	return art, nil
}

func decodeArtifact(b []byte) (*FlowArtifact, error) {
	var art FlowArtifact
	if err := json.Unmarshal(b, &art); err != nil {
		return nil, fmt.Errorf("cache: flow artifact: %w", err)
	}
	return &art, nil
}
