package cache

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/faults"
)

// Disk is an optional persistent layer for flow-level artifacts. Entries
// are plain files addressed by key, fanned out over 256 two-hex-digit
// subdirectories; writes go through a temp file plus rename so readers
// never observe a partial entry. Disk never evicts — operators bound it by
// pointing -cache-dir at a managed directory.
type Disk struct {
	dir string
}

// NewDisk opens (creating if needed) a disk cache rooted at dir.
func NewDisk(dir string) (*Disk, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cache: disk: %w", err)
	}
	return &Disk{dir: dir}, nil
}

// path maps a key to its file. The key's domain tag becomes part of the
// filename; the hex digest provides the fan-out prefix.
func (d *Disk) path(key Key) string {
	name := strings.ReplaceAll(string(key), ":", "_")
	hexPart := name
	if i := strings.LastIndexByte(name, '_'); i >= 0 && len(name) > i+2 {
		hexPart = name[i+1:]
	}
	return filepath.Join(d.dir, hexPart[:2], name+".bin")
}

// Get reads the entry for key. A clean miss is (nil, false, nil); an I/O
// failure is reported as an error so the resilient layer above can retry
// it and trip its breaker (a missing entry is not a failure).
func (d *Disk) Get(_ context.Context, key Key) ([]byte, bool, error) {
	if err := faults.Fail("cache.disk.read"); err != nil {
		return nil, false, err
	}
	b, err := os.ReadFile(d.path(key))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, false, nil
		}
		return nil, false, fmt.Errorf("cache: disk get: %w", err)
	}
	return b, true, nil
}

// Put writes the entry atomically (temp file + rename). Errors are
// returned for the caller to log; a failed Put never corrupts the store.
func (d *Disk) Put(_ context.Context, key Key, val []byte) error {
	if err := faults.Fail("cache.disk.write"); err != nil {
		return err
	}
	p := d.path(key)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return fmt.Errorf("cache: disk put: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(p), ".tmp-*")
	if err != nil {
		return fmt.Errorf("cache: disk put: %w", err)
	}
	if _, err := tmp.Write(val); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("cache: disk put: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("cache: disk put: %w", err)
	}
	if err := os.Rename(tmp.Name(), p); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("cache: disk put: %w", err)
	}
	return nil
}
