package cache

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/faults"
	"repro/internal/journal"
	"repro/internal/obs"
	"repro/internal/obs/obslog"
)

// Disk is an optional persistent layer for flow-level artifacts. Entries
// are plain files addressed by key, fanned out over 256 two-hex-digit
// subdirectories. Durability discipline:
//
//   - Put writes a temp file, fsyncs it, renames it into place, and
//     fsyncs the parent directory — a crash at any point leaves either
//     the old entry or the new one, never a torn file behind the rename.
//   - Every entry is framed with the journal package's checksummed record
//     header (magic + length + CRC-32C), and Get verifies it: a corrupt or
//     truncated entry is quarantined to <entry>.corrupt and reported as a
//     clean miss (cache_disk_corrupt_total counts them), so storage rot
//     costs one re-solve instead of serving garbage.
//
// Disk never evicts — operators bound it by pointing -cache-dir at a
// managed directory.
type Disk struct {
	dir string
	// tr receives the corruption counter (nil-safe; see Instrument).
	tr  *obs.Tracer
	log *obslog.Logger
}

// NewDisk opens (creating if needed) a disk cache rooted at dir.
func NewDisk(dir string) (*Disk, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cache: disk: %w", err)
	}
	return &Disk{dir: dir}, nil
}

// Instrument attaches the tracer and logger that receive corruption
// counts and quarantine logs (both nil-safe). Call before first use.
func (d *Disk) Instrument(tr *obs.Tracer, log *obslog.Logger) {
	d.tr = tr
	d.log = log
}

// path maps a key to its file. The key's domain tag becomes part of the
// filename; the hex digest provides the fan-out prefix.
func (d *Disk) path(key Key) string {
	name := strings.ReplaceAll(string(key), ":", "_")
	hexPart := name
	if i := strings.LastIndexByte(name, '_'); i >= 0 && len(name) > i+2 {
		hexPart = name[i+1:]
	}
	return filepath.Join(d.dir, hexPart[:2], name+".bin")
}

// Get reads and verifies the entry for key. A clean miss is
// (nil, false, nil); an I/O failure is reported as an error so the
// resilient layer above can retry it and trip its breaker. An entry that
// fails verification — torn by a crash predating the fsync discipline,
// truncated by a full disk, or bit-rotted — is quarantined and reported
// as a clean miss: corruption is a cache-content problem, not a
// cache-device problem, so it must cost a re-solve, not a breaker trip.
func (d *Disk) Get(_ context.Context, key Key) ([]byte, bool, error) {
	if err := faults.Fail("cache.disk.read"); err != nil {
		return nil, false, err
	}
	p := d.path(key)
	b, err := os.ReadFile(p)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, false, nil
		}
		return nil, false, fmt.Errorf("cache: disk get: %w", err)
	}
	payload, err := journal.Unseal(b)
	if err != nil {
		d.quarantine(p, err)
		return nil, false, nil
	}
	return payload, true, nil
}

// quarantine moves a damaged entry aside as <entry>.corrupt (best effort;
// a rename failure falls back to removal) so the slot reads as a miss and
// the evidence survives for postmortems.
func (d *Disk) quarantine(p string, cause error) {
	d.tr.Counter("cache/disk/corrupt_total").Inc()
	if err := os.Rename(p, p+".corrupt"); err != nil {
		os.Remove(p)
	}
	d.log.Warn("cache_disk_entry_quarantined",
		obslog.F("entry", filepath.Base(p)),
		obslog.F("error", cause.Error()))
}

// Put writes the entry durably: checksummed framing, temp file, fsync,
// rename, directory fsync. Errors are returned for the caller to log; a
// failed Put never corrupts the store, and a crash mid-Put never leaves a
// zero-length or torn entry visible behind the rename.
func (d *Disk) Put(_ context.Context, key Key, val []byte) error {
	if err := faults.Fail("cache.disk.write"); err != nil {
		return err
	}
	p := d.path(key)
	dir := filepath.Dir(p)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("cache: disk put: %w", err)
	}
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("cache: disk put: %w", err)
	}
	if _, err := tmp.Write(journal.Seal(val)); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("cache: disk put: %w", err)
	}
	// fsync BEFORE the rename: rename is atomic in the namespace but says
	// nothing about data blocks — without this, a crash shortly after Put
	// can leave a correctly-named file with zero or partial content.
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("cache: disk put: sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("cache: disk put: %w", err)
	}
	if err := os.Rename(tmp.Name(), p); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("cache: disk put: %w", err)
	}
	// fsync the parent directory so the rename itself is durable.
	if err := syncDir(dir); err != nil {
		return fmt.Errorf("cache: disk put: %w", err)
	}
	return nil
}

// syncDir fsyncs a directory, making entry renames durable.
func syncDir(dir string) error {
	f, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer f.Close()
	return f.Sync()
}
