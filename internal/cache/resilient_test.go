package cache

import (
	"context"
	"errors"
	"testing"
	"time"
)

// fakeDisk is a scriptable DiskLayer: it fails while failing is set and
// otherwise stores entries in a map.
type fakeDisk struct {
	failing bool
	gets    int
	puts    int
	data    map[Key][]byte
}

var errFakeIO = errors.New("fake I/O failure")

func newFakeDisk() *fakeDisk { return &fakeDisk{data: map[Key][]byte{}} }

func (f *fakeDisk) Get(_ context.Context, key Key) ([]byte, bool, error) {
	f.gets++
	if f.failing {
		return nil, false, errFakeIO
	}
	b, ok := f.data[key]
	return b, ok, nil
}

func (f *fakeDisk) Put(_ context.Context, key Key, val []byte) error {
	f.puts++
	if f.failing {
		return errFakeIO
	}
	f.data[key] = val
	return nil
}

// newTestResilient wires a ResilientDisk with instant sleeps and a
// controllable clock.
func newTestResilient(inner DiskLayer, opts ResilientOptions) (*ResilientDisk, *time.Time) {
	r := NewResilientDisk(inner, opts)
	now := time.Unix(1000, 0)
	r.now = func() time.Time { return now }
	r.sleep = func(time.Duration) {}
	return r, &now
}

func TestResilientRetriesTransientFailure(t *testing.T) {
	f := newFakeDisk()
	attempts := 0
	flaky := &flakyDisk{inner: f, failFirst: 2, attempts: &attempts}
	r, _ := newTestResilient(flaky, ResilientOptions{MaxRetries: 3})
	if err := r.Put(context.Background(), Key("k"), []byte("v")); err != nil {
		t.Fatalf("Put should have succeeded after retries: %v", err)
	}
	if attempts != 3 {
		t.Fatalf("attempts = %d, want 3 (two failures + success)", attempts)
	}
	if b, ok, err := r.Get(context.Background(), Key("k")); err != nil || !ok || string(b) != "v" {
		t.Fatalf("Get = %q, %v, %v", b, ok, err)
	}
	if r.State() != BreakerClosed {
		t.Fatalf("breaker = %v after recovered retries, want closed", r.State())
	}
}

// flakyDisk fails the first failFirst operations, then delegates.
type flakyDisk struct {
	inner     DiskLayer
	failFirst int
	attempts  *int
}

func (f *flakyDisk) Get(ctx context.Context, key Key) ([]byte, bool, error) {
	*f.attempts++
	if *f.attempts <= f.failFirst {
		return nil, false, errFakeIO
	}
	return f.inner.Get(ctx, key)
}

func (f *flakyDisk) Put(ctx context.Context, key Key, val []byte) error {
	*f.attempts++
	if *f.attempts <= f.failFirst {
		return errFakeIO
	}
	return f.inner.Put(ctx, key, val)
}

func TestBreakerTripHalfOpenClose(t *testing.T) {
	f := newFakeDisk()
	f.failing = true
	r, now := newTestResilient(f, ResilientOptions{
		MaxRetries:    -1, // no retries: each op is one breaker strike
		FailThreshold: 3,
		Cooldown:      10 * time.Second,
	})

	// Three consecutive failures trip the breaker open.
	for i := 0; i < 3; i++ {
		if err := r.Put(context.Background(), Key("k"), []byte("v")); err == nil {
			t.Fatal("Put should fail while the disk is failing")
		}
	}
	if r.State() != BreakerOpen {
		t.Fatalf("breaker = %v after %d failures, want open", r.State(), 3)
	}

	// Open: operations short-circuit without touching the disk. A Get is a
	// silent miss, a Put a silent drop.
	before := f.puts + f.gets
	if _, ok, err := r.Get(context.Background(), Key("k")); ok || err != nil {
		t.Fatalf("open-breaker Get = %v, %v; want silent miss", ok, err)
	}
	if err := r.Put(context.Background(), Key("k"), []byte("v")); err != nil {
		t.Fatalf("open-breaker Put = %v; want silent drop", err)
	}
	if f.puts+f.gets != before {
		t.Fatal("open breaker still reached the disk")
	}

	// Cooldown elapses; the next operation is a half-open probe. The disk
	// is still failing, so the probe re-opens the breaker.
	*now = now.Add(11 * time.Second)
	if err := r.Put(context.Background(), Key("k"), []byte("v")); err == nil {
		t.Fatal("probe should have failed")
	}
	if r.State() != BreakerOpen {
		t.Fatalf("breaker = %v after failed probe, want open again", r.State())
	}

	// Second cooldown; disk recovered; the probe closes the breaker.
	f.failing = false
	*now = now.Add(11 * time.Second)
	if err := r.Put(context.Background(), Key("k"), []byte("v")); err != nil {
		t.Fatalf("recovered probe failed: %v", err)
	}
	if r.State() != BreakerClosed {
		t.Fatalf("breaker = %v after successful probe, want closed", r.State())
	}
	if b, ok, err := r.Get(context.Background(), Key("k")); err != nil || !ok || string(b) != "v" {
		t.Fatalf("Get after recovery = %q, %v, %v", b, ok, err)
	}
}

func TestBreakerHalfOpenAllowsSingleProbe(t *testing.T) {
	f := newFakeDisk()
	f.failing = true
	r, now := newTestResilient(f, ResilientOptions{
		MaxRetries:    -1,
		FailThreshold: 1,
		Cooldown:      time.Second,
	})
	_ = r.Put(context.Background(), Key("k"), []byte("v"))
	if r.State() != BreakerOpen {
		t.Fatalf("breaker = %v, want open", r.State())
	}
	*now = now.Add(2 * time.Second)
	if !r.allow() { // first caller becomes the probe
		t.Fatal("first post-cooldown caller should be allowed through")
	}
	if r.allow() { // concurrent second caller must be short-circuited
		t.Fatal("second caller during an in-flight probe should be blocked")
	}
	r.onResult(false)
	if r.State() != BreakerClosed {
		t.Fatalf("breaker = %v after probe success, want closed", r.State())
	}
}

func TestBackoffGrowsExponentially(t *testing.T) {
	r, _ := newTestResilient(newFakeDisk(), ResilientOptions{RetryBase: 2 * time.Millisecond})
	for n := 0; n < 4; n++ {
		d := r.backoff(n)
		base := 2 * time.Millisecond << uint(n)
		if d < base || d > base+base/2 {
			t.Fatalf("backoff(%d) = %v, want in [%v, %v]", n, d, base, base+base/2)
		}
	}
}
