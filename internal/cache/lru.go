// Package cache provides content-addressed result caching for the
// Bestagon design service: deterministic canonical hashing of simulation,
// validation, and whole-flow inputs (hash.go), a sharded byte-bounded
// in-memory LRU (this file), an optional disk layer for flow-level
// artifacts (disk.go), and memoization wrappers for the sim ground-state
// solvers, gatelib validation, and core flow runs.
//
// Keys are content addresses: two requests hash to the same key iff their
// canonical encodings are identical, independent of insertion order, map
// iteration, or process identity. Values are opaque byte slices; the
// canonical serialization both gives exact byte accounting and guarantees
// byte-identical responses on repeat requests.
package cache

import (
	"container/list"
	"hash/maphash"

	"sync"

	"repro/internal/obs"
)

// Key is a content address: a short domain tag plus the hex SHA-256 of the
// canonical input encoding.
type Key string

// entryOverhead approximates the fixed per-entry bookkeeping cost (list
// element, map slot, headers) charged against the byte budget.
const entryOverhead = 128

// numShards is the fixed shard count of the LRU. Sixteen shards keep lock
// contention negligible for dozens of concurrent workers while the
// per-shard byte budgets stay coarse enough to be meaningful.
const numShards = 16

// Stats is a point-in-time snapshot of cache effectiveness.
type Stats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Puts      int64 `json:"puts"`
	Evictions int64 `json:"evictions"`
	Entries   int64 `json:"entries"`
	Bytes     int64 `json:"bytes"`
	MaxBytes  int64 `json:"max_bytes"`
}

// HitRate returns hits/(hits+misses), or 0 before any lookup.
func (s Stats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// LRU is a sharded, byte-bounded, least-recently-used result store. It is
// safe for concurrent use by many goroutines; each key maps to one shard,
// so unrelated lookups never contend on a lock.
type LRU struct {
	shards   [numShards]lruShard
	maxBytes int64
	seed     maphash.Seed

	hits, misses, puts, evictions obs.Counter

	// Optional tracer mirrors (nil-safe no-ops when not instrumented).
	trHits, trMisses, trEvictions *obs.Counter
	trBytes, trEntries            *obs.Gauge
}

type lruShard struct {
	mu    sync.Mutex
	ll    *list.List // front = most recently used
	idx   map[Key]*list.Element
	bytes int64
}

type lruEntry struct {
	key Key
	val []byte
}

// NewLRU builds an LRU bounded to roughly maxBytes of stored values (keys
// and fixed overhead included). A non-positive bound defaults to 64 MiB.
func NewLRU(maxBytes int64) *LRU {
	if maxBytes <= 0 {
		maxBytes = 64 << 20
	}
	c := &LRU{maxBytes: maxBytes, seed: maphash.MakeSeed()}
	for i := range c.shards {
		c.shards[i].ll = list.New()
		c.shards[i].idx = make(map[Key]*list.Element)
	}
	return c
}

// Instrument mirrors the cache's hit/miss/eviction counters and size
// gauges onto the tracer under the given metric-name prefix (for example
// "cache/mem"). Safe to call once before concurrent use.
func (c *LRU) Instrument(tr *obs.Tracer, prefix string) {
	c.trHits = tr.Counter(prefix + "/hits")
	c.trMisses = tr.Counter(prefix + "/misses")
	c.trEvictions = tr.Counter(prefix + "/evictions")
	c.trBytes = tr.Gauge(prefix + "/bytes")
	c.trEntries = tr.Gauge(prefix + "/entries")
}

func (c *LRU) shardFor(key Key) *lruShard {
	return &c.shards[maphash.String(c.seed, string(key))%numShards]
}

// Get returns the cached value for the key. The returned slice is shared —
// callers must treat it as read-only.
func (c *LRU) Get(key Key) ([]byte, bool) {
	s := c.shardFor(key)
	s.mu.Lock()
	el, ok := s.idx[key]
	var val []byte
	if ok {
		s.ll.MoveToFront(el)
		val = el.Value.(*lruEntry).val
	}
	s.mu.Unlock()
	if !ok {
		c.misses.Inc()
		c.trMisses.Inc()
		return nil, false
	}
	c.hits.Inc()
	c.trHits.Inc()
	return val, true
}

// Contains reports whether key is present without promoting the entry or
// touching the hit/miss counters — used by cluster routing to decide
// whether a request can be served warm locally.
func (c *LRU) Contains(key Key) bool {
	s := c.shardFor(key)
	s.mu.Lock()
	_, ok := s.idx[key]
	s.mu.Unlock()
	return ok
}

// Peek returns the cached value without promoting the entry or touching
// the hit/miss counters — used by the peer-cache endpoint so cross-replica
// fetches don't distort local hit-rate telemetry.
func (c *LRU) Peek(key Key) ([]byte, bool) {
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.idx[key]; ok {
		return el.Value.(*lruEntry).val, true
	}
	return nil, false
}

// Put stores a copy of val under key, evicting least-recently-used entries
// of the same shard until the shard fits its byte budget. Values larger
// than a whole shard's budget are not stored.
func (c *LRU) Put(key Key, val []byte) {
	cost := int64(len(key)) + int64(len(val)) + entryOverhead
	budget := c.maxBytes / numShards
	if cost > budget {
		return
	}
	stored := append([]byte(nil), val...)
	s := c.shardFor(key)
	var evicted int64
	s.mu.Lock()
	if el, ok := s.idx[key]; ok {
		ent := el.Value.(*lruEntry)
		s.bytes += int64(len(stored)) - int64(len(ent.val))
		ent.val = stored
		s.ll.MoveToFront(el)
	} else {
		s.idx[key] = s.ll.PushFront(&lruEntry{key: key, val: stored})
		s.bytes += cost
	}
	for s.bytes > budget {
		back := s.ll.Back()
		if back == nil {
			break
		}
		ent := back.Value.(*lruEntry)
		s.ll.Remove(back)
		delete(s.idx, ent.key)
		s.bytes -= int64(len(ent.key)) + int64(len(ent.val)) + entryOverhead
		evicted++
	}
	s.mu.Unlock()
	c.puts.Inc()
	if evicted > 0 {
		c.evictions.Add(evicted)
		c.trEvictions.Add(evicted)
	}
	c.publishSize()
}

// Len returns the number of cached entries.
func (c *LRU) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.idx)
		s.mu.Unlock()
	}
	return n
}

// Stats snapshots the cache counters and current size.
func (c *LRU) Stats() Stats {
	st := Stats{
		Hits:      c.hits.Value(),
		Misses:    c.misses.Value(),
		Puts:      c.puts.Value(),
		Evictions: c.evictions.Value(),
		MaxBytes:  c.maxBytes,
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Entries += int64(len(s.idx))
		st.Bytes += s.bytes
		s.mu.Unlock()
	}
	return st
}

// publishSize refreshes the instrumented size gauges (cheap when not
// instrumented: nil gauges are no-ops).
func (c *LRU) publishSize() {
	if c.trBytes == nil && c.trEntries == nil {
		return
	}
	var bytes, entries int64
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		bytes += s.bytes
		entries += int64(len(s.idx))
		s.mu.Unlock()
	}
	c.trBytes.Set(float64(bytes))
	c.trEntries.Set(float64(entries))
}
