package cache

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/gatelib"
	"repro/internal/lattice"
	"repro/internal/logic/bench"
	"repro/internal/sidb"
	"repro/internal/sim"
)

const xorSrc = `# c17-like toy
INPUT(a)
INPUT(b)
OUTPUT(y)
y = XOR(a, b)
`

// TestHashXAGSameNetlistParsedTwice: the determinism contract of the
// content address — parsing the identical netlist source twice (under
// different names) must produce identical keys.
func TestHashXAGSameNetlistParsedTwice(t *testing.T) {
	a, err := bench.ParseBench("first", xorSrc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := bench.ParseBench("second", xorSrc)
	if err != nil {
		t.Fatal(err)
	}
	ka, kb := HashXAG(a), HashXAG(b)
	if ka != kb {
		t.Fatalf("same netlist hashed differently:\n  %s\n  %s", ka, kb)
	}

	c, err := bench.Load("xor2")
	if err != nil {
		t.Fatal(err)
	}
	d, err := bench.Load("majority")
	if err != nil {
		t.Fatal(err)
	}
	if HashXAG(c) == HashXAG(d) {
		t.Fatal("different netlists collided")
	}
}

// TestHashXAGGolden pins the hash against a constant computed in another
// process: cross-process (and cross-run) determinism. If this fails after
// an intentional encoding change, every cached artifact is invalidated —
// update the constant deliberately.
func TestHashXAGGolden(t *testing.T) {
	x, err := bench.ParseBench("golden", xorSrc)
	if err != nil {
		t.Fatal(err)
	}
	const want = Key("xag:b6978a77db54e0ac0e4383a7c2a63528c0e0f4e0bf893d021954bc2f6c6500f1")
	if got := HashXAG(x); got != want {
		t.Fatalf("golden hash changed:\n  got  %s\n  want %s", got, want)
	}
}

// twoLayouts builds the same 4-dot layout with two different dot insertion
// orders (the second also permutes which dots are perturbers last).
func twoLayouts() (*sidb.Layout, *sidb.Layout, []int) {
	sites := []lattice.Site{
		lattice.FromCell(0, 0),
		lattice.FromCell(3, 0),
		lattice.FromCell(0, 4),
		lattice.FromCell(3, 4),
	}
	roles := []sidb.Role{sidb.RoleNormal, sidb.RolePerturber, sidb.RoleNormal, sidb.RolePerturber}
	perm := []int{2, 0, 3, 1}
	a := &sidb.Layout{Name: "a"}
	for i := range sites {
		a.Add(sites[i], roles[i])
	}
	b := &sidb.Layout{Name: "b"}
	for _, i := range perm {
		b.Add(sites[i], roles[i])
	}
	return a, b, perm
}

// TestSimKeyPermutationInvariance: layouts with identical dots but
// permuted insertion order must share a content address, and the canonical
// order must map charge vectors correctly between them.
func TestSimKeyPermutationInvariance(t *testing.T) {
	la, lb, perm := twoLayouts()
	ea := sim.NewEngine(la, sim.ParamsFig5)
	eb := sim.NewEngine(lb, sim.ParamsFig5)
	ka, orderA := SimKey(ea, "exgs")
	kb, orderB := SimKey(eb, "exgs")
	if ka != kb {
		t.Fatalf("permuted layouts hashed differently:\n  %s\n  %s", ka, kb)
	}
	// Canonical position k refers to the same physical site in both.
	for k := range orderA {
		sa := ea.Sites[orderA[k]]
		sb := eb.Sites[orderB[k]]
		if sa != sb {
			t.Fatalf("canonical position %d: site %v vs %v", k, sa, sb)
		}
	}
	if kDiff, _ := SimKey(ea, "anneal"); kDiff == ka {
		t.Fatal("solver name not part of the key")
	}
	ec := sim.NewEngine(la, sim.ParamsFig1c)
	if kc, _ := SimKey(ec, "exgs"); kc == ka {
		t.Fatal("physical parameters not part of the key")
	}
	_ = perm
}

// TestCachedSolverRemapsCharges: a result computed for one insertion order
// and served warm to the other must index charges by the consumer's dot
// order and match a direct solve bit for bit.
func TestCachedSolverRemapsCharges(t *testing.T) {
	la, lb, perm := twoLayouts()
	ea := sim.NewEngine(la, sim.ParamsFig5)
	eb := sim.NewEngine(lb, sim.ParamsFig5)

	inner, err := sim.Lookup("exgs")
	if err != nil {
		t.Fatal(err)
	}
	cs := &CachedSolver{Inner: inner, Cache: NewLRU(1 << 20)}

	cold, err := cs.Solve(ea, sim.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := cs.Solve(eb, sim.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	st := cs.Cache.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("expected 1 hit + 1 miss, got %+v", st)
	}
	if warm.EnergyEV != cold.EnergyEV {
		t.Fatalf("warm energy %v != cold energy %v", warm.EnergyEV, cold.EnergyEV)
	}
	// Layout b's dot j is layout a's dot perm[j].
	for j := range warm.Charges {
		if warm.Charges[j] != cold.Charges[perm[j]] {
			t.Fatalf("charge remap wrong at dot %d: warm %v, cold[perm] %v",
				j, warm.Charges[j], cold.Charges[perm[j]])
		}
	}
	direct, err := inner.Solve(eb, sim.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if direct.EnergyEV != warm.EnergyEV {
		t.Fatalf("warm energy %v != direct energy %v", warm.EnergyEV, direct.EnergyEV)
	}
}

// TestCachedValidate memoizes a full standalone gate validation.
func TestCachedValidate(t *testing.T) {
	lib := gatelib.NewLibrary()
	keys := lib.Variants()
	if len(keys) == 0 {
		t.Fatal("empty library")
	}
	d, f, ok := lib.Design(keys[0])
	if !ok {
		t.Fatalf("Design(%q) not found", keys[0])
	}
	lru := NewLRU(1 << 20)
	truth := gatelib.TruthOf(f)
	v1, hit1, err := CachedValidate(context.Background(), lru, nil, d, truth, sim.ParamsFig5, gatelib.ValidateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if hit1 {
		t.Fatal("first validation reported a cache hit")
	}
	v2, hit2, err := CachedValidate(context.Background(), lru, nil, d, truth, sim.ParamsFig5, gatelib.ValidateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !hit2 {
		t.Fatal("second validation missed the cache")
	}
	if v1.OK != v2.OK || v1.MinGapEV != v2.MinGapEV || len(v1.Outputs) != len(v2.Outputs) {
		t.Fatalf("cached validation differs: %+v vs %+v", v1, v2)
	}
}

// TestLRUBounds: the byte budget is enforced by eviction and oversize
// values are rejected outright.
func TestLRUBounds(t *testing.T) {
	c := NewLRU(numShards * 1024) // 1 KiB per shard
	val := make([]byte, 512)
	for i := 0; i < 200; i++ {
		c.Put(Key(fmt.Sprintf("k:%04d", i)), val)
	}
	st := c.Stats()
	if st.Bytes > st.MaxBytes {
		t.Fatalf("cache over budget: %d > %d", st.Bytes, st.MaxBytes)
	}
	if st.Evictions == 0 {
		t.Fatal("expected evictions under a tight budget")
	}
	c.Put(Key("huge"), make([]byte, 4096))
	if _, ok := c.Get(Key("huge")); ok {
		t.Fatal("oversize value was stored")
	}
}

// TestLRUConcurrent hammers the sharded LRU from many goroutines; run
// under -race it is the data-race regression test for the cache.
func TestLRUConcurrent(t *testing.T) {
	c := NewLRU(1 << 20)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 2000; i++ {
				k := Key(fmt.Sprintf("k:%03d", rng.Intn(256)))
				if rng.Intn(2) == 0 {
					val := make([]byte, 16+rng.Intn(64))
					val[0] = byte(seed)
					c.Put(k, val)
				} else if v, ok := c.Get(k); ok {
					_ = v[0] // read the shared slice
				}
			}
		}(int64(g))
	}
	wg.Wait()
	st := c.Stats()
	if st.Puts == 0 || st.Hits+st.Misses == 0 {
		t.Fatalf("hammer did no work: %+v", st)
	}
}
