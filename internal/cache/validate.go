package cache

import (
	"encoding/json"

	"repro/internal/gatelib"
	"repro/internal/sim"
)

// CachedValidate memoizes standalone gate validation through the LRU. The
// second return reports whether the result came from the cache. Only
// successful validations are stored (a failed solver lookup is returned
// uncached), and the cached value is the full Validation including the
// per-pattern outputs and the minimum energy gap.
func CachedValidate(lru *LRU, d *gatelib.Design, truth func(uint32) uint32, params sim.Params, opts gatelib.ValidateOptions) (gatelib.Validation, bool, error) {
	key := ValidationKey(d, truth, params, opts.Solver)
	if b, ok := lru.Get(key); ok {
		var v gatelib.Validation
		if err := json.Unmarshal(b, &v); err == nil {
			return v, true, nil
		}
	}
	v, err := gatelib.ValidateWith(d, truth, params, opts)
	if err != nil {
		return v, false, err
	}
	if b, err := json.Marshal(v); err == nil {
		lru.Put(key, b)
	}
	return v, false, nil
}
