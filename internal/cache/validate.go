package cache

import (
	"context"
	"encoding/json"

	"repro/internal/gatelib"
	"repro/internal/sim"
)

// CachedValidate memoizes standalone gate validation through the LRU and,
// in a fleet, the peer layer (nil outside one). The second return reports
// whether the result came from a cache. Only successful validations are
// stored (a failed solver lookup is returned uncached), and the cached
// value is the full Validation including the per-pattern outputs and the
// minimum energy gap. The context carries the request id for peer-layer
// propagation; nil is treated as context.Background().
func CachedValidate(ctx context.Context, lru *LRU, peer Layer, d *gatelib.Design, truth func(uint32) uint32, params sim.Params, opts gatelib.ValidateOptions) (gatelib.Validation, bool, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	key := ValidationKey(d, truth, params, opts.Solver, opts.Surface)
	if b, ok := lru.Get(key); ok {
		var v gatelib.Validation
		if err := json.Unmarshal(b, &v); err == nil {
			return v, true, nil
		}
	}
	if peer != nil {
		// Peer errors fall through to a local validation, same as a miss.
		if b, ok, err := peer.Get(ctx, key); err == nil && ok {
			var v gatelib.Validation
			if err := json.Unmarshal(b, &v); err == nil {
				lru.Put(key, b)
				return v, true, nil
			}
		}
	}
	v, err := gatelib.ValidateWith(d, truth, params, opts)
	if err != nil {
		return v, false, err
	}
	if b, err := json.Marshal(v); err == nil {
		lru.Put(key, b)
		if peer != nil {
			_ = peer.Put(ctx, key, b)
		}
	}
	return v, false, nil
}
