package cache

import (
	"context"
	"math/rand"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/obslog"
)

// Layer is the interface every cache tier behind the in-memory LRU
// implements: the raw Disk store, a remote peer layer, or a Resilient
// wrapper adding retries and a circuit breaker to either. Get reports a
// clean miss as (nil, false, nil). The context carries the request id
// (obs.RequestIDFromContext) so remote tiers can propagate it across the
// wire; local tiers may ignore it.
type Layer interface {
	Get(ctx context.Context, key Key) ([]byte, bool, error)
	Put(ctx context.Context, key Key, val []byte) error
}

// DiskLayer is the historical name for Layer, kept for the persistent
// tier's call sites.
type DiskLayer = Layer

// BreakerState is the circuit breaker's position.
type BreakerState int32

// Breaker states, in gauge order: the cache_disk_breaker_state gauge
// exposes these numeric values.
const (
	BreakerClosed   BreakerState = 0 // normal operation
	BreakerHalfOpen BreakerState = 1 // cooldown elapsed; one probe allowed
	BreakerOpen     BreakerState = 2 // disk bypassed; memory-only caching
)

// String names the state for logs.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerHalfOpen:
		return "half-open"
	case BreakerOpen:
		return "open"
	default:
		return "unknown"
	}
}

// ResilientOptions tunes a Resilient wrapper.
type ResilientOptions struct {
	// Name labels the wrapped layer in metric families
	// (cache/<name>/breaker_state, ...) and log events
	// (cache_<name>_breaker_open, ...). Default "disk".
	Name string
	// MaxRetries is how many times a failed Get/Put is retried before the
	// failure counts against the breaker (default 2; negative disables
	// retries).
	MaxRetries int
	// RetryBase is the first backoff delay; each retry doubles it and adds
	// up to 50% deterministic jitter (default 2ms).
	RetryBase time.Duration
	// FailThreshold is how many consecutive failed operations (after
	// retries) trip the breaker open (default 5).
	FailThreshold int
	// Cooldown is how long the breaker stays open before half-opening to
	// probe the disk again (default 5s).
	Cooldown time.Duration
	// Seed fixes the jitter sequence (default 1).
	Seed int64
	// Tracer receives breaker and retry metrics (nil-safe).
	Tracer *obs.Tracer
	// Logger receives structured state-transition logs (nil disables).
	Logger *obslog.Logger
}

// Resilient wraps any Layer with exponential-backoff retries for
// transient failures and a circuit breaker that degrades the service to
// the remaining cache tiers after repeated failures. While the breaker is
// open every operation short-circuits (Get reports a miss, Put drops the
// write); after a cooldown it half-opens and lets a single probe through —
// success closes it, failure re-opens it for another cooldown.
type Resilient struct {
	inner Layer
	opts  ResilientOptions

	now   func() time.Time      // test hook
	sleep func(d time.Duration) // test hook

	mu       sync.Mutex
	rng      *rand.Rand
	state    BreakerState
	fails    int       // consecutive failed operations
	openedAt time.Time // when the breaker last opened
	probing  bool      // a half-open probe is in flight

	stateGauge                            *obs.Gauge
	trips, retries, ioErrors, shortCircts *obs.Counter
	log                                   *obslog.Logger
}

// ResilientDisk is the historical name for Resilient, from when the disk
// was the only wrappable tier.
type ResilientDisk = Resilient

// NewResilientDisk wraps the persistent tier (Name "disk").
func NewResilientDisk(inner Layer, opts ResilientOptions) *Resilient {
	opts.Name = "disk"
	return NewResilient(inner, opts)
}

// NewResilient wraps inner. Metrics are registered immediately so the
// breaker gauges are present in /metrics from process start.
func NewResilient(inner Layer, opts ResilientOptions) *Resilient {
	if opts.Name == "" {
		opts.Name = "disk"
	}
	if opts.MaxRetries == 0 {
		opts.MaxRetries = 2
	}
	if opts.MaxRetries < 0 {
		opts.MaxRetries = 0
	}
	if opts.RetryBase <= 0 {
		opts.RetryBase = 2 * time.Millisecond
	}
	if opts.FailThreshold <= 0 {
		opts.FailThreshold = 5
	}
	if opts.Cooldown <= 0 {
		opts.Cooldown = 5 * time.Second
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	tr := opts.Tracer
	r := &Resilient{
		inner:       inner,
		opts:        opts,
		now:         time.Now,
		sleep:       time.Sleep,
		rng:         rand.New(rand.NewSource(opts.Seed)),
		stateGauge:  tr.Gauge("cache/" + opts.Name + "/breaker_state"),
		trips:       tr.Counter("cache/" + opts.Name + "/breaker_trips_total"),
		retries:     tr.Counter("cache/" + opts.Name + "/retries_total"),
		ioErrors:    tr.Counter("cache/" + opts.Name + "/io_errors_total"),
		shortCircts: tr.Counter("cache/" + opts.Name + "/short_circuits_total"),
		log:         opts.Logger,
	}
	r.stateGauge.Set(float64(BreakerClosed))
	return r
}

// State returns the breaker's current position (cooldown expiry is only
// observed by the next operation, not by State).
func (r *Resilient) State() BreakerState {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.state
}

// allow decides whether an operation may reach the disk. It performs the
// open→half-open transition when the cooldown has elapsed.
func (r *Resilient) allow() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	switch r.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if r.now().Sub(r.openedAt) < r.opts.Cooldown {
			return false
		}
		r.setStateLocked(BreakerHalfOpen)
		r.probing = true
		return true
	default: // half-open: a single probe at a time
		if r.probing {
			return false
		}
		r.probing = true
		return true
	}
}

// onResult records an operation outcome and drives the state machine.
func (r *Resilient) onResult(failed bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	wasProbe := r.state == BreakerHalfOpen
	r.probing = false
	if !failed {
		r.fails = 0
		if wasProbe {
			r.setStateLocked(BreakerClosed)
		}
		return
	}
	r.fails++
	if wasProbe || (r.state == BreakerClosed && r.fails >= r.opts.FailThreshold) {
		r.openedAt = r.now()
		if r.state != BreakerOpen {
			r.trips.Inc()
			r.setStateLocked(BreakerOpen)
		}
	}
}

// setStateLocked transitions the breaker, updating the gauge and logging
// the change. Caller holds r.mu.
func (r *Resilient) setStateLocked(s BreakerState) {
	if r.state == s {
		return
	}
	from := r.state
	r.state = s
	r.stateGauge.Set(float64(s))
	switch s {
	case BreakerOpen:
		r.log.Warn("cache_"+r.opts.Name+"_breaker_open",
			obslog.F("from", from.String()),
			obslog.F("consecutive_failures", r.fails),
			obslog.F("cooldown", r.opts.Cooldown.String()),
			obslog.F("effect", "layer bypassed; remaining cache tiers serve"))
	case BreakerHalfOpen:
		r.log.Info("cache_"+r.opts.Name+"_breaker_half_open", obslog.F("from", from.String()))
	case BreakerClosed:
		r.log.Info("cache_"+r.opts.Name+"_breaker_closed", obslog.F("from", from.String()))
	}
}

// backoff returns the delay before retry attempt n (0-based): an
// exponential base with up to 50% deterministic jitter.
func (r *Resilient) backoff(n int) time.Duration {
	d := r.opts.RetryBase << uint(n)
	r.mu.Lock()
	j := time.Duration(r.rng.Int63n(int64(d)/2 + 1))
	r.mu.Unlock()
	return d + j
}

// Get reads through the breaker with retries. While the breaker is open
// it reports a miss so the flow cache silently degrades to memory-only.
func (r *Resilient) Get(ctx context.Context, key Key) ([]byte, bool, error) {
	if !r.allow() {
		r.shortCircts.Inc()
		return nil, false, nil
	}
	var b []byte
	var ok bool
	err := r.withRetry(func() error {
		var e error
		b, ok, e = r.inner.Get(ctx, key)
		return e
	})
	if err != nil {
		return nil, false, err
	}
	return b, ok, nil
}

// Put writes through the breaker with retries. While the breaker is open
// the write is dropped (the memory layer still holds the entry).
func (r *Resilient) Put(ctx context.Context, key Key, val []byte) error {
	if !r.allow() {
		r.shortCircts.Inc()
		return nil
	}
	return r.withRetry(func() error { return r.inner.Put(ctx, key, val) })
}

// withRetry runs op with the retry policy, then reports the final outcome
// to the breaker.
func (r *Resilient) withRetry(op func() error) error {
	var err error
	for attempt := 0; ; attempt++ {
		err = op()
		if err == nil {
			r.onResult(false)
			return nil
		}
		r.ioErrors.Inc()
		if attempt >= r.opts.MaxRetries {
			break
		}
		r.retries.Inc()
		r.sleep(r.backoff(attempt))
	}
	r.onResult(true)
	return err
}
