package pnr

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/clocking"
	"repro/internal/defects"
	"repro/internal/gatelayout"
	"repro/internal/gates"
	"repro/internal/hexgrid"
	"repro/internal/obs"
)

// side encodes the output side a signal leaves its tile by.
type side int8

const (
	sideFree side = iota // router's choice
	sideSW               // forced south-west (lands at q-1)
	sideSE               // forced south-east (lands at q)
)

// track is a signal in flight between two rows of the fabric.
type track struct {
	edge   int    // REdge ID being routed
	srcQ   int    // axial q of the emitting tile in the previous row
	forced side   // emission side constraint from 2-output parents
	parent *ptile // emitting tile (for out-side backpatching); nil for 2-output parents
}

// ptile is a tile being assembled.
type ptile struct {
	q    int // axial column
	row  int
	fn   gates.Func
	ins  []hexgrid.Direction
	outs []hexgrid.Direction
	name string
}

// Ortho places and routes the graph with the greedy row-based fabric
// router. The result uses the row-based clocking scheme; width and height
// are whatever the greedy process needs. A nil tracer disables telemetry
// at no cost.
func Ortho(g *RGraph, tr *obs.Tracer) (*gatelayout.Layout, error) {
	return OrthoContext(context.Background(), g, tr)
}

// OrthoContext is Ortho under a context: cancellation is checked between
// fabric rows. A nil context behaves like context.Background.
func OrthoContext(ctx context.Context, g *RGraph, tr *obs.Tracer) (*gatelayout.Layout, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	sp := tr.Start("pnr/ortho")
	defer sp.End()
	r := &orthoRouter{g: g, placed: make([]bool, len(g.Nodes)), tr: tr, ctx: ctx}
	l, err := r.run()
	if err == nil {
		sp.SetAttr("rows", len(r.rows))
		sp.SetAttr("w", l.Width())
		sp.SetAttr("h", l.Height())
		sp.SetAttr("peak_tracks", r.peakTracks)
	}
	return l, err
}

// OrthoAvoiding is OrthoContext on a defective surface: it routes
// greedily as usual, then legalizes the result against the tile blocker
// by sliding the whole layout right until no used tile is afflicted
// (the greedy router assigns absolute positions only at materialization,
// so a uniform x-shift preserves every neighbor relation and the
// row-based clocking). Returns the legalized layout and the shift
// applied. When no shift up to maxShift clears the defects, the error
// wraps defects.ErrBlocked. maxShift <= 0 uses a default of 64 tiles.
func OrthoAvoiding(ctx context.Context, g *RGraph, tr *obs.Tracer,
	blocked func(hexgrid.Offset) bool, maxShift int) (*gatelayout.Layout, int, error) {
	l, err := OrthoContext(ctx, g, tr)
	if err != nil || blocked == nil {
		return l, 0, err
	}
	if maxShift <= 0 {
		maxShift = 64
	}
	tiles := l.Tiles()
	for dx := 0; dx <= maxShift; dx++ {
		clear := true
		for _, at := range tiles {
			if blocked(hexgrid.Offset{X: at.X + dx, Y: at.Y}) {
				clear = false
				break
			}
		}
		if !clear {
			continue
		}
		if dx == 0 {
			return l, 0, nil
		}
		shifted := gatelayout.New(l.Name, l.Width()+dx, l.Height(), clocking.RowBased{})
		for _, at := range tiles {
			tile, _ := l.At(at)
			if err := shifted.Set(hexgrid.Offset{X: at.X + dx, Y: at.Y}, tile); err != nil {
				return nil, 0, err
			}
		}
		tr.Counter("pnr/ortho/defect_shifts").Inc()
		return shifted, dx, nil
	}
	return nil, 0, fmt.Errorf("pnr: ortho layout for %s cannot escape afflicted tiles within %d shifts: %w",
		g.Name, maxShift, defects.ErrBlocked)
}

type orthoRouter struct {
	g          *RGraph
	placed     []bool
	rows       [][]*ptile
	tracks     []track
	tr         *obs.Tracer
	ctx        context.Context // nil = never canceled
	peakTracks int
}

// run drives the row loop.
func (r *orthoRouter) run() (*gatelayout.Layout, error) {
	g := r.g
	// Row 0: PI tiles in spec order at q = 0..n-1.
	var row0 []*ptile
	for i, pi := range g.PIs {
		t := &ptile{q: i, row: 0, fn: gates.PI, name: g.Nodes[pi].Name}
		row0 = append(row0, t)
		r.placed[pi] = true
		r.tracks = append(r.tracks, track{edge: g.Nodes[pi].Out[0], srcQ: i, parent: t})
	}
	r.rows = append(r.rows, row0)

	maxRows := 30 + 12*len(g.Nodes)
	for rowIdx := 1; ; rowIdx++ {
		if rowIdx > maxRows {
			return nil, fmt.Errorf("pnr: ortho router exceeded %d rows on %s (livelock?)", maxRows, g.Name)
		}
		if r.ctx != nil {
			if err := r.ctx.Err(); err != nil {
				return nil, fmt.Errorf("pnr: ortho router canceled: %w", err)
			}
		}
		if len(r.tracks) > r.peakTracks {
			r.peakTracks = len(r.tracks)
		}
		r.tr.Counter("pnr/ortho/rows").Inc()
		done, err := r.buildRow(rowIdx)
		if err != nil {
			return nil, err
		}
		if done {
			break
		}
	}
	return r.materialize()
}

// actKind enumerates row actions.
type actKind int8

const (
	actWire  actKind = iota
	actGate1         // 1-in node (Inv)
	actGate2         // 2-in node (And/Or/.../HalfAdder)
	actFanout
	actCrossing
	actPO
)

// action is one planned tile of the row being built.
type action struct {
	kind   actKind
	tracks []int // indices into r.tracks, left to right
	node   int   // routing node for placements (-1 otherwise)
	pos    int   // assigned axial q (fixed for gate2/crossing, else set later)
	posSet bool
	prefSW bool // wire landing preference
}

// twoOut reports whether the action's tile has two output ports.
func (a action) twoOut(g *RGraph) bool {
	switch a.kind {
	case actCrossing, actFanout:
		return true
	case actGate2:
		return g.Nodes[a.node].Func.NumOuts() == 2
	default:
		return false
	}
}

// buildRow plans and materializes one fabric row. It returns done=true once
// the final PO row has been emitted.
func (r *orthoRouter) buildRow(rowIdx int) (bool, error) {
	g := r.g

	// Edge -> track index.
	trackOf := map[int]int{}
	for i, t := range r.tracks {
		trackOf[t.edge] = i
	}

	// Ready nodes: unplaced, all inputs live.
	ready := map[int]bool{}
	allGatesPlaced := true
	for _, nd := range g.Nodes {
		if r.placed[nd.ID] || nd.Func == gates.PO {
			if !r.placed[nd.ID] && nd.Func != gates.PO {
				allGatesPlaced = false
			}
			continue
		}
		allGatesPlaced = false
		ok := true
		for _, e := range nd.In {
			if _, live := trackOf[e]; !live {
				ok = false
				break
			}
		}
		if ok {
			ready[nd.ID] = true
		}
	}

	// Final phase: all non-PO nodes placed and every remaining track feeds a
	// PO. Bring tracks into PO spec order, then emit the PO row.
	if allGatesPlaced {
		inOrder := true
		poRank := make(map[int]int, len(g.POs))
		for i, po := range g.POs {
			poRank[po] = i
		}
		for i := 1; i < len(r.tracks); i++ {
			if poRank[g.Edges[r.tracks[i-1].edge].Dst] > poRank[g.Edges[r.tracks[i].edge].Dst] {
				inOrder = false
				break
			}
		}
		if inOrder {
			return true, r.emitPORow(rowIdx)
		}
	}

	// Desired ordering for bubbling: group the two input tracks of each
	// ready 2-input gate into one item so that intervening tracks see an
	// inversion and bubble out of the way.
	rank := r.desiredRank(ready, trackOf, allGatesPlaced)

	// Plan actions left to right. minNext tracks the smallest feasible tile
	// position for the next action (assuming everyone packs leftmost), so
	// fixed-position actions that cannot coexist with their left context
	// are rejected up front.
	used := make([]bool, len(r.tracks))
	var plan []action
	twoOutPositions := map[int]bool{} // fixed positions of 2-output tiles
	minNext := -1 << 30

	// Forced tracks always occupy exactly their landing position (whether
	// wired down or consumed by a gate), so fixed-position actions must not
	// collide with any other track's forced landing.
	forcedLanding := map[int][]int{} // landing pos -> track indices
	for i, t := range r.tracks {
		switch t.forced {
		case sideSW:
			forcedLanding[t.srcQ-1] = append(forcedLanding[t.srcQ-1], i)
		case sideSE:
			forcedLanding[t.srcQ] = append(forcedLanding[t.srcQ], i)
		}
	}
	clashesForced := func(p int, own []int) bool {
		for _, ti := range forcedLanding[p] {
			mine := false
			for _, o := range own {
				if o == ti {
					mine = true
					break
				}
			}
			if !mine {
				return true
			}
		}
		return false
	}

	// Child-row capacity: between two 2-output tiles at p1 < p2 there are
	// only p2-p1-2 free child slots, so at most that many tiles may sit
	// between them; otherwise the next row cannot be assigned.
	lastTwoOutPos := -1 << 29
	actionsSinceTwoOut := 0

	reserveTwoOut := func(p int, own []int) bool {
		if p < minNext {
			return false
		}
		if twoOutPositions[p-1] || twoOutPositions[p] || twoOutPositions[p+1] {
			return false
		}
		if clashesForced(p, own) {
			return false
		}
		if p-lastTwoOutPos-2 < actionsSinceTwoOut {
			return false
		}
		twoOutPositions[p] = true
		lastTwoOutPos = p
		actionsSinceTwoOut = 0
		return true
	}
	// advanceFlexible accounts for a flexible tile's leftmost landing.
	advanceFlexible := func(t track) {
		low := t.srcQ - 1
		if t.forced == sideSE {
			low = t.srcQ
		}
		if low < minNext {
			low = minNext
		}
		minNext = low + 1
	}

	for i := 0; i < len(r.tracks); i++ {
		if used[i] {
			continue
		}
		t := r.tracks[i]
		e := g.Edges[t.edge]
		dst := g.Nodes[e.Dst]

		// Two-input gate placement: partner must be the next track.
		if dst.Func.NumIns() == 2 && ready[dst.ID] && i+1 < len(r.tracks) && !used[i+1] {
			t2 := r.tracks[i+1]
			if g.Edges[t2.edge].Dst == e.Dst &&
				t2.srcQ == t.srcQ+1 &&
				t.forced != sideSW && t2.forced != sideSE &&
				t.srcQ >= minNext &&
				!clashesForced(t.srcQ, []int{i, i + 1}) {
				a := action{kind: actGate2, tracks: []int{i, i + 1}, node: dst.ID, pos: t.srcQ, posSet: true}
				if !a.twoOut(g) || reserveTwoOut(t.srcQ, []int{i, i + 1}) {
					if !a.twoOut(g) {
						actionsSinceTwoOut++
					}
					plan = append(plan, a)
					used[i], used[i+1] = true, true
					minNext = t.srcQ + 1
					continue
				}
			}
		}
		// One-input placements.
		if dst.Func.NumIns() == 1 && ready[dst.ID] && dst.Func != gates.PO {
			switch dst.Func {
			case gates.Fanout:
				// Needs a reserved fixed position; use srcQ (arrive via NW).
				if t.forced != sideSW && reserveTwoOut(t.srcQ, []int{i}) {
					plan = append(plan, action{kind: actFanout, tracks: []int{i}, node: dst.ID, pos: t.srcQ, posSet: true})
					used[i] = true
					minNext = t.srcQ + 1
					continue
				}
				if t.forced != sideSE && reserveTwoOut(t.srcQ-1, []int{i}) {
					plan = append(plan, action{kind: actFanout, tracks: []int{i}, node: dst.ID, pos: t.srcQ - 1, posSet: true})
					used[i] = true
					minNext = t.srcQ
					continue
				}
			default: // Inv
				plan = append(plan, action{kind: actGate1, tracks: []int{i}, node: dst.ID})
				used[i] = true
				advanceFlexible(t)
				actionsSinceTwoOut++
				continue
			}
		}
		// Crossing for bubbling: adjacent out-of-order pair.
		if i+1 < len(r.tracks) && !used[i+1] {
			t2 := r.tracks[i+1]
			if rank[i] > rank[i+1] &&
				t2.srcQ == t.srcQ+1 &&
				t.forced != sideSW && t2.forced != sideSE &&
				t.srcQ >= minNext &&
				reserveTwoOut(t.srcQ, []int{i, i + 1}) {
				plan = append(plan, action{kind: actCrossing, tracks: []int{i, i + 1}, pos: t.srcQ, posSet: true})
				used[i], used[i+1] = true, true
				minNext = t.srcQ + 1
				continue
			}
		}
		// Plain wire. Prefer drifting SW when this track should move left:
		// either it must bubble left (rank smaller than a left neighbor's)
		// or it needs to close a q-gap with its left-side pairing partner.
		pref := false
		if i+1 < len(r.tracks) && rank[i] > rank[i+1] {
			// Out-of-order with right neighbor: the right one will prefer
			// SW next rows; keep left stable.
			pref = false
		}
		if i > 0 && rank[i] < rank[i-1] {
			pref = true // needs to move left past the left neighbor
		}
		if i > 0 && rank[i-1] < rank[i] && r.tracks[i].srcQ-r.tracks[i-1].srcQ > 1 &&
			sameDst(g, r.tracks[i-1].edge, t.edge) {
			pref = true // close the gap to the partner on the left
		}
		// Also close gaps for bubble pairs.
		if i > 0 && rank[i] < rank[i-1] && t.srcQ-r.tracks[i-1].srcQ > 1 {
			pref = true
		}
		plan = append(plan, action{kind: actWire, tracks: []int{i}, prefSW: pref})
		used[i] = true
		advanceFlexible(t)
		actionsSinceTwoOut++
	}

	if err := r.assignPositions(plan); err != nil {
		return false, err
	}
	r.materializeRow(rowIdx, plan)
	return false, nil
}

// sameDst reports whether two edges feed the same node.
func sameDst(g *RGraph, e1, e2 int) bool { return g.Edges[e1].Dst == g.Edges[e2].Dst }

// desiredRank computes the target ordering of tracks. Input tracks of a
// ready 2-input gate form one item (they must become neighbors); in the
// final phase tracks sort by PO index.
func (r *orthoRouter) desiredRank(ready map[int]bool, trackOf map[int]int, allGatesPlaced bool) []int {
	g := r.g
	n := len(r.tracks)
	rank := make([]int, n)
	if allGatesPlaced {
		poRank := make(map[int]int, len(g.POs))
		for i, po := range g.POs {
			poRank[po] = i
		}
		keys := make([]float64, n)
		for i, t := range r.tracks {
			keys[i] = float64(poRank[g.Edges[t.edge].Dst])
		}
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(a, b int) bool { return keys[idx[a]] < keys[idx[b]] })
		for pos, i := range idx {
			rank[i] = pos
		}
		return rank
	}
	type item struct {
		tracks []int
		key    float64
	}
	var items []item
	grouped := make([]bool, n)
	for id := range ready {
		nd := g.Nodes[id]
		if len(nd.In) != 2 {
			continue
		}
		i0, i1 := trackOf[nd.In[0]], trackOf[nd.In[1]]
		if i0 > i1 {
			i0, i1 = i1, i0
		}
		items = append(items, item{tracks: []int{i0, i1}, key: (float64(i0) + float64(i1)) / 2})
		grouped[i0], grouped[i1] = true, true
	}
	for i := 0; i < n; i++ {
		if !grouped[i] {
			items = append(items, item{tracks: []int{i}, key: float64(i)})
		}
	}
	sort.SliceStable(items, func(a, b int) bool {
		if items[a].key != items[b].key {
			return items[a].key < items[b].key
		}
		return items[a].tracks[0] < items[b].tracks[0]
	})
	pos := 0
	for _, it := range items {
		for _, tr := range it.tracks {
			rank[tr] = pos
			pos++
		}
	}
	return rank
}

// assignPositions gives every action a tile position, keeping positions
// strictly increasing left to right. Fixed positions (gate2, crossing,
// fanout) are respected; flexible tiles use a right-to-left rightmost fit
// with optional SW preference. Preferences can break rightmost-fit
// optimality, so a failed pass is retried without them.
func (r *orthoRouter) assignPositions(plan []action) error {
	if r.tryAssign(plan, true) {
		return nil
	}
	// Reset flexible assignments and retry with pure rightmost fit, which
	// succeeds whenever any assignment exists.
	for j := range plan {
		if plan[j].kind == actWire || plan[j].kind == actGate1 || plan[j].kind == actPO {
			plan[j].posSet = false
		}
	}
	if r.tryAssign(plan, false) {
		return nil
	}
	var desc []string
	for _, a := range plan {
		t := r.tracks[a.tracks[0]]
		desc = append(desc, fmt.Sprintf("{kind=%d q=%d forced=%d fixed=%v pos=%d}", a.kind, t.srcQ, t.forced, a.posSet, a.pos))
	}
	return fmt.Errorf("pnr: no feasible position assignment for row: %v", desc)
}

// tryAssign attempts a right-to-left assignment; honorPrefs enables the SW
// drift preference for flexible tiles.
func (r *orthoRouter) tryAssign(plan []action, honorPrefs bool) bool {
	const inf = int(^uint(0) >> 1)
	limit := inf
	for j := len(plan) - 1; j >= 0; j-- {
		a := &plan[j]
		if a.posSet {
			if a.pos >= limit {
				return false
			}
			limit = a.pos
			continue
		}
		t := r.tracks[a.tracks[0]]
		var options []int
		sw, se := t.srcQ-1, t.srcQ
		switch {
		case t.forced == sideSW:
			options = []int{sw}
		case t.forced == sideSE:
			options = []int{se}
		case honorPrefs && a.prefSW:
			options = []int{sw, se}
		default:
			options = []int{se, sw}
		}
		assigned := false
		for _, p := range options {
			if p < limit {
				a.pos, a.posSet = p, true
				limit = p
				assigned = true
				break
			}
		}
		if !assigned {
			return false
		}
	}
	return true
}

// backpatch records the emission side on the parent tile of a consumed
// track. Two-output parents have their sides pre-assigned.
func backpatch(t track, landing int) {
	if t.parent == nil {
		return
	}
	if landing == t.srcQ {
		t.parent.outs = append(t.parent.outs, hexgrid.SouthEast)
	} else {
		t.parent.outs = append(t.parent.outs, hexgrid.SouthWest)
	}
}

// arrivalDir returns the input side for a track landing at pos.
func arrivalDir(t track, pos int) hexgrid.Direction {
	if pos == t.srcQ {
		return hexgrid.NorthWest // parent is the NW neighbor
	}
	return hexgrid.NorthEast
}

// materializeRow creates tiles for the planned actions and computes the new
// track state.
func (r *orthoRouter) materializeRow(rowIdx int, plan []action) {
	g := r.g
	var row []*ptile
	var newTracks []track
	for _, a := range plan {
		switch a.kind {
		case actWire:
			t := r.tracks[a.tracks[0]]
			in := arrivalDir(t, a.pos)
			backpatch(t, a.pos)
			p := &ptile{q: a.pos, row: rowIdx, ins: []hexgrid.Direction{in}}
			// Function (straight vs diagonal) is fixed when the out side is
			// backpatched by the next row; temporarily mark as Wire.
			p.fn = gates.Wire
			row = append(row, p)
			newTracks = append(newTracks, track{edge: t.edge, srcQ: a.pos, parent: p})
		case actGate1:
			t := r.tracks[a.tracks[0]]
			in := arrivalDir(t, a.pos)
			backpatch(t, a.pos)
			nd := g.Nodes[a.node]
			p := &ptile{q: a.pos, row: rowIdx, fn: nd.Func, ins: []hexgrid.Direction{in}, name: nd.Name}
			row = append(row, p)
			r.placed[a.node] = true
			newTracks = append(newTracks, track{edge: nd.Out[0], srcQ: a.pos, parent: p})
		case actGate2:
			tl, tr := r.tracks[a.tracks[0]], r.tracks[a.tracks[1]]
			backpatch(tl, a.pos) // lands via NW: parent emits SE
			backpatch(tr, a.pos) // lands via NE: parent emits SW
			nd := g.Nodes[a.node]
			p := &ptile{q: a.pos, row: rowIdx, fn: nd.Func,
				ins: []hexgrid.Direction{hexgrid.NorthWest, hexgrid.NorthEast}, name: nd.Name}
			r.placed[a.node] = true
			if nd.Func.NumOuts() == 2 {
				p.outs = []hexgrid.Direction{hexgrid.SouthWest, hexgrid.SouthEast}
				newTracks = append(newTracks,
					track{edge: nd.Out[0], srcQ: a.pos, forced: sideSW},
					track{edge: nd.Out[1], srcQ: a.pos, forced: sideSE})
			} else {
				newTracks = append(newTracks, track{edge: nd.Out[0], srcQ: a.pos, parent: p})
			}
			row = append(row, p)
		case actFanout:
			t := r.tracks[a.tracks[0]]
			in := arrivalDir(t, a.pos)
			backpatch(t, a.pos)
			nd := g.Nodes[a.node]
			p := &ptile{q: a.pos, row: rowIdx, fn: gates.Fanout,
				ins:  []hexgrid.Direction{in},
				outs: []hexgrid.Direction{hexgrid.SouthWest, hexgrid.SouthEast}}
			r.placed[a.node] = true
			row = append(row, p)
			newTracks = append(newTracks,
				track{edge: nd.Out[0], srcQ: a.pos, forced: sideSW},
				track{edge: nd.Out[1], srcQ: a.pos, forced: sideSE})
		case actCrossing:
			tl, tr := r.tracks[a.tracks[0]], r.tracks[a.tracks[1]]
			backpatch(tl, a.pos)
			backpatch(tr, a.pos)
			p := &ptile{q: a.pos, row: rowIdx, fn: gates.Crossing,
				ins:  []hexgrid.Direction{hexgrid.NorthWest, hexgrid.NorthEast},
				outs: []hexgrid.Direction{hexgrid.SouthWest, hexgrid.SouthEast}}
			row = append(row, p)
			// SW output carries the NE (right) input; SE carries NW (left).
			newTracks = append(newTracks,
				track{edge: tr.edge, srcQ: a.pos, forced: sideSW},
				track{edge: tl.edge, srcQ: a.pos, forced: sideSE})
		}
	}
	r.rows = append(r.rows, row)
	r.tracks = newTracks
}

// emitPORow places all PO tiles on the final row.
func (r *orthoRouter) emitPORow(rowIdx int) error {
	g := r.g
	plan := make([]action, len(r.tracks))
	for i := range r.tracks {
		plan[i] = action{kind: actPO, tracks: []int{i}}
	}
	if err := r.assignPositions(plan); err != nil {
		return err
	}
	var row []*ptile
	for _, a := range plan {
		t := r.tracks[a.tracks[0]]
		in := arrivalDir(t, a.pos)
		backpatch(t, a.pos)
		dst := g.Nodes[g.Edges[t.edge].Dst]
		p := &ptile{q: a.pos, row: rowIdx, fn: gates.PO, ins: []hexgrid.Direction{in}, name: dst.Name}
		row = append(row, p)
		r.placed[dst.ID] = true
	}
	r.rows = append(r.rows, row)
	r.tracks = nil
	return nil
}

// materialize converts the assembled rows into a gatelayout.Layout.
func (r *orthoRouter) materialize() (*gatelayout.Layout, error) {
	// Fix wire tile functions now that their out sides are known, and
	// compute offset coordinates.
	minX, maxX := int(^uint(0)>>1), -1<<31
	type placed struct {
		at hexgrid.Offset
		t  *ptile
	}
	var all []placed
	for _, row := range r.rows {
		for _, p := range row {
			if p.fn == gates.Wire && len(p.ins) == 1 && len(p.outs) == 1 {
				straight := (p.ins[0] == hexgrid.NorthWest && p.outs[0] == hexgrid.SouthEast) ||
					(p.ins[0] == hexgrid.NorthEast && p.outs[0] == hexgrid.SouthWest)
				if !straight {
					p.fn = gates.DiagWire
				}
			}
			at := hexgrid.Axial{Q: p.q, R: p.row}.ToOffset()
			if at.X < minX {
				minX = at.X
			}
			if at.X > maxX {
				maxX = at.X
			}
			all = append(all, placed{at: at, t: p})
		}
	}
	w := maxX - minX + 1
	h := len(r.rows)
	l := gatelayout.New(r.g.Name, w, h, clocking.RowBased{})
	for _, pl := range all {
		at := hexgrid.Offset{X: pl.at.X - minX, Y: pl.at.Y}
		tile := gatelayout.Tile{Func: pl.t.fn, Ins: pl.t.ins, Outs: pl.t.outs, Name: pl.t.name}
		if err := l.Set(at, tile); err != nil {
			return nil, err
		}
	}
	return l, nil
}
