// Package pnr implements placement & routing of technology-mapped netlists
// onto clocked hexagonal floor plans — flow step (4) of the Bestagon paper.
//
// Two engines are provided:
//
//   - Ortho: a scalable greedy router over the row-based fabric (cf. the
//     scalable method of [49], adapted to hexagons), used as a baseline and
//     as a fallback;
//   - Exact: SAT-based minimal-area placement & routing in the spirit of
//     [46] ("via some adjustments ... able to support hexagonal layout
//     topologies and the Bestagon library").
//
// Both operate on the row-based clocking fabric: every tile receives from
// its NW/NE neighbors and emits to its SW/SE neighbors, so signals advance
// exactly one row per clock phase and all paths are balanced by
// construction — yielding the paper's 1/1 throughput.
package pnr

import (
	"fmt"

	"repro/internal/gates"
	"repro/internal/logic/mapping"
)

// RNode is a node of the routing DAG: a mapped gate, I/O pin, or an
// explicit fan-out inserted by expansion.
type RNode struct {
	ID   int
	Func gates.Func
	Name string
	// In lists the driving edges, one per input port.
	In []int
	// Out lists the outgoing edges, one per output port.
	Out []int
}

// REdge is a point-to-point connection between an output port and an input
// port of the routing DAG.
type REdge struct {
	ID      int
	Src     int // node ID
	SrcPort int
	Dst     int // node ID
	DstPort int
}

// RGraph is the routing DAG: after expansion every output port drives
// exactly one input port, with fan-out realized by explicit Fanout nodes.
type RGraph struct {
	Name  string
	Nodes []RNode
	Edges []REdge
	PIs   []int // node IDs, spec order
	POs   []int // node IDs, spec order
}

// addNode appends a node.
func (g *RGraph) addNode(f gates.Func, name string) int {
	id := len(g.Nodes)
	g.Nodes = append(g.Nodes, RNode{
		ID: id, Func: f, Name: name,
		In:  make([]int, f.NumIns()),
		Out: make([]int, f.NumOuts()),
	})
	return id
}

// addEdge connects src:port to dst:inport.
func (g *RGraph) addEdge(src, srcPort, dst, dstPort int) int {
	id := len(g.Edges)
	g.Edges = append(g.Edges, REdge{ID: id, Src: src, SrcPort: srcPort, Dst: dst, DstPort: dstPort})
	g.Nodes[src].Out[srcPort] = id
	g.Nodes[dst].In[dstPort] = id
	return id
}

// NumGates counts logic gates (excluding PI/PO/Fanout).
func (g *RGraph) NumGates() int {
	n := 0
	for _, nd := range g.Nodes {
		if nd.Func.IsGate() {
			n++
		}
	}
	return n
}

// Expand converts a mapped netlist into a routing DAG, inserting balanced
// binary fan-out trees so that every output port feeds exactly one input.
func Expand(m *mapping.Net) (*RGraph, error) {
	g := &RGraph{Name: m.Name}

	// First pass: create nodes for every mapped element.
	nodeOf := make(map[int]int, len(m.Nodes)) // mapped node ID -> routing node ID
	for _, nd := range m.Nodes {
		if nd.Func == gates.None {
			continue
		}
		id := g.addNode(nd.Func, nd.Name)
		nodeOf[nd.ID] = id
		switch nd.Func {
		case gates.PI:
			g.PIs = append(g.PIs, id)
		case gates.PO:
			g.POs = append(g.POs, id)
		}
	}

	// Collect consumers per output port.
	cons := map[mapping.Ref][]consumer{}
	for _, nd := range m.Nodes {
		for i, in := range nd.Ins {
			cons[in] = append(cons[in], consumer{node: nodeOf[nd.ID], port: i})
		}
	}

	// Second pass: wire outputs, building fan-out trees for multi-consumer
	// ports.
	for _, nd := range m.Nodes {
		if nd.Func == gates.None {
			continue
		}
		src := nodeOf[nd.ID]
		for p := 0; p < nd.Func.NumOuts(); p++ {
			cs := cons[mapping.Ref{Node: nd.ID, Port: p}]
			if len(cs) == 0 {
				return nil, fmt.Errorf("pnr: output %d of node %d (%v) is dangling", p, nd.ID, nd.Func)
			}
			if err := fanOut(g, src, p, cs); err != nil {
				return nil, err
			}
		}
	}
	return g, nil
}

// consumer identifies an input port of the routing DAG.
type consumer struct {
	node int // routing node ID
	port int
}

// fanOut connects src:port to all consumers, inserting Fanout nodes as a
// balanced binary tree when there is more than one consumer.
func fanOut(g *RGraph, src, port int, cs []consumer) error {
	if len(cs) == 1 {
		g.addEdge(src, port, cs[0].node, cs[0].port)
		return nil
	}
	// Insert one Fanout node, split consumers across its two ports.
	f := g.addNode(gates.Fanout, "")
	g.addEdge(src, port, f, 0)
	half := (len(cs) + 1) / 2
	if err := fanOut(g, f, 0, cs[:half]); err != nil {
		return err
	}
	return fanOut(g, f, 1, cs[half:])
}

// Levels returns ASAP levels per node (PIs at 0).
func (g *RGraph) Levels() []int {
	lv := make([]int, len(g.Nodes))
	// Nodes are in creation order which is topological for the mapped part,
	// but fan-outs were appended later; iterate to fixpoint (DAG, small).
	changed := true
	for changed {
		changed = false
		for _, nd := range g.Nodes {
			l := 0
			for _, e := range nd.In {
				src := g.Edges[e].Src
				if lv[src]+1 > l {
					l = lv[src] + 1
				}
			}
			if l > lv[nd.ID] {
				lv[nd.ID] = l
				changed = true
			}
		}
	}
	return lv
}

// Validate checks structural invariants of the routing DAG.
func (g *RGraph) Validate() error {
	for _, e := range g.Edges {
		if e.Src < 0 || e.Src >= len(g.Nodes) || e.Dst < 0 || e.Dst >= len(g.Nodes) {
			return fmt.Errorf("pnr: edge %d references unknown node", e.ID)
		}
		if g.Nodes[e.Src].Out[e.SrcPort] != e.ID {
			return fmt.Errorf("pnr: edge %d source port inconsistent", e.ID)
		}
		if g.Nodes[e.Dst].In[e.DstPort] != e.ID {
			return fmt.Errorf("pnr: edge %d destination port inconsistent", e.ID)
		}
	}
	for _, nd := range g.Nodes {
		for p, e := range nd.Out {
			if g.Edges[e].Src != nd.ID || g.Edges[e].SrcPort != p {
				return fmt.Errorf("pnr: node %d output %d inconsistent", nd.ID, p)
			}
		}
	}
	return nil
}
