package pnr

import (
	"context"
	"errors"
	"testing"

	"repro/internal/defects"
	"repro/internal/gatelib"
	"repro/internal/hexgrid"
)

// expandBench maps and expands a benchmark into a routing graph.
func expandBench(t *testing.T, name string) *RGraph {
	t.Helper()
	_, m := mapBench(t, name)
	g, err := Expand(m)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// usedTiles returns the layout's occupied offsets as a set.
func usedTiles(l interface{ Tiles() []hexgrid.Offset }) map[hexgrid.Offset]bool {
	out := map[hexgrid.Offset]bool{}
	for _, at := range l.Tiles() {
		out[at] = true
	}
	return out
}

// TestExactAvoidsDefectTile: the SAT engine must produce a clean layout,
// then — with a defect afflicting a tile that clean layout used — either
// re-place around it or fail honestly with defects.ErrBlocked. The
// re-placed layout must not use any afflicted tile and must stay
// functionally equivalent.
func TestExactAvoidsDefectTile(t *testing.T) {
	g := expandBench(t, "xor2")
	clean, err := Exact(g, ExactOptions{})
	if err != nil {
		t.Fatalf("clean exact failed: %v", err)
	}
	used := clean.Tiles()
	if len(used) == 0 {
		t.Fatal("empty clean layout")
	}
	// Pick a non-PI/PO tile to afflict (interior tiles are the ones P&R
	// has freedom over).
	target := used[0]
	for _, at := range used {
		if at.Y > 0 && at.Y < clean.Height()-1 {
			target = at
			break
		}
	}
	blocked := func(at hexgrid.Offset) bool { return at == target }
	rerouted, err := Exact(g, ExactOptions{Blocked: blocked})
	if err != nil {
		// Honest failure is acceptable, but it must carry the sentinel.
		if !errors.Is(err, defects.ErrBlocked) {
			t.Fatalf("blocked exact failed without ErrBlocked: %v", err)
		}
		return
	}
	if usedTiles(rerouted)[target] {
		t.Fatalf("re-placed layout still uses afflicted tile %v", target)
	}
	x, _ := mapBench(t, "xor2")
	for in := uint32(0); in < 1<<x.NumPIs(); in++ {
		if got, want := rerouted.Simulate(in), x.Simulate(in); got != want {
			t.Fatalf("rerouted layout(%b) = %b, want %b", in, got, want)
		}
	}
	if len(rerouted.Check(nil)) != 0 {
		t.Fatal("rerouted layout has DRC violations")
	}
}

// TestExactUnsatWhenEverythingBlocked: a blocker that afflicts every tile
// makes every size UNSAT; the error must wrap defects.ErrBlocked.
func TestExactUnsatWhenEverythingBlocked(t *testing.T) {
	g := expandBench(t, "xor2")
	_, err := Exact(g, ExactOptions{
		MaxArea: 12, // keep the futile size sweep short
		Blocked: func(hexgrid.Offset) bool { return true },
	})
	if err == nil {
		t.Fatal("fully blocked grid produced a layout")
	}
	if !errors.Is(err, defects.ErrBlocked) {
		t.Fatalf("error does not wrap ErrBlocked: %v", err)
	}
}

// TestOrthoAvoidingShifts: with a defect on a tile the greedy router
// would use, legalization must slide the layout to a clear position and
// preserve function; with an unescapable blocker it must fail with
// ErrBlocked.
func TestOrthoAvoidingShifts(t *testing.T) {
	g := expandBench(t, "mux21")
	clean, _, err := OrthoAvoiding(context.Background(), g, nil, nil, 0)
	if err != nil {
		t.Fatalf("clean ortho failed: %v", err)
	}
	target := clean.Tiles()[0]
	blocked := func(at hexgrid.Offset) bool { return at == target }
	shifted, dx, err := OrthoAvoiding(context.Background(), g, nil, blocked, 0)
	if err != nil {
		t.Fatalf("legalization failed: %v", err)
	}
	if dx <= 0 {
		t.Fatalf("expected a positive shift, got %d", dx)
	}
	if usedTiles(shifted)[target] {
		t.Fatalf("shifted layout still uses afflicted tile %v", target)
	}
	if len(shifted.Check(nil)) != 0 {
		t.Fatal("shifted layout has DRC violations")
	}
	x, _ := mapBench(t, "mux21")
	for in := uint32(0); in < 1<<x.NumPIs(); in++ {
		if got, want := shifted.Simulate(in), x.Simulate(in); got != want {
			t.Fatalf("shifted layout(%b) = %b, want %b", in, got, want)
		}
	}

	_, _, err = OrthoAvoiding(context.Background(), g, nil,
		func(hexgrid.Offset) bool { return true }, 8)
	if err == nil || !errors.Is(err, defects.ErrBlocked) {
		t.Fatalf("unescapable blocker: want ErrBlocked, got %v", err)
	}
}

// TestTileBlockerGeometry: a charged defect afflicts its own tile and its
// near neighbors (6 nm influence spans more than one 23 nm-wide tile only
// when near the boundary), while a distant tile stays clear.
func TestTileBlockerGeometry(t *testing.T) {
	surf := defects.New()
	// Center of tile (1, 0): origin (60, 0), center cell (90, 23).
	surf.AddCell(90, 23, defects.DB)
	blocker := gatelib.TileBlocker(surf)
	if blocker == nil {
		t.Fatal("nil blocker for non-empty surface")
	}
	if !blocker(hexgrid.Offset{X: 1, Y: 0}) {
		t.Fatal("defect's own tile not afflicted")
	}
	if blocker(hexgrid.Offset{X: 4, Y: 0}) {
		t.Fatal("tile ~70 nm away afflicted by 6 nm influence")
	}
	if gatelib.TileBlocker(nil) != nil {
		t.Fatal("pristine surface produced a blocker")
	}

	// A neutral defect only afflicts its own neighborhood (~1 nm): the
	// adjacent tile's far side stays clear.
	ns := defects.New()
	ns.AddCell(30, 20, defects.Siloxane)
	nb := gatelib.TileBlocker(ns)
	if !nb(hexgrid.Offset{X: 0, Y: 0}) {
		t.Fatal("neutral defect's own tile not afflicted")
	}
	if nb(hexgrid.Offset{X: 2, Y: 0}) {
		t.Fatal("neutral defect reached two tiles over")
	}
}
