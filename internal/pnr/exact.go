package pnr

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/clocking"
	"repro/internal/defects"
	"repro/internal/gatelayout"
	"repro/internal/gates"
	"repro/internal/hexgrid"
	"repro/internal/obs"
	"repro/internal/sat"
)

// ExactOptions tunes the SAT-based exact physical design engine.
type ExactOptions struct {
	// MaxArea bounds the explored grid areas (w*h tiles); 0 uses a default
	// derived from the network size.
	MaxArea int
	// MaxWidth/MaxHeight bound the aspect ratios; 0 means unbounded (up to
	// MaxArea).
	MaxWidth, MaxHeight int
	// ConflictBudget bounds each SAT call; 0 uses a default. When a call is
	// cut off the size is skipped, so the result may lose minimality but
	// stays correct.
	ConflictBudget int64
	// Blocked marks tiles afflicted by surface defects: when non-nil, no
	// node or wire may occupy a tile for which it returns true (the
	// encoding adds unit clauses negating every placement and wire
	// variable there). Offsets are absolute grid coordinates of the
	// candidate grid, anchored at (0, 0). When the search fails with a
	// blocker set, the error wraps defects.ErrBlocked.
	Blocked func(hexgrid.Offset) bool
	// Tracer receives size-search spans and SAT effort metrics; nil
	// disables telemetry at no cost.
	Tracer *obs.Tracer
}

// withDefaults fills unset fields.
func (o ExactOptions) withDefaults(g *RGraph) ExactOptions {
	if o.MaxArea == 0 {
		n := len(g.Nodes) * 4
		if n < 24 {
			n = 24
		}
		o.MaxArea = n
	}
	if o.ConflictBudget == 0 {
		o.ConflictBudget = 300000
	}
	return o
}

// Exact places and routes the graph with minimal tile area by enumerating
// grid dimensions in order of increasing area and solving each with a SAT
// encoding of the row-based hexagonal fabric — the paper's flow step (4)
// following the exact method of [46], adjusted to hexagonal layouts and
// the Bestagon library.
func Exact(g *RGraph, opts ExactOptions) (*gatelayout.Layout, error) {
	return ExactContext(context.Background(), g, opts)
}

// ExactContext is Exact under a context: cancellation or deadline expiry
// interrupts the SAT search mid-solve and returns the context's error. A
// nil context behaves like context.Background.
func ExactContext(ctx context.Context, g *RGraph, opts ExactOptions) (*gatelayout.Layout, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	o := opts.withDefaults(g)
	tr := o.Tracer
	sp := tr.Start("pnr/exact")
	defer sp.End()

	// Lower bounds: every PI sits in row 0, every PO in the last row, and
	// each edge advances exactly one row, so the height is the longest
	// node path and the width at least max(#PI, #PO).
	lv := g.Levels()
	minH := 0
	for _, po := range g.POs {
		if lv[po]+1 > minH {
			minH = lv[po] + 1
		}
	}
	minW := len(g.PIs)
	if len(g.POs) > minW {
		minW = len(g.POs)
	}
	if minW == 0 || minH == 0 {
		return nil, fmt.Errorf("pnr: degenerate graph")
	}

	type dims struct{ w, h int }
	var cands []dims
	maxW, maxH := o.MaxWidth, o.MaxHeight
	if maxW == 0 {
		maxW = o.MaxArea
	}
	if maxH == 0 {
		maxH = o.MaxArea
	}
	for w := minW; w <= maxW; w++ {
		for h := minH; h <= maxH; h++ {
			if w*h <= o.MaxArea {
				cands = append(cands, dims{w, h})
			}
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].w*cands[i].h != cands[j].w*cands[j].h {
			return cands[i].w*cands[i].h < cands[j].w*cands[j].h
		}
		return cands[i].h < cands[j].h
	})
	sp.SetAttr("candidates", len(cands))
	for _, d := range cands {
		l, status := solveSize(ctx, g, d.w, d.h, o)
		if status == sat.Sat {
			sp.SetAttr("w", d.w)
			sp.SetAttr("h", d.h)
			return l, nil
		}
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("pnr: exact search canceled: %w", err)
		}
	}
	if o.Blocked != nil {
		return nil, fmt.Errorf("pnr: no exact layout within area %d for %s avoiding afflicted tiles: %w",
			o.MaxArea, g.Name, defects.ErrBlocked)
	}
	return nil, fmt.Errorf("pnr: no exact layout within area %d for %s", o.MaxArea, g.Name)
}

// exactEncoder carries the SAT encoding state for one grid size.
type exactEncoder struct {
	g       *RGraph
	w, h    int
	s       *sat.Solver
	asap    []int
	alap    []int
	x       map[[2]int]sat.Lit // (nodeID, tileIdx) -> placement var
	we      map[[2]int]sat.Lit // (edgeID, tileIdx) -> wire var
	outSW   map[[2]int]sat.Lit
	arrNW   map[[2]int]sat.Lit
	arrNE   map[[2]int]sat.Lit
	emit    map[[2]int]sat.Lit
	nodeAt  []sat.Lit // tileIdx -> "tile hosts a node"
	swapVar map[int]sat.Lit
	lFalse  sat.Lit
	blocked func(hexgrid.Offset) bool // defect-afflicted tiles; may be nil
}

// tileIdx flattens offset coordinates.
func (e *exactEncoder) tileIdx(at hexgrid.Offset) int { return at.Y*e.w + at.X }

// tileAt reverses tileIdx.
func (e *exactEncoder) tileAt(idx int) hexgrid.Offset {
	return hexgrid.Offset{X: idx % e.w, Y: idx / e.w}
}

// inGrid reports whether the coordinate is on the grid.
func (e *exactEncoder) inGrid(at hexgrid.Offset) bool {
	return at.X >= 0 && at.X < e.w && at.Y >= 0 && at.Y < e.h
}

// nodeRows returns the allowed row window of a node.
func (e *exactEncoder) nodeRows(n int) (int, int) {
	nd := e.g.Nodes[n]
	switch nd.Func {
	case gates.PI:
		return 0, 0
	case gates.PO:
		return e.h - 1, e.h - 1
	default:
		lo, hi := e.asap[n], e.alap[n]
		if lo < 1 {
			lo = 1
		}
		if hi > e.h-2 {
			hi = e.h - 2
		}
		return lo, hi
	}
}

// edgeRows returns the wire row window of an edge.
func (e *exactEncoder) edgeRows(eid int) (int, int) {
	ed := e.g.Edges[eid]
	return e.asap[ed.Src] + 1, e.alap[ed.Dst] - 1
}

// solveSize attempts one grid size, recording the (w, h) attempt and its
// SAT outcome as a size-search span.
func solveSize(ctx context.Context, g *RGraph, w, h int, o ExactOptions) (layout *gatelayout.Layout, status sat.Status) {
	tr := o.Tracer
	sp := tr.Start("pnr/exact/size")
	defer func() {
		sp.SetAttr("status", status.String())
		sp.End()
	}()
	sp.SetAttr("w", w)
	sp.SetAttr("h", h)
	tr.Counter("pnr/exact/sizes_tried").Inc()

	// ASAP levels and ALAP levels for this height.
	asap := g.Levels()
	alap := make([]int, len(g.Nodes))
	for i := range alap {
		alap[i] = h - 1
	}
	// Iterate ALAP to fixpoint (reverse edges).
	for changed := true; changed; {
		changed = false
		for _, ed := range g.Edges {
			if alap[ed.Dst]-1 < alap[ed.Src] {
				alap[ed.Src] = alap[ed.Dst] - 1
				changed = true
			}
		}
	}
	for n := range g.Nodes {
		if asap[n] > alap[n] {
			tr.Counter("pnr/exact/sizes_pruned").Inc()
			sp.SetAttr("pruned", true)
			return nil, sat.Unsat
		}
	}

	enc := &exactEncoder{
		g: g, w: w, h: h, s: sat.New(),
		asap: asap, alap: alap,
		x:     map[[2]int]sat.Lit{},
		we:    map[[2]int]sat.Lit{},
		outSW: map[[2]int]sat.Lit{}, arrNW: map[[2]int]sat.Lit{},
		arrNE: map[[2]int]sat.Lit{}, emit: map[[2]int]sat.Lit{},
		swapVar: map[int]sat.Lit{},
		blocked: o.Blocked,
	}
	enc.s.MaxConflicts = o.ConflictBudget
	enc.lFalse = enc.s.NewVar()
	enc.s.AddClause(enc.lFalse.Neg())
	enc.build()
	solveStart := time.Now()
	status = enc.s.SolveContext(ctx)
	solveSecs := time.Since(solveStart).Seconds()
	m := enc.s.Metrics()
	sp.SetAttr("vars", enc.s.NumVars())
	sp.SetAttr("clauses", enc.s.NumClauses())
	sp.SetAttr("conflicts", m.Conflicts)
	sp.SetAttr("decisions", m.Decisions)
	sp.SetAttr("propagations", m.Propagations)
	sp.SetAttr("restarts", m.Restarts)
	sp.SetAttr("solve_seconds", solveSecs)
	tr.Counter("sat/conflicts").Add(m.Conflicts)
	tr.Counter("sat/decisions").Add(m.Decisions)
	tr.Counter("sat/propagations").Add(m.Propagations)
	tr.Counter("sat/restarts").Add(m.Restarts)
	tr.Counter("sat/learned").Add(m.Learned)
	tr.Histogram("pnr/exact/conflicts_per_size",
		0, 10, 100, 1e3, 1e4, 1e5, 1e6).Observe(float64(m.Conflicts))
	// The per-aspect-ratio solve-time curve, split by outcome so the cost
	// of the UNSAT ramp below the first feasible area is visible apart
	// from the single SAT call that ends a search.
	tr.Histogram(obs.Labeled("pnr/exact/size_solve_seconds", "status", status.String()),
		obs.DefBuckets...).Observe(solveSecs)
	if status != sat.Sat {
		return nil, status
	}
	l, err := enc.decode()
	if err != nil {
		// An encoding bug would surface here; treat as failure.
		return nil, sat.Unknown
	}
	return l, sat.Sat
}

// litOrFalse returns the mapped literal or constant false.
func litOrFalse(m map[[2]int]sat.Lit, key [2]int, f sat.Lit) sat.Lit {
	if l, ok := m[key]; ok {
		return l
	}
	return f
}

// build emits the whole encoding.
func (e *exactEncoder) build() {
	g, s := e.g, e.s

	// Placement variables within row windows.
	for n := range g.Nodes {
		lo, hi := e.nodeRows(n)
		var all []sat.Lit
		for y := lo; y <= hi; y++ {
			for xx := 0; xx < e.w; xx++ {
				t := e.tileIdx(hexgrid.Offset{X: xx, Y: y})
				v := s.NewVar()
				e.x[[2]int{n, t}] = v
				all = append(all, v)
			}
		}
		s.AddClause(all...) // at least one
		for i := 0; i < len(all); i++ {
			for j := i + 1; j < len(all); j++ {
				s.AddClause(all[i].Neg(), all[j].Neg())
			}
		}
	}

	// Wire variables within edge windows.
	for eid := range g.Edges {
		lo, hi := e.edgeRows(eid)
		for y := lo; y <= hi; y++ {
			if y < 1 || y > e.h-2 {
				continue
			}
			for xx := 0; xx < e.w; xx++ {
				t := e.tileIdx(hexgrid.Offset{X: xx, Y: y})
				e.we[[2]int{eid, t}] = s.NewVar()
			}
		}
	}

	// emit / outSW / arrNW / arrNE variables where meaningful.
	for eid, ed := range g.Edges {
		// Emission sites: wire tiles of e plus placement tiles of src.
		addEmit := func(t int) {
			key := [2]int{eid, t}
			if _, ok := e.emit[key]; ok {
				return
			}
			e.emit[key] = s.NewVar()
			e.outSW[key] = s.NewVar()
		}
		for key := range e.we {
			if key[0] == eid {
				addEmit(key[1])
			}
		}
		lo, hi := e.nodeRows(ed.Src)
		for y := lo; y <= hi; y++ {
			for xx := 0; xx < e.w; xx++ {
				addEmit(e.tileIdx(hexgrid.Offset{X: xx, Y: y}))
			}
		}
		// Arrival sites: wire tiles plus placement tiles of dst.
		addArr := func(t int) {
			key := [2]int{eid, t}
			if _, ok := e.arrNW[key]; ok {
				return
			}
			e.arrNW[key] = s.NewVar()
			e.arrNE[key] = s.NewVar()
		}
		for key := range e.we {
			if key[0] == eid {
				addArr(key[1])
			}
		}
		lo, hi = e.nodeRows(ed.Dst)
		for y := lo; y <= hi; y++ {
			for xx := 0; xx < e.w; xx++ {
				addArr(e.tileIdx(hexgrid.Offset{X: xx, Y: y}))
			}
		}
	}

	// emit semantics: emit[e,t] -> we[e,t] | x[src,t]; we -> emit; x -> emit.
	for key, em := range e.emit {
		eid, t := key[0], key[1]
		ed := g.Edges[eid]
		weL := litOrFalse(e.we, key, e.lFalse)
		xL := litOrFalse(e.x, [2]int{ed.Src, t}, e.lFalse)
		s.AddClause(em.Neg(), weL, xL)
		if weL != e.lFalse {
			s.AddClause(weL.Neg(), em)
		}
		if xL != e.lFalse {
			s.AddClause(xL.Neg(), em)
		}
		// Fixed out sides for two-output sources: port 0 -> SW, port 1 -> SE.
		if g.Nodes[ed.Src].Func.NumOuts() == 2 && xL != e.lFalse {
			if ed.SrcPort == 0 {
				s.AddClause(xL.Neg(), e.outSW[key])
			} else {
				s.AddClause(xL.Neg(), e.outSW[key].Neg())
			}
		}
	}

	// Arrival semantics: arrNW[e,t] -> parentNW emits e via SE;
	// arrNE[e,t] -> parentNE emits e via SW.
	for key, aNW := range e.arrNW {
		eid, t := key[0], key[1]
		at := e.tileAt(t)
		aNE := e.arrNE[key]
		pNW := at.Neighbor(hexgrid.NorthWest)
		pNE := at.Neighbor(hexgrid.NorthEast)
		if !e.inGrid(pNW) {
			s.AddClause(aNW.Neg())
		} else {
			pKey := [2]int{eid, e.tileIdx(pNW)}
			em := litOrFalse(e.emit, pKey, e.lFalse)
			s.AddClause(aNW.Neg(), em)
			if em != e.lFalse {
				s.AddClause(aNW.Neg(), e.outSW[pKey].Neg()) // SE emission
			}
		}
		if !e.inGrid(pNE) {
			s.AddClause(aNE.Neg())
		} else {
			pKey := [2]int{eid, e.tileIdx(pNE)}
			em := litOrFalse(e.emit, pKey, e.lFalse)
			s.AddClause(aNE.Neg(), em)
			if em != e.lFalse {
				s.AddClause(aNE.Neg(), e.outSW[pKey]) // SW emission
			}
		}
	}

	// Wire continuation.
	for key, weL := range e.we {
		s.AddClause(weL.Neg(), e.arrNW[key], e.arrNE[key])
	}

	// Forward consumption: every emission must be absorbed by the tile it
	// points at (as a wire or as the destination node), otherwise the
	// layout would contain dangling output ports.
	for key, em := range e.emit {
		eid, t := key[0], key[1]
		ed := g.Edges[eid]
		at := e.tileAt(t)
		cSW := at.Neighbor(hexgrid.SouthWest)
		cSE := at.Neighbor(hexgrid.SouthEast)
		consume := func(child hexgrid.Offset) sat.Lit {
			if !e.inGrid(child) {
				return e.lFalse
			}
			ct := e.tileIdx(child)
			weL := litOrFalse(e.we, [2]int{eid, ct}, e.lFalse)
			xL := litOrFalse(e.x, [2]int{ed.Dst, ct}, e.lFalse)
			if weL == e.lFalse && xL == e.lFalse {
				return e.lFalse
			}
			// Aux literal: child consumes e.
			aux := s.NewVar()
			s.AddClause(aux.Neg(), weL, xL)
			return aux
		}
		swC := consume(cSW)
		seC := consume(cSE)
		// emit & outSW -> swC ; emit & !outSW -> seC.
		s.AddClause(em.Neg(), e.outSW[key].Neg(), swC)
		s.AddClause(em.Neg(), e.outSW[key], seC)
	}

	// Consumer arrival with port-side assignment.
	for n, nd := range g.Nodes {
		if nd.Func.NumIns() == 0 {
			continue
		}
		lo, hi := e.nodeRows(n)
		var sw sat.Lit
		if nd.Func.NumIns() == 2 {
			sw = s.NewVar()
			e.swapVar[n] = sw
		}
		for y := lo; y <= hi; y++ {
			for xx := 0; xx < e.w; xx++ {
				t := e.tileIdx(hexgrid.Offset{X: xx, Y: y})
				xL := e.x[[2]int{n, t}]
				if nd.Func.NumIns() == 1 {
					eid := nd.In[0]
					s.AddClause(xL.Neg(), e.arrNW[[2]int{eid, t}], e.arrNE[[2]int{eid, t}])
					continue
				}
				e0, e1 := nd.In[0], nd.In[1]
				// !sw: e0 via NW, e1 via NE; sw: e0 via NE, e1 via NW.
				s.AddClause(xL.Neg(), sw, e.arrNW[[2]int{e0, t}])
				s.AddClause(xL.Neg(), sw, e.arrNE[[2]int{e1, t}])
				s.AddClause(xL.Neg(), sw.Neg(), e.arrNE[[2]int{e0, t}])
				s.AddClause(xL.Neg(), sw.Neg(), e.arrNW[[2]int{e1, t}])
			}
		}
	}

	// Tile capacity.
	nTiles := e.w * e.h
	e.nodeAt = make([]sat.Lit, nTiles)
	for t := 0; t < nTiles; t++ {
		e.nodeAt[t] = s.NewVar()
	}
	// Node placements exclude each other and imply nodeAt.
	byTile := map[int][]sat.Lit{}
	for key, xL := range e.x {
		byTile[key[1]] = append(byTile[key[1]], xL)
		s.AddClause(xL.Neg(), e.nodeAt[key[1]])
	}
	for t, lits := range byTile {
		_ = t
		for i := 0; i < len(lits); i++ {
			for j := i + 1; j < len(lits); j++ {
				s.AddClause(lits[i].Neg(), lits[j].Neg())
			}
		}
	}
	// Wires exclude nodes; at most two wires per tile (sequential counter).
	wByTile := map[int][]int{}
	for key := range e.we {
		wByTile[key[1]] = append(wByTile[key[1]], key[0])
	}
	for t, eids := range wByTile {
		sort.Ints(eids)
		var lits []sat.Lit
		for _, eid := range eids {
			weL := e.we[[2]int{eid, t}]
			s.AddClause(weL.Neg(), e.nodeAt[t].Neg())
			lits = append(lits, weL)
		}
		atMostTwo(s, lits)
		// Crossing consistency for co-located wire pairs.
		for i := 0; i < len(eids); i++ {
			for j := i + 1; j < len(eids); j++ {
				k1 := [2]int{eids[i], t}
				k2 := [2]int{eids[j], t}
				w1, w2 := e.we[k1], e.we[k2]
				// Input sides must differ.
				s.AddClause(w1.Neg(), w2.Neg(), e.arrNW[k1].Neg(), e.arrNW[k2].Neg())
				s.AddClause(w1.Neg(), w2.Neg(), e.arrNE[k1].Neg(), e.arrNE[k2].Neg())
				// Straight crossing: NW in -> SE out; NE in -> SW out.
				for _, k := range [][2]int{k1, k2} {
					other := w2
					if k == k2 {
						other = w1
					}
					self := e.we[k]
					s.AddClause(self.Neg(), other.Neg(), e.arrNW[k].Neg(), e.outSW[k].Neg())
					s.AddClause(self.Neg(), other.Neg(), e.arrNE[k].Neg(), e.outSW[k])
				}
			}
		}
	}

	// Defect blocking: afflicted tiles host neither nodes nor wires. Unit
	// clauses let propagation kill them before any search.
	if e.blocked != nil {
		bl := make([]bool, nTiles)
		for t := 0; t < nTiles; t++ {
			bl[t] = e.blocked(e.tileAt(t))
		}
		for key, xL := range e.x {
			if bl[key[1]] {
				s.AddClause(xL.Neg())
			}
		}
		for key, weL := range e.we {
			if bl[key[1]] {
				s.AddClause(weL.Neg())
			}
		}
	}

	// PI and PO ordering along their rows (for positional EC).
	orderRow := func(ids []int, row int) {
		for a := 0; a < len(ids); a++ {
			for b := a + 1; b < len(ids); b++ {
				// id[a] must be strictly left of id[b].
				for xa := 0; xa < e.w; xa++ {
					for xb := 0; xb <= xa; xb++ {
						la := e.x[[2]int{ids[a], e.tileIdx(hexgrid.Offset{X: xa, Y: row})}]
						lb := e.x[[2]int{ids[b], e.tileIdx(hexgrid.Offset{X: xb, Y: row})}]
						s.AddClause(la.Neg(), lb.Neg())
					}
				}
			}
		}
	}
	orderRow(g.PIs, 0)
	orderRow(g.POs, e.h-1)
}

// atMostTwo emits a sequential-counter encoding of sum(lits) <= 2.
func atMostTwo(s *sat.Solver, lits []sat.Lit) {
	n := len(lits)
	if n <= 2 {
		return
	}
	// s1[i]: at least one of lits[0..i]; s2[i]: at least two.
	s1 := make([]sat.Lit, n)
	s2 := make([]sat.Lit, n)
	for i := 0; i < n; i++ {
		s1[i] = s.NewVar()
		s2[i] = s.NewVar()
	}
	s.AddClause(lits[0].Neg(), s1[0])
	s.AddClause(s2[0].Neg())
	for i := 1; i < n; i++ {
		s.AddClause(s1[i-1].Neg(), s1[i])
		s.AddClause(lits[i].Neg(), s1[i])
		s.AddClause(s2[i-1].Neg(), s2[i])
		s.AddClause(lits[i].Neg(), s1[i-1].Neg(), s2[i])
		// Forbid a third: lits[i] with s2[i-1] already true.
		s.AddClause(lits[i].Neg(), s2[i-1].Neg())
	}
}

// decode reads the model into a layout.
func (e *exactEncoder) decode() (*gatelayout.Layout, error) {
	g, s := e.g, e.s
	l := gatelayout.New(g.Name, e.w, e.h, clocking.RowBased{})

	type tileInfo struct {
		node  int
		wires []int
	}
	tiles := map[int]*tileInfo{}
	info := func(t int) *tileInfo {
		ti, ok := tiles[t]
		if !ok {
			ti = &tileInfo{node: -1}
			tiles[t] = ti
		}
		return ti
	}
	for key, xL := range e.x {
		if s.Value(xL) {
			ti := info(key[1])
			if ti.node != -1 {
				return nil, fmt.Errorf("two nodes on one tile")
			}
			ti.node = key[0]
		}
	}
	for key, weL := range e.we {
		if s.Value(weL) {
			info(key[1]).wires = append(info(key[1]).wires, key[0])
		}
	}

	inDirOf := func(eid, t int) hexgrid.Direction {
		if s.Value(e.arrNW[[2]int{eid, t}]) {
			return hexgrid.NorthWest
		}
		return hexgrid.NorthEast
	}
	outDirOf := func(eid, t int) hexgrid.Direction {
		if s.Value(e.outSW[[2]int{eid, t}]) {
			return hexgrid.SouthWest
		}
		return hexgrid.SouthEast
	}

	for t, ti := range tiles {
		at := e.tileAt(t)
		switch {
		case ti.node >= 0:
			nd := g.Nodes[ti.node]
			tile := gatelayout.Tile{Func: nd.Func, Name: nd.Name}
			switch nd.Func.NumIns() {
			case 1:
				tile.Ins = []hexgrid.Direction{inDirOf(nd.In[0], t)}
			case 2:
				tile.Ins = []hexgrid.Direction{hexgrid.NorthWest, hexgrid.NorthEast}
			}
			switch nd.Func.NumOuts() {
			case 1:
				tile.Outs = []hexgrid.Direction{outDirOf(nd.Out[0], t)}
			case 2:
				tile.Outs = []hexgrid.Direction{hexgrid.SouthWest, hexgrid.SouthEast}
			}
			if err := l.Set(at, tile); err != nil {
				return nil, err
			}
		case len(ti.wires) == 1:
			eid := ti.wires[0]
			in := inDirOf(eid, t)
			out := outDirOf(eid, t)
			fn := gates.Wire
			if (in == hexgrid.NorthWest && out == hexgrid.SouthWest) ||
				(in == hexgrid.NorthEast && out == hexgrid.SouthEast) {
				fn = gates.DiagWire
			}
			if err := l.Set(at, gatelayout.Tile{
				Func: fn,
				Ins:  []hexgrid.Direction{in},
				Outs: []hexgrid.Direction{out},
			}); err != nil {
				return nil, err
			}
		case len(ti.wires) == 2:
			if err := l.Set(at, gatelayout.Tile{
				Func: gates.Crossing,
				Ins:  []hexgrid.Direction{hexgrid.NorthWest, hexgrid.NorthEast},
				Outs: []hexgrid.Direction{hexgrid.SouthWest, hexgrid.SouthEast},
			}); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("tile with %d wires", len(ti.wires))
		}
	}
	return l, nil
}
