package pnr

import (
	"testing"

	"repro/internal/gates"
	"repro/internal/logic/bench"
	"repro/internal/logic/mapping"
	"repro/internal/logic/network"
)

func mapBench(t *testing.T, name string) (*network.XAG, *mapping.Net) {
	t.Helper()
	x, err := bench.Load(name)
	if err != nil {
		t.Fatal(err)
	}
	m, err := mapping.Map(x)
	if err != nil {
		t.Fatal(err)
	}
	return x, m
}

func TestExpandSingleConsumer(t *testing.T) {
	_, m := mapBench(t, "xor2")
	g, err := Expand(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, nd := range g.Nodes {
		if nd.Func == gates.Fanout {
			t.Error("xor2 needs no fanouts")
		}
	}
}

func TestExpandInsertsFanouts(t *testing.T) {
	_, m := mapBench(t, "c17")
	g, err := Expand(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	fo := 0
	for _, nd := range g.Nodes {
		if nd.Func == gates.Fanout {
			fo++
		}
	}
	if fo == 0 {
		t.Error("c17 has multi-fanout signals; expansion must insert fanouts")
	}
	// Every output port feeds exactly one consumer after expansion.
	seen := map[[2]int]int{}
	for _, e := range g.Edges {
		seen[[2]int{e.Src, e.SrcPort}]++
	}
	for k, n := range seen {
		if n != 1 {
			t.Errorf("output %v has %d consumers after expansion", k, n)
		}
	}
}

func TestExpandLevelsMonotone(t *testing.T) {
	_, m := mapBench(t, "par_check")
	g, err := Expand(m)
	if err != nil {
		t.Fatal(err)
	}
	lv := g.Levels()
	for _, e := range g.Edges {
		if lv[e.Dst] <= lv[e.Src] {
			t.Errorf("edge %d->%d levels %d -> %d not increasing", e.Src, e.Dst, lv[e.Src], lv[e.Dst])
		}
	}
}

// routeAndCheck runs the whole ortho pipeline for a benchmark and validates
// DRC cleanliness plus functional equivalence by exhaustive simulation.
func routeAndCheck(t *testing.T, name string) {
	t.Helper()
	x, m := mapBench(t, name)
	g, err := Expand(m)
	if err != nil {
		t.Fatalf("%s: expand: %v", name, err)
	}
	l, err := Ortho(g, nil)
	if err != nil {
		t.Fatalf("%s: ortho: %v", name, err)
	}
	if v := l.Check(nil); len(v) != 0 {
		t.Fatalf("%s: %d DRC violations, first: %v\n%s", name, len(v), v[0], l.Render())
	}
	if got, want := len(l.PIs()), x.NumPIs(); got != want {
		t.Fatalf("%s: %d PI tiles, want %d", name, got, want)
	}
	if got, want := len(l.POs()), x.NumPOs(); got != want {
		t.Fatalf("%s: %d PO tiles, want %d", name, got, want)
	}
	for in := uint32(0); in < 1<<x.NumPIs(); in++ {
		if got, want := l.Simulate(in), x.Simulate(in); got != want {
			t.Fatalf("%s: layout(%b) = %b, spec %b\n%s", name, in, got, want, l.Render())
		}
	}
}

func TestOrthoXor2(t *testing.T)     { routeAndCheck(t, "xor2") }
func TestOrthoXnor2(t *testing.T)    { routeAndCheck(t, "xnor2") }
func TestOrthoParGen(t *testing.T)   { routeAndCheck(t, "par_gen") }
func TestOrthoMux21(t *testing.T)    { routeAndCheck(t, "mux21") }
func TestOrthoParCheck(t *testing.T) { routeAndCheck(t, "par_check") }
func TestOrthoC17(t *testing.T)      { routeAndCheck(t, "c17") }

func TestOrthoAllBenchmarks(t *testing.T) {
	for _, name := range bench.Names() {
		name := name
		t.Run(name, func(t *testing.T) { routeAndCheck(t, name) })
	}
}

func TestOrthoBalancedPaths(t *testing.T) {
	// Row-based fabric: every PI->PO path crosses every row once, so all
	// POs are on the last row and all PIs on row 0.
	_, m := mapBench(t, "c17")
	g, err := Expand(m)
	if err != nil {
		t.Fatal(err)
	}
	l, err := Ortho(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, at := range l.PIs() {
		if at.Y != 0 {
			t.Errorf("PI at row %d, want 0", at.Y)
		}
	}
	last := l.Height() - 1
	for _, at := range l.POs() {
		if at.Y != last {
			t.Errorf("PO at row %d, want %d", at.Y, last)
		}
	}
}

func TestOrthoPOOrderMatchesSpec(t *testing.T) {
	x, m := mapBench(t, "cm82a_5")
	g, err := Expand(m)
	if err != nil {
		t.Fatal(err)
	}
	l, err := Ortho(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	pos := l.POs()
	for i, at := range pos {
		tile, _ := l.At(at)
		if tile.Name != x.POName(i) {
			t.Errorf("PO %d is %q, want %q", i, tile.Name, x.POName(i))
		}
	}
}

func TestOrthoExtractNetworkEquivalent(t *testing.T) {
	x, m := mapBench(t, "par_check")
	g, err := Expand(m)
	if err != nil {
		t.Fatal(err)
	}
	l, err := Ortho(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := l.ExtractNetwork()
	if err != nil {
		t.Fatal(err)
	}
	if ex.NumPIs() != x.NumPIs() || ex.NumPOs() != x.NumPOs() {
		t.Fatal("extracted interface mismatch")
	}
	for in := uint32(0); in < 1<<x.NumPIs(); in++ {
		if ex.Simulate(in) != x.Simulate(in) {
			t.Fatalf("extracted network differs at %b", in)
		}
	}
}

func exactAndCheck(t *testing.T, name string, opts ExactOptions) *RGraph {
	t.Helper()
	x, m := mapBench(t, name)
	g, err := Expand(m)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	l, err := Exact(g, opts)
	if err != nil {
		t.Fatalf("%s: exact: %v", name, err)
	}
	if v := l.Check(nil); len(v) != 0 {
		t.Fatalf("%s: %d DRC violations, first: %v\n%s", name, len(v), v[0], l.Render())
	}
	for in := uint32(0); in < 1<<x.NumPIs(); in++ {
		if got, want := l.Simulate(in), x.Simulate(in); got != want {
			t.Fatalf("%s: exact layout(%b) = %b, spec %b\n%s", name, in, got, want, l.Render())
		}
	}
	t.Logf("%s: exact %dx%d = %d tiles", name, l.Width(), l.Height(), l.Area())
	return g
}

func TestExactXor2(t *testing.T)   { exactAndCheck(t, "xor2", ExactOptions{}) }
func TestExactParGen(t *testing.T) { exactAndCheck(t, "par_gen", ExactOptions{}) }

func TestExactBeatsOrthoOnArea(t *testing.T) {
	g := exactAndCheck(t, "xor2", ExactOptions{})
	le, err := Exact(g, ExactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	lo, err := Ortho(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if le.Area() > lo.Area() {
		t.Errorf("exact area %d worse than ortho %d", le.Area(), lo.Area())
	}
}

func TestExactMux21(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	exactAndCheck(t, "mux21", ExactOptions{})
}

func TestExactXnor2(t *testing.T) { exactAndCheck(t, "xnor2", ExactOptions{}) }
