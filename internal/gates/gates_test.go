package gates

import "testing"

func TestPortCounts(t *testing.T) {
	cases := map[Func][2]int{
		Wire: {1, 1}, DiagWire: {1, 1}, Inv: {1, 1},
		Fanout: {1, 2}, Crossing: {2, 2}, HalfAdder: {2, 2},
		And: {2, 1}, Or: {2, 1}, Nand: {2, 1}, Nor: {2, 1},
		Xor: {2, 1}, Xnor: {2, 1},
		PI: {0, 1}, PO: {1, 0}, None: {0, 0},
	}
	for f, want := range cases {
		if f.NumIns() != want[0] || f.NumOuts() != want[1] {
			t.Errorf("%v: ports (%d,%d), want (%d,%d)", f, f.NumIns(), f.NumOuts(), want[0], want[1])
		}
	}
}

func TestEvalTruthTables(t *testing.T) {
	two := func(f Func, tt [4]bool) {
		for i := 0; i < 4; i++ {
			in := []bool{i&1 == 1, i>>1&1 == 1}
			if got := f.Eval(in)[0]; got != tt[i] {
				t.Errorf("%v(%v) = %v, want %v", f, in, got, tt[i])
			}
		}
	}
	two(And, [4]bool{false, false, false, true})
	two(Or, [4]bool{false, true, true, true})
	two(Nand, [4]bool{true, true, true, false})
	two(Nor, [4]bool{true, false, false, false})
	two(Xor, [4]bool{false, true, true, false})
	two(Xnor, [4]bool{true, false, false, true})

	if got := Inv.Eval([]bool{true})[0]; got {
		t.Error("Inv(1) must be 0")
	}
	if got := Wire.Eval([]bool{true})[0]; !got {
		t.Error("Wire(1) must be 1")
	}
}

func TestEvalMultiOutput(t *testing.T) {
	fo := Fanout.Eval([]bool{true})
	if !fo[0] || !fo[1] {
		t.Error("Fanout(1) must duplicate")
	}
	// Crossing: out0 (SW) carries in1 (NE); out1 (SE) carries in0 (NW).
	cr := Crossing.Eval([]bool{true, false})
	if cr[0] != false || cr[1] != true {
		t.Errorf("Crossing(1,0) = %v, want [false true]", cr)
	}
	ha := HalfAdder.Eval([]bool{true, true})
	if ha[0] != false || ha[1] != true {
		t.Errorf("HA(1,1) = %v, want sum=0 carry=1", ha)
	}
}

func TestClassification(t *testing.T) {
	for _, f := range []Func{Inv, And, Or, Nand, Nor, Xor, Xnor, HalfAdder} {
		if !f.IsGate() {
			t.Errorf("%v must be a gate", f)
		}
	}
	for _, f := range []Func{Wire, DiagWire, Fanout, Crossing} {
		if !f.IsRouting() || f.IsGate() {
			t.Errorf("%v must be routing-only", f)
		}
	}
	if PI.IsGate() || PO.IsGate() || PI.IsRouting() {
		t.Error("I/O pins are neither gates nor routing")
	}
}

func TestAllAndTwoInput(t *testing.T) {
	if len(All()) != 14 {
		t.Errorf("All() = %d funcs, want 14", len(All()))
	}
	if len(TwoInputGates()) != 6 {
		t.Error("six 2-input Boolean gates expected")
	}
	for _, f := range TwoInputGates() {
		if f.NumIns() != 2 || f.NumOuts() != 1 {
			t.Errorf("%v is not 2-in-1-out", f)
		}
	}
}

func TestStringNames(t *testing.T) {
	for _, f := range All() {
		if f.String() == "" || f.String()[0] == 'F' && f != Fanout {
			t.Errorf("%v has suspicious name %q", int(f), f.String())
		}
	}
}
