// Package gates defines the tile functions of the Bestagon standard-tile
// library: the Boolean operation each hexagonal tile implements, its port
// counts, and evaluation semantics. It is shared by technology mapping,
// gate-level layout, physical design, and the dot-accurate gate library.
//
// The paper's library (§4.1) offers templates for 1-in-1-out, 1-in-2-out,
// 2-in-1-out and 2-in-2-out tiles: wires (vertical, diagonal, two parallel
// verticals), wire crossings, fan-outs, single-tile half adders, inverters
// (straight and diagonal), and the 2-in-1-out gates OR, AND, NOR, NAND,
// XOR, and XNOR.
package gates

import "fmt"

// Func identifies the Boolean function of a Bestagon tile.
type Func uint8

// The tile functions of the Bestagon library.
const (
	None      Func = iota // empty tile
	Wire                  // 1-in-1-out straight (NW->SE or NE->SW) wire
	DiagWire              // 1-in-1-out diagonal (NW->SW or NE->SE) wire
	Inv                   // 1-in-1-out inverter
	Fanout                // 1-in-2-out fan-out
	Crossing              // 2-in-2-out wire crossing (NW->SE and NE->SW)
	And                   // 2-in-1-out AND
	Or                    // 2-in-1-out OR
	Nand                  // 2-in-1-out NAND
	Nor                   // 2-in-1-out NOR
	Xor                   // 2-in-1-out XOR
	Xnor                  // 2-in-1-out XNOR
	HalfAdder             // 2-in-2-out half adder (sum = XOR, carry = AND)
	PI                    // primary-input pin tile
	PO                    // primary-output pin tile
	numFuncs
)

// String names the function.
func (f Func) String() string {
	switch f {
	case None:
		return "none"
	case Wire:
		return "wire"
	case DiagWire:
		return "diag"
	case Inv:
		return "inv"
	case Fanout:
		return "fanout"
	case Crossing:
		return "crossing"
	case And:
		return "and"
	case Or:
		return "or"
	case Nand:
		return "nand"
	case Nor:
		return "nor"
	case Xor:
		return "xor"
	case Xnor:
		return "xnor"
	case HalfAdder:
		return "ha"
	case PI:
		return "pi"
	case PO:
		return "po"
	default:
		return fmt.Sprintf("Func(%d)", uint8(f))
	}
}

// NumIns returns the number of input ports of the tile function.
func (f Func) NumIns() int {
	switch f {
	case None, PI:
		return 0
	case Wire, DiagWire, Inv, Fanout, PO:
		return 1
	default:
		return 2
	}
}

// NumOuts returns the number of output ports of the tile function.
func (f Func) NumOuts() int {
	switch f {
	case None, PO:
		return 0
	case Fanout, Crossing, HalfAdder:
		return 2
	default:
		return 1
	}
}

// IsGate reports whether the function computes logic (as opposed to routing
// or I/O).
func (f Func) IsGate() bool {
	switch f {
	case Inv, And, Or, Nand, Nor, Xor, Xnor, HalfAdder:
		return true
	default:
		return false
	}
}

// IsRouting reports whether the function only moves signals.
func (f Func) IsRouting() bool {
	switch f {
	case Wire, DiagWire, Fanout, Crossing:
		return true
	default:
		return false
	}
}

// Eval computes the tile outputs for the given inputs. Inputs and outputs
// are ordered: input 0 arrives at the NW port, input 1 at NE; output 0
// leaves at SW, output 1 at SE (single-port tiles use the port their layout
// variant selects; evaluation order is positional).
func (f Func) Eval(in []bool) []bool {
	switch f {
	case Wire, DiagWire, PO:
		return []bool{in[0]}
	case Inv:
		return []bool{!in[0]}
	case Fanout:
		return []bool{in[0], in[0]}
	case Crossing:
		// NW->SE and NE->SW: output 0 (SW) carries input 1 (NE).
		return []bool{in[1], in[0]}
	case And:
		return []bool{in[0] && in[1]}
	case Or:
		return []bool{in[0] || in[1]}
	case Nand:
		return []bool{!(in[0] && in[1])}
	case Nor:
		return []bool{!(in[0] || in[1])}
	case Xor:
		return []bool{in[0] != in[1]}
	case Xnor:
		return []bool{in[0] == in[1]}
	case HalfAdder:
		return []bool{in[0] != in[1], in[0] && in[1]}
	default:
		return nil
	}
}

// All lists every real tile function (excluding None).
func All() []Func {
	out := make([]Func, 0, int(numFuncs)-1)
	for f := Wire; f < numFuncs; f++ {
		out = append(out, f)
	}
	return out
}

// TwoInputGates lists the 2-in-1-out Boolean gates of the library.
func TwoInputGates() []Func {
	return []Func{And, Or, Nand, Nor, Xor, Xnor}
}
