package network

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConstRules(t *testing.T) {
	x := New()
	a := x.NewPI("a")
	if got := x.And(a, x.Const(false)); got != x.Const(false) {
		t.Errorf("a AND 0 = %v", got)
	}
	if got := x.And(x.Const(true), a); got != a {
		t.Errorf("1 AND a = %v", got)
	}
	if got := x.And(a, a); got != a {
		t.Errorf("a AND a = %v", got)
	}
	if got := x.And(a, a.Not()); got != x.Const(false) {
		t.Errorf("a AND !a = %v", got)
	}
	if got := x.Xor(a, x.Const(false)); got != a {
		t.Errorf("a XOR 0 = %v", got)
	}
	if got := x.Xor(a, x.Const(true)); got != a.Not() {
		t.Errorf("a XOR 1 = %v", got)
	}
	if got := x.Xor(a, a); got != x.Const(false) {
		t.Errorf("a XOR a = %v", got)
	}
	if got := x.Xor(a, a.Not()); got != x.Const(true) {
		t.Errorf("a XOR !a = %v", got)
	}
}

func TestStructuralHashing(t *testing.T) {
	x := New()
	a, b := x.NewPI("a"), x.NewPI("b")
	g1 := x.And(a, b)
	g2 := x.And(b, a)
	if g1 != g2 {
		t.Error("AND must be hashed commutatively")
	}
	x1 := x.Xor(a, b)
	x2 := x.Xor(b, a)
	if x1 != x2 {
		t.Error("XOR must be hashed commutatively")
	}
	// XOR complement normalization: !a ^ b == !(a ^ b) shares the node.
	x3 := x.Xor(a.Not(), b)
	if x3 != x1.Not() {
		t.Errorf("XOR complement normalization broken: %v vs %v", x3, x1.Not())
	}
	if x.NumGates() != 2 {
		t.Errorf("gate count %d, want 2", x.NumGates())
	}
}

func TestSignalPacking(t *testing.T) {
	f := func(n uint16, neg bool) bool {
		s := MakeSignal(int(n), neg)
		return s.Node() == int(n) && s.Neg() == neg && s.Not().Neg() != neg && s.Not().Node() == int(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func buildFullAdder(x *XAG) (sum, carry Signal) {
	a, b, cin := x.NewPI("a"), x.NewPI("b"), x.NewPI("cin")
	sum = x.Xor(x.Xor(a, b), cin)
	carry = x.Maj(a, b, cin)
	return sum, carry
}

func TestFullAdderSimulation(t *testing.T) {
	x := New()
	sum, carry := buildFullAdder(x)
	x.NewPO(sum, "s")
	x.NewPO(carry, "cout")
	for in := uint32(0); in < 8; in++ {
		pop := in&1 + in>>1&1 + in>>2&1
		out := x.Simulate(in)
		gotSum := out & 1
		gotCarry := out >> 1 & 1
		if gotSum != pop&1 || gotCarry != pop>>1 {
			t.Errorf("FA(%03b): sum=%d carry=%d, pop=%d", in, gotSum, gotCarry, pop)
		}
	}
}

func TestTruthTables(t *testing.T) {
	x := New()
	sum, carry := buildFullAdder(x)
	x.NewPO(sum, "s")
	x.NewPO(carry, "cout")
	tabs := x.TruthTables()
	if tabs[0].Hex() != "96" {
		t.Errorf("sum table = %s, want 96", tabs[0].Hex())
	}
	if tabs[1].Hex() != "e8" {
		t.Errorf("carry table = %s, want e8", tabs[1].Hex())
	}
}

func TestSimulateMatchesTruthTables(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 20; trial++ {
		x := randomXAG(rng, 4, 12, 2)
		tabs := x.TruthTables()
		for in := uint32(0); in < 16; in++ {
			out := x.Simulate(in)
			for po := range tabs {
				if tabs[po].Eval(in) != ((out>>po)&1 == 1) {
					t.Fatalf("simulate/tt mismatch trial %d in %04b po %d", trial, in, po)
				}
			}
		}
	}
}

// randomXAG builds a random network for property tests.
func randomXAG(rng *rand.Rand, nPIs, nGates, nPOs int) *XAG {
	x := New()
	sigs := []Signal{x.Const(false)}
	for i := 0; i < nPIs; i++ {
		sigs = append(sigs, x.NewPI(""))
	}
	for i := 0; i < nGates; i++ {
		a := sigs[rng.Intn(len(sigs))].NotIf(rng.Intn(2) == 1)
		b := sigs[rng.Intn(len(sigs))].NotIf(rng.Intn(2) == 1)
		var g Signal
		if rng.Intn(2) == 0 {
			g = x.And(a, b)
		} else {
			g = x.Xor(a, b)
		}
		sigs = append(sigs, g)
	}
	for i := 0; i < nPOs; i++ {
		x.NewPO(sigs[len(sigs)-1-i%len(sigs)].NotIf(rng.Intn(2) == 1), "")
	}
	return x
}

func TestLevels(t *testing.T) {
	x := New()
	a, b, c := x.NewPI("a"), x.NewPI("b"), x.NewPI("c")
	g1 := x.And(a, b)
	g2 := x.Xor(g1, c)
	x.NewPO(g2, "o")
	levels, depth := x.Levels()
	if depth != 2 {
		t.Errorf("depth = %d, want 2", depth)
	}
	if levels[g1.Node()] != 1 || levels[g2.Node()] != 2 {
		t.Errorf("levels wrong: %v", levels)
	}
}

func TestFanoutCounts(t *testing.T) {
	x := New()
	a, b := x.NewPI("a"), x.NewPI("b")
	g := x.And(a, b)
	o1 := x.Xor(g, a)
	x.NewPO(o1, "o1")
	x.NewPO(g, "o2")
	fo := x.FanoutCounts()
	if fo[g.Node()] != 2 {
		t.Errorf("fanout of g = %d, want 2 (one gate + one PO)", fo[g.Node()])
	}
	if fo[a.Node()] != 2 {
		t.Errorf("fanout of a = %d, want 2", fo[a.Node()])
	}
}

func TestCleanupRemovesDanglingAndPreservesFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 20; trial++ {
		x := randomXAG(rng, 4, 15, 2)
		// Add dangling logic.
		d := x.And(x.PI(0), x.PI(1).Not())
		_ = x.Xor(d, x.PI(2))
		before := x.TruthTables()
		c := x.Cleanup()
		after := c.TruthTables()
		if c.NumPIs() != x.NumPIs() || c.NumPOs() != x.NumPOs() {
			t.Fatal("cleanup changed interface")
		}
		if c.NumGates() > x.NumGates() {
			t.Fatal("cleanup grew the network")
		}
		for i := range before {
			if !before[i].Equal(after[i]) {
				t.Fatalf("cleanup changed function of PO %d", i)
			}
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	x := New()
	a, b := x.NewPI("a"), x.NewPI("b")
	x.NewPO(x.And(a, b), "o")
	c := x.Clone()
	c.NewPO(c.Xor(a, b), "o2")
	if x.NumPOs() != 1 || c.NumPOs() != 2 {
		t.Error("clone must be independent")
	}
}

func TestMuxAndMaj(t *testing.T) {
	x := New()
	s, a, b := x.NewPI("s"), x.NewPI("a"), x.NewPI("b")
	x.NewPO(x.Mux(s, a, b), "mux")
	tabs := x.TruthTables()
	// mux(s,a,b): s is var0, a var1, b var2 -> s? a : b
	for in := uint32(0); in < 8; in++ {
		sel := in&1 == 1
		av := in>>1&1 == 1
		bv := in>>2&1 == 1
		want := bv
		if sel {
			want = av
		}
		if tabs[0].Eval(in) != want {
			t.Errorf("mux(%03b) = %v, want %v", in, tabs[0].Eval(in), want)
		}
	}

	y := New()
	p, q, r := y.NewPI("p"), y.NewPI("q"), y.NewPI("r")
	y.NewPO(y.Maj(p, q, r), "maj")
	if got := y.TruthTables()[0].Hex(); got != "e8" {
		t.Errorf("maj = %s, want e8", got)
	}
}

func TestOrNandNorXnor(t *testing.T) {
	x := New()
	a, b := x.NewPI("a"), x.NewPI("b")
	x.NewPO(x.Or(a, b), "or")
	x.NewPO(x.Nand(a, b), "nand")
	x.NewPO(x.Nor(a, b), "nor")
	x.NewPO(x.Xnor(a, b), "xnor")
	tabs := x.TruthTables()
	want := []string{"e", "7", "1", "9"}
	for i, w := range want {
		if tabs[i].Hex() != w {
			t.Errorf("PO %d = %s, want %s", i, tabs[i].Hex(), w)
		}
	}
}

func TestStatsAndString(t *testing.T) {
	x := New()
	x.Name = "fa"
	s, c := buildFullAdder(x)
	x.NewPO(s, "s")
	x.NewPO(c, "c")
	st := x.Stats()
	if st.PIs != 3 || st.POs != 2 || st.Gates != st.Ands+st.Xors {
		t.Errorf("stats inconsistent: %+v", st)
	}
	if x.String() == "" {
		t.Error("String must not be empty")
	}
}

func TestTopoOrderProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	x := randomXAG(rng, 5, 30, 3)
	pos := make(map[int]int)
	for i, n := range x.TopoOrder() {
		pos[n] = i
	}
	for n := 1; n < x.NumNodes(); n++ {
		if k := x.Kind(n); k == KindAnd || k == KindXor {
			a, b := x.FanIns(n)
			if pos[a.Node()] >= pos[n] || pos[b.Node()] >= pos[n] {
				t.Fatalf("topo order violated at node %d", n)
			}
		}
	}
}

func TestPIIndex(t *testing.T) {
	x := New()
	a := x.NewPI("a")
	b := x.NewPI("b")
	if x.PIIndex(a.Node()) != 0 || x.PIIndex(b.Node()) != 1 {
		t.Error("PIIndex wrong")
	}
	if x.PIIndex(0) != -1 {
		t.Error("PIIndex of constant must be -1")
	}
	if x.PIName(0) != "a" || x.PIName(1) != "b" {
		t.Error("PI names wrong")
	}
}

func TestXorDeepComplementEquivalence(t *testing.T) {
	// Build the same function two ways and confirm the hash merges them.
	x := New()
	a, b, c := x.NewPI("a"), x.NewPI("b"), x.NewPI("c")
	f1 := x.Xor(x.Xor(a, b), c)
	f2 := x.Xor(a, x.Xor(b, c))
	x.NewPO(f1, "f1")
	x.NewPO(f2, "f2")
	tabs := x.TruthTables()
	if !tabs[0].Equal(tabs[1]) {
		t.Error("XOR associativity broken functionally")
	}
}

func TestToAIGPreservesFunction(t *testing.T) {
	x := New()
	a, b, c := x.NewPI("a"), x.NewPI("b"), x.NewPI("c")
	x.NewPO(x.Xor(x.Xor(a, b), c), "parity")
	x.NewPO(x.Maj(a, b, c), "maj")
	aig := x.ToAIG()
	if !aig.IsAIG() {
		t.Fatal("conversion left XOR nodes")
	}
	for in := uint32(0); in < 8; in++ {
		if aig.Simulate(in) != x.Simulate(in) {
			t.Fatalf("AIG differs at %03b", in)
		}
	}
	// Parity-heavy logic must grow under AIG decomposition.
	if aig.NumGates() <= x.NumGates() {
		t.Errorf("AIG (%d gates) not larger than XAG (%d)", aig.NumGates(), x.NumGates())
	}
}

func TestToAIGIdempotentOnPureAnd(t *testing.T) {
	x := New()
	a, b := x.NewPI("a"), x.NewPI("b")
	x.NewPO(x.And(a, b.Not()), "f")
	aig := x.ToAIG()
	if aig.NumGates() != x.NumGates() {
		t.Error("AND-only networks must not grow")
	}
}
