// Package network implements XOR-AND-Inverter Graphs (XAGs), the logic
// representation the Bestagon design flow synthesizes from (flow step 1).
//
// An XAG is a DAG whose internal nodes compute either the AND or the XOR of
// two fan-ins; inverters are encoded as complemented edges (signals). XAGs
// were chosen by the paper because the Bestagon library natively supports
// both AND and XOR tiles, making them more compact than AIGs for
// parity-heavy circuits. The implementation mirrors mockturtle's design:
// structural hashing, constant propagation, and complement normalization.
package network

import (
	"fmt"

	"repro/internal/logic/tt"
)

// NodeKind distinguishes the node types of an XAG.
type NodeKind uint8

// Node kinds. Constant and PI nodes have no fan-ins.
const (
	KindConst NodeKind = iota // the constant-0 node (always node 0)
	KindPI                    // primary input
	KindAnd                   // 2-input AND
	KindXor                   // 2-input XOR
)

// String names the node kind.
func (k NodeKind) String() string {
	switch k {
	case KindConst:
		return "const"
	case KindPI:
		return "pi"
	case KindAnd:
		return "and"
	case KindXor:
		return "xor"
	default:
		return fmt.Sprintf("NodeKind(%d)", uint8(k))
	}
}

// Signal is an edge in the XAG: a node index plus a complement flag packed
// into one word. The zero Signal is the constant 0.
type Signal uint32

// MakeSignal builds a signal from a node index and complement flag.
func MakeSignal(node int, neg bool) Signal {
	s := Signal(node) << 1
	if neg {
		s |= 1
	}
	return s
}

// Node returns the node index the signal points at.
func (s Signal) Node() int { return int(s >> 1) }

// Neg reports whether the signal is complemented.
func (s Signal) Neg() bool { return s&1 == 1 }

// Not returns the complemented signal.
func (s Signal) Not() Signal { return s ^ 1 }

// NotIf complements the signal iff c is true.
func (s Signal) NotIf(c bool) Signal {
	if c {
		return s ^ 1
	}
	return s
}

// String formats the signal as "n5" or "!n5".
func (s Signal) String() string {
	if s.Neg() {
		return fmt.Sprintf("!n%d", s.Node())
	}
	return fmt.Sprintf("n%d", s.Node())
}

// node is the internal node record.
type node struct {
	kind NodeKind
	fi   [2]Signal // fan-ins for And/Xor nodes
}

// XAG is a structurally hashed XOR-AND-Inverter graph.
type XAG struct {
	Name    string
	nodes   []node
	pis     []int             // node indices of primary inputs, in creation order
	pos     []Signal          // primary output signals
	poNames []string          // names parallel to pos ("" if unnamed)
	piNames []string          // names parallel to pis ("" if unnamed)
	hash    map[[2]Signal]int // structural hashing: fan-in pair -> node (AND)
	hashX   map[[2]Signal]int // structural hashing for XOR nodes
}

// New returns an empty XAG containing only the constant-0 node.
func New() *XAG {
	x := &XAG{
		nodes: []node{{kind: KindConst}},
		hash:  make(map[[2]Signal]int),
		hashX: make(map[[2]Signal]int),
	}
	return x
}

// Const returns the constant signal with value v.
func (x *XAG) Const(v bool) Signal { return MakeSignal(0, v) }

// IsConst reports whether the signal is one of the two constants, and its value.
func (x *XAG) IsConst(s Signal) (bool, bool) {
	return s.Node() == 0, s.Neg()
}

// NewPI appends a primary input with the given name and returns its signal.
func (x *XAG) NewPI(name string) Signal {
	idx := len(x.nodes)
	x.nodes = append(x.nodes, node{kind: KindPI})
	x.pis = append(x.pis, idx)
	x.piNames = append(x.piNames, name)
	return MakeSignal(idx, false)
}

// NewPO registers s as a primary output with the given name and returns its
// output index.
func (x *XAG) NewPO(s Signal, name string) int {
	x.pos = append(x.pos, s)
	x.poNames = append(x.poNames, name)
	return len(x.pos) - 1
}

// orderPair returns the canonical fan-in ordering (smaller signal first).
func orderPair(a, b Signal) [2]Signal {
	if a > b {
		a, b = b, a
	}
	return [2]Signal{a, b}
}

// And returns a signal computing a AND b, with constant propagation,
// idempotence/annihilation rules, and structural hashing.
func (x *XAG) And(a, b Signal) Signal {
	// Constant and trivial rules.
	if a.Node() == 0 {
		if a.Neg() { // a == 1
			return b
		}
		return x.Const(false)
	}
	if b.Node() == 0 {
		if b.Neg() {
			return a
		}
		return x.Const(false)
	}
	if a == b {
		return a
	}
	if a == b.Not() {
		return x.Const(false)
	}
	key := orderPair(a, b)
	if n, ok := x.hash[key]; ok {
		return MakeSignal(n, false)
	}
	idx := len(x.nodes)
	x.nodes = append(x.nodes, node{kind: KindAnd, fi: key})
	x.hash[key] = idx
	return MakeSignal(idx, false)
}

// Xor returns a signal computing a XOR b. Complements are normalized onto
// the output so the stored node always has non-complemented semantics
// captured by the pair (this keeps hashing canonical).
func (x *XAG) Xor(a, b Signal) Signal {
	// Pull complement out: (!a ^ b) == !(a ^ b).
	neg := a.Neg() != b.Neg()
	a &^= 1
	b &^= 1
	if a.Node() == 0 { // a == const0 now
		return b.NotIf(neg)
	}
	if b.Node() == 0 {
		return a.NotIf(neg)
	}
	if a == b {
		return x.Const(neg)
	}
	key := orderPair(a, b)
	if n, ok := x.hashX[key]; ok {
		return MakeSignal(n, neg)
	}
	idx := len(x.nodes)
	x.nodes = append(x.nodes, node{kind: KindXor, fi: key})
	x.hashX[key] = idx
	return MakeSignal(idx, neg)
}

// Not returns the complement of s.
func (x *XAG) Not(s Signal) Signal { return s.Not() }

// Or returns a OR b via De Morgan.
func (x *XAG) Or(a, b Signal) Signal { return x.And(a.Not(), b.Not()).Not() }

// Nand returns NOT(a AND b).
func (x *XAG) Nand(a, b Signal) Signal { return x.And(a, b).Not() }

// Nor returns NOT(a OR b).
func (x *XAG) Nor(a, b Signal) Signal { return x.Or(a, b).Not() }

// Xnor returns NOT(a XOR b).
func (x *XAG) Xnor(a, b Signal) Signal { return x.Xor(a, b).Not() }

// Mux returns (sel ? t : e).
func (x *XAG) Mux(sel, t, e Signal) Signal {
	return x.Or(x.And(sel, t), x.And(sel.Not(), e))
}

// Maj returns the majority of three signals, decomposed into XAG primitives:
// MAJ(a,b,c) = (a AND b) OR (c AND (a XOR b)).
func (x *XAG) Maj(a, b, c Signal) Signal {
	return x.Or(x.And(a, b), x.And(c, x.Xor(a, b)))
}

// NumNodes returns the total node count including constant and PIs.
func (x *XAG) NumNodes() int { return len(x.nodes) }

// NumGates returns the number of AND/XOR nodes.
func (x *XAG) NumGates() int { return len(x.nodes) - 1 - len(x.pis) }

// NumAnds returns the number of AND nodes.
func (x *XAG) NumAnds() int {
	n := 0
	for _, nd := range x.nodes {
		if nd.kind == KindAnd {
			n++
		}
	}
	return n
}

// NumXors returns the number of XOR nodes.
func (x *XAG) NumXors() int {
	n := 0
	for _, nd := range x.nodes {
		if nd.kind == KindXor {
			n++
		}
	}
	return n
}

// NumPIs returns the number of primary inputs.
func (x *XAG) NumPIs() int { return len(x.pis) }

// NumPOs returns the number of primary outputs.
func (x *XAG) NumPOs() int { return len(x.pos) }

// PI returns the signal of the i-th primary input.
func (x *XAG) PI(i int) Signal { return MakeSignal(x.pis[i], false) }

// PIName returns the name of the i-th primary input.
func (x *XAG) PIName(i int) string { return x.piNames[i] }

// PO returns the signal driving the i-th primary output.
func (x *XAG) PO(i int) Signal { return x.pos[i] }

// POName returns the name of the i-th primary output.
func (x *XAG) POName(i int) string { return x.poNames[i] }

// Kind returns the kind of node n.
func (x *XAG) Kind(n int) NodeKind { return x.nodes[n].kind }

// FanIns returns the two fan-in signals of gate node n.
func (x *XAG) FanIns(n int) (Signal, Signal) {
	nd := x.nodes[n]
	return nd.fi[0], nd.fi[1]
}

// PIIndex returns the input position of PI node n, or -1.
func (x *XAG) PIIndex(n int) int {
	for i, p := range x.pis {
		if p == n {
			return i
		}
	}
	return -1
}

// TopoOrder returns all node indices in a topological order (fan-ins before
// fan-outs). Constants and PIs come first. Nodes not in the transitive
// fan-in of any PO are still included.
func (x *XAG) TopoOrder() []int {
	order := make([]int, len(x.nodes))
	for i := range order {
		order[i] = i // nodes are created in topological order by construction
	}
	return order
}

// Levels returns the logic depth of every node (PIs and constants at 0) and
// the overall network depth over the PO cone.
func (x *XAG) Levels() (levels []int, depth int) {
	levels = make([]int, len(x.nodes))
	for n := 1; n < len(x.nodes); n++ {
		nd := x.nodes[n]
		if nd.kind == KindAnd || nd.kind == KindXor {
			l0 := levels[nd.fi[0].Node()]
			l1 := levels[nd.fi[1].Node()]
			if l1 > l0 {
				l0 = l1
			}
			levels[n] = l0 + 1
		}
	}
	for _, po := range x.pos {
		if l := levels[po.Node()]; l > depth {
			depth = l
		}
	}
	return levels, depth
}

// FanoutCounts returns, for every node, the number of gate fan-ins plus PO
// references pointing at it.
func (x *XAG) FanoutCounts() []int {
	fo := make([]int, len(x.nodes))
	for n := 1; n < len(x.nodes); n++ {
		nd := x.nodes[n]
		if nd.kind == KindAnd || nd.kind == KindXor {
			fo[nd.fi[0].Node()]++
			fo[nd.fi[1].Node()]++
		}
	}
	for _, po := range x.pos {
		fo[po.Node()]++
	}
	return fo
}

// Simulate evaluates the network for one input assignment (bit i of input
// = value of PI i) and returns the PO values as a bit vector.
func (x *XAG) Simulate(input uint32) uint32 {
	vals := make([]bool, len(x.nodes))
	for i, p := range x.pis {
		vals[p] = (input>>i)&1 == 1
	}
	for n := 1; n < len(x.nodes); n++ {
		nd := x.nodes[n]
		switch nd.kind {
		case KindAnd:
			a := vals[nd.fi[0].Node()] != nd.fi[0].Neg()
			b := vals[nd.fi[1].Node()] != nd.fi[1].Neg()
			vals[n] = a && b
		case KindXor:
			a := vals[nd.fi[0].Node()] != nd.fi[0].Neg()
			b := vals[nd.fi[1].Node()] != nd.fi[1].Neg()
			vals[n] = a != b
		}
	}
	var out uint32
	for i, po := range x.pos {
		if vals[po.Node()] != po.Neg() {
			out |= 1 << i
		}
	}
	return out
}

// TruthTables computes the truth table of every PO over all PIs. It panics
// if the network has more than tt.MaxVars inputs.
func (x *XAG) TruthTables() []tt.TT {
	n := len(x.pis)
	if n > tt.MaxVars {
		panic(fmt.Sprintf("network: too many PIs (%d) for truth-table simulation", n))
	}
	tabs := make([]tt.TT, len(x.nodes))
	tabs[0] = tt.Const(n, false)
	for i, p := range x.pis {
		tabs[p] = tt.Var(n, i)
	}
	get := func(s Signal) tt.TT {
		t := tabs[s.Node()]
		if s.Neg() {
			return t.Not()
		}
		return t
	}
	for idx := 1; idx < len(x.nodes); idx++ {
		nd := x.nodes[idx]
		switch nd.kind {
		case KindAnd:
			tabs[idx] = get(nd.fi[0]).And(get(nd.fi[1]))
		case KindXor:
			tabs[idx] = get(nd.fi[0]).Xor(get(nd.fi[1]))
		}
	}
	out := make([]tt.TT, len(x.pos))
	for i, po := range x.pos {
		out[i] = get(po)
	}
	return out
}

// Clone returns a deep copy of the network.
func (x *XAG) Clone() *XAG {
	c := &XAG{
		Name:    x.Name,
		nodes:   append([]node(nil), x.nodes...),
		pis:     append([]int(nil), x.pis...),
		pos:     append([]Signal(nil), x.pos...),
		poNames: append([]string(nil), x.poNames...),
		piNames: append([]string(nil), x.piNames...),
		hash:    make(map[[2]Signal]int, len(x.hash)),
		hashX:   make(map[[2]Signal]int, len(x.hashX)),
	}
	for k, v := range x.hash {
		c.hash[k] = v
	}
	for k, v := range x.hashX {
		c.hashX[k] = v
	}
	return c
}

// Cleanup returns a copy of the network containing only nodes reachable from
// the POs, renumbered topologically. Dangling logic is dropped.
func (x *XAG) Cleanup() *XAG {
	c := New()
	c.Name = x.Name
	mapping := make([]Signal, len(x.nodes))
	used := make([]bool, len(x.nodes))
	var mark func(n int)
	mark = func(n int) {
		if used[n] {
			return
		}
		used[n] = true
		nd := x.nodes[n]
		if nd.kind == KindAnd || nd.kind == KindXor {
			mark(nd.fi[0].Node())
			mark(nd.fi[1].Node())
		}
	}
	for _, po := range x.pos {
		mark(po.Node())
	}
	mapping[0] = c.Const(false)
	// PIs are always kept to preserve the interface.
	for i, p := range x.pis {
		mapping[p] = c.NewPI(x.piNames[i])
		used[p] = true
	}
	for n := 1; n < len(x.nodes); n++ {
		if !used[n] {
			continue
		}
		nd := x.nodes[n]
		switch nd.kind {
		case KindAnd:
			a := mapping[nd.fi[0].Node()].NotIf(nd.fi[0].Neg())
			b := mapping[nd.fi[1].Node()].NotIf(nd.fi[1].Neg())
			mapping[n] = c.And(a, b)
		case KindXor:
			a := mapping[nd.fi[0].Node()].NotIf(nd.fi[0].Neg())
			b := mapping[nd.fi[1].Node()].NotIf(nd.fi[1].Neg())
			mapping[n] = c.Xor(a, b)
		}
	}
	for i, po := range x.pos {
		c.NewPO(mapping[po.Node()].NotIf(po.Neg()), x.poNames[i])
	}
	return c
}

// Stats summarizes the network for reporting.
type Stats struct {
	PIs, POs, Gates, Ands, Xors, Depth int
}

// Stats returns summary statistics of the network.
func (x *XAG) Stats() Stats {
	_, depth := x.Levels()
	return Stats{
		PIs:   x.NumPIs(),
		POs:   x.NumPOs(),
		Gates: x.NumGates(),
		Ands:  x.NumAnds(),
		Xors:  x.NumXors(),
		Depth: depth,
	}
}

// String renders a short description.
func (x *XAG) String() string {
	s := x.Stats()
	return fmt.Sprintf("%s: %d PIs, %d POs, %d gates (%d AND, %d XOR), depth %d",
		x.Name, s.PIs, s.POs, s.Gates, s.Ands, s.Xors, s.Depth)
}

// ToAIG returns an AND-Inverter-Graph version of the network: every XOR
// node is decomposed into three AND nodes (x XOR y = NOT(NOT(x AND NOT y)
// AND NOT(NOT x AND y))). The paper picked XAGs over AIGs because the
// Bestagon library natively supports XOR tiles (§4.2, footnote 1); this
// conversion enables quantifying that choice.
func (x *XAG) ToAIG() *XAG {
	c := New()
	c.Name = x.Name + "_aig"
	mapping := make([]Signal, len(x.nodes))
	mapping[0] = c.Const(false)
	for i := 0; i < x.NumPIs(); i++ {
		mapping[x.PI(i).Node()] = c.NewPI(x.PIName(i))
	}
	get := func(s Signal) Signal { return mapping[s.Node()].NotIf(s.Neg()) }
	for n := 1; n < len(x.nodes); n++ {
		switch x.nodes[n].kind {
		case KindAnd:
			a, b := x.FanIns(n)
			mapping[n] = c.And(get(a), get(b))
		case KindXor:
			a, b := x.FanIns(n)
			la, lb := get(a), get(b)
			mapping[n] = c.Or(c.And(la, lb.Not()), c.And(la.Not(), lb))
		}
	}
	for i := 0; i < x.NumPOs(); i++ {
		c.NewPO(get(x.PO(i)), x.POName(i))
	}
	return c
}

// IsAIG reports whether the network contains no XOR nodes.
func (x *XAG) IsAIG() bool { return x.NumXors() == 0 }
