// Package tt implements dynamic truth tables for Boolean functions of up to
// 16 variables, the workhorse representation behind NPN classification, cut
// rewriting, and equivalence checking in the logic-synthesis substrate.
//
// A truth table over n variables stores 2^n bits; bit i holds f(x) for the
// input assignment whose binary encoding is i, with variable 0 as the least
// significant input.
package tt

import (
	"fmt"
	"math/bits"
	"strings"
)

// MaxVars is the largest supported number of truth-table variables.
const MaxVars = 16

// TT is a truth table over NumVars variables backed by 64-bit words.
type TT struct {
	n     int
	words []uint64
}

// wordCount returns the number of 64-bit words needed for n variables.
func wordCount(n int) int {
	if n <= 6 {
		return 1
	}
	return 1 << (n - 6)
}

// usedMask returns the mask of meaningful bits in a single-word table.
func usedMask(n int) uint64 {
	if n >= 6 {
		return ^uint64(0)
	}
	return (uint64(1) << (1 << n)) - 1
}

// New returns the constant-false truth table over n variables.
func New(n int) TT {
	if n < 0 || n > MaxVars {
		panic(fmt.Sprintf("tt: unsupported variable count %d", n))
	}
	return TT{n: n, words: make([]uint64, wordCount(n))}
}

// FromHex parses a hexadecimal truth-table string (most significant digit
// first) for n variables, e.g. "8" for AND-2, "6" for XOR-2, "e8" for MAJ-3.
func FromHex(n int, s string) (TT, error) {
	t := New(n)
	digits := (1 << n) / 4
	if digits == 0 {
		digits = 1
	}
	if len(s) != digits {
		return TT{}, fmt.Errorf("tt: hex string %q needs %d digits for %d vars", s, digits, n)
	}
	for i := 0; i < len(s); i++ {
		c := s[len(s)-1-i]
		var v uint64
		switch {
		case c >= '0' && c <= '9':
			v = uint64(c - '0')
		case c >= 'a' && c <= 'f':
			v = uint64(c-'a') + 10
		case c >= 'A' && c <= 'F':
			v = uint64(c-'A') + 10
		default:
			return TT{}, fmt.Errorf("tt: invalid hex digit %q", c)
		}
		t.words[i/16] |= v << (4 * (i % 16))
	}
	t.mask()
	return t, nil
}

// MustFromHex is FromHex that panics on error; for compile-time constants.
func MustFromHex(n int, s string) TT {
	t, err := FromHex(n, s)
	if err != nil {
		panic(err)
	}
	return t
}

// Hex returns the hexadecimal string of the table, most significant first.
func (t TT) Hex() string {
	digits := (1 << t.n) / 4
	if digits == 0 {
		digits = 1
	}
	var sb strings.Builder
	for i := digits - 1; i >= 0; i-- {
		v := (t.words[i/16] >> (4 * (i % 16))) & 0xf
		sb.WriteByte("0123456789abcdef"[v])
	}
	return sb.String()
}

// String implements fmt.Stringer as "0x<hex>/<n>".
func (t TT) String() string { return fmt.Sprintf("0x%s/%d", t.Hex(), t.n) }

// NumVars returns the number of variables of the table.
func (t TT) NumVars() int { return t.n }

// Bits returns the number of rows (2^n).
func (t TT) Bits() int { return 1 << t.n }

// Clone returns a deep copy of the table.
func (t TT) Clone() TT {
	c := TT{n: t.n, words: make([]uint64, len(t.words))}
	copy(c.words, t.words)
	return c
}

// mask clears unused high bits of single-word tables.
func (t *TT) mask() {
	if t.n < 6 {
		t.words[0] &= usedMask(t.n)
	}
}

// Get returns bit i of the table.
func (t TT) Get(i int) bool { return t.words[i>>6]>>(uint(i)&63)&1 == 1 }

// Set sets bit i of the table to v.
func (t *TT) Set(i int, v bool) {
	if v {
		t.words[i>>6] |= 1 << (uint(i) & 63)
	} else {
		t.words[i>>6] &^= 1 << (uint(i) & 63)
	}
}

// Const returns the constant-v truth table over n variables.
func Const(n int, v bool) TT {
	t := New(n)
	if v {
		for i := range t.words {
			t.words[i] = ^uint64(0)
		}
		t.mask()
	}
	return t
}

// varMasks holds the canonical single-word projections of variables 0..5.
var varMasks = [6]uint64{
	0xaaaaaaaaaaaaaaaa,
	0xcccccccccccccccc,
	0xf0f0f0f0f0f0f0f0,
	0xff00ff00ff00ff00,
	0xffff0000ffff0000,
	0xffffffff00000000,
}

// Var returns the projection truth table of variable v over n variables.
func Var(n, v int) TT {
	if v < 0 || v >= n {
		panic(fmt.Sprintf("tt: variable %d out of range for %d vars", v, n))
	}
	t := New(n)
	if v < 6 {
		for i := range t.words {
			t.words[i] = varMasks[v]
		}
	} else {
		period := 1 << (v - 6) // in words: period of off/on blocks
		for i := range t.words {
			if (i/period)&1 == 1 {
				t.words[i] = ^uint64(0)
			}
		}
	}
	t.mask()
	return t
}

// checkArity panics if the two tables have different variable counts.
func checkArity(a, b TT) {
	if a.n != b.n {
		panic(fmt.Sprintf("tt: arity mismatch %d vs %d", a.n, b.n))
	}
}

// Not returns the complement of the table.
func (t TT) Not() TT {
	c := t.Clone()
	for i := range c.words {
		c.words[i] = ^c.words[i]
	}
	c.mask()
	return c
}

// And returns the conjunction of two tables of equal arity.
func (t TT) And(o TT) TT {
	checkArity(t, o)
	c := t.Clone()
	for i := range c.words {
		c.words[i] &= o.words[i]
	}
	return c
}

// Or returns the disjunction of two tables of equal arity.
func (t TT) Or(o TT) TT {
	checkArity(t, o)
	c := t.Clone()
	for i := range c.words {
		c.words[i] |= o.words[i]
	}
	return c
}

// Xor returns the exclusive-or of two tables of equal arity.
func (t TT) Xor(o TT) TT {
	checkArity(t, o)
	c := t.Clone()
	for i := range c.words {
		c.words[i] ^= o.words[i]
	}
	return c
}

// Equal reports whether two tables represent the same function (same arity
// and same bits).
func (t TT) Equal(o TT) bool {
	if t.n != o.n {
		return false
	}
	for i := range t.words {
		if t.words[i] != o.words[i] {
			return false
		}
	}
	return true
}

// IsConst reports whether the table is constant, returning the value.
func (t TT) IsConst() (bool, bool) {
	allZero, allOne := true, true
	m := usedMask(t.n)
	for i, w := range t.words {
		mm := ^uint64(0)
		if i == 0 && t.n < 6 {
			mm = m
		}
		if w&mm != 0 {
			allZero = false
		}
		if w&mm != mm {
			allOne = false
		}
	}
	if allZero {
		return true, false
	}
	if allOne {
		return true, true
	}
	return false, false
}

// CountOnes returns the number of minterms of the function.
func (t TT) CountOnes() int {
	total := 0
	for _, w := range t.words {
		total += bits.OnesCount64(w)
	}
	return total
}

// Cofactor returns the cofactor of the function with variable v fixed to val.
// The result keeps the same arity (variable v becomes don't-care).
func (t TT) Cofactor(v int, val bool) TT {
	c := t.Clone()
	proj := Var(t.n, v)
	if v < 6 {
		shift := uint(1) << v
		for i := range c.words {
			if val {
				hi := c.words[i] & proj.words[i]
				c.words[i] = hi | (hi >> shift)
			} else {
				lo := c.words[i] &^ proj.words[i]
				c.words[i] = lo | (lo << shift)
			}
		}
	} else {
		period := 1 << (v - 6)
		for i := range c.words {
			block := (i / period) & 1
			src := i
			if val && block == 0 {
				src = i + period
			} else if !val && block == 1 {
				src = i - period
			}
			c.words[i] = t.words[src]
		}
	}
	c.mask()
	return c
}

// DependsOn reports whether the function depends on variable v.
func (t TT) DependsOn(v int) bool {
	return !t.Cofactor(v, false).Equal(t.Cofactor(v, true))
}

// SupportSize returns the number of variables the function depends on.
func (t TT) SupportSize() int {
	n := 0
	for v := 0; v < t.n; v++ {
		if t.DependsOn(v) {
			n++
		}
	}
	return n
}

// SwapAdjacent returns the table with variables v and v+1 exchanged.
func (t TT) SwapAdjacent(v int) TT {
	if v < 0 || v+1 >= t.n {
		panic(fmt.Sprintf("tt: cannot swap variables %d and %d of %d", v, v+1, t.n))
	}
	out := New(t.n)
	for i := 0; i < t.Bits(); i++ {
		bi := (i >> v) & 1
		bj := (i >> (v + 1)) & 1
		j := i &^ (1<<v | 1<<(v+1))
		j |= bj << v
		j |= bi << (v + 1)
		out.Set(j, t.Get(i))
	}
	return out
}

// Permute returns the table with inputs permuted: new variable i reads the
// old variable perm[i].
func (t TT) Permute(perm []int) TT {
	if len(perm) != t.n {
		panic("tt: permutation length mismatch")
	}
	out := New(t.n)
	for i := 0; i < t.Bits(); i++ {
		j := 0
		for v := 0; v < t.n; v++ {
			if (i>>v)&1 == 1 {
				j |= 1 << perm[v]
			}
		}
		out.Set(i, t.Get(j))
	}
	return out
}

// FlipVar returns the table with variable v complemented.
func (t TT) FlipVar(v int) TT {
	out := New(t.n)
	for i := 0; i < t.Bits(); i++ {
		out.Set(i^(1<<v), t.Get(i))
	}
	return out
}

// Extend returns the same function expressed over m ≥ n variables (the new
// variables are don't-cares).
func (t TT) Extend(m int) TT {
	if m < t.n {
		panic("tt: cannot shrink with Extend")
	}
	if m == t.n {
		return t.Clone()
	}
	out := New(m)
	for i := 0; i < out.Bits(); i++ {
		out.Set(i, t.Get(i&(t.Bits()-1)))
	}
	return out
}

// Shrink returns the same function expressed over m ≤ n variables; it panics
// if the function depends on any dropped variable.
func (t TT) Shrink(m int) TT {
	if m > t.n {
		panic("tt: cannot grow with Shrink")
	}
	for v := m; v < t.n; v++ {
		if t.DependsOn(v) {
			panic(fmt.Sprintf("tt: function depends on dropped variable %d", v))
		}
	}
	out := New(m)
	for i := 0; i < out.Bits(); i++ {
		out.Set(i, t.Get(i))
	}
	return out
}

// Eval evaluates the function for the input assignment given as a bit vector
// (bit v of input = value of variable v).
func (t TT) Eval(input uint32) bool { return t.Get(int(input) & (t.Bits() - 1)) }

// Word returns the first word of the table; valid for n ≤ 6 tables and used
// as a compact hash key.
func (t TT) Word() uint64 { return t.words[0] }
