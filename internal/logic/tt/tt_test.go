package tt

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestVarProjections(t *testing.T) {
	for n := 1; n <= 8; n++ {
		for v := 0; v < n; v++ {
			p := Var(n, v)
			for i := 0; i < p.Bits(); i++ {
				want := (i>>v)&1 == 1
				if p.Get(i) != want {
					t.Fatalf("Var(%d,%d) bit %d = %v, want %v", n, v, i, p.Get(i), want)
				}
			}
		}
	}
}

func TestHexRoundTrip(t *testing.T) {
	cases := []struct {
		n   int
		hex string
	}{
		{2, "8"}, {2, "6"}, {2, "e"}, {3, "e8"}, {3, "96"},
		{4, "8000"}, {4, "6996"}, {5, "96696996"},
		{6, "9669699669969669"},
	}
	for _, c := range cases {
		tab := MustFromHex(c.n, c.hex)
		if tab.Hex() != c.hex {
			t.Errorf("hex round trip %q -> %q", c.hex, tab.Hex())
		}
	}
}

func TestFromHexErrors(t *testing.T) {
	if _, err := FromHex(3, "e"); err == nil {
		t.Error("wrong digit count must fail")
	}
	if _, err := FromHex(2, "g"); err == nil {
		t.Error("invalid digit must fail")
	}
}

func TestBasicGates(t *testing.T) {
	a, b := Var(2, 0), Var(2, 1)
	if got := a.And(b).Hex(); got != "8" {
		t.Errorf("AND = %s", got)
	}
	if got := a.Or(b).Hex(); got != "e" {
		t.Errorf("OR = %s", got)
	}
	if got := a.Xor(b).Hex(); got != "6" {
		t.Errorf("XOR = %s", got)
	}
	if got := a.And(b).Not().Hex(); got != "7" {
		t.Errorf("NAND = %s", got)
	}
	if got := a.Or(b).Not().Hex(); got != "1" {
		t.Errorf("NOR = %s", got)
	}
	if got := a.Xor(b).Not().Hex(); got != "9" {
		t.Errorf("XNOR = %s", got)
	}
}

func TestMajority3(t *testing.T) {
	a, b, c := Var(3, 0), Var(3, 1), Var(3, 2)
	maj := a.And(b).Or(a.And(c)).Or(b.And(c))
	if maj.Hex() != "e8" {
		t.Errorf("MAJ3 = %s, want e8", maj.Hex())
	}
	if maj.CountOnes() != 4 {
		t.Errorf("MAJ3 minterms = %d", maj.CountOnes())
	}
}

func TestDeMorganProperty(t *testing.T) {
	f := func(aw, bw uint16) bool {
		a, b := New(4), New(4)
		a.words[0] = uint64(aw)
		b.words[0] = uint64(bw)
		left := a.And(b).Not()
		right := a.Not().Or(b.Not())
		return left.Equal(right)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestXorProperties(t *testing.T) {
	f := func(aw, bw uint16) bool {
		a, b := New(4), New(4)
		a.words[0] = uint64(aw)
		b.words[0] = uint64(bw)
		if !a.Xor(b).Equal(b.Xor(a)) {
			return false
		}
		if !a.Xor(a).Equal(Const(4, false)) {
			return false
		}
		return a.Xor(Const(4, true)).Equal(a.Not())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNotInvolution(t *testing.T) {
	f := func(w uint16) bool {
		a := New(4)
		a.words[0] = uint64(w)
		return a.Not().Not().Equal(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConstAndIsConst(t *testing.T) {
	for n := 0; n <= 8; n++ {
		c0, c1 := Const(n, false), Const(n, true)
		if k, v := c0.IsConst(); !k || v {
			t.Errorf("Const(%d,false) not detected", n)
		}
		if k, v := c1.IsConst(); !k || !v {
			t.Errorf("Const(%d,true) not detected", n)
		}
	}
	if k, _ := Var(3, 1).IsConst(); k {
		t.Error("Var must not be constant")
	}
}

func TestCofactorShannon(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 3 + rng.Intn(5) // up to 7 vars exercises multi-word paths
		f := randomTT(rng, n)
		for v := 0; v < n; v++ {
			x := Var(n, v)
			rebuilt := x.And(f.Cofactor(v, true)).Or(x.Not().And(f.Cofactor(v, false)))
			if !rebuilt.Equal(f) {
				t.Fatalf("Shannon expansion failed for n=%d v=%d f=%v", n, v, f)
			}
			if f.Cofactor(v, false).DependsOn(v) || f.Cofactor(v, true).DependsOn(v) {
				t.Fatalf("cofactor still depends on %d", v)
			}
		}
	}
}

func randomTT(rng *rand.Rand, n int) TT {
	f := New(n)
	for i := range f.words {
		f.words[i] = rng.Uint64()
	}
	f.mask()
	return f
}

func TestDependsOnAndSupport(t *testing.T) {
	a, c := Var(3, 0), Var(3, 2)
	f := a.Xor(c)
	if !f.DependsOn(0) || f.DependsOn(1) || !f.DependsOn(2) {
		t.Error("DependsOn wrong for a xor c")
	}
	if f.SupportSize() != 2 {
		t.Errorf("SupportSize = %d, want 2", f.SupportSize())
	}
}

func TestSwapAdjacent(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		n := 3 + rng.Intn(4)
		f := randomTT(rng, n)
		for v := 0; v+1 < n; v++ {
			g := f.SwapAdjacent(v)
			// Swapping twice is identity.
			if !g.SwapAdjacent(v).Equal(f) {
				t.Fatalf("SwapAdjacent not involutive n=%d v=%d", n, v)
			}
			// Point check: evaluating g on swapped inputs equals f.
			for i := 0; i < f.Bits(); i++ {
				bi, bj := (i>>v)&1, (i>>(v+1))&1
				j := i&^(1<<v|1<<(v+1)) | bj<<v | bi<<(v+1)
				if g.Get(j) != f.Get(i) {
					t.Fatalf("SwapAdjacent semantics broken")
				}
			}
		}
	}
}

func TestPermuteIdentityAndInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(4)
		f := randomTT(rng, n)
		id := make([]int, n)
		for i := range id {
			id[i] = i
		}
		if !f.Permute(id).Equal(f) {
			t.Fatal("identity permutation changed function")
		}
		perm := rng.Perm(n)
		inv := make([]int, n)
		for i, p := range perm {
			inv[p] = i
		}
		if !f.Permute(perm).Permute(inv).Equal(f) {
			t.Fatalf("permute/inverse failed: %v", perm)
		}
	}
}

func TestPermuteSemantics(t *testing.T) {
	// f = x0 AND NOT x1; permute so new var 0 reads old var 1.
	f := Var(2, 0).And(Var(2, 1).Not())
	g := f.Permute([]int{1, 0})
	want := Var(2, 1).And(Var(2, 0).Not())
	if !g.Equal(want) {
		t.Errorf("Permute semantics: got %v, want %v", g, want)
	}
}

func TestFlipVar(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(5)
		f := randomTT(rng, n)
		for v := 0; v < n; v++ {
			g := f.FlipVar(v)
			if !g.FlipVar(v).Equal(f) {
				t.Fatal("FlipVar not involutive")
			}
			for i := 0; i < 16 && i < f.Bits(); i++ {
				if g.Get(i) != f.Get(i^(1<<v)) {
					t.Fatal("FlipVar semantics broken")
				}
			}
		}
	}
}

func TestExtendShrink(t *testing.T) {
	f := Var(2, 0).Xor(Var(2, 1))
	g := f.Extend(4)
	if g.NumVars() != 4 || g.DependsOn(2) || g.DependsOn(3) {
		t.Fatal("Extend added dependencies")
	}
	h := g.Shrink(2)
	if !h.Equal(f) {
		t.Fatal("Shrink(Extend(f)) != f")
	}
}

func TestShrinkPanicsOnDependency(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Shrink must panic when dropping a support variable")
		}
	}()
	Var(3, 2).Shrink(2)
}

func TestEval(t *testing.T) {
	maj := MustFromHex(3, "e8")
	cases := map[uint32]bool{
		0b000: false, 0b001: false, 0b010: false, 0b100: false,
		0b011: true, 0b101: true, 0b110: true, 0b111: true,
	}
	for in, want := range cases {
		if maj.Eval(in) != want {
			t.Errorf("MAJ3(%03b) = %v, want %v", in, maj.Eval(in), want)
		}
	}
}

func TestCountOnesMultiWord(t *testing.T) {
	f := Var(8, 7)
	if got := f.CountOnes(); got != 128 {
		t.Errorf("Var(8,7) ones = %d, want 128", got)
	}
}

func TestArityMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("And with mismatched arity must panic")
		}
	}()
	Var(2, 0).And(Var(3, 0))
}
