package rewrite

import (
	"math/rand"
	"testing"

	"repro/internal/logic/bench"
	"repro/internal/logic/network"
	"repro/internal/logic/npn"
)

// sharedDB caches exact synthesis results across tests to keep runtime low.
var sharedDB = npn.NewDatabase(nil)

func opts() Options { return Options{DB: sharedDB} }

func checkSameFunction(t *testing.T, a, b *network.XAG) {
	t.Helper()
	if a.NumPIs() != b.NumPIs() || a.NumPOs() != b.NumPOs() {
		t.Fatalf("interface changed: %v vs %v", a, b)
	}
	for in := uint32(0); in < 1<<a.NumPIs(); in++ {
		if a.Simulate(in) != b.Simulate(in) {
			t.Fatalf("function changed at input %b", in)
		}
	}
}

func TestRewriteRedundantMux(t *testing.T) {
	// A bloated mux construction that rewriting should shrink.
	x := network.New()
	s, a, b := x.NewPI("s"), x.NewPI("a"), x.NewPI("b")
	// (s AND a) OR (!s AND b), written with extra double negations.
	t0 := x.And(s, a)
	t1 := x.And(s.Not(), b)
	f := x.Or(t0, t1)
	x.NewPO(f, "f")
	before := x.NumGates()
	y := Rewrite(x, opts())
	checkSameFunction(t, x, y)
	if y.NumGates() > before {
		t.Errorf("rewriting grew the network: %d -> %d", before, y.NumGates())
	}
}

func TestRewriteCollapsesDuplicatedLogic(t *testing.T) {
	// Build XOR3 in a wasteful way: (a^b)^c plus a redundant reconstruction
	// of the same function through AND/OR logic on a second PO.
	x := network.New()
	a, b, c := x.NewPI("a"), x.NewPI("b"), x.NewPI("c")
	x1 := x.Xor(x.Xor(a, b), c)
	// xor(a,b) = (a|b) & !(a&b), then xor with c the long way.
	ab := x.And(x.Or(a, b), x.And(a, b).Not())
	x2 := x.And(x.Or(ab, c), x.And(ab, c).Not())
	x.NewPO(x1, "f1")
	x.NewPO(x2, "f2")
	before := x.NumGates()
	y := Rewrite(x, opts())
	checkSameFunction(t, x, y)
	if y.NumGates() >= before {
		t.Errorf("expected shrink: %d -> %d", before, y.NumGates())
	}
}

func TestRewriteAllBenchmarksPreserveFunction(t *testing.T) {
	for _, name := range bench.Names() {
		x, err := bench.Load(name)
		if err != nil {
			t.Fatal(err)
		}
		y := Rewrite(x, opts())
		checkSameFunction(t, x, y)
		if y.NumGates() > x.NumGates() {
			t.Errorf("%s: rewriting grew the network %d -> %d", name, x.NumGates(), y.NumGates())
		}
	}
}

func TestRewriteXor5MajorityShrinks(t *testing.T) {
	// The MAJ-based xor5 is heavily redundant; rewriting must recover most
	// of the pure-XOR structure.
	x, err := bench.Load("xor5_majority")
	if err != nil {
		t.Fatal(err)
	}
	y := Rewrite(x, opts())
	checkSameFunction(t, x, y)
	if y.NumGates() > x.NumGates()/2 {
		t.Errorf("expected strong reduction, got %d -> %d", x.NumGates(), y.NumGates())
	}
}

func TestRewriteIdempotentOnOptimal(t *testing.T) {
	x, err := bench.Load("xor2")
	if err != nil {
		t.Fatal(err)
	}
	y := Rewrite(x, opts())
	z := Rewrite(y, opts())
	if z.NumGates() != y.NumGates() {
		t.Errorf("second rewrite changed size: %d -> %d", y.NumGates(), z.NumGates())
	}
	checkSameFunction(t, x, z)
}

func TestRewriteRandomNetworks(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 10; trial++ {
		x := network.New()
		var sigs []network.Signal
		for i := 0; i < 4; i++ {
			sigs = append(sigs, x.NewPI(""))
		}
		for g := 0; g < 20; g++ {
			a := sigs[rng.Intn(len(sigs))].NotIf(rng.Intn(2) == 1)
			b := sigs[rng.Intn(len(sigs))].NotIf(rng.Intn(2) == 1)
			if rng.Intn(2) == 0 {
				sigs = append(sigs, x.And(a, b))
			} else {
				sigs = append(sigs, x.Xor(a, b))
			}
		}
		x.NewPO(sigs[len(sigs)-1], "f")
		x.NewPO(sigs[len(sigs)-2], "g")
		xc := x.Cleanup()
		y := Rewrite(xc, opts())
		checkSameFunction(t, xc, y)
		if y.NumGates() > xc.NumGates() {
			t.Errorf("trial %d: grew %d -> %d", trial, xc.NumGates(), y.NumGates())
		}
	}
}

func TestCutEnumerationProperties(t *testing.T) {
	x, err := bench.Load("c17")
	if err != nil {
		t.Fatal(err)
	}
	o := Options{}.withDefaults()
	cuts := enumerateCuts(x, o)
	for n := 1; n < x.NumNodes(); n++ {
		for _, c := range cuts[n] {
			if len(c) > o.CutSize {
				t.Fatalf("node %d: cut %v exceeds size %d", n, c, o.CutSize)
			}
			for i := 1; i < len(c); i++ {
				if c[i-1] >= c[i] {
					t.Fatalf("node %d: cut %v not sorted", n, c)
				}
			}
			// The cut function must be computable (cut must be a real cut).
			if _, ok := cutFunction(x, n, c); !ok {
				t.Fatalf("node %d: cut %v is not a valid cut", n, c)
			}
		}
		if len(cuts[n]) > o.CutsPerNode {
			t.Fatalf("node %d: %d cuts exceeds limit", n, len(cuts[n]))
		}
	}
}

func TestMergeCuts(t *testing.T) {
	a := cut{1, 3, 5}
	b := cut{2, 3, 6}
	m, ok := mergeCuts(a, b, 6)
	if !ok || len(m) != 5 {
		t.Fatalf("merge = %v, %v", m, ok)
	}
	if _, ok := mergeCuts(a, b, 4); ok {
		t.Error("merge must fail beyond k")
	}
}

func TestDominates(t *testing.T) {
	if !dominates(cut{1, 3}, cut{1, 2, 3}) {
		t.Error("subset must dominate")
	}
	if dominates(cut{1, 4}, cut{1, 2, 3}) {
		t.Error("non-subset must not dominate")
	}
	if !dominates(cut{2}, cut{2}) {
		t.Error("equal cuts dominate")
	}
}
