// Package rewrite implements cut-based logic rewriting of XAGs with an
// exact NPN database — flow step (2) of the Bestagon paper, following the
// DAG-aware rewriting approach of Riener et al. [38].
//
// For every gate, 4-feasible cuts are enumerated; each cut's local function
// is canonized and looked up in the exact-synthesis database; replacements
// whose gate cost beats the size of the node's maximal fanout-free cone are
// applied greedily until a fixpoint (or iteration cap) is reached.
package rewrite

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/logic/network"
	"repro/internal/logic/npn"
	"repro/internal/logic/tt"
)

// Options tunes the rewriting loop.
type Options struct {
	// CutSize is the maximum number of cut leaves (default 4).
	CutSize int
	// CutsPerNode bounds the cut set kept per node (default 8).
	CutsPerNode int
	// MaxIterations bounds the greedy replacement loop (default 50).
	MaxIterations int
	// DB is the exact NPN database; nil allocates a fresh one.
	DB *npn.Database
}

// withDefaults fills unset option fields.
func (o Options) withDefaults() Options {
	if o.CutSize == 0 {
		o.CutSize = 4
	}
	if o.CutsPerNode == 0 {
		o.CutsPerNode = 8
	}
	if o.MaxIterations == 0 {
		o.MaxIterations = 50
	}
	if o.DB == nil {
		o.DB = npn.NewDatabase(nil)
	}
	return o
}

// Rewrite returns a functionally equivalent network with equal or smaller
// gate count, produced by exact-NPN cut rewriting.
func Rewrite(x *network.XAG, opts Options) *network.XAG {
	out, _ := RewriteContext(context.Background(), x, opts)
	return out
}

// RewriteContext is Rewrite under a context: cancellation or deadline
// expiry interrupts the exact-synthesis SAT searches and the greedy loop,
// returning the context's error. The rewriting loop dominates the flow's
// runtime on synthesis-heavy networks, so flow-wide cancellation depends
// on this path aborting promptly. A nil context behaves like
// context.Background.
func RewriteContext(ctx context.Context, x *network.XAG, opts Options) (*network.XAG, error) {
	o := opts.withDefaults()
	cur := x.Cleanup()
	for iter := 0; iter < o.MaxIterations; iter++ {
		improved, next, err := rewriteOnce(ctx, cur, o)
		if err != nil {
			return cur, err
		}
		if !improved {
			return cur, nil
		}
		cur = next
	}
	return cur, nil
}

// cut is a set of leaf node indices, sorted ascending.
type cut []int

// mergeCuts unions two cuts if the result stays within k leaves.
func mergeCuts(a, b cut, k int) (cut, bool) {
	out := make(cut, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case j == len(b) || (i < len(a) && a[i] < b[j]):
			out = append(out, a[i])
			i++
		case i == len(a) || b[j] < a[i]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i, j = i+1, j+1
		}
		if len(out) > k {
			return nil, false
		}
	}
	return out, true
}

// dominates reports whether cut a is a subset of cut b (a dominates b).
func dominates(a, b cut) bool {
	if len(a) > len(b) {
		return false
	}
	j := 0
	for _, v := range a {
		for j < len(b) && b[j] < v {
			j++
		}
		if j == len(b) || b[j] != v {
			return false
		}
	}
	return true
}

// enumerateCuts computes up to o.CutsPerNode k-feasible cuts per node.
func enumerateCuts(x *network.XAG, o Options) [][]cut {
	cuts := make([][]cut, x.NumNodes())
	cuts[0] = []cut{{0}}
	for n := 1; n < x.NumNodes(); n++ {
		switch x.Kind(n) {
		case network.KindPI:
			cuts[n] = []cut{{n}}
		case network.KindAnd, network.KindXor:
			a, b := x.FanIns(n)
			var set []cut
			for _, ca := range cuts[a.Node()] {
				for _, cb := range cuts[b.Node()] {
					m, ok := mergeCuts(ca, cb, o.CutSize)
					if !ok {
						continue
					}
					set = append(set, m)
				}
			}
			// Always include the trivial cut.
			set = append(set, cut{n})
			set = filterCuts(set, o.CutsPerNode)
			cuts[n] = set
		}
	}
	return cuts
}

// filterCuts removes duplicate and dominated cuts and truncates to limit,
// preferring smaller cuts.
func filterCuts(set []cut, limit int) []cut {
	sort.Slice(set, func(i, j int) bool {
		if len(set[i]) != len(set[j]) {
			return len(set[i]) < len(set[j])
		}
		for k := range set[i] {
			if set[i][k] != set[j][k] {
				return set[i][k] < set[j][k]
			}
		}
		return false
	})
	var out []cut
	for _, c := range set {
		dup := false
		for _, kept := range out {
			if dominates(kept, c) {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, c)
		}
		if len(out) >= limit {
			break
		}
	}
	return out
}

// cutFunction computes the local function of node root over the cut leaves.
// It returns ok=false if the cone depends on nodes outside the cut (which
// cannot happen for proper cuts, but is guarded against).
func cutFunction(x *network.XAG, root int, c cut) (tt.TT, bool) {
	k := len(c)
	tabs := map[int]tt.TT{}
	for i, leaf := range c {
		tabs[leaf] = tt.Var(k, i)
	}
	if _, isLeaf := tabs[0]; !isLeaf {
		tabs[0] = tt.Const(k, false)
	}
	var eval func(n int) (tt.TT, bool)
	eval = func(n int) (tt.TT, bool) {
		if t, ok := tabs[n]; ok {
			return t, true
		}
		kind := x.Kind(n)
		if kind != network.KindAnd && kind != network.KindXor {
			return tt.TT{}, false // PI outside the cut
		}
		a, b := x.FanIns(n)
		ta, ok := eval(a.Node())
		if !ok {
			return tt.TT{}, false
		}
		tb, ok := eval(b.Node())
		if !ok {
			return tt.TT{}, false
		}
		if a.Neg() {
			ta = ta.Not()
		}
		if b.Neg() {
			tb = tb.Not()
		}
		var t tt.TT
		if kind == network.KindAnd {
			t = ta.And(tb)
		} else {
			t = ta.Xor(tb)
		}
		tabs[n] = t
		return t, true
	}
	return eval(root)
}

// mffcSize returns the number of gates freed if root were removed: the size
// of its maximal fanout-free cone bounded by the cut leaves.
func mffcSize(x *network.XAG, root int, c cut, fanout []int) int {
	leaves := map[int]bool{}
	for _, l := range c {
		leaves[l] = true
	}
	refs := append([]int(nil), fanout...)
	count := 0
	var deref func(n int)
	deref = func(n int) {
		if leaves[n] {
			return
		}
		kind := x.Kind(n)
		if kind != network.KindAnd && kind != network.KindXor {
			return
		}
		count++
		a, b := x.FanIns(n)
		for _, f := range []int{a.Node(), b.Node()} {
			refs[f]--
			if refs[f] == 0 {
				deref(f)
			}
		}
	}
	deref(root)
	return count
}

// candidate is one profitable replacement.
type candidate struct {
	node int
	cut  cut
	st   npn.Structure
	gain int
}

// rewriteOnce finds the best replacement candidate and applies it by
// reconstruction. It reports whether the network shrank.
func rewriteOnce(ctx context.Context, x *network.XAG, o Options) (bool, *network.XAG, error) {
	cuts := enumerateCuts(x, o)
	fanout := x.FanoutCounts()
	poll := ctx != nil && ctx.Done() != nil
	var best *candidate
	for n := 1; n < x.NumNodes(); n++ {
		if poll && ctx.Err() != nil {
			return false, x, fmt.Errorf("rewrite: canceled: %w", ctx.Err())
		}
		kind := x.Kind(n)
		if kind != network.KindAnd && kind != network.KindXor {
			continue
		}
		for _, c := range cuts[n] {
			if len(c) == 1 && c[0] == n {
				continue // trivial cut
			}
			f, ok := cutFunction(x, n, c)
			if !ok {
				continue
			}
			st, ok := o.DB.LookupContext(ctx, f)
			if !ok {
				continue
			}
			gain := mffcSize(x, n, c, fanout) - st.Cost()
			if gain <= 0 {
				continue
			}
			if best == nil || gain > best.gain {
				cc := append(cut(nil), c...)
				best = &candidate{node: n, cut: cc, st: st, gain: gain}
			}
		}
	}
	if best == nil {
		return false, x, nil
	}
	next := applyReplacement(x, best)
	if next.NumGates() < x.NumGates() {
		return true, next, nil
	}
	return false, x, nil
}

// applyReplacement rebuilds the network, instantiating the candidate
// structure at the target node. Structural hashing in the new network
// captures DAG-aware sharing automatically.
func applyReplacement(x *network.XAG, cand *candidate) *network.XAG {
	nw := network.New()
	nw.Name = x.Name
	mapping := make([]network.Signal, x.NumNodes())
	mapping[0] = nw.Const(false)
	for i := 0; i < x.NumPIs(); i++ {
		mapping[x.PI(i).Node()] = nw.NewPI(x.PIName(i))
	}
	mapSig := func(s network.Signal) network.Signal {
		return mapping[s.Node()].NotIf(s.Neg())
	}
	for n := 1; n < x.NumNodes(); n++ {
		kind := x.Kind(n)
		if kind != network.KindAnd && kind != network.KindXor {
			continue
		}
		if n == cand.node {
			// Instantiate the replacement over the mapped cut leaves.
			leafSigs := make([]network.Signal, len(cand.cut))
			for i, l := range cand.cut {
				leafSigs[i] = mapping[l]
			}
			mapping[n] = buildStructure(nw, cand.st, leafSigs)
			continue
		}
		a, b := x.FanIns(n)
		if kind == network.KindAnd {
			mapping[n] = nw.And(mapSig(a), mapSig(b))
		} else {
			mapping[n] = nw.Xor(mapSig(a), mapSig(b))
		}
	}
	for i := 0; i < x.NumPOs(); i++ {
		nw.NewPO(mapSig(x.PO(i)), x.POName(i))
	}
	return nw.Cleanup()
}

// buildStructure instantiates a synthesized structure over leaf signals.
func buildStructure(nw *network.XAG, st npn.Structure, leaves []network.Signal) network.Signal {
	sigs := make([]network.Signal, st.NumInputs+len(st.Gates))
	copy(sigs, leaves)
	for i, g := range st.Gates {
		a := sigs[g.In0].NotIf(g.Neg0)
		b := sigs[g.In1].NotIf(g.Neg1)
		if g.IsXor {
			sigs[st.NumInputs+i] = nw.Xor(a, b)
		} else {
			sigs[st.NumInputs+i] = nw.And(a, b)
		}
	}
	if st.OutVar < 0 {
		return nw.Const(st.OutNeg)
	}
	return sigs[st.OutVar].NotIf(st.OutNeg)
}
