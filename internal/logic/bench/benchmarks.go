package bench

import (
	"fmt"
	"sort"

	"repro/internal/logic/network"
)

// Benchmark is one of the Table 1 evaluation circuits.
type Benchmark struct {
	Name   string // benchmark name as printed in Table 1
	Suite  string // "trindade16" [43] or "fontes18" [13]
	Source string // .bench netlist
	// PaperW, PaperH, PaperSiDBs, PaperArea record the Table 1 reference
	// values for the EXPERIMENTS.md comparison.
	PaperW, PaperH, PaperSiDBs int
	PaperArea                  float64
	// Note documents reconstruction caveats (see DESIGN.md §3).
	Note string
}

// Benchmarks lists all Table 1 circuits in paper order.
//
// c17 is the exact ISCAS-85 netlist. The trindade16 functions follow the
// published benchmark set. The fontes18 netlists are functional
// reconstructions with matching I/O counts: the original Verilog is not
// redistributed with the paper.
var Benchmarks = []Benchmark{
	{
		Name: "xor2", Suite: "trindade16",
		PaperW: 2, PaperH: 3, PaperSiDBs: 58, PaperArea: 2403.98,
		Source: `# 2-input XOR
INPUT(a)
INPUT(b)
OUTPUT(f)
f = XOR(a, b)
`,
	},
	{
		Name: "xnor2", Suite: "trindade16",
		PaperW: 2, PaperH: 3, PaperSiDBs: 58, PaperArea: 2403.98,
		Source: `# 2-input XNOR
INPUT(a)
INPUT(b)
OUTPUT(f)
f = XNOR(a, b)
`,
	},
	{
		Name: "par_gen", Suite: "trindade16",
		PaperW: 3, PaperH: 4, PaperSiDBs: 103, PaperArea: 4830.22,
		Source: `# 3-bit even-parity generator
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(p)
t = XOR(a, b)
p = XOR(t, c)
`,
	},
	{
		Name: "mux21", Suite: "trindade16",
		PaperW: 3, PaperH: 6, PaperSiDBs: 196, PaperArea: 7258.52,
		Source: `# 2:1 multiplexer
INPUT(a)
INPUT(b)
INPUT(s)
OUTPUT(f)
ns = NOT(s)
t0 = AND(a, ns)
t1 = AND(b, s)
f = OR(t0, t1)
`,
	},
	{
		Name: "par_check", Suite: "trindade16",
		PaperW: 4, PaperH: 7, PaperSiDBs: 284, PaperArea: 11312.68,
		Source: `# 4-bit parity checker (3 data bits + parity bit -> error flag)
INPUT(d0)
INPUT(d1)
INPUT(d2)
INPUT(p)
OUTPUT(err)
e0 = XNOR(d0, d1)
e1 = XNOR(d2, p)
err = XNOR(e0, e1)
`,
	},
	{
		Name: "xor5_r1", Suite: "fontes18",
		PaperW: 5, PaperH: 6, PaperSiDBs: 232, PaperArea: 12124.57,
		Source: `# 5-input XOR, balanced-tree realization
INPUT(x0)
INPUT(x1)
INPUT(x2)
INPUT(x3)
INPUT(x4)
OUTPUT(f)
t0 = XOR(x0, x1)
t1 = XOR(x2, x3)
t2 = XOR(t0, t1)
f = XOR(t2, x4)
`,
	},
	{
		Name: "xor5_majority", Suite: "fontes18",
		PaperW: 5, PaperH: 6, PaperSiDBs: 244, PaperArea: 12124.57,
		Note: "xor5 realized through majority gates, as in the original QCA benchmark",
		Source: `# 5-input XOR built from majority gates (MAJ-based XOR cells)
INPUT(x0)
INPUT(x1)
INPUT(x2)
INPUT(x3)
INPUT(x4)
OUTPUT(f)
a0 = MAJ(x0, x1, c0)
o0 = MAJ(x0, x1, c1)
n0 = NOT(a0)
t0 = MAJ(o0, n0, c0)
a1 = MAJ(x2, x3, c0)
o1 = MAJ(x2, x3, c1)
n1 = NOT(a1)
t1 = MAJ(o1, n1, c0)
a2 = MAJ(t0, t1, c0)
o2 = MAJ(t0, t1, c1)
n2 = NOT(a2)
t2 = MAJ(o2, n2, c0)
a3 = MAJ(t2, x4, c0)
o3 = MAJ(t2, x4, c1)
n3 = NOT(a3)
f = MAJ(o3, n3, c0)
c0 = CONST0()
c1 = CONST1()
`,
	},
	{
		Name: "t", Suite: "fontes18",
		PaperW: 5, PaperH: 8, PaperSiDBs: 426, PaperArea: 16180.79,
		Note: "reconstructed control-logic netlist with the original 5-in/2-out interface",
		Source: `# t: small two-output control block
INPUT(a)
INPUT(b)
INPUT(c)
INPUT(d)
INPUT(e)
OUTPUT(f)
OUTPUT(g)
w0 = AND(a, b)
w1 = OR(c, d)
w2 = XOR(w0, w1)
w3 = AND(w1, e)
f = OR(w2, w3)
g = NAND(w0, e)
`,
	},
	{
		Name: "t_5", Suite: "fontes18",
		PaperW: 5, PaperH: 8, PaperSiDBs: 448, PaperArea: 16180.79,
		Note: "alternative realization of t (same functions, different structure)",
		Source: `# t_5: alternative realization of t
INPUT(a)
INPUT(b)
INPUT(c)
INPUT(d)
INPUT(e)
OUTPUT(f)
OUTPUT(g)
v0 = NAND(a, b)
w0 = NOT(v0)
w1 = NOR(c, d)
nw1 = NOT(w1)
w2 = XNOR(w0, nw1)
nw2 = NOT(w2)
w3 = AND(nw1, e)
f = OR(nw2, w3)
g = NAND(w0, e)
`,
	},
	{
		Name: "c17", Suite: "fontes18",
		PaperW: 5, PaperH: 8, PaperSiDBs: 396, PaperArea: 16180.79,
		Note: "exact ISCAS-85 c17 netlist [7]",
		Source: `# ISCAS-85 c17
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)
OUTPUT(G22)
OUTPUT(G23)
G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
`,
	},
	{
		Name: "majority", Suite: "fontes18",
		PaperW: 5, PaperH: 11, PaperSiDBs: 651, PaperArea: 22265.12,
		Note: "3-input majority in AND/OR form, as in the QCA benchmark set",
		Source: `# 3-input majority voter
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(m)
t0 = AND(a, b)
t1 = AND(a, c)
t2 = AND(b, c)
t3 = OR(t0, t1)
m = OR(t3, t2)
`,
	},
	{
		Name: "majority_5_r1", Suite: "fontes18",
		PaperW: 5, PaperH: 12, PaperSiDBs: 737, PaperArea: 24293.23,
		Note: "5-input majority via full-adder compression",
		Source: `# 5-input majority voter via carry-save compression:
# count(x0..x4) = 2*(c0+c1+l) + (s1^s2); majority iff count >= 3.
INPUT(x0)
INPUT(x1)
INPUT(x2)
INPUT(x3)
INPUT(x4)
OUTPUT(m)
s0 = XOR(x0, x1)
s1 = XOR(s0, x2)
c0 = MAJ(x0, x1, x2)
s2 = XOR(x3, x4)
c1 = AND(x3, x4)
l = AND(s1, s2)
h = MAJ(c0, c1, l)
any2 = OR(c0, c1, l)
ones = XOR(s1, s2)
lo = AND(any2, ones)
m = OR(h, lo)
`,
	},
	{
		Name: "cm82a_5", Suite: "fontes18",
		PaperW: 5, PaperH: 15, PaperSiDBs: 1211, PaperArea: 30377.56,
		Note: "cm82a (MCNC) 2-bit adder slice: 5 inputs, 3 outputs",
		Source: `# cm82a_5: two chained full adders
INPUT(a)
INPUT(b)
INPUT(cin)
INPUT(c)
INPUT(d)
OUTPUT(s0)
OUTPUT(s1)
OUTPUT(cout)
t0 = XOR(a, b)
s0 = XOR(t0, cin)
k0 = MAJ(a, b, cin)
t1 = XOR(c, d)
s1 = XOR(t1, k0)
cout = MAJ(c, d, k0)
`,
	},
	{
		Name: "newtag", Suite: "fontes18",
		PaperW: 8, PaperH: 10, PaperSiDBs: 651, PaperArea: 32419.82,
		Note: "newtag (MCNC) reconstruction: 8 inputs, 1 output tag-match logic",
		Source: `# newtag: 8-input tag comparator slice
INPUT(a0)
INPUT(a1)
INPUT(a2)
INPUT(a3)
INPUT(b0)
INPUT(b1)
INPUT(b2)
INPUT(b3)
OUTPUT(hit)
m0 = XNOR(a0, b0)
m1 = XNOR(a1, b1)
m2 = XNOR(a2, b2)
m3 = XNOR(a3, b3)
h0 = AND(m0, m1)
h1 = AND(m2, m3)
hit = AND(h0, h1)
`,
	},
}

// Load parses the named benchmark into an XAG.
func Load(name string) (*network.XAG, error) {
	for _, b := range Benchmarks {
		if b.Name == name {
			return ParseBench(b.Name, b.Source)
		}
	}
	return nil, fmt.Errorf("bench: unknown benchmark %q", name)
}

// Names returns all benchmark names in Table 1 order.
func Names() []string {
	out := make([]string, len(Benchmarks))
	for i, b := range Benchmarks {
		out[i] = b.Name
	}
	return out
}

// ByName returns the Benchmark record for name.
func ByName(name string) (Benchmark, bool) {
	for _, b := range Benchmarks {
		if b.Name == name {
			return b, true
		}
	}
	return Benchmark{}, false
}

// SuiteNames returns the sorted list of distinct suites.
func SuiteNames() []string {
	set := map[string]bool{}
	for _, b := range Benchmarks {
		set[b.Suite] = true
	}
	var out []string
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}
