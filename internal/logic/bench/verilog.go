package bench

import (
	"fmt"
	"strings"
	"unicode"

	"repro/internal/logic/network"
)

// ParseVerilog parses a small structural Verilog subset into an XAG. The
// subset covers what gate-level FCN benchmarks use: one module with input,
// output, and wire declarations plus continuous assignments built from
// identifiers, ~, &, |, ^, parentheses, and the constants 1'b0/1'b1.
func ParseVerilog(src string) (*network.XAG, error) {
	p := &vParser{src: src}
	return p.parse()
}

type vParser struct {
	src string
}

// parse walks the module statements.
func (p *vParser) parse() (*network.XAG, error) {
	src := stripComments(p.src)
	x := network.New()
	signals := map[string]network.Signal{}
	type assign struct{ lhs, rhs string }
	var assigns []assign
	var outputs []string
	declared := map[string]bool{}

	stmts := strings.Split(src, ";")
	for _, stmt := range stmts {
		stmt = strings.TrimSpace(stmt)
		if stmt == "" || stmt == "endmodule" {
			continue
		}
		// The endmodule keyword has no semicolon; it may be glued to the
		// last statement after splitting.
		stmt = strings.TrimSuffix(stmt, "endmodule")
		stmt = strings.TrimSpace(stmt)
		if stmt == "" {
			continue
		}
		switch {
		case strings.HasPrefix(stmt, "module"):
			rest := strings.TrimSpace(strings.TrimPrefix(stmt, "module"))
			if i := strings.IndexByte(rest, '('); i >= 0 {
				x.Name = strings.TrimSpace(rest[:i])
			} else {
				x.Name = rest
			}
		case strings.HasPrefix(stmt, "input"):
			for _, n := range splitIdentList(strings.TrimPrefix(stmt, "input")) {
				if declared[n] {
					return nil, fmt.Errorf("verilog: %q declared twice", n)
				}
				declared[n] = true
				signals[n] = x.NewPI(n)
			}
		case strings.HasPrefix(stmt, "output"):
			for _, n := range splitIdentList(strings.TrimPrefix(stmt, "output")) {
				if declared[n] {
					return nil, fmt.Errorf("verilog: %q declared twice", n)
				}
				declared[n] = true
				outputs = append(outputs, n)
			}
		case strings.HasPrefix(stmt, "wire"):
			for _, n := range splitIdentList(strings.TrimPrefix(stmt, "wire")) {
				declared[n] = true
			}
		case strings.HasPrefix(stmt, "assign"):
			body := strings.TrimSpace(strings.TrimPrefix(stmt, "assign"))
			eq := strings.IndexByte(body, '=')
			if eq < 0 {
				return nil, fmt.Errorf("verilog: malformed assign %q", stmt)
			}
			assigns = append(assigns, assign{
				lhs: strings.TrimSpace(body[:eq]),
				rhs: strings.TrimSpace(body[eq+1:]),
			})
		default:
			return nil, fmt.Errorf("verilog: unsupported statement %q", stmt)
		}
	}

	// Resolve assignments to a fixpoint (they may be out of order).
	remaining := assigns
	for len(remaining) > 0 {
		var next []assign
		progress := false
		for _, a := range remaining {
			sig, err := evalExpr(x, a.rhs, signals)
			if err != nil {
				if _, unresolved := err.(errUnresolved); unresolved {
					next = append(next, a)
					continue
				}
				return nil, err
			}
			if _, dup := signals[a.lhs]; dup {
				return nil, fmt.Errorf("verilog: %q assigned twice", a.lhs)
			}
			signals[a.lhs] = sig
			progress = true
		}
		if !progress {
			return nil, fmt.Errorf("verilog: unresolvable assign to %q", next[0].lhs)
		}
		remaining = next
	}

	for _, o := range outputs {
		s, ok := signals[o]
		if !ok {
			return nil, fmt.Errorf("verilog: output %q never assigned", o)
		}
		x.NewPO(s, o)
	}
	if x.NumPOs() == 0 {
		return nil, fmt.Errorf("verilog: no outputs")
	}
	return x, nil
}

// stripComments removes // line and /* */ block comments.
func stripComments(s string) string {
	var sb strings.Builder
	for i := 0; i < len(s); {
		if strings.HasPrefix(s[i:], "//") {
			j := strings.IndexByte(s[i:], '\n')
			if j < 0 {
				break
			}
			i += j
			continue
		}
		if strings.HasPrefix(s[i:], "/*") {
			j := strings.Index(s[i:], "*/")
			if j < 0 {
				break
			}
			i += j + 2
			continue
		}
		sb.WriteByte(s[i])
		i++
	}
	return sb.String()
}

// splitIdentList splits "a, b, c" into identifiers.
func splitIdentList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part != "" {
			out = append(out, part)
		}
	}
	return out
}

// errUnresolved marks expressions that reference not-yet-defined wires.
type errUnresolved string

func (e errUnresolved) Error() string { return "unresolved identifier " + string(e) }

// evalExpr parses and evaluates an expression with precedence
// ~ > & > ^ > | (standard Verilog ordering).
func evalExpr(x *network.XAG, expr string, env map[string]network.Signal) (network.Signal, error) {
	toks, err := tokenize(expr)
	if err != nil {
		return 0, err
	}
	p := &exprParser{x: x, toks: toks, env: env}
	s, err := p.parseOr()
	if err != nil {
		return 0, err
	}
	if p.pos != len(p.toks) {
		return 0, fmt.Errorf("verilog: trailing tokens in %q", expr)
	}
	return s, nil
}

type exprParser struct {
	x    *network.XAG
	toks []string
	pos  int
	env  map[string]network.Signal
}

func (p *exprParser) peek() string {
	if p.pos < len(p.toks) {
		return p.toks[p.pos]
	}
	return ""
}

func (p *exprParser) parseOr() (network.Signal, error) {
	s, err := p.parseXor()
	if err != nil {
		return 0, err
	}
	for p.peek() == "|" {
		p.pos++
		r, err := p.parseXor()
		if err != nil {
			return 0, err
		}
		s = p.x.Or(s, r)
	}
	return s, nil
}

func (p *exprParser) parseXor() (network.Signal, error) {
	s, err := p.parseAnd()
	if err != nil {
		return 0, err
	}
	for p.peek() == "^" {
		p.pos++
		r, err := p.parseAnd()
		if err != nil {
			return 0, err
		}
		s = p.x.Xor(s, r)
	}
	return s, nil
}

func (p *exprParser) parseAnd() (network.Signal, error) {
	s, err := p.parseUnary()
	if err != nil {
		return 0, err
	}
	for p.peek() == "&" {
		p.pos++
		r, err := p.parseUnary()
		if err != nil {
			return 0, err
		}
		s = p.x.And(s, r)
	}
	return s, nil
}

func (p *exprParser) parseUnary() (network.Signal, error) {
	if p.peek() == "~" {
		p.pos++
		s, err := p.parseUnary()
		return s.Not(), err
	}
	return p.parsePrimary()
}

func (p *exprParser) parsePrimary() (network.Signal, error) {
	tok := p.peek()
	switch {
	case tok == "(":
		p.pos++
		s, err := p.parseOr()
		if err != nil {
			return 0, err
		}
		if p.peek() != ")" {
			return 0, fmt.Errorf("verilog: missing closing parenthesis")
		}
		p.pos++
		return s, nil
	case tok == "1'b0":
		p.pos++
		return p.x.Const(false), nil
	case tok == "1'b1":
		p.pos++
		return p.x.Const(true), nil
	case tok == "":
		return 0, fmt.Errorf("verilog: unexpected end of expression")
	default:
		if !isIdent(tok) {
			return 0, fmt.Errorf("verilog: unexpected token %q", tok)
		}
		s, ok := p.env[tok]
		if !ok {
			return 0, errUnresolved(tok)
		}
		p.pos++
		return s, nil
	}
}

// tokenize splits a Verilog expression into tokens.
func tokenize(s string) ([]string, error) {
	var toks []string
	for i := 0; i < len(s); {
		c := s[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '~' || c == '&' || c == '|' || c == '^' || c == '(' || c == ')':
			toks = append(toks, string(c))
			i++
		case c == '1' && strings.HasPrefix(s[i:], "1'b"):
			if i+3 >= len(s) || (s[i+3] != '0' && s[i+3] != '1') {
				return nil, fmt.Errorf("verilog: bad constant at %q", s[i:])
			}
			toks = append(toks, s[i:i+4])
			i += 4
		case isIdentStart(rune(c)):
			j := i + 1
			for j < len(s) && isIdentChar(rune(s[j])) {
				j++
			}
			toks = append(toks, s[i:j])
			i = j
		default:
			return nil, fmt.Errorf("verilog: unexpected character %q", c)
		}
	}
	return toks, nil
}

func isIdentStart(r rune) bool { return unicode.IsLetter(r) || r == '_' }
func isIdentChar(r rune) bool  { return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' }

func isIdent(s string) bool {
	if s == "" || !isIdentStart(rune(s[0])) {
		return false
	}
	for _, r := range s[1:] {
		if !isIdentChar(r) {
			return false
		}
	}
	return true
}
