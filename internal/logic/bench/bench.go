// Package bench parses and writes logic-level circuit specifications.
//
// Two input formats are supported, mirroring the paper's flow step (1)
// ("parse a specification file as XAG"):
//
//   - the ISCAS/Berkeley ".bench" netlist format (INPUT/OUTPUT/gate lines),
//   - a small structural Verilog subset (module, input, output, wire,
//     assign with ~ & | ^ and parentheses).
//
// Both parsers produce XAGs. The package also embeds the fourteen benchmark
// circuits of Table 1 (the trindade16 and fontes18 sets).
package bench

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/logic/network"
)

// ParseBench parses a .bench netlist into an XAG.
func ParseBench(name, src string) (*network.XAG, error) {
	x := network.New()
	x.Name = name
	signals := map[string]network.Signal{}
	type gateDef struct {
		out  string
		op   string
		args []string
		line int
	}
	var gates []gateDef
	var outputs []string

	for lineNo, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		up := strings.ToUpper(line)
		switch {
		case strings.HasPrefix(up, "INPUT(") || strings.HasPrefix(up, "INPUT ("):
			arg, err := parenArg(line)
			if err != nil {
				return nil, fmt.Errorf("bench %s line %d: %v", name, lineNo+1, err)
			}
			if _, dup := signals[arg]; dup {
				return nil, fmt.Errorf("bench %s line %d: duplicate input %q", name, lineNo+1, arg)
			}
			signals[arg] = x.NewPI(arg)
		case strings.HasPrefix(up, "OUTPUT(") || strings.HasPrefix(up, "OUTPUT ("):
			arg, err := parenArg(line)
			if err != nil {
				return nil, fmt.Errorf("bench %s line %d: %v", name, lineNo+1, err)
			}
			outputs = append(outputs, arg)
		default:
			eq := strings.IndexByte(line, '=')
			if eq < 0 {
				return nil, fmt.Errorf("bench %s line %d: cannot parse %q", name, lineNo+1, line)
			}
			out := strings.TrimSpace(line[:eq])
			rhs := strings.TrimSpace(line[eq+1:])
			open := strings.IndexByte(rhs, '(')
			close := strings.LastIndexByte(rhs, ')')
			if open < 0 || close < open {
				return nil, fmt.Errorf("bench %s line %d: malformed gate %q", name, lineNo+1, line)
			}
			op := strings.ToUpper(strings.TrimSpace(rhs[:open]))
			var args []string
			for _, a := range strings.Split(rhs[open+1:close], ",") {
				a = strings.TrimSpace(a)
				if a != "" {
					args = append(args, a)
				}
			}
			gates = append(gates, gateDef{out: out, op: op, args: args, line: lineNo + 1})
		}
	}

	// Resolve gates; netlists may define gates in any order, so iterate until
	// a fixpoint or report the first unresolvable gate.
	remaining := gates
	for len(remaining) > 0 {
		var next []gateDef
		progress := false
		for _, g := range remaining {
			ins := make([]network.Signal, 0, len(g.args))
			ok := true
			for _, a := range g.args {
				s, have := signals[a]
				if !have {
					ok = false
					break
				}
				ins = append(ins, s)
			}
			if !ok {
				next = append(next, g)
				continue
			}
			sig, err := buildGate(x, g.op, ins)
			if err != nil {
				return nil, fmt.Errorf("bench %s line %d: %v", name, g.line, err)
			}
			if _, dup := signals[g.out]; dup {
				return nil, fmt.Errorf("bench %s line %d: signal %q redefined", name, g.line, g.out)
			}
			signals[g.out] = sig
			progress = true
		}
		if !progress {
			return nil, fmt.Errorf("bench %s: unresolvable signals (cycle or missing): %q", name, next[0].out)
		}
		remaining = next
	}

	for _, o := range outputs {
		s, ok := signals[o]
		if !ok {
			return nil, fmt.Errorf("bench %s: output %q never defined", name, o)
		}
		x.NewPO(s, o)
	}
	if x.NumPOs() == 0 {
		return nil, fmt.Errorf("bench %s: no outputs", name)
	}
	return x, nil
}

// parenArg extracts the single argument of "KEYWORD(arg)".
func parenArg(line string) (string, error) {
	open := strings.IndexByte(line, '(')
	close := strings.LastIndexByte(line, ')')
	if open < 0 || close < open {
		return "", fmt.Errorf("malformed declaration %q", line)
	}
	arg := strings.TrimSpace(line[open+1 : close])
	if arg == "" {
		return "", fmt.Errorf("empty declaration %q", line)
	}
	return arg, nil
}

// buildGate folds an n-ary gate into XAG primitives.
func buildGate(x *network.XAG, op string, ins []network.Signal) (network.Signal, error) {
	reduce := func(f func(a, b network.Signal) network.Signal) (network.Signal, error) {
		if len(ins) < 2 {
			return 0, fmt.Errorf("%s needs at least 2 inputs, got %d", op, len(ins))
		}
		acc := ins[0]
		for _, s := range ins[1:] {
			acc = f(acc, s)
		}
		return acc, nil
	}
	switch op {
	case "AND":
		return reduce(x.And)
	case "OR":
		return reduce(x.Or)
	case "XOR":
		return reduce(x.Xor)
	case "NAND":
		s, err := reduce(x.And)
		return s.Not(), err
	case "NOR":
		s, err := reduce(x.Or)
		return s.Not(), err
	case "XNOR":
		s, err := reduce(x.Xor)
		return s.Not(), err
	case "NOT", "INV":
		if len(ins) != 1 {
			return 0, fmt.Errorf("NOT needs exactly 1 input, got %d", len(ins))
		}
		return ins[0].Not(), nil
	case "BUF", "BUFF":
		if len(ins) != 1 {
			return 0, fmt.Errorf("BUF needs exactly 1 input, got %d", len(ins))
		}
		return ins[0], nil
	case "MAJ":
		if len(ins) != 3 {
			return 0, fmt.Errorf("MAJ needs exactly 3 inputs, got %d", len(ins))
		}
		return x.Maj(ins[0], ins[1], ins[2]), nil
	case "MUX":
		if len(ins) != 3 {
			return 0, fmt.Errorf("MUX needs exactly 3 inputs (sel, then, else), got %d", len(ins))
		}
		return x.Mux(ins[0], ins[1], ins[2]), nil
	case "CONST0", "GND":
		return x.Const(false), nil
	case "CONST1", "VDD":
		return x.Const(true), nil
	default:
		return 0, fmt.Errorf("unknown gate type %q", op)
	}
}

// WriteBench renders the XAG back into .bench format, expressing AND and XOR
// nodes directly and inverters as NOT gates.
func WriteBench(x *network.XAG) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "# %s\n", x.Name)
	nameOf := make(map[int]string)
	for i := 0; i < x.NumPIs(); i++ {
		n := x.PI(i).Node()
		name := x.PIName(i)
		if name == "" {
			name = fmt.Sprintf("pi%d", i)
		}
		nameOf[n] = name
		fmt.Fprintf(&sb, "INPUT(%s)\n", name)
	}
	poNames := make([]string, x.NumPOs())
	for i := 0; i < x.NumPOs(); i++ {
		name := x.POName(i)
		if name == "" {
			name = fmt.Sprintf("po%d", i)
		}
		poNames[i] = name
		fmt.Fprintf(&sb, "OUTPUT(%s)\n", name)
	}
	constUsed := false
	ref := func(s network.Signal) string {
		if s.Node() == 0 {
			constUsed = true
			if s.Neg() {
				return "const1"
			}
			return "const0"
		}
		base := nameOf[s.Node()]
		if s.Neg() {
			return base + "_n"
		}
		return base
	}
	var body strings.Builder
	negEmitted := map[string]bool{}
	emitNeg := func(s network.Signal) {
		if !s.Neg() || s.Node() == 0 {
			return
		}
		base := nameOf[s.Node()]
		if !negEmitted[base] {
			fmt.Fprintf(&body, "%s_n = NOT(%s)\n", base, base)
			negEmitted[base] = true
		}
	}
	for _, n := range x.TopoOrder() {
		k := x.Kind(n)
		if k != network.KindAnd && k != network.KindXor {
			continue
		}
		a, b := x.FanIns(n)
		name := fmt.Sprintf("g%d", n)
		nameOf[n] = name
		emitNeg(a)
		emitNeg(b)
		op := "AND"
		if k == network.KindXor {
			op = "XOR"
		}
		fmt.Fprintf(&body, "%s = %s(%s, %s)\n", name, op, ref(a), ref(b))
	}
	for i := 0; i < x.NumPOs(); i++ {
		po := x.PO(i)
		emitNeg(po)
		if po.Neg() || nameOf[po.Node()] != poNames[i] {
			fmt.Fprintf(&body, "%s = BUF(%s)\n", poNames[i], ref(po))
		}
	}
	if constUsed {
		sb.WriteString("const0 = CONST0()\nconst1 = CONST1()\n")
	}
	sb.WriteString(body.String())
	return sb.String()
}

// SortedSignalNames returns the deterministic sorted key list of a signal
// map; exposed for tests.
func SortedSignalNames(m map[string]network.Signal) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
