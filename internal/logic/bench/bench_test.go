package bench

import (
	"math/bits"
	"strings"
	"testing"

	"repro/internal/logic/network"
)

func TestParseBenchSimple(t *testing.T) {
	src := `
# comment
INPUT(a)
INPUT(b)
OUTPUT(f)
f = AND(a, b)
`
	x, err := ParseBench("and2", src)
	if err != nil {
		t.Fatal(err)
	}
	if x.NumPIs() != 2 || x.NumPOs() != 1 || x.NumGates() != 1 {
		t.Fatalf("unexpected shape: %v", x)
	}
	if got := x.TruthTables()[0].Hex(); got != "8" {
		t.Errorf("and2 = %s", got)
	}
}

func TestParseBenchOutOfOrder(t *testing.T) {
	src := `
INPUT(a)
INPUT(b)
OUTPUT(f)
f = NOT(g)
g = OR(a, b)
`
	x, err := ParseBench("nor2", src)
	if err != nil {
		t.Fatal(err)
	}
	if got := x.TruthTables()[0].Hex(); got != "1" {
		t.Errorf("nor2 = %s", got)
	}
}

func TestParseBenchErrors(t *testing.T) {
	cases := map[string]string{
		"no outputs":     "INPUT(a)\n",
		"unknown gate":   "INPUT(a)\nOUTPUT(f)\nf = FROB(a)\n",
		"cycle":          "INPUT(a)\nOUTPUT(f)\nf = AND(a, g)\ng = AND(a, f)\n",
		"missing signal": "INPUT(a)\nOUTPUT(f)\nf = AND(a, nothere)\n",
		"redefined":      "INPUT(a)\nINPUT(b)\nOUTPUT(f)\nf = AND(a, b)\nf = OR(a, b)\n",
		"dup input":      "INPUT(a)\nINPUT(a)\nOUTPUT(a)\n",
		"bad line":       "INPUT(a)\nOUTPUT(f)\nf AND a b\n",
		"undef output":   "INPUT(a)\nOUTPUT(zzz)\n",
	}
	for name, src := range cases {
		if _, err := ParseBench(name, src); err == nil {
			t.Errorf("%s: expected parse error", name)
		}
	}
}

func TestParseBenchVariadicGates(t *testing.T) {
	src := `
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(f)
f = AND(a, b, c)
`
	x, err := ParseBench("and3", src)
	if err != nil {
		t.Fatal(err)
	}
	if got := x.TruthTables()[0].Hex(); got != "80" {
		t.Errorf("and3 = %s, want 80", got)
	}
}

func TestAllBenchmarksParse(t *testing.T) {
	for _, b := range Benchmarks {
		x, err := Load(b.Name)
		if err != nil {
			t.Errorf("%s: %v", b.Name, err)
			continue
		}
		if x.NumPOs() == 0 || x.NumPIs() == 0 {
			t.Errorf("%s: degenerate interface", b.Name)
		}
	}
	if len(Benchmarks) != 14 {
		t.Errorf("Table 1 has 14 rows, embedded %d", len(Benchmarks))
	}
}

// popcount-based functional specs for the Table 1 circuits.
func TestBenchmarkSemantics(t *testing.T) {
	check := func(name string, spec func(in uint32) uint32) {
		t.Helper()
		x, err := Load(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for in := uint32(0); in < 1<<x.NumPIs(); in++ {
			if got, want := x.Simulate(in), spec(in); got != want {
				t.Errorf("%s(%b) = %b, want %b", name, in, got, want)
			}
		}
	}

	parity := func(in uint32) uint32 { return uint32(bits.OnesCount32(in)) & 1 }

	check("xor2", parity)
	check("xnor2", func(in uint32) uint32 { return parity(in) ^ 1 })
	check("par_gen", parity)
	// par_check: XNOR(XNOR(d0,d1), XNOR(d2,p)) == even-parity indicator...
	// output is 1 iff total parity is even? e0 = !(d0^d1), e1 = !(d2^p),
	// err = !(e0^e1) = !(d0^d1^d2^p) inverted twice = d0^d1^d2^p ... compute:
	// e0^e1 = (d0^d1)^(d2^p), so err = NOT(parity) -> flags even parity.
	check("par_check", func(in uint32) uint32 { return parity(in) ^ 1 })
	check("xor5_r1", parity)
	check("xor5_majority", parity)
	check("majority", func(in uint32) uint32 {
		if bits.OnesCount32(in&7) >= 2 {
			return 1
		}
		return 0
	})
	check("majority_5_r1", func(in uint32) uint32 {
		if bits.OnesCount32(in&31) >= 3 {
			return 1
		}
		return 0
	})
	check("mux21", func(in uint32) uint32 {
		a, b, s := in&1, in>>1&1, in>>2&1
		if s == 1 {
			return b
		}
		return a
	})
	check("cm82a_5", func(in uint32) uint32 {
		a, b, cin := in&1, in>>1&1, in>>2&1
		c, d := in>>3&1, in>>4&1
		sum0 := a + b + cin
		s0, k0 := sum0&1, sum0>>1
		sum1 := c + d + k0
		s1, cout := sum1&1, sum1>>1
		return s0 | s1<<1 | cout<<2
	})
	check("newtag", func(in uint32) uint32 {
		a := in & 0xf
		b := in >> 4 & 0xf
		if a == b {
			return 1
		}
		return 0
	})
}

func TestC17KnownVectors(t *testing.T) {
	x, err := Load("c17")
	if err != nil {
		t.Fatal(err)
	}
	// Reference model of the c17 NAND network, PIs in declared order
	// G1,G2,G3,G6,G7 (bits 0..4).
	ref := func(in uint32) uint32 {
		g1, g2, g3 := in&1, in>>1&1, in>>2&1
		g6, g7 := in>>3&1, in>>4&1
		nand := func(a, b uint32) uint32 { return (a & b) ^ 1 }
		g10 := nand(g1, g3)
		g11 := nand(g3, g6)
		g16 := nand(g2, g11)
		g19 := nand(g11, g7)
		return nand(g10, g16) | nand(g16, g19)<<1
	}
	for in := uint32(0); in < 32; in++ {
		if got, want := x.Simulate(in), ref(in); got != want {
			t.Errorf("c17(%05b) = %02b, want %02b", in, got, want)
		}
	}
}

func TestTAndT5Equivalent(t *testing.T) {
	a, err := Load("t")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Load("t_5")
	if err != nil {
		t.Fatal(err)
	}
	if a.NumPIs() != b.NumPIs() || a.NumPOs() != b.NumPOs() {
		t.Fatal("t and t_5 interfaces differ")
	}
	for in := uint32(0); in < 1<<a.NumPIs(); in++ {
		if a.Simulate(in) != b.Simulate(in) {
			t.Errorf("t vs t_5 mismatch at %05b", in)
		}
	}
}

func TestWriteBenchRoundTrip(t *testing.T) {
	for _, b := range Benchmarks {
		x, err := Load(b.Name)
		if err != nil {
			t.Fatal(err)
		}
		out := WriteBench(x)
		y, err := ParseBench(b.Name, out)
		if err != nil {
			t.Fatalf("%s: reparse failed: %v\n%s", b.Name, err, out)
		}
		if y.NumPIs() != x.NumPIs() || y.NumPOs() != x.NumPOs() {
			t.Fatalf("%s: interface changed in round trip", b.Name)
		}
		for in := uint32(0); in < 1<<x.NumPIs(); in++ {
			if x.Simulate(in) != y.Simulate(in) {
				t.Fatalf("%s: round trip changed function at %b", b.Name, in)
			}
		}
	}
}

func TestParseVerilog(t *testing.T) {
	src := `
// 2:1 mux
module mux21(a, b, s, f);
  input a, b, s;
  output f;
  wire t0, t1;
  assign t0 = a & ~s;
  assign t1 = b & s;
  assign f = t0 | t1;
endmodule
`
	x, err := ParseVerilog(src)
	if err != nil {
		t.Fatal(err)
	}
	if x.Name != "mux21" {
		t.Errorf("module name = %q", x.Name)
	}
	for in := uint32(0); in < 8; in++ {
		a, b, s := in&1, in>>1&1, in>>2&1
		want := a
		if s == 1 {
			want = b
		}
		if got := x.Simulate(in); got != want {
			t.Errorf("mux(%03b) = %d, want %d", in, got, want)
		}
	}
}

func TestParseVerilogPrecedence(t *testing.T) {
	src := `
module prec(a, b, c, f);
  input a, b, c;
  output f;
  assign f = a | b & c ^ a;  /* & binds tighter than ^ binds tighter than | */
endmodule
`
	x, err := ParseVerilog(src)
	if err != nil {
		t.Fatal(err)
	}
	for in := uint32(0); in < 8; in++ {
		a, b, c := in&1, in>>1&1, in>>2&1
		want := a | ((b & c) ^ a)
		if got := x.Simulate(in); got != want {
			t.Errorf("prec(%03b) = %d, want %d", in, got, want)
		}
	}
}

func TestParseVerilogConstantsAndOrder(t *testing.T) {
	src := `
module k(a, f);
  input a;
  output f;
  wire w;
  assign f = w ^ 1'b1;
  assign w = a & 1'b1;
endmodule
`
	x, err := ParseVerilog(src)
	if err != nil {
		t.Fatal(err)
	}
	if x.Simulate(0) != 1 || x.Simulate(1) != 0 {
		t.Error("constant handling wrong")
	}
}

func TestParseVerilogErrors(t *testing.T) {
	cases := map[string]string{
		"unassigned out": "module m(a, f); input a; output f; endmodule",
		"double assign":  "module m(a, f); input a; output f; assign f = a; assign f = ~a; endmodule",
		"bad token":      "module m(a, f); input a; output f; assign f = a + a; endmodule",
		"unbalanced":     "module m(a, f); input a; output f; assign f = (a; endmodule",
		"cycle":          "module m(a, f); input a; output f; wire u, v; assign u = v; assign v = u; assign f = u; endmodule",
		"redeclare":      "module m(a, f); input a; input a; output f; assign f = a; endmodule",
	}
	for name, src := range cases {
		if _, err := ParseVerilog(src); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestNamesAndByName(t *testing.T) {
	names := Names()
	if len(names) != len(Benchmarks) || names[0] != "xor2" {
		t.Errorf("Names() wrong: %v", names)
	}
	if _, ok := ByName("c17"); !ok {
		t.Error("ByName(c17) failed")
	}
	if _, ok := ByName("nonesuch"); ok {
		t.Error("ByName must fail for unknown names")
	}
	if _, err := Load("nonesuch"); err == nil {
		t.Error("Load must fail for unknown names")
	}
	suites := SuiteNames()
	if len(suites) != 2 || suites[0] != "fontes18" || suites[1] != "trindade16" {
		t.Errorf("SuiteNames() = %v", suites)
	}
}

func TestWriteBenchMentionsGates(t *testing.T) {
	x := network.New()
	a, b := x.NewPI("a"), x.NewPI("b")
	x.NewPO(x.Xor(a, b).Not(), "f")
	out := WriteBench(x)
	if !strings.Contains(out, "XOR") {
		t.Errorf("expected XOR in output:\n%s", out)
	}
	y, err := ParseBench("xnor", out)
	if err != nil {
		t.Fatal(err)
	}
	if got := y.TruthTables()[0].Hex(); got != "9" {
		t.Errorf("round trip = %s, want 9", got)
	}
}
