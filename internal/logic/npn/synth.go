package npn

import (
	"context"
	"fmt"

	"repro/internal/logic/tt"
	"repro/internal/sat"
)

// Gate is one gate of a synthesized XAG structure. Fan-in references are
// encoded as: 0..n-1 for the cut inputs, n+i for the i-th synthesized gate.
type Gate struct {
	IsXor      bool
	In0, In1   int
	Neg0, Neg1 bool // fan-in polarities (always false for XOR gates)
}

// Structure is a synthesized XAG implementation of a single-output function.
type Structure struct {
	NumInputs int
	Gates     []Gate
	OutNeg    bool
	// OutVar is the signal driving the output: input index or n+gate index.
	// For gate-free structures it selects an input (or -1 for constant 0).
	OutVar int
}

// Eval evaluates the structure for one input assignment and is used to
// cross-check synthesized circuits against their specification.
func (st Structure) Eval(input uint32) bool {
	vals := make([]bool, st.NumInputs+len(st.Gates))
	for i := 0; i < st.NumInputs; i++ {
		vals[i] = input>>i&1 == 1
	}
	for gi, g := range st.Gates {
		a := vals[g.In0] != g.Neg0
		b := vals[g.In1] != g.Neg1
		if g.IsXor {
			vals[st.NumInputs+gi] = a != b
		} else {
			vals[st.NumInputs+gi] = a && b
		}
	}
	v := false
	if st.OutVar >= 0 {
		v = vals[st.OutVar]
	}
	return v != st.OutNeg
}

// TruthTable returns the function computed by the structure.
func (st Structure) TruthTable() tt.TT {
	f := tt.New(st.NumInputs)
	for i := 0; i < f.Bits(); i++ {
		f.Set(i, st.Eval(uint32(i)))
	}
	return f
}

// Cost returns the number of gates.
func (st Structure) Cost() int { return len(st.Gates) }

// Synthesizer performs SAT-based exact synthesis of XAG structures.
type Synthesizer struct {
	// MaxGates bounds the search; synthesis fails beyond it.
	MaxGates int
	// ConflictBudget bounds each SAT call; 0 means unlimited. When a call is
	// cut off the gate count is treated as infeasible and search continues
	// upward, so results stay correct but may lose minimality.
	ConflictBudget int64
}

// NewSynthesizer returns a synthesizer with defaults suitable for 4-input
// cut rewriting.
func NewSynthesizer() *Synthesizer {
	return &Synthesizer{MaxGates: 7, ConflictBudget: 30000}
}

// Synthesize returns a minimal (up to budget cut-offs) XAG structure
// computing f, trying gate counts from a trivial lower bound upward.
func (sy *Synthesizer) Synthesize(f tt.TT) (Structure, error) {
	return sy.SynthesizeContext(context.Background(), f)
}

// SynthesizeContext is Synthesize under a context: cancellation or
// deadline expiry interrupts the SAT searches and returns the context's
// error. A nil context behaves like context.Background.
func (sy *Synthesizer) SynthesizeContext(ctx context.Context, f tt.TT) (Structure, error) {
	n := f.NumVars()
	// Trivial cases: constants and (complemented) projections.
	if isConst, val := f.IsConst(); isConst {
		return Structure{NumInputs: n, OutVar: -1, OutNeg: val}, nil
	}
	for v := 0; v < n; v++ {
		proj := tt.Var(n, v)
		if f.Equal(proj) {
			return Structure{NumInputs: n, OutVar: v}, nil
		}
		if f.Equal(proj.Not()) {
			return Structure{NumInputs: n, OutVar: v, OutNeg: true}, nil
		}
	}
	for r := 1; r <= sy.MaxGates; r++ {
		st, status := sy.trySize(ctx, f, r)
		switch status {
		case sat.Sat:
			// Sanity check: reject miscompiled structures outright.
			if !st.TruthTable().Equal(f) {
				return Structure{}, fmt.Errorf("npn: synthesized structure does not match %v", f)
			}
			return st, nil
		case sat.Unsat, sat.Unknown:
			if ctx != nil && ctx.Err() != nil {
				return Structure{}, fmt.Errorf("npn: synthesis canceled: %w", ctx.Err())
			}
			continue
		}
	}
	return Structure{}, fmt.Errorf("npn: no XAG with at most %d gates found for %v", sy.MaxGates, f)
}

// trySize asks the SAT solver whether an r-gate XAG computing f exists.
func (sy *Synthesizer) trySize(ctx context.Context, f tt.TT, r int) (Structure, sat.Status) {
	n := f.NumVars()
	rows := f.Bits()
	s := sat.New()
	s.MaxConflicts = sy.ConflictBudget

	// Variables.
	// sel[i][j][k]: gate i picks fan-ins (j, k), j < k over candidates
	//   0..n-1 (inputs) and n..n+i-1 (previous gates).
	// isXor[i], neg0[i], neg1[i]: gate i operation and fan-in polarities.
	// val[i][t]: value of gate i at truth-table row t.
	// outNeg: output polarity; gate r-1 drives the output.
	sel := make([][][]sat.Lit, r)
	isXor := make([]sat.Lit, r)
	neg0 := make([]sat.Lit, r)
	neg1 := make([]sat.Lit, r)
	val := make([][]sat.Lit, r)
	for i := 0; i < r; i++ {
		cands := n + i
		sel[i] = make([][]sat.Lit, cands)
		for j := 0; j < cands; j++ {
			sel[i][j] = make([]sat.Lit, cands)
			for k := j + 1; k < cands; k++ {
				sel[i][j][k] = s.NewVar()
			}
		}
		isXor[i] = s.NewVar()
		neg0[i] = s.NewVar()
		neg1[i] = s.NewVar()
		val[i] = make([]sat.Lit, rows)
		for t := 0; t < rows; t++ {
			val[i][t] = s.NewVar()
		}
	}
	outNeg := s.NewVar()

	// Exactly one fan-in pair per gate.
	for i := 0; i < r; i++ {
		var all []sat.Lit
		cands := n + i
		for j := 0; j < cands; j++ {
			for k := j + 1; k < cands; k++ {
				all = append(all, sel[i][j][k])
			}
		}
		s.AddClause(all...)
		for a := 0; a < len(all); a++ {
			for b := a + 1; b < len(all); b++ {
				s.AddClause(all[a].Neg(), all[b].Neg())
			}
		}
		// XOR gates use no fan-in polarities (complement normalization).
		s.AddClause(isXor[i].Neg(), neg0[i].Neg())
		s.AddClause(isXor[i].Neg(), neg1[i].Neg())
	}

	// inputVal returns the constant value of input j at row t.
	inputVal := func(j, t int) bool { return t>>j&1 == 1 }

	// Semantics: for every gate, pair, and row, conditioned on the selection.
	for i := 0; i < r; i++ {
		cands := n + i
		for j := 0; j < cands; j++ {
			for k := j + 1; k < cands; k++ {
				sl := sel[i][j][k]
				for t := 0; t < rows; t++ {
					v := val[i][t]
					// Literal generators for fan-in values at row t; nil
					// means the value is the given constant.
					aLit, aConst, aIsConst := litOrConst(val, n, j, t, inputVal)
					bLit, bConst, bIsConst := litOrConst(val, n, k, t, inputVal)
					addGateSemantics(s, sl, isXor[i], neg0[i], neg1[i], v,
						aLit, aConst, aIsConst, bLit, bConst, bIsConst)
				}
			}
		}
	}

	// Output constraint: val[r-1][t] xor outNeg == f(t).
	for t := 0; t < rows; t++ {
		v := val[r-1][t]
		if f.Get(t) {
			// v xor outNeg = 1  ->  (v | outNeg) & (!v | !outNeg)
			s.AddClause(v, outNeg)
			s.AddClause(v.Neg(), outNeg.Neg())
		} else {
			s.AddClause(v, outNeg.Neg())
			s.AddClause(v.Neg(), outNeg)
		}
	}

	// Symmetry breaking: every gate except the last must be used by a later
	// gate (no dangling gates).
	for i := 0; i < r-1; i++ {
		var uses []sat.Lit
		for i2 := i + 1; i2 < r; i2++ {
			cands := n + i2
			gi := n + i
			for j := 0; j < cands; j++ {
				for k := j + 1; k < cands; k++ {
					if j == gi || k == gi {
						uses = append(uses, sel[i2][j][k])
					}
				}
			}
		}
		s.AddClause(uses...)
	}

	status := s.SolveContext(ctx)
	if status != sat.Sat {
		return Structure{}, status
	}

	// Decode the model.
	st := Structure{NumInputs: n, OutVar: n + r - 1, OutNeg: s.Value(outNeg)}
	for i := 0; i < r; i++ {
		g := Gate{IsXor: s.Value(isXor[i])}
		cands := n + i
		found := false
		for j := 0; j < cands && !found; j++ {
			for k := j + 1; k < cands; k++ {
				if s.Value(sel[i][j][k]) {
					g.In0, g.In1 = j, k
					found = true
					break
				}
			}
		}
		if !g.IsXor {
			g.Neg0 = s.Value(neg0[i])
			g.Neg1 = s.Value(neg1[i])
		}
		st.Gates = append(st.Gates, g)
	}
	return st, sat.Sat
}

// litOrConst resolves candidate index c (input or gate) at row t into either
// a literal or a constant.
func litOrConst(val [][]sat.Lit, n, c, t int, inputVal func(j, t int) bool) (sat.Lit, bool, bool) {
	if c < n {
		return 0, inputVal(c, t), true
	}
	return val[c-n][t], false, false
}

// addGateSemantics emits CNF enforcing, under selection literal sl:
//
//	v == isXor ? (a xor b) : ((a xor n0) and (b xor n1))
//
// where a/b are either literals or constants.
func addGateSemantics(s *sat.Solver, sl, isXor, n0, n1, v sat.Lit,
	aLit sat.Lit, aConst, aIsConst bool, bLit sat.Lit, bConst, bIsConst bool) {

	// Enumerate the (at most) 4 value combinations of the non-constant
	// fan-ins; for each combination and each op/polarity case, force v.
	aVals := []bool{false, true}
	bVals := []bool{false, true}
	if aIsConst {
		aVals = []bool{aConst}
	}
	if bIsConst {
		bVals = []bool{bConst}
	}
	for _, av := range aVals {
		for _, bv := range bVals {
			// Condition literals making this combination active.
			base := []sat.Lit{sl.Neg()}
			if !aIsConst {
				if av {
					base = append(base, aLit.Neg())
				} else {
					base = append(base, aLit)
				}
			}
			if !bIsConst {
				if bv {
					base = append(base, bLit.Neg())
				} else {
					base = append(base, bLit)
				}
			}
			// XOR case: isXor -> v == av != bv.
			xr := av != bv
			cl := append(append([]sat.Lit(nil), base...), isXor.Neg())
			if xr {
				cl = append(cl, v)
			} else {
				cl = append(cl, v.Neg())
			}
			s.AddClause(cl...)
			// AND cases: for each polarity combination.
			for _, p0 := range []bool{false, true} {
				for _, p1 := range []bool{false, true} {
					res := (av != p0) && (bv != p1)
					cl := append(append([]sat.Lit(nil), base...), isXor)
					if p0 {
						cl = append(cl, n0.Neg())
					} else {
						cl = append(cl, n0)
					}
					if p1 {
						cl = append(cl, n1.Neg())
					} else {
						cl = append(cl, n1)
					}
					if res {
						cl = append(cl, v)
					} else {
						cl = append(cl, v.Neg())
					}
					s.AddClause(cl...)
				}
			}
		}
	}
}
