package npn

import (
	"math/rand"
	"testing"

	"repro/internal/logic/tt"
)

func randTT(rng *rand.Rand, n int) tt.TT {
	f := tt.New(n)
	for i := 0; i < f.Bits(); i++ {
		f.Set(i, rng.Intn(2) == 1)
	}
	return f
}

func TestTransformInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(3)
		f := randTT(rng, n)
		tr := Transform{
			Perm:    rng.Perm(n),
			FlipIn:  uint32(rng.Intn(1 << n)),
			FlipOut: rng.Intn(2) == 1,
		}
		g := tr.Apply(f)
		back := tr.Inverse().Apply(g)
		if !back.Equal(f) {
			t.Fatalf("inverse failed: f=%v tr=%v g=%v back=%v", f, tr, g, back)
		}
	}
}

func TestCanonizeInvariantUnderTransforms(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(3)
		f := randTT(rng, n)
		c1, _ := Canonize(f)
		// Apply a random NPN transform; the canon must not change.
		tr := Transform{
			Perm:    rng.Perm(n),
			FlipIn:  uint32(rng.Intn(1 << n)),
			FlipOut: rng.Intn(2) == 1,
		}
		c2, _ := Canonize(tr.Apply(f))
		if !c1.Equal(c2) {
			t.Fatalf("canon not invariant: %v vs %v", c1, c2)
		}
	}
}

func TestCanonizeTransformReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(3)
		f := randTT(rng, n)
		canon, tr := Canonize(f)
		if got := tr.Apply(canon); !got.Equal(f) {
			t.Fatalf("tr.Apply(canon) = %v, want %v", got, f)
		}
	}
}

func TestClassCounts(t *testing.T) {
	// Known NPN class counts: n=1: 2 (const0, x), n=2: 4, n=3: 14.
	if got := ClassCount(1); got != 2 {
		t.Errorf("NPN classes of 1 var = %d, want 2", got)
	}
	if got := ClassCount(2); got != 4 {
		t.Errorf("NPN classes of 2 vars = %d, want 4", got)
	}
	if got := ClassCount(3); got != 14 {
		t.Errorf("NPN classes of 3 vars = %d, want 14", got)
	}
}

func TestSynthesizeTrivial(t *testing.T) {
	sy := NewSynthesizer()
	for _, c := range []struct {
		f     tt.TT
		gates int
	}{
		{tt.Const(3, false), 0},
		{tt.Const(3, true), 0},
		{tt.Var(3, 1), 0},
		{tt.Var(3, 2).Not(), 0},
	} {
		st, err := sy.Synthesize(c.f)
		if err != nil {
			t.Fatalf("%v: %v", c.f, err)
		}
		if st.Cost() != c.gates {
			t.Errorf("%v: cost %d, want %d", c.f, st.Cost(), c.gates)
		}
		if !st.TruthTable().Equal(c.f) {
			t.Errorf("%v: wrong function %v", c.f, st.TruthTable())
		}
	}
}

func TestSynthesizeTwoInputGates(t *testing.T) {
	sy := NewSynthesizer()
	for _, hex := range []string{"8", "6", "e", "7", "1", "9", "2", "4", "b", "d"} {
		f := tt.MustFromHex(2, hex)
		st, err := sy.Synthesize(f)
		if err != nil {
			t.Fatalf("0x%s: %v", hex, err)
		}
		if st.Cost() != 1 {
			t.Errorf("0x%s: cost %d, want 1", hex, st.Cost())
		}
		if !st.TruthTable().Equal(f) {
			t.Errorf("0x%s: wrong function", hex)
		}
	}
}

func TestSynthesizeMajority(t *testing.T) {
	sy := NewSynthesizer()
	maj := tt.MustFromHex(3, "e8")
	st, err := sy.Synthesize(maj)
	if err != nil {
		t.Fatal(err)
	}
	if !st.TruthTable().Equal(maj) {
		t.Fatalf("wrong function: %v", st.TruthTable())
	}
	// Known XAG optimum for MAJ3 is 4 gates, e.g.
	// (a&b) | (c & (a^b)) = !(!(a&b) & !(c&(a^b))): XOR + 3 ANDs.
	if st.Cost() != 4 {
		t.Errorf("MAJ3 cost %d, want 4", st.Cost())
	}
}

func TestSynthesizeXor3AndFullAdder(t *testing.T) {
	sy := NewSynthesizer()
	x3 := tt.MustFromHex(3, "96")
	st, err := sy.Synthesize(x3)
	if err != nil {
		t.Fatal(err)
	}
	if st.Cost() != 2 {
		t.Errorf("XOR3 cost %d, want 2 (two XOR gates)", st.Cost())
	}
	if !st.TruthTable().Equal(x3) {
		t.Error("XOR3 function wrong")
	}
}

func TestSynthesizeRandom3Var(t *testing.T) {
	sy := NewSynthesizer()
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 15; trial++ {
		f := randTT(rng, 3)
		st, err := sy.Synthesize(f)
		if err != nil {
			t.Fatalf("trial %d (%v): %v", trial, f, err)
		}
		if !st.TruthTable().Equal(f) {
			t.Fatalf("trial %d: structure computes %v, want %v", trial, st.TruthTable(), f)
		}
	}
}

func TestSynthesizeSelected4Var(t *testing.T) {
	sy := NewSynthesizer()
	for _, hex := range []string{"6996", "8000", "fffe", "7888", "0660", "cafe"} {
		f := tt.MustFromHex(4, hex)
		st, err := sy.Synthesize(f)
		if err != nil {
			t.Fatalf("0x%s: %v", hex, err)
		}
		if !st.TruthTable().Equal(f) {
			t.Fatalf("0x%s: wrong function", hex)
		}
	}
}

func TestXor4IsThreeGates(t *testing.T) {
	sy := NewSynthesizer()
	f := tt.MustFromHex(4, "6996") // parity of 4 variables
	st, err := sy.Synthesize(f)
	if err != nil {
		t.Fatal(err)
	}
	if st.Cost() != 3 {
		t.Errorf("XOR4 cost %d, want 3", st.Cost())
	}
}

func TestDatabaseLookup(t *testing.T) {
	db := NewDatabase(nil)
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(2)
		f := randTT(rng, n)
		st, ok := db.Lookup(f)
		if !ok {
			t.Fatalf("lookup failed for %v", f)
		}
		if !st.TruthTable().Equal(f) {
			t.Fatalf("database returned wrong structure for %v: computes %v", f, st.TruthTable())
		}
	}
	if db.Size() == 0 {
		t.Error("database must have cached classes")
	}
}

func TestDatabaseCacheSharing(t *testing.T) {
	db := NewDatabase(nil)
	// AND and its NPN variants must share one cached class.
	variants := []string{"8", "4", "2", "1", "e", "7", "b", "d"}
	for _, hex := range variants {
		f := tt.MustFromHex(2, hex)
		st, ok := db.Lookup(f)
		if !ok || !st.TruthTable().Equal(f) {
			t.Fatalf("variant 0x%s failed", hex)
		}
	}
	if db.Size() != 1 {
		t.Errorf("all AND/OR variants are one NPN class; cached %d", db.Size())
	}
}

func TestDatabaseTransformCorrectness4Var(t *testing.T) {
	db := NewDatabase(nil)
	rng := rand.New(rand.NewSource(17))
	// Pick one random 4-var class and exercise several of its variants.
	base := randTT(rng, 4)
	for trial := 0; trial < 8; trial++ {
		tr := Transform{
			Perm:    rng.Perm(4),
			FlipIn:  uint32(rng.Intn(16)),
			FlipOut: rng.Intn(2) == 1,
		}
		f := tr.Apply(base)
		st, ok := db.Lookup(f)
		if !ok {
			t.Skipf("synthesis budget exhausted for %v", f)
		}
		if !st.TruthTable().Equal(f) {
			t.Fatalf("transform application broken: got %v, want %v", st.TruthTable(), f)
		}
	}
	if db.Size() != 1 {
		t.Errorf("variants of one class must cache once, got %d", db.Size())
	}
}

func TestStructureEvalMatchesGates(t *testing.T) {
	// Hand-built structure: f = (x0 & !x1) ^ x2.
	st := Structure{
		NumInputs: 3,
		Gates: []Gate{
			{IsXor: false, In0: 0, In1: 1, Neg1: true},
			{IsXor: true, In0: 2, In1: 3},
		},
		OutVar: 4,
	}
	for in := uint32(0); in < 8; in++ {
		a, b, c := in&1 == 1, in>>1&1 == 1, in>>2&1 == 1
		want := (a && !b) != c
		if st.Eval(in) != want {
			t.Errorf("Eval(%03b) = %v, want %v", in, st.Eval(in), want)
		}
	}
}
