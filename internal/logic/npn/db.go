package npn

import (
	"context"
	"sync"

	"repro/internal/logic/tt"
)

// Database caches one optimal XAG structure per NPN class. It is safe for
// concurrent use.
type Database struct {
	mu    sync.Mutex
	synth *Synthesizer
	byFn  map[dbKey]Structure // canon class -> structure
	fails map[dbKey]bool      // classes synthesis gave up on
}

// dbKey identifies an NPN class: arity plus canonical truth-table word.
type dbKey struct {
	n    int
	word uint64
}

// NewDatabase returns an empty database backed by the given synthesizer
// (nil selects NewSynthesizer defaults).
func NewDatabase(sy *Synthesizer) *Database {
	if sy == nil {
		sy = NewSynthesizer()
	}
	return &Database{
		synth: sy,
		byFn:  make(map[dbKey]Structure),
		fails: make(map[dbKey]bool),
	}
}

// Lookup returns an optimal structure for f (not its NPN canon — the
// returned structure computes f itself, with the class transform already
// applied), or ok=false if synthesis failed within budget.
func (db *Database) Lookup(f tt.TT) (Structure, bool) {
	return db.LookupContext(context.Background(), f)
}

// LookupContext is Lookup under a context. A canceled synthesis returns
// ok=false without recording the class as failed, so a later uncanceled
// lookup retries it.
func (db *Database) LookupContext(ctx context.Context, f tt.TT) (Structure, bool) {
	canon, tr := Canonize(f)
	key := dbKey{n: canon.NumVars(), word: canon.Word()}
	db.mu.Lock()
	st, have := db.byFn[key]
	failed := db.fails[key]
	db.mu.Unlock()
	if failed {
		return Structure{}, false
	}
	if !have {
		var err error
		st, err = db.synth.SynthesizeContext(ctx, canon)
		if err != nil {
			// Only genuine synthesis failures poison the class; a canceled
			// search must stay retryable.
			if ctx == nil || ctx.Err() == nil {
				db.mu.Lock()
				db.fails[key] = true
				db.mu.Unlock()
			}
			return Structure{}, false
		}
		db.mu.Lock()
		db.byFn[key] = st
		db.mu.Unlock()
	}
	return applyTransform(st, tr), true
}

// Size returns the number of cached classes.
func (db *Database) Size() int {
	db.mu.Lock()
	defer db.mu.Unlock()
	return len(db.byFn)
}

// applyTransform rewrites a structure for the canon into a structure for
// tr.Apply(canon): inputs are remapped through the permutation with
// polarities pushed onto the fan-in edges, and the output polarity is
// adjusted.
func applyTransform(st Structure, tr Transform) Structure {
	out := Structure{
		NumInputs: st.NumInputs,
		OutNeg:    st.OutNeg != tr.FlipOut,
		OutVar:    st.OutVar,
		Gates:     make([]Gate, len(st.Gates)),
	}
	n := st.NumInputs
	// The transformed function g(x) = canon(sigma(x) xor flip) xor out,
	// where canon's input v is read from g's input position... tr.Apply
	// defines: new variable i reads old variable Perm[i] after flipping old
	// variable v when FlipIn bit v is set. The structure's references to
	// canon input v therefore become references to new input j with
	// Perm[j] == v, complemented when FlipIn bit v is set.
	invPos := make([]int, n)
	for j, p := range tr.Perm {
		invPos[p] = j
	}
	mapIn := func(ref int, neg bool) (int, bool) {
		if ref >= n {
			return ref, neg // gate reference: unchanged
		}
		flipped := tr.FlipIn>>ref&1 == 1
		return invPos[ref], neg != flipped
	}
	for i, g := range st.Gates {
		// XOR gates may acquire fan-in complements here; Eval and the XAG
		// builder normalize them, so no special handling is needed.
		ng := Gate{IsXor: g.IsXor}
		ng.In0, ng.Neg0 = mapIn(g.In0, g.Neg0)
		ng.In1, ng.Neg1 = mapIn(g.In1, g.Neg1)
		out.Gates[i] = ng
	}
	// Output var mapping when it is an input reference.
	if st.OutVar >= 0 && st.OutVar < n {
		v, neg := mapIn(st.OutVar, out.OutNeg)
		out.OutVar, out.OutNeg = v, neg
	}
	return out
}
