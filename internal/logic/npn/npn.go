// Package npn implements NPN canonicalization and SAT-based exact synthesis
// of minimal XAG structures, forming the "exact NPN database" that flow step
// (2) of the Bestagon paper uses for cut-based logic rewriting [38].
//
// Two functions are NPN-equivalent if one can be obtained from the other by
// Negating inputs, Permuting inputs, and/or Negating the output. Rewriting
// only needs one optimal circuit per equivalence class; the class
// representative ("canon") is the lexicographically smallest truth table
// over all NPN transforms.
package npn

import (
	"fmt"

	"repro/internal/logic/tt"
)

// Transform describes an NPN transform: first each input i is complemented
// when FlipIn has bit i set, then inputs are permuted (new variable i reads
// old variable Perm[i]), and finally the output is complemented when FlipOut
// is set.
type Transform struct {
	Perm    []int
	FlipIn  uint32
	FlipOut bool
}

// Apply applies the transform to a truth table.
func (tr Transform) Apply(f tt.TT) tt.TT {
	g := f
	for v := 0; v < f.NumVars(); v++ {
		if tr.FlipIn>>v&1 == 1 {
			g = g.FlipVar(v)
		}
	}
	g = g.Permute(tr.Perm)
	if tr.FlipOut {
		g = g.Not()
	}
	return g
}

// Inverse returns the transform that undoes tr.
func (tr Transform) Inverse() Transform {
	n := len(tr.Perm)
	inv := Transform{Perm: make([]int, n), FlipOut: tr.FlipOut}
	for i, p := range tr.Perm {
		inv.Perm[p] = i
	}
	// Input flips commute through the permutation: flipping old variable v
	// before permuting equals flipping new variable inv.Perm[v] afterwards...
	// Since the inverse applies its flips first, map each original flip
	// through the forward permutation.
	for v := 0; v < n; v++ {
		if tr.FlipIn>>v&1 == 1 {
			// Old variable v appears as new variable j where Perm[j] == v.
			j := inv.Perm[v]
			inv.FlipIn |= 1 << j
		}
	}
	return inv
}

// String formats the transform compactly.
func (tr Transform) String() string {
	return fmt.Sprintf("perm=%v flipIn=%04b flipOut=%v", tr.Perm, tr.FlipIn, tr.FlipOut)
}

// identity returns the identity transform over n variables.
func identity(n int) Transform {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return Transform{Perm: p}
}

// permutations returns all permutations of 0..n-1.
func permutations(n int) [][]int {
	if n == 0 {
		return [][]int{{}}
	}
	var out [][]int
	var rec func(cur []int, used uint32)
	rec = func(cur []int, used uint32) {
		if len(cur) == n {
			out = append(out, append([]int(nil), cur...))
			return
		}
		for v := 0; v < n; v++ {
			if used>>v&1 == 0 {
				rec(append(cur, v), used|1<<v)
			}
		}
	}
	rec(nil, 0)
	return out
}

// less compares two equal-arity truth tables lexicographically via their hex
// encoding of the underlying words.
func less(a, b tt.TT) bool {
	// For up to 4 variables a single word suffices.
	return a.Word() < b.Word()
}

// Canonize returns the NPN class representative of f together with the
// transform tr such that tr.Apply(canon) == f. Supported for up to 4
// variables (the cut size used by the rewriting step).
func Canonize(f tt.TT) (canon tt.TT, tr Transform) {
	n := f.NumVars()
	if n > 4 {
		panic(fmt.Sprintf("npn: canonization supports up to 4 vars, got %d", n))
	}
	best := f
	bestTr := identity(n) // transform f -> best
	for _, perm := range permutations(n) {
		for flip := uint32(0); flip < 1<<n; flip++ {
			for _, out := range []bool{false, true} {
				cand := Transform{Perm: perm, FlipIn: flip, FlipOut: out}
				g := cand.Apply(f)
				if less(g, best) {
					best = g
					bestTr = cand
				}
			}
		}
	}
	// bestTr maps f -> canon; the caller wants canon -> f.
	return best, bestTr.Inverse()
}

// ClassCount enumerates the number of distinct NPN classes among all
// functions of n ≤ 4 variables; exposed for validation (n=2: 4, n=3: 14,
// n=4: 222).
func ClassCount(n int) int {
	seen := make(map[uint64]bool)
	total := 1 << (1 << n)
	for v := 0; v < total; v++ {
		f := tt.New(n)
		for i := 0; i < f.Bits(); i++ {
			f.Set(i, v>>i&1 == 1)
		}
		c, _ := Canonize(f)
		seen[c.Word()] = true
	}
	return len(seen)
}
