package mapping

import (
	"math/rand"
	"testing"

	"repro/internal/gates"
	"repro/internal/logic/bench"
	"repro/internal/logic/network"
)

func mustMap(t *testing.T, x *network.XAG) *Net {
	t.Helper()
	m, err := Map(x)
	if err != nil {
		t.Fatalf("Map(%s): %v", x.Name, err)
	}
	return m
}

func checkEquivalent(t *testing.T, x *network.XAG, m *Net) {
	t.Helper()
	if len(m.PIs) != x.NumPIs() || len(m.POs) != x.NumPOs() {
		t.Fatalf("%s: interface mismatch", x.Name)
	}
	for in := uint32(0); in < 1<<x.NumPIs(); in++ {
		if got, want := m.Simulate(in), x.Simulate(in); got != want {
			t.Fatalf("%s: mapped(%b)=%b, xag=%b", x.Name, in, got, want)
		}
	}
}

func TestMapAllBenchmarks(t *testing.T) {
	for _, name := range bench.Names() {
		x, err := bench.Load(name)
		if err != nil {
			t.Fatal(err)
		}
		m := mustMap(t, x)
		checkEquivalent(t, x, m)
	}
}

func TestMapSelectsNorForDoubleNegatedAnd(t *testing.T) {
	x := network.New()
	a, b := x.NewPI("a"), x.NewPI("b")
	x.NewPO(x.And(a.Not(), b.Not()), "f") // == NOR(a, b)
	m := mustMap(t, x)
	checkEquivalent(t, x, m)
	h := m.GateCounts()
	if h[gates.Nor] != 1 || h[gates.Inv] != 0 {
		t.Errorf("expected a single NOR and no inverters, got %v", h)
	}
}

func TestMapSelectsNandForNegatedOutput(t *testing.T) {
	x := network.New()
	a, b := x.NewPI("a"), x.NewPI("b")
	x.NewPO(x.And(a, b).Not(), "f")
	m := mustMap(t, x)
	checkEquivalent(t, x, m)
	h := m.GateCounts()
	if h[gates.Nand] != 1 || h[gates.Inv] != 0 {
		t.Errorf("expected a single NAND and no inverters, got %v", h)
	}
}

func TestMapSelectsXnor(t *testing.T) {
	x := network.New()
	a, b := x.NewPI("a"), x.NewPI("b")
	x.NewPO(x.Xnor(a, b), "f")
	m := mustMap(t, x)
	checkEquivalent(t, x, m)
	h := m.GateCounts()
	if h[gates.Xnor] != 1 || h[gates.Inv] != 0 {
		t.Errorf("expected a single XNOR and no inverters, got %v", h)
	}
}

func TestMapOrViaDeMorgan(t *testing.T) {
	x := network.New()
	a, b := x.NewPI("a"), x.NewPI("b")
	x.NewPO(x.Or(a, b), "f")
	m := mustMap(t, x)
	checkEquivalent(t, x, m)
	h := m.GateCounts()
	if h[gates.Or] != 1 || h[gates.Inv] != 0 {
		t.Errorf("expected a single OR, got %v", h)
	}
}

func TestMapMixedPolarityNeedsOneInverter(t *testing.T) {
	x := network.New()
	a, b := x.NewPI("a"), x.NewPI("b")
	x.NewPO(x.And(a, b.Not()), "f")
	m := mustMap(t, x)
	checkEquivalent(t, x, m)
	h := m.GateCounts()
	if h[gates.Inv] != 1 {
		t.Errorf("mixed polarity needs exactly one inverter, got %v", h)
	}
}

func TestMapHalfAdderFusion(t *testing.T) {
	x := network.New()
	a, b := x.NewPI("a"), x.NewPI("b")
	x.NewPO(x.Xor(a, b), "sum")
	x.NewPO(x.And(a, b), "carry")
	m := mustMap(t, x)
	checkEquivalent(t, x, m)
	h := m.GateCounts()
	if h[gates.HalfAdder] != 1 {
		t.Errorf("expected half-adder fusion, got %v", h)
	}
	if h[gates.Xor] != 0 || h[gates.And] != 0 {
		t.Errorf("fused gates must not also appear separately: %v", h)
	}
}

func TestMapFullAdderUsesHalfAdders(t *testing.T) {
	x := network.New()
	a, b, cin := x.NewPI("a"), x.NewPI("b"), x.NewPI("cin")
	s1 := x.Xor(a, b)
	c1 := x.And(a, b)
	sum := x.Xor(s1, cin)
	c2 := x.And(s1, cin)
	x.NewPO(sum, "s")
	x.NewPO(x.Or(c1, c2), "cout")
	m := mustMap(t, x)
	checkEquivalent(t, x, m)
	if got := m.GateCounts()[gates.HalfAdder]; got != 2 {
		t.Errorf("full adder should fuse into 2 half adders, got %d", got)
	}
}

func TestMapInverterSharing(t *testing.T) {
	// Three consumers of !a must share one inverter.
	x := network.New()
	a, b, c, d := x.NewPI("a"), x.NewPI("b"), x.NewPI("c"), x.NewPI("d")
	na := a.Not()
	x.NewPO(x.And(na, b), "f0")
	x.NewPO(x.And(na, c), "f1")
	x.NewPO(x.And(na, d), "f2")
	m := mustMap(t, x)
	checkEquivalent(t, x, m)
	if got := m.GateCounts()[gates.Inv]; got != 1 {
		t.Errorf("inverter must be shared: got %d", got)
	}
}

func TestMapConstantPORejected(t *testing.T) {
	x := network.New()
	x.NewPI("a")
	x.NewPO(x.Const(true), "f")
	if _, err := Map(x); err == nil {
		t.Error("constant PO must be rejected")
	}
}

func TestMapRandomNetworks(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 25; trial++ {
		x := network.New()
		var sigs []network.Signal
		nPI := 3 + rng.Intn(3)
		for i := 0; i < nPI; i++ {
			sigs = append(sigs, x.NewPI(""))
		}
		for g := 0; g < 15; g++ {
			a := sigs[rng.Intn(len(sigs))].NotIf(rng.Intn(2) == 1)
			b := sigs[rng.Intn(len(sigs))].NotIf(rng.Intn(2) == 1)
			if a.Node() == b.Node() {
				continue
			}
			if rng.Intn(2) == 0 {
				sigs = append(sigs, x.And(a, b))
			} else {
				sigs = append(sigs, x.Xor(a, b))
			}
		}
		nPO := 1 + rng.Intn(3)
		for i := 0; i < nPO; i++ {
			s := sigs[len(sigs)-1-rng.Intn(min(4, len(sigs)))]
			x.NewPO(s.NotIf(rng.Intn(2) == 1), "")
		}
		xc := x.Cleanup()
		m := mustMap(t, xc)
		checkEquivalent(t, xc, m)
	}
}

func TestFanoutCounts(t *testing.T) {
	x := network.New()
	a, b, c := x.NewPI("a"), x.NewPI("b"), x.NewPI("c")
	g := x.And(a, b)
	x.NewPO(x.Xor(g, c), "f0")
	x.NewPO(g, "f1")
	m := mustMap(t, x)
	fo := m.FanoutCounts()
	// Find the AND gate node; its single output feeds two consumers.
	found := false
	for _, nd := range m.Nodes {
		if nd.Func == gates.And {
			if fo[nd.ID][0] != 2 {
				t.Errorf("AND fanout = %d, want 2", fo[nd.ID][0])
			}
			found = true
		}
	}
	if !found {
		t.Fatal("no AND gate in mapped net")
	}
}

func TestLevelsAndStats(t *testing.T) {
	x, err := bench.Load("c17")
	if err != nil {
		t.Fatal(err)
	}
	m := mustMap(t, x)
	_, depth := m.Levels()
	if depth < 2 {
		t.Errorf("c17 depth %d unreasonably small", depth)
	}
	st := m.Stats()
	if st.PIs != 5 || st.POs != 2 || st.Gates == 0 {
		t.Errorf("stats wrong: %+v", st)
	}
	if m.String() == "" {
		t.Error("String empty")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
