// Package mapping implements technology mapping of XAGs into the Bestagon
// gate set — flow step (3) of the paper, in the spirit of the versatile
// mapping approach of Calvino et al. [8].
//
// XAG nodes carry complemented edges; the Bestagon library has no explicit
// complement, so mapping absorbs complements into gate selection (AND with
// two complemented fan-ins becomes NOR, XOR with odd fan-in parity becomes
// XNOR, ...), shares inverter tiles between consumers that need the
// opposite polarity, and fuses AND/XOR pairs over identical fan-ins into
// single-tile half adders.
package mapping

import (
	"fmt"

	"repro/internal/gates"
	"repro/internal/logic/network"
)

// Ref addresses one output port of a mapped node.
type Ref struct {
	Node int
	Port int
}

// Node is one element of the mapped netlist.
type Node struct {
	ID   int
	Func gates.Func
	Ins  []Ref
	Name string // PI/PO name, empty otherwise
}

// Net is a technology-mapped netlist over the Bestagon gate set. Nodes are
// stored in topological order.
type Net struct {
	Name  string
	Nodes []Node
	PIs   []int // node IDs in input order
	POs   []int // node IDs in output order
}

// add appends a node and returns its ID.
func (m *Net) add(f gates.Func, name string, ins ...Ref) int {
	id := len(m.Nodes)
	m.Nodes = append(m.Nodes, Node{ID: id, Func: f, Ins: ins, Name: name})
	return id
}

// NumGates counts logic gates (excluding PI/PO and routing).
func (m *Net) NumGates() int {
	n := 0
	for _, nd := range m.Nodes {
		if nd.Func.IsGate() {
			n++
		}
	}
	return n
}

// GateCounts returns a histogram of tile functions.
func (m *Net) GateCounts() map[gates.Func]int {
	h := map[gates.Func]int{}
	for _, nd := range m.Nodes {
		h[nd.Func]++
	}
	return h
}

// FanoutCounts returns, per node, the number of consumers of each output
// port.
func (m *Net) FanoutCounts() [][]int {
	fo := make([][]int, len(m.Nodes))
	for i, nd := range m.Nodes {
		fo[i] = make([]int, nd.Func.NumOuts())
	}
	for _, nd := range m.Nodes {
		for _, in := range nd.Ins {
			fo[in.Node][in.Port]++
		}
	}
	return fo
}

// Simulate evaluates the mapped net for one input assignment (bit i of
// input = PI i) and returns the PO values as a bit vector.
func (m *Net) Simulate(input uint32) uint32 {
	vals := make([][]bool, len(m.Nodes))
	piIdx := 0
	for _, nd := range m.Nodes {
		switch nd.Func {
		case gates.PI:
			vals[nd.ID] = []bool{input>>piIdx&1 == 1}
			piIdx++
		case gates.None:
			vals[nd.ID] = nil
		default:
			in := make([]bool, len(nd.Ins))
			for i, r := range nd.Ins {
				in[i] = vals[r.Node][r.Port]
			}
			vals[nd.ID] = nd.Func.Eval(in)
			if nd.Func == gates.PO {
				vals[nd.ID] = []bool{in[0]}
			}
		}
	}
	var out uint32
	for i, po := range m.POs {
		if vals[po][0] {
			out |= 1 << i
		}
	}
	return out
}

// Levels returns per-node logic levels (PIs at 0) and the overall depth.
func (m *Net) Levels() ([]int, int) {
	levels := make([]int, len(m.Nodes))
	depth := 0
	for _, nd := range m.Nodes {
		l := 0
		for _, in := range nd.Ins {
			if levels[in.Node]+1 > l {
				l = levels[in.Node] + 1
			}
		}
		levels[nd.ID] = l
		if l > depth {
			depth = l
		}
	}
	return levels, depth
}

// Stats summarizes a mapped network.
type Stats struct {
	PIs, POs, Gates, Inverters, HalfAdders, Depth int
}

// Stats returns summary statistics.
func (m *Net) Stats() Stats {
	h := m.GateCounts()
	_, depth := m.Levels()
	return Stats{
		PIs:        len(m.PIs),
		POs:        len(m.POs),
		Gates:      m.NumGates(),
		Inverters:  h[gates.Inv],
		HalfAdders: h[gates.HalfAdder],
		Depth:      depth,
	}
}

// String renders a short description.
func (m *Net) String() string {
	s := m.Stats()
	return fmt.Sprintf("%s: %d PIs, %d POs, %d mapped gates (%d INV, %d HA), depth %d",
		m.Name, s.PIs, s.POs, s.Gates, s.Inverters, s.HalfAdders, s.Depth)
}

// provider tracks how an XAG node is realized in the mapped net.
type provider struct {
	ref     Ref
	negated bool // ref carries the complement of the XAG node value
	inv     Ref  // cached inverter output, valid if hasInv
	hasInv  bool
}

// Map converts an XAG into a Bestagon-mapped netlist.
func Map(x *network.XAG) (*Net, error) {
	m := &Net{Name: x.Name}
	prov := make([]provider, x.NumNodes())

	// Constant inputs are not supported by the tile library; reject early.
	// (Cleanup-ed, rewritten networks never expose constants to gates.)
	for n := 1; n < x.NumNodes(); n++ {
		if k := x.Kind(n); k == network.KindAnd || k == network.KindXor {
			a, b := x.FanIns(n)
			if a.Node() == 0 || b.Node() == 0 {
				return nil, fmt.Errorf("mapping: node %d has constant fan-in; run Cleanup first", n)
			}
		}
	}
	for i := 0; i < x.NumPOs(); i++ {
		if x.PO(i).Node() == 0 {
			return nil, fmt.Errorf("mapping: PO %d is constant; unsupported by the tile library", i)
		}
	}

	for i := 0; i < x.NumPIs(); i++ {
		name := x.PIName(i)
		if name == "" {
			name = fmt.Sprintf("pi%d", i)
		}
		id := m.add(gates.PI, name)
		m.PIs = append(m.PIs, id)
		prov[x.PI(i).Node()] = provider{ref: Ref{Node: id}}
	}

	// Reachability: only nodes in the transitive fan-in of a PO are mapped;
	// dangling logic would otherwise produce unconsumed tile outputs.
	reach := make([]bool, x.NumNodes())
	var mark func(n int)
	mark = func(n int) {
		if reach[n] {
			return
		}
		reach[n] = true
		if k := x.Kind(n); k == network.KindAnd || k == network.KindXor {
			a, b := x.FanIns(n)
			mark(a.Node())
			mark(b.Node())
		}
	}
	for i := 0; i < x.NumPOs(); i++ {
		mark(x.PO(i).Node())
	}

	// Usage statistics: how often each node is consumed positively and
	// negatively, used for output-polarity selection.
	posUse := make([]int, x.NumNodes())
	negUse := make([]int, x.NumNodes())
	countUse := func(s network.Signal) {
		if s.Neg() {
			negUse[s.Node()]++
		} else {
			posUse[s.Node()]++
		}
	}
	for n := 1; n < x.NumNodes(); n++ {
		if !reach[n] {
			continue
		}
		if k := x.Kind(n); k == network.KindAnd || k == network.KindXor {
			a, b := x.FanIns(n)
			countUse(a)
			countUse(b)
		}
	}
	for i := 0; i < x.NumPOs(); i++ {
		countUse(x.PO(i))
	}

	// Half-adder fusion: find AND/XOR pairs with identical fan-in pairs
	// (identical signals including complements). The XOR drives port 0
	// (sum), the AND port 1 (carry) — only fused when both fan-ins are
	// positive so the single tile template applies directly.
	haPair := make(map[int]int) // node -> its fusion partner (both directions)
	haDone := make(map[int]bool)
	type fiKey struct{ a, b network.Signal }
	xorByFI := map[fiKey]int{}
	for n := 1; n < x.NumNodes(); n++ {
		if reach[n] && x.Kind(n) == network.KindXor {
			a, b := x.FanIns(n)
			if !a.Neg() && !b.Neg() {
				xorByFI[fiKey{a, b}] = n
			}
		}
	}
	for n := 1; n < x.NumNodes(); n++ {
		if reach[n] && x.Kind(n) == network.KindAnd {
			a, b := x.FanIns(n)
			if !a.Neg() && !b.Neg() {
				if xn, ok := xorByFI[fiKey{a, b}]; ok {
					if _, taken := haPair[xn]; !taken {
						haPair[n] = xn
						haPair[xn] = n
					}
				}
			}
		}
	}

	// fetch returns a Ref carrying the requested polarity of XAG node n,
	// inserting (and caching) an inverter tile if needed.
	fetch := func(s network.Signal) Ref {
		p := &prov[s.Node()]
		if p.negated == s.Neg() {
			return p.ref
		}
		if !p.hasInv {
			id := m.add(gates.Inv, "", p.ref)
			p.inv = Ref{Node: id}
			p.hasInv = true
		}
		return p.inv
	}

	for n := 1; n < x.NumNodes(); n++ {
		kind := x.Kind(n)
		if kind != network.KindAnd && kind != network.KindXor {
			continue
		}
		if haDone[n] || !reach[n] {
			continue
		}
		a, b := x.FanIns(n)

		// Half-adder fusion: fuse at whichever partner is visited first
		// (both share the same fan-ins, so the fan-ins are already mapped).
		if pn, ok := haPair[n]; ok && !haDone[pn] {
			andNode, xorNode := n, pn
			if kind == network.KindXor {
				andNode, xorNode = pn, n
			}
			ra, rb := fetch(a), fetch(b)
			id := m.add(gates.HalfAdder, "", ra, rb)
			prov[xorNode] = provider{ref: Ref{Node: id, Port: 0}}
			prov[andNode] = provider{ref: Ref{Node: id, Port: 1}}
			haDone[n], haDone[pn] = true, true
			continue
		}

		// Polarity-aware gate selection.
		emitNeg := negUse[n] > posUse[n]
		switch kind {
		case network.KindXor:
			parity := a.Neg() != b.Neg()
			ra := fetch(a.NotIf(a.Neg())) // positive forms
			rb := fetch(b.NotIf(b.Neg()))
			f := gates.Xor
			if parity != emitNeg {
				f = gates.Xnor
			}
			id := m.add(f, "", ra, rb)
			prov[n] = provider{ref: Ref{Node: id}, negated: emitNeg}
		case network.KindAnd:
			var f gates.Func
			var ra, rb Ref
			switch {
			case !a.Neg() && !b.Neg():
				ra, rb = fetch(a), fetch(b)
				if emitNeg {
					f = gates.Nand
				} else {
					f = gates.And
				}
			case a.Neg() && b.Neg():
				ra, rb = fetch(a.Not()), fetch(b.Not()) // positive forms
				if emitNeg {
					f = gates.Or // !(!a & !b) = a | b
				} else {
					f = gates.Nor
				}
			default:
				// Mixed polarity: fetch exact polarities (one inverter).
				ra, rb = fetch(a), fetch(b)
				if emitNeg {
					f = gates.Nand
				} else {
					f = gates.And
				}
			}
			id := m.add(f, "", ra, rb)
			prov[n] = provider{ref: Ref{Node: id}, negated: emitNeg}
		}
	}

	for i := 0; i < x.NumPOs(); i++ {
		name := x.POName(i)
		if name == "" {
			name = fmt.Sprintf("po%d", i)
		}
		r := fetch(x.PO(i))
		id := m.add(gates.PO, name, r)
		m.POs = append(m.POs, id)
	}
	return m, nil
}
