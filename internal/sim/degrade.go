package sim

import (
	"context"
	"time"

	"repro/internal/faults"
	"repro/internal/obs"
)

// Degrades counts, process-wide, how often the degradation ladder fell
// back to a cheaper engine. cmd/table1 refuses to certify gate data that
// silently rests on degraded (non-exact) validations unless the operator
// passes -allow-degraded.
var Degrades obs.Counter

// DefaultDegradeMargin is the budget Degrading reserves for its anneal
// fallback when no explicit margin is configured. It is calibrated
// against the default deterministic anneal schedule on library-tile-sized
// instances (tens of free dots anneal in well under 100ms); the margin
// adds headroom for scheduling jitter and larger layouts.
const DefaultDegradeMargin = 250 * time.Millisecond

// Degrading wraps a ground-state solver with a deadline-aware degradation
// ladder: when the remaining context budget is too small for the exact
// engine — or the exact engine itself runs out of budget mid-search — the
// solve is retried with simulated annealing on the remaining time instead
// of surfacing a deadline error. The ladder turns "504 with all work
// thrown away" into "200 with a best-effort result marked degraded:true".
//
// Mechanically, the inner solver runs under a sub-deadline that reserves
// Margin of the caller's budget; if it fails while the caller's context is
// still alive, the annealer runs on what remains and the solution is
// marked Degraded (never cached, see cache.CachedSolver). When the
// remaining budget is already below Margin the exact attempt is skipped
// outright. An inner annealer is returned unwrapped — there is no cheaper
// rung to fall to.
type Degrading struct {
	Inner GroundStateSolver
	// Margin is the budget reserved for the anneal fallback (default
	// DefaultDegradeMargin).
	Margin time.Duration
	// Tracer receives sim_degraded_total{from,to} counters (nil-safe).
	Tracer *obs.Tracer
}

var _ GroundStateSolver = (*Degrading)(nil)

// Name returns the inner backend's name, so cache keys are unchanged by
// the wrapper (non-degraded results are identical with or without it).
func (d *Degrading) Name() string { return d.Inner.Name() }

// IsExact reports the inner backend's exactness claim; individual
// degraded solutions carry Degraded/Exact flags of their own.
func (d *Degrading) IsExact() bool { return d.Inner.IsExact() }

// Solve runs the ladder.
func (d *Degrading) Solve(e *Engine, opts SolveOptions) (Solution, error) {
	if d.Inner.Name() == "anneal" {
		return d.Inner.Solve(e, opts)
	}
	ctx := opts.Context()
	if err := ctx.Err(); err != nil {
		return Solution{}, err // no budget at all: fail honestly
	}
	margin := d.Margin
	if margin <= 0 {
		margin = DefaultDegradeMargin
	}

	// The fault point models an exact engine hitting its deadline, so
	// chaos tests can drive the ladder without real timeout storms.
	skipExact := faults.Should("sim.solve.exact")
	if deadline, ok := ctx.Deadline(); ok && time.Until(deadline) <= margin {
		skipExact = true // budget already below the fallback reserve
	}

	if !skipExact {
		innerOpts := opts
		var cancel context.CancelFunc = func() {}
		if deadline, ok := ctx.Deadline(); ok {
			innerOpts.Ctx, cancel = context.WithDeadline(ctx, deadline.Add(-margin))
		}
		sol, err := d.Inner.Solve(e, innerOpts)
		cancel()
		if err == nil {
			return sol, nil
		}
		if cerr := ctx.Err(); cerr != nil {
			return Solution{}, cerr // whole budget gone: nothing to degrade to
		}
		// Inner failed with budget left (sub-deadline expiry, node budget,
		// injected fault): fall through to the anneal rung.
	}

	Degrades.Inc()
	d.Tracer.Counter(obs.Labeled("sim/degraded_total", "from", d.Inner.Name(), "to", "anneal")).Inc()

	cfg := DefaultAnnealConfig()
	cfg.Ctx = ctx
	cfg.Metrics = opts.Tracer // span-free: the ladder can run on parallel workers
	gs, en := e.Anneal(cfg)
	// Unlike the plain anneal backend, a deadline expiring mid-anneal
	// still yields the best configuration found so far: the ladder's
	// whole point is a usable answer instead of a timeout.
	d.Tracer.Counter("sim/anneal/solves").Inc()
	return Solution{Charges: gs, EnergyEV: en, Solver: "anneal", Exact: false, Degraded: true}, nil
}
