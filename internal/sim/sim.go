// Package sim implements physical simulation of SiDB charge configurations:
// an exhaustive ground-state finder (SiQAD's ExGS equivalent) and a
// simulated-annealing ground-state finder (the SimAnneal engine of [30]
// that the paper uses to validate the Bestagon library).
//
// The model is the established two-state SiDB electrostatics of SiQAD:
// every dangling bond is either neutral (DB0) or negatively charged (DB-);
// charges interact through a Thomas-Fermi-screened Coulomb potential
//
//	V(d) = e²/(4πε₀εᵣ) · exp(-d/λ_TF) / d,
//
// and each charged dot contributes the (negative) transition level μ_ to
// the total energy. Positive charge states are not relevant to the
// configurations of interest (§2 of the paper).
package sim

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"os"

	"repro/internal/defects"
	"repro/internal/lattice"
	"repro/internal/obs"
	"repro/internal/sidb"
)

// CoulombConstantEVnm is e²/(4πε₀) expressed in eV·nm.
const CoulombConstantEVnm = 1.4399645

// Params are the physical simulation parameters.
type Params struct {
	// MuMinus is the (-/0) transition level μ_ in eV (negative: isolated
	// DBs prefer the negative charge state).
	MuMinus float64
	// EpsR is the relative permittivity ε_r.
	EpsR float64
	// LambdaTF is the Thomas-Fermi screening length λ_TF in nm.
	LambdaTF float64
}

// ParamsFig1c are the parameters of the paper's Fig. 1c (Huff et al.'s OR
// gate): μ_ = -0.28 eV, ε_r = 5.6, λ_TF = 5 nm.
var ParamsFig1c = Params{MuMinus: -0.28, EpsR: 5.6, LambdaTF: 5}

// ParamsFig5 are the parameters of the paper's Fig. 5 (Bestagon gate
// validation): μ_ = -0.32 eV, ε_r = 5.6, λ_TF = 5 nm.
var ParamsFig5 = Params{MuMinus: -0.32, EpsR: 5.6, LambdaTF: 5}

// Potential returns the screened Coulomb potential between two charges at
// distance d (nm) in eV.
func (p Params) Potential(d float64) float64 {
	if d <= 0 {
		return math.Inf(1)
	}
	return CoulombConstantEVnm / p.EpsR * math.Exp(-d/p.LambdaTF) / d
}

// Engine computes energies and ground states for a fixed set of dots.
//
// Charged surface defects (see NewEngineOn) are represented as extra
// pinned pseudo-dots appended after the layout's dots, with the pairwise
// matrix V scaled by each defect's charge. Every solver — exhaustive
// enumeration, annealing, and the registered exact backends, which all
// work from IsFixed, V, Energy and flipDelta — therefore sees the defect
// perturbation without any defect-specific code, and the free-dot count
// (the solve cost) is unchanged.
type Engine struct {
	Params Params
	Sites  []lattice.Site
	V      [][]float64 // pairwise interaction energies in eV
	fixed  []bool      // dots pinned to the charged state (perturbers, defects)

	// nlayout is the number of dots that came from the layout; pseudo-dots
	// for charged defects occupy indices [nlayout, len(Sites)).
	nlayout int
	// scale is the per-dot charge scale: 1 for layout dots (charge -e when
	// charged), -q for a defect of charge q·e, so V[i][j] = s_i·s_j·|V|
	// carries the correct interaction sign. Nil when the surface is
	// pristine (all scales 1).
	scale []float64
	// surface is the full defect surface (charged and neutral), kept for
	// canonical cache hashing. Nil when pristine.
	surface *defects.Surface
}

// NewEngine builds an engine for the layout. Perturber dots are pinned to
// the negative charge state, matching the paper's use of always-charged
// peripheral perturbers.
func NewEngine(l *sidb.Layout, params Params) *Engine {
	return NewEngineOn(l, params, nil)
}

// NewEngineOn builds an engine for the layout on a defective surface.
// Charged defects enter the electrostatics as fixed perturbers through
// the same screened Coulomb potential — not as free dots, so the solvers
// search the same-size configuration space as on a pristine surface. A
// positive defect (scale -q = -1) attracts nearby DB electrons; a
// negative one repels them. Neutral defects carry no field and are kept
// only for cache-key identity. A nil or empty surface reproduces
// NewEngine exactly.
func NewEngineOn(l *sidb.Layout, params Params, surf *defects.Surface) *Engine {
	nl := len(l.Dots)
	charged := surf.Charged()
	n := nl + len(charged)
	e := &Engine{
		Params:  params,
		Sites:   l.Sites(),
		V:       make([][]float64, n),
		fixed:   make([]bool, n),
		nlayout: nl,
	}
	for i, d := range l.Dots {
		if d.Role == sidb.RolePerturber {
			e.fixed[i] = true
		}
	}
	if len(charged) > 0 {
		e.surface = surf
		e.scale = make([]float64, n)
		for i := 0; i < nl; i++ {
			e.scale[i] = 1
		}
		for k, d := range charged {
			e.Sites = append(e.Sites, d.Site)
			e.fixed[nl+k] = true
			e.scale[nl+k] = -float64(d.Type.Charge())
		}
	} else if !surf.Empty() {
		// Neutral-only surface: no electrostatic effect, but the surface
		// still distinguishes the cache key.
		e.surface = surf
	}
	for i := 0; i < n; i++ {
		e.V[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := params.Potential(lattice.DistanceNM(e.Sites[i], e.Sites[j]))
			if e.scale != nil {
				v *= e.scale[i] * e.scale[j]
			}
			e.V[i][j] = v
			e.V[j][i] = v
		}
	}
	return e
}

// NumDots returns the number of dots, including defect pseudo-dots.
func (e *Engine) NumDots() int { return len(e.Sites) }

// NumLayoutDots returns the number of dots that came from the layout;
// indices at and beyond it are charged-defect pseudo-dots.
func (e *Engine) NumLayoutDots() int { return e.nlayout }

// Surface returns the defect surface the engine was built on (nil when
// pristine).
func (e *Engine) Surface() *defects.Surface { return e.surface }

// ChargeScale returns dot i's charge scale: 1 for layout dots, -q for a
// defect pseudo-dot of charge q·e.
func (e *Engine) ChargeScale(i int) float64 {
	if e.scale == nil {
		return 1
	}
	return e.scale[i]
}

// IsFixed reports whether dot i is pinned to the negative charge state
// (a perturber).
func (e *Engine) IsFixed(i int) bool { return e.fixed[i] }

// FreeIndices returns the indices of all non-pinned dots.
func (e *Engine) FreeIndices() []int {
	var out []int
	for i, f := range e.fixed {
		if !f {
			out = append(out, i)
		}
	}
	return out
}

// Energy returns the total configuration energy in eV: pairwise repulsion
// of charged dots plus μ_ per charged dot. Defect pseudo-dots contribute
// their interaction terms but no transition level — a defect is not a DB
// with a (-/0) level, it is an external charge.
func (e *Engine) Energy(charged []bool) float64 {
	total := 0.0
	nl := e.nlayout
	if e.surface == nil && nl == 0 {
		// Zero-value engines built without a constructor have no
		// pseudo-dots; every dot is a layout dot.
		nl = len(charged)
	}
	for i := range charged {
		if !charged[i] {
			continue
		}
		if i < nl {
			total += e.Params.MuMinus
		}
		for j := i + 1; j < len(charged); j++ {
			if charged[j] {
				total += e.V[i][j]
			}
		}
	}
	return total
}

// LocalPotential returns the electrostatic potential at dot i caused by
// all other charged dots.
func (e *Engine) LocalPotential(charged []bool, i int) float64 {
	v := 0.0
	for j := range charged {
		if j != i && charged[j] {
			v += e.V[i][j]
		}
	}
	return v
}

// PopulationStable reports whether the configuration satisfies the
// population stability criteria: no single charge addition or removal
// lowers the energy (perturbers are exempt; they are pinned).
func (e *Engine) PopulationStable(charged []bool) bool {
	for i := range charged {
		if e.fixed[i] {
			continue
		}
		delta := e.Params.MuMinus + e.LocalPotential(charged, i)
		if charged[i] {
			// Removing the electron changes energy by -delta; stability
			// requires delta <= 0.
			if delta > 1e-12 {
				return false
			}
		} else if delta < -1e-12 {
			// Adding an electron would lower the energy.
			return false
		}
	}
	return true
}

// GroundState finds a minimum-energy configuration. The search is routed
// through the automatic solver dispatcher (see Auto): a registered pruned
// exact engine when available, exhaustive enumeration up to ExactLimit free
// dots, and simulated annealing with deterministic restarts beyond that.
func (e *Engine) GroundState() ([]bool, float64) {
	if sol, err := Auto().Solve(e, SolveOptions{}); err == nil {
		return sol.Charges, sol.EnergyEV
	}
	return e.Anneal(DefaultAnnealConfig())
}

// ExactLimit is the maximum number of free dots for exhaustive search.
const ExactLimit = 22

// ExhaustiveDegrades counts, process-wide, how often an exact Exhaustive
// request silently degraded to simulated annealing because the instance
// exceeded the 63-free-dot enumeration capability. The zero value is ready
// to use; it is also mirrored onto any tracer passed to the solvers.
var ExhaustiveDegrades obs.Counter

// Exhaustive enumerates all charge configurations of the free dots and
// returns a minimum-energy configuration (SiQAD's ExGS equivalent). When
// the instance exceeds the 63-free-dot enumeration capability it degrades
// to simulated annealing; the degrade increments ExhaustiveDegrades and
// warns on stderr. Use ExhaustiveChecked to detect the case
// programmatically.
func (e *Engine) Exhaustive() ([]bool, float64) {
	gs, en, err := e.ExhaustiveChecked()
	if err != nil {
		ExhaustiveDegrades.Inc()
		fmt.Fprintf(os.Stderr, "sim: warning: %v; degrading exact request to simulated annealing (result no longer provably minimal)\n", err)
		return e.Anneal(DefaultAnnealConfig())
	}
	return gs, en
}

// ExhaustiveChecked enumerates all charge configurations of the free dots
// and returns a minimum-energy configuration, or an error when the
// instance exceeds the enumeration capability.
func (e *Engine) ExhaustiveChecked() ([]bool, float64, error) {
	return e.ExhaustiveContext(context.Background())
}

// ExhaustiveContext is ExhaustiveChecked under a context: cancellation or
// deadline expiry aborts the enumeration with the context's error. A nil
// context behaves like context.Background.
func (e *Engine) ExhaustiveContext(ctx context.Context) ([]bool, float64, error) {
	poll := ctx != nil && ctx.Done() != nil
	n := len(e.Sites)
	var freeIdx []int
	for i := 0; i < n; i++ {
		if !e.fixed[i] {
			freeIdx = append(freeIdx, i)
		}
	}
	if len(freeIdx) > 63 {
		return nil, 0, fmt.Errorf("sim: %d free dots exceed exhaustive capability", len(freeIdx))
	}
	base := make([]bool, n)
	for i := range base {
		base[i] = e.fixed[i] // perturbers always charged
	}
	best := append([]bool(nil), base...)
	// Incremental energy evaluation via gray-code flips.
	cur := append([]bool(nil), base...)
	curE := e.Energy(cur)
	bestE := curE
	total := uint64(1) << len(freeIdx)
	prevGray := uint64(0)
	for k := uint64(1); k < total; k++ {
		if poll && k&0x3FFF == 0 {
			if err := ctx.Err(); err != nil {
				return nil, 0, fmt.Errorf("sim: exhaustive search canceled: %w", err)
			}
		}
		gray := k ^ (k >> 1)
		diff := gray ^ prevGray
		prevGray = gray
		bit := 0
		for diff>>1 != 0 {
			diff >>= 1
			bit++
		}
		i := freeIdx[bit]
		curE += e.flipDelta(cur, i)
		cur[i] = !cur[i]
		if curE < bestE-1e-15 {
			bestE = curE
			copy(best, cur)
		}
	}
	return best, bestE, nil
}

// flipDelta returns the energy change of flipping dot i's charge.
func (e *Engine) flipDelta(charged []bool, i int) float64 {
	delta := e.Params.MuMinus + e.LocalPotential(charged, i)
	if charged[i] {
		return -delta
	}
	return delta
}

// AnnealConfig tunes the simulated-annealing ground-state search.
type AnnealConfig struct {
	Seed     int64
	Restarts int
	Sweeps   int     // sweeps per restart
	TStart   float64 // initial temperature in eV
	TEnd     float64 // final temperature in eV
	// Tracer receives annealing telemetry (restart/sweep/accepted-move
	// counts and the best-energy trace); nil disables it at no cost.
	Tracer *obs.Tracer
	// Metrics receives the counter/gauge/histogram telemetry only — no
	// spans — so parallel solver workers sharing one tracer can still
	// report annealing effort (spans nest on a single implicit stack and
	// are not safe for concurrent regions). When nil, Tracer (if any)
	// receives the metrics as before.
	Metrics *obs.Tracer
	// Ctx interrupts the annealing when cancelled: Anneal stops between
	// sweeps and returns the best configuration found so far. Nil behaves
	// like context.Background.
	Ctx context.Context
}

// DefaultAnnealConfig returns settings calibrated for Bestagon-tile-sized
// problems (tens of dots).
func DefaultAnnealConfig() AnnealConfig {
	return AnnealConfig{Seed: 1, Restarts: 8, Sweeps: 600, TStart: 0.3, TEnd: 0.001}
}

// Anneal runs simulated annealing over charge configurations and returns
// the best configuration found. Deterministic for a given config. A
// cancelled cfg.Ctx stops the search between sweeps; the best state found
// so far is returned (use the context's error to detect the early stop).
func (e *Engine) Anneal(cfg AnnealConfig) ([]bool, float64) {
	tr := cfg.Tracer
	mt := cfg.Metrics
	if mt == nil {
		mt = tr
	}
	sp := tr.Start("sim/anneal")
	defer sp.End()
	canceled := func() bool {
		return cfg.Ctx != nil && cfg.Ctx.Err() != nil
	}
	var accepted, flipsTried int64
	var energyTrace []float64 // best energy after each restart

	n := len(e.Sites)
	var freeIdx []int
	for i := 0; i < n; i++ {
		if !e.fixed[i] {
			freeIdx = append(freeIdx, i)
		}
	}
	best := make([]bool, n)
	for i := range best {
		best[i] = e.fixed[i]
	}
	bestE := e.Energy(best)

	for restart := 0; restart < cfg.Restarts; restart++ {
		if canceled() {
			break
		}
		rng := rand.New(rand.NewSource(cfg.Seed + int64(restart)*7919))
		cur := make([]bool, n)
		for i := range cur {
			cur[i] = e.fixed[i]
		}
		// Random initial population of free dots.
		for _, i := range freeIdx {
			cur[i] = rng.Intn(2) == 1
		}
		curE := e.Energy(cur)
		if curE < bestE {
			bestE = curE
			copy(best, cur)
		}
		if len(freeIdx) == 0 {
			continue
		}
		cool := math.Pow(cfg.TEnd/cfg.TStart, 1/float64(cfg.Sweeps))
		temp := cfg.TStart
		for sweep := 0; sweep < cfg.Sweeps; sweep++ {
			if sweep&15 == 0 && canceled() {
				break
			}
			for range freeIdx {
				i := freeIdx[rng.Intn(len(freeIdx))]
				delta := e.flipDelta(cur, i)
				flipsTried++
				if delta <= 0 || rng.Float64() < math.Exp(-delta/temp) {
					accepted++
					cur[i] = !cur[i]
					curE += delta
					if curE < bestE-1e-15 {
						bestE = curE
						copy(best, cur)
					}
				}
			}
			temp *= cool
		}
		// Greedy descent to the nearest local minimum.
		improved := true
		for improved && !canceled() {
			improved = false
			for _, i := range freeIdx {
				if d := e.flipDelta(cur, i); d < -1e-15 {
					cur[i] = !cur[i]
					curE += d
					improved = true
				}
			}
		}
		if curE < bestE-1e-15 {
			bestE = curE
			copy(best, cur)
		}
		if tr != nil {
			energyTrace = append(energyTrace, bestE)
		}
	}
	var acceptRate float64
	if flipsTried > 0 {
		acceptRate = float64(accepted) / float64(flipsTried)
	}
	if tr != nil {
		sp.SetAttr("restarts", cfg.Restarts)
		sp.SetAttr("sweeps", cfg.Sweeps)
		sp.SetAttr("free_dots", len(freeIdx))
		sp.SetAttr("flips_tried", flipsTried)
		sp.SetAttr("accepted", accepted)
		sp.SetAttr("acceptance_rate", acceptRate)
		sp.SetAttr("best_energy", bestE)
		sp.SetAttr("energy_trace", energyTrace)
	}
	if mt != nil {
		mt.Counter("sim/anneal/runs").Inc()
		mt.Counter("sim/anneal/restarts").Add(int64(cfg.Restarts))
		mt.Counter("sim/anneal/sweeps").Add(int64(cfg.Restarts * cfg.Sweeps))
		mt.Counter("sim/anneal/flips_tried").Add(flipsTried)
		mt.Counter("sim/anneal/accepted").Add(accepted)
		mt.Gauge("sim/anneal/best_energy").Set(bestE)
		if flipsTried > 0 {
			// The schedule's health signal: near 1 the walk is random (too
			// hot for the instance), near 0 it is frozen (wasted sweeps).
			mt.Histogram("sim/anneal/acceptance_rate",
				0.01, 0.02, 0.05, 0.1, 0.15, 0.2, 0.3, 0.5, 0.75, 1).Observe(acceptRate)
		}
	}
	return best, bestE
}

// DegeneracyGap returns the energy gap between the ground state and the
// lowest configuration whose charges differ on the given dots of interest
// (e.g. an output pair read differently). Exhaustive only; used to assess
// how robustly a gate encodes its output.
func (e *Engine) DegeneracyGap(interest []int) (float64, error) {
	n := len(e.Sites)
	var freeIdx []int
	for i := 0; i < n; i++ {
		if !e.fixed[i] {
			freeIdx = append(freeIdx, i)
		}
	}
	if len(freeIdx) > ExactLimit {
		return 0, fmt.Errorf("sim: degeneracy gap needs exhaustive search (%d free dots)", len(freeIdx))
	}
	ground, groundE := e.Exhaustive()
	key := func(c []bool) uint64 {
		var k uint64
		for bit, i := range interest {
			if c[i] {
				k |= 1 << bit
			}
		}
		return k
	}
	groundKey := key(ground)
	bestOther := math.Inf(1)
	cur := make([]bool, n)
	for i := range cur {
		cur[i] = e.fixed[i]
	}
	curE := e.Energy(cur)
	total := uint64(1) << len(freeIdx)
	prevGray := uint64(0)
	if key(cur) != groundKey && curE < bestOther {
		bestOther = curE
	}
	for k := uint64(1); k < total; k++ {
		gray := k ^ (k >> 1)
		diff := gray ^ prevGray
		prevGray = gray
		bit := 0
		for diff>>1 != 0 {
			diff >>= 1
			bit++
		}
		i := freeIdx[bit]
		curE += e.flipDelta(cur, i)
		cur[i] = !cur[i]
		if key(cur) != groundKey && curE < bestOther {
			bestOther = curE
		}
	}
	return bestOther - groundE, nil
}
