package sim

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/obs"
)

// Solution is the outcome of a ground-state solve: a charge configuration
// (indexed like the layout's dots) and its total energy.
type Solution struct {
	Charges  []bool
	EnergyEV float64
	// Solver names the backend that produced the solution ("exgs",
	// "quickexact", "anneal", ...).
	Solver string
	// Exact reports whether the energy is provably minimal.
	Exact bool
	// Degraded reports that the requested backend could not finish within
	// its budget and a cheaper engine produced this solution instead (see
	// Degrading). Degraded solutions are never cached.
	Degraded bool
}

// SolveOptions carries per-call settings into a solver. The tracer is used
// for concurrency-safe metrics only (counters, gauges, histograms) — never
// spans — so solvers may safely run from parallel workers sharing one
// tracer (spans nest on a single implicit stack and are not meant for
// concurrent regions).
type SolveOptions struct {
	Tracer *obs.Tracer
	// Ctx interrupts the solve when cancelled or past its deadline; the
	// solver returns the context's error instead of burning CPU to
	// completion. Nil behaves like context.Background.
	Ctx context.Context
}

// Context returns the options' context, defaulting to context.Background.
func (o SolveOptions) Context() context.Context {
	if o.Ctx != nil {
		return o.Ctx
	}
	return context.Background()
}

// GroundStateSolver is a pluggable ground-state search backend.
// Implementations must be safe for concurrent use by multiple goroutines
// and deterministic for a fixed engine and options.
type GroundStateSolver interface {
	// Name is the registry key ("exgs", "quickexact", "anneal", "auto").
	Name() string
	// IsExact reports whether the solver proves minimality of its result.
	IsExact() bool
	// Solve finds a ground state of the engine's layout.
	Solve(e *Engine, opts SolveOptions) (Solution, error)
}

var (
	solversMu sync.RWMutex
	solvers   = map[string]GroundStateSolver{}
)

// Register makes a solver selectable by name, replacing any previous
// solver with the same name. Backend packages call it from init, so blank
// importing a backend enables it (database/sql driver style):
//
//	import _ "repro/internal/sim/quickexact"
func Register(s GroundStateSolver) {
	solversMu.Lock()
	defer solversMu.Unlock()
	solvers[s.Name()] = s
}

// Lookup resolves a solver name; "" and "auto" yield the automatic
// dispatcher.
func Lookup(name string) (GroundStateSolver, error) {
	if name == "" || name == "auto" {
		return Auto(), nil
	}
	solversMu.RLock()
	defer solversMu.RUnlock()
	if s, ok := solvers[name]; ok {
		return s, nil
	}
	return nil, fmt.Errorf("sim: unknown ground-state solver %q (have %v)", name, solverNamesLocked())
}

// SolverNames lists the registered solver names, sorted.
func SolverNames() []string {
	solversMu.RLock()
	defer solversMu.RUnlock()
	return solverNamesLocked()
}

func solverNamesLocked() []string {
	out := make([]string, 0, len(solvers))
	for n := range solvers {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// AutoQuickExactLimit is the largest free-dot count for which the
// automatic dispatcher hands an instance to a registered pruned exact
// engine ("quickexact") instead of annealing. It defaults to ExactLimit so
// automatic dispatch keeps the historical exact/heuristic boundary: below
// it results merely arrive faster, above it behavior is unchanged. The
// pruned engine comfortably solves 30+ free dots — select it explicitly
// (solver name "quickexact") or raise this limit to verify larger layouts
// exactly. Note that exact results above the boundary can legitimately
// differ from annealed ones: annealing may settle in a population-stable
// metastable state above the true ground state.
var AutoQuickExactLimit = ExactLimit

// Auto returns the automatic dispatcher: it prefers a registered pruned
// exact engine up to AutoQuickExactLimit free dots, falls back to
// exhaustive enumeration up to ExactLimit, and anneals beyond that.
func Auto() GroundStateSolver { return autoSolver{} }

func init() {
	Register(exgsSolver{})
	Register(annealSolver{})
	Register(autoSolver{})
}

// exgsSolver is the brute-force exhaustive backend (SiQAD's ExGS).
type exgsSolver struct{}

func (exgsSolver) Name() string  { return "exgs" }
func (exgsSolver) IsExact() bool { return true }

func (exgsSolver) Solve(e *Engine, opts SolveOptions) (Solution, error) {
	gs, en, err := e.ExhaustiveContext(opts.Context())
	if err != nil {
		return Solution{}, err
	}
	opts.Tracer.Counter("sim/exgs/solves").Inc()
	return Solution{Charges: gs, EnergyEV: en, Solver: "exgs", Exact: true}, nil
}

// annealSolver is the simulated-annealing backend with the default
// deterministic restart schedule.
type annealSolver struct{}

func (annealSolver) Name() string  { return "anneal" }
func (annealSolver) IsExact() bool { return false }

func (annealSolver) Solve(e *Engine, opts SolveOptions) (Solution, error) {
	// The anneal config's own tracer hook emits spans, which are not safe
	// for parallel solver workers; the solver path routes the effort
	// metrics (flip/acceptance counters) through the span-free sink.
	cfg := DefaultAnnealConfig()
	cfg.Ctx = opts.Ctx
	cfg.Metrics = opts.Tracer
	gs, en := e.Anneal(cfg)
	if err := opts.Context().Err(); err != nil {
		return Solution{}, fmt.Errorf("sim: anneal canceled: %w", err)
	}
	opts.Tracer.Counter("sim/anneal/solves").Inc()
	return Solution{Charges: gs, EnergyEV: en, Solver: "anneal", Exact: false}, nil
}

// autoSolver dispatches by instance size and backend availability.
type autoSolver struct{}

func (autoSolver) Name() string  { return "auto" }
func (autoSolver) IsExact() bool { return false }

func (autoSolver) Solve(e *Engine, opts SolveOptions) (Solution, error) {
	free := len(e.FreeIndices())
	solversMu.RLock()
	q := solvers["quickexact"]
	solversMu.RUnlock()
	if q != nil && free <= AutoQuickExactLimit {
		if sol, err := q.Solve(e, opts); err == nil {
			return sol, nil
		}
		// A backend failure (e.g. an exhausted node budget) degrades to
		// the size-based fallbacks below.
	}
	if free <= ExactLimit {
		return exgsSolver{}.Solve(e, opts)
	}
	return annealSolver{}.Solve(e, opts)
}
