package sim

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/sidb"
)

func TestPotentialValues(t *testing.T) {
	p := ParamsFig5
	// V(d) = 1.4399645/5.6 * exp(-d/5)/d
	cases := map[float64]float64{
		1.0: 1.4399645 / 5.6 * math.Exp(-0.2),
		2.0: 1.4399645 / 5.6 * math.Exp(-0.4) / 2,
	}
	for d, want := range cases {
		if got := p.Potential(d); math.Abs(got-want) > 1e-12 {
			t.Errorf("V(%v) = %v, want %v", d, got, want)
		}
	}
	if !math.IsInf(p.Potential(0), 1) {
		t.Error("V(0) must be +inf")
	}
	if p.Potential(1) <= p.Potential(2) {
		t.Error("potential must decrease with distance")
	}
}

func TestIsolatedDotCharges(t *testing.T) {
	l := &sidb.Layout{}
	l.AddCell(0, 0, sidb.RoleNormal)
	e := NewEngine(l, ParamsFig5)
	gs, energy := e.Exhaustive()
	if !gs[0] {
		t.Error("isolated DB must be negatively charged (mu < 0)")
	}
	if math.Abs(energy-ParamsFig5.MuMinus) > 1e-12 {
		t.Errorf("energy = %v, want mu", energy)
	}
}

func TestClosePairSharesOneElectron(t *testing.T) {
	// Two dots 0.86 nm apart: V ≈ 0.25 < |mu|=0.32... both charge;
	// at 0.45 nm: V ≈ 0.53 > 0.32: one electron.
	l := &sidb.Layout{}
	l.AddCell(0, 0, sidb.RoleNormal)
	l.AddCell(1, 2, sidb.RoleNormal) // 0.86 nm
	e := NewEngine(l, ParamsFig5)
	gs, _ := e.Exhaustive()
	if !gs[0] || !gs[1] {
		t.Error("0.86 nm pair should doubly charge in isolation at mu=-0.32")
	}

	l2 := &sidb.Layout{}
	l2.AddCell(0, 0, sidb.RoleNormal)
	l2.AddCell(1, 1, sidb.RoleNormal) // 0.445 nm
	e2 := NewEngine(l2, ParamsFig5)
	gs2, _ := e2.Exhaustive()
	if gs2[0] == gs2[1] {
		t.Errorf("0.445 nm pair must hold exactly one electron, got %v", gs2)
	}
}

func TestPerturberPinned(t *testing.T) {
	l := &sidb.Layout{}
	l.AddCell(0, 0, sidb.RolePerturber)
	l.AddCell(1, 1, sidb.RolePerturber)
	e := NewEngine(l, ParamsFig5)
	gs, _ := e.Exhaustive()
	if !gs[0] || !gs[1] {
		t.Error("perturbers must stay charged regardless of energy")
	}
}

func TestEnergyConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	l := &sidb.Layout{}
	for i := 0; i < 10; i++ {
		l.AddCell(rng.Intn(40), rng.Intn(40), sidb.RoleNormal)
	}
	e := NewEngine(l, ParamsFig5)
	// flipDelta must match full recomputation.
	cfg := make([]bool, 10)
	for i := range cfg {
		cfg[i] = rng.Intn(2) == 1
	}
	base := e.Energy(cfg)
	for i := 0; i < 10; i++ {
		delta := e.flipDelta(cfg, i)
		cfg[i] = !cfg[i]
		if got := e.Energy(cfg); math.Abs(got-(base+delta)) > 1e-9 {
			t.Fatalf("flipDelta inconsistent at %d: %v vs %v", i, got, base+delta)
		}
		cfg[i] = !cfg[i]
	}
}

func TestExhaustiveIsMinimum(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		l := &sidb.Layout{}
		n := 3 + rng.Intn(8)
		seen := map[[2]int]bool{}
		for i := 0; i < n; i++ {
			for {
				x, y := rng.Intn(30), rng.Intn(30)
				if !seen[[2]int{x, y}] {
					seen[[2]int{x, y}] = true
					l.AddCell(x, y, sidb.RoleNormal)
					break
				}
			}
		}
		e := NewEngine(l, ParamsFig5)
		_, bestE := e.Exhaustive()
		// Compare against brute-force enumeration with direct Energy calls.
		min := math.Inf(1)
		cfg := make([]bool, n)
		for mask := 0; mask < 1<<n; mask++ {
			for i := range cfg {
				cfg[i] = mask>>i&1 == 1
			}
			if v := e.Energy(cfg); v < min {
				min = v
			}
		}
		if math.Abs(bestE-min) > 1e-9 {
			t.Fatalf("trial %d: exhaustive %v != brute force %v", trial, bestE, min)
		}
	}
}

func TestGroundStateIsPopulationStable(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		l := &sidb.Layout{}
		seen := map[[2]int]bool{}
		for i := 0; i < 8; i++ {
			for {
				x, y := rng.Intn(25), rng.Intn(25)
				if !seen[[2]int{x, y}] {
					seen[[2]int{x, y}] = true
					l.AddCell(x, y, sidb.RoleNormal)
					break
				}
			}
		}
		e := NewEngine(l, ParamsFig5)
		gs, _ := e.Exhaustive()
		if !e.PopulationStable(gs) {
			t.Fatalf("trial %d: ground state not population stable", trial)
		}
	}
}

func TestAnnealMatchesExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 6; trial++ {
		l := &sidb.Layout{}
		seen := map[[2]int]bool{}
		for i := 0; i < 12; i++ {
			for {
				x, y := rng.Intn(40), rng.Intn(40)
				if !seen[[2]int{x, y}] {
					seen[[2]int{x, y}] = true
					l.AddCell(x, y, sidb.RoleNormal)
					break
				}
			}
		}
		e := NewEngine(l, ParamsFig5)
		_, exact := e.Exhaustive()
		_, annealed := e.Anneal(DefaultAnnealConfig())
		if annealed > exact+1e-9 {
			t.Errorf("trial %d: anneal %v worse than exact %v", trial, annealed, exact)
		}
	}
}

func TestAnnealDeterministic(t *testing.T) {
	l := &sidb.Layout{}
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 15; i++ {
		l.AddCell(rng.Intn(50), rng.Intn(50), sidb.RoleNormal)
	}
	e := NewEngine(l, ParamsFig5)
	cfg := DefaultAnnealConfig()
	g1, e1 := e.Anneal(cfg)
	g2, e2 := e.Anneal(cfg)
	if e1 != e2 {
		t.Error("anneal must be deterministic for a fixed seed")
	}
	for i := range g1 {
		if g1[i] != g2[i] {
			t.Error("anneal configurations differ between runs")
			break
		}
	}
}

func TestGroundStateAutoSelect(t *testing.T) {
	l := &sidb.Layout{}
	for i := 0; i < 5; i++ {
		l.AddCell(i*6, 0, sidb.RoleNormal)
	}
	e := NewEngine(l, ParamsFig5)
	gs, energy := e.GroundState()
	_, exact := e.Exhaustive()
	if math.Abs(energy-exact) > 1e-12 {
		t.Error("auto ground state must match exhaustive for small instances")
	}
	if len(gs) != 5 {
		t.Error("wrong configuration size")
	}
}

func TestDegeneracyGap(t *testing.T) {
	// Two isolated dots far apart; interest = dot 0. Ground: both charged.
	// Best config differing on dot 0: dot 0 neutral: gap = |mu| - v where v
	// is tiny.
	l := &sidb.Layout{}
	l.AddCell(0, 0, sidb.RoleNormal)
	l.AddCell(100, 0, sidb.RoleNormal)
	e := NewEngine(l, ParamsFig5)
	gap, err := e.DegeneracyGap([]int{0})
	if err != nil {
		t.Fatal(err)
	}
	if gap < 0.3 || gap > 0.33 {
		t.Errorf("gap = %v, want ~|mu|", gap)
	}
}

func TestFig1cParams(t *testing.T) {
	if ParamsFig1c.MuMinus != -0.28 || ParamsFig1c.EpsR != 5.6 || ParamsFig1c.LambdaTF != 5 {
		t.Error("Fig 1c parameters wrong")
	}
	if ParamsFig5.MuMinus != -0.32 {
		t.Error("Fig 5 parameters wrong")
	}
}
