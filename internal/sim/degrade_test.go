package sim

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/lattice"
	"repro/internal/obs"
	"repro/internal/sidb"
)

// degradeTestEngine builds a small layout whose exact ground state is
// cheap, so tests control timing through contexts rather than size.
func degradeTestEngine() *Engine {
	l := &sidb.Layout{Name: "degrade-test"}
	for i := 0; i < 6; i++ {
		l.Add(lattice.FromCell(i*4, 0), sidb.RoleNormal)
	}
	return NewEngine(l, ParamsFig5)
}

// failingSolver always errors (standing in for an exact engine that ran
// out of budget) without consuming the context.
type failingSolver struct{}

func (failingSolver) Name() string  { return "failing" }
func (failingSolver) IsExact() bool { return true }
func (failingSolver) Solve(e *Engine, opts SolveOptions) (Solution, error) {
	return Solution{}, errors.New("simulated budget exhaustion")
}

func TestDegradingPassesThroughSuccess(t *testing.T) {
	e := degradeTestEngine()
	d := &Degrading{Inner: exgsSolver{}}
	sol, err := d.Solve(e, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Degraded || sol.Solver != "exgs" || !sol.Exact {
		t.Fatalf("undegraded solve came back %+v", sol)
	}
	if d.Name() != "exgs" {
		t.Fatalf("Name() = %q; the wrapper must not change cache identity", d.Name())
	}
}

func TestDegradingFallsBackOnInnerFailure(t *testing.T) {
	before := Degrades.Value()
	e := degradeTestEngine()
	tr := obs.New()
	d := &Degrading{Inner: failingSolver{}, Tracer: tr}
	sol, err := d.Solve(e, SolveOptions{})
	if err != nil {
		t.Fatalf("ladder should have degraded, not failed: %v", err)
	}
	if !sol.Degraded || sol.Solver != "anneal" || sol.Exact {
		t.Fatalf("expected degraded anneal solution, got %+v", sol)
	}
	if Degrades.Value() != before+1 {
		t.Fatalf("Degrades counter = %d, want %d", Degrades.Value(), before+1)
	}
	if tr.Counter(obs.Labeled("sim/degraded_total", "from", "failing", "to", "anneal")).Value() != 1 {
		t.Fatal("sim_degraded_total{from,to} not recorded")
	}
}

func TestDegradingSkipsExactWhenBudgetBelowMargin(t *testing.T) {
	e := degradeTestEngine()
	// Remaining budget (1s) is below the margin (1h): the exact engine
	// must not even start; the annealer answers within the budget.
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	d := &Degrading{Inner: neverSolver{}, Margin: time.Hour}
	sol, err := d.Solve(e, SolveOptions{Ctx: ctx})
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Degraded || sol.Solver != "anneal" {
		t.Fatalf("expected pre-emptive degrade, got %+v", sol)
	}
}

// neverSolver fails the test if its Solve is reached.
type neverSolver struct{}

func (neverSolver) Name() string  { return "never" }
func (neverSolver) IsExact() bool { return true }
func (neverSolver) Solve(e *Engine, opts SolveOptions) (Solution, error) {
	panic("exact engine invoked despite budget below margin")
}

func TestDegradingHonorsExpiredContext(t *testing.T) {
	e := degradeTestEngine()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	d := &Degrading{Inner: exgsSolver{}}
	if _, err := d.Solve(e, SolveOptions{Ctx: ctx}); !errors.Is(err, context.Canceled) {
		t.Fatalf("expired context should fail honestly, got %v", err)
	}
}

func TestDegradingUnwrapsAnnealer(t *testing.T) {
	e := degradeTestEngine()
	d := &Degrading{Inner: annealSolver{}}
	sol, err := d.Solve(e, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Degraded {
		t.Fatal("annealing by request is not a degrade")
	}
}

func TestDegradingFaultPointForcesLadder(t *testing.T) {
	if err := faults.Arm("sim.solve.exact=always", 1); err != nil {
		t.Fatal(err)
	}
	defer faults.Disarm()
	e := degradeTestEngine()
	d := &Degrading{Inner: neverSolver{}}
	sol, err := d.Solve(e, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Degraded {
		t.Fatal("armed sim.solve.exact fault should force the anneal rung")
	}
}
