package sim

import (
	"math"
	"testing"

	"repro/internal/defects"
	"repro/internal/sidb"
)

// pairLayout is two isolated dots far enough apart to both charge.
func pairLayout() *sidb.Layout {
	l := &sidb.Layout{Name: "pair"}
	l.AddCell(0, 0, sidb.RoleNormal)
	l.AddCell(30, 0, sidb.RoleNormal)
	return l
}

// TestEngineOnPristineIdentity: NewEngineOn with a nil or empty surface
// must reproduce NewEngine bit for bit.
func TestEngineOnPristineIdentity(t *testing.T) {
	l := pairLayout()
	a := NewEngine(l, ParamsFig5)
	b := NewEngineOn(l, ParamsFig5, nil)
	c := NewEngineOn(l, ParamsFig5, defects.New())
	for _, e := range []*Engine{b, c} {
		if e.NumDots() != a.NumDots() || e.NumLayoutDots() != a.NumDots() {
			t.Fatalf("dot counts differ: %d/%d vs %d", e.NumDots(), e.NumLayoutDots(), a.NumDots())
		}
		ga, ea := a.Exhaustive()
		gb, eb := e.Exhaustive()
		if ea != eb {
			t.Fatalf("pristine energies differ: %v vs %v", ea, eb)
		}
		for i := range ga {
			if ga[i] != gb[i] {
				t.Fatalf("pristine ground states differ at dot %d", i)
			}
		}
	}
}

// TestChargedDefectPerturbs: a negative defect near a dot raises that
// dot's cost of charging; a positive defect lowers it. The free-dot count
// must not grow.
func TestChargedDefectPerturbs(t *testing.T) {
	l := pairLayout()
	pristine := NewEngine(l, ParamsFig5)
	_, e0 := pristine.Exhaustive()

	neg := defects.New()
	neg.AddCell(4, 0, defects.DB) // -1, ~1.5 nm from dot 0
	en := NewEngineOn(l, ParamsFig5, neg)
	if len(en.FreeIndices()) != len(pristine.FreeIndices()) {
		t.Fatalf("defect changed free-dot count: %d vs %d",
			len(en.FreeIndices()), len(pristine.FreeIndices()))
	}
	if en.NumDots() != 3 || en.NumLayoutDots() != 2 {
		t.Fatalf("pseudo-dot bookkeeping wrong: %d/%d", en.NumDots(), en.NumLayoutDots())
	}
	gn, eNeg := en.Exhaustive()
	// DB- defect repels electrons: interaction with a charged dot is
	// positive, so V[dot][pseudo] > 0.
	if en.V[0][2] <= 0 {
		t.Fatalf("negative defect attractive: V=%v", en.V[0][2])
	}
	if !gn[2] {
		t.Fatal("defect pseudo-dot not pinned charged")
	}
	if eNeg == e0 {
		t.Fatal("charged defect did not change the ground-state energy")
	}

	pos := defects.New()
	pos.AddCell(4, 0, defects.Arsenic) // +1
	ep := NewEngineOn(l, ParamsFig5, pos)
	if ep.V[0][2] >= 0 {
		t.Fatalf("positive defect repulsive: V=%v", ep.V[0][2])
	}
	if ep.ChargeScale(2) != -1 || ep.ChargeScale(0) != 1 {
		t.Fatalf("charge scales wrong: %v %v", ep.ChargeScale(2), ep.ChargeScale(0))
	}

	// Neutral defects carry no field: identical energies, but the surface
	// is retained for cache identity.
	neutral := defects.New()
	neutral.AddCell(4, 0, defects.Siloxane)
	enn := NewEngineOn(l, ParamsFig5, neutral)
	_, eNeutral := enn.Exhaustive()
	if eNeutral != e0 {
		t.Fatalf("neutral defect changed energy: %v vs %v", eNeutral, e0)
	}
	if enn.Surface().Empty() {
		t.Fatal("neutral surface dropped from engine")
	}
}

// TestDefectSolverAgreement: exhaustive, anneal, and the registered auto
// solver must agree on the defective ground state.
func TestDefectSolverAgreement(t *testing.T) {
	l := &sidb.Layout{Name: "chain"}
	for i := 0; i < 5; i++ {
		l.AddCell(7*i, 0, sidb.RoleNormal)
	}
	surf := defects.New()
	surf.AddCell(17, 2, defects.DB)
	surf.AddCell(3, -4, defects.Arsenic)
	e := NewEngineOn(l, ParamsFig5, surf)

	gx, ex, err := e.ExhaustiveChecked()
	if err != nil {
		t.Fatal(err)
	}
	_, ea := e.Anneal(DefaultAnnealConfig())
	if math.Abs(ea-ex) > 1e-9 {
		t.Fatalf("anneal %v vs exhaustive %v", ea, ex)
	}
	sol, err := Auto().Solve(e, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.EnergyEV-ex) > 1e-9 {
		t.Fatalf("auto solver %v vs exhaustive %v", sol.EnergyEV, ex)
	}
	for i := e.NumLayoutDots(); i < e.NumDots(); i++ {
		if !gx[i] || !sol.Charges[i] {
			t.Fatalf("pseudo-dot %d not charged in solution", i)
		}
	}
	if !e.PopulationStable(gx) {
		t.Fatal("defective ground state not population stable")
	}
}
