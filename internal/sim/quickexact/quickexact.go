// Package quickexact implements a QuickExact-style exact ground-state
// engine for SiDB charge configurations (after Drewniok et al., "The Need
// for Speed: Efficient Exact Simulation of Silicon Dangling Bond Logic"):
// a pruned branch-and-bound search over charge assignments that replaces
// the blind 2^n enumeration of ExGS.
//
// Three physically informed reductions shrink the search space. All follow
// from the facts that the screened Coulomb potential is non-negative — a
// dot's local potential only ever grows as charges are added — and that
// every ground state is population stable (no single charge addition or
// removal lowers the energy):
//
//  1. Presolve (population bounds from μ_ and the pairwise potential
//     matrix): a dot whose stability term μ_ + v already exceeds zero with
//     no optional charges placed can never hold an electron in a ground
//     state and is fixed neutral; a dot that still prefers charging when
//     every other dot is charged is fixed negative. The rules propagate to
//     a fixpoint before any search happens.
//  2. Stability pruning: a partial assignment containing a charged dot
//     whose stability criterion μ_ + v_i > 0 is already violated cannot
//     complete to a ground state — the potential at i only grows — so the
//     whole subtree is cut.
//  3. Energy lower bound: any completion costs at least the partial energy
//     plus Σ_i min(0, μ_ + v_i) over unassigned dots i (cross terms among
//     unassigned charges are ≥ 0); subtrees whose bound exceeds the best
//     known configuration are cut. The incumbent is seeded with a short
//     deterministic anneal so pruning bites from the first node.
//
// Dots are ordered by the magnitude of their effective local potential, so
// the most physically constrained decisions sit near the root of the tree.
// The top levels of the tree are sharded across a worker pool sized by
// GOMAXPROCS; workers share the incumbent energy through an atomic so a
// good configuration found in one shard immediately tightens pruning in
// all others, while per-shard results are merged in deterministic order.
//
// The package registers itself as the "quickexact" sim.GroundStateSolver;
// blank import it to enable the backend:
//
//	import _ "repro/internal/sim/quickexact"
package quickexact

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/sim"
)

// panicBox gives every recovered shard panic the same concrete type, so
// racing atomic.Value.CompareAndSwap calls never see mismatched types.
type panicBox struct{ v any }

const (
	// stabEps matches sim.PopulationStable's tolerance: stability prunes
	// fire only on strict violations so degenerate ground states survive.
	stabEps = 1e-12
	// pruneEps guards the bound prune and incumbent updates against the
	// float drift of incremental energy accumulation along a search path.
	pruneEps = 1e-12
)

// DefaultNodeBudget bounds the search of the registered solver (roughly a
// few seconds of worst-case work); direct GroundState calls default to an
// unlimited search. An exhausted budget returns an error, which the
// automatic dispatcher degrades to annealing.
const DefaultNodeBudget = 64 << 20

// Options tune the search.
type Options struct {
	// Workers sizes the shard worker pool; <= 0 uses GOMAXPROCS.
	Workers int
	// ShardDepth is the number of top tree levels enumerated into shard
	// tasks; <= 0 picks automatically from the worker count.
	ShardDepth int
	// NodeBudget caps the total visited nodes across all shards; 0 means
	// unlimited. An exhausted budget aborts with an error.
	NodeBudget int64
	// Tracer receives concurrency-safe search metrics (counters, gauges,
	// histograms — no spans); nil disables them at no cost.
	Tracer *obs.Tracer
	// Ctx interrupts the search when cancelled or past its deadline: every
	// worker stops within ~1024 visited nodes and GroundState returns the
	// context's error. Nil behaves like context.Background.
	Ctx context.Context
}

// Stats describes one search.
type Stats struct {
	// FreeDots is the number of non-pinned dots.
	FreeDots int
	// PresolveCharged/PresolveNeutral count dots fixed before the search
	// by the population-bound fixpoint.
	PresolveCharged, PresolveNeutral int
	// Undecided is the branch-and-bound tree depth after presolve.
	Undecided int
	// Shards is the number of subtree tasks; Workers the pool size.
	Shards, Workers int
	// Nodes counts visited search nodes; BoundPruned and StabilityPruned
	// count subtrees cut by the two pruning rules.
	Nodes, BoundPruned, StabilityPruned int64
	// MeanFrontierDepth is the average tree depth at which the bound
	// prune fired (0 when it never did).
	MeanFrontierDepth float64
	// SeedEnergyEV is the annealed incumbent energy that seeded pruning.
	SeedEnergyEV float64
	// EnergyEV is the proven ground-state energy.
	EnergyEV float64
	// WorkerSeconds is the per-worker busy time.
	WorkerSeconds []float64
}

// Solver adapts the engine to the sim.GroundStateSolver interface.
type Solver struct {
	Opts Options
}

// Name implements sim.GroundStateSolver.
func (Solver) Name() string { return "quickexact" }

// IsExact implements sim.GroundStateSolver.
func (Solver) IsExact() bool { return true }

// Solve implements sim.GroundStateSolver.
func (s Solver) Solve(e *sim.Engine, opts sim.SolveOptions) (sim.Solution, error) {
	o := s.Opts
	if o.Tracer == nil {
		o.Tracer = opts.Tracer
	}
	if o.Ctx == nil {
		o.Ctx = opts.Ctx
	}
	gs, en, _, err := GroundState(e, o)
	if err != nil {
		return sim.Solution{}, err
	}
	return sim.Solution{Charges: gs, EnergyEV: en, Solver: "quickexact", Exact: true}, nil
}

func init() {
	// The registered instance carries the default node budget so the
	// automatic dispatcher can never hang on a pathological instance;
	// direct GroundState calls choose their own budget.
	sim.Register(Solver{Opts: Options{NodeBudget: DefaultNodeBudget}})
}

// GroundState finds a provably minimum-energy charge configuration of the
// engine's layout. The result is deterministic for a fixed engine and
// options (degenerate ground states are tie-broken canonically).
func GroundState(e *sim.Engine, opts Options) ([]bool, float64, Stats, error) {
	n := e.NumDots()
	freeIdx := e.FreeIndices()
	nf := len(freeIdx)
	st := Stats{FreeDots: nf}

	// Base configuration: perturbers pinned negative, free dots neutral.
	full := make([]bool, n)
	for i := 0; i < n; i++ {
		full[i] = e.IsFixed(i)
	}
	if nf == 0 {
		en := e.Energy(full)
		st.EnergyEV = en
		emit(opts.Tracer, &st)
		return full, en, st, nil
	}

	mu := e.Params.MuMinus
	// Effective on-site energy of charging each free dot: μ_ plus the
	// potential contributed by the pinned perturbers.
	onsite := make([]float64, nf)
	for k, i := range freeIdx {
		v := mu
		for j := 0; j < n; j++ {
			if e.IsFixed(j) {
				v += e.V[i][j]
			}
		}
		onsite[k] = v
	}
	// Free-free interaction matrix, flattened row-major.
	W := make([]float64, nf*nf)
	for a, i := range freeIdx {
		for b, j := range freeIdx {
			W[a*nf+b] = e.V[i][j]
		}
	}

	// Presolve: population bounds to a fixpoint. lo is the stability term
	// μ_ + v_k with only the already-forced charges placed; hi with every
	// still-possible charge placed. lo > 0 forces neutral (a charged k
	// would violate stability in every completion); hi < 0 forces a
	// charge (a neutral k always has a strictly improving flip).
	state := make([]int8, nf) // -1 undecided, 0 neutral, 1 charged
	for k := range state {
		state[k] = -1
	}
	for changed := true; changed; {
		changed = false
		for k := 0; k < nf; k++ {
			if state[k] != -1 {
				continue
			}
			lo, hi := onsite[k], onsite[k]
			row := W[k*nf : (k+1)*nf]
			for j := 0; j < nf; j++ {
				switch {
				case j == k:
				case state[j] == 1:
					lo += row[j]
					hi += row[j]
				case state[j] == -1:
					hi += row[j]
				}
			}
			if lo > stabEps {
				state[k] = 0
				st.PresolveNeutral++
				changed = true
			} else if hi < -stabEps {
				state[k] = 1
				st.PresolveCharged++
				changed = true
			}
		}
	}
	for k := 0; k < nf; k++ {
		if state[k] == 1 {
			full[freeIdx[k]] = true
		}
	}
	eBase := e.Energy(full) // pinned + presolved skeleton

	// Search order over the undecided dots: descending magnitude of the
	// effective local potential puts the most constrained decisions at the
	// top of the tree where pruning is cheapest.
	var order []int
	for k := 0; k < nf; k++ {
		if state[k] == -1 {
			order = append(order, k)
		}
	}
	eff := make([]float64, nf)
	for k := 0; k < nf; k++ {
		v := onsite[k]
		for j := 0; j < nf; j++ {
			if state[j] == 1 && j != k {
				v += W[k*nf+j]
			}
		}
		eff[k] = v
	}
	sort.Slice(order, func(a, b int) bool {
		ma, mb := math.Abs(eff[order[a]]), math.Abs(eff[order[b]])
		if ma != mb {
			return ma > mb
		}
		return order[a] < order[b]
	})
	nu := len(order)
	st.Undecided = nu
	if nu == 0 {
		// The presolve proved every free dot's charge.
		st.EnergyEV = eBase
		emit(opts.Tracer, &st)
		return full, eBase, st, nil
	}

	// Reduced problem over the undecided dots: ons folds the presolved
	// charges into the on-site term, WU is the undecided-undecided block.
	ons := make([]float64, nu)
	for u, k := range order {
		ons[u] = eff[k]
	}
	WU := make([]float64, nu*nu)
	for a, ka := range order {
		for b, kb := range order {
			WU[a*nu+b] = W[ka*nf+kb]
		}
	}

	// Incumbent: a short deterministic anneal seeds the upper bound so the
	// bound prune bites from the very first node.
	ctx := opts.Ctx
	seedCfg, seedE := e.Anneal(sim.AnnealConfig{Seed: 1, Restarts: 2, Sweeps: 150, TStart: 0.3, TEnd: 0.001, Ctx: ctx})
	st.SeedEnergyEV = seedE

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers < 1 {
		workers = 1
	}
	depth := opts.ShardDepth
	if depth <= 0 {
		depth = 0
		for (1<<depth) < 4*workers && depth < 12 {
			depth++
		}
	}
	if depth > nu {
		depth = nu
	}
	st.Workers = workers

	var best atomic.Uint64
	best.Store(math.Float64bits(seedE))
	var budget *int64
	if opts.NodeBudget > 0 {
		b := opts.NodeBudget
		budget = &b
	}

	// Enumerate the top levels into shard tasks, applying the same pruning
	// rules so dead prefixes never spawn work.
	gen := newSearcher(nu, ons, WU, eBase, &best, budget)
	gen.ctx = ctx
	gen.cutDepth = depth
	var tasks [][]int8
	gen.emit = func(prefix []int8) { tasks = append(tasks, prefix) }
	gen.dfs(0)
	st.Nodes += gen.nodes
	st.BoundPruned += gen.boundPruned
	st.StabilityPruned += gen.stabPruned
	pruneDepthSum, pruneEvents := gen.pruneDepthSum, gen.pruneEvents
	st.Shards = len(tasks)

	type shardResult struct {
		have   bool
		energy float64
		assign []int8
	}
	results := make([]shardResult, len(tasks))
	shardSeconds := opts.Tracer.Histogram("sim/quickexact/shard_seconds", 0.0001, 0.001, 0.01, 0.1, 1, 10)
	st.WorkerSeconds = make([]float64, workers)

	var shardPanic atomic.Value // first recovered shard panic, if any
	if len(tasks) > 0 {
		next := make(chan int)
		var wg sync.WaitGroup
		var nodes, boundPruned, stabPruned, depthSum, events int64
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				defer func() {
					if r := recover(); r != nil {
						shardPanic.CompareAndSwap(nil, panicBox{r})
						// Drain so the feeder's send below can never block
						// forever on a channel with no readers left.
						for range next {
						}
					}
				}()
				if faults.Should("quickexact.shard.panic") {
					panic("injected fault: quickexact.shard.panic")
				}
				busy := time.Now()
				s := newSearcher(nu, ons, WU, eBase, &best, budget)
				s.ctx = ctx
				s.cutDepth = nu
				for ti := range next {
					t0 := time.Now()
					s.reset()
					for k, val := range tasks[ti] {
						if val == 1 {
							s.pushCharge(k)
						} else {
							s.assign[k] = 0
						}
					}
					s.dfs(len(tasks[ti]))
					if s.haveBest {
						results[ti] = shardResult{have: true, energy: s.bestE, assign: append([]int8(nil), s.bestAssign...)}
						s.haveBest = false
					}
					shardSeconds.Observe(time.Since(t0).Seconds())
				}
				atomic.AddInt64(&nodes, s.nodes)
				atomic.AddInt64(&boundPruned, s.boundPruned)
				atomic.AddInt64(&stabPruned, s.stabPruned)
				atomic.AddInt64(&depthSum, s.pruneDepthSum)
				atomic.AddInt64(&events, s.pruneEvents)
				st.WorkerSeconds[w] = time.Since(busy).Seconds()
			}(w)
		}
		for ti := range tasks {
			next <- ti
		}
		close(next)
		wg.Wait()
		st.Nodes += nodes
		st.BoundPruned += boundPruned
		st.StabilityPruned += stabPruned
		pruneDepthSum += depthSum
		pruneEvents += events
	}
	if pruneEvents > 0 {
		st.MeanFrontierDepth = float64(pruneDepthSum) / float64(pruneEvents)
	}
	if r := shardPanic.Load(); r != nil {
		// A shard panic poisons the merge (its results are missing), so the
		// whole solve fails as an error the dispatch layer can degrade on;
		// the worker pool itself survived.
		emit(opts.Tracer, &st)
		return nil, 0, st, fmt.Errorf("quickexact: shard worker panicked: %v", r.(panicBox).v)
	}

	if ctx != nil {
		if err := ctx.Err(); err != nil {
			emit(opts.Tracer, &st)
			return nil, 0, st, fmt.Errorf("quickexact: search canceled after %d nodes (%d free dots): %w",
				st.Nodes, nf, err)
		}
	}
	if budget != nil && atomic.LoadInt64(budget) < 0 {
		emit(opts.Tracer, &st)
		return nil, 0, st, fmt.Errorf("quickexact: node budget %d exhausted after %d nodes (%d free dots)",
			opts.NodeBudget, st.Nodes, nf)
	}

	// Deterministic merge: best energy first, then the canonically
	// smallest assignment among energy ties.
	merged := shardResult{}
	for _, r := range results {
		if !r.have {
			continue
		}
		switch {
		case !merged.have || r.energy < merged.energy-pruneEps:
			merged = r
		case r.energy <= merged.energy+pruneEps && lexLess(r.assign, merged.assign):
			if r.energy < merged.energy {
				merged.energy = r.energy
			}
			merged.have = true
			merged.assign = r.assign
		}
	}
	if !merged.have {
		// Defensive only: subtrees containing a minimum are never pruned
		// (their lower bound cannot exceed the incumbent), so some shard
		// always records a leaf. Fall back to the annealed seed.
		copy(full, seedCfg)
		st.EnergyEV = seedE
		emit(opts.Tracer, &st)
		return full, seedE, st, nil
	}
	for u, k := range order {
		full[freeIdx[k]] = merged.assign[u] == 1
	}
	// Canonical final energy: one clean summation instead of the drifting
	// incremental accumulation along the winning search path.
	en := e.Energy(full)
	st.EnergyEV = en
	emit(opts.Tracer, &st)
	return full, en, st, nil
}

// emit publishes search metrics to the tracer (counters/gauges/histograms
// only — safe under concurrent solves sharing one tracer).
func emit(tr *obs.Tracer, st *Stats) {
	if tr == nil {
		return
	}
	tr.Counter("sim/quickexact/solves").Inc()
	tr.Counter("sim/quickexact/nodes").Add(st.Nodes)
	tr.Counter("sim/quickexact/bound_pruned").Add(st.BoundPruned)
	tr.Counter("sim/quickexact/stability_pruned").Add(st.StabilityPruned)
	tr.Counter("sim/quickexact/presolve_fixed").Add(int64(st.PresolveCharged + st.PresolveNeutral))
	tr.Counter("sim/quickexact/shards").Add(int64(st.Shards))
	tr.Gauge("sim/quickexact/last_free_dots").Set(float64(st.FreeDots))
	tr.Gauge("sim/quickexact/last_undecided").Set(float64(st.Undecided))
	tr.Gauge("sim/quickexact/last_frontier_depth").Set(st.MeanFrontierDepth)
	tr.Histogram("sim/quickexact/undecided_depth", 4, 8, 12, 16, 20, 24, 28, 32, 40).Observe(float64(st.Undecided))
	if st.Nodes > 0 {
		// How much of the search tree the bounds cut: the paper-motivated
		// effort metric for comparing pruned-exact engines across PRs.
		pruneRate := float64(st.BoundPruned+st.StabilityPruned) / float64(st.Nodes)
		tr.Histogram("sim/quickexact/prune_rate",
			0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9, 1).Observe(pruneRate)
	}
	if st.FreeDots > 0 {
		fixedFrac := float64(st.PresolveCharged+st.PresolveNeutral) / float64(st.FreeDots)
		tr.Histogram("sim/quickexact/presolve_fixed_frac",
			0.1, 0.25, 0.5, 0.75, 0.9, 1).Observe(fixedFrac)
	}
}

// searcher is one depth-first branch-and-bound traversal over the reduced
// (undecided-dot) problem. It is single-goroutine state; the only shared
// pieces are the atomic incumbent energy and the optional node budget.
type searcher struct {
	nu    int
	ons   []float64 // effective on-site energy per undecided dot
	W     []float64 // nu×nu interaction block
	eBase float64
	best  *atomic.Uint64 // float bits of the shared incumbent energy

	cutDepth int
	emit     func(prefix []int8)

	assign  []int8
	pot     []float64 // potential from charges assigned in this traversal
	charged []int
	energy  float64

	nodes, boundPruned, stabPruned int64
	pruneDepthSum, pruneEvents     int64
	budget                         *int64
	budgetExceeded                 bool
	ctx                            context.Context // nil = never canceled
	canceled                       bool

	haveBest   bool
	bestE      float64
	bestAssign []int8
}

func newSearcher(nu int, ons, W []float64, eBase float64, best *atomic.Uint64, budget *int64) *searcher {
	return &searcher{
		nu: nu, ons: ons, W: W, eBase: eBase, best: best, budget: budget,
		assign:     make([]int8, nu),
		pot:        make([]float64, nu),
		charged:    make([]int, 0, nu),
		energy:     eBase,
		bestAssign: make([]int8, nu),
	}
}

// reset rewinds the traversal state for the next shard task.
func (s *searcher) reset() {
	for i := range s.pot {
		s.pot[i] = 0
		s.assign[i] = 0
	}
	s.charged = s.charged[:0]
	s.energy = s.eBase
}

func (s *searcher) globalBest() float64 { return math.Float64frombits(s.best.Load()) }

// bound is a lower bound on the energy of any completion from depth k.
func (s *searcher) bound(k int) float64 {
	b := s.energy
	for u := k; u < s.nu; u++ {
		if d := s.ons[u] + s.pot[u]; d < 0 {
			b += d
		}
	}
	return b
}

// chargeOK reports whether charging dot u keeps every already-charged dot
// (and u itself) population stable. The local potential only grows down
// the tree, so a violation here kills the whole subtree.
func (s *searcher) chargeOK(u int) bool {
	if s.ons[u]+s.pot[u] > stabEps {
		return false
	}
	row := s.W[u*s.nu : (u+1)*s.nu]
	for _, j := range s.charged {
		if s.ons[j]+s.pot[j]+row[j] > stabEps {
			return false
		}
	}
	return true
}

func (s *searcher) pushCharge(u int) {
	row := s.W[u*s.nu : (u+1)*s.nu]
	s.energy += s.ons[u] + s.pot[u]
	for j := 0; j < s.nu; j++ {
		s.pot[j] += row[j] // row[u] == 0, pot[u] unchanged
	}
	s.charged = append(s.charged, u)
	s.assign[u] = 1
}

func (s *searcher) popCharge(u int) {
	row := s.W[u*s.nu : (u+1)*s.nu]
	for j := 0; j < s.nu; j++ {
		s.pot[j] -= row[j]
	}
	s.charged = s.charged[:len(s.charged)-1]
	s.energy -= s.ons[u] + s.pot[u]
}

func (s *searcher) dfs(k int) {
	if s.budgetExceeded || s.canceled {
		return
	}
	s.nodes++
	if s.nodes&1023 == 0 {
		if s.budget != nil && atomic.AddInt64(s.budget, -1024) < 0 {
			s.budgetExceeded = true
			return
		}
		if s.ctx != nil && s.ctx.Err() != nil {
			s.canceled = true
			return
		}
	}
	if b := s.bound(k); b > s.globalBest()+pruneEps {
		s.boundPruned++
		s.pruneDepthSum += int64(k)
		s.pruneEvents++
		return
	}
	if k == s.cutDepth {
		if s.emit != nil {
			s.emit(append([]int8(nil), s.assign[:k]...))
		} else {
			s.record()
		}
		return
	}
	// Value ordering: descend into the physically preferred branch first
	// so the incumbent tightens as early as possible.
	chargeFirst := s.ons[k]+s.pot[k] < 0
	for t := 0; t < 2; t++ {
		if chargeFirst == (t == 0) {
			if !s.chargeOK(k) {
				s.stabPruned++
				continue
			}
			s.pushCharge(k)
			s.dfs(k + 1)
			s.popCharge(k)
		} else {
			s.assign[k] = 0
			s.dfs(k + 1)
		}
	}
}

// record folds a complete assignment into the local best and the shared
// incumbent. Ties within the float-drift tolerance break canonically so
// degenerate instances stay deterministic across runs and worker counts.
func (s *searcher) record() {
	en := s.energy
	switch {
	case !s.haveBest || en < s.bestE-pruneEps:
		s.haveBest = true
		s.bestE = en
		copy(s.bestAssign, s.assign)
	case en <= s.bestE+pruneEps && lexLess(s.assign, s.bestAssign):
		if en < s.bestE {
			s.bestE = en
		}
		copy(s.bestAssign, s.assign)
	}
	for {
		cur := s.best.Load()
		if en >= math.Float64frombits(cur) {
			return
		}
		if s.best.CompareAndSwap(cur, math.Float64bits(en)) {
			return
		}
	}
}

// lexLess orders assignments canonically (neutral before charged).
func lexLess(a, b []int8) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}
