package quickexact

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/obs"
	"repro/internal/sidb"
	"repro/internal/sim"
)

func TestMatchesExhaustiveRandom(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + int(seed)%13
		perturbers := int(seed) % 3
		l := &sidb.Layout{}
		seen := map[[2]int]bool{}
		for i := 0; i < n; i++ {
			for {
				x, y := rng.Intn(30), rng.Intn(30)
				if !seen[[2]int{x, y}] {
					seen[[2]int{x, y}] = true
					role := sidb.RoleNormal
					if i < perturbers {
						role = sidb.RolePerturber
					}
					l.AddCell(x, y, role)
					break
				}
			}
		}
		params := sim.ParamsFig5
		if seed%2 == 1 {
			params = sim.ParamsFig1c
		}
		eng := sim.NewEngine(l, params)
		_, want, err := eng.ExhaustiveChecked()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		gs, got, st, err := GroundState(eng, Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("seed %d: quickexact %v != exhaustive %v (stats %+v)", seed, got, want, st)
		}
		if e := eng.Energy(gs); math.Abs(e-got) > 1e-12 {
			t.Errorf("seed %d: reported energy %v != config energy %v", seed, got, e)
		}
		if !eng.PopulationStable(gs) {
			t.Errorf("seed %d: ground state not population stable", seed)
		}
	}
}

func TestLargeInstanceExact(t *testing.T) {
	// 32 free dots: infeasible for ExGS (2^32 configurations) but solved
	// exactly by the pruned search. Annealing must never beat the proven
	// minimum, and the result must be population stable.
	rng := rand.New(rand.NewSource(42))
	l := &sidb.Layout{}
	seen := map[[2]int]bool{}
	for i := 0; i < 32; i++ {
		for {
			x, y := rng.Intn(48), rng.Intn(48)
			if !seen[[2]int{x, y}] {
				seen[[2]int{x, y}] = true
				l.AddCell(x, y, sidb.RoleNormal)
				break
			}
		}
	}
	eng := sim.NewEngine(l, sim.ParamsFig5)
	gs, en, st, err := GroundState(eng, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.FreeDots != 32 {
		t.Fatalf("free dots = %d", st.FreeDots)
	}
	if !eng.PopulationStable(gs) {
		t.Error("ground state not population stable")
	}
	_, annealed := eng.Anneal(sim.DefaultAnnealConfig())
	if annealed < en-1e-9 {
		t.Errorf("anneal %v beats quickexact %v — search is not exact", annealed, en)
	}
	t.Logf("32 free dots: E=%.6f eV, %d undecided after presolve, %d nodes, %d bound-pruned, %d stability-pruned",
		en, st.Undecided, st.Nodes, st.BoundPruned, st.StabilityPruned)
}

func TestDeterministicAcrossRunsAndWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	l := &sidb.Layout{}
	seen := map[[2]int]bool{}
	for i := 0; i < 20; i++ {
		for {
			x, y := rng.Intn(36), rng.Intn(36)
			if !seen[[2]int{x, y}] {
				seen[[2]int{x, y}] = true
				l.AddCell(x, y, sidb.RoleNormal)
				break
			}
		}
	}
	eng := sim.NewEngine(l, sim.ParamsFig5)
	var cfgs [][]bool
	var energies []float64
	for _, w := range []int{1, 1, 4, 8} {
		gs, en, _, err := GroundState(eng, Options{Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		cfgs = append(cfgs, gs)
		energies = append(energies, en)
	}
	for i := 1; i < len(cfgs); i++ {
		if energies[i] != energies[0] {
			t.Errorf("run %d: energy %v != %v", i, energies[i], energies[0])
		}
		for j := range cfgs[i] {
			if cfgs[i][j] != cfgs[0][j] {
				t.Errorf("run %d: configuration differs at dot %d", i, j)
				break
			}
		}
	}
}

func TestPerturbersStayPinned(t *testing.T) {
	l := &sidb.Layout{}
	l.AddCell(0, 0, sidb.RolePerturber)
	l.AddCell(1, 1, sidb.RolePerturber)
	l.AddCell(10, 10, sidb.RoleNormal)
	eng := sim.NewEngine(l, sim.ParamsFig5)
	gs, _, _, err := GroundState(eng, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !gs[0] || !gs[1] {
		t.Error("perturbers must stay charged")
	}
}

func TestAllFixedAndEmpty(t *testing.T) {
	l := &sidb.Layout{}
	l.AddCell(0, 0, sidb.RolePerturber)
	l.AddCell(5, 5, sidb.RolePerturber)
	eng := sim.NewEngine(l, sim.ParamsFig5)
	gs, en, st, err := GroundState(eng, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.FreeDots != 0 || len(gs) != 2 || !gs[0] || !gs[1] {
		t.Errorf("all-fixed solve wrong: %v %v %+v", gs, en, st)
	}
	if math.Abs(en-eng.Energy(gs)) > 1e-12 {
		t.Error("all-fixed energy inconsistent")
	}

	empty := sim.NewEngine(&sidb.Layout{}, sim.ParamsFig5)
	gs, en, _, err = GroundState(empty, Options{})
	if err != nil || len(gs) != 0 || en != 0 {
		t.Errorf("empty layout: gs=%v en=%v err=%v", gs, en, err)
	}
}

func TestNodeBudgetExhaustion(t *testing.T) {
	// A dense cluster with a hopeless budget must fail loudly, not hang or
	// return a silently inexact result.
	rng := rand.New(rand.NewSource(3))
	l := &sidb.Layout{}
	seen := map[[2]int]bool{}
	for i := 0; i < 24; i++ {
		for {
			x, y := rng.Intn(20), rng.Intn(20)
			if !seen[[2]int{x, y}] {
				seen[[2]int{x, y}] = true
				l.AddCell(x, y, sidb.RoleNormal)
				break
			}
		}
	}
	eng := sim.NewEngine(l, sim.ParamsFig5)
	_, _, _, err := GroundState(eng, Options{NodeBudget: 1})
	if err == nil {
		// The budget is only checked every 1024 nodes; an instance solved
		// in fewer nodes legitimately succeeds. Verify the search stayed
		// tiny in that case.
		_, _, st, _ := GroundState(eng, Options{})
		if st.Nodes > 2048 {
			t.Errorf("expected budget exhaustion error on %d-node search", st.Nodes)
		}
	}
}

func TestSolverRegistered(t *testing.T) {
	s, err := sim.Lookup("quickexact")
	if err != nil {
		t.Fatal(err)
	}
	if !s.IsExact() || s.Name() != "quickexact" {
		t.Error("quickexact solver metadata wrong")
	}
	l := &sidb.Layout{}
	l.AddCell(0, 0, sidb.RoleNormal)
	l.AddCell(6, 0, sidb.RoleNormal)
	eng := sim.NewEngine(l, sim.ParamsFig5)
	sol, err := s.Solve(eng, sim.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	_, want, _ := eng.ExhaustiveChecked()
	if math.Abs(sol.EnergyEV-want) > 1e-12 || sol.Solver != "quickexact" || !sol.Exact {
		t.Errorf("solver solution wrong: %+v want energy %v", sol, want)
	}

	// With quickexact linked in, the automatic dispatcher must route exact
	// instances through it.
	auto, _ := sim.Lookup("auto")
	sol, err = auto.Solve(eng, sim.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Solver != "quickexact" {
		t.Errorf("auto dispatched to %q, want quickexact", sol.Solver)
	}
}

func TestGroundStateRoutesThroughRegistry(t *testing.T) {
	// Engine.GroundState must agree with the registered exact backend.
	rng := rand.New(rand.NewSource(21))
	l := &sidb.Layout{}
	seen := map[[2]int]bool{}
	for i := 0; i < 10; i++ {
		for {
			x, y := rng.Intn(30), rng.Intn(30)
			if !seen[[2]int{x, y}] {
				seen[[2]int{x, y}] = true
				l.AddCell(x, y, sidb.RoleNormal)
				break
			}
		}
	}
	eng := sim.NewEngine(l, sim.ParamsFig5)
	_, en := eng.GroundState()
	_, want, _ := eng.ExhaustiveChecked()
	if math.Abs(en-want) > 1e-9 {
		t.Errorf("GroundState %v != exhaustive %v", en, want)
	}
}

func TestStatsAndTracerMetrics(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	l := &sidb.Layout{}
	seen := map[[2]int]bool{}
	for i := 0; i < 14; i++ {
		for {
			x, y := rng.Intn(30), rng.Intn(30)
			if !seen[[2]int{x, y}] {
				seen[[2]int{x, y}] = true
				l.AddCell(x, y, sidb.RoleNormal)
				break
			}
		}
	}
	eng := sim.NewEngine(l, sim.ParamsFig5)
	tr := obs.New()
	_, _, st, err := GroundState(eng, Options{Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	if st.FreeDots != 14 || st.Nodes == 0 {
		t.Errorf("stats incomplete: %+v", st)
	}
	if st.PresolveCharged+st.PresolveNeutral+st.Undecided != 14 {
		t.Errorf("presolve + undecided must cover all free dots: %+v", st)
	}
	rep := tr.Report("t")
	if rep.Counter("sim/quickexact/solves") != 1 {
		t.Error("solve counter missing")
	}
	if rep.Counter("sim/quickexact/nodes") != st.Nodes {
		t.Errorf("node counter %d != stats %d", rep.Counter("sim/quickexact/nodes"), st.Nodes)
	}
}
