package quickexact

import (
	"math/rand"
	"testing"

	"repro/internal/sidb"
	"repro/internal/sim"
)

// benchLayout builds a deterministic random layout of n free dots.
func benchLayout(n int, seed int64, span int) *sidb.Layout {
	rng := rand.New(rand.NewSource(seed))
	l := &sidb.Layout{}
	seen := map[[2]int]bool{}
	for i := 0; i < n; i++ {
		for {
			x, y := rng.Intn(span), rng.Intn(span)
			if !seen[[2]int{x, y}] {
				seen[[2]int{x, y}] = true
				l.AddCell(x, y, sidb.RoleNormal)
				break
			}
		}
	}
	return l
}

// The headline comparison: blind 2^n enumeration (ExGS) vs the pruned
// branch-and-bound (QuickExact) on the same 20-free-dot instance. Run via
// `make bench-sim`.

func BenchmarkGroundStateExGS20(b *testing.B) {
	eng := sim.NewEngine(benchLayout(20, 7, 40), sim.ParamsFig5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := eng.ExhaustiveChecked(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGroundStateQuickExact20(b *testing.B) {
	eng := sim.NewEngine(benchLayout(20, 7, 40), sim.ParamsFig5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := GroundState(eng, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// Beyond the enumeration limit: instances ExGS cannot touch at all.

func BenchmarkGroundStateQuickExact30(b *testing.B) {
	eng := sim.NewEngine(benchLayout(30, 7, 48), sim.ParamsFig5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := GroundState(eng, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGroundStateQuickExact40(b *testing.B) {
	eng := sim.NewEngine(benchLayout(40, 7, 56), sim.ParamsFig5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := GroundState(eng, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// The heuristic baseline at the same size, for context.

func BenchmarkGroundStateAnneal20(b *testing.B) {
	eng := sim.NewEngine(benchLayout(20, 7, 40), sim.ParamsFig5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Anneal(sim.DefaultAnnealConfig())
	}
}
