// Package lattice models the hydrogen-passivated silicon (100) 2×1 surface
// (H-Si(100)-2×1) on which silicon dangling bonds are fabricated.
//
// Sites follow SiQAD's (n, m, l) convention: n indexes the position along a
// dimer row, m indexes the dimer row, and l ∈ {0, 1} selects the upper or
// lower atom of the dimer pair. The lattice constants are a = 3.84 Å along
// the dimer row, b = 7.68 Å between rows, and 2.25 Å between the two atoms
// of a dimer.
package lattice

import (
	"fmt"
	"math"
)

// Physical lattice constants of H-Si(100)-2×1 in nanometers.
const (
	// PitchX is the site pitch along a dimer row (a = 3.84 Å).
	PitchX = 0.384
	// PitchY is the pitch between dimer rows (b = 7.68 Å).
	PitchY = 0.768
	// DimerGap is the separation of the two atoms within a dimer (2.25 Å).
	DimerGap = 0.225
)

// Site is a lattice site in SiQAD (n, m, l) coordinates.
type Site struct {
	N int // position along the dimer row (x)
	M int // dimer row index (y)
	L int // 0: upper dimer atom, 1: lower dimer atom
}

// String formats the site as "(n,m,l)".
func (s Site) String() string { return fmt.Sprintf("(%d,%d,%d)", s.N, s.M, s.L) }

// Pos returns the physical position of the site in nanometers.
func (s Site) Pos() (x, y float64) {
	return float64(s.N) * PitchX, float64(s.M)*PitchY + float64(s.L)*DimerGap
}

// FromCell converts a flattened cell coordinate (x, y) — where y counts
// dimer sub-rows, i.e. y = 2m + l — into a lattice site. This is the
// coordinate system the gate library uses for tile-local dot placement.
func FromCell(x, y int) Site {
	m, l := y/2, y%2
	if y < 0 && l != 0 {
		// Floor division for negative sub-rows.
		m, l = (y-1)/2, 1
	}
	return Site{N: x, M: m, L: l}
}

// Cell returns the flattened cell coordinate (x, y) with y = 2m + l.
func (s Site) Cell() (x, y int) { return s.N, 2*s.M + s.L }

// Translate returns the site shifted by dx cells horizontally and dy
// sub-rows vertically.
func (s Site) Translate(dx, dy int) Site {
	x, y := s.Cell()
	return FromCell(x+dx, y+dy)
}

// DistanceNM returns the Euclidean distance between two sites in nanometers.
func DistanceNM(a, b Site) float64 {
	ax, ay := a.Pos()
	bx, by := b.Pos()
	dx, dy := ax-bx, ay-by
	return math.Hypot(dx, dy)
}

// Box is an axis-aligned bounding box over lattice sites in cell coordinates.
type Box struct {
	MinX, MinY int
	MaxX, MaxY int // inclusive
}

// EmptyBox returns a box that contains nothing until extended.
func EmptyBox() Box {
	const big = int(^uint(0) >> 1)
	return Box{MinX: big, MinY: big, MaxX: -big - 1, MaxY: -big - 1}
}

// Empty reports whether the box contains no sites.
func (b Box) Empty() bool { return b.MinX > b.MaxX || b.MinY > b.MaxY }

// Extend grows the box to include the given site.
func (b Box) Extend(s Site) Box {
	x, y := s.Cell()
	if x < b.MinX {
		b.MinX = x
	}
	if x > b.MaxX {
		b.MaxX = x
	}
	if y < b.MinY {
		b.MinY = y
	}
	if y > b.MaxY {
		b.MaxY = y
	}
	return b
}

// WidthNM returns the physical width of the box in nanometers. The Table 1
// area model of the Bestagon paper measures extent as (cells − 1)·PitchX.
func (b Box) WidthNM() float64 {
	if b.Empty() {
		return 0
	}
	return float64(b.MaxX-b.MinX) * PitchX
}

// HeightNM returns the physical height of the box in nanometers using the
// same (sub-rows − 1)·PitchX convention the paper's area figures follow
// (sub-row pitch PitchY/2 = PitchX).
func (b Box) HeightNM() float64 {
	if b.Empty() {
		return 0
	}
	return float64(b.MaxY-b.MinY) * (PitchY / 2)
}

// AreaNM2 returns the bounding-box area in square nanometers.
func (b Box) AreaNM2() float64 { return b.WidthNM() * b.HeightNM() }
