package lattice

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSitePos(t *testing.T) {
	cases := []struct {
		s    Site
		x, y float64
	}{
		{Site{0, 0, 0}, 0, 0},
		{Site{1, 0, 0}, 0.384, 0},
		{Site{0, 1, 0}, 0, 0.768},
		{Site{0, 0, 1}, 0, 0.225},
		{Site{3, 2, 1}, 3 * 0.384, 2*0.768 + 0.225},
	}
	for _, c := range cases {
		x, y := c.s.Pos()
		if math.Abs(x-c.x) > 1e-12 || math.Abs(y-c.y) > 1e-12 {
			t.Errorf("%v.Pos() = (%v,%v), want (%v,%v)", c.s, x, y, c.x, c.y)
		}
	}
}

func TestCellRoundTrip(t *testing.T) {
	f := func(x, y int16) bool {
		s := FromCell(int(x), int(y))
		gx, gy := s.Cell()
		return gx == int(x) && gy == int(y) && (s.L == 0 || s.L == 1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFromCellNegative(t *testing.T) {
	s := FromCell(0, -1)
	if s.L != 1 || s.M != -1 {
		t.Errorf("FromCell(0,-1) = %v, want m=-1 l=1", s)
	}
	if _, y := s.Cell(); y != -1 {
		t.Errorf("round trip broken for negative sub-row: %d", y)
	}
}

func TestTranslate(t *testing.T) {
	s := FromCell(5, 7)
	m := s.Translate(2, 3)
	x, y := m.Cell()
	if x != 7 || y != 10 {
		t.Errorf("Translate got (%d,%d), want (7,10)", x, y)
	}
}

func TestDistanceNM(t *testing.T) {
	a := Site{0, 0, 0}
	b := Site{1, 0, 0}
	if d := DistanceNM(a, b); math.Abs(d-PitchX) > 1e-12 {
		t.Errorf("distance along row = %v, want %v", d, PitchX)
	}
	c := Site{0, 0, 1}
	if d := DistanceNM(a, c); math.Abs(d-DimerGap) > 1e-12 {
		t.Errorf("dimer distance = %v, want %v", d, DimerGap)
	}
	if DistanceNM(a, b) != DistanceNM(b, a) {
		t.Error("distance must be symmetric")
	}
}

func TestBoxExtendAndArea(t *testing.T) {
	b := EmptyBox()
	if !b.Empty() {
		t.Fatal("EmptyBox must start empty")
	}
	b = b.Extend(FromCell(0, 0))
	b = b.Extend(FromCell(119, 137)) // the xor2 bounding box from Table 1
	if b.Empty() {
		t.Fatal("box must be non-empty after extension")
	}
	// Table 1: xor2 is 2x3 tiles = (60*2-1) x (46*3-1) cells = 2403.98 nm^2.
	if a := b.AreaNM2(); math.Abs(a-2403.98) > 0.01 {
		t.Errorf("xor2 bounding box area = %v, want 2403.98", a)
	}
}

func TestBoxSingleSite(t *testing.T) {
	b := EmptyBox().Extend(FromCell(10, 10))
	if b.WidthNM() != 0 || b.HeightNM() != 0 || b.AreaNM2() != 0 {
		t.Error("single-site box must have zero extent under the (n-1) model")
	}
}

func TestTable1AreaModel(t *testing.T) {
	// Verify the reverse-engineered area model against every Table 1 row.
	rows := []struct {
		w, h int
		area float64
	}{
		{2, 3, 2403.98}, {2, 3, 2403.98}, {3, 4, 4830.22}, {3, 6, 7258.52},
		{4, 7, 11312.68}, {5, 6, 12124.57}, {5, 6, 12124.57}, {5, 8, 16180.79},
		{5, 8, 16180.79}, {5, 8, 16180.79}, {5, 11, 22265.12}, {5, 12, 24293.23},
		{5, 15, 30377.56}, {8, 10, 32419.82},
	}
	for _, r := range rows {
		b := EmptyBox().Extend(FromCell(0, 0)).Extend(FromCell(60*r.w-1, 46*r.h-1))
		if got := b.AreaNM2(); math.Abs(got-r.area) > 2.5 {
			t.Errorf("area model for %dx%d: got %.2f, want %.2f", r.w, r.h, got, r.area)
		}
	}
}
