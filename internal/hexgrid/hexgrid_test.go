package hexgrid

import (
	"testing"
	"testing/quick"
)

func TestOffsetCubeRoundTrip(t *testing.T) {
	f := func(x, y int8) bool {
		o := Offset{int(x), int(y)}
		return o.ToCube().ToOffset() == o
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCubeValidAfterConversion(t *testing.T) {
	f := func(x, y int8) bool {
		return Offset{int(x), int(y)}.ToCube().Valid()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAxialRoundTrip(t *testing.T) {
	f := func(x, y int8) bool {
		o := Offset{int(x), int(y)}
		return o.ToAxial().ToOffset() == o
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNeighborMatchesCubeStep(t *testing.T) {
	for _, o := range []Offset{{0, 0}, {3, 4}, {5, 5}, {-2, 7}, {0, -3}, {1, 1}} {
		for _, d := range Directions {
			got := o.Neighbor(d)
			want := o.ToCube().Step(d).ToOffset()
			if got != want {
				t.Errorf("Neighbor(%v, %v) = %v, cube says %v", o, d, got, want)
			}
		}
	}
}

func TestNeighborEvenRow(t *testing.T) {
	o := Offset{2, 2} // even row: NW is (x-1, y-1)
	cases := map[Direction]Offset{
		NorthWest: {1, 1}, NorthEast: {2, 1},
		SouthWest: {1, 3}, SouthEast: {2, 3},
		West: {1, 2}, East: {3, 2},
	}
	for d, want := range cases {
		if got := o.Neighbor(d); got != want {
			t.Errorf("even row %v: got %v, want %v", d, got, want)
		}
	}
}

func TestNeighborOddRow(t *testing.T) {
	o := Offset{2, 3} // odd row (shifted right): NW is (x, y-1)
	cases := map[Direction]Offset{
		NorthWest: {2, 2}, NorthEast: {3, 2},
		SouthWest: {2, 4}, SouthEast: {3, 4},
		West: {1, 3}, East: {3, 3},
	}
	for d, want := range cases {
		if got := o.Neighbor(d); got != want {
			t.Errorf("odd row %v: got %v, want %v", d, got, want)
		}
	}
}

func TestOppositeInvolution(t *testing.T) {
	for _, d := range Directions {
		if d.Opposite().Opposite() != d {
			t.Errorf("Opposite not involutive for %v", d)
		}
	}
}

func TestNeighborOppositeRoundTrip(t *testing.T) {
	f := func(x, y int8, dRaw uint8) bool {
		o := Offset{int(x), int(y)}
		d := Directions[int(dRaw)%6]
		return o.Neighbor(d).Neighbor(d.Opposite()) == o
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIncomingOutgoing(t *testing.T) {
	if !NorthWest.Incoming() || !NorthEast.Incoming() {
		t.Error("NW/NE must be incoming")
	}
	if !SouthWest.Outgoing() || !SouthEast.Outgoing() {
		t.Error("SW/SE must be outgoing")
	}
	for _, d := range []Direction{West, East} {
		if d.Incoming() || d.Outgoing() {
			t.Errorf("%v must be neither incoming nor outgoing", d)
		}
	}
}

func TestDistanceProperties(t *testing.T) {
	f := func(ax, ay, bx, by int8) bool {
		a := Offset{int(ax), int(ay)}
		b := Offset{int(bx), int(by)}
		d := a.Distance(b)
		if d < 0 {
			return false
		}
		if (d == 0) != (a == b) {
			return false
		}
		return d == b.Distance(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDistanceTriangleInequality(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy int8) bool {
		a := Offset{int(ax), int(ay)}
		b := Offset{int(bx), int(by)}
		c := Offset{int(cx), int(cy)}
		return a.Distance(c) <= a.Distance(b)+b.Distance(c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNeighborsAreDistanceOne(t *testing.T) {
	o := Offset{4, 7}
	for _, n := range o.Neighbors() {
		if o.Distance(n) != 1 {
			t.Errorf("neighbor %v at distance %d", n, o.Distance(n))
		}
	}
}

func TestDirectionTo(t *testing.T) {
	o := Offset{3, 3}
	for _, d := range Directions {
		n := o.Neighbor(d)
		got, ok := o.DirectionTo(n)
		if !ok || got != d {
			t.Errorf("DirectionTo(%v): got %v/%v, want %v", n, got, ok, d)
		}
	}
	if _, ok := o.DirectionTo(Offset{10, 10}); ok {
		t.Error("DirectionTo must fail for non-neighbors")
	}
	if _, ok := o.DirectionTo(o); ok {
		t.Error("DirectionTo must fail for self")
	}
}

func TestLineEndpointsAndLength(t *testing.T) {
	a := Offset{0, 0}.ToCube()
	b := Offset{5, 7}.ToCube()
	line := Line(a, b)
	if line[0] != a || line[len(line)-1] != b {
		t.Fatalf("line endpoints wrong: %v ... %v", line[0], line[len(line)-1])
	}
	if len(line) != a.Distance(b)+1 {
		t.Fatalf("line length %d, want %d", len(line), a.Distance(b)+1)
	}
	for i := 1; i < len(line); i++ {
		if line[i-1].Distance(line[i]) != 1 {
			t.Fatalf("line not contiguous at %d", i)
		}
	}
}

func TestRingSizeAndRadius(t *testing.T) {
	c := Offset{5, 5}.ToCube()
	for r := 1; r <= 4; r++ {
		ring := Ring(c, r)
		if len(ring) != 6*r {
			t.Fatalf("ring %d has %d hexes, want %d", r, len(ring), 6*r)
		}
		seen := map[Cube]bool{}
		for _, h := range ring {
			if c.Distance(h) != r {
				t.Fatalf("ring %d contains %v at distance %d", r, h, c.Distance(h))
			}
			if seen[h] {
				t.Fatalf("ring %d repeats %v", r, h)
			}
			seen[h] = true
		}
	}
	if got := Ring(c, 0); len(got) != 1 || got[0] != c {
		t.Error("ring 0 must be just the center")
	}
}

func TestSpiralCount(t *testing.T) {
	c := Cube{}
	for r := 0; r <= 4; r++ {
		want := 1 + 3*r*(r+1) // centered hexagonal numbers
		if got := len(Spiral(c, r)); got != want {
			t.Errorf("spiral %d: got %d, want %d", r, got, want)
		}
	}
}

func TestRotate60SixFold(t *testing.T) {
	f := func(x, y int8) bool {
		c := Offset{int(x), int(y)}.ToCube()
		r := c
		for i := 0; i < 6; i++ {
			r = r.Rotate60CW()
			if !r.Valid() {
				return false
			}
		}
		return r == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRotateInverses(t *testing.T) {
	f := func(x, y int8) bool {
		c := Offset{int(x), int(y)}.ToCube()
		return c.Rotate60CW().Rotate60CCW() == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReflectQInvolution(t *testing.T) {
	f := func(x, y int8) bool {
		c := Offset{int(x), int(y)}.ToCube()
		return c.ReflectQ().ReflectQ() == c && c.ReflectQ().Valid()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCenterOddRowShift(t *testing.T) {
	x0, _ := Offset{0, 0}.Center()
	x1, _ := Offset{0, 1}.Center()
	if x1 <= x0 {
		t.Error("odd rows must be shifted right in odd-r layout")
	}
	_, y0 := Offset{0, 0}.Center()
	_, y1 := Offset{0, 1}.Center()
	if y1-y0 != 1.5 {
		t.Errorf("vertical pitch %v, want 1.5", y1-y0)
	}
}

func TestBounds(t *testing.T) {
	b := NewBounds(3, 4)
	if b.Width() != 3 || b.Height() != 4 || b.Area() != 12 {
		t.Fatalf("bounds dims wrong: %+v", b)
	}
	if !b.Contains(Offset{0, 0}) || !b.Contains(Offset{2, 3}) {
		t.Error("bounds must contain corners")
	}
	if b.Contains(Offset{3, 0}) || b.Contains(Offset{0, 4}) || b.Contains(Offset{-1, 0}) {
		t.Error("bounds must exclude outside coordinates")
	}
	all := b.All()
	if len(all) != 12 {
		t.Fatalf("All returned %d coords", len(all))
	}
	seen := map[Offset]bool{}
	for _, o := range all {
		if !b.Contains(o) || seen[o] {
			t.Fatalf("All returned bad/duplicate coordinate %v", o)
		}
		seen[o] = true
	}
}

func TestDirectionString(t *testing.T) {
	names := map[Direction]string{
		NorthWest: "NW", NorthEast: "NE", SouthWest: "SW",
		SouthEast: "SE", West: "W", East: "E",
	}
	for d, want := range names {
		if d.String() != want {
			t.Errorf("%v.String() = %q", d, d.String())
		}
	}
}
