// Package hexgrid implements coordinate algebra for pointy-top hexagonal
// grids in offset ("odd-r"), axial, and cube coordinate systems.
//
// The Bestagon floor plan (Walter et al., DAC 2022) arranges hexagonal
// standard tiles in rows: every tile receives inputs from its north-west and
// north-east neighbors and emits outputs toward its south-west and south-east
// neighbors, so information flows strictly top to bottom. The conventions
// follow Red Blob Games' hexagonal grid reference, which the paper credits.
package hexgrid

import (
	"fmt"
	"math"
)

// Direction identifies one of the six neighbors of a pointy-top hexagon.
type Direction uint8

// The six pointy-top neighbor directions. Order matters: the first four are
// the ones used by the row-based Bestagon data flow (inputs NW/NE, outputs
// SW/SE); W and E complete the neighborhood.
const (
	NorthWest Direction = iota
	NorthEast
	SouthWest
	SouthEast
	West
	East
	numDirections
)

// Directions lists all six directions in a stable order.
var Directions = [6]Direction{NorthWest, NorthEast, SouthWest, SouthEast, West, East}

// String returns the compass name of the direction.
func (d Direction) String() string {
	switch d {
	case NorthWest:
		return "NW"
	case NorthEast:
		return "NE"
	case SouthWest:
		return "SW"
	case SouthEast:
		return "SE"
	case West:
		return "W"
	case East:
		return "E"
	default:
		return fmt.Sprintf("Direction(%d)", uint8(d))
	}
}

// Opposite returns the direction pointing the other way.
func (d Direction) Opposite() Direction {
	switch d {
	case NorthWest:
		return SouthEast
	case NorthEast:
		return SouthWest
	case SouthWest:
		return NorthEast
	case SouthEast:
		return NorthWest
	case West:
		return East
	case East:
		return West
	default:
		return d
	}
}

// Incoming reports whether the direction is an input side under the
// row-based Bestagon data-flow convention (signals arrive from the north).
func (d Direction) Incoming() bool { return d == NorthWest || d == NorthEast }

// Outgoing reports whether the direction is an output side under the
// row-based Bestagon data-flow convention (signals leave to the south).
func (d Direction) Outgoing() bool { return d == SouthWest || d == SouthEast }

// Offset is a position in odd-r offset coordinates: X is the column, Y the
// row, and odd rows are displaced half a tile to the right. This is the
// coordinate system used by the gate-level layouts.
type Offset struct {
	X, Y int
}

// String formats the coordinate as "(x,y)".
func (o Offset) String() string { return fmt.Sprintf("(%d,%d)", o.X, o.Y) }

// Cube is a position in cube coordinates with the invariant Q+R+S == 0.
// Cube coordinates make distances and rotations trivial.
type Cube struct {
	Q, R, S int
}

// Axial is a position in axial coordinates (cube coordinates with S dropped).
type Axial struct {
	Q, R int
}

// ToCube converts odd-r offset coordinates to cube coordinates.
func (o Offset) ToCube() Cube {
	q := o.X - (o.Y-(o.Y&1))/2
	r := o.Y
	return Cube{Q: q, R: r, S: -q - r}
}

// ToAxial converts odd-r offset coordinates to axial coordinates.
func (o Offset) ToAxial() Axial {
	c := o.ToCube()
	return Axial{Q: c.Q, R: c.R}
}

// ToOffset converts cube coordinates to odd-r offset coordinates.
func (c Cube) ToOffset() Offset {
	x := c.Q + (c.R-(c.R&1))/2
	return Offset{X: x, Y: c.R}
}

// ToCube converts axial coordinates to cube coordinates.
func (a Axial) ToCube() Cube { return Cube{Q: a.Q, R: a.R, S: -a.Q - a.R} }

// ToOffset converts axial coordinates to odd-r offset coordinates.
func (a Axial) ToOffset() Offset { return a.ToCube().ToOffset() }

// Valid reports whether the cube coordinate satisfies Q+R+S == 0.
func (c Cube) Valid() bool { return c.Q+c.R+c.S == 0 }

// Add returns the component-wise sum of two cube coordinates.
func (c Cube) Add(o Cube) Cube { return Cube{c.Q + o.Q, c.R + o.R, c.S + o.S} }

// Sub returns the component-wise difference of two cube coordinates.
func (c Cube) Sub(o Cube) Cube { return Cube{c.Q - o.Q, c.R - o.R, c.S - o.S} }

// Scale multiplies all components by k.
func (c Cube) Scale(k int) Cube { return Cube{c.Q * k, c.R * k, c.S * k} }

// cubeDirections maps Direction to the cube-coordinate unit step.
var cubeDirections = [numDirections]Cube{
	NorthWest: {0, -1, 1},
	NorthEast: {1, -1, 0},
	SouthWest: {-1, 1, 0},
	SouthEast: {0, 1, -1},
	West:      {-1, 0, 1},
	East:      {1, 0, -1},
}

// Step returns the cube coordinate one hexagon away in direction d.
func (c Cube) Step(d Direction) Cube { return c.Add(cubeDirections[d]) }

// Neighbor returns the odd-r offset coordinate of the neighbor in direction d.
func (o Offset) Neighbor(d Direction) Offset {
	odd := o.Y & 1
	switch d {
	case NorthWest:
		return Offset{o.X - 1 + odd, o.Y - 1}
	case NorthEast:
		return Offset{o.X + odd, o.Y - 1}
	case SouthWest:
		return Offset{o.X - 1 + odd, o.Y + 1}
	case SouthEast:
		return Offset{o.X + odd, o.Y + 1}
	case West:
		return Offset{o.X - 1, o.Y}
	case East:
		return Offset{o.X + 1, o.Y}
	default:
		return o
	}
}

// Neighbors returns all six neighbors in Directions order.
func (o Offset) Neighbors() [6]Offset {
	var n [6]Offset
	for i, d := range Directions {
		n[i] = o.Neighbor(d)
	}
	return n
}

// DirectionTo returns the direction from o to the adjacent coordinate to and
// true, or false if to is not adjacent to o.
func (o Offset) DirectionTo(to Offset) (Direction, bool) {
	for _, d := range Directions {
		if o.Neighbor(d) == to {
			return d, true
		}
	}
	return 0, false
}

// Adjacent reports whether a and b are neighboring hexagons.
func (o Offset) Adjacent(b Offset) bool {
	_, ok := o.DirectionTo(b)
	return ok
}

// abs returns the absolute value of x.
func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Distance returns the hexagonal (cube) distance between two cube coordinates.
func (c Cube) Distance(o Cube) int {
	d := c.Sub(o)
	return (abs(d.Q) + abs(d.R) + abs(d.S)) / 2
}

// Distance returns the hexagonal distance between two offset coordinates.
func (o Offset) Distance(b Offset) int { return o.ToCube().Distance(b.ToCube()) }

// Lerp linearly interpolates between two cube coordinates at parameter t and
// rounds to the nearest hexagon.
func Lerp(a, b Cube, t float64) Cube {
	fq := float64(a.Q) + (float64(b.Q)-float64(a.Q))*t
	fr := float64(a.R) + (float64(b.R)-float64(a.R))*t
	fs := float64(a.S) + (float64(b.S)-float64(a.S))*t
	return roundCube(fq, fr, fs)
}

// roundCube rounds fractional cube coordinates to the nearest valid hexagon.
func roundCube(fq, fr, fs float64) Cube {
	q := math.Round(fq)
	r := math.Round(fr)
	s := math.Round(fs)
	dq := math.Abs(q - fq)
	dr := math.Abs(r - fr)
	ds := math.Abs(s - fs)
	switch {
	case dq > dr && dq > ds:
		q = -r - s
	case dr > ds:
		r = -q - s
	default:
		s = -q - r
	}
	return Cube{int(q), int(r), int(s)}
}

// Line returns the hexagons on the straight line from a to b, inclusive.
func Line(a, b Cube) []Cube {
	n := a.Distance(b)
	if n == 0 {
		return []Cube{a}
	}
	line := make([]Cube, 0, n+1)
	for i := 0; i <= n; i++ {
		line = append(line, Lerp(a, b, float64(i)/float64(n)))
	}
	return line
}

// Ring returns the hexagons at exactly radius r around center (r ≥ 1).
// For r == 0 it returns just the center.
func Ring(center Cube, r int) []Cube {
	if r <= 0 {
		return []Cube{center}
	}
	ring := make([]Cube, 0, 6*r)
	// Start r steps to the south-west, then walk the six edges.
	c := center.Add(cubeDirections[SouthWest].Scale(r))
	walk := [6]Direction{East, NorthEast, NorthWest, West, SouthWest, SouthEast}
	for _, d := range walk {
		for i := 0; i < r; i++ {
			ring = append(ring, c)
			c = c.Step(d)
		}
	}
	return ring
}

// Spiral returns all hexagons within radius r of center, center first,
// ordered ring by ring.
func Spiral(center Cube, r int) []Cube {
	out := []Cube{center}
	for k := 1; k <= r; k++ {
		out = append(out, Ring(center, k)...)
	}
	return out
}

// Rotate60CW rotates the cube vector 60 degrees clockwise about the origin.
func (c Cube) Rotate60CW() Cube { return Cube{-c.R, -c.S, -c.Q} }

// Rotate60CCW rotates the cube vector 60 degrees counter-clockwise about the
// origin.
func (c Cube) Rotate60CCW() Cube { return Cube{-c.S, -c.Q, -c.R} }

// ReflectQ mirrors the cube vector across the Q axis (swap R and S). On the
// pointy-top layout this is the left-right mirror used to flip gate tiles.
func (c Cube) ReflectQ() Cube { return Cube{c.Q, c.S, c.R} }

// Center returns the Euclidean center of the hexagon in units of the hexagon
// size (circumradius 1): pointy-top layout, odd-r offset convention.
func (o Offset) Center() (x, y float64) {
	x = math.Sqrt(3) * (float64(o.X) + 0.5*float64(o.Y&1))
	y = 1.5 * float64(o.Y)
	return x, y
}

// Bounds describes a rectangular region of offset coordinates, inclusive of
// Min and exclusive of Max in both axes.
type Bounds struct {
	MinX, MinY int
	MaxX, MaxY int // exclusive
}

// NewBounds returns bounds covering a w×h grid anchored at the origin.
func NewBounds(w, h int) Bounds { return Bounds{0, 0, w, h} }

// Contains reports whether the coordinate lies within the bounds.
func (b Bounds) Contains(o Offset) bool {
	return o.X >= b.MinX && o.X < b.MaxX && o.Y >= b.MinY && o.Y < b.MaxY
}

// Width returns the horizontal extent in tiles.
func (b Bounds) Width() int { return b.MaxX - b.MinX }

// Height returns the vertical extent in tiles.
func (b Bounds) Height() int { return b.MaxY - b.MinY }

// Area returns the number of tiles covered.
func (b Bounds) Area() int { return b.Width() * b.Height() }

// All returns every coordinate inside the bounds in row-major order.
func (b Bounds) All() []Offset {
	out := make([]Offset, 0, b.Area())
	for y := b.MinY; y < b.MaxY; y++ {
		for x := b.MinX; x < b.MaxX; x++ {
			out = append(out, Offset{x, y})
		}
	}
	return out
}
