package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestSingleflightDedup: N concurrent callers of the same key trigger
// exactly one execution, and all receive the identical value.
func TestSingleflightDedup(t *testing.T) {
	var g Group
	var execs atomic.Int64
	release := make(chan struct{})

	const n = 32
	var wg sync.WaitGroup
	vals := make([]any, n)
	shared := make([]bool, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			vals[i], shared[i], errs[i] = g.Do(context.Background(), "k", func(context.Context) (any, error) {
				execs.Add(1)
				<-release // hold every caller in flight so all must coalesce
				return "result", nil
			})
		}(i)
	}
	// Hold the execution open until every caller has joined it, so no
	// goroutine can arrive after completion and start a second one.
	waitWaiters(t, &g, "k", n)
	close(release)
	wg.Wait()

	if got := execs.Load(); got != 1 {
		t.Fatalf("%d executions for %d concurrent callers; want 1", got, n)
	}
	sharedCount := 0
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if vals[i] != "result" {
			t.Fatalf("caller %d got %v", i, vals[i])
		}
		if shared[i] {
			sharedCount++
		}
	}
	if sharedCount != n-1 {
		t.Fatalf("%d callers reported shared; want %d (everyone but the starter)", sharedCount, n-1)
	}
}

// TestSingleflightSequential: after an execution completes, the next call
// runs fresh instead of reusing the stale result.
func TestSingleflightSequential(t *testing.T) {
	var g Group
	for i := 0; i < 3; i++ {
		v, shared, err := g.Do(context.Background(), "k", func(context.Context) (any, error) {
			return i, nil
		})
		if err != nil || shared || v != i {
			t.Fatalf("call %d: v=%v shared=%v err=%v", i, v, shared, err)
		}
	}
}

// TestSingleflightLeaderCancelHandsOff: the caller that started the
// execution cancels and leaves, but the execution keeps running and the
// remaining waiter still gets the result.
func TestSingleflightLeaderCancelHandsOff(t *testing.T) {
	var g Group
	release := make(chan struct{})
	var execs atomic.Int64

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderDone := make(chan error, 1)
	go func() {
		_, _, err := g.Do(leaderCtx, "k", func(ctx context.Context) (any, error) {
			execs.Add(1)
			select {
			case <-release:
				return "ok", nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		})
		leaderDone <- err
	}()
	waitInFlight(t, &g, "k")

	followerDone := make(chan struct{})
	var followerVal any
	var followerErr error
	go func() {
		defer close(followerDone)
		followerVal, _, followerErr = g.Do(context.Background(), "k", func(context.Context) (any, error) {
			execs.Add(1)
			return "second execution", nil
		})
	}()
	// Cancel the leader only once the follower has joined the call.
	waitWaiters(t, &g, "k", 2)
	cancelLeader()
	if err := <-leaderDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled leader got %v; want context.Canceled", err)
	}

	close(release)
	<-followerDone
	if followerErr != nil {
		t.Fatalf("follower: %v", followerErr)
	}
	if followerVal != "ok" {
		t.Fatalf("follower got %v; want the original execution's result", followerVal)
	}
	if got := execs.Load(); got != 1 {
		t.Fatalf("%d executions; the leader's departure must not restart the work", got)
	}
}

// TestSingleflightAllCancelAbandons: when every waiter leaves, the work
// context is canceled and the key is unpublished so the next caller
// starts fresh.
func TestSingleflightAllCancelAbandons(t *testing.T) {
	var g Group
	started := make(chan struct{})
	abandoned := make(chan struct{})

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := g.Do(ctx, "k", func(runCtx context.Context) (any, error) {
			close(started)
			<-runCtx.Done() // must fire once the last waiter leaves
			close(abandoned)
			return nil, runCtx.Err()
		})
		done <- err
	}()
	<-started
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v; want context.Canceled", err)
	}
	select {
	case <-abandoned:
	case <-time.After(2 * time.Second):
		t.Fatal("work context never canceled after the last waiter left")
	}
	// The key must be free for a fresh execution immediately.
	v, _, err := g.Do(context.Background(), "k", func(context.Context) (any, error) {
		return "fresh", nil
	})
	if err != nil || v != "fresh" {
		t.Fatalf("fresh call after abandon: v=%v err=%v", v, err)
	}
}

// TestSingleflightPreservesDeadline: the detached work context keeps the
// starter's deadline — it is a resource bound, not caller interest.
func TestSingleflightPreservesDeadline(t *testing.T) {
	var g Group
	deadline := time.Now().Add(time.Hour)
	ctx, cancel := context.WithDeadline(context.Background(), deadline)
	defer cancel()
	_, _, err := g.Do(ctx, "k", func(runCtx context.Context) (any, error) {
		d, ok := runCtx.Deadline()
		if !ok {
			return nil, fmt.Errorf("work context lost the deadline")
		}
		if !d.Equal(deadline) {
			return nil, fmt.Errorf("deadline %v; want %v", d, deadline)
		}
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSingleflightDistinctKeys: different keys never coalesce.
func TestSingleflightDistinctKeys(t *testing.T) {
	var g Group
	var execs atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, _, err := g.Do(context.Background(), fmt.Sprintf("k%d", i), func(context.Context) (any, error) {
				execs.Add(1)
				return i, nil
			})
			if err != nil || v != i {
				t.Errorf("key k%d: v=%v err=%v", i, v, err)
			}
		}(i)
	}
	wg.Wait()
	if got := execs.Load(); got != 8 {
		t.Fatalf("%d executions; want 8", got)
	}
}

func waitInFlight(t *testing.T, g *Group, key string) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !g.InFlight(key) {
		if time.Now().After(deadline) {
			t.Fatal("execution never started")
		}
		time.Sleep(time.Millisecond)
	}
}

// waitWaiters blocks until n callers are participating in key's call.
func waitWaiters(t *testing.T, g *Group, key string, n int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		g.mu.Lock()
		c := g.m[key]
		w := 0
		if c != nil {
			w = c.waiters
		}
		g.mu.Unlock()
		if w == n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d callers joined", w, n)
		}
		time.Sleep(time.Millisecond)
	}
}
