// Package cluster turns bestagond into a multi-replica service: a static
// peer registry with periodic health probes, consistent hashing over the
// canonical content-addressed cache keys (internal/cache) to assign each
// key an owner replica, an HTTP peer-cache protocol for fetching and
// pushing cache entries between replicas, and a single-flight group that
// coalesces concurrent identical cold solves onto one execution.
//
// Ownership is deterministic across processes: the ring hashes member
// addresses and keys with SHA-256, so every replica that agrees on the
// live member set agrees on who owns every key — no coordination service
// required. Liveness is the only dynamic input: when a probe declares a
// peer dead, the ring is rebuilt without it and that peer's keys remap to
// their ring successors (and only those keys move).
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// DefaultReplicas is the virtual-node count per member. 128 points per
// member keeps the expected per-member load within a few percent of fair
// share for fleets of 2-8 replicas.
const DefaultReplicas = 128

// Ring is an immutable consistent-hash ring over a member set. Build a
// new ring when membership changes; lookups are lock-free.
type Ring struct {
	points  []point // sorted by hash
	members []string
}

type point struct {
	hash   uint64
	member string
}

// ringHash is the ring's positioning hash: the first 8 bytes of the
// SHA-256 of s, big-endian. SHA-256 (not a seeded runtime hash) makes
// ownership identical across processes and restarts — the same property
// the cache keys themselves rely on.
func ringHash(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// NewRing builds a ring with the given virtual-node count per member
// (<= 0 means DefaultReplicas). Member order does not matter; duplicate
// members are collapsed.
func NewRing(members []string, replicas int) *Ring {
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	seen := make(map[string]bool, len(members))
	r := &Ring{}
	for _, m := range members {
		if m == "" || seen[m] {
			continue
		}
		seen[m] = true
		r.members = append(r.members, m)
		for v := 0; v < replicas; v++ {
			r.points = append(r.points, point{
				hash:   ringHash(fmt.Sprintf("%s#%d", m, v)),
				member: m,
			})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		// Tie-break on member so equal hashes (astronomically rare) still
		// order deterministically across processes.
		return r.points[a].member < r.points[b].member
	})
	sort.Strings(r.members)
	return r
}

// Members returns the sorted member set.
func (r *Ring) Members() []string { return r.members }

// Size returns the number of members.
func (r *Ring) Size() int { return len(r.members) }

// Owner returns the member owning key: the first virtual node at or
// clockwise after the key's hash. An empty ring owns nothing ("").
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	return r.points[r.search(key)].member
}

// Owners returns up to n distinct members in ring order starting at the
// key's owner. Owners(key, 2)[1] is the member that inherits the key if
// the owner leaves — the natural place to look for an entry after a
// failover, and where a recovered owner can re-fetch entries solved while
// it was down.
func (r *Ring) Owners(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.members) {
		n = len(r.members)
	}
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i := r.search(key); len(out) < n; i = (i + 1) % len(r.points) {
		m := r.points[i].member
		if !seen[m] {
			seen[m] = true
			out = append(out, m)
		}
	}
	return out
}

// search returns the index of the first point at or clockwise after the
// key's hash (wrapping to 0 past the end).
func (r *Ring) search(key string) int {
	h := ringHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}
