package cluster

import (
	"context"

	"repro/internal/cache"
)

// PeerLayer adapts the peer-cache protocol to cache.Layer, so the service
// can stack it under memory and disk and wrap it in the same resilient
// breaker that guards the disk.
//
// Get consults up to two ring owners for the key (the owner, then its
// successor — the member that covered the key while the owner was down),
// skipping this replica itself. A clean miss on one owner falls through to
// the next; a transport error is returned so the breaker above sees it.
// Put pushes the entry to the first live owner that is not this replica;
// when this replica owns the key, Put is a no-op (the local layers already
// hold it, and peers will fetch it from here on demand).
type PeerLayer struct {
	Node *Node
}

var _ cache.Layer = (*PeerLayer)(nil)

// NewPeerLayer wraps a node.
func NewPeerLayer(n *Node) *PeerLayer { return &PeerLayer{Node: n} }

// Get fetches key from its owner replica(s). The caller's context carries
// the request id across the wire; each owner attempt is still bounded by
// the node's PeerTimeout on top of any caller deadline.
func (p *PeerLayer) Get(ctx context.Context, key cache.Key) ([]byte, bool, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	n := p.Node
	owners := n.Owners(string(key), 2)
	var firstErr error
	for _, o := range owners {
		if o == n.Self() || !n.Alive(o) {
			continue
		}
		opCtx, cancel := context.WithTimeout(ctx, n.cfg.PeerTimeout)
		b, ok, err := n.CacheGet(opCtx, o, key)
		cancel()
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if ok {
			return b, true, nil
		}
	}
	return nil, false, firstErr
}

// Put pushes key's bytes to its owner replica (no-op when self-owned).
func (p *PeerLayer) Put(ctx context.Context, key cache.Key, val []byte) error {
	if ctx == nil {
		ctx = context.Background()
	}
	n := p.Node
	owners := n.Owners(string(key), 2)
	for _, o := range owners {
		if o == n.Self() {
			return nil // we own it; peers fetch from us
		}
		if !n.Alive(o) {
			continue
		}
		opCtx, cancel := context.WithTimeout(ctx, n.cfg.PeerTimeout)
		err := n.CachePut(opCtx, o, key, val)
		cancel()
		return err
	}
	return nil
}
