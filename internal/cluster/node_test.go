package cluster

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cache"
)

// fakePeer is an httptest stand-in for a replica: togglable health and an
// in-memory /internal/cache store that enforces the shared secret.
type fakePeer struct {
	srv     *httptest.Server
	healthy atomic.Bool
	secret  string
	store   map[string][]byte
}

func newFakePeer(t *testing.T, secret string) *fakePeer {
	t.Helper()
	p := &fakePeer{secret: secret, store: map[string][]byte{}}
	p.healthy.Store(true)
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		if !p.healthy.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("/internal/cache/", func(w http.ResponseWriter, r *http.Request) {
		if !AuthorizeInternal(r, p.secret) {
			w.WriteHeader(http.StatusForbidden)
			return
		}
		key := strings.TrimPrefix(r.URL.Path, "/internal/cache/")
		switch r.Method {
		case http.MethodGet:
			if b, ok := p.store[key]; ok {
				w.Write(b)
				return
			}
			w.WriteHeader(http.StatusNotFound)
		case http.MethodPut:
			b := make([]byte, r.ContentLength)
			r.Body.Read(b)
			p.store[key] = b
			w.WriteHeader(http.StatusNoContent)
		}
	})
	p.srv = httptest.NewServer(mux)
	t.Cleanup(p.srv.Close)
	return p
}

func (p *fakePeer) addr() string { return strings.TrimPrefix(p.srv.URL, "http://") }

func TestNodeProbeLiveness(t *testing.T) {
	peer := newFakePeer(t, "")
	n, err := NewNode(Config{
		Self:          "127.0.0.1:1", // never dialed: only the peer is probed
		Peers:         []string{peer.addr()},
		ProbeInterval: 20 * time.Millisecond,
		ProbeTimeout:  200 * time.Millisecond,
		FailThreshold: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	n.Start()
	defer n.Stop()

	if !n.Alive(peer.addr()) {
		t.Fatal("peer must be presumed alive at startup")
	}

	// Down: after FailThreshold consecutive probe failures the peer is
	// dead and the ring excludes it.
	peer.healthy.Store(false)
	waitFor(t, time.Second, func() bool { return !n.Alive(peer.addr()) })
	if got := n.Status().RingMembers; got != 1 {
		t.Fatalf("ring members %d after peer death; want 1", got)
	}
	if owner, self := n.Owner("sim:00"); !self || owner != "127.0.0.1:1" {
		t.Fatalf("sole survivor must own every key; got %s self=%v", owner, self)
	}

	// Up: one successful probe resurrects it.
	peer.healthy.Store(true)
	waitFor(t, time.Second, func() bool { return n.Alive(peer.addr()) })
	if got := n.Status().RingMembers; got != 2 {
		t.Fatalf("ring members %d after recovery; want 2", got)
	}
}

func TestNodeDrainingPeerCountsAsDown(t *testing.T) {
	peer := newFakePeer(t, "")
	peer.healthy.Store(false) // 503: draining, not dead — but no new work
	n, err := NewNode(Config{
		Self:          "127.0.0.1:1",
		Peers:         []string{peer.addr()},
		ProbeInterval: 20 * time.Millisecond,
		FailThreshold: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	n.Start()
	defer n.Stop()
	waitFor(t, time.Second, func() bool { return !n.Alive(peer.addr()) })
}

func TestNodeCacheProtocol(t *testing.T) {
	const secret = "s3cret"
	peer := newFakePeer(t, secret)
	n, err := NewNode(Config{Self: "127.0.0.1:1", Peers: []string{peer.addr()}, Secret: secret})
	if err != nil {
		t.Fatal(err)
	}

	key := cache.Key("sim:" + strings.Repeat("ab", 32))
	ctx := context.Background()

	if _, ok, err := n.CacheGet(ctx, peer.addr(), key); err != nil || ok {
		t.Fatalf("miss: ok=%v err=%v", ok, err)
	}
	if err := n.CachePut(ctx, peer.addr(), key, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	b, ok, err := n.CacheGet(ctx, peer.addr(), key)
	if err != nil || !ok || string(b) != "payload" {
		t.Fatalf("roundtrip: %q ok=%v err=%v", b, ok, err)
	}
}

func TestNodeCacheSecretRejected(t *testing.T) {
	peer := newFakePeer(t, "right")
	n, err := NewNode(Config{Self: "127.0.0.1:1", Peers: []string{peer.addr()}, Secret: "wrong"})
	if err != nil {
		t.Fatal(err)
	}
	key := cache.Key("sim:" + strings.Repeat("cd", 32))
	if err := n.CachePut(context.Background(), peer.addr(), key, []byte("x")); err == nil {
		t.Fatal("put with wrong secret must fail")
	}
	if _, _, err := n.CacheGet(context.Background(), peer.addr(), key); err == nil {
		t.Fatal("get with wrong secret must error, not miss")
	}
}

func TestAuthorizeInternal(t *testing.T) {
	mk := func(remote, secret string) *http.Request {
		r := httptest.NewRequest(http.MethodGet, "/internal/cache/x", nil)
		r.RemoteAddr = remote
		if secret != "" {
			r.Header.Set(SecretHeader, secret)
		}
		return r
	}
	cases := []struct {
		name   string
		req    *http.Request
		secret string
		want   bool
	}{
		{"secret match", mk("10.0.0.9:1234", "s"), "s", true},
		{"secret mismatch", mk("10.0.0.9:1234", "wrong"), "s", false},
		{"secret missing", mk("127.0.0.1:1234", ""), "s", false},
		{"no secret loopback", mk("127.0.0.1:1234", ""), "", true},
		{"no secret v6 loopback", mk("[::1]:1234", ""), "", true},
		{"no secret remote", mk("10.0.0.9:1234", ""), "", false},
	}
	for _, c := range cases {
		if got := AuthorizeInternal(c.req, c.secret); got != c.want {
			t.Errorf("%s: got %v, want %v", c.name, got, c.want)
		}
	}
}

// TestPeerLayer exercises the cache.Layer adapter: owner-directed gets
// with dead-peer skipping, and puts that no-op when self is the owner.
func TestPeerLayer(t *testing.T) {
	peer := newFakePeer(t, "")
	n, err := NewNode(Config{Self: "127.0.0.1:1", Peers: []string{peer.addr()}})
	if err != nil {
		t.Fatal(err)
	}
	layer := NewPeerLayer(n)

	// Probe every tag prefix until we find keys owned by each side.
	var peerKey, selfKey cache.Key
	for i := 0; peerKey == "" || selfKey == ""; i++ {
		k := cache.Key(keyWithSuffix(i))
		if owner, self := n.Owner(string(k)); self && selfKey == "" {
			selfKey = k
		} else if !self && owner == peer.addr() && peerKey == "" {
			peerKey = k
		}
	}

	// A peer-owned key roundtrips through the peer's store.
	if err := layer.Put(context.Background(), peerKey, []byte("v")); err != nil {
		t.Fatal(err)
	}
	if b, ok, err := layer.Get(context.Background(), peerKey); err != nil || !ok || string(b) != "v" {
		t.Fatalf("peer-owned get: %q ok=%v err=%v", b, ok, err)
	}

	// A self-owned key is a local no-op: the regular cache tiers hold it.
	if err := layer.Put(context.Background(), selfKey, []byte("v")); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := layer.Get(context.Background(), selfKey); err != nil || ok {
		t.Fatalf("self-owned get must miss cleanly: ok=%v err=%v", ok, err)
	}

	// With the sole peer dead, gets degrade to clean misses (no owner to
	// ask) instead of errors.
	n.mu.Lock()
	n.peers[0].alive = false
	n.rebuildLocked()
	n.mu.Unlock()
	if _, ok, err := layer.Get(context.Background(), peerKey); err != nil || ok {
		t.Fatalf("dead-fleet get: ok=%v err=%v; want clean miss", ok, err)
	}
}

func keyWithSuffix(i int) string {
	const hex = "0123456789abcdef"
	b := []byte(strings.Repeat("0", 64))
	for j := 0; j < 8 && i > 0; j++ {
		b[63-j] = hex[i&0xf]
		i >>= 4
	}
	return "sim:" + string(b)
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
