package cluster

import (
	"fmt"
	"testing"
)

func ringMembers(n int) []string {
	m := make([]string, n)
	for i := range m {
		m[i] = fmt.Sprintf("10.0.0.%d:8711", i+1)
	}
	return m
}

func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("sim:%064x", i)
	}
	return keys
}

// TestRingDistribution checks load balance: with 128 virtual nodes per
// member, every member's share of a large key set must be within a
// factor of two of fair share for fleets of 2-8 replicas.
func TestRingDistribution(t *testing.T) {
	keys := ringKeys(10000)
	for n := 2; n <= 8; n++ {
		r := NewRing(ringMembers(n), 0)
		counts := map[string]int{}
		for _, k := range keys {
			counts[r.Owner(k)]++
		}
		if len(counts) != n {
			t.Fatalf("n=%d: only %d members own keys", n, len(counts))
		}
		fair := len(keys) / n
		for m, c := range counts {
			if c < fair/2 || c > fair*2 {
				t.Errorf("n=%d: member %s owns %d keys, fair share %d", n, m, c, fair)
			}
		}
	}
}

// TestRingMinimalRemapping checks the consistent-hashing contract: when a
// member joins or leaves, only the keys that must move do. A leave moves
// exactly the departed member's keys; a join steals roughly 1/(n+1) of
// the keyspace and never reshuffles keys between surviving members.
func TestRingMinimalRemapping(t *testing.T) {
	keys := ringKeys(10000)
	members := ringMembers(4)
	before := NewRing(members, 0)

	t.Run("leave", func(t *testing.T) {
		gone := members[1]
		after := NewRing(append(append([]string{}, members[:1]...), members[2:]...), 0)
		for _, k := range keys {
			was, is := before.Owner(k), after.Owner(k)
			if was != gone && was != is {
				t.Fatalf("key %s moved %s -> %s though neither is the departed member", k, was, is)
			}
			if was == gone && is == gone {
				t.Fatalf("key %s still owned by departed member", k)
			}
		}
	})

	t.Run("join", func(t *testing.T) {
		joined := "10.0.0.99:8711"
		after := NewRing(append(append([]string{}, members...), joined), 0)
		moved := 0
		for _, k := range keys {
			was, is := before.Owner(k), after.Owner(k)
			if was != is {
				if is != joined {
					t.Fatalf("key %s moved %s -> %s; only the joiner may gain keys", k, was, is)
				}
				moved++
			}
		}
		fair := len(keys) / 5
		if moved < fair/2 || moved > fair*2 {
			t.Errorf("join moved %d keys; want about fair share %d", moved, fair)
		}
	})
}

// TestRingGoldenOwnership pins ownership of fixed keys to fixed members:
// SHA-256 positioning must be stable across processes, platforms, and
// releases, because every replica computes ownership independently.
func TestRingGoldenOwnership(t *testing.T) {
	r := NewRing([]string{"a:1", "b:2", "c:3"}, 0)
	golden := map[string]string{
		"sim:0000000000000000000000000000000000000000000000000000000000000000":  "b:2",
		"sim:00000000000000000000000000000000000000000000000000000000000000ff":  "c:3",
		"flow:4242424242424242424242424242424242424242424242424242424242424242": "c:3",
		"gate:deadbeefdeadbeefdeadbeefdeadbeefdeadbeefdeadbeefdeadbeefdeadbeef": "b:2",
		"xag:0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef":  "b:2",
	}
	for k, want := range golden {
		if got := r.Owner(k); got != want {
			t.Errorf("Owner(%s) = %s, want %s (ownership hash changed: peers on "+
				"different builds would disagree about key placement)", k, got, want)
		}
	}
}

// TestRingOwners checks the successor list: distinct members, owner
// first, bounded by the member count.
func TestRingOwners(t *testing.T) {
	members := ringMembers(3)
	r := NewRing(members, 0)
	for _, k := range ringKeys(100) {
		owners := r.Owners(k, 2)
		if len(owners) != 2 {
			t.Fatalf("Owners(%s, 2) = %v", k, owners)
		}
		if owners[0] != r.Owner(k) {
			t.Fatalf("Owners(%s)[0] = %s != Owner %s", k, owners[0], r.Owner(k))
		}
		if owners[0] == owners[1] {
			t.Fatalf("Owners(%s) repeats %s", k, owners[0])
		}
	}
	if got := r.Owners("sim:00", 10); len(got) != len(members) {
		t.Fatalf("Owners capped at %d, want member count %d", len(got), len(members))
	}
	if got := NewRing(nil, 0).Owners("sim:00", 2); got != nil {
		t.Fatalf("empty ring Owners = %v, want nil", got)
	}
}

// TestRingDeterministicOrder checks that member order at construction
// does not affect ownership.
func TestRingDeterministicOrder(t *testing.T) {
	a := NewRing([]string{"x:1", "y:2", "z:3"}, 0)
	b := NewRing([]string{"z:3", "x:1", "y:2", "x:1"}, 0)
	for _, k := range ringKeys(500) {
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("ownership depends on construction order for %s", k)
		}
	}
	if a.Size() != 3 || b.Size() != 3 {
		t.Fatalf("sizes %d, %d; want 3 (duplicates collapsed)", a.Size(), b.Size())
	}
}
