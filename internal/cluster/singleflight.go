package cluster

import (
	"context"
	"sync"
)

// Group coalesces concurrent calls with the same key onto one execution.
//
// Unlike the classic singleflight, the function runs in its own goroutine
// under a context owned by the group, not the first caller's context: a
// canceled caller — including the one that started the work — simply
// leaves, and the execution keeps running for the remaining waiters. The
// work context is canceled only when the last participant has left, so
// nobody pays for an answer nobody wants anymore.
type Group struct {
	mu sync.Mutex
	m  map[string]*call
}

type call struct {
	done    chan struct{} // closed when fn returns
	cancel  context.CancelFunc
	waiters int // participants still waiting; guarded by Group.mu

	val any
	err error
}

// Result carries a completed call's outcome.
type Result struct {
	Val    any
	Err    error
	Shared bool // true when this caller joined an execution started by another
}

// Do executes fn for key, coalescing with any in-flight execution of the
// same key. It returns fn's result, whether the result was shared with
// other callers, and an error. If ctx is canceled while waiting, Do
// returns ctx.Err() immediately; the execution continues for any other
// waiters and is abandoned (its context canceled) only when the last
// waiter leaves.
//
// The run inherits the deadline of the caller that started it, and a
// context deadline cannot be extended afterwards — so a joiner with a
// longer budget shares the starter's (shorter) one and may receive
// DeadlineExceeded while its own context is still live. A joiner that
// observes shared == true, a DeadlineExceeded error, and a live ctx
// should call Do again to run under its own budget (the service layer
// does exactly this; see runCoalesced).
//
// fn must not panic-propagate: it runs on a group-owned goroutine, so a
// panic there would crash the process. Wrap recovery inside fn.
func (g *Group) Do(ctx context.Context, key string, fn func(ctx context.Context) (any, error)) (any, bool, error) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*call)
	}
	c, joined := g.m[key]
	if !joined {
		// The run detaches from the starter's cancellation (so a departing
		// starter doesn't fail the others) but keeps its deadline: the
		// deadline is a resource bound that downstream degradation ladders
		// read, while cancellation is just one caller losing interest.
		parent := context.WithoutCancel(ctx)
		var runCtx context.Context
		var cancel context.CancelFunc
		if d, ok := ctx.Deadline(); ok {
			runCtx, cancel = context.WithDeadline(parent, d)
		} else {
			runCtx, cancel = context.WithCancel(parent)
		}
		c = &call{done: make(chan struct{}), cancel: cancel}
		g.m[key] = c
		go func() {
			val, err := fn(runCtx)
			g.mu.Lock()
			// Only this call's entry may be deleted: a late joiner after
			// completion would have created a new entry under the same key.
			if g.m[key] == c {
				delete(g.m, key)
			}
			c.val, c.err = val, err
			g.mu.Unlock()
			close(c.done)
			cancel()
		}()
	}
	c.waiters++
	g.mu.Unlock()

	select {
	case <-c.done:
		g.mu.Lock()
		c.waiters--
		g.mu.Unlock()
		return c.val, joined, c.err
	case <-ctx.Done():
		g.mu.Lock()
		c.waiters--
		last := c.waiters == 0
		if last {
			// Last participant gone: abandon the execution and unpublish the
			// key so a fresh caller starts a fresh execution instead of
			// joining a canceled one.
			if g.m[key] == c {
				delete(g.m, key)
			}
		}
		g.mu.Unlock()
		if last {
			c.cancel()
		}
		return nil, joined, ctx.Err()
	}
}

// InFlight reports whether an execution for key is currently running.
func (g *Group) InFlight(key string) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	_, ok := g.m[key]
	return ok
}
