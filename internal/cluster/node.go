package cluster

import (
	"context"
	"crypto/rand"
	"crypto/subtle"
	"encoding/hex"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/cache"
	"repro/internal/obs"
	"repro/internal/obs/obslog"
)

// Protocol headers. SecretHeader authenticates peer-cache and internal
// traffic; ForwardedHeader marks a request already forwarded once so the
// receiver never re-forwards (no routing loops even when ring views
// disagree during a membership change). RequestIDHeader carries the
// originating request id on every intra-fleet hop — forwards, peer-cache
// operations, probes — so one id names the whole distributed execution;
// ParentSpanHeader names the span on the forwarding replica that the
// remote execution nests under, and HopHeader counts fleet hops.
const (
	SecretHeader     = "X-Cluster-Secret"
	ForwardedHeader  = "X-Cluster-Forwarded"
	RequestIDHeader  = "X-Request-Id"
	ParentSpanHeader = "X-Parent-Span"
	HopHeader        = "X-Cluster-Hop"
)

// NewHopID mints a short random id for intra-fleet operations that have
// no originating HTTP request — liveness probes, background pushes — so
// their log lines are still correlatable end to end.
func NewHopID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "hop-unknown"
	}
	return hex.EncodeToString(b[:])
}

// Config describes this replica's place in the fleet.
//
// Transport security: all intra-fleet traffic — probes, peer-cache
// operations, forwarded requests — is plaintext HTTP. The shared secret
// authenticates peers; it does not encrypt anything, and it crosses the
// wire in a header on every internal request. Fleets must therefore run
// on a trusted network segment (one host, or a private LAN/VPC with the
// internal ports firewalled); do not span untrusted networks without an
// encrypting tunnel (VPN, mesh sidecar) in between.
type Config struct {
	// Self is this replica's advertised address (host:port) — the address
	// peers use to reach it. Required.
	Self string
	// Peers are the other replicas' advertised addresses. The member set
	// is static (Self + Peers); only liveness is dynamic.
	Peers []string
	// Secret guards the peer-cache protocol. When set, every internal
	// request must carry it in SecretHeader; when empty, peers must be
	// loopback (single-host development fleets).
	Secret string
	// Replicas is the virtual-node count per member (default 128).
	Replicas int
	// ProbeInterval is the health-probe period (default 1s).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe round trip (default 500ms).
	ProbeTimeout time.Duration
	// PeerTimeout bounds one peer-cache operation (default 500ms).
	PeerTimeout time.Duration
	// FailThreshold is how many consecutive probe failures mark a peer
	// dead (default 2). One success marks it alive again.
	FailThreshold int
	// Tracer receives cluster metrics (nil-safe).
	Tracer *obs.Tracer
	// Logger receives membership-transition logs (nil disables).
	Logger *obslog.Logger
}

// MemberStatus is a serializable liveness snapshot of one member.
type MemberStatus struct {
	Addr         string `json:"addr"`
	Self         bool   `json:"self,omitempty"`
	Alive        bool   `json:"alive"`
	ConsecFails  int    `json:"consecutive_failures,omitempty"`
	LastProbeAgo string `json:"last_probe_ago,omitempty"`
}

// Snapshot is the cluster section of /healthz.
type Snapshot struct {
	Self        string         `json:"self"`
	RingMembers int            `json:"ring_members"`
	Members     []MemberStatus `json:"members"`
}

type member struct {
	addr        string
	alive       bool
	consecFails int
	lastProbe   time.Time
}

// Node is one replica's view of the fleet: the static member set with
// probed liveness, the live consistent-hash ring derived from it, and the
// HTTP client used for probes, peer-cache operations, and forwarding.
type Node struct {
	cfg    Config
	client *http.Client

	mu      sync.RWMutex
	self    *member
	peers   []*member // excludes self
	ring    *Ring
	stopped bool

	stop chan struct{}
	wg   sync.WaitGroup

	log      *obslog.Logger
	tr       *obs.Tracer
	probeErr *obs.Counter
}

// NewNode validates the config and builds the node with every configured
// peer initially presumed alive (the first probe round corrects this
// within ProbeInterval; presuming alive avoids a cold start where every
// replica solves everything locally until probes converge).
func NewNode(cfg Config) (*Node, error) {
	cfg.Self = normalizeAddr(cfg.Self)
	if cfg.Self == "" {
		return nil, fmt.Errorf("cluster: self address is required")
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = DefaultReplicas
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = time.Second
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = 500 * time.Millisecond
	}
	if cfg.PeerTimeout <= 0 {
		cfg.PeerTimeout = 500 * time.Millisecond
	}
	if cfg.FailThreshold <= 0 {
		cfg.FailThreshold = 2
	}
	n := &Node{
		cfg: cfg,
		client: &http.Client{
			Transport: &http.Transport{
				MaxIdleConnsPerHost: 16,
				IdleConnTimeout:     30 * time.Second,
			},
		},
		self:     &member{addr: cfg.Self, alive: true},
		stop:     make(chan struct{}),
		log:      cfg.Logger,
		tr:       cfg.Tracer,
		probeErr: cfg.Tracer.Counter("cluster/probe_failures_total"),
	}
	seen := map[string]bool{cfg.Self: true}
	for _, p := range cfg.Peers {
		p = normalizeAddr(p)
		if p == "" || seen[p] {
			continue
		}
		seen[p] = true
		n.peers = append(n.peers, &member{addr: p, alive: true})
	}
	n.rebuildLocked()
	return n, nil
}

// normalizeAddr strips an http:// prefix and surrounding space so peer
// lists can be written either way.
func normalizeAddr(a string) string {
	a = strings.TrimSpace(a)
	a = strings.TrimPrefix(a, "http://")
	return strings.TrimSuffix(a, "/")
}

// Self returns this replica's advertised address.
func (n *Node) Self() string { return n.cfg.Self }

// Secret returns the shared cluster secret ("" when unset).
func (n *Node) Secret() string { return n.cfg.Secret }

// Authorize reports whether an incoming internal request may proceed:
// the shared secret matches, or — when no secret is configured — the
// remote is loopback.
func (n *Node) Authorize(r *http.Request) bool {
	return AuthorizeInternal(r, n.cfg.Secret)
}

// AuthorizeInternal is the guard behind /internal/cache: with a secret
// configured the request must present it (constant-time compare); without
// one, only loopback peers are trusted.
func AuthorizeInternal(r *http.Request, secret string) bool {
	if secret != "" {
		got := r.Header.Get(SecretHeader)
		return len(got) == len(secret) &&
			subtle.ConstantTimeCompare([]byte(got), []byte(secret)) == 1
	}
	host := r.RemoteAddr
	if i := strings.LastIndexByte(host, ':'); i >= 0 {
		host = host[:i]
	}
	host = strings.Trim(host, "[]")
	return host == "127.0.0.1" || host == "::1" || host == "localhost"
}

// Start begins the background health-probe loop. Idempotent per node;
// pair with Stop.
func (n *Node) Start() {
	if len(n.peers) == 0 {
		return // single-member fleet: nothing to probe
	}
	n.wg.Add(1)
	go n.probeLoop()
}

// Stop terminates the probe loop and waits for it.
func (n *Node) Stop() {
	n.mu.Lock()
	if n.stopped {
		n.mu.Unlock()
		return
	}
	n.stopped = true
	n.mu.Unlock()
	close(n.stop)
	n.wg.Wait()
}

func (n *Node) probeLoop() {
	defer n.wg.Done()
	t := time.NewTicker(n.cfg.ProbeInterval)
	defer t.Stop()
	n.probeAll() // converge immediately at startup, not after one period
	for {
		select {
		case <-n.stop:
			return
		case <-t.C:
			n.probeAll()
		}
	}
}

// probeAll probes every peer once and rebuilds the ring if liveness
// changed. Probes run sequentially; fleets are small and the per-probe
// timeout bounds the round.
func (n *Node) probeAll() {
	changed := false
	for _, p := range n.peers {
		probeID := "probe-" + NewHopID()
		ok := n.probe(p.addr, probeID)
		n.mu.Lock()
		p.lastProbe = time.Now()
		if ok {
			p.consecFails = 0
			if !p.alive {
				p.alive = true
				changed = true
				n.log.Info("cluster_peer_up",
					obslog.F("peer", p.addr),
					obslog.F("probe_id", probeID))
			}
		} else {
			p.consecFails++
			n.probeErr.Inc()
			n.log.Debug("cluster_probe_failed",
				obslog.F("peer", p.addr),
				obslog.F("probe_id", probeID),
				obslog.F("consecutive_failures", p.consecFails))
			if p.alive && p.consecFails >= n.cfg.FailThreshold {
				p.alive = false
				changed = true
				n.log.Warn("cluster_peer_down",
					obslog.F("peer", p.addr),
					obslog.F("probe_id", probeID),
					obslog.F("consecutive_failures", p.consecFails))
			}
		}
		n.mu.Unlock()
	}
	if changed {
		n.mu.Lock()
		n.rebuildLocked()
		n.mu.Unlock()
	}
	n.publish()
}

// probe reports whether the peer answers /healthz with 200. A draining
// replica answers 503 and is treated as down — no new work should be
// routed to it. The probe id rides the request-id header so both ends
// log the same id for one probe round trip.
func (n *Node) probe(addr, probeID string) bool {
	ctx, cancel := context.WithTimeout(context.Background(), n.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+addr+"/healthz", nil)
	if err != nil {
		return false
	}
	req.Header.Set(RequestIDHeader, probeID)
	resp, err := n.client.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// rebuildLocked rebuilds the live ring from self plus alive peers.
// Caller holds n.mu.
func (n *Node) rebuildLocked() {
	members := []string{n.self.addr}
	for _, p := range n.peers {
		if p.alive {
			members = append(members, p.addr)
		}
	}
	n.ring = NewRing(members, n.cfg.Replicas)
}

// publish refreshes the per-peer liveness gauges.
func (n *Node) publish() {
	n.mu.RLock()
	defer n.mu.RUnlock()
	for _, p := range n.peers {
		v := 0.0
		if p.alive {
			v = 1.0
		}
		n.tr.Gauge(obs.Labeled("cluster/peer_up", "peer", p.addr)).Set(v)
	}
	n.tr.Gauge("cluster/ring_members").Set(float64(n.ring.Size()))
}

// Owner returns the live owner of key and whether it is this replica.
func (n *Node) Owner(key string) (addr string, self bool) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	o := n.ring.Owner(key)
	return o, o == n.self.addr
}

// Owners returns up to count distinct live members in ring order from the
// key's owner (see Ring.Owners).
func (n *Node) Owners(key string, count int) []string {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.ring.Owners(key, count)
}

// Alive reports the probed liveness of a member address (self is always
// alive; unknown addresses are dead).
func (n *Node) Alive(addr string) bool {
	if addr == n.cfg.Self {
		return true
	}
	n.mu.RLock()
	defer n.mu.RUnlock()
	for _, p := range n.peers {
		if p.addr == addr {
			return p.alive
		}
	}
	return false
}

// Client returns the shared intra-fleet HTTP client (probes, peer-cache
// operations, and request forwarding all pool connections through it).
func (n *Node) Client() *http.Client { return n.client }

// Status snapshots membership for /healthz.
func (n *Node) Status() Snapshot {
	n.mu.RLock()
	defer n.mu.RUnlock()
	s := Snapshot{Self: n.cfg.Self, RingMembers: n.ring.Size()}
	s.Members = append(s.Members, MemberStatus{Addr: n.self.addr, Self: true, Alive: true})
	for _, p := range n.peers {
		ms := MemberStatus{Addr: p.addr, Alive: p.alive, ConsecFails: p.consecFails}
		if !p.lastProbe.IsZero() {
			ms.LastProbeAgo = time.Since(p.lastProbe).Round(time.Millisecond).String()
		}
		s.Members = append(s.Members, ms)
	}
	return s
}

// ---- peer-cache protocol client ----

// peerOp tags the outcome of one peer-cache operation for metrics.
func (n *Node) countPeerOp(op, outcome string) {
	n.tr.Counter(obs.Labeled("cluster/peer_requests_total", "op", op, "outcome", outcome)).Inc()
}

// CacheGet fetches the raw cache entry for key from addr's
// /internal/cache endpoint. A 404 is a clean miss; transport failures and
// unexpected statuses are errors (the resilient layer above retries them
// and trips its breaker).
func (n *Node) CacheGet(ctx context.Context, addr string, key cache.Key) ([]byte, bool, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		"http://"+addr+"/internal/cache/"+string(key), nil)
	if err != nil {
		return nil, false, err
	}
	rid := n.setIdentity(ctx, req)
	resp, err := n.client.Do(req)
	if err != nil {
		n.peerOpFailed("get", addr, rid, err)
		return nil, false, fmt.Errorf("cluster: peer get %s: %w", addr, err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		b, err := io.ReadAll(io.LimitReader(resp.Body, maxPeerEntryBytes+1))
		if err != nil {
			n.peerOpFailed("get", addr, rid, err)
			return nil, false, fmt.Errorf("cluster: peer get %s: %w", addr, err)
		}
		if len(b) > maxPeerEntryBytes {
			n.peerOpFailed("get", addr, rid, fmt.Errorf("entry exceeds %d bytes", maxPeerEntryBytes))
			return nil, false, fmt.Errorf("cluster: peer get %s: entry exceeds %d bytes", addr, maxPeerEntryBytes)
		}
		n.countPeerOp("get", "hit")
		return b, true, nil
	case http.StatusNotFound:
		n.countPeerOp("get", "miss")
		return nil, false, nil
	default:
		n.peerOpFailed("get", addr, rid, fmt.Errorf("status %d", resp.StatusCode))
		return nil, false, fmt.Errorf("cluster: peer get %s: status %d", addr, resp.StatusCode)
	}
}

// maxPeerEntryBytes bounds one transferred cache entry (flow artifacts
// with embedded SQD files are the largest class; 8 MiB is far above any
// observed artifact).
const maxPeerEntryBytes = 8 << 20

// CachePut pushes a cache entry to addr.
func (n *Node) CachePut(ctx context.Context, addr string, key cache.Key, val []byte) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPut,
		"http://"+addr+"/internal/cache/"+string(key), strings.NewReader(string(val)))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	rid := n.setIdentity(ctx, req)
	resp, err := n.client.Do(req)
	if err != nil {
		n.peerOpFailed("put", addr, rid, err)
		return fmt.Errorf("cluster: peer put %s: %w", addr, err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK {
		n.peerOpFailed("put", addr, rid, fmt.Errorf("status %d", resp.StatusCode))
		return fmt.Errorf("cluster: peer put %s: status %d", addr, resp.StatusCode)
	}
	n.countPeerOp("put", "ok")
	return nil
}

// setIdentity stamps an outgoing internal request with the cluster secret
// and the originating request id (minted fresh when the context carries
// none, so every peer operation is correlatable). Returns the id used.
func (n *Node) setIdentity(ctx context.Context, req *http.Request) string {
	if n.cfg.Secret != "" {
		req.Header.Set(SecretHeader, n.cfg.Secret)
	}
	rid := obs.RequestIDFromContext(ctx)
	if rid == "" {
		rid = "peer-" + NewHopID()
	}
	req.Header.Set(RequestIDHeader, rid)
	return rid
}

// peerOpFailed counts and logs one failed peer-cache operation with the
// request id that triggered it, so cluster_peer_requests_total errors are
// correlatable with request logs on both replicas.
func (n *Node) peerOpFailed(op, addr, rid string, err error) {
	n.countPeerOp(op, "error")
	n.log.Warn("cluster_peer_"+op+"_failed",
		obslog.F("peer", addr),
		obslog.F("request_id", rid),
		obslog.F("error", err.Error()))
}
