// Package overview implements the fleet observability plane: a
// background aggregator that polls every fleet member's compact
// /internal/stats snapshot (queue saturation, cache tier state, SLO burn,
// ring membership) and merges them into one cluster-wide view — per-
// replica utilization, dead peers, degradation markers, and a true
// fleet-wide burn rate computed from raw window counts (Σbad/Σtotal per
// objective and window, not an average of per-replica rates). The service
// serves the merged view at GET /v1/cluster/overview and exports
// cluster_overview_* gauges, so one scrape of any replica sees the whole
// fleet.
package overview

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/obs/obslog"
	"repro/internal/obs/slo"
)

// Saturation is one replica's queue/worker pressure, mirroring the
// /healthz saturation block that admission control keys on.
type Saturation struct {
	QueueDepth    int      `json:"queue_depth"`
	QueueCapacity int      `json:"queue_capacity"`
	JobsRunning   int      `json:"jobs_running"`
	Workers       int      `json:"workers"`
	InFlight      int64    `json:"in_flight"`
	Utilization   float64  `json:"utilization"`
	Shedding      []string `json:"shedding,omitempty"`
}

// CacheTier is one cache tier's health on one replica. HitRate is only
// meaningful for the memory tier (the only tier with local hit counters);
// BreakerState is "closed", "half-open", or "open" for tiers behind a
// resilient wrapper and "" for bare tiers.
type CacheTier struct {
	HitRate      float64 `json:"hit_rate,omitempty"`
	BreakerState string  `json:"breaker_state,omitempty"`
}

// Stats is the compact per-replica snapshot served by /internal/stats —
// everything the overview plane needs, nothing a peer couldn't already
// read from /healthz and /metrics, but in one authenticated round trip.
type Stats struct {
	Addr          string                `json:"addr"`
	UptimeSeconds float64               `json:"uptime_seconds"`
	Draining      bool                  `json:"draining"`
	Saturation    Saturation            `json:"saturation"`
	Cache         map[string]CacheTier  `json:"cache,omitempty"`
	SLO           map[string]slo.Status `json:"slo,omitempty"`
	RingMembers   int                   `json:"ring_members"`
}

// Replica is one fleet member in the merged overview.
type Replica struct {
	Addr  string `json:"addr"`
	Self  bool   `json:"self,omitempty"`
	Alive bool   `json:"alive"`
	// Error reports a stats-fetch failure on a probe-alive peer (its
	// liveness flag is the prober's verdict, not this poller's).
	Error string `json:"error,omitempty"`
	Stats *Stats `json:"stats,omitempty"`
}

// FleetBurn is one objective's burn over one window, computed from raw
// counts summed across replicas. Averaging per-replica burn rates would
// let an idle replica's 0 mask a busy replica's incident; summing counts
// weighs every request once.
type FleetBurn struct {
	SLO      string  `json:"slo"`
	Window   string  `json:"window"`
	Total    int64   `json:"total"`
	Bad      int64   `json:"bad"`
	BurnRate float64 `json:"burn_rate"`
}

// Overview is the merged fleet view served by GET /v1/cluster/overview.
type Overview struct {
	Self       string    `json:"self"`
	PolledAt   time.Time `json:"polled_at"`
	AgeSeconds float64   `json:"age_seconds"`
	Replicas   []Replica `json:"replicas"`
	AliveCount int       `json:"alive_count"`
	DeadCount  int       `json:"dead_count"`
	// Degraded is true when any replica is dead, draining, shedding a cost
	// class, or running with an open cache breaker — the single boolean a
	// dashboard reddens on.
	Degraded  bool        `json:"degraded"`
	FleetBurn []FleetBurn `json:"fleet_burn,omitempty"`
}

// Single wraps one replica's stats as a one-member overview, for
// single-replica daemons where there is no fleet to poll.
func Single(st Stats) Overview {
	o := Overview{
		Self:       st.Addr,
		PolledAt:   time.Now(),
		Replicas:   []Replica{{Addr: st.Addr, Self: true, Alive: true, Stats: &st}},
		AliveCount: 1,
	}
	o.FleetBurn = fleetBurn(o.Replicas)
	o.Degraded = replicaDegraded(&st) || st.Draining
	return o
}

// Config wires an Aggregator into its host replica.
type Config struct {
	// SelfStats snapshots this replica locally (no HTTP hop). Required.
	SelfStats func() Stats
	// Members snapshots fleet membership with probed liveness. Required.
	Members func() cluster.Snapshot
	// Client is the intra-fleet HTTP client (connection pooling shared
	// with probes and forwards). Required.
	Client *http.Client
	// Secret authenticates /internal/stats requests ("" = loopback fleet).
	Secret string
	// Interval is the poll period (default 1s — the same order as the
	// liveness probe, so the overview tracks membership changes closely).
	Interval time.Duration
	// Timeout bounds one peer stats fetch (default 500ms).
	Timeout time.Duration
	// Tracer receives cluster_overview_* gauges (nil-safe).
	Tracer *obs.Tracer
	// Logger receives poll-failure logs (nil disables).
	Logger *obslog.Logger
}

// Aggregator polls the fleet in the background and caches the merged
// overview, so serving GET /v1/cluster/overview and rendering /metrics
// never perform network I/O on the request path.
type Aggregator struct {
	cfg Config

	mu   sync.RWMutex
	last Overview

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// New builds an aggregator (call Start to begin polling).
func New(cfg Config) *Aggregator {
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 500 * time.Millisecond
	}
	a := &Aggregator{cfg: cfg, stop: make(chan struct{})}
	// Seed with a self-only view so the endpoint is never empty between
	// Start and the first poll round.
	a.last = Single(cfg.SelfStats())
	return a
}

// Start launches the background poll loop. Pair with Stop.
func (a *Aggregator) Start() {
	a.wg.Add(1)
	go a.loop()
}

// Stop terminates the poll loop and waits for it.
func (a *Aggregator) Stop() {
	a.stopOnce.Do(func() { close(a.stop) })
	a.wg.Wait()
}

func (a *Aggregator) loop() {
	defer a.wg.Done()
	t := time.NewTicker(a.cfg.Interval)
	defer t.Stop()
	a.poll()
	for {
		select {
		case <-a.stop:
			return
		case <-t.C:
			a.poll()
		}
	}
}

// Snapshot returns the latest merged overview (age included, so a stale
// snapshot from a wedged poll loop is detectable by the reader).
func (a *Aggregator) Snapshot() Overview {
	a.mu.RLock()
	o := a.last
	a.mu.RUnlock()
	o.AgeSeconds = time.Since(o.PolledAt).Seconds()
	return o
}

// poll fetches every member's stats once and swaps in the merged view.
func (a *Aggregator) poll() {
	snap := a.cfg.Members()
	o := Overview{Self: snap.Self, PolledAt: time.Now()}
	for _, m := range snap.Members {
		rep := Replica{Addr: m.Addr, Self: m.Self, Alive: m.Alive}
		switch {
		case m.Self:
			st := a.cfg.SelfStats()
			rep.Stats = &st
		case m.Alive:
			st, err := a.fetch(m.Addr)
			if err != nil {
				rep.Error = err.Error()
				a.cfg.Logger.Debug("cluster_overview_poll_failed",
					obslog.F("peer", m.Addr),
					obslog.F("error", err.Error()))
			} else {
				rep.Stats = st
			}
		}
		if rep.Alive {
			o.AliveCount++
		} else {
			o.DeadCount++
		}
		o.Replicas = append(o.Replicas, rep)
	}
	o.FleetBurn = fleetBurn(o.Replicas)
	o.Degraded = o.DeadCount > 0
	for i := range o.Replicas {
		if st := o.Replicas[i].Stats; st != nil && (st.Draining || replicaDegraded(st)) {
			o.Degraded = true
		}
	}

	a.mu.Lock()
	a.last = o
	a.mu.Unlock()
	a.export(o)
}

// fetch retrieves one peer's /internal/stats snapshot.
func (a *Aggregator) fetch(addr string) (*Stats, error) {
	ctx, cancel := context.WithTimeout(context.Background(), a.cfg.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		"http://"+addr+"/internal/stats", nil)
	if err != nil {
		return nil, err
	}
	if a.cfg.Secret != "" {
		req.Header.Set(cluster.SecretHeader, a.cfg.Secret)
	}
	req.Header.Set(cluster.RequestIDHeader, "overview-"+cluster.NewHopID())
	resp, err := a.cfg.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, fmt.Errorf("overview: stats %s: status %d", addr, resp.StatusCode)
	}
	var st Stats
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&st); err != nil {
		return nil, fmt.Errorf("overview: stats %s: %w", addr, err)
	}
	return &st, nil
}

// replicaDegraded reports local degradation markers on one replica's
// stats: load shedding in effect or any cache breaker not closed.
func replicaDegraded(st *Stats) bool {
	if len(st.Saturation.Shedding) > 0 {
		return true
	}
	for _, tier := range st.Cache {
		if tier.BreakerState != "" && tier.BreakerState != "closed" {
			return true
		}
	}
	return false
}

// fleetBurn merges per-replica SLO windows into fleet-wide burn rates by
// summing raw counts per (objective, window) before dividing by the
// budget. Replicas with no stats (dead or unreachable) contribute
// nothing — their requests stopped, so they stop burning budget too.
func fleetBurn(reps []Replica) []FleetBurn {
	type key struct{ slo, window string }
	totals := map[key]*FleetBurn{}
	budgets := map[string]float64{}
	var order []key
	for _, rep := range reps {
		if rep.Stats == nil {
			continue
		}
		for name, st := range rep.Stats.SLO {
			if st.Budget > 0 {
				budgets[name] = st.Budget
			}
			for _, wb := range st.Windows {
				k := key{name, wb.Window}
				fb := totals[k]
				if fb == nil {
					fb = &FleetBurn{SLO: name, Window: wb.Window}
					totals[k] = fb
					order = append(order, k)
				}
				fb.Total += wb.Total
				fb.Bad += wb.Bad
			}
		}
	}
	out := make([]FleetBurn, 0, len(order))
	for _, k := range order {
		fb := *totals[k]
		if b := budgets[fb.SLO]; b > 0 && fb.Total > 0 {
			fb.BurnRate = float64(fb.Bad) / float64(fb.Total) / b
		}
		out = append(out, fb)
	}
	sortBurns(out)
	return out
}

// sortBurns orders burns by objective then window for stable output.
func sortBurns(bs []FleetBurn) {
	for i := 1; i < len(bs); i++ {
		for j := i; j > 0; j-- {
			a, b := bs[j-1], bs[j]
			if a.SLO < b.SLO || (a.SLO == b.SLO && a.Window <= b.Window) {
				break
			}
			bs[j-1], bs[j] = b, a
		}
	}
}

// export refreshes the cluster_overview_* gauges from one merged view.
func (a *Aggregator) export(o Overview) {
	tr := a.cfg.Tracer
	tr.Gauge("cluster/overview/replicas_alive").Set(float64(o.AliveCount))
	tr.Gauge("cluster/overview/replicas_dead").Set(float64(o.DeadCount))
	degraded := 0.0
	if o.Degraded {
		degraded = 1
	}
	tr.Gauge("cluster/overview/degraded").Set(degraded)
	for _, fb := range o.FleetBurn {
		tr.Gauge(obs.Labeled("cluster/overview/burn_rate", "slo", fb.SLO, "window", fb.Window)).Set(fb.BurnRate)
	}
	for _, rep := range o.Replicas {
		if rep.Stats != nil {
			tr.Gauge(obs.Labeled("cluster/overview/utilization", "replica", rep.Addr)).
				Set(rep.Stats.Saturation.Utilization)
		}
	}
}
