package core

import (
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestRunCellSim exercises flow step 7½: a full-circuit layout has far
// more free dots than any exact engine handles, so automatic dispatch
// must anneal, record the outcome, and emit the cellsim stage span.
func TestRunCellSim(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-layout annealing is slow")
	}
	tr := obs.New()
	res, err := RunBenchmark("mux21", Options{CellSim: true, Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	cs := res.CellSim
	if cs == nil {
		t.Fatal("CellSim requested but Result.CellSim is nil")
	}
	if cs.Solver == "" || cs.FreeDots == 0 {
		t.Errorf("cell sim result incomplete: %+v", cs)
	}
	if cs.EnergyEV >= 0 {
		t.Errorf("charged layout energy must be negative, got %v", cs.EnergyEV)
	}
	rep := tr.Report("mux21")
	if rep.Stage("cellsim") == nil {
		t.Error("report missing cellsim stage")
	}
}

// TestRunCellSimUnknownSolver must fail loudly, not silently skip.
func TestRunCellSimUnknownSolver(t *testing.T) {
	_, err := RunBenchmark("mux21", Options{CellSim: true, GroundSolver: "no-such-solver"})
	if err == nil || !strings.Contains(err.Error(), "unknown ground-state solver") {
		t.Fatalf("want unknown-solver error, got %v", err)
	}
}
