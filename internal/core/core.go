// Package core implements the complete Bestagon physical design flow of
// §4.2 of the paper: from a logic-level specification to a dot-accurate,
// formally verified SiDB layout.
//
// The eight flow steps:
//
//	(1) parse the specification as an XAG,
//	(2) cut-based logic rewriting with an exact NPN database,
//	(3) technology mapping into the Bestagon gate set,
//	(4) exact (SAT-based) or scalable physical design on the hexagonal,
//	    row-clocked floor plan,
//	(5) SAT-based equivalence checking of network vs. layout,
//	(6) super-tile merging by clock-zone expansion,
//	(7) application of the Bestagon library to obtain the SiDB layout, and
//	(8) SiQAD design-file generation.
package core

import (
	"context"
	"fmt"
	"os"
	"time"

	"repro/internal/clocking"
	"repro/internal/defects"
	"repro/internal/gatelayout"
	"repro/internal/gatelib"
	"repro/internal/logic/bench"
	"repro/internal/logic/mapping"
	"repro/internal/logic/network"
	"repro/internal/logic/rewrite"
	"repro/internal/obs"
	"repro/internal/pnr"
	"repro/internal/sidb"
	"repro/internal/sim"
	"repro/internal/sqd"
	"repro/internal/verify"
)

// Engine selects the physical design algorithm of flow step (4).
type Engine int

// Physical design engines.
const (
	// EngineAuto tries exact physical design first and falls back to the
	// scalable router when the SAT search exceeds its budget.
	EngineAuto Engine = iota
	// EngineExact uses SAT-based minimal-area placement & routing [46].
	EngineExact
	// EngineOrtho uses the scalable greedy fabric router.
	EngineOrtho
)

// Options configures a flow run.
type Options struct {
	// Engine selects the physical design algorithm (default EngineAuto).
	Engine Engine
	// SkipRewrite disables flow step (2).
	SkipRewrite bool
	// Rewrite tunes the rewriting step.
	Rewrite rewrite.Options
	// Exact tunes the exact physical design engine.
	Exact pnr.ExactOptions
	// SkipCellLevel stops after verification, without applying the gate
	// library (useful for gate-level studies).
	SkipCellLevel bool
	// Library is the gate library to apply; nil uses the default library.
	Library *gatelib.Library
	// CellSim runs a ground-state simulation of the final cell-level SiDB
	// layout (flow step 7½) and records the outcome in Result.CellSim.
	CellSim bool
	// GroundSolver names the sim ground-state solver used by CellSim
	// ("" = automatic dispatch; see sim.SolverNames). Pruned exact
	// backends such as "quickexact" must be linked in (blank import) to
	// be selectable.
	GroundSolver string
	// Surface holds the surface defects in global cell coordinates. When
	// non-empty, both P&R engines place around afflicted tiles (the exact
	// engine blocks them in the SAT encoding, the ortho router slides its
	// result clear during legalization) and the optional cell simulation
	// includes the charged defects as fixed perturbers. Nil assumes a
	// pristine surface.
	Surface *defects.Surface
	// Tracer receives flow-wide telemetry (stage spans, engine metrics);
	// nil disables instrumentation with zero overhead.
	Tracer *obs.Tracer
	// DegradeMargin is the budget the degradation ladder reserves for its
	// cheaper fallback engines when the run has a deadline: the exact P&R
	// engine and exact ground-state solvers run under (deadline − margin)
	// so that, on expiry, the ortho router or annealer still has time to
	// produce a best-effort result marked Degraded instead of a timeout
	// (default sim.DefaultDegradeMargin; the margin does not enter cache
	// keys because degraded results are never cached).
	DegradeMargin time.Duration
}

// CellSimResult is the whole-layout ground-state simulation outcome.
type CellSimResult struct {
	// Solver names the backend that produced the result.
	Solver string
	// Exact reports whether the energy is provably minimal.
	Exact bool
	// FreeDots is the number of non-pinned dots simulated.
	FreeDots int
	// EnergyEV is the ground-state (or best-found) energy.
	EnergyEV float64
	// Degraded reports that deadline pressure forced the simulation onto a
	// cheaper engine than requested (see sim.Degrading).
	Degraded bool `json:",omitempty"`
}

// Result collects every artifact of a flow run.
type Result struct {
	Spec      *network.XAG
	Rewritten *network.XAG
	Mapped    *mapping.Net
	Graph     *pnr.RGraph
	Layout    *gatelayout.Layout
	// EngineUsed reports which physical design engine produced the layout.
	EngineUsed string
	// Verification is the SAT equivalence-check outcome (flow step 5).
	Verification verify.Result
	// SuperTiles is the clock-zone expansion plan (flow step 6).
	SuperTiles clocking.SuperTile
	// CellLayout is the dot-accurate SiDB layout (flow step 7); nil when
	// SkipCellLevel is set.
	CellLayout *sidb.Layout
	// CellSim is the optional whole-layout ground-state simulation
	// outcome; nil unless Options.CellSim was set.
	CellSim *CellSimResult
	// SiDBs counts the dangling bonds of the cell-level layout.
	SiDBs int
	// AreaNM2 is the Table 1 layout area.
	AreaNM2 float64
	// Degraded reports that deadline pressure forced some stage onto a
	// cheaper engine (exact→ortho P&R, exact→anneal simulation). The
	// result is usable but not the quality the options asked for; callers
	// that cache artifacts must not cache degraded ones.
	Degraded bool
}

// Run executes the flow on a specification network.
func Run(spec *network.XAG, opts Options) (*Result, error) {
	return RunContext(context.Background(), spec, opts)
}

// RunContext executes the flow under a context. Cancellation (or a
// deadline) propagates into every compute-heavy stage — the SAT searches
// of exact physical design and verification, the ortho router's row loop,
// and the ground-state solvers of the optional cell simulation — so an
// abandoned run stops burning CPU mid-stage instead of running to
// completion. A nil context behaves like context.Background.
func RunContext(ctx context.Context, spec *network.XAG, opts Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	res := &Result{Spec: spec}
	tr := opts.Tracer
	root := tr.Start("flow")
	defer root.End()
	// Attribute the run to the HTTP request that caused it (the service
	// layer tags the context in its middleware), so a slow span in a
	// job trace can be matched against the request logs.
	if id := obs.RequestIDFromContext(ctx); id != "" {
		root.SetAttr("request_id", id)
	}

	if err := ctx.Err(); err != nil {
		return res, err
	}

	// (2) logic rewriting.
	sp := tr.Start("rewrite")
	if opts.SkipRewrite {
		res.Rewritten = spec.Cleanup()
	} else {
		rw, err := rewrite.RewriteContext(ctx, spec, opts.Rewrite)
		if err != nil {
			sp.End()
			return res, fmt.Errorf("core: rewriting: %w", err)
		}
		res.Rewritten = rw
	}
	sp.SetAttr("gates", res.Rewritten.NumGates())
	sp.End()

	// (3) technology mapping.
	sp = tr.Start("mapping")
	m, err := mapping.Map(res.Rewritten)
	sp.End()
	if err != nil {
		return res, fmt.Errorf("core: mapping: %w", err)
	}
	res.Mapped = m

	// (4) physical design.
	sp = tr.Start("expand")
	g, err := pnr.Expand(m)
	sp.End()
	if err != nil {
		return res, fmt.Errorf("core: expansion: %w", err)
	}
	res.Graph = g
	ex := opts.Exact
	ex.Tracer = tr
	// Defect-aware placement: both engines consume the afflicted-tile
	// predicate derived from the surface (nil when pristine — zero cost).
	blocker := gatelib.TileBlocker(opts.Surface)
	if ex.Blocked == nil {
		ex.Blocked = blocker
	}
	sp = tr.Start("pnr")
	var layout *gatelayout.Layout
	switch opts.Engine {
	case EngineOrtho:
		layout, _, err = pnr.OrthoAvoiding(ctx, g, tr, blocker, 0)
		res.EngineUsed = "ortho"
	case EngineExact:
		layout, err = pnr.ExactContext(ctx, g, ex)
		res.EngineUsed = "exact"
	default:
		// The auto engine is a degradation ladder: exact SAT-based P&R
		// first, the scalable ortho router as fallback. With a deadline,
		// the exact attempt runs under (deadline − margin) so the router
		// still has budget when SAT exhausts its share; a fallback forced
		// by deadline pressure (rather than an exceeded SAT node budget)
		// marks the result Degraded.
		margin := opts.DegradeMargin
		if margin <= 0 {
			margin = sim.DefaultDegradeMargin
		}
		exactCtx, cancel := ctx, context.CancelFunc(func() {})
		skipExact := false
		if deadline, ok := ctx.Deadline(); ok {
			if time.Until(deadline) <= margin {
				skipExact = true
			} else {
				exactCtx, cancel = context.WithDeadline(ctx, deadline.Add(-margin))
			}
		}
		deadlinePressure := skipExact
		if !skipExact {
			layout, err = pnr.ExactContext(exactCtx, g, ex)
			res.EngineUsed = "exact"
			deadlinePressure = err != nil && exactCtx.Err() != nil
		}
		cancel()
		if (skipExact || err != nil) && ctx.Err() == nil {
			layout, _, err = pnr.OrthoAvoiding(ctx, g, tr, blocker, 0)
			res.EngineUsed = "ortho"
			if err == nil && deadlinePressure {
				res.Degraded = true
				tr.Counter(obs.Labeled("flow/degraded_total", "from", "exact", "to", "ortho")).Inc()
			}
		}
	}
	sp.SetAttr("engine", res.EngineUsed)
	sp.End()
	if err != nil {
		return res, fmt.Errorf("core: physical design: %w", err)
	}
	res.Layout = layout
	root.SetAttr("engine", res.EngineUsed)

	// Defect DRC: no used tile may be afflicted. The exact encoding
	// guarantees this and ortho legalizes for it; the assertion catches
	// any future engine that forgets the blocker.
	if blocker != nil {
		for _, at := range layout.Tiles() {
			if blocker(at) {
				return res, fmt.Errorf("core: placed tile %v is afflicted by a surface defect: %w",
					at, defects.ErrBlocked)
			}
		}
	}

	// Design rule check under the super-tile plan (flow step 6).
	sp = tr.Start("drc")
	res.SuperTiles = clocking.PlanSuperTiles(clocking.MinMetalPitchNM)
	v := layout.Check(&res.SuperTiles)
	sp.End()
	if len(v) != 0 {
		return res, fmt.Errorf("core: %d design-rule violations, first: %v", len(v), v[0])
	}

	// (5) formal verification.
	sp = tr.Start("verify")
	eq, err := verify.EquivalentLayoutContext(ctx, spec, layout)
	if err == nil {
		sp.SetAttr("conflicts", eq.Metrics.Conflicts)
		tr.Counter("sat/conflicts").Add(eq.Metrics.Conflicts)
		tr.Counter("sat/decisions").Add(eq.Metrics.Decisions)
		tr.Counter("sat/propagations").Add(eq.Metrics.Propagations)
		tr.Counter("sat/restarts").Add(eq.Metrics.Restarts)
		tr.Counter("sat/learned").Add(eq.Metrics.Learned)
	}
	sp.End()
	if err != nil {
		return res, fmt.Errorf("core: verification: %w", err)
	}
	res.Verification = eq
	if !eq.Equivalent {
		return res, fmt.Errorf("core: layout is NOT equivalent to the specification (cex %b)", eq.Counterexample)
	}

	res.AreaNM2 = gatelib.AreaNM2(layout.Width(), layout.Height())
	tr.Gauge("flow/area_nm2").Set(res.AreaNM2)
	root.SetAttr("area_nm2", res.AreaNM2)

	// (7) gate library application.
	if !opts.SkipCellLevel {
		lib := opts.Library
		if lib == nil {
			lib = gatelib.NewLibrary()
		}
		cell, err := gatelib.Apply(lib, layout, tr)
		if err != nil {
			return res, fmt.Errorf("core: library application: %w", err)
		}
		res.CellLayout = cell
		res.SiDBs = cell.NumDots()
		tr.Gauge("flow/sidbs").Set(float64(res.SiDBs))
		root.SetAttr("sidbs", res.SiDBs)

		// (7½) optional whole-layout ground-state simulation.
		if opts.CellSim {
			inner, err := sim.Lookup(opts.GroundSolver)
			if err != nil {
				return res, fmt.Errorf("core: cell simulation: %w", err)
			}
			// The degradation ladder retries deadline-starved exact solves
			// with annealing on the remaining budget (see sim.Degrading).
			solver := sim.GroundStateSolver(&sim.Degrading{
				Inner:  inner,
				Margin: opts.DegradeMargin,
				Tracer: tr,
			})
			sp = tr.Start("cellsim")
			eng := sim.NewEngineOn(cell, sim.ParamsFig5, opts.Surface)
			free := len(eng.FreeIndices())
			sol, serr := solver.Solve(eng, sim.SolveOptions{Tracer: tr, Ctx: ctx})
			if serr != nil {
				if cerr := ctx.Err(); cerr != nil {
					sp.End()
					return res, fmt.Errorf("core: cell simulation canceled: %w", cerr)
				}
				// An exact backend that gives up (enumeration limit, node
				// budget) degrades to annealing rather than failing the
				// whole flow. The degrade is loud: exactness was requested
				// but the result is no longer provably minimal.
				tr.Counter("sim/degraded_to_anneal").Inc()
				sim.ExhaustiveDegrades.Inc()
				fmt.Fprintf(os.Stderr, "core: warning: cell simulation degraded to annealing (%v)\n", serr)
				cfg := sim.DefaultAnnealConfig()
				cfg.Tracer = tr
				cfg.Ctx = ctx
				gs, en := eng.Anneal(cfg)
				sol = sim.Solution{Charges: gs, EnergyEV: en, Solver: "anneal"}
			}
			res.CellSim = &CellSimResult{
				Solver:   sol.Solver,
				Exact:    sol.Exact,
				FreeDots: free,
				EnergyEV: sol.EnergyEV,
				Degraded: sol.Degraded,
			}
			if sol.Degraded {
				res.Degraded = true
			}
			sp.SetAttr("solver", sol.Solver)
			sp.SetAttr("exact", sol.Exact)
			sp.SetAttr("free_dots", free)
			sp.SetAttr("energy_ev", sol.EnergyEV)
			sp.End()
			tr.Gauge("flow/cellsim_energy_ev").Set(sol.EnergyEV)
		}
	}
	return res, nil
}

// RunBenchmark loads a named Table 1 benchmark and runs the flow.
func RunBenchmark(name string, opts Options) (*Result, error) {
	return RunBenchmarkContext(context.Background(), name, opts)
}

// RunBenchmarkContext is RunBenchmark under a context (see RunContext).
func RunBenchmarkContext(ctx context.Context, name string, opts Options) (*Result, error) {
	x, err := bench.Load(name)
	if err != nil {
		return nil, err
	}
	return RunContext(ctx, x, opts)
}

// ExportSQD renders the cell-level layout as a SiQAD design file (flow
// step 8).
func (r *Result) ExportSQD() (string, error) {
	if r.CellLayout == nil {
		return "", fmt.Errorf("core: no cell-level layout (SkipCellLevel?)")
	}
	return sqd.WriteString(r.CellLayout)
}

// Summary renders a one-line Table 1 style row: name, dimensions, area.
func (r *Result) Summary() string {
	l := r.Layout
	return fmt.Sprintf("%-14s %2dx%-2d =%3d  %5d SiDBs  %10.2f nm2  [%s]",
		r.Spec.Name, l.Width(), l.Height(), l.Area(), r.SiDBs, r.AreaNM2, r.EngineUsed)
}
