package core

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/logic/bench"
	"repro/internal/logic/network"
	"repro/internal/obs"
	"repro/internal/pnr"
)

// TestRunReportC17 is the flow-wide telemetry integration test: run the
// full instrumented flow on the c17 built-in benchmark and check that the
// resulting RunReport contains every expected stage plus nonzero SAT,
// exact-P&R size-search, and gate-apply metrics, and that stage durations
// account for the bulk of the total wall time.
func TestRunReportC17(t *testing.T) {
	tr := obs.New()
	res, err := RunBenchmark("c17", Options{
		Tracer: tr,
		Exact:  pnr.ExactOptions{ConflictBudget: 150000},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verification.Equivalent {
		t.Fatal("c17 not verified")
	}
	rep := tr.Report("c17")

	for _, stage := range []string{
		"flow", "rewrite", "mapping", "expand", "pnr", "drc", "verify", "gatelib/apply",
	} {
		if rep.Stage(stage) == nil {
			t.Errorf("report missing stage %q", stage)
		}
	}
	if res.EngineUsed == "exact" && rep.Stage("pnr/exact/size") == nil {
		t.Error("report missing exact size-search spans")
	}

	// Engine metrics must be populated.
	if rep.Counter("sat/conflicts") == 0 && rep.Counter("sat/propagations") == 0 {
		t.Error("no SAT effort recorded")
	}
	if rep.Counter("pnr/exact/sizes_tried") == 0 {
		t.Error("no exact size-search iterations recorded")
	}
	if rep.Counter("gatelib/tiles_applied") == 0 {
		t.Error("no gate-apply metrics recorded")
	}
	if rep.Metrics["flow/sidbs"].Value <= 0 || rep.Metrics["flow/area_nm2"].Value <= 0 {
		t.Errorf("flow gauges missing: %+v", rep.Metrics)
	}

	// Per-stage durations must sum to (nearly) the flow total: the spans
	// cover the whole pipeline, not a sample of it.
	flow := rep.Stage("flow")
	if flow == nil || flow.Seconds <= 0 {
		t.Fatal("flow span missing or zero")
	}
	var sum float64
	for _, c := range flow.Children {
		sum += c.Seconds
	}
	if sum < 0.9*flow.Seconds || sum > 1.001*flow.Seconds {
		t.Errorf("stage durations sum %.6fs, flow total %.6fs (want within 10%%)", sum, flow.Seconds)
	}

	// The report must survive a JSON round trip.
	data, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := obs.ParseReport(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Stage("verify") == nil || back.Counter("pnr/exact/sizes_tried") != rep.Counter("pnr/exact/sizes_tried") {
		t.Error("report JSON round trip lost data")
	}
}

func TestRunSmallBenchmarksOrtho(t *testing.T) {
	for _, name := range []string{"xor2", "xnor2", "par_gen", "mux21"} {
		res, err := RunBenchmark(name, Options{Engine: EngineOrtho})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.Verification.Equivalent {
			t.Errorf("%s: not verified", name)
		}
		if res.SiDBs == 0 || res.CellLayout == nil {
			t.Errorf("%s: missing cell-level layout", name)
		}
		if res.AreaNM2 <= 0 {
			t.Errorf("%s: bad area", name)
		}
		if res.SuperTiles.RowsPerSuperTile != 3 {
			t.Errorf("%s: super-tile plan wrong: %+v", name, res.SuperTiles)
		}
	}
}

func TestRunExactMatchesPaperDims(t *testing.T) {
	// The exact engine reproduces the paper's Table 1 dimensions on the
	// small circuits.
	cases := map[string][2]int{
		"xor2":    {2, 3},
		"xnor2":   {2, 3},
		"par_gen": {3, 4},
	}
	for name, dims := range cases {
		res, err := RunBenchmark(name, Options{Engine: EngineExact, SkipCellLevel: true})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Layout.Width() != dims[0] || res.Layout.Height() != dims[1] {
			t.Errorf("%s: %dx%d, paper says %dx%d", name,
				res.Layout.Width(), res.Layout.Height(), dims[0], dims[1])
		}
	}
}

func TestRunAutoFallsBack(t *testing.T) {
	// With a tiny exact budget, auto mode must fall back to ortho and still
	// deliver a verified layout.
	res, err := RunBenchmark("cm82a_5", Options{
		Exact:         pnr.ExactOptions{MaxArea: 4}, // absurdly small: exact must fail
		SkipCellLevel: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.EngineUsed != "ortho" {
		t.Errorf("engine = %s, want ortho fallback", res.EngineUsed)
	}
	if !res.Verification.Equivalent {
		t.Error("fallback layout not verified")
	}
}

func TestRunSkipRewrite(t *testing.T) {
	with, err := RunBenchmark("xor5_majority", Options{Engine: EngineOrtho, SkipCellLevel: true})
	if err != nil {
		t.Fatal(err)
	}
	without, err := RunBenchmark("xor5_majority", Options{
		Engine: EngineOrtho, SkipRewrite: true, SkipCellLevel: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if with.Rewritten.NumGates() >= without.Rewritten.NumGates() {
		t.Errorf("rewriting had no effect: %d vs %d gates",
			with.Rewritten.NumGates(), without.Rewritten.NumGates())
	}
}

func TestExportSQD(t *testing.T) {
	res, err := RunBenchmark("xor2", Options{Engine: EngineOrtho})
	if err != nil {
		t.Fatal(err)
	}
	doc, err := res.ExportSQD()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(doc, "<siqad>") || !strings.Contains(doc, "dbdot") {
		t.Error("SQD export malformed")
	}
}

func TestExportSQDRequiresCellLevel(t *testing.T) {
	res, err := RunBenchmark("xor2", Options{Engine: EngineOrtho, SkipCellLevel: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.ExportSQD(); err == nil {
		t.Error("ExportSQD must fail without a cell-level layout")
	}
}

func TestSummaryString(t *testing.T) {
	res, err := RunBenchmark("xor2", Options{Engine: EngineOrtho})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Summary()
	if !strings.Contains(s, "xor2") || !strings.Contains(s, "nm2") {
		t.Errorf("summary malformed: %q", s)
	}
}

func TestRunProgrammaticNetwork(t *testing.T) {
	x := network.New()
	x.Name = "majority_api"
	a, b, c := x.NewPI("a"), x.NewPI("b"), x.NewPI("c")
	x.NewPO(x.Maj(a, b, c), "m")
	res, err := Run(x, Options{Engine: EngineOrtho, SkipCellLevel: true})
	if err != nil {
		t.Fatal(err)
	}
	for in := uint32(0); in < 8; in++ {
		pop := in&1 + in>>1&1 + in>>2&1
		want := uint32(0)
		if pop >= 2 {
			want = 1
		}
		if got := res.Layout.Simulate(in); got != want {
			t.Errorf("maj(%03b) = %d, want %d", in, got, want)
		}
	}
}

func TestAllBenchmarksThroughFlow(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, name := range bench.Names() {
		res, err := RunBenchmark(name, Options{Engine: EngineOrtho})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.Verification.Equivalent {
			t.Errorf("%s: verification failed", name)
		}
		if res.SiDBs == 0 {
			t.Errorf("%s: no SiDBs", name)
		}
	}
}

// TestEnginesAgreeOnRandomNetworks is the dual-engine property test: for
// random small XAGs, both physical design engines must produce verified
// layouts, and the exact engine must never use more area than the
// scalable one.
func TestEnginesAgreeOnRandomNetworks(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rng := rand.New(rand.NewSource(97))
	for trial := 0; trial < 6; trial++ {
		x := network.New()
		x.Name = "rand"
		var sigs []network.Signal
		for i := 0; i < 3; i++ {
			sigs = append(sigs, x.NewPI(""))
		}
		for g := 0; g < 5; g++ {
			a := sigs[rng.Intn(len(sigs))].NotIf(rng.Intn(2) == 1)
			b := sigs[rng.Intn(len(sigs))].NotIf(rng.Intn(2) == 1)
			if a.Node() == b.Node() {
				continue
			}
			if rng.Intn(2) == 0 {
				sigs = append(sigs, x.And(a, b))
			} else {
				sigs = append(sigs, x.Xor(a, b))
			}
		}
		x.NewPO(sigs[len(sigs)-1], "f")
		xc := x.Cleanup()
		if xc.NumGates() == 0 {
			continue
		}
		// The tile library has no terminator for unused inputs; the flow
		// rejects such specs, so skip trials that do not use every PI.
		unused := false
		fo := xc.FanoutCounts()
		for i := 0; i < xc.NumPIs(); i++ {
			if fo[xc.PI(i).Node()] == 0 {
				unused = true
			}
		}
		if unused {
			continue
		}
		exact, err := Run(xc, Options{Engine: EngineExact, SkipCellLevel: true,
			Exact: pnr.ExactOptions{ConflictBudget: 150000}})
		if err != nil {
			t.Fatalf("trial %d exact: %v", trial, err)
		}
		ortho, err := Run(xc, Options{Engine: EngineOrtho, SkipCellLevel: true})
		if err != nil {
			t.Fatalf("trial %d ortho: %v", trial, err)
		}
		if !exact.Verification.Equivalent || !ortho.Verification.Equivalent {
			t.Fatalf("trial %d: verification failed", trial)
		}
		if exact.Layout.Area() > ortho.Layout.Area() {
			t.Errorf("trial %d: exact area %d > ortho %d", trial,
				exact.Layout.Area(), ortho.Layout.Area())
		}
	}
}
