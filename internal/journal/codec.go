package journal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Record framing shared by the write-ahead journal and the disk cache's
// entry files: a fixed magic, a little-endian payload length, a CRC-32C
// checksum of the payload, then the payload bytes. The magic catches
// files from before the format existed (or belonging to something else
// entirely), the length catches truncation, and the checksum catches torn
// or bit-rotted writes — so a reader can always distinguish "valid",
// "cleanly absent", and "damaged" without guessing.
const (
	// recordMagic opens every sealed record ("BJ1\n").
	recordMagic uint32 = 0x424a310a
	// recordHeaderLen is magic (4) + length (4) + crc (4).
	recordHeaderLen = 12
	// MaxRecordBytes bounds one record's payload; a length field beyond it
	// is treated as corruption, not an allocation request.
	MaxRecordBytes = 64 << 20
)

// castagnoli is the CRC-32C table (the polynomial with hardware support
// on modern CPUs, and the conventional choice for storage checksums).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Codec damage classification.
var (
	// ErrCorrupt marks a record whose magic or checksum does not match:
	// the bytes are present but wrong.
	ErrCorrupt = errors.New("journal: corrupt record")
	// ErrTruncated marks a record cut short mid-write: a torn tail.
	ErrTruncated = errors.New("journal: truncated record")
)

// Seal frames payload as one self-verifying record.
func Seal(payload []byte) []byte {
	out := make([]byte, recordHeaderLen+len(payload))
	binary.LittleEndian.PutUint32(out[0:4], recordMagic)
	binary.LittleEndian.PutUint32(out[4:8], uint32(len(payload)))
	binary.LittleEndian.PutUint32(out[8:12], crc32.Checksum(payload, castagnoli))
	copy(out[recordHeaderLen:], payload)
	return out
}

// Unseal verifies and strips the framing of a single-record blob (the
// disk cache's whole-file entries). It returns ErrCorrupt or ErrTruncated
// when the record cannot be trusted.
func Unseal(b []byte) ([]byte, error) {
	if len(b) < recordHeaderLen {
		return nil, fmt.Errorf("%w: %d header bytes of %d", ErrTruncated, len(b), recordHeaderLen)
	}
	if binary.LittleEndian.Uint32(b[0:4]) != recordMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	n := binary.LittleEndian.Uint32(b[4:8])
	if n > MaxRecordBytes {
		return nil, fmt.Errorf("%w: implausible length %d", ErrCorrupt, n)
	}
	if len(b) < recordHeaderLen+int(n) {
		return nil, fmt.Errorf("%w: %d payload bytes of %d", ErrTruncated, len(b)-recordHeaderLen, n)
	}
	payload := b[recordHeaderLen : recordHeaderLen+int(n)]
	if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(b[8:12]) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	return payload, nil
}

// readRecord reads one framed record from r. It returns io.EOF at a clean
// record boundary, ErrTruncated when the stream ends mid-record (a torn
// tail), and ErrCorrupt when the bytes are present but fail verification.
func readRecord(r *bufio.Reader) ([]byte, error) {
	var hdr [recordHeaderLen]byte
	n, err := io.ReadFull(r, hdr[:])
	if n == 0 && err == io.EOF {
		return nil, io.EOF
	}
	if err != nil {
		return nil, fmt.Errorf("%w: %d header bytes of %d", ErrTruncated, n, recordHeaderLen)
	}
	if binary.LittleEndian.Uint32(hdr[0:4]) != recordMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	size := binary.LittleEndian.Uint32(hdr[4:8])
	if size > MaxRecordBytes {
		return nil, fmt.Errorf("%w: implausible length %d", ErrCorrupt, size)
	}
	payload := make([]byte, size)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("%w: short payload", ErrTruncated)
	}
	if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(hdr[8:12]) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	return payload, nil
}
